package inferturbo

import (
	"bytes"
	"testing"
)

// TestEndToEndPublicAPI exercises the whole public surface the way the
// README quickstart does: generate → train → save/load → infer on both
// backends → verify against the reference forward.
func TestEndToEndPublicAPI(t *testing.T) {
	ds := Generate(DatasetConfig{
		Name: "e2e", Nodes: 400, AvgDegree: 8, Skew: SkewIn, Exponent: 1.8,
		FeatureDim: 10, NumClasses: 3, Homophily: 0.85,
		TrainFrac: 0.5, ValFrac: 0.2, Seed: 1,
	})
	g := ds.Graph

	m := NewSAGEModel("e2e", TaskSingleLabel, 10, 16, 3, 2, 0, NewRNG(2))
	hist, err := Train(m, g, TrainConfig{Epochs: 8, BatchSize: 64, Fanouts: []int{10, 10}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if hist.Best() < 0.5 {
		t.Fatalf("validation stayed at %v", hist.Best())
	}

	var sig bytes.Buffer
	if err := SaveModel(m, &sig); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&sig)
	if err != nil {
		t.Fatal(err)
	}

	want := ReferenceForward(loaded, g)
	p, err := InferPregel(loaded, g, InferOptions{NumWorkers: 6, PartialGather: true})
	if err != nil {
		t.Fatal(err)
	}
	mr, err := InferMapReduce(loaded, g, InferOptions{NumWorkers: 6, PartialGather: true})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Logits.AllClose(want, 2e-3) || !mr.Logits.AllClose(want, 2e-3) {
		t.Fatal("backends diverge from reference through the public API")
	}

	rep, err := SimulateCluster(PregelCluster(), p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WallSeconds <= 0 || rep.CPUMinutes <= 0 {
		t.Fatal("cluster pricing degenerate")
	}

	base, err := RunBaseline(loaded, g, BaselineOptions{Workers: 4, Fanout: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.Redundancy <= 1 {
		t.Fatal("baseline redundancy accounting missing")
	}
}

func TestGraphFileRoundTripPublicAPI(t *testing.T) {
	ds := PowerLaw(500, SkewOut, 5)
	path := t.TempDir() + "/g.bin"
	if err := SaveGraphFile(ds.Graph, path); err != nil {
		t.Fatal(err)
	}
	g, err := LoadGraphFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes != ds.Graph.NumNodes || g.NumEdges != ds.Graph.NumEdges {
		t.Fatal("graph file round trip lost data")
	}
}

func TestModelFileRoundTripPublicAPI(t *testing.T) {
	m := NewGATModel("f", TaskSingleLabel, 6, 4, 2, 3, 2, NewRNG(9))
	path := t.TempDir() + "/m.json"
	if err := SaveModelFile(m, path); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Name != "f" || m2.NumLayers() != 2 {
		t.Fatal("model file round trip lost data")
	}
}

func TestBuilderPublicAPI(t *testing.T) {
	b := NewGraphBuilder(3)
	b.AddEdge(0, 1, nil)
	b.AddEdge(1, 2, nil)
	g := b.Build()
	if g.NumEdges != 2 || g.OutDegree(0) != 1 {
		t.Fatal("builder misbehaved through facade")
	}
}
