package nn

import (
	"math"
	"testing"

	"inferturbo/internal/tensor"
)

func TestLinearForwardKnown(t *testing.T) {
	l := NewLinear("l", 2, 2, tensor.NewRNG(1))
	l.W.Value = tensor.FromRows([][]float32{{1, 0}, {0, 1}})
	l.B.Value = tensor.FromRows([][]float32{{10, 20}})
	x := tensor.FromRows([][]float32{{3, 4}})
	y := l.Forward(x)
	if y.At(0, 0) != 13 || y.At(0, 1) != 24 {
		t.Fatalf("forward = %v", y.Data)
	}
	if !l.Apply(x).Equal(y) {
		t.Fatal("Apply must match Forward")
	}
}

func TestLinearBackwardNumeric(t *testing.T) {
	rng := tensor.NewRNG(2)
	l := NewLinear("l", 3, 2, rng)
	x := tensor.New(4, 3)
	rng.Uniform(x, -1, 1)

	// Scalar objective: sum of outputs. dOut = ones.
	forward := func() float64 {
		out := l.Apply(x)
		var s float64
		for _, v := range out.Data {
			s += float64(v)
		}
		return s
	}
	l.Forward(x)
	dOut := tensor.New(4, 2)
	dOut.Fill(1)
	dX := l.Backward(dOut)

	const eps = 1e-2
	// Check dW numerically.
	for i := 0; i < len(l.W.Value.Data); i += 2 {
		orig := l.W.Value.Data[i]
		l.W.Value.Data[i] = orig + eps
		plus := forward()
		l.W.Value.Data[i] = orig - eps
		minus := forward()
		l.W.Value.Data[i] = orig
		num := (plus - minus) / (2 * eps)
		if math.Abs(num-float64(l.W.Grad.Data[i])) > 1e-2 {
			t.Fatalf("dW[%d] = %v, numeric %v", i, l.W.Grad.Data[i], num)
		}
	}
	// Check dX numerically.
	for i := 0; i < len(x.Data); i += 3 {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		plus := forward()
		x.Data[i] = orig - eps
		minus := forward()
		x.Data[i] = orig
		num := (plus - minus) / (2 * eps)
		if math.Abs(num-float64(dX.Data[i])) > 1e-2 {
			t.Fatalf("dX[%d] = %v, numeric %v", i, dX.Data[i], num)
		}
	}
	// Bias gradient: d(sum)/db_j = #rows.
	for _, g := range l.B.Grad.Data {
		if g != 4 {
			t.Fatalf("db = %v, want 4", g)
		}
	}
}

func TestLinearBackwardBeforeForwardPanics(t *testing.T) {
	l := NewLinear("l", 2, 2, tensor.NewRNG(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Backward(tensor.New(1, 2))
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits over 2 classes → loss = ln 2.
	logits := tensor.FromRows([][]float32{{0, 0}})
	loss, grad := SoftmaxCrossEntropy(logits, []int32{0})
	if math.Abs(loss-math.Log(2)) > 1e-6 {
		t.Fatalf("loss = %v, want ln2", loss)
	}
	// grad = softmax - onehot = [0.5-1, 0.5].
	if math.Abs(float64(grad.At(0, 0)+0.5)) > 1e-6 || math.Abs(float64(grad.At(0, 1)-0.5)) > 1e-6 {
		t.Fatalf("grad = %v", grad.Data)
	}
}

func TestSoftmaxCrossEntropyGradNumeric(t *testing.T) {
	rng := tensor.NewRNG(3)
	logits := tensor.New(3, 4)
	rng.Uniform(logits, -2, 2)
	labels := []int32{1, 3, 0}
	_, grad := SoftmaxCrossEntropy(logits, labels)

	const eps = 1e-2
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig - eps
		lm, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(grad.Data[i])) > 1e-3 {
			t.Fatalf("dlogits[%d] = %v, numeric %v", i, grad.Data[i], num)
		}
	}
}

func TestSoftmaxCrossEntropyEmptyBatch(t *testing.T) {
	loss, grad := SoftmaxCrossEntropy(tensor.New(0, 3), nil)
	if loss != 0 || grad.Rows != 0 {
		t.Fatal("empty batch must be a no-op")
	}
}

func TestBCEWithLogitsKnownAndNumeric(t *testing.T) {
	// logit 0, target 1 → loss = ln 2 per element.
	logits := tensor.FromRows([][]float32{{0}})
	targets := tensor.FromRows([][]float32{{1}})
	loss, _ := BCEWithLogits(logits, targets)
	if math.Abs(loss-math.Log(2)) > 1e-6 {
		t.Fatalf("loss = %v", loss)
	}

	rng := tensor.NewRNG(4)
	lg := tensor.New(2, 3)
	rng.Uniform(lg, -2, 2)
	tg := tensor.FromRows([][]float32{{1, 0, 1}, {0, 0, 1}})
	_, grad := BCEWithLogits(lg, tg)
	const eps = 1e-2
	for i := range lg.Data {
		orig := lg.Data[i]
		lg.Data[i] = orig + eps
		lp, _ := BCEWithLogits(lg, tg)
		lg.Data[i] = orig - eps
		lm, _ := BCEWithLogits(lg, tg)
		lg.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(grad.Data[i])) > 1e-3 {
			t.Fatalf("grad[%d] = %v numeric %v", i, grad.Data[i], num)
		}
	}
}

func TestBCEStableAtExtremeLogits(t *testing.T) {
	logits := tensor.FromRows([][]float32{{1000, -1000}})
	targets := tensor.FromRows([][]float32{{1, 0}})
	loss, grad := BCEWithLogits(logits, targets)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatal("BCE must be stable at extreme logits")
	}
	for _, g := range grad.Data {
		if math.IsNaN(float64(g)) {
			t.Fatal("BCE grad NaN")
		}
	}
}

func TestSGDStep(t *testing.T) {
	p := NewParam("p", 1, 2)
	p.Value.Data[0] = 1
	p.Grad.Data[0] = 0.5
	(&SGD{LR: 0.1}).Step([]*Param{p})
	if math.Abs(float64(p.Value.Data[0]-0.95)) > 1e-6 {
		t.Fatalf("sgd value = %v", p.Value.Data[0])
	}
	if p.Grad.Data[0] != 0 {
		t.Fatal("Step must clear gradients")
	}
}

func TestSGDWeightDecay(t *testing.T) {
	p := NewParam("p", 1, 1)
	p.Value.Data[0] = 1
	(&SGD{LR: 0.1, WeightDecay: 0.5}).Step([]*Param{p})
	// g = 0 + 0.5*1; value = 1 - 0.1*0.5 = 0.95.
	if math.Abs(float64(p.Value.Data[0]-0.95)) > 1e-6 {
		t.Fatalf("decay value = %v", p.Value.Data[0])
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (x - 3)² — Adam should get close quickly.
	p := NewParam("x", 1, 1)
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		x := p.Value.Data[0]
		p.Grad.Data[0] = 2 * (x - 3)
		opt.Step([]*Param{p})
	}
	if math.Abs(float64(p.Value.Data[0]-3)) > 0.05 {
		t.Fatalf("adam converged to %v, want 3", p.Value.Data[0])
	}
}

func TestAdamBeatsNoise(t *testing.T) {
	// First step magnitude should be ≈ LR regardless of gradient scale
	// (bias-corrected), a known Adam property.
	p := NewParam("x", 1, 1)
	p.Grad.Data[0] = 1000
	opt := NewAdam(0.01)
	opt.Step([]*Param{p})
	if math.Abs(float64(p.Value.Data[0]))-0.01 > 1e-4 {
		t.Fatalf("first adam step = %v, want ≈ 0.01", p.Value.Data[0])
	}
}

func TestDropoutTrainProperties(t *testing.T) {
	rng := tensor.NewRNG(5)
	x := tensor.New(100, 10)
	x.Fill(1)
	out, mask := Dropout(x, 0.5, rng)
	if mask == nil {
		t.Fatal("mask expected for p>0")
	}
	zeros := 0
	for i, v := range out.Data {
		if v == 0 {
			zeros++
		} else if math.Abs(float64(v-2)) > 1e-6 {
			t.Fatalf("survivor scaled to %v, want 2", v)
		}
		if mask.Data[i] != 0 && mask.Data[i] != 2 {
			t.Fatalf("mask value %v", mask.Data[i])
		}
	}
	if zeros < 300 || zeros > 700 {
		t.Fatalf("dropped %d of 1000, want ≈ 500", zeros)
	}
	// Backward routes through the same mask.
	d := tensor.New(100, 10)
	d.Fill(1)
	db := DropoutBackward(d, mask)
	for i := range db.Data {
		if db.Data[i] != mask.Data[i] {
			t.Fatal("DropoutBackward must apply the mask")
		}
	}
}

func TestDropoutZeroRateIsIdentity(t *testing.T) {
	x := tensor.FromRows([][]float32{{1, 2}})
	out, mask := Dropout(x, 0, nil)
	if out != x || mask != nil {
		t.Fatal("p=0 must be identity")
	}
	if DropoutBackward(x, nil) != x {
		t.Fatal("nil mask backward must be identity")
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromRows([][]float32{{1, 0}, {0, 1}, {1, 0}})
	got := Accuracy(logits, []int32{0, 1, 1})
	if math.Abs(got-2.0/3.0) > 1e-9 {
		t.Fatalf("accuracy = %v", got)
	}
	if Accuracy(tensor.New(0, 2), nil) != 0 {
		t.Fatal("empty accuracy must be 0")
	}
}

func TestMicroF1PerfectAndEmpty(t *testing.T) {
	logits := tensor.FromRows([][]float32{{1, -1}, {-1, 1}})
	targets := tensor.FromRows([][]float32{{1, 0}, {0, 1}})
	if f1 := MicroF1(logits, targets); f1 != 1 {
		t.Fatalf("perfect F1 = %v", f1)
	}
	allNeg := tensor.FromRows([][]float32{{-1, -1}})
	if f1 := MicroF1(allNeg, tensor.FromRows([][]float32{{1, 1}})); f1 != 0 {
		t.Fatalf("no-positive F1 = %v", f1)
	}
}

func TestMicroF1PartialKnown(t *testing.T) {
	// tp=1 (pos/pos), fp=1 (pos/neg), fn=1 (neg/pos) → P=R=0.5 → F1=0.5.
	logits := tensor.FromRows([][]float32{{1, 1, -1}})
	targets := tensor.FromRows([][]float32{{1, 0, 1}})
	if f1 := MicroF1(logits, targets); math.Abs(f1-0.5) > 1e-9 {
		t.Fatalf("F1 = %v, want 0.5", f1)
	}
}
