// Package nn provides the minimal neural-network toolkit the GNN layers are
// built from: parameters with gradients, a Linear layer with hand-written
// backprop, dropout, softmax/BCE losses, SGD and Adam optimizers, and the
// evaluation metrics the paper reports (accuracy, micro-F1).
package nn

import (
	"fmt"
	"math"

	"inferturbo/internal/tensor"
)

// Param is a trainable matrix with its gradient accumulator and Adam state.
type Param struct {
	Name  string
	Value *tensor.Matrix
	Grad  *tensor.Matrix

	m, v *tensor.Matrix // Adam moments, lazily allocated
}

// NewParam allocates a named parameter with a zeroed gradient.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name:  name,
		Value: tensor.New(rows, cols),
		Grad:  tensor.New(rows, cols),
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// AddGrad accumulates g into the parameter gradient.
func (p *Param) AddGrad(g *tensor.Matrix) { tensor.AddInPlace(p.Grad, g) }

// Linear is a fully connected layer y = xW + b.
type Linear struct {
	W *Param
	B *Param

	lastInput *tensor.Matrix // cached by Forward for Backward
}

// NewLinear creates a Linear layer with Xavier-initialized weights.
func NewLinear(name string, in, out int, rng *tensor.RNG) *Linear {
	l := &Linear{
		W: NewParam(name+".W", in, out),
		B: NewParam(name+".b", 1, out),
	}
	rng.Xavier(l.W.Value)
	return l
}

// Forward computes xW + b and caches x for the backward pass.
func (l *Linear) Forward(x *tensor.Matrix) *tensor.Matrix {
	l.lastInput = x
	return tensor.AddBias(tensor.MatMul(x, l.W.Value), l.B.Value.Row(0))
}

// Apply computes xW + b without caching — the inference path, safe for
// concurrent use.
func (l *Linear) Apply(x *tensor.Matrix) *tensor.Matrix {
	return tensor.AddBias(tensor.MatMul(x, l.W.Value), l.B.Value.Row(0))
}

// ApplyPooled is Apply with the output buffer drawn from p instead of
// allocated, so superstep hot loops can recycle it (values are identical to
// Apply). The returned matrix belongs to the caller, who may Put it back.
func (l *Linear) ApplyPooled(p *tensor.Pool, x *tensor.Matrix) *tensor.Matrix {
	out := p.GetNoZero(x.Rows, l.W.Value.Cols)
	tensor.MatMulInto(out, x, l.W.Value)
	tensor.AddBiasInPlace(out, l.B.Value.Row(0))
	return out
}

// Backward accumulates dW, db and returns dX for the most recent Forward.
func (l *Linear) Backward(dOut *tensor.Matrix) *tensor.Matrix {
	if l.lastInput == nil {
		panic("nn: Linear.Backward before Forward")
	}
	l.W.AddGrad(tensor.MatMulAT(l.lastInput, dOut))
	db := tensor.SumRows(dOut)
	for j, v := range db {
		l.B.Grad.Data[j] += v
	}
	return tensor.MatMulBT(dOut, l.W.Value)
}

// Params returns the layer's trainable parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// Dropout zeroes elements with probability p at train time, scaling the
// survivors by 1/(1-p), and returns the mask for the backward pass.
func Dropout(x *tensor.Matrix, p float32, rng *tensor.RNG) (out, mask *tensor.Matrix) {
	if p <= 0 {
		return x, nil
	}
	if p >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %v", p))
	}
	scale := 1 / (1 - p)
	out = tensor.New(x.Rows, x.Cols)
	mask = tensor.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		if rng.Float32() >= p {
			mask.Data[i] = scale
			out.Data[i] = v * scale
		}
	}
	return out, mask
}

// DropoutBackward routes gradients through a dropout mask.
func DropoutBackward(dOut, mask *tensor.Matrix) *tensor.Matrix {
	if mask == nil {
		return dOut
	}
	return tensor.Hadamard(dOut, mask)
}

// SoftmaxCrossEntropy computes mean cross-entropy of logits against integer
// labels and the gradient w.r.t. logits. Rows are weighted equally.
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int32) (float64, *tensor.Matrix) {
	if logits.Rows != len(labels) {
		panic(fmt.Sprintf("nn: %d logit rows, %d labels", logits.Rows, len(labels)))
	}
	if logits.Rows == 0 {
		return 0, tensor.New(0, logits.Cols)
	}
	probs := tensor.Softmax(logits)
	grad := probs.Clone()
	var loss float64
	inv := 1 / float32(logits.Rows)
	for i, y := range labels {
		p := probs.At(i, int(y))
		loss -= math.Log(math.Max(float64(p), 1e-12))
		grad.Set(i, int(y), grad.At(i, int(y))-1)
	}
	grad.ScaleInPlace(inv)
	return loss / float64(logits.Rows), grad
}

// BCEWithLogits computes mean binary cross-entropy of logits against {0,1}
// targets (multi-label tasks) and the gradient w.r.t. logits.
func BCEWithLogits(logits, targets *tensor.Matrix) (float64, *tensor.Matrix) {
	return BCEWithLogitsWeighted(logits, targets, 1)
}

// BCEWithLogitsWeighted is BCEWithLogits with the positive class scaled by
// posWeight — the standard counter to the sparse-positive imbalance of
// many-class multi-label tasks (PPI has 121 classes, ≈2% positives).
func BCEWithLogitsWeighted(logits, targets *tensor.Matrix, posWeight float32) (float64, *tensor.Matrix) {
	if logits.Rows != targets.Rows || logits.Cols != targets.Cols {
		panic("nn: BCE shape mismatch")
	}
	if posWeight <= 0 {
		posWeight = 1
	}
	n := len(logits.Data)
	if n == 0 {
		return 0, tensor.New(logits.Rows, logits.Cols)
	}
	grad := tensor.New(logits.Rows, logits.Cols)
	var loss float64
	inv := 1 / float32(n)
	w64 := float64(posWeight)
	for i, x := range logits.Data {
		t := targets.Data[i]
		// Stable decomposition: log σ(x) = -max(-x,0) - log1p(e^-|x|),
		// log σ(-x) = -max(x,0) - log1p(e^-|x|).
		x64 := float64(x)
		l1p := math.Log1p(math.Exp(-math.Abs(x64)))
		loss += w64*float64(t)*(math.Max(-x64, 0)+l1p) +
			(1-float64(t))*(math.Max(x64, 0)+l1p)
		sig := float32(1 / (1 + math.Exp(-x64)))
		grad.Data[i] = (sig*(posWeight*t+1-t) - posWeight*t) * inv
	}
	return loss / float64(n), grad
}

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional weight decay.
type SGD struct {
	LR          float32
	WeightDecay float32
}

// Step applies one SGD update and clears gradients.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		for i := range p.Value.Data {
			g := p.Grad.Data[i] + o.WeightDecay*p.Value.Data[i]
			p.Value.Data[i] -= o.LR * g
		}
		p.ZeroGrad()
	}
}

// Adam implements the Adam optimizer with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float32
	WeightDecay           float32
	t                     int
}

// NewAdam returns Adam with the usual defaults.
func NewAdam(lr float32) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one Adam update and clears gradients.
func (o *Adam) Step(params []*Param) {
	o.t++
	bc1 := 1 - float32(math.Pow(float64(o.Beta1), float64(o.t)))
	bc2 := 1 - float32(math.Pow(float64(o.Beta2), float64(o.t)))
	for _, p := range params {
		if p.m == nil {
			p.m = tensor.New(p.Value.Rows, p.Value.Cols)
			p.v = tensor.New(p.Value.Rows, p.Value.Cols)
		}
		for i := range p.Value.Data {
			g := p.Grad.Data[i] + o.WeightDecay*p.Value.Data[i]
			p.m.Data[i] = o.Beta1*p.m.Data[i] + (1-o.Beta1)*g
			p.v.Data[i] = o.Beta2*p.v.Data[i] + (1-o.Beta2)*g*g
			mHat := p.m.Data[i] / bc1
			vHat := p.v.Data[i] / bc2
			p.Value.Data[i] -= o.LR * mHat / (float32(math.Sqrt(float64(vHat))) + o.Eps)
		}
		p.ZeroGrad()
	}
}

// Accuracy is the fraction of rows where argmax(logits) == label.
func Accuracy(logits *tensor.Matrix, labels []int32) float64 {
	if logits.Rows == 0 {
		return 0
	}
	pred := tensor.ArgmaxRows(logits)
	hit := 0
	for i, y := range labels {
		if pred[i] == y {
			hit++
		}
	}
	return float64(hit) / float64(len(labels))
}

// MicroF1 computes micro-averaged F1 of thresholded logits (> 0 ⇒ positive)
// against {0,1} targets — the PPI metric.
func MicroF1(logits, targets *tensor.Matrix) float64 {
	var tp, fp, fn float64
	for i, x := range logits.Data {
		pred := x > 0
		truth := targets.Data[i] > 0.5
		switch {
		case pred && truth:
			tp++
		case pred && !truth:
			fp++
		case !pred && truth:
			fn++
		}
	}
	if tp == 0 {
		return 0
	}
	precision := tp / (tp + fp)
	recall := tp / (tp + fn)
	return 2 * precision * recall / (precision + recall)
}
