package experiments

import (
	"fmt"

	"inferturbo/internal/baseline"
	"inferturbo/internal/cluster"
	"inferturbo/internal/datagen"
	"inferturbo/internal/gas"
	"inferturbo/internal/inference"
	"inferturbo/internal/tensor"
	"inferturbo/internal/train"
)

// Fig7Result is the consistency histogram: per fanout, the count of nodes
// predicted into 1, 2, 3, 4, 5+ distinct classes across the runs; Ours holds
// the same for InferTurbo.
type Fig7Result struct {
	Fanouts   []int
	Histogram map[int][5]int
	Ours      [5]int
	Nodes     int
}

// Fig7 reproduces the consistency experiment (paper Fig 7): repeated sampled
// inference flips predictions, full-graph inference never does.
func Fig7(s Scale) (*Table, *Fig7Result, error) {
	ds := datagen.MAGLike(s.MAGNodes, 64, 3)
	g := ds.Graph
	m, err := trainModel("sage", ds, s.Epochs/2+1, 55)
	if err != nil {
		return nil, nil, err
	}
	out := &Fig7Result{Fanouts: s.Fanouts, Histogram: map[int][5]int{}, Nodes: g.NumNodes}

	countClasses := func(runs [][]int32) [5]int {
		var hist [5]int
		for v := 0; v < g.NumNodes; v++ {
			distinct := map[int32]bool{}
			for _, r := range runs {
				distinct[r[v]] = true
			}
			bucket := len(distinct) - 1
			if bucket > 4 {
				bucket = 4
			}
			hist[bucket]++
		}
		return hist
	}

	for _, fanout := range s.Fanouts {
		var runs [][]int32
		for run := 0; run < s.Runs; run++ {
			res, err := baseline.Run(m, g, baseline.Options{
				Workers: 4, Fanout: fanout, BatchSize: 64, Seed: int64(1000*fanout + run),
			})
			if err != nil {
				return nil, nil, err
			}
			runs = append(runs, res.Classes)
		}
		out.Histogram[fanout] = countClasses(runs)
	}

	// Ours: two runs on each backend; the histogram must be all-ones. The
	// runs deliberately vary the kernel tuning — serial vs. 8-way parallel
	// kernels — extending the consistency claim to the parallel compute
	// layer: worker count must never change a prediction.
	tunings := []tensor.Tuning{{Workers: 1}, {Workers: 8}}
	var ourRuns [][]int32
	for run := 0; run < 2; run++ {
		opts := defaultOpts(s)
		opts.Tuning = tunings[run]
		p, err := inference.RunPregel(m, g, opts)
		if err != nil {
			return nil, nil, err
		}
		mr, err := inference.RunMapReduce(m, g, opts)
		if err != nil {
			return nil, nil, err
		}
		ourRuns = append(ourRuns, p.Classes, mr.Classes)
	}
	out.Ours = countClasses(ourRuns)

	t := &Table{
		Title:   fmt.Sprintf("Fig 7 — classes per node across %d runs (nodes=%d)", s.Runs, g.NumNodes),
		Header:  []string{"system", "1 class", "2", "3", "4", "5+"},
		PaperTL: "nbr10: ~30% of nodes flip; flips shrink with fanout but persist at 1000; ours: zero flips",
	}
	for _, f := range s.Fanouts {
		h := out.Histogram[f]
		t.Rows = append(t.Rows, []string{fmt.Sprintf("nbr%d", f),
			fmtInt(int64(h[0])), fmtInt(int64(h[1])), fmtInt(int64(h[2])), fmtInt(int64(h[3])), fmtInt(int64(h[4]))})
	}
	t.Rows = append(t.Rows, []string{"ours",
		fmtInt(int64(out.Ours[0])), fmtInt(int64(out.Ours[1])), fmtInt(int64(out.Ours[2])), fmtInt(int64(out.Ours[3])), fmtInt(int64(out.Ours[4]))})
	return t, out, nil
}

// Fig8Result is the scalability sweep.
type Fig8Result struct {
	Nodes      []int
	Edges      []int
	Seconds    []float64
	CPUMinutes []float64
}

// Fig8 reproduces the scalability experiment (paper Fig 8): time and
// resource vs data scale on the MapReduce backend with a 2-layer GAT.
func Fig8(s Scale) (*Table, *Fig8Result, error) {
	out := &Fig8Result{}
	t := &Table{
		Title:   "Fig 8 — resource and time vs data scale (2-layer GAT, MR backend)",
		Header:  []string{"nodes", "edges", "time(s)", "resource(cpu·min)"},
		PaperTL: "both curves near-linear in scale; 10B nodes finish within 2 hours (6765 s)",
	}
	for i, nodes := range s.ScaleSweep {
		ds := datagen.PowerLaw(nodes, datagen.SkewIn, int64(10+i))
		g := ds.Graph
		m := gas.NewGATModel("gat-scale", gas.TaskSingleLabel, g.FeatureDim(), 16, 2, g.NumClasses, 2, tensor.NewRNG(3))
		if err := maybeTrain(m, ds); err != nil {
			return nil, nil, err
		}
		run, err := runBackend(m, g, "mapreduce", defaultOpts(s))
		if err != nil {
			return nil, nil, err
		}
		out.Nodes = append(out.Nodes, nodes)
		out.Edges = append(out.Edges, g.NumEdges)
		out.Seconds = append(out.Seconds, run.report.WallSeconds)
		out.CPUMinutes = append(out.CPUMinutes, run.report.CPUMinutes)
		t.Rows = append(t.Rows, []string{
			fmtInt(int64(nodes)), fmtInt(int64(g.NumEdges)),
			fmtFloat(run.report.WallSeconds), fmtFloat(run.report.CPUMinutes),
		})
	}
	return t, out, nil
}

// Fig9Result pairs per-worker in-records with simulated latency, with and
// without partial-gather.
type Fig9Result struct {
	Records     []int64 // original (no-strategy) per-worker input records
	BaseSeconds []float64
	PGSeconds   []float64
	BaseVar     float64
	PGVar       float64
}

// skewedSetup builds the power-law dataset + trained SAGE used by the
// strategy figures.
func skewedSetup(s Scale, skew datagen.Skew) (*gas.Model, *datagen.Dataset, error) {
	ds := datagen.PowerLaw(s.PowerLawNodes, skew, 21)
	g := ds.Graph
	m := gas.NewSAGEModel("sage-skew", gas.TaskSingleLabel, g.FeatureDim(), 32, g.NumClasses, 2, 0, tensor.NewRNG(6))
	if err := maybeTrain(m, ds); err != nil {
		return nil, nil, err
	}
	return m, ds, nil
}

// maybeTrain fits one quick epoch when the dataset has any train-masked
// nodes (the power-law family marks only a millesimal, which vanishes at
// small quick-scale sizes; cost measurements don't need trained weights).
func maybeTrain(m *gas.Model, ds *datagen.Dataset) error {
	if len(graphMasked(ds)) == 0 {
		return nil
	}
	_, err := train.Train(m, ds.Graph, train.Config{Epochs: 1, BatchSize: 32, Fanouts: []int{5, 5}, Seed: 7})
	return err
}

func graphMasked(ds *datagen.Dataset) []int32 {
	var out []int32
	for v, ok := range ds.Graph.TrainMask {
		if ok {
			out = append(out, int32(v))
		}
	}
	return out
}

// Fig9 reproduces the partial-gather latency experiment (paper Fig 9):
// without the strategy, worker latency tracks in-edge count; with it, the
// spread collapses.
func Fig9(s Scale) (*Table, *Fig9Result, error) {
	m, ds, err := skewedSetup(s, datagen.SkewIn)
	if err != nil {
		return nil, nil, err
	}
	base, err := runBackend(m, ds.Graph, "pregel", inference.Options{NumWorkers: s.Workers})
	if err != nil {
		return nil, nil, err
	}
	pg, err := runBackend(m, ds.Graph, "pregel", inference.Options{NumWorkers: s.Workers, PartialGather: true})
	if err != nil {
		return nil, nil, err
	}
	out := &Fig9Result{
		Records:     base.res.Stats.WorkerInRecords,
		BaseSeconds: base.report.WorkerSeconds,
		PGSeconds:   pg.report.WorkerSeconds,
		BaseVar:     cluster.Variance(base.report.WorkerSeconds),
		PGVar:       cluster.Variance(pg.report.WorkerSeconds),
	}
	t := &Table{
		Title:   "Fig 9 — per-worker latency vs in-records, base vs partial-gather",
		Header:  []string{"worker", "in-records(base)", "latency-base(s)", "latency-pg(s)"},
		PaperTL: "base latency grows with in-edges; partial-gather pulls workers onto the mean line",
	}
	for w := range out.Records {
		t.Rows = append(t.Rows, []string{
			fmtInt(int64(w)), fmtInt(out.Records[w]),
			fmtFloat(out.BaseSeconds[w]), fmtFloat(out.PGSeconds[w]),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("latency variance: base %s → pg %s", fmtFloat(out.BaseVar), fmtFloat(out.PGVar)))
	return t, out, nil
}

// Fig10Result holds per-strategy worker-time variances.
type Fig10Result struct {
	Variance map[string]float64
}

// Fig10 reproduces the out-degree strategy comparison (paper Fig 10):
// variance of per-worker time for Base / SN / BC / SN+BC.
func Fig10(s Scale) (*Table, *Fig10Result, error) {
	m, ds, err := skewedSetup(s, datagen.SkewOut)
	if err != nil {
		return nil, nil, err
	}
	configs := []struct {
		name string
		opts inference.Options
	}{
		{"base", inference.Options{NumWorkers: s.Workers}},
		{"sn", inference.Options{NumWorkers: s.Workers, ShadowNodes: true}},
		{"bc", inference.Options{NumWorkers: s.Workers, Broadcast: true}},
		{"sn+bc", inference.Options{NumWorkers: s.Workers, ShadowNodes: true, Broadcast: true}},
	}
	out := &Fig10Result{Variance: map[string]float64{}}
	t := &Table{
		Title:   "Fig 10 — variance of worker time under out-degree strategies",
		Header:  []string{"strategy", "variance", "wall(s)"},
		PaperTL: "SN and BC both cut variance vs base; BC slightly better; SN+BC best for SAGE",
	}
	for _, c := range configs {
		run, err := runBackend(m, ds.Graph, "pregel", c.opts)
		if err != nil {
			return nil, nil, err
		}
		v := cluster.Variance(run.report.WorkerSeconds)
		out.Variance[c.name] = v
		t.Rows = append(t.Rows, []string{c.name, fmtFloat(v), fmtFloat(run.report.WallSeconds)})
	}
	return t, out, nil
}

// Fig11Result is the partial-gather IO comparison.
type Fig11Result struct {
	Records       []int64
	BaseBytesIn   []int64
	PGBytesIn     []int64
	TotalSaving   float64 // fraction of total input bytes saved
	TailSaving    float64 // fraction saved for the slowest 10% of workers
	BaseTailBytes float64
	PGTailBytes   float64
}

// Fig11 reproduces the partial-gather IO experiment (paper Fig 11): input
// bytes capped near a constant with the strategy on.
func Fig11(s Scale) (*Table, *Fig11Result, error) {
	m, ds, err := skewedSetup(s, datagen.SkewIn)
	if err != nil {
		return nil, nil, err
	}
	base, err := runBackend(m, ds.Graph, "pregel", inference.Options{NumWorkers: s.Workers})
	if err != nil {
		return nil, nil, err
	}
	pg, err := runBackend(m, ds.Graph, "pregel", inference.Options{NumWorkers: s.Workers, PartialGather: true})
	if err != nil {
		return nil, nil, err
	}
	out := &Fig11Result{
		Records:     base.res.Stats.WorkerInRecords,
		BaseBytesIn: base.res.Stats.WorkerBytesIn,
		PGBytesIn:   pg.res.Stats.WorkerBytesIn,
	}
	var baseTotal, pgTotal int64
	baseF := make([]float64, len(out.BaseBytesIn))
	pgF := make([]float64, len(out.PGBytesIn))
	for w := range out.BaseBytesIn {
		baseTotal += out.BaseBytesIn[w]
		pgTotal += out.PGBytesIn[w]
		baseF[w] = float64(out.BaseBytesIn[w])
		pgF[w] = float64(out.PGBytesIn[w])
	}
	out.TotalSaving = 1 - float64(pgTotal)/float64(baseTotal)
	out.BaseTailBytes = cluster.TailMean(baseF, 0.1)
	out.PGTailBytes = cluster.TailMean(pgF, 0.1)
	out.TailSaving = 1 - out.PGTailBytes/out.BaseTailBytes

	t := &Table{
		Title:   "Fig 11 — input bytes per worker, base vs partial-gather",
		Header:  []string{"worker", "in-records(base)", "bytes-base", "bytes-pg"},
		PaperTL: "total IO down ~25%, tail-10% workers down ~73%; input capped at workers×nodes level",
	}
	for w := range out.Records {
		t.Rows = append(t.Rows, []string{
			fmtInt(int64(w)), fmtInt(out.Records[w]),
			fmtBytes(out.BaseBytesIn[w]), fmtBytes(out.PGBytesIn[w]),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("total saving %.1f%%, tail-10%% saving %.1f%%", 100*out.TotalSaving, 100*out.TailSaving))
	return t, out, nil
}

// Fig12Result is the broadcast IO threshold sweep.
type Fig12Result struct {
	Thresholds  []int // 0 = base (strategy off)
	TotalBytes  []int64
	TailBytes   []float64 // mean of top-10% workers' output bytes
	TailSavings []float64 // vs base
}

// outDegThresholds derives a threshold sweep for the scale's power-law
// dataset: fractions of the heuristic threshold mirror the paper's
// 10k/50k/100k/300k sweep at 1B-edge scale.
func outDegThresholds(g graphEdges, workers int) []int {
	h := g.NumEdges() / workers / 10 // λ = 0.1 heuristic
	if h < 4 {
		h = 4
	}
	return []int{3 * h, h, h / 2, h / 10}
}

type graphEdges interface{ NumEdges() int }

type graphEdgeCount struct{ n int }

func (g graphEdgeCount) NumEdges() int { return g.n }

// Fig12 reproduces the broadcast IO experiment (paper Fig 12): output bytes
// per worker under decreasing hub thresholds.
func Fig12(s Scale) (*Table, *Fig12Result, error) {
	m, ds, err := skewedSetup(s, datagen.SkewOut)
	if err != nil {
		return nil, nil, err
	}
	thresholds := append([]int{0}, outDegThresholds(graphEdgeCount{ds.Graph.NumEdges}, s.Workers)...)
	out := &Fig12Result{}
	t := &Table{
		Title:   "Fig 12 — output bytes per worker under broadcast thresholds",
		Header:  []string{"threshold", "total-out", "tail10%-out", "tail-saving"},
		PaperTL: "tail-worker output down ~42% at the heuristic threshold; <5% extra gain below it",
	}
	var baseTail float64
	for _, th := range thresholds {
		opts := inference.Options{NumWorkers: s.Workers}
		name := "base"
		if th > 0 {
			opts.Broadcast = true
			opts.HubThreshold = th
			name = fmtInt(int64(th))
		}
		run, err := runBackend(m, ds.Graph, "pregel", opts)
		if err != nil {
			return nil, nil, err
		}
		var total int64
		outF := make([]float64, len(run.res.Stats.WorkerBytesOut))
		for w, b := range run.res.Stats.WorkerBytesOut {
			total += b
			outF[w] = float64(b)
		}
		tail := cluster.TailMean(outF, 0.1)
		if th == 0 {
			baseTail = tail
		}
		saving := 1 - tail/baseTail
		out.Thresholds = append(out.Thresholds, th)
		out.TotalBytes = append(out.TotalBytes, total)
		out.TailBytes = append(out.TailBytes, tail)
		out.TailSavings = append(out.TailSavings, saving)
		t.Rows = append(t.Rows, []string{name, fmtBytes(total), fmtBytes(int64(tail)), fmt.Sprintf("%.1f%%", 100*saving)})
	}
	return t, out, nil
}

// Fig13Result is the shadow-nodes IO threshold sweep.
type Fig13Result struct {
	Thresholds  []int
	TailBytes   []float64
	TailSavings []float64
	Mirrors     []int64
}

// Fig13 reproduces the shadow-nodes IO experiment (paper Fig 13): per-worker
// output bytes (sorted) under decreasing thresholds.
func Fig13(s Scale) (*Table, *Fig13Result, error) {
	m, ds, err := skewedSetup(s, datagen.SkewOut)
	if err != nil {
		return nil, nil, err
	}
	thresholds := append([]int{0}, outDegThresholds(graphEdgeCount{ds.Graph.NumEdges}, s.Workers)...)
	out := &Fig13Result{}
	t := &Table{
		Title:   "Fig 13 — output bytes of tail workers under shadow-node thresholds",
		Header:  []string{"threshold", "mirrors", "tail10%-out", "tail-saving"},
		PaperTL: "tail-worker output down ~53% at the heuristic threshold; overhead grows as threshold drops",
	}
	var baseTail float64
	for _, th := range thresholds {
		opts := inference.Options{NumWorkers: s.Workers}
		name := "base"
		if th > 0 {
			opts.ShadowNodes = true
			opts.HubThreshold = th
			name = fmtInt(int64(th))
		}
		run, err := runBackend(m, ds.Graph, "pregel", opts)
		if err != nil {
			return nil, nil, err
		}
		outF := make([]float64, len(run.res.Stats.WorkerBytesOut))
		for w, b := range run.res.Stats.WorkerBytesOut {
			outF[w] = float64(b)
		}
		tail := cluster.TailMean(outF, 0.1)
		if th == 0 {
			baseTail = tail
		}
		saving := 1 - tail/baseTail
		out.Thresholds = append(out.Thresholds, th)
		out.TailBytes = append(out.TailBytes, tail)
		out.TailSavings = append(out.TailSavings, saving)
		out.Mirrors = append(out.Mirrors, run.res.Stats.ShadowMirrors)
		t.Rows = append(t.Rows, []string{name, fmtInt(run.res.Stats.ShadowMirrors), fmtBytes(int64(tail)), fmt.Sprintf("%.1f%%", 100*saving)})
	}
	return t, out, nil
}
