// Package experiments regenerates every table and figure of the paper's
// evaluation section at laptop scale. Each experiment is a pure function of
// a Scale preset, returning structured results plus a formatted text block;
// cmd/bench prints them and EXPERIMENTS.md records paper-vs-measured.
//
// Absolute numbers cannot match the paper (its substrate was a production
// cluster, ours is a simulated one — see DESIGN.md); every experiment
// therefore states the *shape* property the paper claims, and the package's
// tests assert those shapes.
package experiments

import (
	"fmt"
	"strings"

	"inferturbo/internal/cluster"
	"inferturbo/internal/datagen"
	"inferturbo/internal/gas"
	"inferturbo/internal/graph"
	"inferturbo/internal/inference"
	"inferturbo/internal/tensor"
	"inferturbo/internal/train"
)

// Scale selects experiment sizes. Quick is meant for unit tests; Full for
// the benchmark harness.
type Scale struct {
	Name string
	// Dataset sizes (node counts).
	PPINodes      int
	ProductsNodes int
	MAGNodes      int
	PowerLawNodes int
	// Fig 8 scalability sweep sizes.
	ScaleSweep []int
	// Training effort for Table II.
	Epochs int
	// Consistency runs for Fig 7.
	Runs    int
	Fanouts []int
	// Workers used by our system's runs.
	Workers int
}

// Quick is the test-sized preset.
func Quick() Scale {
	return Scale{
		Name: "quick", PPINodes: 800, ProductsNodes: 800, MAGNodes: 1000,
		PowerLawNodes: 3000, ScaleSweep: []int{500, 1500, 4500},
		Epochs: 6, Runs: 4, Fanouts: []int{2, 5, 20}, Workers: 8,
	}
}

// Full is the benchmark-sized preset.
func Full() Scale {
	return Scale{
		Name: "full", PPINodes: 4000, ProductsNodes: 6000, MAGNodes: 6000,
		PowerLawNodes: 30000, ScaleSweep: []int{3000, 10000, 30000},
		Epochs: 12, Runs: 10, Fanouts: []int{10, 50, 100, 1000}, Workers: 20,
	}
}

// Table renders aligned rows of strings.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Notes   []string
	PaperTL string // one-line statement of the paper's takeaway (the shape)
}

// String renders the table as fixed-width text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.PaperTL != "" {
		fmt.Fprintf(&b, "paper shape: %s\n", t.PaperTL)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// ourRun wraps an InferTurbo run priced on its cluster.
type ourRun struct {
	res    *inference.Result
	report *cluster.Report
}

// runBackend executes model over g on the named backend and prices it.
func runBackend(m *gas.Model, g *graph.Graph, backend string, opts inference.Options) (*ourRun, error) {
	var res *inference.Result
	var spec cluster.Spec
	var err error
	switch backend {
	case "pregel":
		res, err = inference.RunPregel(m, g, opts)
		spec = cluster.PregelCluster()
	case "mapreduce":
		res, err = inference.RunMapReduce(m, g, opts)
		spec = cluster.MapReduceCluster()
	default:
		return nil, fmt.Errorf("experiments: unknown backend %q", backend)
	}
	if err != nil {
		return nil, err
	}
	// Spread the logical workers over the simulated cluster: the run used
	// opts.NumWorkers partitions standing in for spec.Workers instances, so
	// scale the pricing spec down to the partition count while keeping
	// per-instance rates.
	spec.Workers = opts.NumWorkers
	rep, err := cluster.Simulate(spec, res.Phases)
	if err != nil {
		return nil, err
	}
	return &ourRun{res: res, report: rep}, nil
}

// trainModel trains the given architecture for the scale's epoch budget.
func trainModel(arch string, ds *datagen.Dataset, epochs int, seed int64) (*gas.Model, error) {
	g := ds.Graph
	task := gas.TaskSingleLabel
	if g.MultiLabels != nil {
		task = gas.TaskMultiLabel
	}
	var m *gas.Model
	switch arch {
	case "sage":
		m = gas.NewSAGEModel("sage-"+ds.Config.Name, task, g.FeatureDim(), 32, g.NumClasses, 2, 0, tensor.NewRNG(seed))
	case "gat":
		m = gas.NewGATModel("gat-"+ds.Config.Name, task, g.FeatureDim(), 8, 2, g.NumClasses, 2, tensor.NewRNG(seed))
	default:
		return nil, fmt.Errorf("experiments: unknown arch %q", arch)
	}
	cfg := train.Config{
		Epochs: epochs, BatchSize: 64, LR: 0.01,
		Fanouts: []int{10, 10}, Seed: seed + 1,
	}
	if task == gas.TaskMultiLabel {
		// Counter the sparse positives of the many-class PPI-like task.
		cfg.PosWeight = 20
		cfg.LR = 0.02
	}
	_, err := train.Train(m, g, cfg)
	if err != nil {
		return nil, err
	}
	return m, nil
}

func fmtFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v < 0.01:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func fmtInt(v int64) string { return fmt.Sprintf("%d", v) }

func fmtBytes(v int64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(v)/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(v)/(1<<10))
	default:
		return fmt.Sprintf("%dB", v)
	}
}
