package experiments

import (
	"errors"
	"fmt"

	"inferturbo/internal/baseline"
	"inferturbo/internal/cluster"
	"inferturbo/internal/datagen"
	"inferturbo/internal/gas"
	"inferturbo/internal/graph"
	"inferturbo/internal/inference"
	"inferturbo/internal/nn"
	"inferturbo/internal/tensor"
	"inferturbo/internal/train"
)

// Table1 reproduces the dataset summary (paper Table I) over the synthetic
// stand-ins at this scale.
func Table1(s Scale) (*Table, []*datagen.Dataset) {
	sets := []*datagen.Dataset{
		datagen.PPILike(s.PPINodes, 1),
		datagen.ProductsLike(s.ProductsNodes, 2),
		datagen.MAGLike(s.MAGNodes, 64, 3),
		datagen.PowerLaw(s.PowerLawNodes, datagen.SkewIn, 4),
	}
	t := &Table{
		Title:   "Table I — datasets (synthetic stand-ins)",
		Header:  []string{"dataset", "#node", "#edge", "#feat", "#class"},
		PaperTL: "PPI 57k/819k/50/121 · Products 2.4M/62M/100/47 · MAG240M 1.2e8/2.6e9/768/153 · Power-Law 1e10/1e11/200/2",
	}
	for _, ds := range sets {
		g := ds.Graph
		classes := g.NumClasses
		t.Rows = append(t.Rows, []string{
			ds.Config.Name, fmtInt(int64(g.NumNodes)), fmtInt(int64(g.NumEdges)),
			fmtInt(int64(g.FeatureDim())), fmtInt(int64(classes)),
		})
	}
	return t, sets
}

// Table2Result carries the effectiveness scores for the assertions in tests.
type Table2Result struct {
	// Scores[arch][dataset] = {pyg, dgl, ours}.
	Scores map[string]map[string][3]float64
}

// Table2 reproduces the effectiveness comparison (paper Table II): the
// traditional sampled pipelines vs InferTurbo full-graph inference, same
// trained model.
func Table2(s Scale) (*Table, *Table2Result, error) {
	datasets := []*datagen.Dataset{
		datagen.PPILike(s.PPINodes, 1),
		datagen.ProductsLike(s.ProductsNodes, 2),
		datagen.MAGLike(s.MAGNodes, 64, 3),
	}
	t := &Table{
		Title:   "Table II — effectiveness (test metric; micro-F1 for ppi-like, accuracy otherwise)",
		Header:  []string{"algo", "dataset", "PyG-like", "DGL-like", "ours"},
		PaperTL: "ours comparable to PyG/DGL everywhere (e.g. SAGE/MAG240M 0.662/0.664/0.668)",
	}
	out := &Table2Result{Scores: map[string]map[string][3]float64{}}
	for _, arch := range []string{"sage", "gat"} {
		out.Scores[arch] = map[string][3]float64{}
		for di, ds := range datasets {
			m, err := trainModel(arch, ds, s.Epochs, int64(100+di))
			if err != nil {
				return nil, nil, err
			}
			g := ds.Graph

			// Traditional pipelines: sampled k-hop inference. "PyG-like"
			// and "DGL-like" differ only in batching and sampling seed —
			// both are the same architecture class in the paper, scoring
			// within noise of each other.
			scoreBaseline := func(batch int, seed int64) (float64, error) {
				res, err := baseline.Run(m, g, baseline.Options{
					Workers: 4, Fanout: 50, BatchSize: batch, Seed: seed,
				})
				if err != nil {
					return 0, err
				}
				return scoreOnMask(m, g, res.Logits, g.TestMask)
			}
			pyg, err := scoreBaseline(64, 11)
			if err != nil {
				return nil, nil, err
			}
			dgl, err := scoreBaseline(128, 13)
			if err != nil {
				return nil, nil, err
			}

			// Ours: full-graph inference, no sampling.
			ours, err := runBackend(m, g, "pregel", defaultOpts(s))
			if err != nil {
				return nil, nil, err
			}
			ourScore, err := scoreOnMask(m, g, ours.res.Logits, g.TestMask)
			if err != nil {
				return nil, nil, err
			}
			t.Rows = append(t.Rows, []string{
				arch, ds.Config.Name, fmtFloat(pyg), fmtFloat(dgl), fmtFloat(ourScore),
			})
			out.Scores[arch][ds.Config.Name] = [3]float64{pyg, dgl, ourScore}
		}
	}
	return t, out, nil
}

func defaultOpts(s Scale) inference.Options {
	return inference.Options{NumWorkers: s.Workers, PartialGather: true}
}

// scoreOnMask computes the task metric of logits over the masked nodes.
// Logit rows are aligned with node ids.
func scoreOnMask(m *gas.Model, g *graph.Graph, logits *tensor.Matrix, mask []bool) (float64, error) {
	nodes := graph.MaskedNodes(mask)
	if len(nodes) == 0 {
		return 0, errors.New("experiments: empty mask")
	}
	sel := tensor.GatherRows(logits, nodes)
	if m.Task == gas.TaskMultiLabel {
		return nn.MicroF1(sel, tensor.GatherRows(g.MultiLabels, nodes)), nil
	}
	labels := make([]int32, len(nodes))
	for i, v := range nodes {
		labels[i] = g.Labels[v]
	}
	return nn.Accuracy(sel, labels), nil
}

// Table3Result carries the efficiency numbers for assertions.
type Table3Result struct {
	// Minutes and CPUMin indexed by system name per arch.
	Minutes map[string]map[string]float64
	CPUMin  map[string]map[string]float64
}

// Table3 reproduces the efficiency comparison (paper Table III): time and
// resource of the traditional pipelines vs both of our backends on the
// MAG-like dataset.
func Table3(s Scale) (*Table, *Table3Result, error) {
	ds := datagen.MAGLike(s.MAGNodes, 64, 3)
	g := ds.Graph
	t := &Table{
		Title:   "Table III — time and resource on mag-like (simulated cluster)",
		Header:  []string{"algo", "system", "time(min)", "resource(cpu·min)"},
		PaperTL: "ours 30–50× faster and ~40–50× cheaper (SAGE: 780/630/20/15 min)",
	}
	out := &Table3Result{Minutes: map[string]map[string]float64{}, CPUMin: map[string]map[string]float64{}}
	for _, arch := range []string{"sage", "gat"} {
		m, err := trainModel(arch, ds, s.Epochs/2+1, 42)
		if err != nil {
			return nil, nil, err
		}
		out.Minutes[arch] = map[string]float64{}
		out.CPUMin[arch] = map[string]float64{}

		record := func(system string, rep *cluster.Report) {
			minutes := rep.WallSeconds / 60
			t.Rows = append(t.Rows, []string{arch, system, fmtFloat(minutes), fmtFloat(rep.CPUMinutes)})
			out.Minutes[arch][system] = minutes
			out.CPUMin[arch][system] = rep.CPUMinutes
		}

		for _, b := range []struct {
			name  string
			batch int
			seed  int64
		}{{"pyg-like", 64, 1}, {"dgl-like", 128, 2}} {
			res, err := baseline.Run(m, g, baseline.Options{
				Workers: 8, Fanout: 50, BatchSize: b.batch, Seed: b.seed,
			})
			if err != nil {
				return nil, nil, err
			}
			spec := cluster.BaselineCluster()
			spec.Workers = 8
			rep, err := cluster.Simulate(spec, res.Phases)
			if err != nil {
				return nil, nil, err
			}
			record(b.name, rep)
		}

		mr, err := runBackend(m, g, "mapreduce", defaultOpts(s))
		if err != nil {
			return nil, nil, err
		}
		record("on-mr", mr.report)
		pr, err := runBackend(m, g, "pregel", defaultOpts(s))
		if err != nil {
			return nil, nil, err
		}
		record("on-pregel", pr.report)
	}
	return t, out, nil
}

// Table4Result carries the hops sweep for assertions.
type Table4Result struct {
	// Time[system][hops] in minutes; -1 marks OOM.
	Time     map[string][]float64
	Resource map[string][]float64
}

// Table4 reproduces the hops sweep (paper Table IV): time/resource vs GNN
// depth for nbr50, nbr10000 and ours; nbr10000 at 3 hops goes OOM.
func Table4(s Scale) (*Table, *Table4Result, error) {
	ds := datagen.MAGLike(s.MAGNodes, 64, 3)
	g := ds.Graph
	t := &Table{
		Title:   "Table IV — time and resource vs hops (simulated cluster)",
		Header:  []string{"system", "hops", "time(min)", "resource(cpu·min)"},
		PaperTL: "baselines grow exponentially with hops (nbr10000 OOMs at 3); ours grows linearly",
	}
	out := &Table4Result{Time: map[string][]float64{}, Resource: map[string][]float64{}}

	models := map[int]*gas.Model{}
	for hops := 1; hops <= 3; hops++ {
		m := gas.NewSAGEModel(fmt.Sprintf("sage-%dhop", hops), gas.TaskSingleLabel,
			g.FeatureDim(), 32, g.NumClasses, hops, 0, tensor.NewRNG(int64(hops)))
		// A few epochs keep weights realistic; the sweep measures cost.
		if _, err := train.Train(m, g, train.Config{Epochs: 2, BatchSize: 64, Fanouts: fanouts(hops, 10), Seed: int64(hops)}); err != nil {
			return nil, nil, err
		}
		models[hops] = m
	}

	// Memory budget: the paper's cluster had a fixed per-worker budget that
	// nbr50 fit at every depth and nbr10000 exceeded at 3 hops. Scale the
	// same gate to this workload: double the nbr50@3hops peak.
	peak50, err := baselinePeak(models[3], g, 50)
	if err != nil {
		return nil, nil, err
	}
	memLimit := 2 * peak50

	for _, sys := range []struct {
		name   string
		fanout int
	}{{"nbr50", 50}, {"nbr10000", 10000}} {
		out.Time[sys.name] = make([]float64, 4)
		out.Resource[sys.name] = make([]float64, 4)
		for hops := 1; hops <= 3; hops++ {
			res, err := baseline.Run(models[hops], g, baseline.Options{
				Workers: 8, Fanout: sys.fanout, BatchSize: 64, Seed: 7,
				MemLimitBytes: memLimit,
			})
			var oom *cluster.OOMError
			if errors.As(err, &oom) {
				t.Rows = append(t.Rows, []string{sys.name, fmtInt(int64(hops)), "OOM", "OOM"})
				out.Time[sys.name][hops] = -1
				out.Resource[sys.name][hops] = -1
				continue
			}
			if err != nil {
				return nil, nil, err
			}
			spec := cluster.BaselineCluster()
			spec.Workers = 8
			rep, err := cluster.Simulate(spec, res.Phases)
			if err != nil {
				return nil, nil, err
			}
			t.Rows = append(t.Rows, []string{sys.name, fmtInt(int64(hops)), fmtFloat(rep.WallSeconds / 60), fmtFloat(rep.CPUMinutes)})
			out.Time[sys.name][hops] = rep.WallSeconds / 60
			out.Resource[sys.name][hops] = rep.CPUMinutes
		}
	}

	out.Time["ours"] = make([]float64, 4)
	out.Resource["ours"] = make([]float64, 4)
	for hops := 1; hops <= 3; hops++ {
		run, err := runBackend(models[hops], g, "mapreduce", defaultOpts(s))
		if err != nil {
			return nil, nil, err
		}
		t.Rows = append(t.Rows, []string{"ours", fmtInt(int64(hops)), fmtFloat(run.report.WallSeconds / 60), fmtFloat(run.report.CPUMinutes)})
		out.Time["ours"][hops] = run.report.WallSeconds / 60
		out.Resource["ours"][hops] = run.report.CPUMinutes
	}
	t.Notes = append(t.Notes, fmt.Sprintf("memory gate %s per worker (2× the nbr50@3hops peak, mirroring the paper's fixed budget)", fmtBytes(memLimit)))
	return t, out, nil
}

func baselinePeak(m *gas.Model, g *graph.Graph, fanout int) (int64, error) {
	res, err := baseline.Run(m, g, baseline.Options{Workers: 8, Fanout: fanout, BatchSize: 64, Seed: 7})
	if err != nil {
		return 0, err
	}
	var peak int64
	for _, l := range res.Phases[0].Workers {
		if l.PeakMem > peak {
			peak = l.PeakMem
		}
	}
	return peak, nil
}

func fanouts(hops, f int) []int {
	out := make([]int, hops)
	for i := range out {
		out[i] = f
	}
	return out
}
