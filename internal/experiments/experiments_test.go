package experiments

import (
	"strings"
	"testing"
)

// The experiment tests run the Quick scale and assert the paper's *shape*
// claims end-to-end across datagen, train, baseline, inference and cluster.

func TestTable1DatasetShapes(t *testing.T) {
	tbl, sets := Table1(Quick())
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if sets[0].Graph.MultiLabels == nil {
		t.Fatal("ppi-like must be multi-label")
	}
	for _, ds := range sets {
		if err := ds.Graph.Validate(); err != nil {
			t.Fatalf("%s: %v", ds.Config.Name, err)
		}
	}
	if !strings.Contains(tbl.String(), "power-law") {
		t.Fatal("table must include the power-law dataset")
	}
}

func TestTable2OursComparableAndAboveChance(t *testing.T) {
	if testing.Short() {
		t.Skip("trains six models")
	}
	_, res, err := Table2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for arch, byDS := range res.Scores {
		for ds, s := range byDS {
			pyg, dgl, ours := s[0], s[1], s[2]
			// Ours must be comparable: within 0.1 of the sampled baselines
			// (paper: within ~0.01; quick training is noisier).
			if ours < pyg-0.1 || ours < dgl-0.1 {
				t.Errorf("%s/%s: ours %.3f far below baselines %.3f/%.3f", arch, ds, ours, pyg, dgl)
			}
			if ours <= 0 {
				t.Errorf("%s/%s: degenerate score", arch, ds)
			}
		}
	}
}

func TestTable3OursFasterAndCheaper(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two models")
	}
	_, res, err := Table3(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for arch := range res.Minutes {
		pyg := res.Minutes[arch]["pyg-like"]
		mr := res.Minutes[arch]["on-mr"]
		pr := res.Minutes[arch]["on-pregel"]
		if mr >= pyg || pr >= pyg {
			t.Errorf("%s: ours not faster: pyg=%v mr=%v pregel=%v", arch, pyg, mr, pr)
		}
		// The paper's headline: a large constant factor. At quick scale we
		// require at least 3x.
		if pyg/mr < 3 {
			t.Errorf("%s: speedup only %.1fx", arch, pyg/mr)
		}
		if res.CPUMin[arch]["on-mr"] >= res.CPUMin[arch]["pyg-like"] {
			t.Errorf("%s: ours not cheaper", arch)
		}
	}
}

func TestTable4LinearVsExponential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full hops sweep")
	}
	_, res, err := Table4(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// nbr10000 must OOM at 3 hops.
	if res.Time["nbr10000"][3] != -1 {
		t.Errorf("nbr10000@3hops should OOM, got %v min", res.Time["nbr10000"][3])
	}
	// Ours grows sub-quadratically (near-linear): t3/t2 well below t2/t1
	// blow-up of the baseline.
	ours := res.Time["ours"]
	if ours[1] <= 0 || ours[2] <= 0 || ours[3] <= 0 {
		t.Fatalf("ours times missing: %v", ours)
	}
	ourGrowth := ours[3] / ours[1]
	if ourGrowth > 6 {
		t.Errorf("ours grew %0.1fx from 1 to 3 hops; expected near-linear", ourGrowth)
	}
	base := res.Time["nbr50"]
	if base[3] != -1 && base[2] > 0 {
		baseGrowth := base[3] / base[1]
		if baseGrowth <= ourGrowth {
			t.Errorf("baseline growth %.1fx not worse than ours %.1fx", baseGrowth, ourGrowth)
		}
	}
}

func TestFig7SamplingFlipsOursNever(t *testing.T) {
	if testing.Short() {
		t.Skip("many baseline runs")
	}
	_, res, err := Fig7(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Ours: every node in exactly one class across runs and backends.
	if res.Ours[0] != res.Nodes {
		t.Fatalf("ours flipped: histogram %v over %d nodes", res.Ours, res.Nodes)
	}
	// Smallest fanout must flip some nodes.
	smallest := res.Histogram[res.Fanouts[0]]
	flips := res.Nodes - smallest[0]
	if flips == 0 {
		t.Fatal("aggressive sampling should flip some predictions")
	}
	// Flips shrink as fanout grows.
	largest := res.Histogram[res.Fanouts[len(res.Fanouts)-1]]
	if res.Nodes-largest[0] > flips {
		t.Errorf("flips did not shrink with fanout: %d → %d", flips, res.Nodes-largest[0])
	}
}

func TestFig8NearLinearScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scale sweep")
	}
	_, res, err := Fig8(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seconds) != 3 {
		t.Fatalf("sweep points = %d", len(res.Seconds))
	}
	// 3x data → between 1.2x and 9x time (near-linear band, generous at
	// quick scale).
	for i := 1; i < len(res.Seconds); i++ {
		dataRatio := float64(res.Edges[i]) / float64(res.Edges[i-1])
		timeRatio := res.Seconds[i] / res.Seconds[i-1]
		if timeRatio > dataRatio*3 {
			t.Errorf("superlinear: data %.1fx, time %.1fx", dataRatio, timeRatio)
		}
		if timeRatio < 1 {
			t.Errorf("time decreased with scale: %v", res.Seconds)
		}
	}
}

func TestFig9PartialGatherFlattensLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("two full runs")
	}
	_, res, err := Fig9(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.PGVar >= res.BaseVar {
		t.Errorf("partial-gather variance %v not below base %v", res.PGVar, res.BaseVar)
	}
}

func TestFig10StrategiesCutVariance(t *testing.T) {
	if testing.Short() {
		t.Skip("four full runs")
	}
	_, res, err := Fig10(Quick())
	if err != nil {
		t.Fatal(err)
	}
	base := res.Variance["base"]
	for _, s := range []string{"sn", "bc", "sn+bc"} {
		if res.Variance[s] >= base {
			t.Errorf("%s variance %v not below base %v", s, res.Variance[s], base)
		}
	}
}

func TestFig11PartialGatherSavesIO(t *testing.T) {
	if testing.Short() {
		t.Skip("two full runs")
	}
	_, res, err := Fig11(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSaving <= 0 {
		t.Errorf("no total IO saving: %v", res.TotalSaving)
	}
	if res.TailSaving < res.TotalSaving {
		t.Errorf("tail saving %.2f should exceed total saving %.2f (hubs benefit most)",
			res.TailSaving, res.TotalSaving)
	}
}

func TestFig12BroadcastCutsTailOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("threshold sweep")
	}
	_, res, err := Fig12(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Every enabled threshold beats base on tail output.
	for i := 1; i < len(res.Thresholds); i++ {
		if res.TailSavings[i] <= 0 {
			t.Errorf("threshold %d: no tail saving (%.2f)", res.Thresholds[i], res.TailSavings[i])
		}
	}
}

func TestFig13ShadowNodesCutTailOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("threshold sweep")
	}
	_, res, err := Fig13(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Thresholds); i++ {
		if res.Mirrors[i] == 0 {
			t.Errorf("threshold %d created no mirrors", res.Thresholds[i])
		}
		if res.TailSavings[i] <= 0 {
			t.Errorf("threshold %d: no tail saving (%.2f)", res.Thresholds[i], res.TailSavings[i])
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Header:  []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"hello"},
		PaperTL: "shape",
	}
	s := tbl.String()
	for _, want := range []string{"== demo ==", "paper shape: shape", "a", "bb", "333", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
}
