package datagen

import (
	"testing"

	"inferturbo/internal/graph"
	"inferturbo/internal/tensor"
)

func TestGenerateValidGraph(t *testing.T) {
	ds := Generate(Config{
		Name: "t", Nodes: 500, AvgDegree: 8, Skew: SkewIn, Exponent: 1.8,
		FeatureDim: 16, NumClasses: 4, TrainFrac: 0.5, ValFrac: 0.2, Seed: 1,
	})
	g := ds.Graph
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid graph: %v", err)
	}
	if g.NumNodes != 500 {
		t.Fatalf("nodes = %d", g.NumNodes)
	}
	if g.Features.Rows != 500 || g.Features.Cols != 16 {
		t.Fatalf("features = %dx%d", g.Features.Rows, g.Features.Cols)
	}
	if len(g.Labels) != 500 {
		t.Fatal("labels missing")
	}
	for _, l := range g.Labels {
		if l < 0 || int(l) >= 4 {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Nodes: 200, AvgDegree: 5, Skew: SkewOut, Exponent: 2,
		FeatureDim: 8, NumClasses: 3, Seed: 42})
	b := Generate(Config{Nodes: 200, AvgDegree: 5, Skew: SkewOut, Exponent: 2,
		FeatureDim: 8, NumClasses: 3, Seed: 42})
	if a.Graph.NumEdges != b.Graph.NumEdges {
		t.Fatal("same seed must give same edge count")
	}
	if !a.Graph.Features.Equal(b.Graph.Features) {
		t.Fatal("same seed must give identical features")
	}
	as, ad := a.Graph.EdgeList()
	bs, bd := b.Graph.EdgeList()
	for i := range as {
		if as[i] != bs[i] || ad[i] != bd[i] {
			t.Fatal("same seed must give identical edges")
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a := Generate(Config{Nodes: 200, AvgDegree: 5, FeatureDim: 8, NumClasses: 3, Seed: 1, Skew: SkewNone})
	b := Generate(Config{Nodes: 200, AvgDegree: 5, FeatureDim: 8, NumClasses: 3, Seed: 2, Skew: SkewNone})
	if a.Graph.Features.Equal(b.Graph.Features) {
		t.Fatal("different seeds should give different features")
	}
}

func TestSkewInProducesInDegreeSkew(t *testing.T) {
	ds := Generate(Config{Nodes: 2000, AvgDegree: 10, Skew: SkewIn, Exponent: 1.6,
		FeatureDim: 4, NumClasses: 2, Seed: 3})
	in := graph.InDegreeStats(ds.Graph)
	out := graph.OutDegreeStats(ds.Graph)
	if in.Gini <= out.Gini {
		t.Fatalf("in-skew dataset must have more unequal in-degrees: in=%v out=%v", in.Gini, out.Gini)
	}
	if in.Max < 5*int(in.Mean) {
		t.Fatalf("expected hub nodes: max=%d mean=%v", in.Max, in.Mean)
	}
}

func TestSkewOutProducesOutDegreeSkew(t *testing.T) {
	ds := Generate(Config{Nodes: 2000, AvgDegree: 10, Skew: SkewOut, Exponent: 1.6,
		FeatureDim: 4, NumClasses: 2, Seed: 4})
	in := graph.InDegreeStats(ds.Graph)
	out := graph.OutDegreeStats(ds.Graph)
	if out.Gini <= in.Gini {
		t.Fatalf("out-skew dataset must have more unequal out-degrees: in=%v out=%v", in.Gini, out.Gini)
	}
}

func TestEdgeCountNearTarget(t *testing.T) {
	cfg := Config{Nodes: 1000, AvgDegree: 10, Skew: SkewIn, Exponent: 1.8,
		FeatureDim: 4, NumClasses: 2, Seed: 5}
	ds := Generate(cfg)
	target := cfg.Nodes * cfg.AvgDegree
	got := ds.Graph.NumEdges
	if got < target/2 || got > target*2 {
		t.Fatalf("edges = %d, target %d", got, target)
	}
}

func TestMasksPartition(t *testing.T) {
	rng := tensor.NewRNG(1)
	train, val, test := SplitMasks(100, 0.6, 0.2, rng)
	nTrain, nVal, nTest := 0, 0, 0
	for i := 0; i < 100; i++ {
		set := 0
		if train[i] {
			set++
			nTrain++
		}
		if val[i] {
			set++
			nVal++
		}
		if test[i] {
			set++
			nTest++
		}
		if set != 1 {
			t.Fatalf("node %d in %d masks", i, set)
		}
	}
	if nTrain != 60 || nVal != 20 || nTest != 20 {
		t.Fatalf("split = %d/%d/%d", nTrain, nVal, nTest)
	}
}

func TestPPILikeIsMultiLabel(t *testing.T) {
	ds := PPILike(300, 1)
	g := ds.Graph
	if g.MultiLabels == nil || g.Labels != nil {
		t.Fatal("PPI-like must be multi-label")
	}
	if g.MultiLabels.Cols != 121 {
		t.Fatalf("classes = %d", g.MultiLabels.Cols)
	}
	if g.Features.Cols != 50 {
		t.Fatalf("feature dim = %d", g.Features.Cols)
	}
	// Every node has at least its primary label.
	for v := 0; v < g.NumNodes; v++ {
		var s float32
		for _, x := range g.MultiLabels.Row(v) {
			s += x
		}
		if s < 1 {
			t.Fatalf("node %d has no labels", v)
		}
	}
}

func TestProductsLikeShape(t *testing.T) {
	ds := ProductsLike(400, 2)
	if ds.Graph.NumClasses != 47 || ds.Graph.Features.Cols != 100 {
		t.Fatal("products-like dims wrong")
	}
	if err := ds.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMAGLikeShape(t *testing.T) {
	ds := MAGLike(400, 0, 3)
	if ds.Graph.NumClasses != 153 || ds.Graph.Features.Cols != 128 {
		t.Fatal("mag-like dims wrong")
	}
	ds2 := MAGLike(100, 32, 3)
	if ds2.Graph.Features.Cols != 32 {
		t.Fatal("featureDim override ignored")
	}
}

func TestPowerLawTrainFractionIsMillesimal(t *testing.T) {
	ds := PowerLaw(3000, SkewIn, 4)
	n := 0
	for _, m := range ds.Graph.TrainMask {
		if m {
			n++
		}
	}
	if n == 0 || n > 3000/100 {
		t.Fatalf("train nodes = %d, want about 3", n)
	}
}

func TestHomophilyMakesTaskLearnable(t *testing.T) {
	// With strong homophily, the majority label among in-neighbors should
	// usually match the node's own label — the signal GNNs exploit.
	ds := Generate(Config{Nodes: 1500, AvgDegree: 12, Skew: SkewNone,
		FeatureDim: 8, NumClasses: 3, Homophily: 0.9, Seed: 6})
	g := ds.Graph
	agree, total := 0, 0
	for v := int32(0); v < int32(g.NumNodes); v++ {
		for _, u := range g.InNeighbors(v) {
			total++
			if g.Labels[u] == g.Labels[v] {
				agree++
			}
		}
	}
	if total == 0 {
		t.Fatal("no edges")
	}
	if frac := float64(agree) / float64(total); frac < 0.6 {
		t.Fatalf("homophily fraction = %v, want > 0.6", frac)
	}
}

func TestEdgeFeatureFlag(t *testing.T) {
	ds := Generate(Config{Nodes: 100, AvgDegree: 4, Skew: SkewNone,
		FeatureDim: 4, NumClasses: 2, Seed: 7, EdgeFeature: true})
	if ds.Graph.EdgeFeatures == nil || ds.Graph.EdgeFeatures.Cols != 4 {
		t.Fatal("edge features missing")
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(Config{Nodes: 0, AvgDegree: 1, FeatureDim: 1, NumClasses: 1})
}
