// Package datagen synthesizes the four evaluation datasets of the paper at
// laptop scale: PPI-like (multi-label), Products-like, MAG-like, and the
// Power-Law family used for scalability and straggler experiments.
//
// The real datasets are not shippable here, so each generator plants a
// community structure (SBM-style): nodes belong to communities, features are
// noisy community prototypes, labels derive from communities, and edges are
// homophilous. That makes the node-classification task genuinely learnable,
// which is all the effectiveness experiments need. The power-law generators
// additionally let the caller choose which side (in or out) follows the
// skewed law, exactly as the paper does for variable-controlled straggler
// analysis.
package datagen

import (
	"fmt"

	"inferturbo/internal/graph"
	"inferturbo/internal/tensor"
)

// Skew selects which degree distribution follows the power law.
type Skew int

const (
	// SkewNone gives near-uniform degrees on both sides.
	SkewNone Skew = iota
	// SkewIn makes in-degrees power-law distributed (hub receivers).
	SkewIn
	// SkewOut makes out-degrees power-law distributed (hub broadcasters).
	SkewOut
)

func (s Skew) String() string {
	switch s {
	case SkewIn:
		return "in"
	case SkewOut:
		return "out"
	default:
		return "none"
	}
}

// Config parameterizes a synthetic dataset.
type Config struct {
	Name        string
	Nodes       int
	AvgDegree   int     // target average degree; edges ≈ Nodes*AvgDegree
	Skew        Skew    // which side is power-law
	Exponent    float64 // power-law exponent (typ. 1.6–2.2); ignored for SkewNone
	MaxDegree   int     // cap for skewed degrees; 0 = Nodes/2
	FeatureDim  int
	NumClasses  int
	MultiLabel  bool    // PPI-style multi-label task
	Homophily   float64 // probability an edge endpoint is drawn intra-community
	Noise       float64 // feature noise std relative to prototype scale
	TrainFrac   float64 // fraction of nodes in the train mask
	ValFrac     float64
	Seed        int64
	EdgeFeature bool // attach a 4-dim edge feature
}

// Dataset is a generated graph plus its provenance.
type Dataset struct {
	Config Config
	Graph  *graph.Graph
}

// Generate builds the dataset for the given config. Generation is fully
// deterministic in Config.Seed.
func Generate(cfg Config) *Dataset {
	if cfg.Nodes <= 0 || cfg.AvgDegree <= 0 || cfg.NumClasses <= 0 || cfg.FeatureDim <= 0 {
		panic(fmt.Sprintf("datagen: invalid config %+v", cfg))
	}
	if cfg.Homophily == 0 {
		cfg.Homophily = 0.7
	}
	if cfg.Noise == 0 {
		cfg.Noise = 0.5
	}
	if cfg.MaxDegree == 0 {
		cfg.MaxDegree = cfg.Nodes / 2
		if cfg.MaxDegree < 2 {
			cfg.MaxDegree = 2
		}
	}
	rng := tensor.NewRNG(cfg.Seed)

	// Communities: one per class keeps labels learnable from structure.
	community := make([]int32, cfg.Nodes)
	members := make([][]int32, cfg.NumClasses)
	for v := 0; v < cfg.Nodes; v++ {
		c := int32(rng.Intn(cfg.NumClasses))
		community[v] = c
		members[c] = append(members[c], int32(v))
	}

	// Per-node degree budget on the skewed side.
	targetEdges := cfg.Nodes * cfg.AvgDegree
	degrees := make([]int, cfg.Nodes)
	switch cfg.Skew {
	case SkewNone:
		for v := range degrees {
			degrees[v] = cfg.AvgDegree
		}
	default:
		total := 0
		for v := range degrees {
			degrees[v] = rng.Zipf(cfg.Exponent, cfg.MaxDegree)
			total += degrees[v]
		}
		// Rescale so the edge total lands near the target while preserving
		// the shape; every node keeps at least one edge.
		scale := float64(targetEdges) / float64(total)
		for v := range degrees {
			d := int(float64(degrees[v]) * scale)
			if d < 1 {
				d = 1
			}
			if d > cfg.Nodes-1 {
				d = cfg.Nodes - 1
			}
			degrees[v] = d
		}
	}

	b := graph.NewBuilder(cfg.Nodes)
	var efeat []float32
	pick := func(v int32) int32 {
		// Draw an opposite endpoint, homophilous w.p. cfg.Homophily.
		if rng.Float64() < cfg.Homophily {
			m := members[community[v]]
			if len(m) > 1 {
				for {
					u := m[rng.Intn(len(m))]
					if u != v {
						return u
					}
				}
			}
		}
		for {
			u := int32(rng.Intn(cfg.Nodes))
			if u != v {
				return u
			}
		}
	}
	for v := int32(0); v < int32(cfg.Nodes); v++ {
		for i := 0; i < degrees[v]; i++ {
			u := pick(v)
			if cfg.EdgeFeature {
				efeat = []float32{rng.Float32(), rng.Float32(), rng.Float32(), rng.Float32()}
			}
			switch cfg.Skew {
			case SkewIn:
				b.AddEdge(u, v, efeat) // v's budget is its in-degree
			default:
				b.AddEdge(v, u, efeat) // v's budget is its out-degree
			}
		}
	}
	g := b.Build()

	// Features: community prototype + Gaussian noise.
	prototypes := tensor.New(cfg.NumClasses, cfg.FeatureDim)
	rng.Uniform(prototypes, -1, 1)
	feats := tensor.New(cfg.Nodes, cfg.FeatureDim)
	for v := 0; v < cfg.Nodes; v++ {
		proto := prototypes.Row(int(community[v]))
		row := feats.Row(v)
		for j := range row {
			row[j] = proto[j] + float32(rng.NormFloat64())*float32(cfg.Noise)
		}
	}
	g.Features = feats
	g.NumClasses = cfg.NumClasses

	if cfg.MultiLabel {
		ml := tensor.New(cfg.Nodes, cfg.NumClasses)
		for v := 0; v < cfg.Nodes; v++ {
			ml.Set(v, int(community[v]), 1)
			// Secondary labels: a couple of correlated classes per node.
			for k := 0; k < 2; k++ {
				c := (int(community[v]) + 1 + rng.Intn(cfg.NumClasses-1)) % cfg.NumClasses
				if rng.Float64() < 0.3 {
					ml.Set(v, c, 1)
				}
			}
		}
		g.MultiLabels = ml
	} else {
		labels := make([]int32, cfg.Nodes)
		copy(labels, community)
		g.Labels = labels
	}

	g.TrainMask, g.ValMask, g.TestMask = SplitMasks(cfg.Nodes, cfg.TrainFrac, cfg.ValFrac, rng)
	return &Dataset{Config: cfg, Graph: g}
}

// SplitMasks partitions [0, n) into train/val/test masks with the given
// fractions (test takes the remainder), shuffled deterministically.
func SplitMasks(n int, trainFrac, valFrac float64, rng *tensor.RNG) (train, val, test []bool) {
	train = make([]bool, n)
	val = make([]bool, n)
	test = make([]bool, n)
	perm := rng.Perm(n)
	nTrain := int(float64(n) * trainFrac)
	nVal := int(float64(n) * valFrac)
	for i, v := range perm {
		switch {
		case i < nTrain:
			train[v] = true
		case i < nTrain+nVal:
			val[v] = true
		default:
			test[v] = true
		}
	}
	return train, val, test
}

// PPILike mirrors the PPI setting: multi-label, 50 features, 121 classes.
// The node count is configurable so tests can shrink it; the paper's PPI has
// 57k nodes and 819k edges (avg degree ≈ 14).
func PPILike(nodes int, seed int64) *Dataset {
	return Generate(Config{
		Name: "ppi-like", Nodes: nodes, AvgDegree: 14, Skew: SkewNone,
		FeatureDim: 50, NumClasses: 121, MultiLabel: true,
		TrainFrac: 0.6, ValFrac: 0.2, Seed: seed,
	})
}

// ProductsLike mirrors OGB-Products: 100 features, 47 classes, mild skew.
func ProductsLike(nodes int, seed int64) *Dataset {
	return Generate(Config{
		Name: "products-like", Nodes: nodes, AvgDegree: 25, Skew: SkewIn,
		Exponent: 2.0, FeatureDim: 100, NumClasses: 47,
		TrainFrac: 0.1, ValFrac: 0.05, Seed: seed,
	})
}

// MAGLike mirrors the MAG240M subset the paper uses: 153 classes and a
// larger feature dim (the paper uses 768; we default to 128 to keep laptop
// runtimes sane — pass featureDim to override).
func MAGLike(nodes, featureDim int, seed int64) *Dataset {
	if featureDim <= 0 {
		featureDim = 128
	}
	return Generate(Config{
		Name: "mag-like", Nodes: nodes, AvgDegree: 22, Skew: SkewIn,
		Exponent: 1.9, FeatureDim: featureDim, NumClasses: 153,
		TrainFrac: 0.01, ValFrac: 0.01, Seed: seed,
	})
}

// PowerLaw mirrors the paper's synthetic family: 200 features, 2 classes,
// avg degree 10 (paper: 10^10 nodes / 10^11 edges at the top scale), with
// the requested side following the power law. Only a millesimal of nodes is
// marked for training, as in the paper.
func PowerLaw(nodes int, skew Skew, seed int64) *Dataset {
	return Generate(Config{
		Name: fmt.Sprintf("power-law-%s-%d", skew, nodes), Nodes: nodes,
		AvgDegree: 10, Skew: skew, Exponent: 1.8,
		FeatureDim: 200, NumClasses: 2,
		TrainFrac: 0.001, ValFrac: 0.001, Seed: seed,
	})
}
