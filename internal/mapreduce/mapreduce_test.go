package mapreduce

import (
	"sort"
	"strings"
	"testing"
)

// runWordCount executes the canonical two-phase wordcount on the engine.
func runWordCount(t *testing.T, cfg Config[string, int], lines []string) map[string]int {
	t.Helper()
	mapped := MapRound(lines, 3, func(line string, emit Emitter[string, int]) {
		for _, w := range strings.Fields(line) {
			emit(strings.ToLower(w), 1)
		}
	})
	eng := New(cfg)
	out, _, err := eng.Round("count", mapped, func(_ int, key string, values []int, emit Emitter[string, int]) {
		total := 0
		for _, v := range values {
			total += v
		}
		emit(key, total)
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, part := range out {
		for _, p := range part {
			counts[p.Key] += p.Value
		}
	}
	return counts
}

var corpus = []string{
	"the quick brown fox",
	"jumps over the lazy dog",
	"the dog barks",
	"quick quick fox",
}

var wantCounts = map[string]int{
	"the": 3, "quick": 3, "fox": 2, "dog": 2,
	"brown": 1, "jumps": 1, "over": 1, "lazy": 1, "barks": 1,
}

func TestWordCount(t *testing.T) {
	got := runWordCount(t, Config[string, int]{NumReducers: 4}, corpus)
	if len(got) != len(wantCounts) {
		t.Fatalf("got %d words, want %d: %v", len(got), len(wantCounts), got)
	}
	for w, c := range wantCounts {
		if got[w] != c {
			t.Fatalf("count[%s] = %d, want %d", w, got[w], c)
		}
	}
}

func TestWordCountWithCombiner(t *testing.T) {
	cfg := Config[string, int]{
		NumReducers: 4,
		Combine: func(_ string, values []int) []int {
			total := 0
			for _, v := range values {
				total += v
			}
			return []int{total}
		},
	}
	got := runWordCount(t, cfg, corpus)
	for w, c := range wantCounts {
		if got[w] != c {
			t.Fatalf("combined count[%s] = %d, want %d", w, got[w], c)
		}
	}
}

func TestCombinerReducesShuffleRecords(t *testing.T) {
	// "quick quick quick ..." from one mapper should collapse to one record.
	lines := []string{strings.Repeat("word ", 50)}
	mapped := MapRound(lines, 1, func(line string, emit Emitter[string, int]) {
		for _, w := range strings.Fields(line) {
			emit(w, 1)
		}
	})
	eng := New(Config[string, int]{
		NumReducers: 2,
		Combine: func(_ string, values []int) []int {
			total := 0
			for _, v := range values {
				total += v
			}
			return []int{total}
		},
	})
	_, m, err := eng.Round("count", mapped, func(_ int, key string, values []int, emit Emitter[string, int]) {
		emit(key, len(values))
	})
	if err != nil {
		t.Fatal(err)
	}
	var in, combined int64
	for _, tm := range m.Reducers {
		in += tm.InputRecords
		combined += tm.CombinedAway
	}
	if in != 1 {
		t.Fatalf("input records = %d, want 1 after combining", in)
	}
	if combined != 49 {
		t.Fatalf("combined away = %d, want 49", combined)
	}
}

func TestWordCountWithDiskSpill(t *testing.T) {
	cfg := Config[string, int]{NumReducers: 3, SpillDir: t.TempDir()}
	got := runWordCount(t, cfg, corpus)
	for w, c := range wantCounts {
		if got[w] != c {
			t.Fatalf("spilled count[%s] = %d, want %d", w, got[w], c)
		}
	}
}

func TestSpillMetricsUseRealBytes(t *testing.T) {
	mapped := MapRound([]string{"a a a b"}, 1, func(line string, emit Emitter[string, int]) {
		for _, w := range strings.Fields(line) {
			emit(w, 1)
		}
	})
	eng := New(Config[string, int]{NumReducers: 2, SpillDir: t.TempDir()})
	_, m, err := eng.Round("r", mapped, func(_ int, key string, values []int, emit Emitter[string, int]) {
		emit(key, len(values))
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.ShuffleBytes == 0 || m.SpilledFiles != 2 {
		t.Fatalf("spill metrics = %d bytes, %d files", m.ShuffleBytes, m.SpilledFiles)
	}
}

func TestChainedRounds(t *testing.T) {
	// Round 1 counts words; round 2 buckets counts by frequency.
	mapped := MapRound(corpus, 2, func(line string, emit Emitter[string, int]) {
		for _, w := range strings.Fields(line) {
			emit(strings.ToLower(w), 1)
		}
	})
	eng := New(Config[string, int]{NumReducers: 3})
	counts, _, err := eng.Round("count", mapped, func(_ int, key string, values []int, emit Emitter[string, int]) {
		total := 0
		for _, v := range values {
			total += v
		}
		emit(key, total)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Second round: key = "freq:<n>", value = 1 per word with that count.
	reKeyed := make([][]Pair[string, int], len(counts))
	for i, part := range counts {
		for _, p := range part {
			reKeyed[i] = append(reKeyed[i], Pair[string, int]{Key: "freq", Value: p.Value})
		}
	}
	hist, _, err := eng.Round("hist", reKeyed, func(_ int, key string, values []int, emit Emitter[string, int]) {
		byFreq := map[int]int{}
		for _, v := range values {
			byFreq[v]++
		}
		for f, n := range byFreq {
			emit(key, f*1000+n) // encode (freq, n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var encoded []int
	for _, part := range hist {
		for _, p := range part {
			encoded = append(encoded, p.Value)
		}
	}
	sort.Ints(encoded)
	// freq 1 ×5 words, freq 2 ×2, freq 3 ×2.
	want := []int{1005, 2002, 3002}
	if len(encoded) != len(want) {
		t.Fatalf("hist = %v", encoded)
	}
	for i := range want {
		if encoded[i] != want[i] {
			t.Fatalf("hist = %v, want %v", encoded, want)
		}
	}
	if len(eng.Rounds()) != 2 {
		t.Fatalf("round metrics = %d, want 2", len(eng.Rounds()))
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []Pair[int32, int] {
		mapped := MapRound([]int{5, 3, 8, 3, 5, 5}, 2, func(v int, emit Emitter[int32, int]) {
			emit(int32(v), 1)
		})
		eng := New(Config[int32, int]{NumReducers: 3})
		out, _, err := eng.Round("r", mapped, func(_ int, key int32, values []int, emit Emitter[int32, int]) {
			emit(key, len(values))
		})
		if err != nil {
			t.Fatal(err)
		}
		var flat []Pair[int32, int]
		for _, part := range out {
			flat = append(flat, part...)
		}
		return flat
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic output size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic output at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	collect := func(parallel bool) map[string]int {
		return runWordCount(t, Config[string, int]{NumReducers: 5, Parallel: parallel}, corpus)
	}
	seq, par := collect(false), collect(true)
	for w, c := range seq {
		if par[w] != c {
			t.Fatalf("parallel diverges at %q: %d vs %d", w, par[w], c)
		}
	}
}

func TestPartitionCoversAllReducers(t *testing.T) {
	eng := New(Config[int32, int]{NumReducers: 4})
	seen := map[int]bool{}
	for k := int32(0); k < 100; k++ {
		p := eng.cfg.Partition(k)
		if p < 0 || p >= 4 {
			t.Fatalf("partition %d out of range", p)
		}
		seen[p] = true
	}
	if len(seen) != 4 {
		t.Fatalf("only %d reducers used", len(seen))
	}
}

func TestKeysProcessedMetric(t *testing.T) {
	mapped := MapRound([]string{"a b c a"}, 1, func(line string, emit Emitter[string, int]) {
		for _, w := range strings.Fields(line) {
			emit(w, 1)
		}
	})
	eng := New(Config[string, int]{NumReducers: 2})
	_, m, err := eng.Round("r", mapped, func(_ int, key string, values []int, emit Emitter[string, int]) {})
	if err != nil {
		t.Fatal(err)
	}
	var keys int64
	for _, tm := range m.Reducers {
		keys += tm.KeysProcessed
	}
	if keys != 3 {
		t.Fatalf("keys processed = %d, want 3", keys)
	}
}

func TestNewPanicsOnBadReducers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config[string, int]{NumReducers: 0})
}

func TestMapRoundPanicsOnBadMappers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MapRound([]int{1}, 0, func(int, Emitter[int, int]) {})
}

func TestEmptyInputRound(t *testing.T) {
	eng := New(Config[string, int]{NumReducers: 2})
	out, m, err := eng.Round("empty", nil, func(_ int, key string, values []int, emit Emitter[string, int]) {
		emit(key, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range out {
		if len(part) != 0 {
			t.Fatal("empty input must produce empty output")
		}
	}
	if m.ShuffleBytes != 0 {
		t.Fatal("no shuffle bytes expected")
	}
}
