// Package mapreduce implements a batch-processing engine in the MapReduce
// mold: rounds of map → combine → shuffle → reduce over key/value pairs,
// with deterministic grouping, optional sender-side combining (the hook the
// paper's partial-gather uses on this backend), optional disk-spilled
// shuffles (the "messages are exchanged with external storage" property that
// lets the backend scale past memory), and per-task IO accounting that feeds
// the cluster cost model.
//
// InferTurbo's second backend chains k+1 rounds of this engine to execute a
// k-layer GNN; wordcount in the tests validates the engine itself.
package mapreduce

import (
	"cmp"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Pair is one key/value record flowing between rounds.
type Pair[K cmp.Ordered, V any] struct {
	Key   K
	Value V
}

// Emitter receives records produced by map or reduce functions.
type Emitter[K cmp.Ordered, V any] func(key K, value V)

// Config tunes an engine.
type Config[K cmp.Ordered, V any] struct {
	// NumReducers is the reduce-task count (the paper's instance count).
	NumReducers int
	// Combine optionally merges the values of one key within one producing
	// task before shuffle — MapReduce's combiner.
	Combine func(key K, values []V) []V
	// ValueBytes estimates a record's wire size for IO accounting; a
	// constant 64 bytes when nil. Ignored when SpillDir is set (real
	// serialized sizes are used instead).
	ValueBytes func(V) int
	// Partition overrides the key → reducer mapping (default: FNV hash).
	Partition func(K) int
	// SpillDir, when non-empty, routes every shuffle through gob-encoded
	// files under the directory, so a round's working set never has to fit
	// in one task's memory. Byte metrics then reflect real encoded sizes.
	SpillDir string
	// Parallel runs reduce tasks on goroutines.
	Parallel bool
}

// TaskMetrics records one task's activity during one round.
type TaskMetrics struct {
	Task          int
	InputRecords  int64
	InputBytes    int64
	OutputRecords int64
	OutputBytes   int64
	KeysProcessed int64
	CombinedAway  int64
}

// RoundMetrics aggregates one round.
type RoundMetrics struct {
	Name         string
	Reducers     []TaskMetrics
	ShuffleBytes int64
	SpilledFiles int
}

// Engine executes rounds. The zero value is unusable; construct with New.
type Engine[K cmp.Ordered, V any] struct {
	cfg    Config[K, V]
	rounds []RoundMetrics
}

// New validates the config and returns an engine.
func New[K cmp.Ordered, V any](cfg Config[K, V]) *Engine[K, V] {
	if cfg.NumReducers <= 0 {
		panic(fmt.Sprintf("mapreduce: invalid reducer count %d", cfg.NumReducers))
	}
	if cfg.ValueBytes == nil {
		cfg.ValueBytes = func(V) int { return 64 }
	}
	if cfg.Partition == nil {
		cfg.Partition = func(k K) int { return defaultPartition(k, cfg.NumReducers) }
	}
	return &Engine[K, V]{cfg: cfg}
}

func defaultPartition[K cmp.Ordered](k K, n int) int {
	switch v := any(k).(type) {
	case int:
		return abs(v) % n
	case int32:
		return abs(int(v)) % n
	case int64:
		return abs(int(v)) % n
	case string:
		h := fnv.New32a()
		h.Write([]byte(v))
		return int(h.Sum32()) % n
	default:
		h := fnv.New32a()
		fmt.Fprintf(h, "%v", v)
		return int(h.Sum32()) % n
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// MapRound partitions inputs across numMappers map tasks and collects each
// task's emissions, producing the producer-partitioned record lists a
// subsequent Round consumes. Mapper i processes inputs i, i+numMappers, ...
// so the split is deterministic.
func MapRound[I any, K cmp.Ordered, V any](inputs []I, numMappers int, mapFn func(item I, emit Emitter[K, V])) [][]Pair[K, V] {
	if numMappers <= 0 {
		panic("mapreduce: invalid mapper count")
	}
	out := make([][]Pair[K, V], numMappers)
	for m := 0; m < numMappers; m++ {
		emit := func(k K, v V) {
			out[m] = append(out[m], Pair[K, V]{Key: k, Value: v})
		}
		for i := m; i < len(inputs); i += numMappers {
			mapFn(inputs[i], emit)
		}
	}
	return out
}

// Round shuffles producer-partitioned inputs by key and runs reduce over
// each key group, returning the reducer-partitioned outputs (which can feed
// the next Round) and this round's metrics. Keys within a reduce task are
// processed in ascending order, so sentinel keys that sort low (e.g.
// negative broadcast keys) are guaranteed to be seen before node keys; the
// task id lets reducers keep per-task scratch state across key groups.
func (e *Engine[K, V]) Round(name string, inputs [][]Pair[K, V], reduce func(task int, key K, values []V, emit Emitter[K, V])) ([][]Pair[K, V], RoundMetrics, error) {
	r := e.cfg.NumReducers
	metrics := RoundMetrics{Name: name, Reducers: make([]TaskMetrics, r)}
	for i := range metrics.Reducers {
		metrics.Reducers[i].Task = i
	}

	// Combine within each producing task, then bucket records by reducer.
	buckets := make([][]Pair[K, V], r)
	for _, produced := range inputs {
		records := produced
		if e.cfg.Combine != nil {
			combined, removed := combineTask(records, e.cfg.Combine)
			records = combined
			// Attribute combiner savings to the receiving side evenly; the
			// per-producer attribution is not observable in the paper's
			// metrics, only the total reduction is.
			metrics.Reducers[0].CombinedAway += removed
		}
		for _, p := range records {
			buckets[e.cfg.Partition(p.Key)] = append(buckets[e.cfg.Partition(p.Key)], p)
		}
	}

	// Optionally spill each bucket through disk, measuring true sizes.
	if e.cfg.SpillDir != "" {
		for i := range buckets {
			size, restored, err := spillRoundTrip(e.cfg.SpillDir, name, i, buckets[i])
			if err != nil {
				return nil, metrics, err
			}
			buckets[i] = restored
			metrics.Reducers[i].InputBytes += size
			metrics.ShuffleBytes += size
			metrics.SpilledFiles++
		}
	}

	outputs := make([][]Pair[K, V], r)
	var wg sync.WaitGroup
	runTask := func(i int) {
		tm := &metrics.Reducers[i]
		tm.InputRecords = int64(len(buckets[i]))
		if e.cfg.SpillDir == "" {
			for _, p := range buckets[i] {
				tm.InputBytes += int64(e.cfg.ValueBytes(p.Value))
			}
		}
		// Group by key deterministically: first-seen order collection, then
		// sorted-key iteration.
		groups := map[K][]V{}
		var keys []K
		for _, p := range buckets[i] {
			if _, ok := groups[p.Key]; !ok {
				keys = append(keys, p.Key)
			}
			groups[p.Key] = append(groups[p.Key], p.Value)
		}
		sort.Slice(keys, func(a, b int) bool { return cmp.Less(keys[a], keys[b]) })
		emit := func(k K, v V) {
			outputs[i] = append(outputs[i], Pair[K, V]{Key: k, Value: v})
			tm.OutputRecords++
			tm.OutputBytes += int64(e.cfg.ValueBytes(v))
		}
		for _, k := range keys {
			tm.KeysProcessed++
			reduce(i, k, groups[k], emit)
		}
	}
	if e.cfg.Parallel {
		for i := 0; i < r; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				runTask(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := 0; i < r; i++ {
			runTask(i)
		}
	}
	if e.cfg.SpillDir == "" {
		for i := range metrics.Reducers {
			metrics.ShuffleBytes += metrics.Reducers[i].InputBytes
		}
	}
	e.rounds = append(e.rounds, metrics)
	return outputs, metrics, nil
}

// Rounds returns the metrics of every round executed so far.
func (e *Engine[K, V]) Rounds() []RoundMetrics { return e.rounds }

// combineTask merges values per key within one producing task, preserving
// first-seen key order.
func combineTask[K cmp.Ordered, V any](records []Pair[K, V], combine func(K, []V) []V) ([]Pair[K, V], int64) {
	groups := map[K][]V{}
	var keys []K
	for _, p := range records {
		if _, ok := groups[p.Key]; !ok {
			keys = append(keys, p.Key)
		}
		groups[p.Key] = append(groups[p.Key], p.Value)
	}
	var out []Pair[K, V]
	for _, k := range keys {
		for _, v := range combine(k, groups[k]) {
			out = append(out, Pair[K, V]{Key: k, Value: v})
		}
	}
	return out, int64(len(records) - len(out))
}

// spillRoundTrip writes records to a gob file and reads them back, returning
// the encoded size. The file is removed afterwards.
func spillRoundTrip[K cmp.Ordered, V any](dir, round string, task int, records []Pair[K, V]) (int64, []Pair[K, V], error) {
	if records == nil {
		records = []Pair[K, V]{}
	}
	path := filepath.Join(dir, fmt.Sprintf("shuffle-%s-%d.gob", sanitize(round), task))
	f, err := os.Create(path)
	if err != nil {
		return 0, nil, fmt.Errorf("mapreduce: spill create: %w", err)
	}
	enc := gob.NewEncoder(f)
	if err := enc.Encode(records); err != nil {
		f.Close()
		return 0, nil, fmt.Errorf("mapreduce: spill encode: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, nil, err
	}
	info, err := os.Stat(path)
	if err != nil {
		return 0, nil, err
	}
	rf, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer os.Remove(path)
	defer rf.Close()
	var restored []Pair[K, V]
	if err := gob.NewDecoder(rf).Decode(&restored); err != nil {
		return 0, nil, fmt.Errorf("mapreduce: spill decode: %w", err)
	}
	if restored == nil {
		restored = []Pair[K, V]{}
	}
	return info.Size(), restored, nil
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
