package inference

import (
	"fmt"

	"inferturbo/internal/checkpoint"
	"inferturbo/internal/tensor"
)

// Durable checkpoint codec for the GNN driver: the byte form of vtxValue,
// gnnMsg, and the batched plane's progSnap inside an epoch file. Floats
// round-trip through their IEEE-754 bit patterns (checkpoint.AppendF32s), so
// a resumed run recomputes from exactly the slices the killed run held —
// the foundation of the crash-resume bit-identity guarantee.

// gnnCodec implements pregel.SnapshotCodec[vtxValue, gnnMsg].
type gnnCodec struct{}

func (gnnCodec) EncodeValues(dst []byte, vals []vtxValue) ([]byte, error) {
	b := checkpoint.AppendU64(dst, uint64(len(vals)))
	for _, v := range vals {
		b = checkpoint.AppendF32s(b, v.h)
		b = checkpoint.AppendF32s(b, v.emb)
	}
	return b, nil
}

func (gnnCodec) DecodeValues(data []byte, into []vtxValue) error {
	r := checkpoint.NewReader(data)
	n := int(r.U64())
	if n != len(into) {
		return fmt.Errorf("inference: checkpoint holds %d vertex values, engine has %d", n, len(into))
	}
	for i := range into {
		into[i].h = r.F32s()
		into[i].emb = r.F32s()
		if len(into[i].emb) == 0 {
			into[i].emb = nil
		}
	}
	return r.Err()
}

func (gnnCodec) EncodeMsgs(dst []byte, msgs []gnnMsg) ([]byte, error) {
	b := checkpoint.AppendU64(dst, uint64(len(msgs)))
	for _, m := range msgs {
		b = checkpoint.AppendU32(b, uint32(m.Kind)|uint32(m.Reduce)<<8)
		b = checkpoint.AppendU32(b, uint32(m.Src))
		b = checkpoint.AppendU32(b, uint32(m.Count))
		b = checkpoint.AppendF32s(b, m.Payload)
	}
	return b, nil
}

func (gnnCodec) DecodeMsgs(data []byte) ([]gnnMsg, error) {
	r := checkpoint.NewReader(data)
	n := int(r.U64())
	msgs := make([]gnnMsg, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		var m gnnMsg
		hdr := r.U32()
		m.Kind, m.Reduce = uint8(hdr), uint8(hdr>>8)
		m.Src = int32(r.U32())
		m.Count = int32(r.U32())
		if p := r.F32s(); len(p) > 0 {
			m.Payload = p
		}
		msgs = append(msgs, m)
	}
	return msgs, r.Err()
}

// appendMatrix serializes one optional slab: a presence flag, then shape and
// bit-exact float data.
func appendMatrix(b []byte, m *tensor.Matrix) []byte {
	if m == nil {
		return checkpoint.AppendBools(b, []bool{false})
	}
	b = checkpoint.AppendBools(b, []bool{true})
	b = checkpoint.AppendU64(b, uint64(m.Rows))
	b = checkpoint.AppendU64(b, uint64(m.Cols))
	return checkpoint.AppendF32s(b, m.Data)
}

func readMatrix(r *checkpoint.Reader) *tensor.Matrix {
	present := r.Bools()
	if len(present) != 1 || !present[0] {
		return nil
	}
	rows := int(r.U64())
	cols := int(r.U64())
	data := r.F32s()
	if r.Err() != nil || rows*cols != len(data) {
		return nil
	}
	return &tensor.Matrix{Rows: rows, Cols: cols, Data: data}
}

// EncodeProgState implements pregel.ProgramDiskStater for the batched
// plane's per-worker state slabs (the progSnap a checkpoint carries).
func (d *pregelDriver) EncodeProgState(dst []byte, snap any) ([]byte, error) {
	if snap == nil {
		return dst, nil
	}
	s, ok := snap.(*progSnap)
	if !ok {
		return nil, fmt.Errorf("inference: unexpected program snapshot type %T", snap)
	}
	b := checkpoint.AppendU64(dst, uint64(len(s.states)))
	for w := range s.states {
		b = appendMatrix(b, s.states[w])
		b = appendMatrix(b, s.embs[w])
	}
	return b, nil
}

// DecodeProgState implements pregel.ProgramDiskStater.
func (d *pregelDriver) DecodeProgState(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, nil
	}
	r := checkpoint.NewReader(data)
	nw := int(r.U64())
	if nw != d.opts.NumWorkers {
		return nil, fmt.Errorf("inference: checkpoint program state has %d workers, run has %d", nw, d.opts.NumWorkers)
	}
	s := &progSnap{
		states: make([]*tensor.Matrix, nw),
		embs:   make([]*tensor.Matrix, nw),
	}
	for w := 0; w < nw; w++ {
		s.states[w] = readMatrix(r)
		s.embs[w] = readMatrix(r)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return s, nil
}
