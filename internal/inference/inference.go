// Package inference is InferTurbo's core: full-graph, sampling-free GNN
// inference drivers over the two backends (internal/pregel and
// internal/mapreduce), implementing the paper's three skew strategies —
// partial-gather, broadcast, and shadow-nodes — plus the threshold heuristic
// that activates the out-degree strategies.
//
// Both drivers execute the same gas.Model a k-hop trainer produced: one GNN
// layer per superstep (Pregel) or per reduce round (MapReduce). Every node
// is computed exactly once per layer, eliminating the k-hop redundant
// computation of traditional pipelines, and no sampling happens anywhere, so
// predictions are identical across runs — the consistency guarantee the
// tests enforce against the single-process reference forward.
package inference

import (
	"fmt"
	"sync"
	"time"

	"inferturbo/internal/checkpoint"
	"inferturbo/internal/cluster"
	"inferturbo/internal/gas"
	"inferturbo/internal/graph"
	"inferturbo/internal/pregel"
	"inferturbo/internal/tensor"
)

// Options configures a full-graph inference run.
type Options struct {
	// NumWorkers is the partition count (Pregel workers / MR reducers).
	NumWorkers int
	// Partitioner selects the vertex-placement strategy (nil = the mod-N
	// hash). Strategies run once up front over the graph the backend
	// executes — the shadow rewrite when ShadowNodes is set, so mirrors get
	// first-class placement. Placement changes traffic only: predictions
	// are bit-identical under every strategy (the engine's source-merged
	// delivery keeps per-destination message order placement-independent),
	// so locality-aware strategies like graph.LDG{} are pure wins on
	// cross-worker bytes. Composes with all three skew strategies, with one
	// scope note: under PartialGather the sender-side combiner folds
	// partial sums per sending worker, so cross-placement agreement is
	// tolerance-level there (like cross-backend agreement), not bitwise;
	// every fixed configuration remains deterministic and plane-identical.
	Partitioner graph.Strategy
	// PartialGather enables sender-side aggregation for layers whose reduce
	// obeys the commutative/associative laws.
	PartialGather bool
	// Broadcast deduplicates identical out-edge messages of hub nodes: one
	// payload per worker plus lightweight per-edge references.
	Broadcast bool
	// ShadowNodes splits hub nodes' out-edges across mirror vertices in a
	// preprocessing pass.
	ShadowNodes bool
	// Lambda tunes the hub threshold = λ·edges/workers (default 0.1).
	Lambda float64
	// HubThreshold overrides the heuristic threshold when > 0.
	HubThreshold int
	// Parallel runs workers on goroutines; results are identical either way.
	Parallel bool
	// BoxedMessages forces the Pregel backend onto the legacy per-message
	// object plane instead of the columnar zero-copy message plane. The two
	// planes produce bit-identical predictions and IO stats; boxed exists
	// for comparison benchmarks and the plane-equivalence tests, and costs
	// one payload allocation per message. Boxed implies the per-vertex
	// compute plane (there is no batched boxed path). MapReduce ignores
	// this.
	BoxedMessages bool
	// PerVertexCompute pins the Pregel backend onto the classic
	// one-Compute-call-per-vertex plane instead of the batched
	// partition-centric plane that runs each worker's gather as one fused
	// segment-reduce and each apply as one dense MatMul over the whole
	// partition. The planes produce bit-identical predictions and IO stats;
	// per-vertex exists for comparison benchmarks and the plane-equivalence
	// tests. MapReduce ignores this.
	PerVertexCompute bool
	// Pipelined switches the Pregel backend onto the pipelined superstep
	// plane: scatter and delivery overlap with compute through chunked eager
	// flushing and background inbox assembly, shrinking the superstep
	// barrier to a drain plus the ascending-source merge. Results, delivery
	// order and IO stats are bit-identical to the BSP path at any chunk size
	// and pipeline depth. Requires the columnar message plane (incompatible
	// with BoxedMessages); works on both compute planes. MapReduce ignores
	// this.
	Pipelined bool
	// PipelineChunk is the pipelined plane's chunk granularity in owned
	// vertices (how often a worker seals and flushes its sends). 0 selects
	// the engine default. Any value is result-identical.
	PipelineChunk int
	// PipelineDepth bounds each receiver's in-flight sealed-extent queue
	// under Parallel execution; a sender that runs further ahead blocks
	// until the receiver's background assembly catches up. 0 selects the
	// engine default. Any value is result-identical.
	PipelineDepth int
	// CheckpointEvery snapshots Pregel engine state (including the batched
	// plane's per-worker state slabs) every n supersteps, enabling recovery
	// from a worker failure. 0 disables checkpointing. MapReduce ignores
	// this.
	CheckpointEvery int
	// FailAtSuperstep injects one simulated Pregel worker crash at the
	// given superstep (> 0); the engine restores the latest checkpoint and
	// replays, and results are identical to a failure-free run. Used by the
	// fault-tolerance tests. Superseded by Faults (which can target
	// superstep 0 and schedule multiple crashes); kept for back-compat and
	// folded into the same schedule.
	FailAtSuperstep int
	// Faults schedules deterministic injected crashes for the Pregel
	// backend — the chaos-test surface. Each entry fires once at its
	// superstep and lifecycle point; the engine recovers from the latest
	// checkpoint and results stay bit-identical to a failure-free run.
	// MapReduce rejects this.
	Faults *pregel.FaultPlan
	// CheckpointDir makes Pregel checkpoints durable: every snapshot is
	// also written to this directory as a CRC-checksummed epoch file
	// (atomic temp+fsync+rename with a manifest), so a killed process can
	// restart from the latest valid epoch. Setting it defaults
	// CheckpointEvery to 2 when unset. MapReduce rejects this.
	CheckpointDir string
	// Resume loads the latest valid epoch from CheckpointDir before
	// running and continues from its superstep; predictions are
	// bit-identical to an uninterrupted run. A cold start (no valid epoch)
	// runs from superstep 0. MapReduce rejects this.
	Resume bool
	// CheckpointSync selects the epoch store's durability level:
	// checkpoint.SyncAlways (default) fsyncs every epoch — survives power
	// loss; checkpoint.SyncNever skips fsync — epochs stay atomic and
	// survive process crashes (the guarantee the kill-and-resume tests
	// exercise), but an OS crash may lose the newest ones.
	CheckpointSync checkpoint.SyncMode
	// PipelineWatchdog bounds how long a pipelined sender waits on a
	// receiver's backed-up assembly queue before degrading that receiver to
	// inline assembly for the rest of the superstep (results unchanged —
	// assembly is commutative). 0 selects the engine default (30s);
	// negative disables the watchdog.
	PipelineWatchdog time.Duration
	// SuperstepHook runs on the engine goroutine at the start of every
	// superstep, after queued durable epochs have drained — the
	// deterministic kill point the crash-resume integration tests use.
	SuperstepHook func(step int)
	// Cancel, when non-nil, is polled by the Pregel backend at the start of
	// every superstep; a non-nil return aborts the run with that error.
	// Superstep granularity means an abort never leaves partially delivered
	// state behind. The serving layer uses this to propagate request
	// deadlines from HTTP through micro-batching into the compute plane
	// (partial-batch cancellation). MapReduce rejects this.
	Cancel func() error
	// OutDegrees overrides the out-degree that degree-scaled layers
	// (gas.MessageScaler — GCN) see for each node; len must equal the
	// graph's node count. The serving layer sets it when executing a k-hop
	// induced subgraph, whose local out-degrees undercount the full graph's:
	// scaling by the original degrees is what keeps subgraph inference
	// bit-identical to the full-graph pass at the roots. Composes with
	// ShadowNodes (mirrors resolve through their origin). MapReduce rejects
	// this.
	OutDegrees []int32
	// SpillDir routes MapReduce shuffles through disk when non-empty.
	SpillDir string
	// EmitEmbeddings additionally returns each node's penultimate-layer
	// state (the paper's final superstep "outputs node embeddings or
	// scores"). One-layer models emit the input features.
	EmitEmbeddings bool
	// Tuning configures the deterministic parallel tensor kernels for the
	// duration of the run (worker goroutines per kernel, MatMul cache block,
	// serial-fallback threshold). The zero value inherits the process-wide
	// tuning (tensor.SetTuning). Any setting produces bit-identical results;
	// this knob only trades wall-clock.
	Tuning tensor.Tuning
	// SessionDir makes the incremental Session durable: after every refresh
	// pass that ran compute, the resident per-layer slabs, scaled wire-message
	// slabs and graph snapshot are persisted to this directory as a
	// CRC-checksummed checkpoint epoch (background persister, recycled capture
	// buffers, off the refresh critical path), and ResumeSession reconstructs
	// a primed Session from the newest valid epoch after a crash. Honors
	// CheckpointSync. Ignored by one-shot RunPregel/RunMapReduce.
	SessionDir string
	// SessionPersistBeginHook, when non-nil, runs on the persister goroutine
	// immediately before each epoch write, receiving the replay mark the epoch
	// will record; a non-nil error aborts that persist (counted as a failure,
	// resident state unaffected). Fault-injection seam for the
	// mid-slab-persist crash tests.
	SessionPersistBeginHook func(mark uint64) error
	// SessionPersistHook, when non-nil, runs on the persister goroutine after
	// each persist attempt with the epoch number, the replay mark it covers,
	// and the write error (nil on success). The serving layer truncates the
	// mutation WAL here — strictly after the slabs covering those mutations
	// are durable.
	SessionPersistHook func(epoch int, mark uint64, err error)
	// DeltaCutover is the incremental Session's fallback fraction: when a
	// mutation's L-hop flood is estimated to touch more than this fraction of
	// the graph, Refresh runs a full pass (which is cheaper than a delta pass
	// degenerating to the whole graph) instead of the frontier-driven delta
	// pass. 0 selects the default (0.25). Both paths are bit-identical; this
	// knob only trades wall-clock.
	DeltaCutover float64

	// captureLayers, when non-nil, makes the Pregel drivers copy every
	// vertex's layer-k state into captureLayers[k] as superstep k computes it
	// (k = 1..NumLayers; entry 0 is the caller's alias of the feature
	// matrix). The incremental Session sets this so a full pass doubles as
	// resident-state population. Requires ShadowNodes off (mirror vertex ids
	// would not map onto the capture rows); incompatible with durable
	// cross-process resume, where earlier supersteps never re-execute.
	captureLayers []*tensor.Matrix
}

// Kernel-tuning override bookkeeping. The tensor tuning is process-global,
// so overlapping runs with different explicit Tuning values share it (the
// last writer wins mid-run — results are bit-identical either way, only
// wall-clock differs). The baseline/depth pair guarantees the one thing
// that must hold: once every tuned run has finished, the process-wide
// tuning is back to its pre-run value, never a leaked override.
var (
	tuneMu    sync.Mutex
	tuneDepth int
	tuneBase  tensor.Tuning
	tuneCur   tensor.Tuning // the override most recently installed by a run
)

// applyTuning installs the run's kernel tuning (when explicitly set) and
// returns the restore function for defer.
func applyTuning(o Options) func() {
	if o.Tuning == (tensor.Tuning{}) {
		return func() {}
	}
	tuneMu.Lock()
	if tuneDepth == 0 {
		tuneBase = tensor.CurrentTuning()
	}
	tuneDepth++
	tensor.SetTuning(o.Tuning)
	tuneCur = tensor.CurrentTuning()
	tuneMu.Unlock()
	return func() {
		tuneMu.Lock()
		tuneDepth--
		// Restore the pre-run tuning only if ours is still installed; if the
		// application called SetTuning mid-run, its choice wins — restoring
		// the stale baseline would silently revert it.
		if tuneDepth == 0 && tensor.CurrentTuning() == tuneCur {
			tensor.SetTuning(tuneBase)
		}
		tuneMu.Unlock()
	}
}

func (o Options) withDefaults() Options {
	if o.NumWorkers <= 0 {
		o.NumWorkers = 4
	}
	if o.Lambda == 0 {
		o.Lambda = 0.1
	}
	return o
}

// threshold resolves the hub threshold for g under the options.
func (o Options) threshold(g *graph.Graph) int {
	if o.HubThreshold > 0 {
		return o.HubThreshold
	}
	return graph.StrategyThreshold(o.Lambda, g.NumEdges, o.NumWorkers)
}

// partition places g's vertices per the selected strategy (hash when none
// was chosen). g must be the graph the backend will actually execute.
func (o Options) partition(g *graph.Graph) graph.Partitioner {
	s := o.Partitioner
	if s == nil {
		s = graph.Hash{}
	}
	return s.Partition(g, o.NumWorkers)
}

// vectorizeAggregate reduces n resolved payload vectors into a single
// destination's gas.Aggregated per the layer's reduce annotation — the
// shared vectorization step of both backends (Pregel's gatherStage and
// MapReduce's aggregate). payload(i) returns the i-th incoming state vector
// (always exactly dim long by construction: scatter builds payloads at the
// layer dim and the combiners preserve length) and its folded contribution
// count. Buffers come from pool; callers release them with
// releaseAggregated once apply_node has consumed the aggregate.
func vectorizeAggregate(kind gas.ReduceKind, dim, n int, payload func(i int) ([]float32, int32), pool *tensor.Pool) *gas.Aggregated {
	return vectorizeAggregateInto(&gas.Aggregated{}, kind, dim, n, payload, pool)
}

// vectorizeAggregateInto is vectorizeAggregate filling a caller-owned
// aggregate, so per-vertex hot loops can reuse one scratch Aggregated (and
// its Counts/Dst backing arrays) per worker instead of allocating one per
// vertex per layer. The scratch must not be reused until apply_node has
// consumed the previous aggregate and releaseAggregated has run.
func vectorizeAggregateInto(a *gas.Aggregated, kind gas.ReduceKind, dim, n int, payload func(i int) ([]float32, int32), pool *tensor.Pool) *gas.Aggregated {
	a.Kind = kind
	a.Pooled, a.Messages = nil, nil
	a.Counts, a.Dst = a.Counts[:0], a.Dst[:0]
	switch kind {
	case gas.ReduceUnion:
		// Every row is fully overwritten, so the unzeroed buffer is safe.
		mm := pool.GetNoZero(n, dim)
		for i := 0; i < n; i++ {
			p, _ := payload(i)
			copy(mm.Row(i), p)
		}
		a.Messages = mm
		// All rows aggregate into local row 0.
		if cap(a.Dst) < n {
			a.Dst = make([]int32, n)
		} else {
			a.Dst = a.Dst[:n]
			for i := range a.Dst {
				a.Dst[i] = 0
			}
		}
	case gas.ReduceSum, gas.ReduceMean:
		pooled := pool.Get(1, dim)
		sum := pooled.Row(0)
		var count int32
		for i := 0; i < n; i++ {
			p, c := payload(i)
			for j, v := range p {
				sum[j] += v
			}
			count += c
		}
		if kind == gas.ReduceMean && count > 0 {
			inv := 1 / float32(count)
			for j := range sum {
				sum[j] *= inv
			}
		}
		a.Pooled = pooled
		a.Counts = append(a.Counts, count)
	case gas.ReduceMax, gas.ReduceMin:
		pooled := pool.Get(1, dim)
		acc := pooled.Row(0)
		for i := 0; i < n; i++ {
			p, _ := payload(i)
			if i == 0 {
				copy(acc, p)
				continue
			}
			for j, v := range p {
				if kind == gas.ReduceMax && v > acc[j] {
					acc[j] = v
				}
				if kind == gas.ReduceMin && v < acc[j] {
					acc[j] = v
				}
			}
		}
		a.Pooled = pooled
	}
	return a
}

// bcIndex is a dense broadcast-payload lookup replacing the per-superstep
// map[int32][]float32 tables of both backends: payload views append to pays
// in mailbox order and slot[src] records their position, valid iff
// stamp[src] == cur. cur increments each rebuild, so no clearing pass — and
// no allocation or hashing — happens on the gather hot path. The slot/stamp
// arrays are 8 bytes x NumVertices per worker, the same deliberate
// footprint-for-branch-free-O(1) trade the engine's combiner index makes;
// they are allocated lazily on the first broadcast payload, so runs without
// the broadcast strategy never pay for them. Callers must reset() before
// each fill generation: generation 0 is reserved as "never filled", so gets
// on a freshly zero-valued index always miss.
type bcIndex struct {
	slot  []int32
	stamp []uint32
	cur   uint32
	pays  [][]float32
}

// reset invalidates every entry (O(1)) and truncates the payload list.
func (x *bcIndex) reset() {
	x.cur++
	x.pays = x.pays[:0]
}

// put registers src's payload view for the current generation. n is the
// vertex-id space bound, used to size the index on first use.
func (x *bcIndex) put(n int, src int32, pay []float32) {
	if len(x.slot) < n {
		x.slot = make([]int32, n)
		x.stamp = make([]uint32, n)
	}
	x.slot[src] = int32(len(x.pays))
	x.stamp[src] = x.cur
	x.pays = append(x.pays, pay)
}

// get returns src's payload view, if one was put this generation.
func (x *bcIndex) get(src int32) ([]float32, bool) {
	if int(src) >= len(x.stamp) || x.stamp[src] != x.cur {
		return nil, false
	}
	return x.pays[x.slot[src]], true
}

// releaseAggregated returns an aggregate's pooled buffers once apply_node
// has consumed them.
func releaseAggregated(pool *tensor.Pool, a *gas.Aggregated) {
	if a.Pooled != nil {
		pool.Put(a.Pooled)
	}
	if a.Messages != nil {
		pool.Put(a.Messages)
	}
}

// Stats aggregates run-wide counters for the experiment harness.
type Stats struct {
	Supersteps    int
	MessagesSent  int64
	BytesSent     int64
	BytesReceived int64
	// RemoteMessages / RemoteBytes count only cross-worker traffic — the
	// share vertex placement controls; the Sent totals include worker-local
	// delivery. Pregel backend only (the MapReduce engine's shuffle does
	// not attribute producers to reducers).
	RemoteMessages int64
	RemoteBytes    int64
	CombinedAway   int64 // messages eliminated by partial-gather
	BroadcastHubs  int64 // node-steps that used the broadcast path
	ShadowMirrors  int64 // extra vertices created by shadow-nodes
	// Fault-tolerance counters (Pregel backend).
	Resumed          bool  // run continued from a durable epoch on disk
	Recoveries       int   // injected/simulated crashes recovered in-run
	Checkpoints      int   // snapshots committed (in-memory or durable)
	CheckpointBytes  int64 // bytes persisted to the durable sink
	CheckpointWallNs int64 // snapshot capture time on the superstep critical path
	PersistWallNs    int64 // background epoch encode+write time (overlapped)
	WatchdogTrips    int   // pipelined assemblers degraded to inline assembly
	// StepActive is the frontier size per superstep: how many vertices each
	// superstep actually computed. A full pass reports the node count at
	// every step; a delta pass reports the L-hop flood of the change set
	// collapsing as it converges — the observable the incremental mode is
	// judged by.
	StepActive      []int64
	WorkerBytesIn   []int64
	WorkerBytesOut  []int64
	WorkerFlops     []int64
	WorkerInRecords []int64 // records received per worker (Fig 11/12 x-axis)
}

// Result of a full-graph inference run.
type Result struct {
	// Logits is NumNodes x NumClasses, aligned with the input graph's node
	// ids (shadow mirrors are folded away).
	Logits *tensor.Matrix
	// Classes holds argmax predictions for single-label tasks.
	Classes []int32
	// MultiLabel holds thresholded {0,1} predictions for multi-label tasks.
	MultiLabel *tensor.Matrix
	// Embeddings holds penultimate-layer node states when
	// Options.EmitEmbeddings was set; nil otherwise.
	Embeddings *tensor.Matrix
	// Phases carries per-superstep/round per-worker loads for the cluster
	// cost model.
	Phases []cluster.Phase
	Stats  Stats
}

// finalize fills the prediction fields of a result from its logits.
func (r *Result) finalize(m *gas.Model) {
	r.Classes, r.MultiLabel = m.Predict(r.Logits)
}

// ReferenceForward computes the exact full-graph logits in a single process
// by materializing the whole graph as one gas.Context — the oracle both
// backends are tested against.
func ReferenceForward(m *gas.Model, g *graph.Graph) *tensor.Matrix {
	src, dst := g.EdgeList()
	ctx := &gas.Context{
		NodeState: g.Features,
		SrcIndex:  src,
		DstIndex:  dst,
		EdgeState: g.EdgeFeatures,
		NumNodes:  g.NumNodes,
	}
	return m.Infer(ctx)
}

// validateModelGraph rejects model/graph mismatches early.
func validateModelGraph(m *gas.Model, g *graph.Graph) error {
	if m.NumLayers() == 0 {
		return fmt.Errorf("inference: model has no layers")
	}
	if g.FeatureDim() != m.InDim() {
		return fmt.Errorf("inference: graph features dim %d, model expects %d", g.FeatureDim(), m.InDim())
	}
	for i, l := range m.Layers {
		if sc, ok := l.(*gas.SAGEConv); ok && sc.EdgeDim() > 0 && g.EdgeFeatureDim() != sc.EdgeDim() {
			return fmt.Errorf("inference: layer %d expects edge dim %d, graph has %d", i, sc.EdgeDim(), g.EdgeFeatureDim())
		}
	}
	return nil
}

// Flop cost helpers: coarse per-layer operation counts charged to workers so
// the cluster model can price compute. Constants are per the usual 2·n·m·k
// dense matmul convention.

// layerNodeFlops is the per-node apply_node cost of a layer.
func layerNodeFlops(l gas.Conv) int64 {
	switch c := l.(type) {
	case *gas.SAGEConv:
		// self and neighbor linear transforms.
		return int64(4 * c.InDim() * c.OutDim())
	case *gas.GATConv:
		// projection of the node's own state.
		return int64(2 * c.InDim() * c.Heads() * c.HeadDim())
	default:
		return int64(2 * l.InDim() * l.OutDim())
	}
}

// layerMsgFlops is the per-incoming-message cost of a layer.
func layerMsgFlops(l gas.Conv) int64 {
	switch c := l.(type) {
	case *gas.SAGEConv:
		// aggregation adds.
		return int64(c.InDim())
	case *gas.GATConv:
		// message projection + attention scores + weighted sum.
		return int64(2*c.InDim()*c.Heads()*c.HeadDim() + 6*c.Heads()*c.HeadDim())
	default:
		return int64(l.InDim())
	}
}

// payloadBytes is the wire size of a state vector message.
func payloadBytes(dim int) int { return 4*dim + 16 }

// refBytes is the wire size of a broadcast reference message.
const refBytes = 12
