package inference

import (
	"testing"

	"inferturbo/internal/datagen"
	"inferturbo/internal/gas"
	"inferturbo/internal/graph"
	"inferturbo/internal/tensor"
)

// Plane-equivalence tests for the batched compute plane: partition-centric
// ComputeBatch supersteps are a pure dispatch/fusion change, so against the
// per-vertex plane (columnar and boxed) and the MapReduce backend they must
// produce bit-identical logits — tensor.Matrix.Equal, not AllClose — plus
// identical IO accounting, under every strategy combination, at every worker
// count, serial and parallel.

// runPlanes runs the same options on the three Pregel planes, returning
// (batched, per-vertex columnar, boxed).
func runPlanes(t *testing.T, m *gas.Model, g *graph.Graph, opts Options) (*Result, *Result, *Result) {
	t.Helper()
	batched, err := RunPregel(m, g, opts)
	if err != nil {
		t.Fatalf("%s batched: %v", comboName(opts), err)
	}
	pv := opts
	pv.PerVertexCompute = true
	perVertex, err := RunPregel(m, g, pv)
	if err != nil {
		t.Fatalf("%s per-vertex: %v", comboName(opts), err)
	}
	bx := opts
	bx.BoxedMessages = true
	boxed, err := RunPregel(m, g, bx)
	if err != nil {
		t.Fatalf("%s boxed: %v", comboName(opts), err)
	}
	return batched, perVertex, boxed
}

func TestBatchedPlaneBitIdenticalAllStrategies(t *testing.T) {
	g := testGraph(t, datagen.SkewOut, 230)
	m := sageModel(t)
	wantClasses := tensor.ArgmaxRows(ReferenceForward(m, g))
	mr, err := RunMapReduce(m, g, Options{NumWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, parallel := range []bool{false, true} {
			for _, opts := range strategyCombos(workers, parallel) {
				batched, perVertex, boxed := runPlanes(t, m, g, opts)
				if !batched.Logits.Equal(perVertex.Logits) {
					t.Fatalf("%s: batched logits diverge from per-vertex: max diff %v",
						comboName(opts), batched.Logits.MaxAbsDiff(perVertex.Logits))
				}
				if !batched.Logits.Equal(boxed.Logits) {
					t.Fatalf("%s: batched logits diverge from boxed: max diff %v",
						comboName(opts), batched.Logits.MaxAbsDiff(boxed.Logits))
				}
				// MapReduce folds each key group in shuffle-sort order, not
				// Pregel's sender-worker delivery order, so cross-backend
				// agreement is the repo's standing AllClose contract (see
				// TestBackendsAgree) — predicted classes still match exactly.
				if !batched.Logits.AllClose(mr.Logits, logitTol) {
					t.Fatalf("%s: batched logits diverge from MapReduce: max diff %v",
						comboName(opts), batched.Logits.MaxAbsDiff(mr.Logits))
				}
				bs, ps := batched.Stats, perVertex.Stats
				if bs.MessagesSent != ps.MessagesSent || bs.BytesSent != ps.BytesSent ||
					bs.BytesReceived != ps.BytesReceived || bs.CombinedAway != ps.CombinedAway ||
					bs.BroadcastHubs != ps.BroadcastHubs || bs.Supersteps != ps.Supersteps {
					t.Fatalf("%s: stats diverge between compute planes:\nbatched    %+v\nper-vertex %+v",
						comboName(opts), bs, ps)
				}
				for v, c := range batched.Classes {
					if c != wantClasses[v] {
						t.Fatalf("%s: class of node %d = %d, reference %d", comboName(opts), v, c, wantClasses[v])
					}
				}
			}
		}
	}
}

// TestBatchedPlaneFlopAccountingMatches: the batched plane's one AddCost per
// worker per superstep must sum to exactly what the per-vertex plane charges
// vertex by vertex, per worker.
func TestBatchedPlaneFlopAccountingMatches(t *testing.T) {
	g := testGraph(t, datagen.SkewIn, 190)
	m := sageModel(t)
	opts := Options{NumWorkers: 4, PartialGather: true, Parallel: true}
	batched, perVertex, _ := runPlanes(t, m, g, opts)
	for w := range batched.Stats.WorkerFlops {
		if batched.Stats.WorkerFlops[w] != perVertex.Stats.WorkerFlops[w] {
			t.Fatalf("worker %d flops: batched %d, per-vertex %d",
				w, batched.Stats.WorkerFlops[w], perVertex.Stats.WorkerFlops[w])
		}
		if batched.Stats.WorkerBytesIn[w] != perVertex.Stats.WorkerBytesIn[w] ||
			batched.Stats.WorkerInRecords[w] != perVertex.Stats.WorkerInRecords[w] {
			t.Fatalf("worker %d IO diverges between planes", w)
		}
	}
}

// TestBatchedPlaneGAT covers the union-reduce path: the whole partition's
// raw messages flow into one flat matrix with local destination indices and
// attention runs once per worker instead of once per vertex.
func TestBatchedPlaneGAT(t *testing.T) {
	g := testGraph(t, datagen.SkewOut, 180)
	m := gatModel(t)
	wantClasses := tensor.ArgmaxRows(ReferenceForward(m, g))
	for _, workers := range []int{1, 4, 8} {
		for _, opts := range []Options{
			{NumWorkers: workers},
			{NumWorkers: workers, PartialGather: true, Parallel: true},
			{NumWorkers: workers, Broadcast: true, ShadowNodes: true, Parallel: true},
		} {
			batched, perVertex, boxed := runPlanes(t, m, g, opts)
			if !batched.Logits.Equal(perVertex.Logits) || !batched.Logits.Equal(boxed.Logits) {
				t.Fatalf("%s: GAT batched logits diverge from per-vertex/boxed", comboName(opts))
			}
			for v, c := range batched.Classes {
				if c != wantClasses[v] {
					t.Fatalf("%s: GAT class of node %d = %d, reference %d", comboName(opts), v, c, wantClasses[v])
				}
			}
		}
	}
}

// TestBatchedPlaneGCN covers the degree-scaled scatter (MessageScalerInto
// scratch row) and the count-normalized apply across whole partitions.
func TestBatchedPlaneGCN(t *testing.T) {
	g := testGraph(t, datagen.SkewOut, 200)
	m := gcnModel(t)
	for _, opts := range []Options{
		{NumWorkers: 1},
		{NumWorkers: 4, PartialGather: true},
		{NumWorkers: 8, PartialGather: true, Broadcast: true, ShadowNodes: true, Parallel: true},
	} {
		batched, perVertex, boxed := runPlanes(t, m, g, opts)
		if !batched.Logits.Equal(perVertex.Logits) || !batched.Logits.Equal(boxed.Logits) {
			t.Fatalf("%s: GCN batched logits diverge from per-vertex/boxed", comboName(opts))
		}
	}
}

// TestBatchedPlaneEdgeFeatures covers the edge-dependent apply_edge scatter
// from slab rows.
func TestBatchedPlaneEdgeFeatures(t *testing.T) {
	ds := datagen.Generate(datagen.Config{
		Name: "batch-ef", Nodes: 170, AvgDegree: 5, Skew: datagen.SkewOut,
		FeatureDim: 6, NumClasses: 3, Seed: 41, EdgeFeature: true,
	})
	m := gas.NewSAGEModel("sage-batch-ef", gas.TaskSingleLabel, 6, 8, 3, 2, 4, tensor.NewRNG(42))
	for _, opts := range []Options{
		{NumWorkers: 1},
		{NumWorkers: 4, PartialGather: true},
		{NumWorkers: 8, PartialGather: true, ShadowNodes: true, Parallel: true},
	} {
		batched, perVertex, boxed := runPlanes(t, m, ds.Graph, opts)
		if !batched.Logits.Equal(perVertex.Logits) || !batched.Logits.Equal(boxed.Logits) {
			t.Fatalf("%s: edge-feature batched logits diverge", comboName(opts))
		}
	}
}

// TestBatchedEmbeddingsMatchPerVertex: the retained penultimate slab must
// reproduce the per-vertex plane's retained h rows exactly, including for a
// one-layer model where the embedding is the raw feature row.
func TestBatchedEmbeddingsMatchPerVertex(t *testing.T) {
	g := testGraph(t, datagen.SkewIn, 140)
	for _, m := range []*gas.Model{
		sageModel(t),
		gas.NewSAGEModel("sage-1l", gas.TaskSingleLabel, 8, 12, 4, 1, 0, tensor.NewRNG(9)),
	} {
		opts := Options{NumWorkers: 5, PartialGather: true, EmitEmbeddings: true}
		batched, perVertex, _ := runPlanes(t, m, g, opts)
		if !batched.Embeddings.Equal(perVertex.Embeddings) {
			t.Fatalf("%s: batched embeddings diverge from per-vertex", m.Name)
		}
	}
}

// TestBatchedRecoveryByteIdentical: a batched run that loses a superstep to
// an injected worker crash must replay from the checkpoint to byte-identical
// predictions — which requires the engine to snapshot and restore the
// driver's per-worker state slabs through ProgramStater.
func TestBatchedRecoveryByteIdentical(t *testing.T) {
	g := testGraph(t, datagen.SkewOut, 210)
	m := sageModel(t)
	for _, opts := range []Options{
		{NumWorkers: 4, PartialGather: true, Parallel: true},
		{NumWorkers: 3, Broadcast: true, ShadowNodes: true},
	} {
		clean, err := RunPregel(m, g, opts)
		if err != nil {
			t.Fatalf("%s clean: %v", comboName(opts), err)
		}
		for fail := 1; fail <= m.NumLayers(); fail++ {
			crashed := opts
			crashed.CheckpointEvery = 1
			crashed.FailAtSuperstep = fail
			rec, err := RunPregel(m, g, crashed)
			if err != nil {
				t.Fatalf("%s fail@%d: %v", comboName(opts), fail, err)
			}
			if !clean.Logits.Equal(rec.Logits) {
				t.Fatalf("%s: logits diverge after recovery from superstep-%d crash: max diff %v",
					comboName(opts), fail, clean.Logits.MaxAbsDiff(rec.Logits))
			}
		}
	}
}

// TestPerVertexRecoveryByteIdentical: the checkpoint options must also hold
// on the per-vertex planes, whose next-h slabs are deliberately left
// unrecycled under checkpointing so snapshot aliases stay intact.
func TestPerVertexRecoveryByteIdentical(t *testing.T) {
	g := testGraph(t, datagen.SkewOut, 160)
	m := sageModel(t)
	for _, plane := range []Options{
		{NumWorkers: 4, PartialGather: true, PerVertexCompute: true},
		{NumWorkers: 4, PartialGather: true, BoxedMessages: true},
	} {
		clean, err := RunPregel(m, g, plane)
		if err != nil {
			t.Fatal(err)
		}
		crashed := plane
		crashed.CheckpointEvery = 1
		crashed.FailAtSuperstep = 2
		rec, err := RunPregel(m, g, crashed)
		if err != nil {
			t.Fatal(err)
		}
		if !clean.Logits.Equal(rec.Logits) {
			t.Fatalf("per-vertex plane (boxed=%v) diverges after recovery: max diff %v",
				plane.BoxedMessages, clean.Logits.MaxAbsDiff(rec.Logits))
		}
	}
}

// TestBatchedEmbeddingsSurviveRecovery: a crash on the final superstep
// replays the embedding retention too.
func TestBatchedEmbeddingsSurviveRecovery(t *testing.T) {
	g := testGraph(t, datagen.SkewIn, 130)
	m := sageModel(t)
	opts := Options{NumWorkers: 4, EmitEmbeddings: true}
	clean, err := RunPregel(m, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	crashed := opts
	crashed.CheckpointEvery = 1
	crashed.FailAtSuperstep = m.NumLayers() // final superstep lost and replayed
	rec, err := RunPregel(m, g, crashed)
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Logits.Equal(rec.Logits) || !clean.Embeddings.Equal(rec.Embeddings) {
		t.Fatal("batched embeddings diverge after final-superstep recovery")
	}
}
