package inference

import (
	"testing"
	"testing/quick"

	"inferturbo/internal/datagen"
	"inferturbo/internal/gas"
	"inferturbo/internal/graph"
	"inferturbo/internal/tensor"
)

func ginModel(t *testing.T) *gas.Model {
	t.Helper()
	return gas.NewGINModel("gin-test", gas.TaskSingleLabel, 8, 12, 4, 2, tensor.NewRNG(7))
}

func gcnModel(t *testing.T) *gas.Model {
	t.Helper()
	return gas.NewGCNModel("gcn-test", gas.TaskSingleLabel, 8, 12, 4, 2, tensor.NewRNG(8))
}

func TestGINBothBackendsMatchReference(t *testing.T) {
	g := testGraph(t, datagen.SkewIn, 300)
	m := ginModel(t)
	for name, run := range map[string]func(*gas.Model, *graph.Graph, Options) (*Result, error){
		"pregel": RunPregel, "mapreduce": RunMapReduce,
	} {
		res, err := run(m, g, Options{NumWorkers: 6})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := ReferenceForward(m, g)
		if !res.Logits.AllClose(want, logitTol) {
			t.Fatalf("%s GIN diverges: %v", name, res.Logits.MaxAbsDiff(want))
		}
	}
}

func TestGCNBothBackendsMatchReference(t *testing.T) {
	g := testGraph(t, datagen.SkewIn, 300)
	m := gcnModel(t)
	for name, run := range map[string]func(*gas.Model, *graph.Graph, Options) (*Result, error){
		"pregel": RunPregel, "mapreduce": RunMapReduce,
	} {
		res, err := run(m, g, Options{NumWorkers: 6})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := ReferenceForward(m, g)
		if !res.Logits.AllClose(want, logitTol) {
			t.Fatalf("%s GCN diverges: %v", name, res.Logits.MaxAbsDiff(want))
		}
	}
}

func TestGCNStrategiesResultNeutralIncludingShadow(t *testing.T) {
	// The hard case: GCN's wire message is degree-scaled, and shadow mirrors
	// carry only a share of the out-edges — the drivers must scale by the
	// *original* degree or results shift.
	g := testGraph(t, datagen.SkewOut, 400)
	m := gcnModel(t)
	want := ReferenceForward(m, g)
	for _, opts := range []Options{
		{NumWorkers: 6, ShadowNodes: true},
		{NumWorkers: 6, ShadowNodes: true, Broadcast: true, PartialGather: true},
		{NumWorkers: 6, Broadcast: true, HubThreshold: 10},
	} {
		res, err := RunPregel(m, g, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if !res.Logits.AllClose(want, logitTol) {
			t.Fatalf("GCN strategies %+v changed results: %v", opts, res.Logits.MaxAbsDiff(want))
		}
		resMR, err := RunMapReduce(m, g, opts)
		if err != nil {
			t.Fatalf("MR %+v: %v", opts, err)
		}
		if !resMR.Logits.AllClose(want, logitTol) {
			t.Fatalf("GCN MR strategies %+v changed results: %v", opts, resMR.Logits.MaxAbsDiff(want))
		}
	}
}

func TestGINPartialGatherCombines(t *testing.T) {
	g := testGraph(t, datagen.SkewIn, 300)
	m := ginModel(t)
	pg, err := RunPregel(m, g, Options{NumWorkers: 4, PartialGather: true})
	if err != nil {
		t.Fatal(err)
	}
	if pg.Stats.CombinedAway == 0 {
		t.Fatal("GIN (sum) messages must combine under partial-gather")
	}
	want := ReferenceForward(m, g)
	if !pg.Logits.AllClose(want, logitTol) {
		t.Fatal("partial-gather changed GIN results")
	}
}

// TestRandomGraphEquivalenceProperty is the property-based end-to-end check:
// for random small graphs and random architectures, both backends with
// random strategy combinations match the reference forward.
func TestRandomGraphEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		n := 20 + rng.Intn(60)
		b := graph.NewBuilder(n)
		e := rng.Intn(n * 4)
		for i := 0; i < e; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), nil)
		}
		g := b.Build()
		feats := tensor.New(n, 5)
		rng.Uniform(feats, -1, 1)
		g.Features = feats
		g.NumClasses = 3

		var m *gas.Model
		switch rng.Intn(4) {
		case 0:
			m = gas.NewSAGEModel("p", gas.TaskSingleLabel, 5, 6, 3, 1+rng.Intn(2), 0, rng)
		case 1:
			m = gas.NewGATModel("p", gas.TaskSingleLabel, 5, 3, 2, 3, 1+rng.Intn(2), rng)
		case 2:
			m = gas.NewGINModel("p", gas.TaskSingleLabel, 5, 6, 3, 1+rng.Intn(2), rng)
		default:
			m = gas.NewGCNModel("p", gas.TaskSingleLabel, 5, 6, 3, 1+rng.Intn(2), rng)
		}
		opts := Options{
			NumWorkers:    1 + rng.Intn(5),
			PartialGather: rng.Intn(2) == 0,
			Broadcast:     rng.Intn(2) == 0,
			ShadowNodes:   rng.Intn(2) == 0,
			HubThreshold:  1 + rng.Intn(10),
		}
		want := ReferenceForward(m, g)
		p, err := RunPregel(m, g, opts)
		if err != nil {
			t.Logf("seed %d pregel: %v", seed, err)
			return false
		}
		if !p.Logits.AllClose(want, 1e-3) {
			t.Logf("seed %d pregel diff %v opts %+v", seed, p.Logits.MaxAbsDiff(want), opts)
			return false
		}
		mr, err := RunMapReduce(m, g, opts)
		if err != nil {
			t.Logf("seed %d mr: %v", seed, err)
			return false
		}
		if !mr.Logits.AllClose(want, 1e-3) {
			t.Logf("seed %d mr diff %v opts %+v", seed, mr.Logits.MaxAbsDiff(want), opts)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
