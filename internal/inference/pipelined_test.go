package inference

import (
	"fmt"
	"testing"

	"inferturbo/internal/datagen"
	"inferturbo/internal/graph"
)

// Pipelined-plane equivalence tests: chunked eager flushing and background
// inbox assembly are a pure scheduling change, so the pipelined plane must
// produce bit-identical logits AND identical IO accounting against the BSP
// columnar plane under every strategy combination, on both compute planes,
// at multiple chunk sizes and pipeline depths — and recover byte-identically
// from an injected mid-pipeline worker failure.

// requireSameRun asserts bit-identical logits and identical run stats.
func requireSameRun(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if !want.Logits.Equal(got.Logits) {
		t.Fatalf("%s: logits diverge from the BSP plane: max diff %v",
			label, want.Logits.MaxAbsDiff(got.Logits))
	}
	ws, gs := want.Stats, got.Stats
	if ws.MessagesSent != gs.MessagesSent || ws.BytesSent != gs.BytesSent ||
		ws.BytesReceived != gs.BytesReceived || ws.RemoteMessages != gs.RemoteMessages ||
		ws.RemoteBytes != gs.RemoteBytes || ws.CombinedAway != gs.CombinedAway ||
		ws.BroadcastHubs != gs.BroadcastHubs || ws.Supersteps != gs.Supersteps {
		t.Fatalf("%s: stats diverge from the BSP plane:\nbsp       %+v\npipelined %+v", label, ws, gs)
	}
}

func TestPipelinedPlaneBitIdenticalAllStrategies(t *testing.T) {
	g := testGraph(t, datagen.SkewOut, 230)
	m := sageModel(t)
	for _, workers := range []int{1, 4, 8} {
		for _, parallel := range []bool{false, true} {
			for _, opts := range strategyCombos(workers, parallel) {
				bsp, err := RunPregel(m, g, opts)
				if err != nil {
					t.Fatalf("%s bsp: %v", comboName(opts), err)
				}
				for _, chunk := range []int{1, 17, 512} {
					po := opts
					po.Pipelined = true
					po.PipelineChunk = chunk
					po.PipelineDepth = 2
					pipe, err := RunPregel(m, g, po)
					if err != nil {
						t.Fatalf("%s pipelined: %v", comboName(opts), err)
					}
					requireSameRun(t, fmt.Sprintf("%s/chunk=%d/batched", comboName(opts), chunk), bsp, pipe)
					pv := po
					pv.PerVertexCompute = true
					pipePV, err := RunPregel(m, g, pv)
					if err != nil {
						t.Fatalf("%s pipelined per-vertex: %v", comboName(opts), err)
					}
					requireSameRun(t, fmt.Sprintf("%s/chunk=%d/per-vertex", comboName(opts), chunk), bsp, pipePV)
				}
			}
		}
	}
}

// TestPipelinedPlacementBitIdentical: pipelining composes with locality-aware
// placement — results stay bit-identical to the BSP plane under LDG too.
func TestPipelinedPlacementBitIdentical(t *testing.T) {
	g := testGraph(t, datagen.SkewIn, 260)
	m := sageModel(t)
	for _, strat := range []graph.Strategy{graph.Hash{}, graph.LDG{}} {
		opts := Options{NumWorkers: 8, Partitioner: strat, Broadcast: true, Parallel: true}
		bsp, err := RunPregel(m, g, opts)
		if err != nil {
			t.Fatal(err)
		}
		po := opts
		po.Pipelined = true
		po.PipelineChunk = 8
		pipe, err := RunPregel(m, g, po)
		if err != nil {
			t.Fatal(err)
		}
		requireSameRun(t, strat.Name(), bsp, pipe)
	}
}

// TestPipelinedRecoveryByteIdentical is the checkpoint/recovery acceptance
// test for the pipelined plane: FailAtSuperstep mid-pipeline must replay
// byte-identically on both compute planes. Checkpoints fall between
// supersteps, after every in-flight sealed extent has drained into the
// snapshotted inbox, so the snapshot's in-flight state is complete by
// construction.
func TestPipelinedRecoveryByteIdentical(t *testing.T) {
	g := testGraph(t, datagen.SkewIn, 240)
	m := sageModel(t)
	for _, perVertex := range []bool{false, true} {
		opts := Options{
			NumWorkers: 6, PartialGather: true, Parallel: true,
			Pipelined: true, PipelineChunk: 7,
			PerVertexCompute: perVertex,
			CheckpointEvery:  1,
		}
		clean, err := RunPregel(m, g, opts)
		if err != nil {
			t.Fatal(err)
		}
		failing := opts
		failing.FailAtSuperstep = 2
		recovered, err := RunPregel(m, g, failing)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("perVertex=%v", perVertex)
		requireSameRun(t, label+"/recovered", clean, recovered)
		// And the recovered pipelined run matches the BSP plane bit for bit.
		bspOpts := opts
		bspOpts.Pipelined, bspOpts.PipelineChunk, bspOpts.CheckpointEvery = false, 0, 0
		bsp, err := RunPregel(m, g, bspOpts)
		if err != nil {
			t.Fatal(err)
		}
		requireSameRun(t, label+"/vs-bsp", bsp, recovered)
	}
}

// TestPipelinedRejectsBoxed: the pipelined plane has no boxed form; the
// driver reports the conflict instead of panicking deep in the engine.
func TestPipelinedRejectsBoxed(t *testing.T) {
	g := testGraph(t, datagen.SkewOut, 60)
	m := sageModel(t)
	if _, err := RunPregel(m, g, Options{NumWorkers: 2, Pipelined: true, BoxedMessages: true}); err == nil {
		t.Fatal("expected an error for Pipelined+BoxedMessages")
	}
}
