package inference

import (
	"fmt"

	"inferturbo/internal/gas"
	"inferturbo/internal/pregel"
	"inferturbo/internal/tensor"
)

// The batched compute plane of the Pregel GNN driver: pregel.BatchProgram
// implemented as partition-granularity gather/apply/scatter, the data flow
// the paper's vectorized GAS stages describe. Per-vertex work fuses into a
// handful of dense kernel calls per worker per superstep:
//
//	gather  — one CSR segment-reduce over the worker's whole columnar inbox
//	          (tensor.SegmentSumViewsInto / SegmentExtremeViewsInto over
//	          zero-copy arena views), or one flat message matrix for Union
//	apply   — one pooled (N_local x D) @ (D x D') apply_node over the state
//	          slab, driving the parallel MatMul kernels that the per-vertex
//	          plane's 1 x D calls always kept below ParallelThreshold
//	scatter — the shared scatterColumnar walked over slab rows in
//	          owned-vertex order
//
// Vertex states live in one row-major tensor.Matrix slab per worker (row li
// = local vertex index li, the same dense index the inbox CSR uses), drawn
// from the worker's pool and recycled every superstep.
//
// Bit-identity with the per-vertex plane holds because every fused stage
// preserves per-vertex operand order: segment reduces fold each vertex's
// inbox range in delivery order (the order vectorizeAggregateInto consumed),
// the MatMul kernels accumulate each output row independently in ascending-k
// order regardless of row count, and scatter issues the same sends in the
// same vertex order through the same code path. One goroutine owns each slab
// row end to end, so parallel execution cannot reorder anything a row
// observes.

// ComputeBatch implements pregel.BatchProgram: superstep 0 materializes the
// feature slab and scatters h^0; superstep k applies layer k-1 to the whole
// partition; the final superstep halts every vertex, leaving the logits in
// the state slabs for RunPregel to collect.
func (d *pregelDriver) ComputeBatch(ctx *pregel.BatchContext[vtxValue, gnnMsg]) {
	w, k := ctx.WorkerID(), ctx.Superstep
	owned := ctx.Owned()
	numLayers := d.model.NumLayers()
	if k == 0 {
		// Initialization: raw features become h^0, gathered into the
		// partition's slab (strided rows of the feature matrix).
		st := d.pools[w].GetNoZero(len(owned), d.sg.G.Features.Cols)
		for li, v := range owned {
			copy(st.Row(li), d.sg.G.Features.Row(int(v)))
		}
		d.states[w] = st
		d.scatterBatch(ctx, 0)
		return
	}

	layer := d.model.Layers[k-1]
	pool := d.pools[w]
	off, in := ctx.InboxCSR()
	aggr := d.gatherBatch(ctx, layer, off, in)
	st := d.states[w]
	out := gas.ApplyNodePooled(layer, st, aggr, pool)
	releaseAggregated(pool, aggr)
	if d.opts.EmitEmbeddings && k == numLayers {
		d.embs[w] = st // penultimate slab, retained for the result
	} else {
		pool.Put(st)
	}
	d.states[w] = out
	if cl := d.opts.captureLayers; cl != nil {
		// Resident-state capture for the incremental Session: the new slab is
		// layer k's state for this partition. Checkpoint replays rewrite
		// identical rows, so capture composes with in-process fault recovery.
		for li, v := range owned {
			copy(cl[k].Row(int(v)), out.Row(li))
		}
	}
	ctx.AddCost(int64(len(owned))*layerNodeFlops(layer) + int64(in.Len())*layerMsgFlops(layer))

	if k == numLayers {
		// Last superstep: the slabs now hold the logits.
		ctx.HaltAll()
		return
	}
	d.scatterBatch(ctx, k)
}

// gatherBatch is gather_nbrs + aggregate for the whole partition in one
// shot: resolve every inbox message to a payload view (broadcast references
// through the worker's dense index), then segment-reduce the CSR directly
// into an N_local x D aggregate. No payload is copied for pooled reduces —
// the kernels read the arena extents in place, in delivery order, exactly
// the order the per-vertex vectorizeAggregateInto folds.
func (d *pregelDriver) gatherBatch(ctx *pregel.BatchContext[vtxValue, gnnMsg], layer gas.Conv, off []int32, in pregel.Batch) *gas.Aggregated {
	w := ctx.WorkerID()
	pool := d.pools[w]
	n := in.Len()

	// Resolve payload views and counts. Broadcast references need the
	// worker's dense index; without any (the common case — a cheap scan of
	// the kind column decides) the inbox columns are consumed as-is, with
	// no per-message header copying at all.
	pays, counts := in.Payloads, in.Counts
	if d.opts.Broadcast {
		hasRef := false
		for _, kd := range in.Kinds {
			if kd&3 == msgBCRef {
				hasRef = true
				break
			}
		}
		if hasRef {
			table := d.bcColumnar(w, ctx.ExecSeq(), ctx.ColumnarWorkerMail())
			rp, rc := d.resPays[w], d.resCounts[w]
			if cap(rp) < n {
				rp = make([][]float32, n)
				rc = make([]int32, n)
			} else {
				rp, rc = rp[:n], rc[:n]
			}
			for i := 0; i < n; i++ {
				switch in.Kinds[i] & 3 {
				case msgState:
					rp[i] = in.Payloads[i]
					rc[i] = in.Counts[i]
				case msgBCRef:
					p, ok := table.get(in.Srcs[i])
					if !ok {
						panic(fmt.Sprintf("inference: broadcast payload for node %d missing on worker %d", in.Srcs[i], w))
					}
					rp[i] = p
					rc[i] = 1
				default:
					panic(fmt.Sprintf("inference: unexpected message kind %d at vertex", in.Kinds[i]&3))
				}
			}
			d.resPays[w], d.resCounts[w] = rp, rc
			pays, counts = rp, rc
		}
	}

	nLocal := len(ctx.Owned())
	dim := layer.InDim()
	a := &d.aggrs[w]
	a.Kind = layer.Reduce()
	a.Pooled, a.Messages = nil, nil
	a.Counts, a.Dst = a.Counts[:0], a.Dst[:0]
	switch kind := layer.Reduce(); kind {
	case gas.ReduceUnion:
		// Union (GAT): one flat message matrix for the whole partition,
		// destinations in local indices — the partition-local form of the
		// reference forward's edge-message matrix.
		mm := pool.GetNoZero(n, dim)
		for i, p := range pays {
			copy(mm.Row(i), p)
		}
		a.Messages = mm
		if cap(a.Dst) < n {
			a.Dst = make([]int32, n)
		} else {
			a.Dst = a.Dst[:n]
		}
		for li := 0; li < nLocal; li++ {
			for i := off[li]; i < off[li+1]; i++ {
				a.Dst[i] = int32(li)
			}
		}
	case gas.ReduceSum, gas.ReduceMean:
		pooled := pool.GetNoZero(nLocal, dim)
		tensor.SegmentSumViewsInto(pooled, off, pays)
		if cap(a.Counts) < nLocal {
			a.Counts = make([]int32, nLocal)
		} else {
			a.Counts = a.Counts[:nLocal]
		}
		for li := 0; li < nLocal; li++ {
			var c int32
			for i := off[li]; i < off[li+1]; i++ {
				c += counts[i]
			}
			a.Counts[li] = c
			if kind == gas.ReduceMean && c > 0 {
				// Same op order as the per-vertex fold: multiply by the
				// reciprocal, never divide.
				inv := 1 / float32(c)
				row := pooled.Row(li)
				for j := range row {
					row[j] *= inv
				}
			}
		}
		a.Pooled = pooled
	case gas.ReduceMax, gas.ReduceMin:
		pooled := pool.GetNoZero(nLocal, dim)
		tensor.SegmentExtremeViewsInto(pooled, off, pays, kind == gas.ReduceMax)
		a.Pooled = pooled
	}
	return a
}

// scatterBatch walks the partition's slab rows in owned-vertex order through
// the shared columnar scatter — the same sends, in the same order, that the
// per-vertex plane issues, so send buffers (and therefore combiner merges
// and delivery order) are identical between planes. On the pipelined plane
// the walk seals and flushes at the engine's chunk cadence (the same cadence
// the per-vertex plane seals at automatically), letting receivers assemble
// this partition's extents while later rows are still scattering.
func (d *pregelDriver) scatterBatch(ctx *pregel.BatchContext[vtxValue, gnnMsg], k int) {
	w := ctx.WorkerID()
	st := d.states[w]
	chunk := ctx.ChunkSize() // 0 off the pipelined plane
	for li, v := range ctx.Owned() {
		d.scatterColumnar(ctx, w, v, st.Row(li), k)
		if chunk > 0 && (li+1)%chunk == 0 {
			ctx.FlushChunk()
		}
	}
}

// progSnap is the checkpointed form of the batched plane's program-owned
// state: deep copies of the per-worker slabs, immutable after capture.
type progSnap struct {
	states []*tensor.Matrix
	embs   []*tensor.Matrix
}

// SnapshotProgState implements pregel.ProgramStater. Only the batched plane
// keeps superstep-to-superstep state outside the engine's vertex values (the
// per-vertex plane's h slices ride inside the engine's own value snapshot,
// and its retired slabs are left unrecycled under checkpointing precisely so
// those aliases stay intact), so the per-vertex plane snapshots nothing.
func (d *pregelDriver) SnapshotProgState() any {
	if !d.batched {
		return nil
	}
	s := &progSnap{
		states: make([]*tensor.Matrix, len(d.states)),
		embs:   make([]*tensor.Matrix, len(d.embs)),
	}
	for w, m := range d.states {
		if m != nil {
			s.states[w] = m.Clone()
		}
	}
	for w, m := range d.embs {
		if m != nil {
			s.embs[w] = m.Clone()
		}
	}
	return s
}

// RestoreProgState implements pregel.ProgramStater: reinstall a snapshot by
// deep copy, so the snapshot survives the replay's slab writes and a second
// recovery from the same checkpoint would still be sound.
func (d *pregelDriver) RestoreProgState(snap any) {
	if snap == nil {
		return
	}
	s := snap.(*progSnap)
	restore := func(dst []*tensor.Matrix, src []*tensor.Matrix, w int) {
		d.pools[w].Put(dst[w])
		if src[w] == nil {
			dst[w] = nil
			return
		}
		m := d.pools[w].GetNoZero(src[w].Rows, src[w].Cols)
		copy(m.Data, src[w].Data)
		dst[w] = m
	}
	for w := range d.states {
		restore(d.states, s.states, w)
		restore(d.embs, s.embs, w)
	}
}
