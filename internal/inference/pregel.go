package inference

import (
	"fmt"

	"inferturbo/internal/checkpoint"
	"inferturbo/internal/cluster"
	"inferturbo/internal/gas"
	"inferturbo/internal/graph"
	"inferturbo/internal/pregel"
	"inferturbo/internal/tensor"
)

// Message kinds exchanged between vertices.
const (
	msgState     uint8 = iota // a (possibly partially aggregated) state vector
	msgBCRef                  // broadcast reference: look up Src in the worker table
	msgBCPayload              // broadcast payload addressed to a worker mailbox
)

// gnnMsg is the Pregel message. Payload carries a state vector; for
// commutative reduces under partial-gather it may be a pre-aggregated sum
// (Count tracks how many contributions it folds, keeping mean exact).
type gnnMsg struct {
	Kind    uint8
	Reduce  uint8
	Src     int32
	Count   int32
	Payload []float32
}

// combineMsgs is the boxed-plane Pregel combiner implementing
// partial-gather: messages for the same destination merge on the sender
// side when the consuming layer's reduce is commutative/associative. Union
// messages (GAT) and broadcast refs decline. The first merge copies a's
// payload (a view of the sending vertex's state, which must not be mutated)
// into an accumulator the combiner owns — marked by Src == -1, so every
// later merge for the same destination accumulates in place instead of
// allocating a fresh payload.
func combineMsgs(a, b gnnMsg) (gnnMsg, bool) {
	if a.Kind != msgState || b.Kind != msgState || a.Reduce != b.Reduce {
		return a, false
	}
	kind := gas.ReduceKind(a.Reduce)
	if !kind.Commutative() {
		return a, false
	}
	acc := a.Payload
	if a.Src != -1 {
		acc = make([]float32, len(a.Payload))
		copy(acc, a.Payload)
	}
	switch kind {
	case gas.ReduceSum, gas.ReduceMean:
		for i, v := range b.Payload {
			acc[i] += v
		}
	case gas.ReduceMax:
		for i, v := range b.Payload {
			acc[i] = max32(acc[i], v)
		}
	case gas.ReduceMin:
		for i, v := range b.Payload {
			acc[i] = min32(acc[i], v)
		}
	default:
		return a, false
	}
	return gnnMsg{Kind: msgState, Reduce: a.Reduce, Src: -1, Count: a.Count + b.Count, Payload: acc}, true
}

// Columnar kind tags: the engine's opaque kind byte carries the message
// kind in the low 2 bits and the reduce annotation above them, so the
// engine's same-tag gate before combining already implies "both are state
// messages consumed by the same reduce".
func colTag(kind, reduce uint8) uint8 { return kind | reduce<<2 }

// combineColumnar is the columnar-plane partial-gather combiner: it
// accumulates pay into the arena row acc in place — no allocation on any
// merge. The engine only calls it for equal tags and payload lengths.
func combineColumnar(tag uint8, acc, pay []float32, accCount, payCount int32) (int32, bool) {
	if tag&3 != msgState {
		return 0, false
	}
	switch gas.ReduceKind(tag >> 2) {
	case gas.ReduceSum, gas.ReduceMean:
		for i, v := range pay {
			acc[i] += v
		}
	case gas.ReduceMax:
		for i, v := range pay {
			acc[i] = max32(acc[i], v)
		}
	case gas.ReduceMin:
		for i, v := range pay {
			acc[i] = min32(acc[i], v)
		}
	default: // union is not commutative; refs never carry payloads to merge
		return 0, false
	}
	return accCount + payCount, true
}

// columnarBytes prices a columnar message from its tag and arena extent,
// matching the boxed MessageBytes exactly so IO stats are plane-invariant.
func columnarBytes(tag uint8, payloadLen int) int {
	if tag&3 == msgBCRef {
		return refBytes
	}
	return payloadBytes(payloadLen)
}

func max32(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

func min32(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

// vtxValue is the per-vertex state: the current embedding h^k, which ends as
// the logit vector after the last layer, plus the retained penultimate
// state when embeddings were requested.
type vtxValue struct {
	h   []float32
	emb []float32
}

// pregelDriver executes a gas.Model layer-by-layer on the Pregel engine. It
// runs on the engine's batched compute plane over columnar messages by
// default: each worker's vertex states live in one row-major tensor.Matrix
// slab, gather is one fused segment-reduce over the partition's whole CSR
// inbox, and apply is a single (N_local x D) @ (D x D') MatMul per layer —
// the dense-kernel data flow of the paper's pipeline, exercising the
// parallel tensor kernels (see pregel_batched.go). The classic per-vertex
// plane stays available behind Options.PerVertexCompute, and the boxed
// message plane (which is always per-vertex) behind Options.BoxedMessages;
// all three produce bit-identical predictions and IO stats.
type pregelDriver struct {
	model     *gas.Model
	sg        *ShadowGraph
	opts      Options
	threshold int
	part      graph.Partitioner
	columnar  bool
	batched   bool

	// Per-worker scratch (indexed by worker id; each worker touches only
	// its own slot, so parallel execution is race-free).
	bcTabs []bcIndex // dense broadcast lookup, rebuilt per ExecSeq
	bcStep []int
	bcHubs []int64
	bcSeen [][]bool // destination-worker dedup scratch for broadcast hubs
	// Per-worker reusable aggregate and matrix headers: the per-vertex
	// gather/apply path wraps existing float slices thousands of times per
	// superstep, so the wrappers live here instead of on the heap.
	aggrs     []gas.Aggregated
	stateMats []tensor.Matrix
	efMats    []tensor.Matrix
	// Per-worker buffer pools: aggregate, apply_node and state-slab scratch
	// recycles here instead of allocating every superstep.
	pools []*tensor.Pool

	// Batched plane: per-worker state slabs. states[w] is N_local x D_k with
	// local vertex li's h^k in row li; embs[w] retains the penultimate slab
	// when embeddings were requested. resPays/resCounts are the
	// broadcast-ref resolution scratch; scaleRows the MessageScaler scratch.
	states    []*tensor.Matrix
	embs      []*tensor.Matrix
	resPays   [][][]float32
	resCounts [][]int32
	scaleRows [][]float32

	// Per-vertex plane: next-h rows are carved from one per-worker slab per
	// superstep instead of allocated per vertex. Two generations stay live
	// (the current superstep writes gen k while messages and apply read gen
	// k-1); the k-2 slab recycles through the worker pool — unless
	// checkpointing is on, where dropped slabs must stay intact because
	// engine snapshots alias their rows.
	hSlabs []hSlab
	hStep  []int // ExecSeq of the worker's current slab generation
}

// hSlab is one worker's two-generation next-h slab state.
type hSlab struct {
	cur, prev *tensor.Matrix
	next      int // row carve cursor into cur
}

// stateMat wraps h as a 1×len(h) matrix in worker w's reusable header. The
// view is only valid until the worker's next stateMat call; no callee on
// the apply_node/apply_edge path retains its matrix arguments.
func (d *pregelDriver) stateMat(w int, h []float32) *tensor.Matrix {
	m := &d.stateMats[w]
	m.Rows, m.Cols, m.Data = 1, len(h), h
	return m
}

// seenScratch returns worker w's cleared destination-worker scratch,
// replacing the per-hub-vertex allocation of the seed scatter.
func (d *pregelDriver) seenScratch(w int) []bool {
	s := d.bcSeen[w]
	if s == nil {
		s = make([]bool, d.opts.NumWorkers)
		d.bcSeen[w] = s
	} else {
		for i := range s {
			s[i] = false
		}
	}
	return s
}

// Compute implements pregel.VertexProgram: superstep 0 initializes and
// scatters h^0; superstep k applies layer k-1; the final superstep attaches
// the prediction and halts.
func (d *pregelDriver) Compute(ctx *pregel.Context[vtxValue, gnnMsg], msgs []gnnMsg) {
	k := ctx.Superstep
	numLayers := d.model.NumLayers()
	if k == 0 {
		// Initialization: raw features become h^0 (the paper's "transform
		// raw node states into initial embeddings" is the identity here —
		// feature encoders would slot in at this point).
		ctx.Value.h = d.sg.G.Features.Row(int(ctx.ID))
		d.scatter(ctx, 0)
		return
	}

	layer := d.model.Layers[k-1]
	if d.opts.EmitEmbeddings && k == numLayers {
		ctx.Value.emb = ctx.Value.h // penultimate state, about to be replaced
	}
	pool := d.pools[ctx.WorkerID()]
	state := d.stateMat(ctx.WorkerID(), ctx.Value.h)
	var aggr *gas.Aggregated
	var received int
	if d.columnar {
		in := ctx.ColumnarInbox()
		received = in.Len()
		aggr = d.gatherColumnar(ctx, layer, in, pool)
	} else {
		received = len(msgs)
		aggr = d.gatherStage(ctx, layer, msgs, pool)
	}
	out := gas.ApplyNodePooled(layer, state, aggr, pool)
	next := d.nextHRow(ctx, out.Cols)
	copy(next, out.Row(0))
	ctx.Value.h = next
	if d.opts.captureLayers != nil {
		// Resident-state capture for the incremental Session: superstep k's
		// output is layer k's state. Checkpoint replays rewrite identical
		// rows, so capture composes with in-process fault recovery.
		copy(d.opts.captureLayers[k].Row(int(ctx.ID)), next)
	}
	pool.Put(out)
	releaseAggregated(pool, aggr)
	ctx.AddCost(layerNodeFlops(layer) + int64(received)*layerMsgFlops(layer))

	if k == numLayers {
		// Last superstep: the prediction slice of the model is attached
		// here; h now holds the logits.
		ctx.VoteToHalt()
		return
	}
	d.scatter(ctx, k)
}

// nextHRow returns the row the current vertex's next state is written to,
// carved from the worker's per-superstep slab — one pool draw per worker
// per superstep instead of one allocation per vertex. The first Compute of
// a worker's superstep rotates generations: the slab whose rows no message
// or apply can still reference (gen k-2; gen k-1 backs this superstep's
// reads and any in-flight boxed payloads) returns to the worker pool.
// Under checkpointing the retired slab is dropped to the GC instead: every
// generation is written exactly once, so engine snapshots — which alias
// value slices into these rows — stay intact for replay.
func (d *pregelDriver) nextHRow(ctx *pregel.Context[vtxValue, gnnMsg], cols int) []float32 {
	w := ctx.WorkerID()
	s := &d.hSlabs[w]
	if d.hStep[w] != ctx.ExecSeq() {
		d.hStep[w] = ctx.ExecSeq()
		if d.opts.CheckpointEvery == 0 {
			d.pools[w].Put(s.prev)
		}
		s.prev = s.cur
		s.cur = d.pools[w].GetNoZero(d.part.OwnedCount(w, d.sg.G.NumNodes), cols)
		s.next = 0
	}
	row := s.cur.Row(s.next)
	s.next++
	return row
}

// gatherStage is gather_nbrs + aggregate: vectorize received messages
// (resolving broadcast references through the worker's broadcast index) and
// reduce them per the layer's annotation. Aggregate buffers come from the
// worker's pool; the caller releases them via releaseAggregated once
// apply_node is done.
func (d *pregelDriver) gatherStage(ctx *pregel.Context[vtxValue, gnnMsg], layer gas.Conv, msgs []gnnMsg, pool *tensor.Pool) *gas.Aggregated {
	table := d.bcBoxed(ctx)
	dim := layer.InDim()

	resolve := func(m gnnMsg) ([]float32, int32) {
		switch m.Kind {
		case msgState:
			return m.Payload, m.Count
		case msgBCRef:
			p, ok := table.get(m.Src)
			if !ok {
				panic(fmt.Sprintf("inference: broadcast payload for node %d missing on worker %d", m.Src, ctx.WorkerID()))
			}
			return p, 1
		default:
			panic(fmt.Sprintf("inference: unexpected message kind %d at vertex", m.Kind))
		}
	}

	return vectorizeAggregateInto(&d.aggrs[ctx.WorkerID()], layer.Reduce(), dim, len(msgs), func(i int) ([]float32, int32) {
		return resolve(msgs[i])
	}, pool)
}

// gatherColumnar is gatherStage for the columnar plane: message fields are
// read straight out of the inbox's column views (payloads are arena
// extents, never re-boxed), with broadcast references resolved through the
// broadcast index.
func (d *pregelDriver) gatherColumnar(ctx *pregel.Context[vtxValue, gnnMsg], layer gas.Conv, in pregel.Batch, pool *tensor.Pool) *gas.Aggregated {
	table := d.bcColumnar(ctx.WorkerID(), ctx.ExecSeq(), ctx.ColumnarWorkerMail())
	dim := layer.InDim()
	return vectorizeAggregateInto(&d.aggrs[ctx.WorkerID()], layer.Reduce(), dim, in.Len(), func(i int) ([]float32, int32) {
		switch in.Kinds[i] & 3 {
		case msgState:
			return in.Payloads[i], in.Counts[i]
		case msgBCRef:
			p, ok := table.get(in.Srcs[i])
			if !ok {
				panic(fmt.Sprintf("inference: broadcast payload for node %d missing on worker %d", in.Srcs[i], ctx.WorkerID()))
			}
			return p, 1
		default:
			panic(fmt.Sprintf("inference: unexpected message kind %d at vertex", in.Kinds[i]&3))
		}
	}, pool)
}

// bcBoxed lazily rebuilds worker w's broadcast index for the current
// superstep from its boxed mailbox. Both rebuild caches key on ExecSeq, not
// Superstep: a checkpoint-recovery replay revisits superstep numbers with
// rebuilt mailboxes, and the pre-failure payload views would point into
// recycled storage.
func (d *pregelDriver) bcBoxed(ctx *pregel.Context[vtxValue, gnnMsg]) *bcIndex {
	w := ctx.WorkerID()
	t := &d.bcTabs[w]
	if d.bcStep[w] == ctx.ExecSeq() {
		return t
	}
	t.reset()
	n := d.sg.G.NumNodes
	for _, m := range ctx.WorkerMail() {
		if m.Kind == msgBCPayload {
			t.put(n, m.Src, m.Payload)
		}
	}
	d.bcStep[w] = ctx.ExecSeq()
	return t
}

// bcColumnar is bcBoxed over a columnar mailbox; shared by the per-vertex
// and batched planes. The index holds zero-copy payload views valid for the
// current superstep only.
func (d *pregelDriver) bcColumnar(w, execSeq int, mail pregel.Batch) *bcIndex {
	t := &d.bcTabs[w]
	if d.bcStep[w] == execSeq {
		return t
	}
	t.reset()
	n := d.sg.G.NumNodes
	for i := 0; i < mail.Len(); i++ {
		if mail.Kinds[i]&3 == msgBCPayload {
			t.put(n, mail.Srcs[i], mail.Payloads[i])
		}
	}
	d.bcStep[w] = execSeq
	return t
}

// colSender is the columnar messaging surface shared by the per-vertex
// Context and the batched BatchContext. Both planes route their scatter
// through scatterColumnar against this interface, so the bit-identity
// argument between compute planes reduces to "same function, called for the
// same vertices in the same order".
type colSender interface {
	SendColumnar(dst int32, kind uint8, src, count int32, payload []float32)
	SendColumnarFan(dsts []int32, kind uint8, src, count int32, payload []float32)
	SendColumnarToWorker(w int, kind uint8, src, count int32, payload []float32)
}

// scatter is apply_edge + scatter_nbrs for the messages consumed by
// sendLayer = Layers[k] in the next superstep, applying the broadcast
// strategy for eligible hub nodes. The columnar plane (both compute planes)
// goes through scatterColumnar; the boxed branch below differs in payload
// ownership only: identity payloads are shared (the combiner copies before
// mutating) and edge-dependent or degree-scaled payloads are fresh slices
// because the boxed message owns its slice across the superstep.
func (d *pregelDriver) scatter(ctx *pregel.Context[vtxValue, gnnMsg], k int) {
	if d.columnar {
		d.scatterColumnar(ctx, ctx.WorkerID(), ctx.ID, ctx.Value.h, k)
		return
	}
	sendLayer := d.model.Layers[k]
	h := ctx.Value.h
	dsts, eids := ctx.OutEdges()
	if ms, ok := sendLayer.(gas.MessageScaler); ok {
		// Degree-scaled wire messages (GCN). Mirrors scale by the original
		// node's out-degree so shadow-nodes stays result-neutral.
		h = ms.ScaleMessage(h, int(d.sg.OrigOutDeg[ctx.ID]))
	}
	reduce := uint8(sendLayer.Reduce())

	if d.opts.Broadcast && sendLayer.BroadcastSafe() && len(dsts) > d.threshold {
		d.bcHubs[ctx.WorkerID()]++
		// One payload per destination worker...
		seen := d.seenScratch(ctx.WorkerID())
		for _, dst := range dsts {
			seen[d.part.WorkerFor(dst)] = true
		}
		for w, ok := range seen {
			if ok {
				ctx.SendToWorker(w, gnnMsg{Kind: msgBCPayload, Src: ctx.ID, Payload: h})
			}
		}
		// ...and a lightweight, payload-free reference along every out-edge.
		ref := gnnMsg{Kind: msgBCRef, Src: ctx.ID, Reduce: reduce}
		for _, dst := range dsts {
			ctx.SendMessage(dst, ref)
		}
		return
	}

	if sendLayer.BroadcastSafe() {
		// apply_edge is the identity: the vertex state is the payload for
		// every out-edge.
		m := gnnMsg{Kind: msgState, Reduce: reduce, Src: ctx.ID, Count: 1, Payload: h}
		for _, dst := range dsts {
			ctx.SendMessage(dst, m)
		}
		return
	}
	// Edge-dependent messages: run apply_edge per out-edge. The result is
	// pool-drawn and recycled as soon as the message has its own copy.
	state := d.stateMat(ctx.WorkerID(), h)
	pool := d.pools[ctx.WorkerID()]
	for i, dst := range dsts {
		var ef *tensor.Matrix
		if d.sg.G.EdgeFeatures != nil {
			ef = d.edgeMat(ctx.WorkerID(), int(eids[i]))
		}
		payload := gas.ApplyEdgePooled(sendLayer, state, ef, pool)
		out := make([]float32, payload.Cols)
		copy(out, payload.Row(0))
		ctx.SendMessage(dst, gnnMsg{Kind: msgState, Reduce: reduce, Src: ctx.ID, Count: 1, Payload: out})
		if payload != state {
			pool.Put(payload)
		}
	}
}

// scatterColumnar scatters one vertex's messages on the columnar plane: the
// strategy logic (degree scaling, hub decision, destination-worker dedup,
// per-edge apply_edge with pooled results) shared by the per-vertex and
// batched compute planes. Every send copies its payload into the arena, so
// h — including the degree-scaled scratch row — stays reusable the moment
// the call returns.
func (d *pregelDriver) scatterColumnar(send colSender, w int, v int32, h []float32, k int) {
	sendLayer := d.model.Layers[k]
	dsts, eids := d.sg.G.OutNeighbors(v), d.sg.G.OutEdgeIDs(v)
	if ms, ok := sendLayer.(gas.MessageScalerInto); ok {
		// Degree-scaled wire messages (GCN). Mirrors scale by the original
		// node's out-degree so shadow-nodes stays result-neutral.
		scaled := d.scaleScratch(w, len(h))
		ms.ScaleMessageInto(scaled, h, int(d.sg.OrigOutDeg[v]))
		h = scaled
	} else if ms, ok := sendLayer.(gas.MessageScaler); ok {
		h = ms.ScaleMessage(h, int(d.sg.OrigOutDeg[v]))
	}
	reduce := uint8(sendLayer.Reduce())

	if d.opts.Broadcast && sendLayer.BroadcastSafe() && len(dsts) > d.threshold {
		d.bcHubs[w]++
		// One payload per destination worker...
		seen := d.seenScratch(w)
		for _, dst := range dsts {
			seen[d.part.WorkerFor(dst)] = true
		}
		for dw, ok := range seen {
			if ok {
				send.SendColumnarToWorker(dw, colTag(msgBCPayload, 0), v, 0, h)
			}
		}
		// ...and a lightweight, payload-free reference along every out-edge.
		send.SendColumnarFan(dsts, colTag(msgBCRef, reduce), v, 0, nil)
		return
	}

	tag := colTag(msgState, reduce)
	if sendLayer.BroadcastSafe() {
		// apply_edge is the identity: the vertex state is the payload for
		// every out-edge — fanned, so the arena stores it once per
		// destination worker no matter the out-degree.
		send.SendColumnarFan(dsts, tag, v, 1, h)
		return
	}
	// Edge-dependent messages: run apply_edge per out-edge. The result is
	// pool-drawn and recycled as soon as the arena has its copy.
	state := d.stateMat(w, h)
	pool := d.pools[w]
	for i, dst := range dsts {
		var ef *tensor.Matrix
		if d.sg.G.EdgeFeatures != nil {
			ef = d.edgeMat(w, int(eids[i]))
		}
		payload := gas.ApplyEdgePooled(sendLayer, state, ef, pool)
		send.SendColumnar(dst, tag, v, 1, payload.Row(0))
		if payload != state {
			pool.Put(payload)
		}
	}
}

// scaleScratch returns worker w's degree-scaling scratch row, grown on
// demand and reused across vertices and supersteps.
func (d *pregelDriver) scaleScratch(w, n int) []float32 {
	if cap(d.scaleRows[w]) < n {
		d.scaleRows[w] = make([]float32, n)
	}
	d.scaleRows[w] = d.scaleRows[w][:n]
	return d.scaleRows[w]
}

// edgeMat wraps edge eid's feature row in worker w's reusable header.
func (d *pregelDriver) edgeMat(w, eid int) *tensor.Matrix {
	row := d.sg.G.EdgeFeatures.Row(eid)
	m := &d.efMats[w]
	m.Rows, m.Cols, m.Data = 1, len(row), row
	return m
}

// RunPregel executes full-graph inference of model over g on the Pregel
// backend.
func RunPregel(model *gas.Model, g *graph.Graph, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := validateModelGraph(model, g); err != nil {
		return nil, err
	}
	if opts.Pipelined && opts.BoxedMessages {
		return nil, fmt.Errorf("inference: Pipelined requires the columnar message plane (unset BoxedMessages)")
	}
	if opts.captureLayers != nil && opts.ShadowNodes {
		return nil, fmt.Errorf("inference: layer capture is incompatible with ShadowNodes")
	}
	defer applyTuning(opts)()
	if opts.CheckpointDir != "" && opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = 2
	}
	threshold := opts.threshold(g)

	sg := IdentityShadow(g)
	if opts.ShadowNodes {
		sg = BuildShadowGraph(g, threshold)
	}
	if opts.OutDegrees != nil {
		if len(opts.OutDegrees) != g.NumNodes {
			return nil, fmt.Errorf("inference: OutDegrees len %d != graph nodes %d", len(opts.OutDegrees), g.NumNodes)
		}
		// Degree-scaled layers see the override instead of the executed
		// graph's structural degree; mirrors resolve through their origin.
		for v := range sg.OrigOutDeg {
			sg.OrigOutDeg[v] = opts.OutDegrees[sg.Origin[v]]
		}
	}

	driver := &pregelDriver{
		model:     model,
		sg:        sg,
		opts:      opts,
		threshold: threshold,
		part:      opts.partition(sg.G),
		columnar:  !opts.BoxedMessages,
		batched:   !opts.BoxedMessages && !opts.PerVertexCompute,
		bcTabs:    make([]bcIndex, opts.NumWorkers),
		bcStep:    make([]int, opts.NumWorkers),
		bcHubs:    make([]int64, opts.NumWorkers),
		bcSeen:    make([][]bool, opts.NumWorkers),
		aggrs:     make([]gas.Aggregated, opts.NumWorkers),
		stateMats: make([]tensor.Matrix, opts.NumWorkers),
		efMats:    make([]tensor.Matrix, opts.NumWorkers),
		pools:     make([]*tensor.Pool, opts.NumWorkers),
		states:    make([]*tensor.Matrix, opts.NumWorkers),
		embs:      make([]*tensor.Matrix, opts.NumWorkers),
		resPays:   make([][][]float32, opts.NumWorkers),
		resCounts: make([][]int32, opts.NumWorkers),
		scaleRows: make([][]float32, opts.NumWorkers),
		hSlabs:    make([]hSlab, opts.NumWorkers),
		hStep:     make([]int, opts.NumWorkers),
	}
	for i := range driver.bcStep {
		driver.bcStep[i] = -1
		driver.hStep[i] = -1
		driver.pools[i] = tensor.NewPool()
	}

	cfg := pregel.Config[gnnMsg]{
		NumWorkers:       opts.NumWorkers,
		Partitioner:      driver.part,
		MaxSupersteps:    model.NumLayers() + 1,
		Parallel:         opts.Parallel,
		Batched:          driver.batched,
		Pipelined:        opts.Pipelined,
		ChunkSize:        opts.PipelineChunk,
		PipelineDepth:    opts.PipelineDepth,
		CheckpointEvery:  opts.CheckpointEvery,
		FailAtSuperstep:  opts.FailAtSuperstep,
		Faults:           opts.Faults,
		PipelineWatchdog: opts.PipelineWatchdog,
		SuperstepHook:    opts.SuperstepHook,
		Cancel:           opts.Cancel,
	}
	if driver.columnar {
		ops := &pregel.ColumnarOps{Bytes: columnarBytes}
		if opts.PartialGather {
			ops.Combine = combineColumnar
		}
		// Pre-size send buffers for the expected steady state: one message
		// per edge spreads edges/workers² headers per sender→receiver pair.
		// Fanned identity payloads dedup the arena well below msgs × dim, so
		// the float reserve stays at half that bound.
		maxDim := model.InDim()
		for _, l := range model.Layers {
			if l.OutDim() > maxDim {
				maxDim = l.OutDim()
			}
		}
		perBuf := sg.G.NumEdges/(opts.NumWorkers*opts.NumWorkers) + 1
		ops.ReserveMsgs = perBuf
		ops.ReserveFloats = perBuf*maxDim/2 + maxDim
		cfg.Columnar = ops
	} else {
		cfg.MessageBytes = func(m gnnMsg) int {
			if m.Kind == msgBCRef {
				return refBytes
			}
			return payloadBytes(len(m.Payload))
		}
		if opts.PartialGather {
			cfg.Combiner = combineMsgs
		}
	}

	eng := pregel.NewEngine[vtxValue, gnnMsg](pregel.GraphTopology{G: sg.G}, driver, cfg)
	resumed := false
	if opts.CheckpointDir != "" {
		store, err := checkpoint.NewStore(opts.CheckpointDir)
		if err != nil {
			return nil, err
		}
		store.Sync = opts.CheckpointSync
		eng.SetSink(store, gnnCodec{})
		if opts.Resume {
			if resumed, err = eng.Resume(); err != nil {
				return nil, err
			}
		}
	}
	if err := eng.Run(); err != nil {
		return nil, err
	}

	res := &Result{Logits: tensor.New(g.NumNodes, model.NumClasses)}
	if opts.EmitEmbeddings {
		embDim := model.InDim()
		if n := model.NumLayers(); n > 1 {
			embDim = model.Layers[n-2].OutDim()
		}
		res.Embeddings = tensor.New(g.NumNodes, embDim)
	}
	if driver.batched {
		// Batched plane: final states live in the per-worker slabs, row li
		// holding the vertex with local index li.
		for w, st := range driver.states {
			if st.Cols != model.NumClasses {
				return nil, fmt.Errorf("inference: worker %d finished with dim %d, want %d classes", w, st.Cols, model.NumClasses)
			}
		}
		for v := 0; v < g.NumNodes; v++ {
			w, li := driver.part.WorkerFor(int32(v)), driver.part.LocalIndex(int32(v))
			res.Logits.SetRow(v, driver.states[w].Row(li))
			if res.Embeddings != nil {
				res.Embeddings.SetRow(v, driver.embs[w].Row(li))
			}
		}
	} else {
		for v := 0; v < g.NumNodes; v++ {
			val := eng.VertexValue(int32(v))
			if len(val.h) != model.NumClasses {
				return nil, fmt.Errorf("inference: node %d finished with dim %d, want %d classes", v, len(val.h), model.NumClasses)
			}
			res.Logits.SetRow(v, val.h)
			if res.Embeddings != nil {
				res.Embeddings.SetRow(v, val.emb)
			}
		}
	}
	res.finalize(model)
	res.Stats, res.Phases = pregelStats(eng, driver, model, sg, opts)
	res.Stats.Resumed = resumed
	res.Stats.Recoveries = eng.Recoveries()
	cs := eng.CheckpointStats()
	res.Stats.Checkpoints = cs.Checkpoints
	res.Stats.CheckpointBytes = cs.Bytes
	res.Stats.CheckpointWallNs = cs.SnapshotNs
	res.Stats.PersistWallNs = cs.PersistNs
	res.Stats.WatchdogTrips = eng.WatchdogTrips()
	return res, nil
}

// pregelStats converts engine metrics into run stats and cluster phases.
func pregelStats(eng *pregel.Engine[vtxValue, gnnMsg], driver *pregelDriver, model *gas.Model, sg *ShadowGraph, opts Options) (Stats, []cluster.Phase) {
	resident := residentBytes(sg.G, driver.part, model, opts.NumWorkers)
	st, phases := statsFromMetrics(eng.Metrics(), eng.Supersteps(), model, resident, opts.NumWorkers)
	st.ShadowMirrors = int64(sg.Mirrors)
	for _, n := range driver.bcHubs {
		st.BroadcastHubs += n
	}
	return st, phases
}

// residentBytes estimates each worker's resident footprint: every owned
// vertex holds its widest embedding plus its out-edge structure.
func residentBytes(g *graph.Graph, part graph.Partitioner, model *gas.Model, numWorkers int) []int64 {
	maxDim := model.InDim()
	for _, l := range model.Layers {
		if l.OutDim() > maxDim {
			maxDim = l.OutDim()
		}
	}
	resident := make([]int64, numWorkers)
	for v := int32(0); v < int32(g.NumNodes); v++ {
		resident[part.WorkerFor(v)] += int64(4*maxDim) + int64(8*g.OutDegree(v))
	}
	return resident
}

// statsFromMetrics converts engine step metrics into run stats and cluster
// phases — shared by the one-shot drivers and the incremental Session's
// delta passes (whose engine is instantiated over different type parameters,
// hence the plain-metrics signature).
func statsFromMetrics(metrics [][]pregel.StepMetrics, supersteps int, model *gas.Model, resident []int64, numWorkers int) (Stats, []cluster.Phase) {
	st := Stats{
		Supersteps:      supersteps,
		WorkerBytesIn:   make([]int64, numWorkers),
		WorkerBytesOut:  make([]int64, numWorkers),
		WorkerFlops:     make([]int64, numWorkers),
		WorkerInRecords: make([]int64, numWorkers),
	}
	var phases []cluster.Phase
	for _, step := range metrics {
		s := step[0].Superstep // robust under checkpoint replays
		for len(st.StepActive) <= s {
			st.StepActive = append(st.StepActive, 0)
		}
		st.StepActive[s] = 0 // set, not add: replays revisit superstep numbers
		ph := cluster.Phase{Name: fmt.Sprintf("superstep-%d", s), Workers: make([]cluster.WorkerLoad, numWorkers)}
		for w, m := range step {
			st.StepActive[s] += int64(m.ActiveVertices)
			flops := m.ComputeCost
			// Partial-gather moves aggregation flops to the sender: charge
			// combined-away messages at the sending worker against the layer
			// that would have consumed them.
			if s < model.NumLayers() {
				flops += m.CombinedAway * layerMsgFlops(model.Layers[s])
			}
			ph.Workers[w] = cluster.WorkerLoad{
				Flops:    flops,
				BytesIn:  m.BytesReceived,
				BytesOut: m.BytesSent,
				MsgsIn:   m.MessagesReceived,
				MsgsOut:  m.MessagesSent,
				PeakMem:  resident[w] + m.BytesReceived,
			}
			st.MessagesSent += m.MessagesSent
			st.BytesSent += m.BytesSent
			st.BytesReceived += m.BytesReceived
			st.RemoteMessages += m.RemoteMessagesSent
			st.RemoteBytes += m.RemoteBytesSent
			st.CombinedAway += m.CombinedAway
			st.WorkerBytesIn[w] += m.BytesReceived
			st.WorkerBytesOut[w] += m.BytesSent
			st.WorkerFlops[w] += flops
			st.WorkerInRecords[w] += m.MessagesReceived
		}
		phases = append(phases, ph)
	}
	return st, phases
}
