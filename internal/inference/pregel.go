package inference

import (
	"fmt"

	"inferturbo/internal/cluster"
	"inferturbo/internal/gas"
	"inferturbo/internal/graph"
	"inferturbo/internal/pregel"
	"inferturbo/internal/tensor"
)

// Message kinds exchanged between vertices.
const (
	msgState     uint8 = iota // a (possibly partially aggregated) state vector
	msgBCRef                  // broadcast reference: look up Src in the worker table
	msgBCPayload              // broadcast payload addressed to a worker mailbox
)

// gnnMsg is the Pregel message. Payload carries a state vector; for
// commutative reduces under partial-gather it may be a pre-aggregated sum
// (Count tracks how many contributions it folds, keeping mean exact).
type gnnMsg struct {
	Kind    uint8
	Reduce  uint8
	Src     int32
	Count   int32
	Payload []float32
}

// combineMsgs is the Pregel combiner implementing partial-gather: messages
// for the same destination merge on the sender side when the consuming
// layer's reduce is commutative/associative. Union messages (GAT) and
// broadcast refs decline.
func combineMsgs(a, b gnnMsg) (gnnMsg, bool) {
	if a.Kind != msgState || b.Kind != msgState || a.Reduce != b.Reduce {
		return a, false
	}
	kind := gas.ReduceKind(a.Reduce)
	if !kind.Commutative() {
		return a, false
	}
	out := gnnMsg{Kind: msgState, Reduce: a.Reduce, Src: -1, Count: a.Count + b.Count,
		Payload: make([]float32, len(a.Payload))}
	switch kind {
	case gas.ReduceSum, gas.ReduceMean:
		for i := range out.Payload {
			out.Payload[i] = a.Payload[i] + b.Payload[i]
		}
	case gas.ReduceMax:
		for i := range out.Payload {
			out.Payload[i] = max32(a.Payload[i], b.Payload[i])
		}
	case gas.ReduceMin:
		for i := range out.Payload {
			out.Payload[i] = min32(a.Payload[i], b.Payload[i])
		}
	default:
		return a, false
	}
	return out, true
}

func max32(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

func min32(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

// vtxValue is the per-vertex state: the current embedding h^k, which ends as
// the logit vector after the last layer, plus the retained penultimate
// state when embeddings were requested.
type vtxValue struct {
	h   []float32
	emb []float32
}

// pregelDriver is the vertex program executing a gas.Model layer-by-layer.
type pregelDriver struct {
	model     *gas.Model
	sg        *ShadowGraph
	opts      Options
	threshold int
	part      *graph.Partitioner

	// Per-worker scratch (indexed by worker id; each worker touches only
	// its own slot, so parallel execution is race-free).
	bcTables []map[int32][]float32
	bcStep   []int
	bcHubs   []int64
	// Per-worker buffer pools: the per-vertex aggregate and apply_node
	// scratch recycles here instead of allocating every superstep.
	pools []*tensor.Pool
}

// Compute implements pregel.VertexProgram: superstep 0 initializes and
// scatters h^0; superstep k applies layer k-1; the final superstep attaches
// the prediction and halts.
func (d *pregelDriver) Compute(ctx *pregel.Context[vtxValue, gnnMsg], msgs []gnnMsg) {
	k := ctx.Superstep
	numLayers := d.model.NumLayers()
	if k == 0 {
		// Initialization: raw features become h^0 (the paper's "transform
		// raw node states into initial embeddings" is the identity here —
		// feature encoders would slot in at this point).
		ctx.Value.h = d.sg.G.Features.Row(int(ctx.ID))
		d.scatter(ctx, 0)
		return
	}

	layer := d.model.Layers[k-1]
	if d.opts.EmitEmbeddings && k == numLayers {
		ctx.Value.emb = ctx.Value.h // penultimate state, about to be replaced
	}
	pool := d.pools[ctx.WorkerID()]
	state := tensor.FromSlice(1, len(ctx.Value.h), ctx.Value.h)
	aggr := d.gatherStage(ctx, layer, msgs, pool)
	out := gas.ApplyNodePooled(layer, state, aggr, pool)
	next := make([]float32, out.Cols)
	copy(next, out.Row(0))
	ctx.Value.h = next
	pool.Put(out)
	releaseAggregated(pool, aggr)
	ctx.AddCost(layerNodeFlops(layer) + int64(len(msgs))*layerMsgFlops(layer))

	if k == numLayers {
		// Last superstep: the prediction slice of the model is attached
		// here; h now holds the logits.
		ctx.VoteToHalt()
		return
	}
	d.scatter(ctx, k)
}

// gatherStage is gather_nbrs + aggregate: vectorize received messages
// (resolving broadcast references through the worker table) and reduce them
// per the layer's annotation. Aggregate buffers come from the worker's pool;
// the caller releases them via releaseAggregated once apply_node is done.
func (d *pregelDriver) gatherStage(ctx *pregel.Context[vtxValue, gnnMsg], layer gas.Conv, msgs []gnnMsg, pool *tensor.Pool) *gas.Aggregated {
	table := d.workerTable(ctx)
	dim := layer.InDim()

	resolve := func(m gnnMsg) ([]float32, int32) {
		switch m.Kind {
		case msgState:
			return m.Payload, m.Count
		case msgBCRef:
			p, ok := table[m.Src]
			if !ok {
				panic(fmt.Sprintf("inference: broadcast payload for node %d missing on worker %d", m.Src, ctx.WorkerID()))
			}
			return p, 1
		default:
			panic(fmt.Sprintf("inference: unexpected message kind %d at vertex", m.Kind))
		}
	}

	return vectorizeAggregate(layer.Reduce(), dim, len(msgs), func(i int) ([]float32, int32) {
		return resolve(msgs[i])
	}, pool)
}

// workerTable lazily builds this worker's broadcast lookup table for the
// current superstep from its mailbox.
func (d *pregelDriver) workerTable(ctx *pregel.Context[vtxValue, gnnMsg]) map[int32][]float32 {
	w := ctx.WorkerID()
	if d.bcStep[w] == ctx.Superstep && d.bcTables[w] != nil {
		return d.bcTables[w]
	}
	t := map[int32][]float32{}
	for _, m := range ctx.WorkerMail() {
		if m.Kind == msgBCPayload {
			t[m.Src] = m.Payload
		}
	}
	d.bcTables[w] = t
	d.bcStep[w] = ctx.Superstep
	return t
}

// scatter is apply_edge + scatter_nbrs for the messages consumed by layer
// sendLayer = Layers[k] in the next superstep, applying the broadcast
// strategy for eligible hub nodes.
func (d *pregelDriver) scatter(ctx *pregel.Context[vtxValue, gnnMsg], k int) {
	sendLayer := d.model.Layers[k]
	h := ctx.Value.h
	dsts, eids := ctx.OutEdges()
	if ms, ok := sendLayer.(gas.MessageScaler); ok {
		// Degree-scaled wire messages (GCN). Mirrors scale by the original
		// node's out-degree so shadow-nodes stays result-neutral.
		h = ms.ScaleMessage(h, int(d.sg.OrigOutDeg[ctx.ID]))
	}

	if d.opts.Broadcast && sendLayer.BroadcastSafe() && len(dsts) > d.threshold {
		d.bcHubs[ctx.WorkerID()]++
		// One payload per destination worker...
		seen := make([]bool, ctx.NumWorkers())
		for _, dst := range dsts {
			seen[d.part.WorkerFor(dst)] = true
		}
		for w, ok := range seen {
			if ok {
				ctx.SendToWorker(w, gnnMsg{Kind: msgBCPayload, Src: ctx.ID, Payload: h})
			}
		}
		// ...and a lightweight reference along every out-edge.
		ref := gnnMsg{Kind: msgBCRef, Src: ctx.ID, Reduce: uint8(sendLayer.Reduce())}
		for _, dst := range dsts {
			ctx.SendMessage(dst, ref)
		}
		return
	}

	reduce := uint8(sendLayer.Reduce())
	if sendLayer.BroadcastSafe() {
		// apply_edge is the identity: one shared payload for all out-edges
		// (the combiner copies before mutating, so sharing is safe).
		m := gnnMsg{Kind: msgState, Reduce: reduce, Src: ctx.ID, Count: 1, Payload: h}
		for _, dst := range dsts {
			ctx.SendMessage(dst, m)
		}
		return
	}
	// Edge-dependent messages: run apply_edge per out-edge.
	state := tensor.FromSlice(1, len(h), h)
	for i, dst := range dsts {
		var ef *tensor.Matrix
		if d.sg.G.EdgeFeatures != nil {
			row := d.sg.G.EdgeFeatures.Row(int(eids[i]))
			ef = tensor.FromSlice(1, len(row), row)
		}
		payload := sendLayer.ApplyEdge(state, ef)
		out := make([]float32, payload.Cols)
		copy(out, payload.Row(0))
		ctx.SendMessage(dst, gnnMsg{Kind: msgState, Reduce: reduce, Src: ctx.ID, Count: 1, Payload: out})
	}
}

// RunPregel executes full-graph inference of model over g on the Pregel
// backend.
func RunPregel(model *gas.Model, g *graph.Graph, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := validateModelGraph(model, g); err != nil {
		return nil, err
	}
	defer applyTuning(opts)()
	threshold := opts.threshold(g)

	sg := IdentityShadow(g)
	if opts.ShadowNodes {
		sg = BuildShadowGraph(g, threshold)
	}

	driver := &pregelDriver{
		model:     model,
		sg:        sg,
		opts:      opts,
		threshold: threshold,
		part:      graph.NewPartitioner(opts.NumWorkers),
		bcTables:  make([]map[int32][]float32, opts.NumWorkers),
		bcStep:    make([]int, opts.NumWorkers),
		bcHubs:    make([]int64, opts.NumWorkers),
		pools:     make([]*tensor.Pool, opts.NumWorkers),
	}
	for i := range driver.bcStep {
		driver.bcStep[i] = -1
		driver.pools[i] = tensor.NewPool()
	}

	cfg := pregel.Config[gnnMsg]{
		NumWorkers:    opts.NumWorkers,
		MaxSupersteps: model.NumLayers() + 1,
		Parallel:      opts.Parallel,
		MessageBytes: func(m gnnMsg) int {
			if m.Kind == msgBCRef {
				return refBytes
			}
			return payloadBytes(len(m.Payload))
		},
	}
	if opts.PartialGather {
		cfg.Combiner = combineMsgs
	}

	eng := pregel.NewEngine[vtxValue, gnnMsg](pregel.GraphTopology{G: sg.G}, driver, cfg)
	if err := eng.Run(); err != nil {
		return nil, err
	}

	res := &Result{Logits: tensor.New(g.NumNodes, model.NumClasses)}
	if opts.EmitEmbeddings {
		embDim := model.InDim()
		if n := model.NumLayers(); n > 1 {
			embDim = model.Layers[n-2].OutDim()
		}
		res.Embeddings = tensor.New(g.NumNodes, embDim)
	}
	for v := 0; v < g.NumNodes; v++ {
		val := eng.VertexValue(int32(v))
		if len(val.h) != model.NumClasses {
			return nil, fmt.Errorf("inference: node %d finished with dim %d, want %d classes", v, len(val.h), model.NumClasses)
		}
		res.Logits.SetRow(v, val.h)
		if res.Embeddings != nil {
			res.Embeddings.SetRow(v, val.emb)
		}
	}
	res.finalize(model)
	res.Stats, res.Phases = pregelStats(eng, driver, model, sg, opts)
	return res, nil
}

// pregelStats converts engine metrics into run stats and cluster phases.
func pregelStats(eng *pregel.Engine[vtxValue, gnnMsg], driver *pregelDriver, model *gas.Model, sg *ShadowGraph, opts Options) (Stats, []cluster.Phase) {
	st := Stats{
		Supersteps:      eng.Supersteps(),
		ShadowMirrors:   int64(sg.Mirrors),
		WorkerBytesIn:   make([]int64, opts.NumWorkers),
		WorkerBytesOut:  make([]int64, opts.NumWorkers),
		WorkerFlops:     make([]int64, opts.NumWorkers),
		WorkerInRecords: make([]int64, opts.NumWorkers),
	}
	for _, n := range driver.bcHubs {
		st.BroadcastHubs += n
	}

	// Resident state per worker: every owned vertex holds its widest
	// embedding plus its out-edge structure.
	maxDim := model.InDim()
	for _, l := range model.Layers {
		if l.OutDim() > maxDim {
			maxDim = l.OutDim()
		}
	}
	resident := make([]int64, opts.NumWorkers)
	part := graph.NewPartitioner(opts.NumWorkers)
	for v := int32(0); v < int32(sg.G.NumNodes); v++ {
		w := part.WorkerFor(v)
		resident[w] += int64(4*maxDim) + int64(8*sg.G.OutDegree(v))
	}

	var phases []cluster.Phase
	for _, step := range eng.Metrics() {
		s := step[0].Superstep // robust under checkpoint replays
		ph := cluster.Phase{Name: fmt.Sprintf("superstep-%d", s), Workers: make([]cluster.WorkerLoad, opts.NumWorkers)}
		for w, m := range step {
			flops := m.ComputeCost
			// Partial-gather moves aggregation flops to the sender: charge
			// combined-away messages at the sending worker against the layer
			// that would have consumed them.
			if s < model.NumLayers() {
				flops += m.CombinedAway * layerMsgFlops(model.Layers[s])
			}
			ph.Workers[w] = cluster.WorkerLoad{
				Flops:    flops,
				BytesIn:  m.BytesReceived,
				BytesOut: m.BytesSent,
				MsgsIn:   m.MessagesReceived,
				MsgsOut:  m.MessagesSent,
				PeakMem:  resident[w] + m.BytesReceived,
			}
			st.MessagesSent += m.MessagesSent
			st.BytesSent += m.BytesSent
			st.BytesReceived += m.BytesReceived
			st.CombinedAway += m.CombinedAway
			st.WorkerBytesIn[w] += m.BytesReceived
			st.WorkerBytesOut[w] += m.BytesSent
			st.WorkerFlops[w] += flops
			st.WorkerInRecords[w] += m.MessagesReceived
		}
		phases = append(phases, ph)
	}
	return st, phases
}
