package inference

import (
	"math"

	"inferturbo/internal/gas"
	"inferturbo/internal/graph"
	"inferturbo/internal/pregel"
	"inferturbo/internal/tensor"
)

// The delta compute program of the incremental Session: a frontier-driven
// Pregel pass that recomputes exactly the vertices a graph delta can reach
// within L hops, against the resident per-layer state a previous full pass
// left behind.
//
// The program inverts the full pass's data flow. Where the full pass pushes
// state — scatter sends each vertex's (possibly scaled, possibly
// edge-transformed) message along its out-edges and gather folds the inbox —
// the delta pass sends payload-free activation pings and each pinged vertex
// PULLS its entire inbox from the resident message slabs through the
// GatherIndex, whose per-destination order reproduces the engine's
// ascending-source merged delivery exactly. Pulling regenerates the full
// aggregate (the fold mixes fresh and stale neighbor values transparently),
// so the recomputed row equals the full pass's row bit for bit; when the new
// row is bitwise identical to the resident one the wave halts there —
// exact-zero delta, no tolerance.
//
// Three seed classes drive the flood (see graph.DeltaEffect):
//
//   - state-dirty: h^0 changed. Recomputes layer 1 at superstep 1 and keeps
//     flooding while outputs change.
//   - inbox-dirty: the in-edge set changed. Must re-gather at EVERY layer —
//     the resident aggregate was folded over the old structure — so these
//     vertices never halt before the last superstep.
//   - pinned (out-degree changed, degree-scaled models only): every resident
//     scaled message row of the vertex was rewritten at mutation time, so its
//     receivers must re-gather at every scaled layer; the vertex itself pings
//     at each scaled superstep without recomputing its own unchanged state.
//
// dirtyStep[v] = k records "v's h^k changed during this pass"; owner-only
// reads (== k-1) and writes (= k) make it race-free under parallel workers.
type deltaDriver struct {
	model  *gas.Model
	g      *graph.Graph
	gi     *graph.GatherIndex
	layers []*tensor.Matrix // resident h^k, k = 0..L; [0] aliases g.Features
	msgs   []*tensor.Matrix // resident wire messages for layer k, k = 0..L-1
	scaled []bool           // Layers[k] degree-scales its messages

	seedState  []bool
	seedInbox  []bool
	seedPinned []bool
	dirtyStep  []int32

	// Per-worker scratch, same discipline as pregelDriver: each worker
	// touches only its own slot.
	aggrs     []gas.Aggregated
	stateMats []tensor.Matrix
	payMats   []tensor.Matrix
	efMats    []tensor.Matrix
	pools     []*tensor.Pool
}

// deltaVtx carries no per-vertex engine state: everything lives in the
// session's resident slabs. deltaPing is the (payload-free) message type.
type (
	deltaVtx  struct{}
	deltaPing struct{}
)

// pingTag is the columnar kind byte of an activation ping.
const pingTag = msgState

func newDeltaDriver(model *gas.Model, g *graph.Graph, gi *graph.GatherIndex, layers, msgs []*tensor.Matrix, scaled []bool, seedState, seedInbox, seedPinned []bool, dirtyStep []int32, numWorkers int) *deltaDriver {
	d := &deltaDriver{
		model: model, g: g, gi: gi,
		layers: layers, msgs: msgs, scaled: scaled,
		seedState: seedState, seedInbox: seedInbox, seedPinned: seedPinned,
		dirtyStep: dirtyStep,
		aggrs:     make([]gas.Aggregated, numWorkers),
		stateMats: make([]tensor.Matrix, numWorkers),
		payMats:   make([]tensor.Matrix, numWorkers),
		efMats:    make([]tensor.Matrix, numWorkers),
		pools:     make([]*tensor.Pool, numWorkers),
	}
	for i := range d.pools {
		d.pools[i] = tensor.NewPool()
	}
	return d
}

// ping activates v's out-neighbors for the next superstep. Pings carry no
// payload — receivers pull values from the resident slabs — so the arena
// stores headers only.
func (d *deltaDriver) ping(send colSender, v int32) {
	send.SendColumnarFan(d.g.OutNeighbors(v), colTag(pingTag, 0), v, 1, nil)
}

// step runs one vertex's superstep-k (k >= 1) transition and returns whether
// the vertex votes to halt. pinged reports a non-empty inbox.
func (d *deltaDriver) step(send colSender, w int, v int32, k int, pinged bool) (halt bool) {
	numLayers := d.model.NumLayers()
	needs := pinged || d.seedInbox[v] || d.dirtyStep[v] == int32(k-1)
	changed := false
	if needs {
		changed = d.recompute(w, v, k)
	}
	if k == numLayers {
		return true
	}
	if changed || (d.seedPinned[v] && d.scaled[k]) {
		d.ping(send, v)
	}
	return !(d.seedInbox[v] || d.seedPinned[v] || changed)
}

// seedStep is the superstep-0 transition: seeds announce their already-stale
// layer-0 messages. state-dirty vertices rewrote their h^0 (and scaled
// message row) at mutation time; pinned vertices rewrote their scaled rows.
// Nothing halts at superstep 0 — every seed class has later work (state-dirty
// recomputes layer 1 via dirtyStep == 0, inbox-dirty re-gathers everywhere,
// pinned pings at later scaled layers).
func (d *deltaDriver) seedStep(send colSender, v int32) {
	if d.seedState[v] || (d.seedPinned[v] && d.scaled[0]) {
		d.ping(send, v)
	}
}

// recompute regenerates v's layer-k state (layer = Layers[k-1]) by pulling
// its whole inbox from the resident message slab in delivery order, then
// re-applying the node update. Returns whether the resident row changed.
// Comparison is bitwise, the exact notion the from-scratch equivalence is
// stated in: value-equal rows with different bits (-0 vs +0) count as
// changed and propagate.
func (d *deltaDriver) recompute(w int, v int32, k int) bool {
	layer := d.model.Layers[k-1]
	srcs, eids := d.gi.InEdges(v)
	pool := d.pools[w]
	prev := d.msgs[k-1]

	var aggr *gas.Aggregated
	if layer.BroadcastSafe() {
		aggr = vectorizeAggregateInto(&d.aggrs[w], layer.Reduce(), layer.InDim(), len(srcs), func(i int) ([]float32, int32) {
			return prev.Row(int(srcs[i])), 1
		}, pool)
	} else {
		// Edge-dependent messages: re-run apply_edge per in-edge, exactly the
		// op the sender's scatter ran in the full pass. The previous pooled
		// payload recycles one call later — the fold has consumed it by then.
		var pend *tensor.Matrix
		aggr = vectorizeAggregateInto(&d.aggrs[w], layer.Reduce(), layer.InDim(), len(srcs), func(i int) ([]float32, int32) {
			if pend != nil {
				pool.Put(pend)
				pend = nil
			}
			base := d.payMat(w, prev.Row(int(srcs[i])))
			var ef *tensor.Matrix
			if d.g.EdgeFeatures != nil {
				ef = d.edgeMat(w, int(eids[i]))
			}
			p := gas.ApplyEdgePooled(layer, base, ef, pool)
			if p != base {
				pend = p
			}
			return p.Row(0), 1
		}, pool)
		if pend != nil {
			pool.Put(pend)
		}
	}

	state := d.stateMat(w, d.layers[k-1].Row(int(v)))
	out := gas.ApplyNodePooled(layer, state, aggr, pool)
	releaseAggregated(pool, aggr)
	row := d.layers[k].Row(int(v))
	changed := !sameBits(row, out.Row(0))
	if changed {
		copy(row, out.Row(0))
		if k < d.model.NumLayers() && d.scaled[k] {
			scaleMsgRowInto(d.model.Layers[k], d.msgs[k].Row(int(v)), row, d.g.OutDegree(v))
		}
		d.dirtyStep[v] = int32(k)
	}
	pool.Put(out)
	return changed
}

// Compute implements pregel.VertexProgram — the per-vertex delta plane.
func (d *deltaDriver) Compute(ctx *pregel.Context[deltaVtx, deltaPing], _ []deltaPing) {
	k, v, w := ctx.Superstep, ctx.ID, ctx.WorkerID()
	if k == 0 {
		d.seedStep(ctx, v)
		return
	}
	pinged := ctx.ColumnarInbox().Len() > 0
	cost := layerNodeFlops(d.model.Layers[k-1])
	if d.step(ctx, w, v, k, pinged) {
		ctx.VoteToHalt()
	}
	ctx.AddCost(cost + int64(d.g.InDegree(v))*layerMsgFlops(d.model.Layers[k-1]))
}

// ComputeBatch implements pregel.BatchProgram — the batched delta plane. The
// frontier restricts it to computed (active or pinged) rows of the
// partition; everything else keeps its resident slab rows untouched. Work
// per superstep is proportional to the surviving wave, not the partition.
func (d *deltaDriver) ComputeBatch(ctx *pregel.BatchContext[deltaVtx, deltaPing]) {
	w, k := ctx.WorkerID(), ctx.Superstep
	owned := ctx.Owned()
	chunk := ctx.ChunkSize() // 0 off the pipelined plane
	if k == 0 {
		for li, v := range owned {
			if !ctx.Computed(li) {
				continue
			}
			d.seedStep(ctx, v)
			if chunk > 0 && (li+1)%chunk == 0 {
				ctx.FlushChunk()
			}
		}
		return
	}
	off, _ := ctx.InboxCSR()
	var cost int64
	for li, v := range owned {
		if !ctx.Computed(li) {
			continue
		}
		pinged := off[li+1] > off[li]
		if d.step(ctx, w, v, k, pinged) {
			ctx.Halt(li)
		}
		cost += layerNodeFlops(d.model.Layers[k-1]) + int64(d.g.InDegree(v))*layerMsgFlops(d.model.Layers[k-1])
		if chunk > 0 && (li+1)%chunk == 0 {
			ctx.FlushChunk()
		}
	}
	ctx.AddCost(cost)
}

// deltaSnap is the checkpointed form of the delta pass's program-owned state:
// the resident slabs a replayed superstep would re-derive from, deep-copied.
// Seed sets and layers[0] are immutable during a pass and skipped.
type deltaSnap struct {
	layers    []*tensor.Matrix // k = 1..L
	msgs      []*tensor.Matrix // scaled entries only
	dirtyStep []int32
}

// SnapshotProgState implements pregel.ProgramStater: the delta program keeps
// all superstep-to-superstep state outside the engine's vertex values, on
// both compute planes.
func (d *deltaDriver) SnapshotProgState() any {
	s := &deltaSnap{
		layers:    make([]*tensor.Matrix, len(d.layers)),
		msgs:      make([]*tensor.Matrix, len(d.msgs)),
		dirtyStep: append([]int32(nil), d.dirtyStep...),
	}
	for k := 1; k < len(d.layers); k++ {
		s.layers[k] = d.layers[k].Clone()
	}
	for k, m := range d.msgs {
		if d.scaled[k] {
			s.msgs[k] = m.Clone()
		}
	}
	return s
}

// RestoreProgState implements pregel.ProgramStater by copying the snapshot
// back into the live slabs (dims never change mid-pass), so the snapshot
// survives the replay's writes and a second recovery stays sound.
func (d *deltaDriver) RestoreProgState(snap any) {
	s := snap.(*deltaSnap)
	for k := 1; k < len(d.layers); k++ {
		copy(d.layers[k].Data, s.layers[k].Data)
	}
	for k := range d.msgs {
		if d.scaled[k] {
			copy(d.msgs[k].Data, s.msgs[k].Data)
		}
	}
	copy(d.dirtyStep, s.dirtyStep)
}

// stateMat wraps h as a 1×len(h) matrix in worker w's reusable header.
func (d *deltaDriver) stateMat(w int, h []float32) *tensor.Matrix {
	m := &d.stateMats[w]
	m.Rows, m.Cols, m.Data = 1, len(h), h
	return m
}

// payMat is stateMat over a second header, so an apply_edge base payload and
// the apply_node state can be live at once.
func (d *deltaDriver) payMat(w int, h []float32) *tensor.Matrix {
	m := &d.payMats[w]
	m.Rows, m.Cols, m.Data = 1, len(h), h
	return m
}

// edgeMat wraps edge eid's feature row in worker w's reusable header.
func (d *deltaDriver) edgeMat(w, eid int) *tensor.Matrix {
	row := d.g.EdgeFeatures.Row(eid)
	m := &d.efMats[w]
	m.Rows, m.Cols, m.Data = 1, len(row), row
	return m
}

// scaleMsgRowInto writes layer k's resident wire message for a vertex: the
// degree-scaled state row, computed by the same scaler ops the full pass's
// scatter runs, so resident rows are bitwise what a receiver would have been
// sent. Callers only invoke it for scaled layers.
func scaleMsgRowInto(layer gas.Conv, dst, h []float32, outDeg int) {
	if ms, ok := layer.(gas.MessageScalerInto); ok {
		ms.ScaleMessageInto(dst, h, outDeg)
		return
	}
	copy(dst, layer.(gas.MessageScaler).ScaleMessage(h, outDeg))
}

// layerScales reports whether layer k degree-scales its wire messages.
func layerScales(layer gas.Conv) bool {
	if _, ok := layer.(gas.MessageScalerInto); ok {
		return true
	}
	_, ok := layer.(gas.MessageScaler)
	return ok
}

// sameBits reports bitwise equality of two equal-length rows. Bitwise — not
// float equality — so ±0 differences propagate and NaNs compare equal to
// themselves, making "unchanged" mean exactly "a from-scratch pass would
// have produced these bytes".
func sameBits(a, b []float32) bool {
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}
