package inference

import (
	"fmt"
	"math"
	"testing"

	"inferturbo/internal/datagen"
	"inferturbo/internal/gas"
	"inferturbo/internal/graph"
	"inferturbo/internal/pregel"
	"inferturbo/internal/tensor"
)

// assertBitIdentical fails unless two matrices are byte-for-byte equal — the
// exact contract the incremental mode promises against a from-scratch pass
// (float equality would let ±0 differences slip through).
func assertBitIdentical(t *testing.T, label string, got, want *tensor.Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("%s: bit mismatch at flat index %d: %v != %v (node %d)",
				label, i, got.Data[i], want.Data[i], i/got.Cols)
		}
	}
}

// randomDelta synthesizes one mutation batch: a few feature rewrites, an
// occasional new node wired both ways, an edge addition and (when possible)
// an existing edge's removal.
func randomDelta(rng *tensor.RNG, g *graph.Graph, withNewNodes bool) graph.Delta {
	n := int32(g.NumNodes)
	fdim := g.FeatureDim()
	edim := g.EdgeFeatureDim()
	randRow := func(dim int) []float32 {
		row := make([]float32, dim)
		for i := range row {
			row[i] = rng.Float32()*2 - 1
		}
		return row
	}
	var d graph.Delta
	for i := 0; i < 1+rng.Intn(3); i++ {
		d.Features = append(d.Features, graph.FeatureUpdate{Node: int32(rng.Intn(int(n))), Features: randRow(fdim)})
	}
	if withNewNodes && rng.Intn(3) == 0 {
		d.AddNodes = append(d.AddNodes, graph.NodeAdd{Features: randRow(fdim)})
		d.AddEdges = append(d.AddEdges,
			graph.EdgeAdd{Src: n, Dst: int32(rng.Intn(int(n))), Features: randRow(edim)},
			graph.EdgeAdd{Src: int32(rng.Intn(int(n))), Dst: n, Features: randRow(edim)},
		)
	}
	d.AddEdges = append(d.AddEdges, graph.EdgeAdd{
		Src: int32(rng.Intn(int(n))), Dst: int32(rng.Intn(int(n))), Features: randRow(edim),
	})
	if g.NumEdges > 0 && rng.Intn(2) == 0 {
		src, dst := g.EdgeList()
		e := rng.Intn(g.NumEdges)
		d.RemoveEdges = append(d.RemoveEdges, graph.EdgeKey{Src: src[e], Dst: dst[e]})
	}
	return d
}

func sessionTestGraph(seed int64, edgeFeatures bool) *graph.Graph {
	return datagen.Generate(datagen.Config{
		Name: "sess", Nodes: 90, AvgDegree: 5, Skew: datagen.SkewIn, Exponent: 1.6,
		FeatureDim: 6, NumClasses: 3, Seed: seed, EdgeFeature: edgeFeatures,
	}).Graph
}

// TestSessionDeltaMatchesScratch is the property test of the incremental
// mode: random mutation batches followed by delta refreshes stay bit-
// identical to a from-scratch full pass on the mutated graph, across models
// (degree-scaled GCN, GIN, SAGE with edge-dependent messages), both compute
// planes, BSP and pipelined supersteps, and worker counts.
func TestSessionDeltaMatchesScratch(t *testing.T) {
	models := map[string]*gas.Model{
		"gcn":     gas.NewGCNModel("s-gcn", gas.TaskSingleLabel, 6, 9, 3, 2, tensor.NewRNG(21)),
		"gin":     gas.NewGINModel("s-gin", gas.TaskSingleLabel, 6, 9, 3, 2, tensor.NewRNG(22)),
		"sage-ef": gas.NewSAGEModel("s-sage", gas.TaskSingleLabel, 6, 9, 3, 2, 4, tensor.NewRNG(23)),
	}
	planes := []Options{
		{NumWorkers: 1},
		{NumWorkers: 3, Parallel: true},
		{NumWorkers: 3, PerVertexCompute: true},
		{NumWorkers: 2, Pipelined: true, PipelineChunk: 7, Parallel: true},
		{NumWorkers: 2, Pipelined: true, PerVertexCompute: true},
	}
	seed := int64(100)
	for name, m := range models {
		for _, opts := range planes {
			seed++
			label := fmt.Sprintf("%s/w%d/batched=%v/pipelined=%v", name, opts.NumWorkers, !opts.PerVertexCompute, opts.Pipelined)
			g := sessionTestGraph(seed, true)
			opts.DeltaCutover = 1.1 // never fall back: this test pins the delta path
			sess, err := NewSession(m, g, opts)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if _, kind, err := sess.Refresh(); err != nil || kind != RefreshFull {
				t.Fatalf("%s: first refresh kind=%v err=%v", label, kind, err)
			}
			rng := tensor.NewRNG(seed * 7)
			for batch := 0; batch < 4; batch++ {
				if _, err := sess.Mutate(randomDelta(rng, sess.Graph(), true)); err != nil {
					t.Fatalf("%s batch %d: %v", label, batch, err)
				}
				res, kind, err := sess.Refresh()
				if err != nil {
					t.Fatalf("%s batch %d: %v", label, batch, err)
				}
				if kind != RefreshDelta {
					t.Fatalf("%s batch %d: kind=%v, want delta", label, batch, kind)
				}
				scratch, err := RunPregel(m, sess.Graph(), Options{NumWorkers: opts.NumWorkers})
				if err != nil {
					t.Fatalf("%s batch %d scratch: %v", label, batch, err)
				}
				assertBitIdentical(t, fmt.Sprintf("%s batch %d", label, batch), res.Logits, scratch.Logits)
			}
		}
	}
}

// TestSessionChaosMidDeltaPass injects worker crashes into the middle of a
// delta pass; checkpoint recovery must restore the resident slabs and the
// dirty bookkeeping, leaving the refreshed logits bit-identical to a
// from-scratch pass.
func TestSessionChaosMidDeltaPass(t *testing.T) {
	m := gas.NewGCNModel("chaos-gcn", gas.TaskSingleLabel, 6, 9, 3, 2, tensor.NewRNG(33))
	for _, perVertex := range []bool{false, true} {
		g := sessionTestGraph(7, false)
		sess, err := NewSession(m, g, Options{
			NumWorkers:       3,
			PerVertexCompute: perVertex,
			DeltaCutover:     1.1,
			CheckpointEvery:  1,
			Faults: &pregel.FaultPlan{Crashes: []pregel.Fault{
				{Superstep: 1, Point: pregel.FaultAtBarrier},
				{Superstep: 2, Point: pregel.FaultBeforeSuperstep},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := sess.Refresh(); err != nil {
			t.Fatal(err)
		}
		rng := tensor.NewRNG(44)
		if _, err := sess.Mutate(randomDelta(rng, sess.Graph(), false)); err != nil {
			t.Fatal(err)
		}
		res, kind, err := sess.Refresh()
		if err != nil {
			t.Fatalf("perVertex=%v: %v", perVertex, err)
		}
		if kind != RefreshDelta {
			t.Fatalf("perVertex=%v: kind=%v, want delta", perVertex, kind)
		}
		if res.Stats.Recoveries == 0 {
			t.Fatalf("perVertex=%v: no recoveries recorded — faults did not fire in the delta pass", perVertex)
		}
		scratch, err := RunPregel(m, sess.Graph(), Options{NumWorkers: 3})
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, fmt.Sprintf("chaos perVertex=%v", perVertex), res.Logits, scratch.Logits)
	}
}

// TestSessionCutoverFallsBack pins the cutover heuristic: a tiny cutover
// fraction forces the delta path to fall back to a full pass, which still
// yields bit-identical logits and re-primes the resident state.
func TestSessionCutoverFallsBack(t *testing.T) {
	m := gas.NewGCNModel("cut-gcn", gas.TaskSingleLabel, 6, 9, 3, 2, tensor.NewRNG(51))
	g := sessionTestGraph(9, false)
	sess, err := NewSession(m, g, Options{NumWorkers: 2, DeltaCutover: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Refresh(); err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(52)
	if _, err := sess.Mutate(randomDelta(rng, sess.Graph(), false)); err != nil {
		t.Fatal(err)
	}
	res, kind, err := sess.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if kind != RefreshFull {
		t.Fatalf("kind=%v, want full under a 1e-9 cutover", kind)
	}
	scratch, err := RunPregel(m, sess.Graph(), Options{NumWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "cutover full", res.Logits, scratch.Logits)
	// The fallback full pass re-primed resident state: the next delta works.
	if _, err := sess.Mutate(randomDelta(rng, sess.Graph(), false)); err != nil {
		t.Fatal(err)
	}
	sess.opts.DeltaCutover = 1.1
	res, kind, err = sess.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if kind != RefreshDelta {
		t.Fatalf("kind=%v, want delta after re-prime", kind)
	}
	scratch, err = RunPregel(m, sess.Graph(), Options{NumWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "post-fallback delta", res.Logits, scratch.Logits)
}

// TestSessionNoPendingRefresh: refresh without mutations returns the
// resident logits without running any supersteps, as a fresh matrix each
// time (RCU immutability for the serving layer).
func TestSessionNoPendingRefresh(t *testing.T) {
	m := gas.NewGINModel("idle-gin", gas.TaskSingleLabel, 6, 9, 3, 2, tensor.NewRNG(61))
	sess, err := NewSession(m, sessionTestGraph(11, false), Options{NumWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	first, _, err := sess.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	second, kind, err := sess.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if kind != RefreshDelta || second.Stats.Supersteps != 0 {
		t.Fatalf("idle refresh: kind=%v supersteps=%d", kind, second.Stats.Supersteps)
	}
	if first.Logits == second.Logits {
		t.Fatal("idle refresh returned an aliased logits matrix")
	}
	assertBitIdentical(t, "idle", second.Logits, first.Logits)
}

// TestSessionStepActive checks the convergence observable: a full pass
// computes every vertex every superstep, a delta pass starts at the seed
// count and never exceeds the graph.
func TestSessionStepActive(t *testing.T) {
	m := gas.NewGCNModel("act-gcn", gas.TaskSingleLabel, 6, 9, 3, 2, tensor.NewRNG(71))
	g := sessionTestGraph(13, false)
	sess, err := NewSession(m, g, Options{NumWorkers: 2, DeltaCutover: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := sess.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	n := int64(g.NumNodes)
	if len(full.Stats.StepActive) != m.NumLayers()+1 {
		t.Fatalf("full StepActive len %d, want %d", len(full.Stats.StepActive), m.NumLayers()+1)
	}
	for s, a := range full.Stats.StepActive {
		if a != n {
			t.Fatalf("full pass superstep %d active=%d, want %d", s, a, n)
		}
	}
	if _, err := sess.Mutate(graph.Delta{Features: []graph.FeatureUpdate{{Node: 0, Features: []float32{9, 9, 9, 9, 9, 9}}}}); err != nil {
		t.Fatal(err)
	}
	res, kind, err := sess.Refresh()
	if err != nil || kind != RefreshDelta {
		t.Fatalf("kind=%v err=%v", kind, err)
	}
	if len(res.Stats.StepActive) == 0 || res.Stats.StepActive[0] != 1 {
		t.Fatalf("delta StepActive = %v, want seed count 1 at superstep 0", res.Stats.StepActive)
	}
	for s, a := range res.Stats.StepActive {
		if a > int64(sess.Graph().NumNodes) {
			t.Fatalf("delta superstep %d active=%d exceeds graph", s, a)
		}
	}
}

// TestSessionRejectsUnsupported pins the gating of one-shot-only options.
func TestSessionRejectsUnsupported(t *testing.T) {
	m := gas.NewGCNModel("rej-gcn", gas.TaskSingleLabel, 6, 9, 3, 2, tensor.NewRNG(81))
	g := sessionTestGraph(17, false)
	for _, opts := range []Options{
		{PartialGather: true},
		{Broadcast: true},
		{ShadowNodes: true},
		{BoxedMessages: true},
		{OutDegrees: make([]int32, g.NumNodes)},
		{EmitEmbeddings: true},
		{CheckpointDir: t.TempDir()},
		{Resume: true},
	} {
		if _, err := NewSession(m, g, opts); err == nil {
			t.Fatalf("options %+v not rejected", opts)
		}
	}
}

// TestSessionMutateErrors: an invalid delta leaves the session untouched and
// a later valid mutate+refresh still matches scratch.
func TestSessionMutateErrors(t *testing.T) {
	m := gas.NewGCNModel("err-gcn", gas.TaskSingleLabel, 6, 9, 3, 2, tensor.NewRNG(91))
	sess, err := NewSession(m, sessionTestGraph(19, false), Options{NumWorkers: 2, DeltaCutover: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Mutate(graph.Delta{Features: []graph.FeatureUpdate{{Node: 10_000, Features: make([]float32, 6)}}}); err == nil {
		t.Fatal("out-of-range feature update not rejected")
	}
	if sess.Pending() {
		t.Fatal("failed mutate left the session pending")
	}
	rng := tensor.NewRNG(92)
	if _, err := sess.Mutate(randomDelta(rng, sess.Graph(), true)); err != nil {
		t.Fatal(err)
	}
	res, kind, err := sess.Refresh()
	if err != nil || kind != RefreshDelta {
		t.Fatalf("kind=%v err=%v", kind, err)
	}
	scratch, err := RunPregel(m, sess.Graph(), Options{NumWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "post-error delta", res.Logits, scratch.Logits)
}
