package inference

import (
	"math"
	"testing"

	"inferturbo/internal/datagen"
	"inferturbo/internal/gas"
	"inferturbo/internal/graph"
	"inferturbo/internal/tensor"
)

// The serving fallback's correctness contract: a k-hop induced subgraph,
// canonicalized by Subgraph.Induce and executed with the full graph's
// out-degrees, must reproduce the full-graph pass at the roots BIT FOR BIT —
// not just within tolerance. The engine's ascending-source merge delivers
// each destination's messages in globally ascending source order with ties
// in edge insertion order; Induce's relabeling preserves both orders, so
// every per-destination float32 reduction replays in the identical sequence.

// bitEqualRows fails the test when the logits row for local id differs from
// want's row for global id in any single bit.
func bitEqualRows(t *testing.T, tag string, got *tensor.Matrix, local int32, want *tensor.Matrix, global int32) {
	t.Helper()
	gr, wr := got.Row(int(local)), want.Row(int(global))
	if len(gr) != len(wr) {
		t.Fatalf("%s: node %d row dims %d vs %d", tag, global, len(gr), len(wr))
	}
	for j := range gr {
		if math.Float32bits(gr[j]) != math.Float32bits(wr[j]) {
			t.Fatalf("%s: node %d logit %d differs: %x vs %x (%v vs %v)",
				tag, global, j, math.Float32bits(gr[j]), math.Float32bits(wr[j]), gr[j], wr[j])
		}
	}
}

func TestKHopInducedBitIdenticalToFullGraph(t *testing.T) {
	ds := datagen.Generate(datagen.Config{
		Name: "khop", Nodes: 240, AvgDegree: 5, Skew: datagen.SkewIn, Exponent: 1.6,
		FeatureDim: 8, NumClasses: 4, TrainFrac: 0.3, ValFrac: 0.1, Seed: 11,
	})
	g := ds.Graph

	models := map[string]*gas.Model{
		// GCN is the hard case: its wire message scales by sender
		// out-degree, which the induced subgraph undercounts without the
		// OutDegrees override.
		"gcn":  gas.NewGCNModel("k-gcn", gas.TaskSingleLabel, 8, 12, 4, 2, tensor.NewRNG(21)),
		"sage": gas.NewSAGEModel("k-sage", gas.TaskSingleLabel, 8, 12, 4, 2, 0, tensor.NewRNG(22)),
		"gin":  gas.NewGINModel("k-gin", gas.TaskSingleLabel, 8, 12, 4, 2, tensor.NewRNG(23)),
	}
	rng := tensor.NewRNG(99)
	for name, m := range models {
		full, err := RunPregel(m, g, Options{NumWorkers: 5})
		if err != nil {
			t.Fatalf("%s full pass: %v", name, err)
		}
		for trial := 0; trial < 6; trial++ {
			nroots := 1 + rng.Intn(4)
			roots := make([]int32, 0, nroots)
			seen := map[int32]bool{}
			for len(roots) < nroots {
				v := int32(rng.Intn(g.NumNodes))
				if !seen[v] {
					seen[v] = true
					roots = append(roots, v)
				}
			}
			sub := graph.KHop(g, roots, graph.KHopOptions{Hops: m.NumLayers()})
			ind, err := sub.Induce(g, nil)
			if err != nil {
				t.Fatalf("%s induce: %v", name, err)
			}
			// Worker count and plane knobs deliberately differ from the
			// full pass: bit-identity must hold across them.
			res, err := RunPregel(m, ind.G, Options{
				NumWorkers: 1 + trial%3, Parallel: trial%2 == 0,
				OutDegrees: ind.OutDegrees,
			})
			if err != nil {
				t.Fatalf("%s subgraph pass: %v", name, err)
			}
			for i, root := range roots {
				bitEqualRows(t, name, res.Logits, ind.Roots[i], full.Logits, root)
			}
		}
	}
}

// Without the out-degree override, a GCN subgraph pass must diverge whenever
// a root's neighborhood lost out-edges — guarding against the override
// silently becoming a no-op.
func TestKHopGCNRequiresOutDegreeOverride(t *testing.T) {
	ds := datagen.Generate(datagen.Config{
		Name: "khop-neg", Nodes: 240, AvgDegree: 5, Skew: datagen.SkewOut, Exponent: 1.6,
		FeatureDim: 8, NumClasses: 4, TrainFrac: 0.3, ValFrac: 0.1, Seed: 12,
	})
	g := ds.Graph
	m := gas.NewGCNModel("k-gcn-neg", gas.TaskSingleLabel, 8, 12, 4, 2, tensor.NewRNG(31))
	full, err := RunPregel(m, g, Options{NumWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	diverged := false
	for v := int32(0); v < 40 && !diverged; v++ {
		sub := graph.KHop(g, []int32{v}, graph.KHopOptions{Hops: m.NumLayers()})
		ind, err := sub.Induce(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunPregel(m, ind.G, Options{NumWorkers: 2}) // no OutDegrees
		if err != nil {
			t.Fatal(err)
		}
		got, want := res.Logits.Row(int(ind.Roots[0])), full.Logits.Row(int(v))
		for j := range got {
			if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Fatal("dropping the OutDegrees override changed nothing across 40 ego networks; the override is not being exercised")
	}
}

// A virtual cold-start root must predict exactly what a full pass over the
// graph-with-that-node-added predicts, for models without degree scaling
// (SAGE): the virtual node contributes no out-edges, so only its own row is
// new. (For GCN the serving convention deliberately keeps the original
// degrees — the existing graph is not perturbed by a what-if node — so the
// augmented-full-pass oracle does not apply.)
func TestVirtualRootMatchesAugmentedGraph(t *testing.T) {
	ds := datagen.Generate(datagen.Config{
		Name: "khop-virt", Nodes: 160, AvgDegree: 4, Skew: datagen.SkewIn, Exponent: 1.5,
		FeatureDim: 6, NumClasses: 3, TrainFrac: 0.3, ValFrac: 0.1, Seed: 13,
	})
	g := ds.Graph
	m := gas.NewSAGEModel("virt-sage", gas.TaskSingleLabel, 6, 10, 3, 2, 0, tensor.NewRNG(41))
	rng := tensor.NewRNG(55)

	nbrs := []int32{3, 17, 42, 99}
	feats := make([]float32, 6)
	for i := range feats {
		feats[i] = rng.Float32()
	}

	// Oracle: rebuild the graph with the virtual node materialized.
	b := graph.NewBuilder(g.NumNodes + 1)
	src, dst := g.EdgeList()
	for e := range src {
		b.AddEdge(src[e], dst[e], nil)
	}
	newID := int32(g.NumNodes)
	for _, u := range nbrs {
		b.AddEdge(u, newID, nil)
	}
	aug := b.Build()
	aug.NumClasses = g.NumClasses
	f := tensor.New(g.NumNodes+1, 6)
	for v := 0; v < g.NumNodes; v++ {
		copy(f.Row(v), g.Features.Row(v))
	}
	copy(f.Row(g.NumNodes), feats)
	aug.Features = f
	want, err := RunPregel(m, aug, Options{NumWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Serving path: k-hop around the neighbors, virtual root attached.
	sub := graph.KHop(g, nbrs, graph.KHopOptions{Hops: m.NumLayers()})
	ind, err := sub.Induce(g, &graph.VirtualRoot{Features: feats, InNeighbors: nbrs})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPregel(m, ind.G, Options{NumWorkers: 2, OutDegrees: ind.OutDegrees})
	if err != nil {
		t.Fatal(err)
	}
	bitEqualRows(t, "sage-virtual", res.Logits, ind.Virtual, want.Logits, newID)
}
