package inference

import (
	"fmt"

	"inferturbo/internal/cluster"
	"inferturbo/internal/gas"
	"inferturbo/internal/graph"
	"inferturbo/internal/mapreduce"
	"inferturbo/internal/tensor"
)

// Record kinds flowing between MapReduce rounds. Unlike the Pregel backend,
// nothing stays resident between rounds: a node's state and its out-edge
// table are re-sent to itself every round, exactly the data flow the paper
// describes for this backend.
const (
	mrSelf      uint8 = iota // the node's own state (or final logits)
	mrMsg                    // an in-edge message (possibly partially aggregated)
	mrOutEdges               // the node's out-edge structure + edge features
	mrBCPayload              // broadcast payload addressed to a reducer (negative key)
	mrBCRef                  // broadcast reference: look up Src in the task table
)

// mrVal is the MapReduce record value. Fields are exported for gob encoding
// on the disk-spill path.
type mrVal struct {
	Kind         uint8
	Reduce       uint8
	Src          int32
	Count        int32
	Payload      []float32
	OutDsts      []int32
	OutEdgeFeats []float32 // flattened rows aligned with OutDsts
	OrigOutDeg   int32     // original out-degree (degree-scaled layers)
}

func mrValBytes(v mrVal) int {
	if v.Kind == mrBCRef {
		return refBytes
	}
	return 4*len(v.Payload) + 4*len(v.OutDsts) + 4*len(v.OutEdgeFeats) + 16
}

// mrCombine implements partial-gather on this backend: within one producing
// task, mrMsg records for the same destination merge when their reduce obeys
// the commutative/associative laws. Everything else passes through.
func mrCombine(_ int32, values []mrVal) []mrVal {
	var out []mrVal
	merged := map[uint8]int{} // reduce kind -> index in out
	for _, v := range values {
		if v.Kind != mrMsg || !gas.ReduceKind(v.Reduce).Commutative() {
			out = append(out, v)
			continue
		}
		i, ok := merged[v.Reduce]
		if !ok {
			cp := v
			cp.Payload = append([]float32(nil), v.Payload...)
			cp.Src = -1
			merged[v.Reduce] = len(out)
			out = append(out, cp)
			continue
		}
		acc := &out[i]
		switch gas.ReduceKind(v.Reduce) {
		case gas.ReduceSum, gas.ReduceMean:
			for j, x := range v.Payload {
				acc.Payload[j] += x
			}
		case gas.ReduceMax:
			for j, x := range v.Payload {
				acc.Payload[j] = max32(acc.Payload[j], x)
			}
		case gas.ReduceMin:
			for j, x := range v.Payload {
				acc.Payload[j] = min32(acc.Payload[j], x)
			}
		}
		acc.Count += v.Count
	}
	return out
}

// mrDriver holds per-run state for the MapReduce backend.
type mrDriver struct {
	model     *gas.Model
	sg        *ShadowGraph
	opts      Options
	threshold int
	part      graph.Partitioner

	// Per-task broadcast indexes for the current round: the dense bcIndex
	// replaces the per-round map[int32][]float32 tables, so resolving a
	// broadcast reference in the aggregate hot path is a branch-free array
	// read instead of a hash lookup. Reset per round (generation bump, no
	// clearing pass); each reduce task touches only its own slot, so the
	// parallel round execution stays race-free.
	tabs []bcIndex
	// Per-task buffer pools: per-key aggregate and apply_node scratch
	// recycles here instead of allocating for every reduced key.
	pools []*tensor.Pool
	// Per-task flop counters per round, and peak single-key group bytes
	// (the streaming-reducer memory model).
	roundFlops [][]int64
	roundPeak  [][]int64
	bcHubs     int64
}

// reducerFor mirrors the Pregel backend's vertex placement, including the
// negative-key convention used to address broadcast payloads to reducers
// directly (reducer r is key -(r+1)).
func (d *mrDriver) reducerFor(key int32) int {
	if key < 0 {
		return int(-key-1) % d.opts.NumWorkers
	}
	return d.part.WorkerFor(key)
}

// scatterEmit is apply_edge + scatter for the messages layer Layers[k] will
// consume next round, including the broadcast strategy.
func (d *mrDriver) scatterEmit(v int32, h []float32, k int, emit mapreduce.Emitter[int32, mrVal]) {
	sendLayer := d.model.Layers[k]
	dsts := d.sg.G.OutNeighbors(v)
	eids := d.sg.G.OutEdgeIDs(v)
	if ms, ok := sendLayer.(gas.MessageScaler); ok {
		h = ms.ScaleMessage(h, int(d.sg.OrigOutDeg[v]))
	}

	if d.opts.Broadcast && sendLayer.BroadcastSafe() && len(dsts) > d.threshold {
		d.bcHubs++
		seen := make([]bool, d.opts.NumWorkers)
		for _, dst := range dsts {
			seen[d.reducerFor(dst)] = true
		}
		for r, ok := range seen {
			if ok {
				emit(int32(-(r + 1)), mrVal{Kind: mrBCPayload, Src: v, Payload: h})
			}
		}
		for _, dst := range dsts {
			emit(dst, mrVal{Kind: mrBCRef, Src: v, Reduce: uint8(sendLayer.Reduce())})
		}
		return
	}

	reduce := uint8(sendLayer.Reduce())
	if sendLayer.BroadcastSafe() {
		m := mrVal{Kind: mrMsg, Reduce: reduce, Src: v, Count: 1, Payload: h}
		for _, dst := range dsts {
			emit(dst, m)
		}
		return
	}
	state := tensor.FromSlice(1, len(h), h)
	for i, dst := range dsts {
		var ef *tensor.Matrix
		if d.sg.G.EdgeFeatures != nil {
			row := d.sg.G.EdgeFeatures.Row(int(eids[i]))
			ef = tensor.FromSlice(1, len(row), row)
		}
		payload := sendLayer.ApplyEdge(state, ef)
		out := make([]float32, payload.Cols)
		copy(out, payload.Row(0))
		emit(dst, mrVal{Kind: mrMsg, Reduce: reduce, Src: v, Count: 1, Payload: out})
	}
}

// aggregate vectorizes a node's incoming records into the layer's aggregate.
func (d *mrDriver) aggregate(task int, layer gas.Conv, values []mrVal) (*gas.Aggregated, int, error) {
	dim := layer.InDim()
	var payloads [][]float32
	var counts []int32
	for _, v := range values {
		switch v.Kind {
		case mrMsg:
			payloads = append(payloads, v.Payload)
			counts = append(counts, v.Count)
		case mrBCRef:
			p, ok := d.tabs[task].get(v.Src)
			if !ok {
				return nil, 0, fmt.Errorf("inference: broadcast payload for node %d missing on reducer %d", v.Src, task)
			}
			payloads = append(payloads, p)
			counts = append(counts, 1)
		}
	}

	a := vectorizeAggregate(layer.Reduce(), dim, len(payloads), func(i int) ([]float32, int32) {
		return payloads[i], counts[i]
	}, d.pools[task])
	return a, len(payloads), nil
}

// RunMapReduce executes full-graph inference of model over g on the
// MapReduce backend: one map round plus one reduce round per GNN layer.
func RunMapReduce(model *gas.Model, g *graph.Graph, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := validateModelGraph(model, g); err != nil {
		return nil, err
	}
	// The fault-tolerance surface is Pregel-only: rounds here have no
	// checkpoint boundary to resume from, so silently ignoring these options
	// would miscommunicate durability the backend doesn't provide.
	if opts.CheckpointDir != "" || opts.Resume || opts.Faults != nil {
		return nil, fmt.Errorf("inference: durable checkpoints, resume and fault plans require the Pregel backend")
	}
	// The serving hooks are Pregel-only too: rounds here have no superstep
	// boundary to poll cancellation at, and silently ignoring a degree
	// override would change results.
	if opts.Cancel != nil || opts.OutDegrees != nil {
		return nil, fmt.Errorf("inference: Cancel and OutDegrees require the Pregel backend")
	}
	defer applyTuning(opts)()
	threshold := opts.threshold(g)

	sg := IdentityShadow(g)
	if opts.ShadowNodes {
		sg = BuildShadowGraph(g, threshold)
	}

	d := &mrDriver{
		model:     model,
		sg:        sg,
		opts:      opts,
		threshold: threshold,
		part:      opts.partition(sg.G),
		tabs:      make([]bcIndex, opts.NumWorkers),
		pools:     make([]*tensor.Pool, opts.NumWorkers),
	}
	for i := range d.pools {
		d.pools[i] = tensor.NewPool()
	}

	cfg := mapreduce.Config[int32, mrVal]{
		NumReducers: opts.NumWorkers,
		ValueBytes:  mrValBytes,
		Partition:   d.reducerFor,
		SpillDir:    opts.SpillDir,
		Parallel:    opts.Parallel,
	}
	if opts.PartialGather {
		cfg.Combine = mrCombine
	}
	eng := mapreduce.New(cfg)

	// Map phase: initialize h^0, keep self/out-edge records cycling, and
	// scatter the first layer's messages.
	nodes := make([]int32, sg.G.NumNodes)
	for v := range nodes {
		nodes[v] = int32(v)
	}
	hasEdgeFeat := sg.G.EdgeFeatures != nil
	current := mapreduce.MapRound(nodes, opts.NumWorkers, func(v int32, emit mapreduce.Emitter[int32, mrVal]) {
		h := sg.G.Features.Row(int(v))
		emit(v, mrVal{Kind: mrSelf, Payload: h})
		dsts := sg.G.OutNeighbors(v)
		if len(dsts) > 0 {
			rec := mrVal{Kind: mrOutEdges, OutDsts: dsts, OrigOutDeg: sg.OrigOutDeg[v]}
			if hasEdgeFeat {
				eids := sg.G.OutEdgeIDs(v)
				flat := make([]float32, 0, len(eids)*sg.G.EdgeFeatureDim())
				for _, e := range eids {
					flat = append(flat, sg.G.EdgeFeatures.Row(int(e))...)
				}
				rec.OutEdgeFeats = flat
			}
			emit(v, rec)
		}
		d.scatterEmit(v, h, 0, emit)
	})
	mapPhase := mapPhaseLoad(current, opts.NumWorkers, d)

	numLayers := model.NumLayers()
	var embeddings *tensor.Matrix
	if opts.EmitEmbeddings {
		embDim := model.InDim()
		if numLayers > 1 {
			embDim = model.Layers[numLayers-2].OutDim()
		}
		embeddings = tensor.New(g.NumNodes, embDim)
	}
	for round := 1; round <= numLayers; round++ {
		layer := model.Layers[round-1]
		last := round == numLayers
		for i := range d.tabs {
			d.tabs[i].reset()
		}
		flops := make([]int64, opts.NumWorkers)
		peaks := make([]int64, opts.NumWorkers)
		var reduceErr error

		next, _, err := eng.Round(fmt.Sprintf("layer-%d", round), current,
			func(task int, key int32, values []mrVal, emit mapreduce.Emitter[int32, mrVal]) {
				if key < 0 {
					// Broadcast payloads for this reducer: negative keys sort
					// first, so the index is complete before any node key.
					for _, v := range values {
						if v.Kind == mrBCPayload {
							d.tabs[task].put(sg.G.NumNodes, v.Src, v.Payload)
						}
					}
					return
				}
				var groupBytes int64
				for _, v := range values {
					groupBytes += int64(mrValBytes(v))
				}
				if groupBytes > peaks[task] {
					peaks[task] = groupBytes
				}

				var selfState []float32
				var outEdges *mrVal
				for i := range values {
					switch values[i].Kind {
					case mrSelf:
						selfState = values[i].Payload
					case mrOutEdges:
						outEdges = &values[i]
					}
				}
				if selfState == nil {
					reduceErr = fmt.Errorf("inference: node %d lost its state in round %d", key, round)
					return
				}
				if last && embeddings != nil && int(key) < sg.NumOriginal {
					// The final round's input state is the penultimate
					// layer's output. Rows are disjoint per key, so the
					// parallel write is safe.
					embeddings.SetRow(int(key), selfState)
				}
				aggr, numMsgs, err := d.aggregate(task, layer, values)
				if err != nil {
					reduceErr = err
					return
				}
				state := tensor.FromSlice(1, len(selfState), selfState)
				out := gas.ApplyNodePooled(layer, state, aggr, d.pools[task])
				h := make([]float32, out.Cols)
				copy(h, out.Row(0))
				d.pools[task].Put(out)
				releaseAggregated(d.pools[task], aggr)
				flops[task] += layerNodeFlops(layer) + int64(numMsgs)*layerMsgFlops(layer)

				if last {
					emit(key, mrVal{Kind: mrSelf, Payload: h})
					return
				}
				emit(key, mrVal{Kind: mrSelf, Payload: h})
				if outEdges != nil {
					emit(key, *outEdges)
				}
				d.scatterEmitFromRecord(key, h, round, outEdges, emit)
			})
		if err != nil {
			return nil, err
		}
		if reduceErr != nil {
			return nil, reduceErr
		}
		d.roundFlops = append(d.roundFlops, flops)
		d.roundPeak = append(d.roundPeak, peaks)
		current = next
	}

	// Assemble logits from the final round's self records (originals only).
	res := &Result{Logits: tensor.New(g.NumNodes, model.NumClasses), Embeddings: embeddings}
	filled := make([]bool, g.NumNodes)
	for _, part := range current {
		for _, p := range part {
			if p.Value.Kind != mrSelf || p.Key < 0 {
				continue
			}
			orig := sg.Origin[p.Key]
			if int(p.Key) >= sg.NumOriginal {
				continue // mirror: original carries the same logits
			}
			if len(p.Value.Payload) != model.NumClasses {
				return nil, fmt.Errorf("inference: node %d finished with dim %d, want %d", p.Key, len(p.Value.Payload), model.NumClasses)
			}
			res.Logits.SetRow(int(orig), p.Value.Payload)
			filled[orig] = true
		}
	}
	for v, ok := range filled {
		if !ok {
			return nil, fmt.Errorf("inference: node %d missing from final round output", v)
		}
	}
	res.finalize(model)
	res.Stats, res.Phases = mrStats(eng, d, mapPhase, opts, sg)
	return res, nil
}

// scatterEmitFromRecord scatters using the out-edge record that traveled
// with the node (the MR data flow), falling back to the resident topology —
// they are identical by construction; the record path is exercised so the
// backend honestly carries its structure through the shuffle.
func (d *mrDriver) scatterEmitFromRecord(v int32, h []float32, k int, rec *mrVal, emit mapreduce.Emitter[int32, mrVal]) {
	if rec == nil {
		return // no out-edges
	}
	sendLayer := d.model.Layers[k]
	dsts := rec.OutDsts
	if ms, ok := sendLayer.(gas.MessageScaler); ok {
		h = ms.ScaleMessage(h, int(rec.OrigOutDeg))
	}

	if d.opts.Broadcast && sendLayer.BroadcastSafe() && len(dsts) > d.threshold {
		d.bcHubs++
		seen := make([]bool, d.opts.NumWorkers)
		for _, dst := range dsts {
			seen[d.reducerFor(dst)] = true
		}
		for r, ok := range seen {
			if ok {
				emit(int32(-(r + 1)), mrVal{Kind: mrBCPayload, Src: v, Payload: h})
			}
		}
		for _, dst := range dsts {
			emit(dst, mrVal{Kind: mrBCRef, Src: v, Reduce: uint8(sendLayer.Reduce())})
		}
		return
	}

	reduce := uint8(sendLayer.Reduce())
	if sendLayer.BroadcastSafe() {
		m := mrVal{Kind: mrMsg, Reduce: reduce, Src: v, Count: 1, Payload: h}
		for _, dst := range dsts {
			emit(dst, m)
		}
		return
	}
	state := tensor.FromSlice(1, len(h), h)
	edgeDim := 0
	if len(dsts) > 0 {
		edgeDim = len(rec.OutEdgeFeats) / len(dsts)
	}
	for i, dst := range dsts {
		var ef *tensor.Matrix
		if edgeDim > 0 {
			row := rec.OutEdgeFeats[i*edgeDim : (i+1)*edgeDim]
			ef = tensor.FromSlice(1, edgeDim, row)
		}
		payload := sendLayer.ApplyEdge(state, ef)
		out := make([]float32, payload.Cols)
		copy(out, payload.Row(0))
		emit(dst, mrVal{Kind: mrMsg, Reduce: reduce, Src: v, Count: 1, Payload: out})
	}
}

// mapPhaseLoad prices the map phase from its actual emissions.
func mapPhaseLoad(mapped [][]mapreduce.Pair[int32, mrVal], workers int, d *mrDriver) cluster.Phase {
	ph := cluster.Phase{Name: "map", Workers: make([]cluster.WorkerLoad, workers)}
	for m, part := range mapped {
		var bytes int64
		for _, p := range part {
			bytes += int64(mrValBytes(p.Value))
		}
		ph.Workers[m] = cluster.WorkerLoad{
			BytesOut: bytes,
			MsgsOut:  int64(len(part)),
			Flops:    int64(len(part)) * 8, // feature copy / encode cost
			PeakMem:  1 << 20,              // mappers stream; negligible state
		}
	}
	return ph
}

// mrStats converts round metrics into run stats and cluster phases.
func mrStats(eng *mapreduce.Engine[int32, mrVal], d *mrDriver, mapPhase cluster.Phase, opts Options, sg *ShadowGraph) (Stats, []cluster.Phase) {
	st := Stats{
		ShadowMirrors:   int64(sg.Mirrors),
		BroadcastHubs:   d.bcHubs,
		WorkerBytesIn:   make([]int64, opts.NumWorkers),
		WorkerBytesOut:  make([]int64, opts.NumWorkers),
		WorkerFlops:     make([]int64, opts.NumWorkers),
		WorkerInRecords: make([]int64, opts.NumWorkers),
	}
	phases := []cluster.Phase{mapPhase}
	for r, round := range eng.Rounds() {
		st.Supersteps++
		ph := cluster.Phase{Name: round.Name, Workers: make([]cluster.WorkerLoad, opts.NumWorkers)}
		var roundCombined int64
		for _, tm := range round.Reducers {
			roundCombined += tm.CombinedAway
		}
		for _, tm := range round.Reducers {
			w := tm.Task
			flops := d.roundFlops[r][w]
			// Combiner flops are spread across producers; attribute evenly.
			if roundCombined > 0 && r < d.model.NumLayers() {
				flops += roundCombined * layerMsgFlops(d.model.Layers[r]) / int64(opts.NumWorkers)
			}
			ph.Workers[w] = cluster.WorkerLoad{
				Flops:    flops,
				BytesIn:  tm.InputBytes,
				BytesOut: tm.OutputBytes,
				MsgsIn:   tm.InputRecords,
				MsgsOut:  tm.OutputRecords,
				PeakMem:  d.roundPeak[r][w] + (1 << 20),
			}
			st.MessagesSent += tm.OutputRecords
			st.BytesSent += tm.OutputBytes
			st.BytesReceived += tm.InputBytes
			st.CombinedAway += tm.CombinedAway
			st.WorkerBytesIn[w] += tm.InputBytes
			st.WorkerBytesOut[w] += tm.OutputBytes
			st.WorkerFlops[w] += flops
			st.WorkerInRecords[w] += tm.InputRecords
		}
		phases = append(phases, ph)
	}
	return st, phases
}
