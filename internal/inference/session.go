package inference

import (
	"fmt"

	"inferturbo/internal/gas"
	"inferturbo/internal/graph"
	"inferturbo/internal/pregel"
	"inferturbo/internal/tensor"
)

// RefreshKind reports which execution path a Session.Refresh took.
type RefreshKind string

const (
	// RefreshFull recomputed every vertex from scratch (first refresh, or a
	// flood estimate past the cutover fraction).
	RefreshFull RefreshKind = "full"
	// RefreshDelta recomputed only the L-hop flood of the pending change set
	// against the resident state.
	RefreshDelta RefreshKind = "delta"
)

// Session is the incremental execution mode: a resident, restartable
// inference state machine over a mutable graph. A full pass populates
// per-layer state slabs; Mutate applies graph deltas and accumulates their
// seed sets; Refresh recomputes logits — through a frontier-driven delta
// pass proportional to the change set's L-hop flood when the flood is small,
// or a full pass (which re-populates the resident state as a side effect)
// when it is not. Every path returns logits bit-identical to RunPregel from
// scratch on the current graph.
//
// Resident-state ownership: the session owns one global slab per layer
// (layers[k], NumNodes × dim_k) plus one wire-message slab per degree-scaled
// layer; layers[0] always aliases the current graph's feature matrix. During
// a pass, slab rows are written only by the owning vertex's worker at that
// vertex's superstep — layer separation (writes hit slab k while gathers
// read slab k-1) keeps parallel workers race-free without merging. Results
// hand out clones, never slab aliases, so a previous Refresh's logits stay
// immutable while the next pass runs (the serving layer's RCU snapshots
// depend on this).
//
// A Session is not safe for concurrent use; callers serialize Mutate and
// Refresh (the serving layer does this under its refresh lock).
type Session struct {
	model *gas.Model
	opts  Options

	g  *graph.Graph
	gi *graph.GatherIndex // delivery-order pull index; nil when stale

	primed    bool // a full pass has populated the resident slabs
	layers    []*tensor.Matrix
	msgs      []*tensor.Matrix
	scaled    []bool
	anyScaled bool
	dirtyStep []int32

	pendState  []bool
	pendInbox  []bool
	pendPinned []bool
	pending    bool

	// Durable-session state (nil unless Options.SessionDir is set).
	dur        *sessionDurable
	replayMark uint64 // highest mutation seq the resident state accounts for
}

// NewSession validates the model/graph pair and the options. The strategy
// and durability knobs that assume a one-shot run are rejected: skew
// strategies rewrite the executed graph or change the message mix
// (ShadowNodes, Broadcast, PartialGather), BoxedMessages has no batched
// plane to keep slabs in, OutDegrees/EmitEmbeddings target the subgraph
// path, and durable cross-process resume (CheckpointDir/Resume) cannot
// replay the capture of supersteps that never re-execute. In-process fault
// tolerance (CheckpointEvery, Faults) is fully supported on both planes.
func NewSession(model *gas.Model, g *graph.Graph, opts Options) (*Session, error) {
	opts = opts.withDefaults()
	if err := validateModelGraph(model, g); err != nil {
		return nil, err
	}
	for name, set := range map[string]bool{
		"PartialGather":  opts.PartialGather,
		"Broadcast":      opts.Broadcast,
		"ShadowNodes":    opts.ShadowNodes,
		"BoxedMessages":  opts.BoxedMessages,
		"OutDegrees":     opts.OutDegrees != nil,
		"EmitEmbeddings": opts.EmitEmbeddings,
		"CheckpointDir":  opts.CheckpointDir != "",
		"Resume":         opts.Resume,
	} {
		if set {
			return nil, fmt.Errorf("inference: incremental Session does not support %s", name)
		}
	}
	s := &Session{model: model, opts: opts, g: g}
	s.scaled = make([]bool, model.NumLayers())
	for k, l := range model.Layers {
		s.scaled[k] = layerScales(l)
		s.anyScaled = s.anyScaled || s.scaled[k]
	}
	if err := s.initDurable(); err != nil {
		return nil, err
	}
	return s, nil
}

// Graph returns the session's current (immutable) graph snapshot.
func (s *Session) Graph() *graph.Graph { return s.g }

// SetFaults rearms the in-process fault-injection plan for subsequent
// passes — the serving layer's chaos harness injects crashes between
// refreshes. Call only between Refreshes, never during one.
func (s *Session) SetFaults(f *pregel.FaultPlan) { s.opts.Faults = f }

// Primed reports whether resident state exists (a full pass has run).
func (s *Session) Primed() bool { return s.primed }

// Pending reports whether mutations await a Refresh.
func (s *Session) Pending() bool { return s.pending }

// cutoverFrac resolves the delta→full fallback fraction.
func (s *Session) cutoverFrac() float64 {
	if s.opts.DeltaCutover > 0 {
		return s.opts.DeltaCutover
	}
	return 0.25
}

// Mutate applies one delta batch: the graph advances immediately (Graph()
// reflects it), resident slabs grow to the new node count, and stale
// resident message rows — the state-dirty vertices' layer-0 rows and every
// scaled row of degree-changed vertices — are rewritten in place from
// resident state. Seed sets accumulate until the next Refresh. An invalid
// delta changes nothing.
func (s *Session) Mutate(d graph.Delta) (*graph.DeltaEffect, error) {
	if d.Empty() {
		return &graph.DeltaEffect{NumNodes: s.g.NumNodes}, nil
	}
	ng, eff, err := graph.ApplyDelta(s.g, d)
	if err != nil {
		return nil, err
	}
	s.g = ng
	s.gi = nil // structure or node count may have changed; rebuilt lazily
	s.pending = true
	if !s.primed {
		// No resident state to maintain: the first Refresh runs a full pass
		// over whatever graph is current by then.
		return eff, nil
	}

	s.growSlabs(eff.NumNodes)
	s.pendState = growBools(s.pendState, eff.NumNodes)
	s.pendInbox = growBools(s.pendInbox, eff.NumNodes)
	s.pendPinned = growBools(s.pendPinned, eff.NumNodes)

	// Repair resident wire messages whose inputs changed outside a pass:
	// h^0 rewrites (scaled layer 0 reads the new feature row) and degree
	// changes (every scaled layer's row of that vertex scales by the new
	// out-degree). Unscaled slabs alias the state slabs and need nothing.
	for _, v := range eff.StateDirty {
		s.pendState[v] = true
		if s.scaled[0] {
			scaleMsgRowInto(s.model.Layers[0], s.msgs[0].Row(int(v)), s.layers[0].Row(int(v)), s.g.OutDegree(v))
		}
	}
	for _, v := range eff.InboxDirty {
		s.pendInbox[v] = true
	}
	if s.anyScaled {
		for _, v := range eff.DegreeChanged {
			s.pendPinned[v] = true
			for k := 0; k < s.model.NumLayers(); k++ {
				if s.scaled[k] {
					scaleMsgRowInto(s.model.Layers[k], s.msgs[k].Row(int(v)), s.layers[k].Row(int(v)), s.g.OutDegree(v))
				}
			}
		}
	}
	return eff, nil
}

// Refresh recomputes logits for the current graph and reports which path
// ran. With no pending mutations it returns the resident result without
// running anything (Stats zero, kind delta).
func (s *Session) Refresh() (*Result, RefreshKind, error) {
	if !s.primed {
		res, err := s.fullPass()
		return res, RefreshFull, err
	}
	if !s.pending {
		return s.residentResult(), RefreshDelta, nil
	}
	frontier := s.frontier()
	if float64(s.floodEstimate(frontier)) > s.cutoverFrac()*float64(s.g.NumNodes) {
		res, err := s.fullPass()
		return res, RefreshFull, err
	}
	res, err := s.deltaPass(frontier)
	return res, RefreshDelta, err
}

// fullPass runs the one-shot driver with layer capture enabled, so the run
// doubles as resident-state (re)population, then derives the scaled message
// slabs — a scaling pass, no matmuls — and clears all pending bookkeeping.
func (s *Session) fullPass() (*Result, error) {
	s.ensureSlabs()
	o := s.opts
	o.captureLayers = s.layers
	res, err := RunPregel(s.model, s.g, o)
	if err != nil {
		return nil, err
	}
	for k := 0; k < s.model.NumLayers(); k++ {
		if !s.scaled[k] {
			continue
		}
		layer := s.model.Layers[k]
		src, dst := s.layers[k], s.msgs[k]
		for v := 0; v < s.g.NumNodes; v++ {
			scaleMsgRowInto(layer, dst.Row(v), src.Row(v), s.g.OutDegree(int32(v)))
		}
	}
	s.primed = true
	s.clearPending()
	s.persistResident()
	return res, nil
}

// deltaPass floods the pending seed set through a frontier-driven engine run
// over the resident slabs and returns the refreshed logits.
func (s *Session) deltaPass(frontier []int32) (*Result, error) {
	if s.gi == nil {
		s.gi = graph.BuildGatherIndex(s.g)
	}
	for i := range s.dirtyStep {
		s.dirtyStep[i] = -1
	}
	for v, dirty := range s.pendState {
		if dirty {
			s.dirtyStep[v] = 0 // h^0 changed at mutation time
		}
	}

	o := s.opts
	defer applyTuning(o)()
	part := o.partition(s.g)
	driver := newDeltaDriver(s.model, s.g, s.gi, s.layers, s.msgs, s.scaled,
		s.pendState, s.pendInbox, s.pendPinned, s.dirtyStep, o.NumWorkers)
	cfg := pregel.Config[deltaPing]{
		NumWorkers:       o.NumWorkers,
		Partitioner:      part,
		MaxSupersteps:    s.model.NumLayers() + 1,
		Parallel:         o.Parallel,
		Batched:          !o.PerVertexCompute,
		Pipelined:        o.Pipelined,
		ChunkSize:        o.PipelineChunk,
		PipelineDepth:    o.PipelineDepth,
		CheckpointEvery:  o.CheckpointEvery,
		FailAtSuperstep:  o.FailAtSuperstep,
		Faults:           o.Faults,
		PipelineWatchdog: o.PipelineWatchdog,
		SuperstepHook:    o.SuperstepHook,
		Cancel:           o.Cancel,
		Frontier:         frontier,
		// Pings are headers-only; reserves stay minimal.
		Columnar: &pregel.ColumnarOps{Bytes: columnarBytes, ReserveMsgs: len(frontier)/o.NumWorkers + 1},
	}
	eng := pregel.NewEngine[deltaVtx, deltaPing](pregel.GraphTopology{G: s.g}, driver, cfg)
	if err := eng.Run(); err != nil {
		return nil, err
	}

	res := s.residentResult()
	res.Stats, res.Phases = statsFromMetrics(eng.Metrics(), eng.Supersteps(), s.model,
		residentBytes(s.g, part, s.model, o.NumWorkers), o.NumWorkers)
	res.Stats.Recoveries = eng.Recoveries()
	cs := eng.CheckpointStats()
	res.Stats.Checkpoints = cs.Checkpoints
	res.Stats.CheckpointBytes = cs.Bytes
	res.Stats.CheckpointWallNs = cs.SnapshotNs
	res.Stats.PersistWallNs = cs.PersistNs
	res.Stats.WatchdogTrips = eng.WatchdogTrips()
	s.clearPending()
	s.persistResident()
	return res, nil
}

// residentResult packages the resident logits slab as a fresh Result.
func (s *Session) residentResult() *Result {
	res := &Result{Logits: s.layers[s.model.NumLayers()].Clone()}
	res.finalize(s.model)
	return res
}

// frontier lists the pending seed vertices (pinned seeds only matter to
// degree-scaled models).
func (s *Session) frontier() []int32 {
	var f []int32
	for v := range s.pendState {
		if s.pendState[v] || s.pendInbox[v] || (s.anyScaled && s.pendPinned[v]) {
			f = append(f, int32(v))
		}
	}
	return f
}

// floodEstimate upper-bounds how many vertices the delta pass could touch:
// an L-expansion out-edge BFS from the seeds, capped implicitly by the
// visited set. The real wave is usually smaller (bitwise-unchanged rows stop
// it), so this errs toward full passes — the safe side of the cutover.
func (s *Session) floodEstimate(frontier []int32) int {
	visited := make([]bool, s.g.NumNodes)
	cur := append([]int32(nil), frontier...)
	for _, v := range cur {
		visited[v] = true
	}
	count := len(cur)
	for hop := 0; hop < s.model.NumLayers() && len(cur) > 0; hop++ {
		var next []int32
		for _, v := range cur {
			for _, u := range s.g.OutNeighbors(v) {
				if !visited[u] {
					visited[u] = true
					count++
					next = append(next, u)
				}
			}
		}
		cur = next
	}
	return count
}

// ensureSlabs (re)builds the resident slab set for the current graph:
// layers[0] aliases the feature matrix, layers[k] is NumNodes × OutDim(k-1),
// and each scaled layer owns a message slab (unscaled ones alias the state
// slab — the wire message IS the state).
func (s *Session) ensureSlabs() {
	n := s.g.NumNodes
	L := s.model.NumLayers()
	if s.layers == nil {
		s.layers = make([]*tensor.Matrix, L+1)
		s.msgs = make([]*tensor.Matrix, L)
	}
	s.layers[0] = s.g.Features
	for k := 1; k <= L; k++ {
		dim := s.model.Layers[k-1].OutDim()
		if s.layers[k] == nil || s.layers[k].Rows != n {
			s.layers[k] = tensor.New(n, dim)
		}
	}
	for k := 0; k < L; k++ {
		if !s.scaled[k] {
			s.msgs[k] = s.layers[k]
			continue
		}
		dim := s.model.Layers[k].InDim()
		if s.msgs[k] == nil || s.msgs[k].Rows != n || s.msgs[k] == s.layers[k] {
			s.msgs[k] = tensor.New(n, dim)
		}
	}
	s.dirtyStep = growInt32(s.dirtyStep, n)
	s.pendState = growBools(s.pendState, n)
	s.pendInbox = growBools(s.pendInbox, n)
	s.pendPinned = growBools(s.pendPinned, n)
}

// growSlabs extends resident state to a larger node count after a mutation:
// old rows are preserved, new rows are zero (the correct resident value for
// a vertex that has never computed — its receivers are inbox-dirty and will
// re-gather regardless).
func (s *Session) growSlabs(n int) {
	s.layers[0] = s.g.Features
	L := s.model.NumLayers()
	for k := 1; k <= L; k++ {
		if s.layers[k].Rows < n {
			s.layers[k] = growMatrix(s.layers[k], n)
		}
	}
	for k := 0; k < L; k++ {
		if !s.scaled[k] {
			s.msgs[k] = s.layers[k] // re-alias: the state slab may have moved
		} else if s.msgs[k].Rows < n {
			s.msgs[k] = growMatrix(s.msgs[k], n)
		}
	}
	s.dirtyStep = growInt32(s.dirtyStep, n)
}

func (s *Session) clearPending() {
	for i := range s.pendState {
		s.pendState[i] = false
		s.pendInbox[i] = false
		s.pendPinned[i] = false
	}
	s.pending = false
}

func growMatrix(m *tensor.Matrix, rows int) *tensor.Matrix {
	nm := tensor.New(rows, m.Cols)
	copy(nm.Data, m.Data)
	return nm
}

func growBools(b []bool, n int) []bool {
	if len(b) >= n {
		return b
	}
	nb := make([]bool, n)
	copy(nb, b)
	return nb
}

func growInt32(b []int32, n int) []int32 {
	if len(b) >= n {
		return b
	}
	nb := make([]int32, n)
	copy(nb, b)
	return nb
}
