package inference

import (
	"fmt"
	"testing"

	"inferturbo/internal/datagen"
	"inferturbo/internal/gas"
	"inferturbo/internal/tensor"
)

// Plane-equivalence tests: the columnar message plane is a pure transport
// optimization, so against the boxed plane it must produce bit-identical
// logits AND identical IO accounting under every strategy combination, at
// every worker count, serial and parallel — and predictions must stay
// byte-identical to the reference forward throughout.

// strategyCombos enumerates the paper's strategy power set.
func strategyCombos(workers int, parallel bool) []Options {
	var out []Options
	for _, pg := range []bool{false, true} {
		for _, bc := range []bool{false, true} {
			for _, sn := range []bool{false, true} {
				out = append(out, Options{
					NumWorkers:    workers,
					PartialGather: pg,
					Broadcast:     bc,
					ShadowNodes:   sn,
					Parallel:      parallel,
				})
			}
		}
	}
	return out
}

func comboName(o Options) string {
	return fmt.Sprintf("w%d/pg=%v/bc=%v/sn=%v/par=%v",
		o.NumWorkers, o.PartialGather, o.Broadcast, o.ShadowNodes, o.Parallel)
}

func TestColumnarPlaneBitIdenticalAllStrategies(t *testing.T) {
	g := testGraph(t, datagen.SkewOut, 220)
	m := sageModel(t)
	wantClasses := tensor.ArgmaxRows(ReferenceForward(m, g))
	for _, workers := range []int{1, 2, 4, 8} {
		for _, parallel := range []bool{false, true} {
			for _, opts := range strategyCombos(workers, parallel) {
				col, err := RunPregel(m, g, opts)
				if err != nil {
					t.Fatalf("%s columnar: %v", comboName(opts), err)
				}
				boxedOpts := opts
				boxedOpts.BoxedMessages = true
				boxed, err := RunPregel(m, g, boxedOpts)
				if err != nil {
					t.Fatalf("%s boxed: %v", comboName(opts), err)
				}
				if !col.Logits.Equal(boxed.Logits) {
					t.Fatalf("%s: columnar logits diverge from boxed: max diff %v",
						comboName(opts), col.Logits.MaxAbsDiff(boxed.Logits))
				}
				cs, bs := col.Stats, boxed.Stats
				if cs.MessagesSent != bs.MessagesSent || cs.BytesSent != bs.BytesSent ||
					cs.BytesReceived != bs.BytesReceived || cs.CombinedAway != bs.CombinedAway ||
					cs.BroadcastHubs != bs.BroadcastHubs || cs.Supersteps != bs.Supersteps {
					t.Fatalf("%s: stats diverge between planes:\ncolumnar %+v\nboxed    %+v",
						comboName(opts), cs, bs)
				}
				for v, c := range col.Classes {
					if c != wantClasses[v] {
						t.Fatalf("%s: class of node %d = %d, reference %d", comboName(opts), v, c, wantClasses[v])
					}
				}
			}
		}
	}
}

// TestColumnarPlaneBitIdenticalGAT covers the union-reduce (GAT) path,
// where the combiner must decline and attention consumes raw message rows.
func TestColumnarPlaneBitIdenticalGAT(t *testing.T) {
	g := testGraph(t, datagen.SkewOut, 200)
	m := gatModel(t)
	wantClasses := tensor.ArgmaxRows(ReferenceForward(m, g))
	for _, workers := range []int{1, 4, 8} {
		for _, opts := range []Options{
			{NumWorkers: workers},
			{NumWorkers: workers, PartialGather: true, Parallel: true},
			{NumWorkers: workers, Broadcast: true, ShadowNodes: true, Parallel: true},
		} {
			col, err := RunPregel(m, g, opts)
			if err != nil {
				t.Fatalf("%s columnar: %v", comboName(opts), err)
			}
			boxedOpts := opts
			boxedOpts.BoxedMessages = true
			boxed, err := RunPregel(m, g, boxedOpts)
			if err != nil {
				t.Fatalf("%s boxed: %v", comboName(opts), err)
			}
			if !col.Logits.Equal(boxed.Logits) {
				t.Fatalf("%s: GAT columnar logits diverge from boxed: max diff %v",
					comboName(opts), col.Logits.MaxAbsDiff(boxed.Logits))
			}
			for v, c := range col.Classes {
				if c != wantClasses[v] {
					t.Fatalf("%s: GAT class of node %d = %d, reference %d", comboName(opts), v, c, wantClasses[v])
				}
			}
		}
	}
}

// TestColumnarPlaneEdgeFeatures covers the edge-dependent apply_edge
// scatter path (per-edge payload construction into the arena).
func TestColumnarPlaneEdgeFeatures(t *testing.T) {
	ds := datagen.Generate(datagen.Config{
		Name: "col-ef", Nodes: 180, AvgDegree: 5, Skew: datagen.SkewOut,
		FeatureDim: 6, NumClasses: 3, Seed: 31, EdgeFeature: true,
	})
	m := gas.NewSAGEModel("sage-col-ef", gas.TaskSingleLabel, 6, 8, 3, 2, 4, tensor.NewRNG(32))
	for _, opts := range []Options{
		{NumWorkers: 1},
		{NumWorkers: 4, PartialGather: true},
		{NumWorkers: 8, PartialGather: true, ShadowNodes: true, Parallel: true},
	} {
		col, err := RunPregel(m, ds.Graph, opts)
		if err != nil {
			t.Fatalf("%s columnar: %v", comboName(opts), err)
		}
		boxedOpts := opts
		boxedOpts.BoxedMessages = true
		boxed, err := RunPregel(m, ds.Graph, boxedOpts)
		if err != nil {
			t.Fatalf("%s boxed: %v", comboName(opts), err)
		}
		if !col.Logits.Equal(boxed.Logits) {
			t.Fatalf("%s: edge-feature columnar logits diverge: max diff %v",
				comboName(opts), col.Logits.MaxAbsDiff(boxed.Logits))
		}
	}
}

// TestColumnarEmbeddingsMatchBoxed: EmitEmbeddings retains the penultimate
// state across the plane's buffer management.
func TestColumnarEmbeddingsMatchBoxed(t *testing.T) {
	g := testGraph(t, datagen.SkewIn, 150)
	m := sageModel(t)
	opts := Options{NumWorkers: 5, PartialGather: true, EmitEmbeddings: true}
	col, err := RunPregel(m, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.BoxedMessages = true
	boxed, err := RunPregel(m, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !col.Embeddings.Equal(boxed.Embeddings) {
		t.Fatal("columnar embeddings diverge from boxed")
	}
}
