package inference

import (
	"testing"

	"inferturbo/internal/datagen"
	"inferturbo/internal/graph"
)

// communityDataset builds a homophilous power-law graph with enough
// communities for a locality-aware placement to exploit at 8 workers.
func communityDataset(t *testing.T, nodes int, skew datagen.Skew) *graph.Graph {
	t.Helper()
	ds := datagen.Generate(datagen.Config{
		Name: "part", Nodes: nodes, AvgDegree: 8, Skew: skew, Exponent: 1.8,
		FeatureDim: 8, NumClasses: 16, Homophily: 0.8, Seed: 33,
	})
	return ds.Graph
}

// TestPlacementBitIdenticalPredictions is the tentpole invariant at the
// driver level: logits are bit-identical across every placement strategy,
// every compute/message plane, and every worker count — one shared
// reference for all of them. (Partial-gather is excluded here: combining
// regroups float sums per sender worker, so its guarantee is per-config
// determinism plus plane equality, covered below and by the bench gate.)
func TestPlacementBitIdenticalPredictions(t *testing.T) {
	g := communityDataset(t, 300, datagen.SkewIn)
	m := sageModel(t)
	var ref *Result
	for _, workers := range []int{1, 4, 8} {
		for _, strat := range []graph.Strategy{nil, graph.DegreeBalanced{}, graph.LDG{}, graph.Fennel{}} {
			name := "hash"
			if strat != nil {
				name = strat.Name()
			}
			base := Options{NumWorkers: workers, Partitioner: strat, Parallel: true}
			perVertex := base
			perVertex.PerVertexCompute = true
			boxed := base
			boxed.BoxedMessages = true
			for plane, opts := range map[string]Options{"batched": base, "per-vertex": perVertex, "boxed": boxed} {
				res, err := RunPregel(m, g, opts)
				if err != nil {
					t.Fatalf("w%d/%s/%s: %v", workers, name, plane, err)
				}
				if ref == nil {
					ref = res
					continue
				}
				if !res.Logits.Equal(ref.Logits) {
					t.Fatalf("w%d/%s/%s: logits not bit-identical to the w1/hash reference (max diff %v)",
						workers, name, plane, res.Logits.MaxAbsDiff(ref.Logits))
				}
			}
		}
	}
}

// TestPlacementNeutralUnderSkewStrategies: the placement axis composes with
// the paper's skew strategies. Broadcast and shadow-nodes stay bit-neutral
// across placements; partial-gather regroups sender-side sums, so there the
// cross-placement claim is tolerance-level.
func TestPlacementNeutralUnderSkewStrategies(t *testing.T) {
	g := communityDataset(t, 300, datagen.SkewOut)
	m := sageModel(t)
	for _, opts := range []Options{
		{NumWorkers: 6, Broadcast: true},
		{NumWorkers: 6, ShadowNodes: true},
		{NumWorkers: 6, Broadcast: true, ShadowNodes: true},
	} {
		hash, err := RunPregel(m, g, opts)
		if err != nil {
			t.Fatal(err)
		}
		ldgOpts := opts
		ldgOpts.Partitioner = graph.LDG{}
		ldg, err := RunPregel(m, g, ldgOpts)
		if err != nil {
			t.Fatal(err)
		}
		if !hash.Logits.Equal(ldg.Logits) {
			t.Fatalf("%+v: hash and LDG logits diverge bitwise: %v", opts, hash.Logits.MaxAbsDiff(ldg.Logits))
		}
	}
	pg := Options{NumWorkers: 6, PartialGather: true}
	hash, err := RunPregel(m, g, pg)
	if err != nil {
		t.Fatal(err)
	}
	pg.Partitioner = graph.LDG{}
	ldg, err := RunPregel(m, g, pg)
	if err != nil {
		t.Fatal(err)
	}
	if !hash.Logits.AllClose(ldg.Logits, logitTol) {
		t.Fatalf("partial-gather under LDG diverged: %v", hash.Logits.MaxAbsDiff(ldg.Logits))
	}
	if ldg.Stats.CombinedAway == 0 {
		t.Fatal("partial-gather stopped combining under LDG")
	}
}

// TestMapReduceHonorsPartitioner: the MR backend places reduce keys with
// the same strategy and still matches the reference.
func TestMapReduceHonorsPartitioner(t *testing.T) {
	g := communityDataset(t, 250, datagen.SkewIn)
	m := sageModel(t)
	res, err := RunMapReduce(m, g, Options{NumWorkers: 5, Partitioner: graph.LDG{}})
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesReference(t, m, g, res)
	pr, err := RunPregel(m, g, Options{NumWorkers: 5, Partitioner: graph.LDG{}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Logits.AllClose(pr.Logits, logitTol) {
		t.Fatalf("backends diverge under LDG: %v", res.Logits.MaxAbsDiff(pr.Logits))
	}
}

// TestLDGReducesRemoteTraffic: the point of the subsystem — on a
// homophilous power-law graph, LDG placement must cut cross-worker bytes
// well below hash while leaving results and total message counts untouched.
func TestLDGReducesRemoteTraffic(t *testing.T) {
	g := communityDataset(t, 1200, datagen.SkewIn)
	m := sageModel(t)
	hash, err := RunPregel(m, g, Options{NumWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	ldg, err := RunPregel(m, g, Options{NumWorkers: 8, Partitioner: graph.LDG{}})
	if err != nil {
		t.Fatal(err)
	}
	if !hash.Logits.Equal(ldg.Logits) {
		t.Fatal("placement changed predictions")
	}
	if hash.Stats.MessagesSent != ldg.Stats.MessagesSent {
		t.Fatalf("placement changed total messages: %d vs %d", hash.Stats.MessagesSent, ldg.Stats.MessagesSent)
	}
	if hash.Stats.RemoteBytes == 0 {
		t.Fatal("hash run recorded no remote bytes")
	}
	reduction := 1 - float64(ldg.Stats.RemoteBytes)/float64(hash.Stats.RemoteBytes)
	if reduction < 0.25 {
		t.Fatalf("LDG cut remote bytes by only %.1f%% (hash %d, ldg %d)",
			100*reduction, hash.Stats.RemoteBytes, ldg.Stats.RemoteBytes)
	}
}

// TestCheckpointRecoveryWithLDG: recovery replays stay byte-identical under
// a computed placement (the snapshot machinery is placement-agnostic).
func TestCheckpointRecoveryWithLDG(t *testing.T) {
	g := communityDataset(t, 200, datagen.SkewIn)
	m := sageModel(t)
	clean, err := RunPregel(m, g, Options{NumWorkers: 4, Partitioner: graph.LDG{}})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := RunPregel(m, g, Options{
		NumWorkers: 4, Partitioner: graph.LDG{},
		CheckpointEvery: 1, FailAtSuperstep: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Logits.Equal(recovered.Logits) {
		t.Fatal("recovery under LDG not byte-identical")
	}
}
