package inference

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"inferturbo/internal/datagen"
	"inferturbo/internal/pregel"
)

// corruptLatestEpoch flips a byte in the middle of the newest epoch file so
// resume must fall back to the previous epoch (and therefore recompute the
// supersteps in between).
func corruptLatestEpoch(t *testing.T, dir string) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "epoch-*.ckpt"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no epoch files in %s (err %v)", dir, err)
	}
	latest := names[len(names)-1]
	b, err := os.ReadFile(latest)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(latest, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCheckpointStats: a run with CheckpointDir set writes epoch
// files and reports checkpoint observability through Stats.
func TestDurableCheckpointStats(t *testing.T) {
	g := testGraph(t, datagen.SkewOut, 160)
	m := sageModel(t)
	dir := t.TempDir()
	res, err := RunPregel(m, g, Options{NumWorkers: 4, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Checkpoints == 0 || res.Stats.CheckpointBytes == 0 {
		t.Fatalf("checkpoint stats not reported: %+v", res.Stats)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "epoch-*.ckpt"))
	if len(names) == 0 {
		t.Fatal("no epoch files written")
	}
}

// TestResumeFromDurableEpoch: for every compute/message plane, a resumed run
// over an existing checkpoint directory — with the newest epoch corrupted, so
// resume falls back an epoch and recomputes the tail supersteps — produces
// byte-identical predictions.
func TestResumeFromDurableEpoch(t *testing.T) {
	g := testGraph(t, datagen.SkewOut, 210)
	m := sageModel(t)
	planes := []Options{
		{NumWorkers: 4, Parallel: true},
		{NumWorkers: 4, PerVertexCompute: true},
		{NumWorkers: 4, BoxedMessages: true},
		{NumWorkers: 4, Parallel: true, Pipelined: true, PipelineChunk: 7},
		{NumWorkers: 3, Broadcast: true, ShadowNodes: true, PartialGather: true, EmitEmbeddings: true},
	}
	for _, opts := range planes {
		clean, err := RunPregel(m, g, opts)
		if err != nil {
			t.Fatalf("%s clean: %v", comboName(opts), err)
		}
		dir := t.TempDir()
		seeded := opts
		seeded.CheckpointDir = dir
		// Every superstep, so two durable epochs exist (the step-0 seed is
		// never persisted) and corrupting the newest leaves a fallback.
		seeded.CheckpointEvery = 1
		if _, err := RunPregel(m, g, seeded); err != nil {
			t.Fatalf("%s seed: %v", comboName(opts), err)
		}
		corruptLatestEpoch(t, dir)
		resumedOpts := seeded
		resumedOpts.Resume = true
		res, err := RunPregel(m, g, resumedOpts)
		if err != nil {
			t.Fatalf("%s resume: %v", comboName(opts), err)
		}
		if !res.Stats.Resumed {
			t.Fatalf("%s: run did not resume from the fallback epoch", comboName(opts))
		}
		if !clean.Logits.Equal(res.Logits) {
			t.Fatalf("%s: logits diverge after resume: max diff %v",
				comboName(opts), clean.Logits.MaxAbsDiff(res.Logits))
		}
		if clean.Embeddings != nil && !clean.Embeddings.Equal(res.Embeddings) {
			t.Fatalf("%s: embeddings diverge after resume", comboName(opts))
		}
	}
}

// TestResumeColdStart: Resume over an empty directory is a normal run.
func TestResumeColdStart(t *testing.T) {
	g := testGraph(t, datagen.SkewIn, 130)
	m := sageModel(t)
	clean, err := RunPregel(m, g, Options{NumWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPregel(m, g, Options{NumWorkers: 4, CheckpointDir: t.TempDir(), Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Resumed {
		t.Fatal("cold start reported as resumed")
	}
	if !clean.Logits.Equal(res.Logits) {
		t.Fatal("cold-start logits diverge")
	}
}

// TestFaultPlanInference: a multi-crash fault plan — including a superstep-0
// crash the legacy FailAtSuperstep field cannot express — recovers to
// byte-identical predictions on both compute planes.
func TestFaultPlanInference(t *testing.T) {
	g := testGraph(t, datagen.SkewOut, 180)
	m := sageModel(t)
	plan := &pregel.FaultPlan{Crashes: []pregel.Fault{
		{Superstep: 0, Point: pregel.FaultAtBarrier},
		{Superstep: 1, Point: pregel.FaultMidPipeline},
		{Superstep: 2, Point: pregel.FaultDuringCheckpoint},
		{Superstep: m.NumLayers(), Point: pregel.FaultBeforeSuperstep},
	}}
	for _, opts := range []Options{
		{NumWorkers: 4, Parallel: true},
		{NumWorkers: 4, PerVertexCompute: true, Pipelined: true, Parallel: true},
	} {
		clean, err := RunPregel(m, g, opts)
		if err != nil {
			t.Fatal(err)
		}
		chaotic := opts
		chaotic.CheckpointEvery = 1
		chaotic.Faults = plan
		res, err := RunPregel(m, g, chaotic)
		if err != nil {
			t.Fatalf("%s: %v", comboName(opts), err)
		}
		if res.Stats.Recoveries != len(plan.Crashes) {
			t.Fatalf("%s: recoveries = %d, want %d", comboName(opts), res.Stats.Recoveries, len(plan.Crashes))
		}
		if !clean.Logits.Equal(res.Logits) {
			t.Fatalf("%s: logits diverge after fault plan: max diff %v",
				comboName(opts), clean.Logits.MaxAbsDiff(res.Logits))
		}
	}
}

// TestMapReduceRejectsDurableOptions: the MapReduce backend has no
// checkpoint boundary, so durable options must fail loudly, not silently
// no-op.
func TestMapReduceRejectsDurableOptions(t *testing.T) {
	g := testGraph(t, datagen.SkewNone, 60)
	m := sageModel(t)
	for _, opts := range []Options{
		{NumWorkers: 2, CheckpointDir: t.TempDir()},
		{NumWorkers: 2, Resume: true},
		{NumWorkers: 2, Faults: &pregel.FaultPlan{Crashes: []pregel.Fault{{Superstep: 1}}}},
	} {
		if _, err := RunMapReduce(m, g, opts); err == nil || !strings.Contains(err.Error(), "Pregel backend") {
			t.Fatalf("durable options not rejected: %v", err)
		}
	}
}
