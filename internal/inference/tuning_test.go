package inference

import (
	"testing"

	"inferturbo/internal/datagen"
	"inferturbo/internal/gas"
	"inferturbo/internal/tensor"
)

// These tests enforce the PR's headline acceptance criterion: every entry
// point of the inference stack — ReferenceForward, InferPregel (RunPregel),
// InferMapReduce (RunMapReduce) — produces bit-identical (Matrix.Equal, not
// AllClose) logits between serial kernels (Tuning{Workers:1}) and 8-way
// parallel kernels (Tuning{Workers:8}), for every conv type.

func testModels(t *testing.T) map[string]*gas.Model {
	t.Helper()
	return map[string]*gas.Model{
		"sage": gas.NewSAGEModel("t-sage", gas.TaskSingleLabel, 8, 12, 4, 2, 0, tensor.NewRNG(5)),
		"gat":  gas.NewGATModel("t-gat", gas.TaskSingleLabel, 8, 6, 2, 4, 2, tensor.NewRNG(6)),
		"gcn":  gas.NewGCNModel("t-gcn", gas.TaskSingleLabel, 8, 12, 4, 2, tensor.NewRNG(7)),
		"gin":  gas.NewGINModel("t-gin", gas.TaskSingleLabel, 8, 12, 4, 2, tensor.NewRNG(8)),
	}
}

var tuningPair = []tensor.Tuning{
	{Workers: 1},
	{Workers: 8, BlockSize: 16, ParallelThreshold: 1},
}

func TestReferenceForwardBitIdenticalAcrossTuning(t *testing.T) {
	g := testGraph(t, datagen.SkewIn, 400)
	for name, m := range testModels(t) {
		var runs []*tensor.Matrix
		for _, tu := range tuningPair {
			prev := tensor.SetTuning(tu)
			runs = append(runs, ReferenceForward(m, g))
			tensor.SetTuning(prev)
		}
		if !runs[0].Equal(runs[1]) {
			t.Fatalf("%s: ReferenceForward differs between Workers:1 and Workers:8 (max diff %v)",
				name, runs[0].MaxAbsDiff(runs[1]))
		}
	}
}

func TestBackendsBitIdenticalAcrossTuning(t *testing.T) {
	g := testGraph(t, datagen.SkewIn, 400)
	for name, m := range testModels(t) {
		var pregelRuns, mrRuns []*tensor.Matrix
		for _, tu := range tuningPair {
			opts := Options{NumWorkers: 6, PartialGather: true, Parallel: true, Tuning: tu}
			p, err := RunPregel(m, g, opts)
			if err != nil {
				t.Fatalf("%s pregel: %v", name, err)
			}
			mr, err := RunMapReduce(m, g, opts)
			if err != nil {
				t.Fatalf("%s mapreduce: %v", name, err)
			}
			pregelRuns = append(pregelRuns, p.Logits)
			mrRuns = append(mrRuns, mr.Logits)
		}
		if !pregelRuns[0].Equal(pregelRuns[1]) {
			t.Fatalf("%s: InferPregel logits differ between Workers:1 and Workers:8", name)
		}
		if !mrRuns[0].Equal(mrRuns[1]) {
			t.Fatalf("%s: InferMapReduce logits differ between Workers:1 and Workers:8", name)
		}
	}
}

// TestOptionsTuningScoped asserts a run's Tuning override is restored after
// the run, so it cannot leak into unrelated work.
func TestOptionsTuningScoped(t *testing.T) {
	prev := tensor.SetTuning(tensor.Tuning{Workers: 2, BlockSize: 32})
	defer tensor.SetTuning(prev)

	g := testGraph(t, datagen.SkewNone, 120)
	m := sageModel(t)
	if _, err := RunPregel(m, g, Options{NumWorkers: 3, Tuning: tensor.Tuning{Workers: 5}}); err != nil {
		t.Fatal(err)
	}
	if cur := tensor.CurrentTuning(); cur.Workers != 2 || cur.BlockSize != 32 {
		t.Fatalf("run Tuning leaked: %+v", cur)
	}
}

// TestPooledApplyNodeMatchesApplyNode pins the pooled apply_node of every
// conv to its allocating counterpart, on the same aggregate.
func TestPooledApplyNodeMatchesApplyNode(t *testing.T) {
	g := testGraph(t, datagen.SkewOut, 200)
	src, dst := g.EdgeList()
	pool := tensor.NewPool()
	for name, m := range testModels(t) {
		layer := m.Layers[0]
		ctx := &gas.Context{NodeState: g.Features, SrcIndex: src, DstIndex: dst, NumNodes: g.NumNodes}
		msg := tensor.GatherRows(ctx.NodeState, ctx.SrcIndex)
		aggr := gas.Gather(layer.Reduce(), msg, ctx.DstIndex, ctx.NumNodes)
		want := layer.ApplyNode(ctx.NodeState, aggr)
		got := gas.ApplyNodePooled(layer, ctx.NodeState, aggr, pool)
		if !want.Equal(got) {
			t.Fatalf("%s: ApplyNodePooled differs from ApplyNode", name)
		}
		pool.Put(got)
		// Second round through the (now warm) pool must still match.
		got2 := gas.ApplyNodePooled(layer, ctx.NodeState, aggr, pool)
		if !want.Equal(got2) {
			t.Fatalf("%s: ApplyNodePooled differs on reused buffers", name)
		}
	}
}
