package inference

// Durable incremental sessions: the resident-state half of the crash-safety
// story. The serving layer's mutation WAL makes acknowledged deltas durable;
// this file makes the state they were applied against durable, so a killed
// server restarts with "load slabs, replay unconsumed deltas as one delta
// pass" instead of a full re-prime.
//
// After every refresh pass that ran compute, the session deep-copies its
// per-layer slabs (and scaled wire-message slabs) into recycled capture
// buffers and hands them — together with the current immutable graph
// snapshot and the replay mark — to a background persister goroutine, which
// encodes them as one checkpoint epoch. The copy is the only cost on the
// refresh path; encoding and disk IO overlap with serving. One persist is in
// flight at a time: a refresh that finishes while the previous epoch is
// still writing waits for the capture buffers to come back, bounding memory
// at two slab sets.
//
// The replay mark is the WAL dedup cursor: the highest mutation sequence
// number whose effects the persisted slabs contain. ResumeSession returns it
// so the serving layer replays only WAL records above it — a crash between
// slab-persist and WAL-truncate therefore re-stages some already-truncated
// records' worth of nothing, never double-applies a batch.
//
// Bit-identity across the crash: slab floats round-trip through their
// IEEE-754 bit patterns (checkpoint.AppendF32s), the graph round-trips
// through its canonical encoding, and the delta pass that replays the
// unconsumed mutations is the same bitwise-exact engine path a never-crashed
// process would have run — so /v1/logits after resume is byte-identical to
// the oracle.

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"time"

	"inferturbo/internal/checkpoint"
	"inferturbo/internal/gas"
	"inferturbo/internal/graph"
	"inferturbo/internal/tensor"
)

func nowNs() int64 { return time.Now().UnixNano() }

const sessionMetaVersion = 1

// SessionDurableStats exposes the persister's observables for /v1/stats.
type SessionDurableStats struct {
	Epochs       int64 // epochs durably written by this process
	Failures     int64 // persist attempts aborted or failed
	LastWallNs   int64 // wall time of the most recent successful persist
	BytesWritten int64 // cumulative epoch bytes on disk
}

// sessionPersistJob is one captured slab set in flight to disk.
type sessionPersistJob struct {
	g      *graph.Graph // immutable snapshot; never copied
	layers []*tensor.Matrix
	msgs   []*tensor.Matrix
	mark   uint64
}

// sessionDurable is the session's background persistence machinery.
type sessionDurable struct {
	store     *checkpoint.Store
	beginHook func(mark uint64) error
	doneHook  func(epoch int, mark uint64, err error)

	jobs chan *sessionPersistJob
	free chan *sessionPersistJob // capacity 1: the recycled capture buffers
	done chan struct{}

	epochs   atomic.Int64
	failures atomic.Int64
	lastNs   atomic.Int64
	// bytes mirrors the store's cumulative byte count: the Store is
	// persister-goroutine-private, so stats readers take this atomic instead.
	bytes atomic.Int64

	scratch []byte // persister-goroutine encode scratch
}

// initDurable wires the persister when SessionDir is set. Called by
// NewSession (and so by ResumeSession through it).
func (s *Session) initDurable() error {
	if s.opts.SessionDir == "" {
		return nil
	}
	st, err := checkpoint.NewStore(s.opts.SessionDir)
	if err != nil {
		return err
	}
	st.Sync = s.opts.CheckpointSync
	d := &sessionDurable{
		store:     st,
		beginHook: s.opts.SessionPersistBeginHook,
		doneHook:  s.opts.SessionPersistHook,
		jobs:      make(chan *sessionPersistJob, 1),
		free:      make(chan *sessionPersistJob, 1),
		done:      make(chan struct{}),
	}
	d.free <- &sessionPersistJob{}
	go d.run(s.model)
	s.dur = d
	return nil
}

// Durable reports whether the session persists resident state.
func (s *Session) Durable() bool { return s.dur != nil }

// ReplayMark returns the highest mutation sequence number the session's
// state (resident or, after persistence, durable) accounts for.
func (s *Session) ReplayMark() uint64 { return s.replayMark }

// SetReplayMark advances the replay mark. The serving layer calls it under
// its refresh lock after draining staged batches into the session, so the
// epoch persisted by the following Refresh records exactly the WAL prefix it
// consumed. Never call it mid-Refresh.
func (s *Session) SetReplayMark(seq uint64) {
	if seq > s.replayMark {
		s.replayMark = seq
	}
}

// DurableStats snapshots the persister counters (zero when not durable).
func (s *Session) DurableStats() SessionDurableStats {
	if s.dur == nil {
		return SessionDurableStats{}
	}
	return SessionDurableStats{
		Epochs:       s.dur.epochs.Load(),
		Failures:     s.dur.failures.Load(),
		LastWallNs:   s.dur.lastNs.Load(),
		BytesWritten: s.dur.bytes.Load(),
	}
}

// CloseDurable drains the in-flight persist (if any) and stops the
// persister. The session remains usable in memory; further refreshes simply
// stop persisting. Idempotent.
func (s *Session) CloseDurable() {
	if s.dur == nil {
		return
	}
	close(s.dur.jobs)
	<-s.dur.done
	s.dur = nil
}

// persistResident captures the current resident state and enqueues it for
// background persistence. Runs on the refresh goroutine at the end of a pass
// that ran compute; blocks only if the previous epoch is still writing (the
// capture buffers are recycled through d.free).
func (s *Session) persistResident() {
	d := s.dur
	if d == nil || !s.primed {
		return
	}
	job := <-d.free
	L := s.model.NumLayers()
	job.g = s.g // immutable: later Mutates build fresh graphs
	job.mark = s.replayMark
	if job.layers == nil {
		job.layers = make([]*tensor.Matrix, L+1)
		job.msgs = make([]*tensor.Matrix, L)
	}
	// layers[0] aliases the graph's feature matrix and travels inside the
	// graph segment; only the computed slabs need copies.
	for k := 1; k <= L; k++ {
		job.layers[k] = copyMatrixInto(job.layers[k], s.layers[k])
	}
	for k := 0; k < L; k++ {
		if s.scaled[k] {
			job.msgs[k] = copyMatrixInto(job.msgs[k], s.msgs[k])
		} else {
			job.msgs[k] = nil
		}
	}
	d.jobs <- job
}

// copyMatrixInto deep-copies src, reusing dst's backing array when shapes
// allow — steady-state persists allocate nothing.
func copyMatrixInto(dst, src *tensor.Matrix) *tensor.Matrix {
	if dst == nil || dst.Rows != src.Rows || dst.Cols != src.Cols {
		dst = tensor.New(src.Rows, src.Cols)
	}
	copy(dst.Data, src.Data)
	return dst
}

// run is the persister goroutine: encode each captured slab set as one epoch,
// return the buffers for recycling, surface the outcome through the hook.
func (d *sessionDurable) run(model *gas.Model) {
	defer close(d.done)
	for job := range d.jobs {
		err := d.persistOne(model, job)
		if err != nil {
			d.failures.Add(1)
		}
		epoch := int(d.epochs.Load())
		mark := job.mark
		job.g = nil // drop the graph reference before recycling
		d.free <- job
		if d.doneHook != nil {
			d.doneHook(epoch, mark, err)
		}
	}
}

func (d *sessionDurable) persistOne(model *gas.Model, job *sessionPersistJob) error {
	if d.beginHook != nil {
		if err := d.beginHook(job.mark); err != nil {
			return err
		}
	}
	start := nowNs()
	L := model.NumLayers()
	meta := checkpoint.AppendU32(d.scratch[:0], sessionMetaVersion)
	meta = checkpoint.AppendU64(meta, job.mark)
	meta = checkpoint.AppendU64(meta, uint64(job.g.NumNodes))
	meta = checkpoint.AppendU64(meta, uint64(L))
	meta = checkpoint.AppendU64(meta, uint64(model.InDim()))
	scaled := make([]bool, L)
	for k := 0; k < L; k++ {
		meta = checkpoint.AppendU64(meta, uint64(model.Layers[k].OutDim()))
		scaled[k] = job.msgs[k] != nil
	}
	meta = checkpoint.AppendBools(meta, scaled)
	d.scratch = meta[:0]

	var gbuf bytes.Buffer
	if err := job.g.Encode(&gbuf); err != nil {
		return fmt.Errorf("inference: persist session graph: %w", err)
	}

	segs := make([]checkpoint.Segment, 0, 2+2*L)
	segs = append(segs,
		checkpoint.Segment{Name: "session-meta", Data: meta},
		checkpoint.Segment{Name: "graph", Data: gbuf.Bytes()},
	)
	for k := 1; k <= L; k++ {
		segs = append(segs, checkpoint.Segment{
			Name: fmt.Sprintf("layer-%d", k),
			Data: appendMatrix(nil, job.layers[k]),
		})
	}
	for k := 0; k < L; k++ {
		if job.msgs[k] != nil {
			segs = append(segs, checkpoint.Segment{
				Name: fmt.Sprintf("msgs-%d", k),
				Data: appendMatrix(nil, job.msgs[k]),
			})
		}
	}
	if err := d.store.Save(int(job.mark), segs); err != nil {
		return err
	}
	d.epochs.Add(1)
	d.bytes.Store(d.store.BytesWritten())
	d.lastNs.Store(nowNs() - start)
	return nil
}

// ResumeSession reconstructs a primed Session from the newest valid epoch in
// opts.SessionDir. Returns (nil, false, nil) on a cold start — no directory
// or no valid epoch — in which case the caller builds a fresh session with
// NewSession and primes it with a full pass. On success the session's
// ReplayMark tells the caller which WAL prefix the resident state already
// contains; replaying the records above it (Mutate each, then one Refresh)
// yields logits byte-identical to a process that never crashed.
func ResumeSession(model *gas.Model, opts Options) (*Session, bool, error) {
	if opts.SessionDir == "" {
		return nil, false, fmt.Errorf("inference: ResumeSession requires SessionDir")
	}
	st, err := checkpoint.NewStore(opts.SessionDir)
	if err != nil {
		return nil, false, err
	}
	_, segs, found, err := st.Load()
	if err != nil || !found {
		return nil, false, err
	}
	bySeg := make(map[string][]byte, len(segs))
	for _, sg := range segs {
		bySeg[sg.Name] = sg.Data
	}

	r := checkpoint.NewReader(bySeg["session-meta"])
	if v := r.U32(); v != sessionMetaVersion {
		return nil, false, fmt.Errorf("inference: session epoch version %d, want %d", v, sessionMetaVersion)
	}
	mark := r.U64()
	n := int(r.U64())
	L := int(r.U64())
	inDim := int(r.U64())
	if L != model.NumLayers() || inDim != model.InDim() {
		return nil, false, fmt.Errorf("inference: session epoch is for a %d-layer/%d-dim model, have %d/%d",
			L, inDim, model.NumLayers(), model.InDim())
	}
	outDims := make([]int, L)
	for k := range outDims {
		outDims[k] = int(r.U64())
	}
	scaled := r.Bools()
	if err := r.Err(); err != nil {
		return nil, false, fmt.Errorf("inference: session epoch meta: %w", err)
	}
	if len(scaled) != L {
		return nil, false, fmt.Errorf("inference: session epoch meta truncated")
	}
	for k := 0; k < L; k++ {
		if outDims[k] != model.Layers[k].OutDim() {
			return nil, false, fmt.Errorf("inference: session epoch layer %d out-dim %d, model has %d",
				k, outDims[k], model.Layers[k].OutDim())
		}
	}

	g, err := graph.Decode(bytes.NewReader(bySeg["graph"]))
	if err != nil {
		return nil, false, fmt.Errorf("inference: session epoch graph: %w", err)
	}
	if g.NumNodes != n {
		return nil, false, fmt.Errorf("inference: session epoch graph has %d nodes, meta says %d", g.NumNodes, n)
	}

	s, err := NewSession(model, g, opts)
	if err != nil {
		return nil, false, err
	}
	for k := 0; k < L; k++ {
		if s.scaled[k] != scaled[k] {
			s.CloseDurable()
			return nil, false, fmt.Errorf("inference: session epoch layer %d scaling mismatch", k)
		}
	}
	s.layers = make([]*tensor.Matrix, L+1)
	s.msgs = make([]*tensor.Matrix, L)
	s.layers[0] = g.Features
	for k := 1; k <= L; k++ {
		mr := checkpoint.NewReader(bySeg[fmt.Sprintf("layer-%d", k)])
		m := readMatrix(mr)
		if m == nil || m.Rows != n || m.Cols != outDims[k-1] {
			s.CloseDurable()
			return nil, false, fmt.Errorf("inference: session epoch layer %d slab malformed", k)
		}
		s.layers[k] = m
	}
	for k := 0; k < L; k++ {
		if !scaled[k] {
			s.msgs[k] = s.layers[k]
			continue
		}
		mr := checkpoint.NewReader(bySeg[fmt.Sprintf("msgs-%d", k)])
		m := readMatrix(mr)
		if m == nil || m.Rows != n || m.Cols != model.Layers[k].InDim() {
			s.CloseDurable()
			return nil, false, fmt.Errorf("inference: session epoch message slab %d malformed", k)
		}
		s.msgs[k] = m
	}
	s.dirtyStep = growInt32(nil, n)
	s.pendState = growBools(nil, n)
	s.pendInbox = growBools(nil, n)
	s.pendPinned = growBools(nil, n)
	s.primed = true
	s.replayMark = mark
	return s, true, nil
}
