package inference

import (
	"testing"

	"inferturbo/internal/datagen"
	"inferturbo/internal/gas"
	"inferturbo/internal/graph"
	"inferturbo/internal/tensor"
)

// testSetup builds a small skewed dataset and both model types.
func testGraph(t *testing.T, skew datagen.Skew, nodes int) *graph.Graph {
	t.Helper()
	ds := datagen.Generate(datagen.Config{
		Name: "test", Nodes: nodes, AvgDegree: 6, Skew: skew, Exponent: 1.7,
		FeatureDim: 8, NumClasses: 4, TrainFrac: 0.3, ValFrac: 0.1, Seed: 77,
	})
	return ds.Graph
}

func sageModel(t *testing.T) *gas.Model {
	t.Helper()
	return gas.NewSAGEModel("sage-test", gas.TaskSingleLabel, 8, 12, 4, 2, 0, tensor.NewRNG(5))
}

func gatModel(t *testing.T) *gas.Model {
	t.Helper()
	return gas.NewGATModel("gat-test", gas.TaskSingleLabel, 8, 6, 2, 4, 2, tensor.NewRNG(6))
}

const logitTol = 2e-3

func assertMatchesReference(t *testing.T, m *gas.Model, g *graph.Graph, res *Result) {
	t.Helper()
	want := ReferenceForward(m, g)
	if !res.Logits.AllClose(want, logitTol) {
		t.Fatalf("logits diverge from reference: max diff %v", res.Logits.MaxAbsDiff(want))
	}
	wantClasses := tensor.ArgmaxRows(want)
	for v, c := range res.Classes {
		if c != wantClasses[v] {
			t.Fatalf("class of node %d = %d, reference %d", v, c, wantClasses[v])
		}
	}
}

func TestPregelMatchesReferenceSAGE(t *testing.T) {
	g := testGraph(t, datagen.SkewIn, 300)
	m := sageModel(t)
	res, err := RunPregel(m, g, Options{NumWorkers: 7})
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesReference(t, m, g, res)
}

func TestPregelMatchesReferenceGAT(t *testing.T) {
	g := testGraph(t, datagen.SkewIn, 300)
	m := gatModel(t)
	res, err := RunPregel(m, g, Options{NumWorkers: 7})
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesReference(t, m, g, res)
}

func TestMapReduceMatchesReferenceSAGE(t *testing.T) {
	g := testGraph(t, datagen.SkewIn, 300)
	m := sageModel(t)
	res, err := RunMapReduce(m, g, Options{NumWorkers: 7})
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesReference(t, m, g, res)
}

func TestMapReduceMatchesReferenceGAT(t *testing.T) {
	g := testGraph(t, datagen.SkewIn, 300)
	m := gatModel(t)
	res, err := RunMapReduce(m, g, Options{NumWorkers: 7})
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesReference(t, m, g, res)
}

func TestBackendsAgree(t *testing.T) {
	g := testGraph(t, datagen.SkewOut, 250)
	m := sageModel(t)
	a, err := RunPregel(m, g, Options{NumWorkers: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMapReduce(m, g, Options{NumWorkers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Logits.AllClose(b.Logits, logitTol) {
		t.Fatalf("backends diverge: %v", a.Logits.MaxAbsDiff(b.Logits))
	}
}

func TestStrategiesAreResultNeutral(t *testing.T) {
	// Invariant 3 of DESIGN.md: strategies change traffic, never results.
	g := testGraph(t, datagen.SkewOut, 300)
	for name, m := range map[string]*gas.Model{"sage": sageModel(t), "gat": gatModel(t)} {
		base, err := RunPregel(m, g, Options{NumWorkers: 6})
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range []Options{
			{NumWorkers: 6, PartialGather: true},
			{NumWorkers: 6, Broadcast: true},
			{NumWorkers: 6, ShadowNodes: true},
			{NumWorkers: 6, PartialGather: true, Broadcast: true},
			{NumWorkers: 6, PartialGather: true, ShadowNodes: true},
			{NumWorkers: 6, Broadcast: true, ShadowNodes: true},
			{NumWorkers: 6, PartialGather: true, Broadcast: true, ShadowNodes: true},
		} {
			res, err := RunPregel(m, g, opts)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, opts, err)
			}
			if !res.Logits.AllClose(base.Logits, logitTol) {
				t.Fatalf("%s strategies %+v changed results: %v", name, opts, res.Logits.MaxAbsDiff(base.Logits))
			}
			resMR, err := RunMapReduce(m, g, opts)
			if err != nil {
				t.Fatalf("%s MR %+v: %v", name, opts, err)
			}
			if !resMR.Logits.AllClose(base.Logits, logitTol) {
				t.Fatalf("%s MR strategies %+v changed results: %v", name, opts, resMR.Logits.MaxAbsDiff(base.Logits))
			}
		}
	}
}

func TestConsistencyAcrossRuns(t *testing.T) {
	// The headline guarantee: repeated runs are bit-identical.
	g := testGraph(t, datagen.SkewIn, 200)
	m := gatModel(t)
	opts := Options{NumWorkers: 4, PartialGather: true, Broadcast: true}
	a, err := RunPregel(m, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPregel(m, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Logits.Equal(b.Logits) {
		t.Fatal("repeated runs must be bit-identical")
	}
	c, err := RunMapReduce(m, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	d, err := RunMapReduce(m, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Logits.Equal(d.Logits) {
		t.Fatal("repeated MR runs must be bit-identical")
	}
}

func TestWorkerCountDoesNotChangePredictions(t *testing.T) {
	// The source-merged barrier makes this bit-level, not tolerance-level:
	// every destination folds its inbox in ascending source order no matter
	// how vertices are spread over workers.
	g := testGraph(t, datagen.SkewIn, 200)
	m := sageModel(t)
	var ref *Result
	for _, workers := range []int{1, 3, 8} {
		res, err := RunPregel(m, g, Options{NumWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !res.Logits.Equal(ref.Logits) {
			t.Fatalf("worker count %d changed logits: %v", workers, res.Logits.MaxAbsDiff(ref.Logits))
		}
	}
}

func TestParallelExecutionIdentical(t *testing.T) {
	g := testGraph(t, datagen.SkewIn, 200)
	m := sageModel(t)
	seq, err := RunPregel(m, g, Options{NumWorkers: 6, Parallel: false})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunPregel(m, g, Options{NumWorkers: 6, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Logits.Equal(par.Logits) {
		t.Fatal("parallel execution must be bit-identical")
	}
}

func TestEdgeFeatureModelMatchesReference(t *testing.T) {
	ds := datagen.Generate(datagen.Config{
		Name: "ef", Nodes: 200, AvgDegree: 5, Skew: datagen.SkewNone,
		FeatureDim: 6, NumClasses: 3, Seed: 9, EdgeFeature: true,
	})
	g := ds.Graph
	m := gas.NewSAGEModel("sage-ef", gas.TaskSingleLabel, 6, 8, 3, 2, 4, tensor.NewRNG(10))
	for _, backend := range []func(*gas.Model, *graph.Graph, Options) (*Result, error){RunPregel, RunMapReduce} {
		res, err := backend(m, g, Options{NumWorkers: 4})
		if err != nil {
			t.Fatal(err)
		}
		want := ReferenceForward(m, g)
		if !res.Logits.AllClose(want, logitTol) {
			t.Fatalf("edge-feature model diverges: %v", res.Logits.MaxAbsDiff(want))
		}
	}
}

func TestMultiLabelPredictions(t *testing.T) {
	g := testGraph(t, datagen.SkewNone, 150)
	m := gas.NewSAGEModel("ml", gas.TaskMultiLabel, 8, 8, 4, 2, 0, tensor.NewRNG(11))
	res, err := RunPregel(m, g, Options{NumWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.MultiLabel == nil || res.Classes != nil {
		t.Fatal("multi-label task must produce a binary matrix")
	}
	want := ReferenceForward(m, g)
	for i, v := range want.Data {
		got := res.MultiLabel.Data[i]
		if (v > logitTol && got != 1) || (v < -logitTol && got != 0) {
			t.Fatalf("multilabel bit %d = %v for logit %v", i, got, v)
		}
	}
}

func TestMapReduceWithDiskSpillMatches(t *testing.T) {
	g := testGraph(t, datagen.SkewIn, 150)
	m := sageModel(t)
	mem, err := RunMapReduce(m, g, Options{NumWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	disk, err := RunMapReduce(m, g, Options{NumWorkers: 4, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if !mem.Logits.Equal(disk.Logits) {
		t.Fatal("disk-spilled run must match the in-memory run exactly")
	}
}

func TestPhasesShapeAndAccounting(t *testing.T) {
	g := testGraph(t, datagen.SkewIn, 200)
	m := sageModel(t)
	res, err := RunPregel(m, g, Options{NumWorkers: 5})
	if err != nil {
		t.Fatal(err)
	}
	// K layers + init superstep.
	if len(res.Phases) != m.NumLayers()+1 {
		t.Fatalf("phases = %d, want %d", len(res.Phases), m.NumLayers()+1)
	}
	for _, ph := range res.Phases {
		if len(ph.Workers) != 5 {
			t.Fatalf("phase %s has %d workers", ph.Name, len(ph.Workers))
		}
	}
	if res.Stats.MessagesSent == 0 || res.Stats.BytesSent == 0 {
		t.Fatal("stats not collected")
	}
	mres, err := RunMapReduce(m, g, Options{NumWorkers: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Map phase + K rounds.
	if len(mres.Phases) != m.NumLayers()+1 {
		t.Fatalf("MR phases = %d, want %d", len(mres.Phases), m.NumLayers()+1)
	}
}

func TestPartialGatherReducesMessages(t *testing.T) {
	g := testGraph(t, datagen.SkewIn, 400)
	m := sageModel(t)
	base, err := RunPregel(m, g, Options{NumWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := RunPregel(m, g, Options{NumWorkers: 4, PartialGather: true})
	if err != nil {
		t.Fatal(err)
	}
	if pg.Stats.MessagesSent >= base.Stats.MessagesSent {
		t.Fatalf("partial-gather did not reduce messages: %d vs %d",
			pg.Stats.MessagesSent, base.Stats.MessagesSent)
	}
	if pg.Stats.CombinedAway == 0 {
		t.Fatal("no combining recorded")
	}
}

func TestPartialGatherNoOpForUnionLayers(t *testing.T) {
	g := testGraph(t, datagen.SkewIn, 200)
	m := gatModel(t)
	base, err := RunPregel(m, g, Options{NumWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := RunPregel(m, g, Options{NumWorkers: 4, PartialGather: true})
	if err != nil {
		t.Fatal(err)
	}
	if pg.Stats.CombinedAway != 0 {
		t.Fatal("GAT (union) messages must not be combined")
	}
	if pg.Stats.MessagesSent != base.Stats.MessagesSent {
		t.Fatal("message count should be unchanged for union layers")
	}
}

func TestBroadcastReducesBytesOnOutSkew(t *testing.T) {
	g := testGraph(t, datagen.SkewOut, 500)
	m := sageModel(t)
	opts := Options{NumWorkers: 4, HubThreshold: 20}
	base, err := RunPregel(m, g, Options{NumWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	bc, err := RunPregel(m, g, Options{NumWorkers: opts.NumWorkers, Broadcast: true, HubThreshold: opts.HubThreshold})
	if err != nil {
		t.Fatal(err)
	}
	if bc.Stats.BroadcastHubs == 0 {
		t.Fatal("no hubs took the broadcast path")
	}
	if bc.Stats.BytesSent >= base.Stats.BytesSent {
		t.Fatalf("broadcast did not reduce bytes: %d vs %d", bc.Stats.BytesSent, base.Stats.BytesSent)
	}
}

func TestShadowNodesFlattenOutDegree(t *testing.T) {
	g := testGraph(t, datagen.SkewOut, 500)
	threshold := 15
	sg := BuildShadowGraph(g, threshold)
	if sg.Mirrors == 0 {
		t.Fatal("expected mirrors on an out-skewed graph")
	}
	if err := sg.G.Validate(); err != nil {
		t.Fatal(err)
	}
	before := graph.OutDegreeStats(g)
	after := graph.OutDegreeStats(sg.G)
	// The max out-degree must collapse toward the threshold. Duplicated
	// in-edge copies add a few out-edges elsewhere (the paper's stated
	// overhead), so the bound is loose, not exact.
	if after.Max >= before.Max/2 {
		t.Fatalf("shadow max out-degree %d did not collapse from %d", after.Max, before.Max)
	}
	// Every original hub's own out-edge share is within the threshold.
	for v := int32(0); v < int32(g.NumNodes); v++ {
		if g.OutDegree(v) > threshold && sg.G.OutDegree(v) > g.OutDegree(v) {
			t.Fatalf("hub %d kept more out-edges than before", v)
		}
	}
}

func TestShadowGraphPreservesInEdgesPerMirror(t *testing.T) {
	b := graph.NewBuilder(5)
	// Node 0 is a hub: out-edges to 1,2,3,4; node 1 points at 0.
	for v := int32(1); v < 5; v++ {
		b.AddEdge(0, v, nil)
	}
	b.AddEdge(1, 0, nil)
	g := b.Build()
	g.Features = tensor.New(5, 2)
	for v := 0; v < 5; v++ {
		g.Features.Set(v, 0, float32(v))
	}
	sg := BuildShadowGraph(g, 2) // hub 0 splits into ceil(4/2)=2 groups → 1 mirror
	if sg.Mirrors != 1 {
		t.Fatalf("mirrors = %d, want 1", sg.Mirrors)
	}
	mirror := int32(5)
	if sg.Origin[mirror] != 0 {
		t.Fatalf("mirror origin = %d", sg.Origin[mirror])
	}
	// The mirror must have the same in-edges as the original (from node 1).
	if sg.G.InDegree(mirror) != g.InDegree(0) {
		t.Fatalf("mirror in-degree %d, original %d", sg.G.InDegree(mirror), g.InDegree(0))
	}
	// Out-edges are split: 2 + 2.
	if sg.G.OutDegree(0)+sg.G.OutDegree(mirror) != 4 {
		t.Fatalf("split out-degrees = %d + %d", sg.G.OutDegree(0), sg.G.OutDegree(mirror))
	}
	// Features are duplicated.
	if sg.G.Features.At(int(mirror), 0) != 0 {
		t.Fatal("mirror features must copy the original's")
	}
}

func TestIdentityShadowIsNoOp(t *testing.T) {
	g := testGraph(t, datagen.SkewNone, 50)
	sg := IdentityShadow(g)
	if sg.G != g || sg.Mirrors != 0 || sg.NumOriginal != 50 {
		t.Fatal("IdentityShadow must wrap unchanged")
	}
}

func TestValidateModelGraphMismatch(t *testing.T) {
	g := testGraph(t, datagen.SkewNone, 50)
	bad := gas.NewSAGEModel("bad", gas.TaskSingleLabel, 99, 8, 4, 2, 0, tensor.NewRNG(1))
	if _, err := RunPregel(bad, g, Options{NumWorkers: 2}); err == nil {
		t.Fatal("dim mismatch must error")
	}
	if _, err := RunMapReduce(bad, g, Options{NumWorkers: 2}); err == nil {
		t.Fatal("dim mismatch must error on MR")
	}
}

func TestThresholdHeuristic(t *testing.T) {
	g := testGraph(t, datagen.SkewNone, 100)
	o := Options{NumWorkers: 10, Lambda: 0.1}.withDefaults()
	want := graph.StrategyThreshold(0.1, g.NumEdges, 10)
	if o.threshold(g) != want {
		t.Fatalf("threshold = %d, want %d", o.threshold(g), want)
	}
	o2 := Options{NumWorkers: 10, HubThreshold: 42}.withDefaults()
	if o2.threshold(g) != 42 {
		t.Fatal("explicit threshold must win")
	}
}

func TestCombineMsgsSemantics(t *testing.T) {
	a := gnnMsg{Kind: msgState, Reduce: uint8(gas.ReduceMean), Count: 2, Payload: []float32{1, 2}}
	b := gnnMsg{Kind: msgState, Reduce: uint8(gas.ReduceMean), Count: 1, Payload: []float32{3, 4}}
	got, ok := combineMsgs(a, b)
	if !ok || got.Count != 3 || got.Payload[0] != 4 || got.Payload[1] != 6 {
		t.Fatalf("mean combine = %+v ok=%v", got, ok)
	}
	// Inputs must not be mutated (payloads can be shared across edges).
	if a.Payload[0] != 1 || b.Payload[0] != 3 {
		t.Fatal("combine mutated its inputs")
	}
	u := gnnMsg{Kind: msgState, Reduce: uint8(gas.ReduceUnion), Payload: []float32{1}}
	if _, ok := combineMsgs(u, u); ok {
		t.Fatal("union messages must not combine")
	}
	r := gnnMsg{Kind: msgBCRef}
	if _, ok := combineMsgs(r, r); ok {
		t.Fatal("refs must not combine")
	}
	mx := gnnMsg{Kind: msgState, Reduce: uint8(gas.ReduceMax), Payload: []float32{5, 0}}
	my := gnnMsg{Kind: msgState, Reduce: uint8(gas.ReduceMax), Payload: []float32{1, 9}}
	gotMax, ok := combineMsgs(mx, my)
	if !ok || gotMax.Payload[0] != 5 || gotMax.Payload[1] != 9 {
		t.Fatalf("max combine = %+v", gotMax)
	}
}

func TestMRCombineSemantics(t *testing.T) {
	vals := []mrVal{
		{Kind: mrSelf, Payload: []float32{9}},
		{Kind: mrMsg, Reduce: uint8(gas.ReduceSum), Count: 1, Payload: []float32{1}},
		{Kind: mrMsg, Reduce: uint8(gas.ReduceSum), Count: 1, Payload: []float32{2}},
		{Kind: mrOutEdges, OutDsts: []int32{1}},
	}
	out := mrCombine(0, vals)
	if len(out) != 3 {
		t.Fatalf("combined to %d records, want 3", len(out))
	}
	var found bool
	for _, v := range out {
		if v.Kind == mrMsg {
			if v.Payload[0] != 3 || v.Count != 2 {
				t.Fatalf("merged msg = %+v", v)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("merged message missing")
	}
	// Union messages must pass through unmerged.
	union := []mrVal{
		{Kind: mrMsg, Reduce: uint8(gas.ReduceUnion), Payload: []float32{1}},
		{Kind: mrMsg, Reduce: uint8(gas.ReduceUnion), Payload: []float32{2}},
	}
	if got := mrCombine(0, union); len(got) != 2 {
		t.Fatalf("union combined to %d records", len(got))
	}
}

func TestSingleWorkerSingleLayer(t *testing.T) {
	// Degenerate corners: 1 worker, 1 layer.
	g := testGraph(t, datagen.SkewNone, 60)
	m := gas.NewSAGEModel("one", gas.TaskSingleLabel, 8, 8, 4, 1, 0, tensor.NewRNG(12))
	for _, run := range []func(*gas.Model, *graph.Graph, Options) (*Result, error){RunPregel, RunMapReduce} {
		res, err := run(m, g, Options{NumWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := ReferenceForward(m, g)
		if !res.Logits.AllClose(want, logitTol) {
			t.Fatalf("1-worker 1-layer diverges: %v", res.Logits.MaxAbsDiff(want))
		}
	}
}
