package inference

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"inferturbo/internal/gas"
	"inferturbo/internal/graph"
	"inferturbo/internal/tensor"
)

// TestSessionDurablePersistResume is the tentpole property at the inference
// layer: prime → mutate → refresh with SessionDir set, kill the session (a
// clean Close here; the re-exec tests kill the process), ResumeSession, and
// the resumed resident state must serve bit-identical logits and support
// further delta refreshes that stay bit-identical to scratch.
func TestSessionDurablePersistResume(t *testing.T) {
	models := map[string]*gas.Model{
		"gcn":     gas.NewGCNModel("d-gcn", gas.TaskSingleLabel, 6, 9, 3, 2, tensor.NewRNG(121)),
		"sage-ef": gas.NewSAGEModel("d-sage", gas.TaskSingleLabel, 6, 9, 3, 2, 4, tensor.NewRNG(122)),
	}
	seed := int64(300)
	for name, m := range models {
		seed++
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			g := sessionTestGraph(seed, true)
			opts := Options{NumWorkers: 2, DeltaCutover: 1.1, SessionDir: dir}
			sess, err := NewSession(m, g, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !sess.Durable() {
				t.Fatal("SessionDir set but session not durable")
			}
			if _, _, err := sess.Refresh(); err != nil {
				t.Fatal(err)
			}
			rng := tensor.NewRNG(seed * 3)
			var mark uint64
			for batch := 0; batch < 3; batch++ {
				if _, err := sess.Mutate(randomDelta(rng, sess.Graph(), true)); err != nil {
					t.Fatal(err)
				}
				mark++
				sess.SetReplayMark(mark)
				if _, _, err := sess.Refresh(); err != nil {
					t.Fatal(err)
				}
			}
			want := sess.Graph()
			sess.CloseDurable()

			resumed, ok, err := ResumeSession(m, opts)
			if err != nil || !ok {
				t.Fatalf("ResumeSession: ok=%v err=%v", ok, err)
			}
			defer resumed.CloseDurable()
			if !resumed.Primed() || resumed.Pending() {
				t.Fatalf("resumed session primed=%v pending=%v", resumed.Primed(), resumed.Pending())
			}
			if resumed.ReplayMark() != mark {
				t.Fatalf("resumed replay mark %d, want %d", resumed.ReplayMark(), mark)
			}
			if resumed.Graph().NumNodes != want.NumNodes || resumed.Graph().NumEdges != want.NumEdges {
				t.Fatalf("resumed graph %d/%d nodes/edges, want %d/%d",
					resumed.Graph().NumNodes, resumed.Graph().NumEdges, want.NumNodes, want.NumEdges)
			}
			// Resident logits must match a scratch pass over the same graph.
			res, kind, err := resumed.Refresh()
			if err != nil || kind != RefreshDelta {
				t.Fatalf("resumed idle refresh: kind=%v err=%v", kind, err)
			}
			scratch, err := RunPregel(m, resumed.Graph(), Options{NumWorkers: 2})
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, "resumed resident", res.Logits, scratch.Logits)
			// And the resumed slabs must carry further delta passes exactly.
			for batch := 0; batch < 2; batch++ {
				if _, err := resumed.Mutate(randomDelta(rng, resumed.Graph(), true)); err != nil {
					t.Fatal(err)
				}
				res, kind, err := resumed.Refresh()
				if err != nil || kind != RefreshDelta {
					t.Fatalf("post-resume batch %d: kind=%v err=%v", batch, kind, err)
				}
				scratch, err := RunPregel(m, resumed.Graph(), Options{NumWorkers: 2})
				if err != nil {
					t.Fatal(err)
				}
				assertBitIdentical(t, fmt.Sprintf("post-resume delta %d", batch), res.Logits, scratch.Logits)
			}
		})
	}
}

// TestResumeSessionColdStart: no directory, or a directory with no valid
// epoch, is a clean cold start — (nil, false, nil), no error.
func TestResumeSessionColdStart(t *testing.T) {
	if _, _, err := ResumeSession(nil, Options{}); err == nil {
		t.Fatal("empty SessionDir accepted")
	}
	dir := filepath.Join(t.TempDir(), "never-written")
	s, ok, err := ResumeSession(nil, Options{SessionDir: dir})
	if s != nil || ok || err != nil {
		t.Fatalf("cold start: s=%v ok=%v err=%v", s, ok, err)
	}
}

// TestResumeSessionShapeMismatch: an epoch persisted for one model must be
// refused by a model with different dims, not silently loaded.
func TestResumeSessionShapeMismatch(t *testing.T) {
	dir := t.TempDir()
	m := gas.NewGCNModel("shape-a", gas.TaskSingleLabel, 6, 9, 3, 2, tensor.NewRNG(131))
	sess, err := NewSession(m, sessionTestGraph(41, false), Options{NumWorkers: 2, SessionDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Refresh(); err != nil {
		t.Fatal(err)
	}
	sess.CloseDurable()
	other := gas.NewGCNModel("shape-b", gas.TaskSingleLabel, 6, 12, 3, 2, tensor.NewRNG(132))
	if _, ok, err := ResumeSession(other, Options{SessionDir: dir}); err == nil || ok {
		t.Fatalf("mismatched model resumed: ok=%v err=%v", ok, err)
	}
	threeLayer := gas.NewGCNModel("shape-c", gas.TaskSingleLabel, 6, 9, 3, 3, tensor.NewRNG(133))
	if _, ok, err := ResumeSession(threeLayer, Options{SessionDir: dir}); err == nil || ok {
		t.Fatalf("mismatched layer count resumed: ok=%v err=%v", ok, err)
	}
}

// TestSessionPersistFaultDegrades: a failing persist (the BeginHook seam the
// chaos tests crash at) must not corrupt the in-memory session — refreshes
// keep serving exact results, the failure is counted, and the next persist
// succeeds and covers the full state.
func TestSessionPersistFaultDegrades(t *testing.T) {
	dir := t.TempDir()
	m := gas.NewGCNModel("pf-gcn", gas.TaskSingleLabel, 6, 9, 3, 2, tensor.NewRNG(141))
	var mu sync.Mutex
	fail := true
	var outcomes []error
	opts := Options{
		NumWorkers: 2, DeltaCutover: 1.1, SessionDir: dir,
		SessionPersistBeginHook: func(mark uint64) error {
			mu.Lock()
			defer mu.Unlock()
			if fail {
				return fmt.Errorf("injected persist fault at mark %d", mark)
			}
			return nil
		},
		SessionPersistHook: func(epoch int, mark uint64, err error) {
			mu.Lock()
			outcomes = append(outcomes, err)
			mu.Unlock()
		},
	}
	sess, err := NewSession(m, sessionTestGraph(43, false), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.CloseDurable()
	waitOutcomes := func(n int) []error {
		t.Helper()
		for i := 0; i < 500; i++ {
			mu.Lock()
			if len(outcomes) >= n {
				got := append([]error(nil), outcomes...)
				mu.Unlock()
				return got
			}
			mu.Unlock()
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("persister never reported %d outcomes", n)
		return nil
	}
	if _, _, err := sess.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got := waitOutcomes(1); got[0] == nil {
		t.Fatal("injected persist fault not reported through the hook")
	}
	if ds := sess.DurableStats(); ds.Failures != 1 || ds.Epochs != 0 {
		t.Fatalf("after fault: %+v", ds)
	}
	// Nothing durable yet: resume must be a cold start.
	if _, ok, err := ResumeSession(m, Options{SessionDir: dir}); ok || err != nil {
		t.Fatalf("resume after failed persist: ok=%v err=%v", ok, err)
	}
	mu.Lock()
	fail = false
	mu.Unlock()
	// The next pass persists the same (healthy) resident state.
	rng := tensor.NewRNG(142)
	if _, err := sess.Mutate(randomDelta(rng, sess.Graph(), false)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got := waitOutcomes(2); got[1] != nil {
		t.Fatalf("recovered persist errored: %v", got[1])
	}
	if ds := sess.DurableStats(); ds.Epochs != 1 {
		t.Fatalf("after recovery: %+v", ds)
	}
	resumed, ok, err := ResumeSession(m, Options{SessionDir: dir})
	if err != nil || !ok {
		t.Fatalf("resume after recovery: ok=%v err=%v", ok, err)
	}
	defer resumed.CloseDurable()
	res, _, err := resumed.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := RunPregel(m, resumed.Graph(), Options{NumWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "resume after recovered persist", res.Logits, scratch.Logits)
}

// TestResumeSessionCorruptNewestEpoch: flipping bytes in the newest epoch
// file must push Load back to the previous valid epoch, whose earlier replay
// mark tells the caller to replay more WAL — never a hard failure while an
// older epoch survives.
func TestResumeSessionCorruptNewestEpoch(t *testing.T) {
	dir := t.TempDir()
	m := gas.NewGCNModel("cor-gcn", gas.TaskSingleLabel, 6, 9, 3, 2, tensor.NewRNG(151))
	opts := Options{NumWorkers: 2, DeltaCutover: 1.1, SessionDir: dir}
	sess, err := NewSession(m, sessionTestGraph(47, false), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Refresh(); err != nil {
		t.Fatal(err)
	}
	sess.SetReplayMark(1)
	rng := tensor.NewRNG(152)
	if _, err := sess.Mutate(randomDelta(rng, sess.Graph(), false)); err != nil {
		t.Fatal(err)
	}
	firstGraph := sess.Graph()
	if _, _, err := sess.Refresh(); err != nil {
		t.Fatal(err)
	}
	sess.SetReplayMark(2)
	if _, err := sess.Mutate(randomDelta(rng, sess.Graph(), false)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Refresh(); err != nil {
		t.Fatal(err)
	}
	sess.CloseDurable()

	epochs, err := filepath.Glob(filepath.Join(dir, "epoch-*.ckpt"))
	if err != nil || len(epochs) < 2 {
		t.Fatalf("want >=2 retained epochs, have %v (err=%v)", epochs, err)
	}
	newest := epochs[len(epochs)-1]
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(b) / 2; i < len(b)/2+16 && i < len(b); i++ {
		b[i] ^= 0xff
	}
	if err := os.WriteFile(newest, b, 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, ok, err := ResumeSession(m, opts)
	if err != nil || !ok {
		t.Fatalf("resume with corrupt newest: ok=%v err=%v", ok, err)
	}
	defer resumed.CloseDurable()
	if resumed.ReplayMark() != 1 {
		t.Fatalf("fell back to mark %d, want 1 (the previous epoch)", resumed.ReplayMark())
	}
	res, _, err := resumed.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := RunPregel(m, firstGraph, Options{NumWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "fallback epoch resident", res.Logits, scratch.Logits)
}

// TestSessionMutateValidationPaths pins every ApplyDelta rejection reachable
// through Session.Mutate: each invalid delta must error, leave the graph
// pointer and pending flag untouched, and keep later refreshes exact.
func TestSessionMutateValidationPaths(t *testing.T) {
	m := gas.NewGCNModel("val-gcn", gas.TaskSingleLabel, 6, 9, 3, 2, tensor.NewRNG(161))
	g := sessionTestGraph(53, false)
	sess, err := NewSession(m, g, Options{NumWorkers: 2, DeltaCutover: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Refresh(); err != nil {
		t.Fatal(err)
	}
	n := int32(g.NumNodes)
	bad := map[string]graph.Delta{
		"feature node out of range": {Features: []graph.FeatureUpdate{{Node: n, Features: make([]float32, 6)}}},
		"feature node negative":     {Features: []graph.FeatureUpdate{{Node: -1, Features: make([]float32, 6)}}},
		"feature dim mismatch":      {Features: []graph.FeatureUpdate{{Node: 0, Features: make([]float32, 5)}}},
		"new node dim mismatch":     {AddNodes: []graph.NodeAdd{{Features: make([]float32, 7)}}},
		"edge src out of range":     {AddEdges: []graph.EdgeAdd{{Src: n + 5, Dst: 0}}},
		"edge dst out of range":     {AddEdges: []graph.EdgeAdd{{Src: 0, Dst: n + 5}}},
		"edge feature mismatch":     {AddEdges: []graph.EdgeAdd{{Src: 0, Dst: 1, Features: []float32{1}}}},
		"remove nonexistent":        {RemoveEdges: []graph.EdgeKey{{Src: 0, Dst: 0}}},
		"remove out of range":       {RemoveEdges: []graph.EdgeKey{{Src: -2, Dst: 0}}},
	}
	for label, d := range bad {
		before := sess.Graph()
		if _, err := sess.Mutate(d); err == nil {
			t.Fatalf("%s: not rejected", label)
		}
		if sess.Graph() != before {
			t.Fatalf("%s: failed mutate advanced the graph", label)
		}
		if sess.Pending() {
			t.Fatalf("%s: failed mutate left the session pending", label)
		}
	}
	// The empty delta is a documented no-op, not an error.
	eff, err := sess.Mutate(graph.Delta{})
	if err != nil || eff.NumNodes != int(n) {
		t.Fatalf("empty delta: eff=%+v err=%v", eff, err)
	}
	if sess.Pending() {
		t.Fatal("empty delta marked the session pending")
	}
	// After the rejection gauntlet the session still computes exactly.
	rng := tensor.NewRNG(162)
	if _, err := sess.Mutate(randomDelta(rng, sess.Graph(), true)); err != nil {
		t.Fatal(err)
	}
	res, kind, err := sess.Refresh()
	if err != nil || kind != RefreshDelta {
		t.Fatalf("kind=%v err=%v", kind, err)
	}
	scratch, err := RunPregel(m, sess.Graph(), Options{NumWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "post-gauntlet delta", res.Logits, scratch.Logits)
}
