package inference

import (
	"testing"

	"inferturbo/internal/datagen"
	"inferturbo/internal/gas"
	"inferturbo/internal/graph"
	"inferturbo/internal/tensor"
)

// referenceEmbeddings computes the penultimate-layer states directly.
func referenceEmbeddings(m *gas.Model, g *graph.Graph) *tensor.Matrix {
	truncated := &gas.Model{Name: m.Name, Task: m.Task, NumClasses: m.NumClasses,
		Layers: m.Layers[:m.NumLayers()-1]}
	return ReferenceForward(truncated, g)
}

func TestEmitEmbeddingsPregel(t *testing.T) {
	g := testGraph(t, datagen.SkewIn, 200)
	m := sageModel(t)
	res, err := RunPregel(m, g, Options{NumWorkers: 5, EmitEmbeddings: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embeddings == nil {
		t.Fatal("embeddings missing")
	}
	want := referenceEmbeddings(m, g)
	if !res.Embeddings.AllClose(want, logitTol) {
		t.Fatalf("embeddings diverge: %v", res.Embeddings.MaxAbsDiff(want))
	}
}

func TestEmitEmbeddingsMapReduce(t *testing.T) {
	g := testGraph(t, datagen.SkewIn, 200)
	m := gatModel(t)
	res, err := RunMapReduce(m, g, Options{NumWorkers: 5, EmitEmbeddings: true})
	if err != nil {
		t.Fatal(err)
	}
	want := referenceEmbeddings(m, g)
	if !res.Embeddings.AllClose(want, logitTol) {
		t.Fatalf("MR embeddings diverge: %v", res.Embeddings.MaxAbsDiff(want))
	}
}

func TestEmitEmbeddingsOneLayerModelReturnsFeatures(t *testing.T) {
	g := testGraph(t, datagen.SkewNone, 80)
	m := gas.NewSAGEModel("one", gas.TaskSingleLabel, 8, 8, 4, 1, 0, tensor.NewRNG(3))
	res, err := RunPregel(m, g, Options{NumWorkers: 3, EmitEmbeddings: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Embeddings.Equal(g.Features) {
		t.Fatal("1-layer embeddings must be the input features")
	}
}

func TestEmbeddingsOffByDefault(t *testing.T) {
	g := testGraph(t, datagen.SkewNone, 80)
	m := sageModel(t)
	res, err := RunPregel(m, g, Options{NumWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embeddings != nil {
		t.Fatal("embeddings must be opt-in")
	}
}

func TestEmbeddingsWithShadowNodes(t *testing.T) {
	g := testGraph(t, datagen.SkewOut, 300)
	m := sageModel(t)
	res, err := RunMapReduce(m, g, Options{NumWorkers: 4, ShadowNodes: true, HubThreshold: 10, EmitEmbeddings: true})
	if err != nil {
		t.Fatal(err)
	}
	want := referenceEmbeddings(m, g)
	if res.Embeddings.Rows != g.NumNodes {
		t.Fatalf("embedding rows = %d, want %d (mirrors folded away)", res.Embeddings.Rows, g.NumNodes)
	}
	if !res.Embeddings.AllClose(want, logitTol) {
		t.Fatalf("shadowed embeddings diverge: %v", res.Embeddings.MaxAbsDiff(want))
	}
}
