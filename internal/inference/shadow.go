package inference

import (
	"inferturbo/internal/graph"
	"inferturbo/internal/tensor"
)

// ShadowGraph is the result of the shadow-nodes preprocessing: hub nodes
// (out-degree above the threshold) are duplicated into mirrors; each mirror
// takes an even share of the original's out-edges and a copy of *all* its
// in-edges, so every mirror computes the same state as the original and the
// results are unchanged — only the communication load is spread.
type ShadowGraph struct {
	// G is the rewritten graph: nodes [0, NumOriginal) are the originals,
	// the rest are mirrors.
	G *graph.Graph
	// Origin maps every vertex to its original node id (identity for
	// originals).
	Origin []int32
	// NumOriginal is the input graph's node count.
	NumOriginal int
	// Mirrors counts the extra vertices created.
	Mirrors int
	// OrigOutDeg maps every vertex to its *original* node's out-degree.
	// Degree-scaled layers (gas.MessageScaler) must scale by the original
	// degree, not a mirror's share, or the rewrite would change results.
	OrigOutDeg []int32
}

// BuildShadowGraph splits the out-edges of every node whose out-degree
// exceeds threshold into ceil(outDeg/threshold) groups. Features, labels and
// edge features are duplicated onto mirrors so the rewritten graph is
// self-contained.
func BuildShadowGraph(g *graph.Graph, threshold int) *ShadowGraph {
	if threshold <= 0 {
		panic("inference: shadow threshold must be positive")
	}
	n := g.NumNodes

	// Assign mirror ids.
	type hub struct {
		node   int32
		groups int
		first  int32 // first mirror vertex id (mirror 0 is the original)
	}
	var hubs []hub
	next := int32(n)
	mirrorsOf := make(map[int32]hub)
	for v := int32(0); v < int32(n); v++ {
		d := g.OutDegree(v)
		if d > threshold {
			groups := (d + threshold - 1) / threshold
			h := hub{node: v, groups: groups, first: next}
			hubs = append(hubs, h)
			mirrorsOf[v] = h
			next += int32(groups - 1)
		}
	}
	total := int(next)

	origin := make([]int32, total)
	for v := 0; v < n; v++ {
		origin[v] = int32(v)
	}
	for _, h := range hubs {
		for i := 0; i < h.groups-1; i++ {
			origin[h.first+int32(i)] = h.node
		}
	}

	// ownerOf returns the vertex that owns the i-th out-edge of v
	// (round-robin across the original and its mirrors).
	ownerOf := func(v int32, i int) int32 {
		h, ok := mirrorsOf[v]
		if !ok {
			return v
		}
		g := i % h.groups
		if g == 0 {
			return v
		}
		return h.first + int32(g-1)
	}

	b := graph.NewBuilder(total)
	hasEdgeFeat := g.EdgeFeatures != nil
	var feat []float32
	for v := int32(0); v < int32(n); v++ {
		dsts := g.OutNeighbors(v)
		eids := g.OutEdgeIDs(v)
		for i, dst := range dsts {
			src := ownerOf(v, i)
			if hasEdgeFeat {
				feat = g.EdgeFeatures.Row(int(eids[i]))
			}
			// The destination keeps its in-edge; if the destination is a
			// hub, its mirrors each need a copy of the in-edge too.
			b.AddEdge(src, dst, feat)
			if h, ok := mirrorsOf[dst]; ok {
				for m := 0; m < h.groups-1; m++ {
					b.AddEdge(src, h.first+int32(m), feat)
				}
			}
		}
	}
	sg := b.Build()

	// Duplicate node features (and labels, for completeness) onto mirrors.
	if g.Features != nil {
		f := tensor.New(total, g.Features.Cols)
		for v := 0; v < total; v++ {
			copy(f.Row(v), g.Features.Row(int(origin[v])))
		}
		sg.Features = f
	}
	sg.NumClasses = g.NumClasses

	origOut := make([]int32, total)
	for v := 0; v < total; v++ {
		origOut[v] = int32(g.OutDegree(origin[v]))
	}
	return &ShadowGraph{G: sg, Origin: origin, NumOriginal: n, Mirrors: total - n, OrigOutDeg: origOut}
}

// IdentityShadow wraps g without any rewriting (the strategy disabled).
func IdentityShadow(g *graph.Graph) *ShadowGraph {
	origin := make([]int32, g.NumNodes)
	origOut := make([]int32, g.NumNodes)
	for v := range origin {
		origin[v] = int32(v)
		origOut[v] = int32(g.OutDegree(int32(v)))
	}
	return &ShadowGraph{G: g, Origin: origin, NumOriginal: g.NumNodes, OrigOutDeg: origOut}
}
