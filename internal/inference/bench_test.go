package inference

import (
	"testing"

	"inferturbo/internal/datagen"
	"inferturbo/internal/gas"
	"inferturbo/internal/tensor"
)

func benchSetup(b *testing.B, skew datagen.Skew) (*gas.Model, *datagen.Dataset) {
	b.Helper()
	ds := datagen.Generate(datagen.Config{
		Name: "bench", Nodes: 3000, AvgDegree: 8, Skew: skew, Exponent: 1.8,
		FeatureDim: 32, NumClasses: 4, Seed: 1,
	})
	m := gas.NewSAGEModel("bench", gas.TaskSingleLabel, 32, 32, 4, 2, 0, tensor.NewRNG(2))
	return m, ds
}

// Backend comparison: the trade-off the paper's Table III quantifies.
// BenchmarkBackendPregel runs the default columnar message plane;
// BenchmarkBackendPregelBoxed pins the legacy per-message object plane so
// the plane delta stays visible superstep over superstep.
func BenchmarkBackendPregel(b *testing.B) {
	m, ds := benchSetup(b, datagen.SkewIn)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunPregel(m, ds.Graph, Options{NumWorkers: 8, PartialGather: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBackendPregelBoxed(b *testing.B) {
	m, ds := benchSetup(b, datagen.SkewIn)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunPregel(m, ds.Graph, Options{NumWorkers: 8, PartialGather: true, BoxedMessages: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBackendMapReduce(b *testing.B) {
	m, ds := benchSetup(b, datagen.SkewIn)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunMapReduce(m, ds.Graph, Options{NumWorkers: 8, PartialGather: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// Strategy ablations on a skewed graph: each strategy toggled alone.
func BenchmarkStrategyNone(b *testing.B) {
	m, ds := benchSetup(b, datagen.SkewOut)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunPregel(m, ds.Graph, Options{NumWorkers: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStrategyPartialGather(b *testing.B) {
	m, ds := benchSetup(b, datagen.SkewOut)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunPregel(m, ds.Graph, Options{NumWorkers: 8, PartialGather: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStrategyBroadcast(b *testing.B) {
	m, ds := benchSetup(b, datagen.SkewOut)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunPregel(m, ds.Graph, Options{NumWorkers: 8, Broadcast: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStrategyShadowNodes(b *testing.B) {
	m, ds := benchSetup(b, datagen.SkewOut)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunPregel(m, ds.Graph, Options{NumWorkers: 8, ShadowNodes: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShadowGraphBuild(b *testing.B) {
	_, ds := benchSetup(b, datagen.SkewOut)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildShadowGraph(ds.Graph, 20)
	}
}

func BenchmarkReferenceForward(b *testing.B) {
	m, ds := benchSetup(b, datagen.SkewIn)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ReferenceForward(m, ds.Graph)
	}
}
