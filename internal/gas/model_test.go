package gas

import (
	"bytes"
	"strings"
	"testing"

	"inferturbo/internal/tensor"
)

func TestSAGEModelShapes(t *testing.T) {
	rng := tensor.NewRNG(1)
	m := NewSAGEModel("m", TaskSingleLabel, 8, 16, 5, 3, 0, rng)
	if m.NumLayers() != 3 || m.InDim() != 8 {
		t.Fatalf("layers=%d in=%d", m.NumLayers(), m.InDim())
	}
	ctx := testCtx(8, 0, 2)
	logits := m.Infer(ctx)
	if logits.Rows != 4 || logits.Cols != 5 {
		t.Fatalf("logits = %dx%d", logits.Rows, logits.Cols)
	}
}

func TestGATModelShapes(t *testing.T) {
	rng := tensor.NewRNG(3)
	m := NewGATModel("m", TaskSingleLabel, 8, 4, 2, 5, 2, rng)
	ctx := testCtx(8, 0, 4)
	logits := m.Infer(ctx)
	if logits.Cols != 5 {
		t.Fatalf("logits cols = %d, want numClasses", logits.Cols)
	}
	// Hidden layer concats heads; output averages them.
	if m.Layers[0].OutDim() != 8 || m.Layers[1].OutDim() != 5 {
		t.Fatalf("layer dims = %d, %d", m.Layers[0].OutDim(), m.Layers[1].OutDim())
	}
}

func TestModelForwardMatchesInfer(t *testing.T) {
	rng := tensor.NewRNG(5)
	m := NewSAGEModel("m", TaskSingleLabel, 6, 8, 3, 2, 0, rng)
	ctx := testCtx(6, 0, 6)
	if !m.Forward(ctx).AllClose(m.Infer(ctx), 1e-6) {
		t.Fatal("Forward and Infer must agree")
	}
}

func TestModelBackwardRuns(t *testing.T) {
	rng := tensor.NewRNG(7)
	m := NewGATModel("m", TaskSingleLabel, 6, 4, 2, 3, 2, rng)
	ctx := testCtx(6, 0, 8)
	logits := m.Forward(ctx)
	d := tensor.New(logits.Rows, logits.Cols)
	d.Fill(1)
	dIn := m.Backward(d)
	if dIn.Rows != 4 || dIn.Cols != 6 {
		t.Fatalf("dIn = %dx%d", dIn.Rows, dIn.Cols)
	}
	// Gradients must have accumulated somewhere.
	var any bool
	for _, p := range m.Params() {
		for _, g := range p.Grad.Data {
			if g != 0 {
				any = true
			}
		}
	}
	if !any {
		t.Fatal("no gradients accumulated")
	}
}

func TestPredictSingleLabel(t *testing.T) {
	m := &Model{Task: TaskSingleLabel, NumClasses: 3}
	classes, bin := m.Predict(tensor.FromRows([][]float32{{0, 2, 1}, {5, 0, 0}}))
	if bin != nil || classes[0] != 1 || classes[1] != 0 {
		t.Fatalf("predict = %v", classes)
	}
}

func TestPredictMultiLabel(t *testing.T) {
	m := &Model{Task: TaskMultiLabel, NumClasses: 3}
	classes, bin := m.Predict(tensor.FromRows([][]float32{{0.5, -0.5, 0.1}}))
	if classes != nil {
		t.Fatal("multi-label must not return class ids")
	}
	want := []float32{1, 0, 1}
	for j, w := range want {
		if bin.At(0, j) != w {
			t.Fatalf("bin = %v", bin.Row(0))
		}
	}
}

func TestSignatureRoundTripSAGE(t *testing.T) {
	rng := tensor.NewRNG(9)
	m := NewSAGEModel("sage-rt", TaskSingleLabel, 6, 8, 3, 2, 0, rng)
	ctx := testCtx(6, 0, 10)
	want := m.Infer(ctx)

	var buf bytes.Buffer
	if err := Save(m, &buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Name != "sage-rt" || m2.Task != TaskSingleLabel || m2.NumClasses != 3 {
		t.Fatal("metadata lost in round trip")
	}
	if !m2.Infer(ctx).Equal(want) {
		t.Fatal("loaded model must produce identical outputs")
	}
}

func TestSignatureRoundTripGAT(t *testing.T) {
	rng := tensor.NewRNG(11)
	m := NewGATModel("gat-rt", TaskMultiLabel, 5, 4, 3, 7, 2, rng)
	ctx := testCtx(5, 0, 12)
	want := m.Infer(ctx)

	var buf bytes.Buffer
	if err := Save(m, &buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Infer(ctx).Equal(want) {
		t.Fatal("loaded GAT must produce identical outputs")
	}
}

func TestSignatureContainsAnnotations(t *testing.T) {
	rng := tensor.NewRNG(13)
	m := &Model{Name: "mix", Task: TaskSingleLabel, NumClasses: 2, Layers: []Conv{
		NewSAGEConv(SAGEConfig{InDim: 4, OutDim: 4, Reduce: ReduceMean, Activation: ActReLU}, rng),
		NewGATConv(GATConfig{InDim: 4, Heads: 1, HeadDim: 2}, rng),
	}}
	var buf bytes.Buffer
	if err := Save(m, &buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		`"partial_gather":true`, `"partial_gather":false`,
		`"broadcast_safe":true`, `"reduce":"mean"`, `"reduce":"union"`,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("signature missing %s in %s", want, s)
		}
	}
}

func TestLoadRejectsBadVersion(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"version":999,"layers":[]}`)); err == nil {
		t.Fatal("must reject unknown version")
	}
}

func TestLoadRejectsUnknownLayerType(t *testing.T) {
	in := `{"version":1,"name":"x","task":"single","num_classes":2,
	  "layers":[{"type":"wat","reduce":"mean","in_dim":2,"out_dim":2,"params":{}}]}`
	if _, err := Load(strings.NewReader(in)); err == nil {
		t.Fatal("must reject unknown layer type")
	}
}

func TestLoadRejectsMissingParam(t *testing.T) {
	rng := tensor.NewRNG(15)
	m := NewSAGEModel("m", TaskSingleLabel, 2, 2, 2, 1, 0, rng)
	var buf bytes.Buffer
	if err := Save(m, &buf); err != nil {
		t.Fatal(err)
	}
	s := strings.Replace(buf.String(), "sage.self.W", "sage.wrong.W", 1)
	if _, err := Load(strings.NewReader(s)); err == nil {
		t.Fatal("must reject missing parameter")
	}
}

func TestLoadRejectsInconsistentAnnotation(t *testing.T) {
	rng := tensor.NewRNG(17)
	m := NewSAGEModel("m", TaskSingleLabel, 2, 2, 2, 1, 0, rng)
	var buf bytes.Buffer
	if err := Save(m, &buf); err != nil {
		t.Fatal(err)
	}
	s := strings.Replace(buf.String(), `"partial_gather":true`, `"partial_gather":false`, 1)
	if _, err := Load(strings.NewReader(s)); err == nil {
		t.Fatal("must reject annotation inconsistent with layer semantics")
	}
}

func TestSaveLoadFile(t *testing.T) {
	rng := tensor.NewRNG(19)
	m := NewSAGEModel("f", TaskSingleLabel, 3, 4, 2, 1, 0, rng)
	path := t.TempDir() + "/model.json"
	if err := SaveFile(m, path); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(3, 0, 20)
	if !m2.Infer(ctx).Equal(m.Infer(ctx)) {
		t.Fatal("file round trip changed outputs")
	}
}

func TestModelRejectsZeroLayers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSAGEModel("m", TaskSingleLabel, 2, 2, 2, 0, 0, tensor.NewRNG(1))
}
