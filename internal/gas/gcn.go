package gas

import (
	"fmt"
	"math"

	"inferturbo/internal/nn"
	"inferturbo/internal/tensor"
)

// MessageScaler is implemented by layers whose scatter message is a
// degree-scaled node state (GCN). The sender owns its out-edges under the
// Pregel partitioning, so it can apply the scaling before transmission; the
// scaled message is still identical on every out-edge, preserving broadcast
// safety. Both inference drivers honor this hook.
type MessageScaler interface {
	// ScaleMessage returns the wire message for a node with state h and the
	// given out-degree. Must not mutate h.
	ScaleMessage(h []float32, outDeg int) []float32
}

// MessageScalerInto is the allocation-free form of MessageScaler: the scaled
// message is written into a caller-owned buffer instead of a fresh slice,
// with values identical to ScaleMessage. Scatter hot loops that copy the
// payload onward immediately (the columnar message plane does) use it with a
// per-worker scratch row, so degree scaling costs zero allocations per node.
type MessageScalerInto interface {
	MessageScaler
	// ScaleMessageInto writes the wire message for a node with state h and
	// the given out-degree into dst (len(h) long). Must not mutate h.
	ScaleMessageInto(dst, h []float32, outDeg int)
}

// GCNConv is a graph convolution layer with symmetric degree normalization
// in the GAS abstraction:
//
//	scatter message: h_u / √(1+outdeg(u))       (sender-side scaling)
//	aggregate:       sum (partial-gather legal)
//	apply_node:      act(W_n·(Σ msg)/√(1+indeg(v)) + W_s·h_v)
//
// This is the directed-graph form of GCN's D^-1/2 A D^-1/2 propagation with
// a separate root weight (no explicit self-loop edge), which keeps the
// distributed data flow identical to the other pooled layers.
type GCNConv struct {
	SelfLin *nn.Linear
	NbrLin  *nn.Linear

	inDim, outDim int
	activation    string

	cacheCtx    *Context
	cacheOutSc  []float32 // per-node 1/√(1+outdeg)
	cacheInSc   []float32 // per-node 1/√(1+indeg)
	cachePreAct *tensor.Matrix
}

// GCNConfig parameterizes a GCNConv.
type GCNConfig struct {
	InDim, OutDim int
	Activation    string
}

// NewGCNConv builds a GCNConv with Xavier-initialized weights.
func NewGCNConv(cfg GCNConfig, rng *tensor.RNG) *GCNConv {
	if cfg.InDim <= 0 || cfg.OutDim <= 0 {
		panic(fmt.Sprintf("gas: bad GCN dims %d->%d", cfg.InDim, cfg.OutDim))
	}
	return &GCNConv{
		SelfLin:    nn.NewLinear("gcn.self", cfg.InDim, cfg.OutDim, rng),
		NbrLin:     nn.NewLinear("gcn.nbr", cfg.InDim, cfg.OutDim, rng),
		inDim:      cfg.InDim,
		outDim:     cfg.OutDim,
		activation: cfg.Activation,
	}
}

// Type implements Conv.
func (c *GCNConv) Type() string { return "gcn" }

// Reduce implements Conv.
func (c *GCNConv) Reduce() ReduceKind { return ReduceSum }

// BroadcastSafe implements Conv: the scaled message is per-node, not
// per-edge.
func (c *GCNConv) BroadcastSafe() bool { return true }

// InDim implements Conv.
func (c *GCNConv) InDim() int { return c.inDim }

// OutDim implements Conv.
func (c *GCNConv) OutDim() int { return c.outDim }

// Activation returns the activation annotation.
func (c *GCNConv) Activation() string { return c.activation }

// ScaleMessage implements MessageScaler.
func (c *GCNConv) ScaleMessage(h []float32, outDeg int) []float32 {
	out := make([]float32, len(h))
	c.ScaleMessageInto(out, h, outDeg)
	return out
}

// ScaleMessageInto implements MessageScalerInto.
func (c *GCNConv) ScaleMessageInto(dst, h []float32, outDeg int) {
	s := float32(1 / math.Sqrt(float64(1+outDeg)))
	for i, v := range h {
		dst[i] = v * s
	}
}

// ApplyEdge implements Conv: identity (scaling happened at the sender).
func (c *GCNConv) ApplyEdge(msg, _ *tensor.Matrix) *tensor.Matrix { return msg }

// ApplyNode implements Conv: normalize the summed messages by the receiver
// degree (aggr.Counts carries it, surviving partial-gather merges exactly)
// and combine with the root term.
func (c *GCNConv) ApplyNode(nodeState *tensor.Matrix, aggr *Aggregated) *tensor.Matrix {
	norm := aggr.Pooled.Clone()
	scaleRowsByCount(norm, aggr.Counts)
	pre := tensor.Add(c.SelfLin.Apply(nodeState), c.NbrLin.Apply(norm))
	return applyActivation(c.activation, pre)
}

// ApplyNodePooled implements PooledApplier: identical values to ApplyNode
// with the normalized aggregate and both linear outputs recycled through p.
func (c *GCNConv) ApplyNodePooled(nodeState *tensor.Matrix, aggr *Aggregated, p *tensor.Pool) *tensor.Matrix {
	norm := p.GetNoZero(aggr.Pooled.Rows, aggr.Pooled.Cols)
	copy(norm.Data, aggr.Pooled.Data)
	scaleRowsByCount(norm, aggr.Counts)
	pre := c.SelfLin.ApplyPooled(p, nodeState)
	nbr := c.NbrLin.ApplyPooled(p, norm)
	tensor.AddInPlace(pre, nbr)
	p.Put(nbr)
	p.Put(norm)
	return applyActivationInPlace(c.activation, pre)
}

func scaleRowsByCount(m *tensor.Matrix, counts []int32) {
	for i := 0; i < m.Rows; i++ {
		s := float32(1 / math.Sqrt(float64(1+counts[i])))
		row := m.Row(i)
		for j := range row {
			row[j] *= s
		}
	}
}

// Infer implements Conv. GCN overrides the generic data flow to apply the
// sender-side scaling locally (it derives out-degrees from the context),
// then runs the fused scatter_and_gather kernel — the scaled message is
// identical on every out-edge, so no E×D materialization is needed.
func (c *GCNConv) Infer(ctx *Context) *tensor.Matrix {
	scaled := c.scaleAll(ctx)
	aggr := FusedScatterGather(ReduceSum, scaled, ctx.SrcIndex, ctx.DstIndex, ctx.NumNodes)
	scratch.Put(scaled)
	out := ApplyNodePooled(c, ctx.NodeState, aggr, scratch)
	scratch.Put(aggr.Pooled)
	return out
}

// scaleAll returns node states scaled by 1/√(1+outdeg), with out-degrees
// counted from the context's edges. The result comes from the package pool
// (every element is overwritten); callers Put it back once the gather has
// consumed it.
func (c *GCNConv) scaleAll(ctx *Context) *tensor.Matrix {
	outDeg := tensor.SegmentCount(ctx.SrcIndex, ctx.NumNodes)
	scaled := scratch.GetNoZero(ctx.NumNodes, ctx.NodeState.Cols)
	for v := 0; v < ctx.NumNodes; v++ {
		s := float32(1 / math.Sqrt(float64(1+outDeg[v])))
		src := ctx.NodeState.Row(v)
		dst := scaled.Row(v)
		for j, x := range src {
			dst[j] = x * s
		}
	}
	return scaled
}

// Forward implements Conv, caching intermediates for Backward.
func (c *GCNConv) Forward(ctx *Context) *tensor.Matrix {
	c.cacheCtx = ctx
	outDeg := tensor.SegmentCount(ctx.SrcIndex, ctx.NumNodes)
	inDeg := tensor.SegmentCount(ctx.DstIndex, ctx.NumNodes)
	c.cacheOutSc = make([]float32, ctx.NumNodes)
	c.cacheInSc = make([]float32, ctx.NumNodes)
	for v := 0; v < ctx.NumNodes; v++ {
		c.cacheOutSc[v] = float32(1 / math.Sqrt(float64(1+outDeg[v])))
		c.cacheInSc[v] = float32(1 / math.Sqrt(float64(1+inDeg[v])))
	}
	scaled := c.scaleAll(ctx)
	msg := tensor.GatherRows(scaled, ctx.SrcIndex)
	scratch.Put(scaled) // pooled by scaleAll; dead once gathered
	sum := tensor.SegmentSum(msg, ctx.DstIndex, ctx.NumNodes)
	norm := sum
	for v := 0; v < ctx.NumNodes; v++ {
		row := norm.Row(v)
		for j := range row {
			row[j] *= c.cacheInSc[v]
		}
	}
	pre := tensor.Add(c.SelfLin.Forward(ctx.NodeState), c.NbrLin.Forward(norm))
	c.cachePreAct = pre
	return applyActivation(c.activation, pre)
}

// Backward implements Conv.
func (c *GCNConv) Backward(dOut *tensor.Matrix) *tensor.Matrix {
	if c.cacheCtx == nil {
		panic("gas: GCNConv.Backward before Forward")
	}
	ctx := c.cacheCtx
	dPre := activationBackward(c.activation, dOut, c.cachePreAct)
	dNode := c.SelfLin.Backward(dPre)
	dNorm := c.NbrLin.Backward(dPre)
	// Undo the receiver normalization, then the edge sum, then the sender
	// scaling — all diagonal, so gradients are the same row scalings.
	dSum := dNorm.Clone()
	for v := 0; v < ctx.NumNodes; v++ {
		row := dSum.Row(v)
		for j := range row {
			row[j] *= c.cacheInSc[v]
		}
	}
	dMsg := tensor.SegmentSumBackward(dSum, ctx.DstIndex)
	dScaled := tensor.New(ctx.NumNodes, c.inDim)
	tensor.ScatterAddRows(dScaled, dMsg, ctx.SrcIndex)
	for v := 0; v < ctx.NumNodes; v++ {
		row := dScaled.Row(v)
		drow := dNode.Row(v)
		for j := range row {
			drow[j] += row[j] * c.cacheOutSc[v]
		}
	}
	return dNode
}

// Params implements Conv.
func (c *GCNConv) Params() []*nn.Param {
	return append(c.SelfLin.Params(), c.NbrLin.Params()...)
}

// NewGCNModel builds a hops-deep GCN model with ReLU hidden layers and a
// linear-output layer producing class logits.
func NewGCNModel(name string, task Task, inDim, hidden, numClasses, hops int, rng *tensor.RNG) *Model {
	if hops < 1 {
		panic(fmt.Sprintf("gas: model needs >=1 layer, got %d", hops))
	}
	m := &Model{Name: name, Task: task, NumClasses: numClasses}
	for i := 0; i < hops; i++ {
		in, out, act := hidden, hidden, ActReLU
		if i == 0 {
			in = inDim
		}
		if i == hops-1 {
			out, act = numClasses, ActNone
		}
		m.Layers = append(m.Layers, NewGCNConv(GCNConfig{InDim: in, OutDim: out, Activation: act}, rng))
	}
	return m
}
