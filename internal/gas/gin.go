package gas

import (
	"fmt"

	"inferturbo/internal/nn"
	"inferturbo/internal/tensor"
)

// GINConv is the Graph Isomorphism Network layer (Xu et al., 2019) in the
// GAS abstraction — the most expressive of the sum-aggregating layers and a
// natural extension beyond the paper's SAGE/GAT pair:
//
//	aggregate:  sum of neighbor states (commutative/associative ⇒
//	            partial-gather legal)
//	apply_edge: identity (⇒ broadcast-safe)
//	apply_node: MLP((1+ε)·h + Σ msgs) with a two-layer MLP
type GINConv struct {
	Lin1 *nn.Linear
	Lin2 *nn.Linear
	Eps  *nn.Param // 1x1 learnable ε

	inDim, hidden, outDim int
	activation            string

	cacheCtx    *Context
	cacheAggr   *Aggregated
	cacheSum    *tensor.Matrix // (1+ε)h + Σ msgs
	cacheHidden *tensor.Matrix // pre-ReLU hidden
	cachePreAct *tensor.Matrix
}

// GINConfig parameterizes a GINConv. Hidden is the MLP's inner width
// (defaults to OutDim when zero).
type GINConfig struct {
	InDim, Hidden, OutDim int
	Activation            string
}

// NewGINConv builds a GINConv with Xavier-initialized weights and ε = 0.
func NewGINConv(cfg GINConfig, rng *tensor.RNG) *GINConv {
	if cfg.Hidden == 0 {
		cfg.Hidden = cfg.OutDim
	}
	if cfg.InDim <= 0 || cfg.OutDim <= 0 || cfg.Hidden <= 0 {
		panic(fmt.Sprintf("gas: bad GIN dims %+v", cfg))
	}
	return &GINConv{
		Lin1:       nn.NewLinear("gin.lin1", cfg.InDim, cfg.Hidden, rng),
		Lin2:       nn.NewLinear("gin.lin2", cfg.Hidden, cfg.OutDim, rng),
		Eps:        nn.NewParam("gin.eps", 1, 1),
		inDim:      cfg.InDim,
		hidden:     cfg.Hidden,
		outDim:     cfg.OutDim,
		activation: cfg.Activation,
	}
}

// Type implements Conv.
func (c *GINConv) Type() string { return "gin" }

// Reduce implements Conv.
func (c *GINConv) Reduce() ReduceKind { return ReduceSum }

// BroadcastSafe implements Conv: messages are raw node states.
func (c *GINConv) BroadcastSafe() bool { return true }

// InDim implements Conv.
func (c *GINConv) InDim() int { return c.inDim }

// OutDim implements Conv.
func (c *GINConv) OutDim() int { return c.outDim }

// Hidden returns the MLP inner width.
func (c *GINConv) Hidden() int { return c.hidden }

// Activation returns the activation annotation.
func (c *GINConv) Activation() string { return c.activation }

// ApplyEdge implements Conv: identity.
func (c *GINConv) ApplyEdge(msg, _ *tensor.Matrix) *tensor.Matrix { return msg }

// ApplyNode implements Conv: MLP((1+ε)h + Σ msgs).
func (c *GINConv) ApplyNode(nodeState *tensor.Matrix, aggr *Aggregated) *tensor.Matrix {
	sum := tensor.Add(nodeState.Scale(1+c.Eps.Value.Data[0]), aggr.Pooled)
	return applyActivation(c.activation, c.Lin2.Apply(tensor.ReLU(c.Lin1.Apply(sum))))
}

// ApplyNodePooled implements PooledApplier: identical values to ApplyNode
// with the MLP intermediates recycled through p.
func (c *GINConv) ApplyNodePooled(nodeState *tensor.Matrix, aggr *Aggregated, p *tensor.Pool) *tensor.Matrix {
	eps := 1 + c.Eps.Value.Data[0]
	sum := p.GetNoZero(nodeState.Rows, nodeState.Cols)
	for i, v := range nodeState.Data {
		sum.Data[i] = v*eps + aggr.Pooled.Data[i]
	}
	hidden := c.Lin1.ApplyPooled(p, sum)
	p.Put(sum)
	tensor.ReLUInPlace(hidden)
	out := c.Lin2.ApplyPooled(p, hidden)
	p.Put(hidden)
	return applyActivationInPlace(c.activation, out)
}

// Infer implements Conv.
func (c *GINConv) Infer(ctx *Context) *tensor.Matrix { return InferLayer(c, ctx) }

// Forward implements Conv, caching intermediates for Backward.
func (c *GINConv) Forward(ctx *Context) *tensor.Matrix {
	c.cacheCtx = ctx
	msg := tensor.GatherRows(ctx.NodeState, ctx.SrcIndex)
	c.cacheAggr = Gather(ReduceSum, msg, ctx.DstIndex, ctx.NumNodes)
	sum := tensor.Add(ctx.NodeState.Scale(1+c.Eps.Value.Data[0]), c.cacheAggr.Pooled)
	c.cacheSum = sum
	hidden := c.Lin1.Forward(sum)
	c.cacheHidden = hidden
	pre := c.Lin2.Forward(tensor.ReLU(hidden))
	c.cachePreAct = pre
	return applyActivation(c.activation, pre)
}

// Backward implements Conv.
func (c *GINConv) Backward(dOut *tensor.Matrix) *tensor.Matrix {
	if c.cacheCtx == nil {
		panic("gas: GINConv.Backward before Forward")
	}
	ctx := c.cacheCtx
	dPre := activationBackward(c.activation, dOut, c.cachePreAct)
	dReLU := c.Lin2.Backward(dPre)
	dHidden := tensor.ReLUBackward(dReLU, c.cacheHidden)
	dSum := c.Lin1.Backward(dHidden)

	// d/dε of (1+ε)h = h, summed against dSum.
	var dEps float64
	for i, v := range ctx.NodeState.Data {
		dEps += float64(v) * float64(dSum.Data[i])
	}
	c.Eps.Grad.Data[0] += float32(dEps)

	// Self path: (1+ε)·dSum; neighbor path: scatter dSum back along edges.
	dNode := dSum.Scale(1 + c.Eps.Value.Data[0])
	dMsg := tensor.SegmentSumBackward(dSum, ctx.DstIndex)
	tensor.ScatterAddRows(dNode, dMsg, ctx.SrcIndex)
	return dNode
}

// Params implements Conv.
func (c *GINConv) Params() []*nn.Param {
	ps := append(c.Lin1.Params(), c.Lin2.Params()...)
	return append(ps, c.Eps)
}

// NewGINModel builds a hops-deep GIN model: hidden GIN layers with ReLU and
// a linear-output GIN layer producing class logits.
func NewGINModel(name string, task Task, inDim, hidden, numClasses, hops int, rng *tensor.RNG) *Model {
	if hops < 1 {
		panic(fmt.Sprintf("gas: model needs >=1 layer, got %d", hops))
	}
	m := &Model{Name: name, Task: task, NumClasses: numClasses}
	for i := 0; i < hops; i++ {
		in, out, act := hidden, hidden, ActReLU
		if i == 0 {
			in = inDim
		}
		if i == hops-1 {
			out, act = numClasses, ActNone
		}
		m.Layers = append(m.Layers, NewGINConv(GINConfig{
			InDim: in, Hidden: hidden, OutDim: out, Activation: act,
		}, rng))
	}
	return m
}
