package gas

import (
	"testing"

	"inferturbo/internal/tensor"
)

// benchCtx builds a random context with n nodes and e edges.
func benchCtx(n, e, dim int, seed int64) *Context {
	rng := tensor.NewRNG(seed)
	state := tensor.New(n, dim)
	rng.Uniform(state, -1, 1)
	src := make([]int32, e)
	dst := make([]int32, e)
	for i := range src {
		src[i] = int32(rng.Intn(n))
		dst[i] = int32(rng.Intn(n))
	}
	return &Context{NodeState: state, SrcIndex: src, DstIndex: dst, NumNodes: n}
}

func TestFusedScatterGatherMatchesDefault(t *testing.T) {
	ctx := benchCtx(200, 1500, 16, 1)
	for _, kind := range []ReduceKind{ReduceSum, ReduceMean} {
		msg := tensor.GatherRows(ctx.NodeState, ctx.SrcIndex)
		want := Gather(kind, msg, ctx.DstIndex, ctx.NumNodes)
		got := FusedScatterGather(kind, ctx.NodeState, ctx.SrcIndex, ctx.DstIndex, ctx.NumNodes)
		if !got.Pooled.AllClose(want.Pooled, 1e-5) {
			t.Fatalf("fused %v diverges from default path", kind)
		}
	}
}

func TestFusedScatterGatherRejectsUnion(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FusedScatterGather(ReduceUnion, tensor.New(1, 1), nil, nil, 1)
}

// Ablation: fused scatter_and_gather vs explicit edge materialization —
// the design choice the paper's GraphSAGE training example makes.
func BenchmarkScatterGatherDefault(b *testing.B) {
	ctx := benchCtx(5000, 50000, 64, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		msg := tensor.GatherRows(ctx.NodeState, ctx.SrcIndex)
		Gather(ReduceMean, msg, ctx.DstIndex, ctx.NumNodes)
	}
}

func BenchmarkScatterGatherFused(b *testing.B) {
	ctx := benchCtx(5000, 50000, 64, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FusedScatterGather(ReduceMean, ctx.NodeState, ctx.SrcIndex, ctx.DstIndex, ctx.NumNodes)
	}
}

func BenchmarkSAGELayerInfer(b *testing.B) {
	rng := tensor.NewRNG(3)
	c := NewSAGEConv(SAGEConfig{InDim: 64, OutDim: 64, Reduce: ReduceMean, Activation: ActReLU}, rng)
	ctx := benchCtx(2000, 20000, 64, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Infer(ctx)
	}
}

func BenchmarkGATLayerInfer(b *testing.B) {
	rng := tensor.NewRNG(5)
	c := NewGATConv(GATConfig{InDim: 64, Heads: 2, HeadDim: 32, ConcatHeads: true}, rng)
	ctx := benchCtx(2000, 20000, 64, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Infer(ctx)
	}
}

func BenchmarkSAGETrainStep(b *testing.B) {
	rng := tensor.NewRNG(7)
	c := NewSAGEConv(SAGEConfig{InDim: 64, OutDim: 64, Reduce: ReduceMean, Activation: ActReLU}, rng)
	ctx := benchCtx(1000, 10000, 64, 8)
	dOut := tensor.New(1000, 64)
	dOut.Fill(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Forward(ctx)
		c.Backward(dOut)
	}
}
