// Package gas implements the paper's core contribution: a GAS-like
// (Gather-Apply-Scatter) abstraction for GNN layers that unifies mini-batch
// training and full-graph inference.
//
// A layer is described by five stages. Two are data flow and built in:
//
//	scatter_nbrs — a node's state is sent along its out-edges
//	gather_nbrs  — a node receives messages via its in-edges
//
// Three are computation flow and supplied by each convolution:
//
//	apply_edge — transform the per-edge message with edge features
//	aggregate  — reduce incoming messages; must be commutative+associative
//	             (sum/mean/max/min) or declared Union and deferred
//	apply_node — combine own state with the aggregate into the new state
//
// The reduce kind is the paper's annotation: a non-Union reduce is eligible
// for the partial-gather (combiner-side) optimization, and an identity
// apply_edge makes the layer broadcast-safe (every out-edge carries the same
// message). Both backends in internal/inference consume exactly this
// interface, and internal/train drives the same interface with backprop.
package gas

import (
	"fmt"

	"inferturbo/internal/nn"
	"inferturbo/internal/tensor"
)

// ReduceKind is the aggregation annotation of a layer's gather stage.
type ReduceKind int

const (
	// ReduceSum adds messages per destination.
	ReduceSum ReduceKind = iota
	// ReduceMean averages messages per destination. Distributed partials
	// carry (sum, count) pairs so merging stays exact.
	ReduceMean
	// ReduceMax takes the elementwise max per destination.
	ReduceMax
	// ReduceMin takes the elementwise min per destination.
	ReduceMin
	// ReduceUnion performs no reduction: apply_node receives the raw
	// messages and destination indices (the GAT case). Union layers cannot
	// use partial-gather.
	ReduceUnion
)

// String returns the annotation name used in signature files.
func (k ReduceKind) String() string {
	switch k {
	case ReduceSum:
		return "sum"
	case ReduceMean:
		return "mean"
	case ReduceMax:
		return "max"
	case ReduceMin:
		return "min"
	case ReduceUnion:
		return "union"
	default:
		return fmt.Sprintf("reduce(%d)", int(k))
	}
}

// ParseReduceKind inverts String.
func ParseReduceKind(s string) (ReduceKind, error) {
	switch s {
	case "sum":
		return ReduceSum, nil
	case "mean":
		return ReduceMean, nil
	case "max":
		return ReduceMax, nil
	case "min":
		return ReduceMin, nil
	case "union":
		return ReduceUnion, nil
	}
	return 0, fmt.Errorf("gas: unknown reduce kind %q", s)
}

// Commutative reports whether the reduce obeys the commutative/associative
// laws the paper requires for sender-side (partial) aggregation.
func (k ReduceKind) Commutative() bool { return k != ReduceUnion }

// Context carries the local tensors a layer forward operates on: the current
// node states plus the edge structure in local indices. It is produced
// either from a k-hop subgraph (training) or from a worker's received
// messages (inference).
type Context struct {
	NodeState *tensor.Matrix // N x D current states (h^k)
	SrcIndex  []int32        // E source local ids
	DstIndex  []int32        // E destination local ids
	EdgeState *tensor.Matrix // E x De edge features, or nil
	NumNodes  int
}

// Validate checks index bounds; used by tests and the inference drivers.
func (c *Context) Validate() error {
	if c.NodeState != nil && c.NodeState.Rows != c.NumNodes {
		return fmt.Errorf("gas: %d state rows for %d nodes", c.NodeState.Rows, c.NumNodes)
	}
	if len(c.SrcIndex) != len(c.DstIndex) {
		return fmt.Errorf("gas: %d src vs %d dst indices", len(c.SrcIndex), len(c.DstIndex))
	}
	for i := range c.SrcIndex {
		if int(c.SrcIndex[i]) >= c.NumNodes || int(c.DstIndex[i]) >= c.NumNodes ||
			c.SrcIndex[i] < 0 || c.DstIndex[i] < 0 {
			return fmt.Errorf("gas: edge %d out of range", i)
		}
	}
	if c.EdgeState != nil && c.EdgeState.Rows != len(c.SrcIndex) {
		return fmt.Errorf("gas: %d edge-state rows for %d edges", c.EdgeState.Rows, len(c.SrcIndex))
	}
	return nil
}

// Aggregated is the output of the gather stage. For pooled reduces, Pooled
// is N x D (plus Counts for mean); for Union, Messages and Dst carry the raw
// edge-level data.
type Aggregated struct {
	Kind     ReduceKind
	Pooled   *tensor.Matrix
	Counts   []int32
	Messages *tensor.Matrix
	Dst      []int32
}

// Gather performs the built-in gather/aggregate stage over edge messages.
func Gather(kind ReduceKind, messages *tensor.Matrix, dst []int32, numNodes int) *Aggregated {
	a := &Aggregated{Kind: kind}
	switch kind {
	case ReduceSum:
		a.Pooled = tensor.SegmentSum(messages, dst, numNodes)
		a.Counts = tensor.SegmentCount(dst, numNodes) // receiver in-degree (GCN normalization)
	case ReduceMean:
		a.Pooled = tensor.SegmentSum(messages, dst, numNodes)
		a.Counts = tensor.SegmentCount(dst, numNodes)
		divideByCounts(a.Pooled, a.Counts)
	case ReduceMax:
		a.Pooled = tensor.SegmentMax(messages, dst, numNodes)
	case ReduceMin:
		a.Pooled = tensor.SegmentMin(messages, dst, numNodes)
	case ReduceUnion:
		a.Messages = messages
		a.Dst = dst
	default:
		panic("gas: unknown reduce kind")
	}
	return a
}

func divideByCounts(m *tensor.Matrix, counts []int32) {
	for i := 0; i < m.Rows; i++ {
		if counts[i] == 0 {
			continue
		}
		inv := 1 / float32(counts[i])
		row := m.Row(i)
		for j := range row {
			row[j] *= inv
		}
	}
}

// Conv is one GNN layer in the GAS abstraction. Forward/Backward are the
// training path (Forward caches intermediates); Infer is the stateless
// full-graph path shared by both inference backends.
type Conv interface {
	// Type identifies the layer in signature files ("sage", "gat").
	Type() string
	// Reduce is the aggregate annotation.
	Reduce() ReduceKind
	// BroadcastSafe reports whether every out-edge of a node carries an
	// identical message, enabling the broadcast strategy. Contract: a
	// BroadcastSafe layer's ApplyEdge must be the identity on its message
	// input — not merely edge-state-independent. The whole stack relies on
	// this: both drivers' scatter sends the raw state without calling
	// ApplyEdge for broadcast-safe layers, and InferLayer's fused
	// scatter_and_gather path skips ApplyEdge entirely. A layer that
	// transforms its message uniformly per out-edge must return false.
	BroadcastSafe() bool
	// InDim / OutDim are the node-state dimensions consumed and produced.
	InDim() int
	OutDim() int
	// ApplyEdge transforms per-edge messages (rows = gathered src states)
	// using edge features; must not mutate its inputs.
	ApplyEdge(msg, edgeState *tensor.Matrix) *tensor.Matrix
	// ApplyNode combines previous node states with the aggregate.
	ApplyNode(nodeState *tensor.Matrix, aggr *Aggregated) *tensor.Matrix
	// Infer runs scatter→apply_edge→gather→apply_node without caching.
	Infer(ctx *Context) *tensor.Matrix
	// Forward is Infer plus caching for Backward.
	Forward(ctx *Context) *tensor.Matrix
	// Backward consumes d(out) and returns d(nodeState), accumulating
	// parameter gradients.
	Backward(dOut *tensor.Matrix) *tensor.Matrix
	// Params exposes trainable parameters.
	Params() []*nn.Param
}

// scratch is the package buffer pool backing the full-graph inference path
// (InferLayer / Model.Infer). Per-vertex driver loops in internal/inference
// use their own per-worker pools instead, so this one only sees the
// layer-granularity reference path and stays uncontended.
var scratch = tensor.NewPool()

// PooledApplier is implemented by convs whose apply_node can run with its
// intermediates (and its result) drawn from a buffer pool. The returned
// matrix belongs to the caller, who may Put it back once consumed; values
// are identical to ApplyNode.
type PooledApplier interface {
	ApplyNodePooled(nodeState *tensor.Matrix, aggr *Aggregated, p *tensor.Pool) *tensor.Matrix
}

// ApplyNodePooled dispatches to the conv's pooled apply_node when it
// implements PooledApplier, falling back to the allocating path.
func ApplyNodePooled(c Conv, nodeState *tensor.Matrix, aggr *Aggregated, p *tensor.Pool) *tensor.Matrix {
	if pa, ok := c.(PooledApplier); ok && p != nil {
		return pa.ApplyNodePooled(nodeState, aggr, p)
	}
	return c.ApplyNode(nodeState, aggr)
}

// PooledEdgeApplier is implemented by convs whose apply_edge can draw its
// result from a buffer pool — the per-out-edge hot path of the inference
// drivers' scatter for edge-featured models. The returned matrix belongs
// to the caller (Put it back once consumed) unless it is msg itself: an
// identity apply_edge returns its input, which the caller must not recycle.
type PooledEdgeApplier interface {
	ApplyEdgePooled(msg, edgeState *tensor.Matrix, p *tensor.Pool) *tensor.Matrix
}

// ApplyEdgePooled dispatches to the conv's pooled apply_edge when it
// implements PooledEdgeApplier, falling back to the allocating path.
func ApplyEdgePooled(c Conv, msg, edgeState *tensor.Matrix, p *tensor.Pool) *tensor.Matrix {
	if pa, ok := c.(PooledEdgeApplier); ok && p != nil {
		return pa.ApplyEdgePooled(msg, edgeState, p)
	}
	return c.ApplyEdge(msg, edgeState)
}

// InferLayer is the canonical stateless data flow every Conv.Infer uses:
// the default_scatter_and_gather of the paper's pseudocode. Broadcast-safe
// sum/mean layers (identity apply_edge — the annotation the paper keys the
// broadcast strategy on) take the fused scatter_and_gather path, skipping
// the E×D message matrix entirely; everything else gathers into a pooled
// buffer. Both paths accumulate in the same order as the naive loop, so
// outputs are bit-identical to it.
func InferLayer(c Conv, ctx *Context) *tensor.Matrix {
	kind := c.Reduce()
	var aggr *Aggregated
	var msg *tensor.Matrix
	if c.BroadcastSafe() && (kind == ReduceSum || kind == ReduceMean) {
		aggr = FusedScatterGather(kind, ctx.NodeState, ctx.SrcIndex, ctx.DstIndex, ctx.NumNodes)
	} else {
		msg = scratch.GetNoZero(len(ctx.SrcIndex), ctx.NodeState.Cols)
		tensor.GatherRowsInto(msg, ctx.NodeState, ctx.SrcIndex) // scatter_nbrs
		applied := c.ApplyEdge(msg, ctx.EdgeState)              // apply_edge
		aggr = Gather(kind, applied, ctx.DstIndex, ctx.NumNodes)
		if applied != msg {
			// apply_edge produced its own matrix; the gather buffer is done.
			scratch.Put(msg)
			msg = applied
		}
	}
	out := ApplyNodePooled(c, ctx.NodeState, aggr, scratch) // apply_node
	// A Union aggregate references the message matrix until apply_node has
	// consumed it, so buffers are recycled only now.
	if msg != nil {
		scratch.Put(msg)
	}
	if aggr.Pooled != nil {
		scratch.Put(aggr.Pooled)
	}
	return out
}

// FusedScatterGather is the paper's scatter_and_gather fusion (the sparse
// A@X product of the GraphSAGE example): it folds scatter_nbrs + aggregate
// into one pass without materializing the E×D edge-message matrix, via the
// parallel fused kernel in tensor. Legal only for identity apply_edge and
// sum/mean reduces; callers fall back to the default path otherwise. The
// returned Pooled buffer comes from the package pool — hot-loop callers
// (InferLayer, GCNConv.Infer) Put it back once apply_node has consumed it;
// other callers may simply let it go to the GC. The ablation bench in this
// package measures the saving.
func FusedScatterGather(kind ReduceKind, nodeState *tensor.Matrix, src, dst []int32, numNodes int) *Aggregated {
	if kind != ReduceSum && kind != ReduceMean {
		panic("gas: fusion requires a sum or mean reduce")
	}
	out := tensor.GatherSegmentSumInto(scratch.GetNoZero(numNodes, nodeState.Cols), nodeState, src, dst)
	a := &Aggregated{Kind: kind, Pooled: out, Counts: tensor.SegmentCount(dst, numNodes)}
	if kind == ReduceMean {
		divideByCounts(out, a.Counts)
	}
	return a
}

// Activation names supported by the convs.
const (
	ActNone  = "none"
	ActReLU  = "relu"
	ActLeaky = "leaky_relu"
)

func applyActivation(name string, m *tensor.Matrix) *tensor.Matrix {
	switch name {
	case ActNone, "":
		return m
	case ActReLU:
		return tensor.ReLU(m)
	case ActLeaky:
		return tensor.LeakyReLU(m, 0.2)
	default:
		panic(fmt.Sprintf("gas: unknown activation %q", name))
	}
}

// applyActivationInPlace is applyActivation operating on m's own buffer —
// values are identical, only the allocation disappears.
func applyActivationInPlace(name string, m *tensor.Matrix) *tensor.Matrix {
	switch name {
	case ActNone, "":
		return m
	case ActReLU:
		return tensor.ReLUInPlace(m)
	case ActLeaky:
		return tensor.LeakyReLUInPlace(m, 0.2)
	default:
		panic(fmt.Sprintf("gas: unknown activation %q", name))
	}
}

func activationBackward(name string, dOut, preAct *tensor.Matrix) *tensor.Matrix {
	switch name {
	case ActNone, "":
		return dOut
	case ActReLU:
		return tensor.ReLUBackward(dOut, preAct)
	case ActLeaky:
		return tensor.LeakyReLUBackward(dOut, preAct, 0.2)
	default:
		panic(fmt.Sprintf("gas: unknown activation %q", name))
	}
}
