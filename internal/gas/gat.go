package gas

import (
	"fmt"

	"inferturbo/internal/nn"
	"inferturbo/internal/tensor"
)

// GATConv is the graph attention layer in the GAS abstraction. Attention
// breaks the commutative/associative rule, so — exactly as the paper's GAT
// example annotates with @Gather(partial=False) — the gather stage is a
// Union: raw neighbor states are collected and the whole computation
// (projection, attention, weighted sum) happens in apply_node. The scatter
// message is the untransformed node state, identical on every out-edge, so
// the layer remains broadcast-safe.
type GATConv struct {
	MsgLin *nn.Linear // inDim -> Heads*HeadDim
	AttSrc *nn.Param  // Heads x HeadDim
	AttDst *nn.Param  // Heads x HeadDim

	inDim, heads, headDim int
	concatHeads           bool
	activation            string

	// Training caches.
	cacheCtx    *Context
	cacheZAll   *tensor.Matrix
	cachePre    *tensor.Matrix // E x Heads pre-LeakyReLU logits
	cacheAlpha  *tensor.Matrix // E x Heads attention weights
	cachePreAct *tensor.Matrix
}

// GATConfig parameterizes a GATConv. OutDim is Heads*HeadDim when
// ConcatHeads, else HeadDim (heads averaged — the usual output-layer form).
type GATConfig struct {
	InDim, Heads, HeadDim int
	ConcatHeads           bool
	Activation            string
}

// NewGATConv builds a GATConv with Xavier-initialized weights.
func NewGATConv(cfg GATConfig, rng *tensor.RNG) *GATConv {
	if cfg.InDim <= 0 || cfg.Heads <= 0 || cfg.HeadDim <= 0 {
		panic(fmt.Sprintf("gas: bad GAT dims %+v", cfg))
	}
	c := &GATConv{
		MsgLin:      nn.NewLinear("gat.msg", cfg.InDim, cfg.Heads*cfg.HeadDim, rng),
		AttSrc:      nn.NewParam("gat.att_src", cfg.Heads, cfg.HeadDim),
		AttDst:      nn.NewParam("gat.att_dst", cfg.Heads, cfg.HeadDim),
		inDim:       cfg.InDim,
		heads:       cfg.Heads,
		headDim:     cfg.HeadDim,
		concatHeads: cfg.ConcatHeads,
		activation:  cfg.Activation,
	}
	rng.Xavier(c.AttSrc.Value)
	rng.Xavier(c.AttDst.Value)
	return c
}

// Type implements Conv.
func (c *GATConv) Type() string { return "gat" }

// Reduce implements Conv: attention defers all computation to apply_node.
func (c *GATConv) Reduce() ReduceKind { return ReduceUnion }

// BroadcastSafe implements Conv: the message is the raw node state.
func (c *GATConv) BroadcastSafe() bool { return true }

// InDim implements Conv.
func (c *GATConv) InDim() int { return c.inDim }

// OutDim implements Conv.
func (c *GATConv) OutDim() int {
	if c.concatHeads {
		return c.heads * c.headDim
	}
	return c.headDim
}

// Heads returns the head count.
func (c *GATConv) Heads() int { return c.heads }

// HeadDim returns the per-head dimension.
func (c *GATConv) HeadDim() int { return c.headDim }

// ConcatHeads reports whether heads are concatenated (vs averaged).
func (c *GATConv) ConcatHeads() bool { return c.concatHeads }

// Activation returns the activation annotation.
func (c *GATConv) Activation() string { return c.activation }

// ApplyEdge implements Conv: identity — attention uses edge structure only.
func (c *GATConv) ApplyEdge(msg, _ *tensor.Matrix) *tensor.Matrix { return msg }

// ApplyNode implements Conv: project self and neighbor states, compute
// attention per head over in-edges, and emit the weighted combination.
func (c *GATConv) ApplyNode(nodeState *tensor.Matrix, aggr *Aggregated) *tensor.Matrix {
	if aggr.Kind != ReduceUnion {
		panic("gas: GATConv needs a union aggregate")
	}
	zAll := c.MsgLin.Apply(nodeState)
	zMsg := c.MsgLin.Apply(aggr.Messages)
	out, _, _ := c.attention(zAll, zMsg, aggr.Dst, nodeState.Rows)
	return applyActivation(c.activation, out)
}

// attention runs the multi-head attention given projected self states zAll
// (N x H*hd) and projected messages zMsg (E x H*hd), returning the
// pre-activation output plus the logits and weights for backprop.
func (c *GATConv) attention(zAll, zMsg *tensor.Matrix, dst []int32, n int) (out, pre, alpha *tensor.Matrix) {
	e := zMsg.Rows
	hd := c.headDim
	pre = tensor.New(e, c.heads)
	alpha = tensor.New(e, c.heads)

	var headOuts []*tensor.Matrix
	for k := 0; k < c.heads; k++ {
		aSrc := c.AttSrc.Value.Row(k)
		aDst := c.AttDst.Value.Row(k)
		// Per-node destination attention term.
		sDst := make([]float32, n)
		for v := 0; v < n; v++ {
			z := zAll.Row(v)[k*hd : (k+1)*hd]
			var s float32
			for j, a := range aDst {
				s += a * z[j]
			}
			sDst[v] = s
		}
		logits := make([]float32, e)
		for i := 0; i < e; i++ {
			z := zMsg.Row(i)[k*hd : (k+1)*hd]
			var s float32
			for j, a := range aSrc {
				s += a * z[j]
			}
			p := s + sDst[dst[i]]
			pre.Set(i, k, p)
			logits[i] = tensor.LeakyReLUScalar(p, 0.2)
		}
		al := tensor.SegmentSoftmax(logits, dst, n)
		for i := 0; i < e; i++ {
			alpha.Set(i, k, al[i])
		}
		weighted := tensor.New(e, hd)
		for i := 0; i < e; i++ {
			z := zMsg.Row(i)[k*hd : (k+1)*hd]
			w := weighted.Row(i)
			for j := range w {
				w[j] = al[i] * z[j]
			}
		}
		headOuts = append(headOuts, tensor.SegmentSum(weighted, dst, n))
	}

	if c.concatHeads {
		out = headOuts[0]
		for k := 1; k < c.heads; k++ {
			out = tensor.ConcatCols(out, headOuts[k])
		}
	} else {
		out = headOuts[0].Clone()
		for k := 1; k < c.heads; k++ {
			tensor.AddInPlace(out, headOuts[k])
		}
		out.ScaleInPlace(1 / float32(c.heads))
	}
	return out, pre, alpha
}

// ApplyNodePooled implements PooledApplier: the two projection matrices —
// the layer's dominant intermediates — are recycled through p; attention
// itself is unchanged, so values are identical to ApplyNode.
func (c *GATConv) ApplyNodePooled(nodeState *tensor.Matrix, aggr *Aggregated, p *tensor.Pool) *tensor.Matrix {
	if aggr.Kind != ReduceUnion {
		panic("gas: GATConv needs a union aggregate")
	}
	zAll := c.MsgLin.ApplyPooled(p, nodeState)
	zMsg := c.MsgLin.ApplyPooled(p, aggr.Messages)
	out, _, _ := c.attention(zAll, zMsg, aggr.Dst, nodeState.Rows)
	p.Put(zAll)
	p.Put(zMsg)
	return applyActivationInPlace(c.activation, out)
}

// Infer implements Conv.
func (c *GATConv) Infer(ctx *Context) *tensor.Matrix { return InferLayer(c, ctx) }

// Forward implements Conv, caching intermediates for Backward.
func (c *GATConv) Forward(ctx *Context) *tensor.Matrix {
	c.cacheCtx = ctx
	zAll := c.MsgLin.Forward(ctx.NodeState)
	c.cacheZAll = zAll
	zMsg := tensor.GatherRows(zAll, ctx.SrcIndex)
	out, pre, alpha := c.attention(zAll, zMsg, ctx.DstIndex, ctx.NumNodes)
	c.cachePre = pre
	c.cacheAlpha = alpha
	c.cachePreAct = out
	return applyActivation(c.activation, out)
}

// Backward implements Conv.
func (c *GATConv) Backward(dOut *tensor.Matrix) *tensor.Matrix {
	if c.cacheCtx == nil {
		panic("gas: GATConv.Backward before Forward")
	}
	ctx := c.cacheCtx
	n := ctx.NumNodes
	e := len(ctx.SrcIndex)
	hd := c.headDim
	dst := ctx.DstIndex

	dO := activationBackward(c.activation, dOut, c.cachePreAct)
	zAll := c.cacheZAll
	zMsg := tensor.GatherRows(zAll, ctx.SrcIndex)

	dZAll := tensor.New(n, c.heads*hd)
	dZMsg := tensor.New(e, c.heads*hd)

	for k := 0; k < c.heads; k++ {
		// Gradient flowing into this head's output rows.
		dHead := tensor.New(n, hd)
		if c.concatHeads {
			for v := 0; v < n; v++ {
				copy(dHead.Row(v), dO.Row(v)[k*hd:(k+1)*hd])
			}
		} else {
			inv := 1 / float32(c.heads)
			for v := 0; v < n; v++ {
				row := dO.Row(v)
				dh := dHead.Row(v)
				for j := 0; j < hd; j++ {
					dh[j] = row[j] * inv
				}
			}
		}

		aSrc := c.AttSrc.Value.Row(k)
		aDst := c.AttDst.Value.Row(k)
		alphaK := make([]float32, e)
		dAlpha := make([]float32, e)
		for i := 0; i < e; i++ {
			alphaK[i] = c.cacheAlpha.At(i, k)
			zh := zMsg.Row(i)[k*hd : (k+1)*hd]
			dh := dHead.Row(int(dst[i]))
			// out_head[dst] = Σ alpha*z ⇒ dAlpha = <dHead[dst], z>,
			// dZMsg += alpha * dHead[dst].
			var s float32
			dzm := dZMsg.Row(i)[k*hd : (k+1)*hd]
			for j := 0; j < hd; j++ {
				s += dh[j] * zh[j]
				dzm[j] += alphaK[i] * dh[j]
			}
			dAlpha[i] = s
		}
		dLogit := tensor.SegmentSoftmaxBackward(alphaK, dAlpha, dst, n)
		for i := 0; i < e; i++ {
			dp := dLogit[i] * tensor.LeakyReLUGradScalar(c.cachePre.At(i, k), 0.2)
			zh := zMsg.Row(i)[k*hd : (k+1)*hd]
			zdst := zAll.Row(int(dst[i]))[k*hd : (k+1)*hd]
			dzm := dZMsg.Row(i)[k*hd : (k+1)*hd]
			dzd := dZAll.Row(int(dst[i]))[k*hd : (k+1)*hd]
			gSrc := c.AttSrc.Grad.Row(k)
			gDst := c.AttDst.Grad.Row(k)
			for j := 0; j < hd; j++ {
				dzm[j] += dp * aSrc[j]
				dzd[j] += dp * aDst[j]
				gSrc[j] += dp * zh[j]
				gDst[j] += dp * zdst[j]
			}
		}
	}

	// zMsg = zAll[src] ⇒ scatter-add message grads into node grads.
	tensor.ScatterAddRows(dZAll, dZMsg, ctx.SrcIndex)
	return c.MsgLin.Backward(dZAll)
}

// Params implements Conv.
func (c *GATConv) Params() []*nn.Param {
	return append(c.MsgLin.Params(), c.AttSrc, c.AttDst)
}
