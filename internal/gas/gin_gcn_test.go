package gas

import (
	"bytes"
	"math"
	"testing"

	"inferturbo/internal/tensor"
)

func TestGINInferMatchesForward(t *testing.T) {
	rng := tensor.NewRNG(1)
	c := NewGINConv(GINConfig{InDim: 3, Hidden: 5, OutDim: 2, Activation: ActReLU}, rng)
	ctx := testCtx(3, 0, 2)
	if !c.Infer(ctx).AllClose(c.Forward(ctx), 1e-6) {
		t.Fatal("GIN Infer and Forward must agree")
	}
}

func TestGINAnnotations(t *testing.T) {
	rng := tensor.NewRNG(3)
	c := NewGINConv(GINConfig{InDim: 3, OutDim: 2}, rng)
	if c.Reduce() != ReduceSum || !c.BroadcastSafe() || c.Type() != "gin" {
		t.Fatal("GIN annotations wrong")
	}
	if c.Hidden() != 2 {
		t.Fatal("hidden must default to OutDim")
	}
}

func TestGINBackwardNumeric(t *testing.T) {
	rng := tensor.NewRNG(4)
	c := NewGINConv(GINConfig{InDim: 3, Hidden: 4, OutDim: 2, Activation: ActNone}, rng)
	// Non-zero ε so its gradient path is exercised.
	c.Eps.Value.Data[0] = 0.3
	checkNumericGrad(t, c, testCtx(3, 0, 5), 3e-2)
}

func TestGINEpsilonGradientNumeric(t *testing.T) {
	rng := tensor.NewRNG(6)
	c := NewGINConv(GINConfig{InDim: 3, Hidden: 4, OutDim: 2, Activation: ActNone}, rng)
	ctx := testCtx(3, 0, 7)
	w := tensor.New(ctx.NumNodes, 2)
	tensor.NewRNG(8).Uniform(w, -1, 1)

	objective := func() float64 {
		out := c.Infer(ctx)
		var s float64
		for i := range out.Data {
			s += float64(out.Data[i]) * float64(w.Data[i])
		}
		return s
	}
	c.Forward(ctx)
	c.Backward(w)
	const eps = 1e-2
	orig := c.Eps.Value.Data[0]
	c.Eps.Value.Data[0] = orig + eps
	plus := objective()
	c.Eps.Value.Data[0] = orig - eps
	minus := objective()
	c.Eps.Value.Data[0] = orig
	num := (plus - minus) / (2 * eps)
	if math.Abs(num-float64(c.Eps.Grad.Data[0])) > 2e-2 {
		t.Fatalf("dε = %v, numeric %v", c.Eps.Grad.Data[0], num)
	}
}

func TestGCNInferMatchesForward(t *testing.T) {
	rng := tensor.NewRNG(9)
	c := NewGCNConv(GCNConfig{InDim: 3, OutDim: 2, Activation: ActReLU}, rng)
	ctx := testCtx(3, 0, 10)
	if !c.Infer(ctx).AllClose(c.Forward(ctx), 1e-6) {
		t.Fatal("GCN Infer and Forward must agree")
	}
}

func TestGCNAnnotations(t *testing.T) {
	rng := tensor.NewRNG(11)
	c := NewGCNConv(GCNConfig{InDim: 3, OutDim: 2}, rng)
	if c.Reduce() != ReduceSum || !c.BroadcastSafe() || c.Type() != "gcn" {
		t.Fatal("GCN annotations wrong")
	}
	var _ MessageScaler = c // must implement the degree hook
}

func TestGCNScaleMessage(t *testing.T) {
	rng := tensor.NewRNG(12)
	c := NewGCNConv(GCNConfig{InDim: 2, OutDim: 2}, rng)
	h := []float32{2, 4}
	got := c.ScaleMessage(h, 3) // scale 1/√4 = 0.5
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("ScaleMessage = %v", got)
	}
	if h[0] != 2 {
		t.Fatal("ScaleMessage must not mutate input")
	}
}

func TestGCNBackwardNumeric(t *testing.T) {
	rng := tensor.NewRNG(13)
	c := NewGCNConv(GCNConfig{InDim: 3, OutDim: 2, Activation: ActNone}, rng)
	checkNumericGrad(t, c, testCtx(3, 0, 14), 3e-2)
}

func TestGCNBackwardNumericWithReLU(t *testing.T) {
	rng := tensor.NewRNG(15)
	c := NewGCNConv(GCNConfig{InDim: 3, OutDim: 2, Activation: ActReLU}, rng)
	checkNumericGrad(t, c, testCtx(3, 0, 16), 3e-2)
}

func TestGCNNormalizationBoundsOutput(t *testing.T) {
	// A node with huge in-degree must not blow up: the √-normalization keeps
	// the aggregate comparable to a single message magnitude.
	rng := tensor.NewRNG(17)
	c := NewGCNConv(GCNConfig{InDim: 1, OutDim: 1, Activation: ActNone}, rng)
	c.SelfLin.W.Value.Fill(0)
	c.SelfLin.B.Value.Fill(0)
	c.NbrLin.W.Value.Fill(1)
	c.NbrLin.B.Value.Fill(0)

	n := 101
	state := tensor.New(n, 1)
	state.Fill(1)
	var src, dst []int32
	for v := int32(1); v < int32(n); v++ {
		src = append(src, v)
		dst = append(dst, 0)
	}
	ctx := &Context{NodeState: state, SrcIndex: src, DstIndex: dst, NumNodes: n}
	out := c.Infer(ctx)
	// Each of 100 senders has out-degree 1 ⇒ message 1/√2; receiver divides
	// by √101: 100/(√2·√101) ≈ 7.0.
	want := 100.0 / (math.Sqrt2 * math.Sqrt(101))
	if math.Abs(float64(out.At(0, 0))-want) > 1e-3 {
		t.Fatalf("hub output = %v, want %v", out.At(0, 0), want)
	}
}

func TestGINModelAndGCNModelShapes(t *testing.T) {
	rng := tensor.NewRNG(18)
	gin := NewGINModel("gin", TaskSingleLabel, 8, 16, 5, 3, rng)
	gcn := NewGCNModel("gcn", TaskSingleLabel, 8, 16, 5, 2, rng)
	ctx := testCtx(8, 0, 19)
	if out := gin.Infer(ctx); out.Cols != 5 {
		t.Fatalf("gin logits = %d cols", out.Cols)
	}
	if out := gcn.Infer(ctx); out.Cols != 5 {
		t.Fatalf("gcn logits = %d cols", out.Cols)
	}
}

func TestSignatureRoundTripGINAndGCN(t *testing.T) {
	rng := tensor.NewRNG(20)
	for _, m := range []*Model{
		NewGINModel("gin-rt", TaskSingleLabel, 6, 8, 3, 2, rng),
		NewGCNModel("gcn-rt", TaskMultiLabel, 6, 8, 3, 2, rng),
	} {
		ctx := testCtx(6, 0, 21)
		want := m.Infer(ctx)
		var buf bytes.Buffer
		if err := Save(m, &buf); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		m2, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if !m2.Infer(ctx).Equal(want) {
			t.Fatalf("%s: loaded model differs", m.Name)
		}
	}
}

func TestGINEdgePermutationInvariance(t *testing.T) {
	rng := tensor.NewRNG(22)
	c := NewGINConv(GINConfig{InDim: 3, OutDim: 2}, rng)
	ctx := testCtx(3, 0, 23)
	base := c.Infer(ctx)
	perm := []int{4, 0, 3, 1, 2}
	pctx := &Context{NodeState: ctx.NodeState, NumNodes: 4}
	for _, p := range perm {
		pctx.SrcIndex = append(pctx.SrcIndex, ctx.SrcIndex[p])
		pctx.DstIndex = append(pctx.DstIndex, ctx.DstIndex[p])
	}
	if !c.Infer(pctx).AllClose(base, 1e-5) {
		t.Fatal("GIN must be edge-order invariant")
	}
}
