package gas

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"inferturbo/internal/nn"
	"inferturbo/internal/tensor"
)

// Signature files are the hand-off artifact between training and inference:
// when a model is saved, each layer records its weights *and* the
// annotations the paper's decorators capture — the reduce kind (whether
// partial-gather is legal) and broadcast safety (whether out-edge messages
// are identical). The inference drivers read these flags instead of asking
// the user to re-configure strategies, "to avoid excessive manual
// configurations" as the paper puts it.

// SignatureVersion guards the on-disk format.
const SignatureVersion = 1

type signatureFile struct {
	Version    int        `json:"version"`
	Name       string     `json:"name"`
	Task       Task       `json:"task"`
	NumClasses int        `json:"num_classes"`
	Layers     []layerSig `json:"layers"`
}

type layerSig struct {
	Type          string              `json:"type"`
	Reduce        string              `json:"reduce"`
	Activation    string              `json:"activation"`
	InDim         int                 `json:"in_dim"`
	OutDim        int                 `json:"out_dim"`
	EdgeDim       int                 `json:"edge_dim,omitempty"`
	Hidden        int                 `json:"hidden,omitempty"`
	Heads         int                 `json:"heads,omitempty"`
	HeadDim       int                 `json:"head_dim,omitempty"`
	ConcatHeads   bool                `json:"concat_heads,omitempty"`
	PartialGather bool                `json:"partial_gather"`
	BroadcastSafe bool                `json:"broadcast_safe"`
	Params        map[string]paramSig `json:"params"`
}

type paramSig struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float32 `json:"data"`
}

// Save writes the model signature (annotations + weights) to w.
func Save(m *Model, w io.Writer) error {
	sf := signatureFile{
		Version:    SignatureVersion,
		Name:       m.Name,
		Task:       m.Task,
		NumClasses: m.NumClasses,
	}
	for i, l := range m.Layers {
		ls := layerSig{
			Type:          l.Type(),
			Reduce:        l.Reduce().String(),
			InDim:         l.InDim(),
			OutDim:        l.OutDim(),
			PartialGather: l.Reduce().Commutative(),
			BroadcastSafe: l.BroadcastSafe(),
			Params:        map[string]paramSig{},
		}
		switch c := l.(type) {
		case *SAGEConv:
			ls.Activation = c.Activation()
			ls.EdgeDim = c.EdgeDim()
		case *GATConv:
			ls.Activation = c.Activation()
			ls.Heads = c.Heads()
			ls.HeadDim = c.HeadDim()
			ls.ConcatHeads = c.ConcatHeads()
		case *GINConv:
			ls.Activation = c.Activation()
			ls.Hidden = c.Hidden()
		case *GCNConv:
			ls.Activation = c.Activation()
		default:
			return fmt.Errorf("gas: cannot serialize layer %d of type %T", i, l)
		}
		for _, p := range l.Params() {
			ls.Params[p.Name] = paramSig{
				Rows: p.Value.Rows, Cols: p.Value.Cols,
				Data: p.Value.Data,
			}
		}
		sf.Layers = append(sf.Layers, ls)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(sf)
}

// SaveFile writes the signature to path.
func SaveFile(m *Model, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Save(m, f); err != nil {
		return err
	}
	return f.Close()
}

// Load reconstructs a model from a signature produced by Save.
func Load(r io.Reader) (*Model, error) {
	var sf signatureFile
	if err := json.NewDecoder(r).Decode(&sf); err != nil {
		return nil, fmt.Errorf("gas: decoding signature: %w", err)
	}
	if sf.Version != SignatureVersion {
		return nil, fmt.Errorf("gas: signature version %d, want %d", sf.Version, SignatureVersion)
	}
	m := &Model{Name: sf.Name, Task: sf.Task, NumClasses: sf.NumClasses}
	rng := tensor.NewRNG(0) // weights are overwritten below
	for i, ls := range sf.Layers {
		var conv Conv
		switch ls.Type {
		case "sage":
			reduce, err := ParseReduceKind(ls.Reduce)
			if err != nil {
				return nil, err
			}
			conv = NewSAGEConv(SAGEConfig{
				InDim: ls.InDim, OutDim: ls.OutDim, EdgeDim: ls.EdgeDim,
				Reduce: reduce, Activation: ls.Activation,
			}, rng)
		case "gat":
			conv = NewGATConv(GATConfig{
				InDim: ls.InDim, Heads: ls.Heads, HeadDim: ls.HeadDim,
				ConcatHeads: ls.ConcatHeads, Activation: ls.Activation,
			}, rng)
		case "gin":
			conv = NewGINConv(GINConfig{
				InDim: ls.InDim, Hidden: ls.Hidden, OutDim: ls.OutDim,
				Activation: ls.Activation,
			}, rng)
		case "gcn":
			conv = NewGCNConv(GCNConfig{
				InDim: ls.InDim, OutDim: ls.OutDim, Activation: ls.Activation,
			}, rng)
		default:
			return nil, fmt.Errorf("gas: layer %d has unknown type %q", i, ls.Type)
		}
		if err := loadParams(conv.Params(), ls.Params); err != nil {
			return nil, fmt.Errorf("gas: layer %d: %w", i, err)
		}
		// Cross-check stored annotations against the reconstructed layer:
		// they are derived properties, so a mismatch means a corrupt file.
		if conv.Reduce().Commutative() != ls.PartialGather {
			return nil, fmt.Errorf("gas: layer %d partial_gather annotation inconsistent", i)
		}
		if conv.BroadcastSafe() != ls.BroadcastSafe {
			return nil, fmt.Errorf("gas: layer %d broadcast_safe annotation inconsistent", i)
		}
		m.Layers = append(m.Layers, conv)
	}
	return m, nil
}

// LoadFile reads a signature from path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

func loadParams(params []*nn.Param, sigs map[string]paramSig) error {
	for _, p := range params {
		sig, ok := sigs[p.Name]
		if !ok {
			return fmt.Errorf("missing parameter %q", p.Name)
		}
		if sig.Rows != p.Value.Rows || sig.Cols != p.Value.Cols {
			return fmt.Errorf("parameter %q is %dx%d, want %dx%d",
				p.Name, sig.Rows, sig.Cols, p.Value.Rows, p.Value.Cols)
		}
		if len(sig.Data) != sig.Rows*sig.Cols {
			return fmt.Errorf("parameter %q has %d values, want %d",
				p.Name, len(sig.Data), sig.Rows*sig.Cols)
		}
		copy(p.Value.Data, sig.Data)
	}
	return nil
}
