package gas

import (
	"fmt"

	"inferturbo/internal/nn"
	"inferturbo/internal/tensor"
)

// SAGEConv is the GraphSAGE layer in the GAS abstraction:
//
//	aggregate: pooled reduce (mean by default) of neighbor states — eligible
//	           for partial-gather (the paper's @Gather(partial=True))
//	apply_edge: identity, or additive edge-feature projection when the graph
//	            has edge attributes (which disables broadcast safety)
//	apply_node: act(W_self·h + W_nbr·aggr + b)
type SAGEConv struct {
	SelfLin *nn.Linear
	NbrLin  *nn.Linear
	EdgeLin *nn.Linear // nil when EdgeDim == 0

	inDim, outDim int
	edgeDim       int
	reduce        ReduceKind
	activation    string

	// Training caches.
	cacheCtx    *Context
	cacheMsg    *tensor.Matrix // post-ApplyEdge messages
	cacheAggr   *Aggregated
	cachePreAct *tensor.Matrix
}

// SAGEConfig parameterizes a SAGEConv.
type SAGEConfig struct {
	InDim, OutDim int
	EdgeDim       int        // 0 = no edge features
	Reduce        ReduceKind // mean, sum, max, min
	Activation    string     // "relu", "none", "leaky_relu"
}

// NewSAGEConv builds a SAGEConv with Xavier-initialized weights.
func NewSAGEConv(cfg SAGEConfig, rng *tensor.RNG) *SAGEConv {
	if cfg.Reduce == ReduceUnion {
		panic("gas: SAGEConv requires a pooled reduce")
	}
	if cfg.InDim <= 0 || cfg.OutDim <= 0 {
		panic(fmt.Sprintf("gas: bad SAGE dims %d->%d", cfg.InDim, cfg.OutDim))
	}
	c := &SAGEConv{
		SelfLin:    nn.NewLinear("sage.self", cfg.InDim, cfg.OutDim, rng),
		NbrLin:     nn.NewLinear("sage.nbr", cfg.InDim, cfg.OutDim, rng),
		inDim:      cfg.InDim,
		outDim:     cfg.OutDim,
		edgeDim:    cfg.EdgeDim,
		reduce:     cfg.Reduce,
		activation: cfg.Activation,
	}
	if cfg.EdgeDim > 0 {
		c.EdgeLin = nn.NewLinear("sage.edge", cfg.EdgeDim, cfg.InDim, rng)
	}
	return c
}

// Type implements Conv.
func (c *SAGEConv) Type() string { return "sage" }

// Reduce implements Conv.
func (c *SAGEConv) Reduce() ReduceKind { return c.reduce }

// BroadcastSafe implements Conv: without edge features every out-edge
// carries the same message (the raw node state).
func (c *SAGEConv) BroadcastSafe() bool { return c.EdgeLin == nil }

// InDim implements Conv.
func (c *SAGEConv) InDim() int { return c.inDim }

// OutDim implements Conv.
func (c *SAGEConv) OutDim() int { return c.outDim }

// Activation returns the activation annotation.
func (c *SAGEConv) Activation() string { return c.activation }

// EdgeDim returns the edge feature dimensionality consumed (0 = none).
func (c *SAGEConv) EdgeDim() int { return c.edgeDim }

// ApplyEdge implements Conv: message + W_e·edgeFeat when edges carry
// attributes, otherwise identity.
func (c *SAGEConv) ApplyEdge(msg, edgeState *tensor.Matrix) *tensor.Matrix {
	if c.EdgeLin == nil || edgeState == nil {
		return msg
	}
	return tensor.Add(msg, c.EdgeLin.Apply(edgeState))
}

// ApplyEdgePooled implements PooledEdgeApplier: identical values to
// ApplyEdge (IEEE addition of two operands is commutative bit for bit)
// with the edge projection — which is also the result — drawn from p.
func (c *SAGEConv) ApplyEdgePooled(msg, edgeState *tensor.Matrix, p *tensor.Pool) *tensor.Matrix {
	if c.EdgeLin == nil || edgeState == nil {
		return msg
	}
	out := c.EdgeLin.ApplyPooled(p, edgeState)
	tensor.AddInPlace(out, msg)
	return out
}

// ApplyNode implements Conv.
func (c *SAGEConv) ApplyNode(nodeState *tensor.Matrix, aggr *Aggregated) *tensor.Matrix {
	pre := tensor.Add(c.SelfLin.Apply(nodeState), c.NbrLin.Apply(aggr.Pooled))
	return applyActivation(c.activation, pre)
}

// ApplyNodePooled implements PooledApplier: identical values to ApplyNode
// with all intermediates (and the result) recycled through p.
func (c *SAGEConv) ApplyNodePooled(nodeState *tensor.Matrix, aggr *Aggregated, p *tensor.Pool) *tensor.Matrix {
	pre := c.SelfLin.ApplyPooled(p, nodeState)
	nbr := c.NbrLin.ApplyPooled(p, aggr.Pooled)
	tensor.AddInPlace(pre, nbr)
	p.Put(nbr)
	return applyActivationInPlace(c.activation, pre)
}

// Infer implements Conv.
func (c *SAGEConv) Infer(ctx *Context) *tensor.Matrix { return InferLayer(c, ctx) }

// Forward implements Conv, caching intermediates for Backward.
func (c *SAGEConv) Forward(ctx *Context) *tensor.Matrix {
	if c.reduce == ReduceMax || c.reduce == ReduceMin {
		panic("gas: max/min reduce is inference-only; train with mean or sum")
	}
	c.cacheCtx = ctx
	msg := tensor.GatherRows(ctx.NodeState, ctx.SrcIndex)
	if c.EdgeLin != nil && ctx.EdgeState != nil {
		msg = tensor.Add(msg, c.EdgeLin.Forward(ctx.EdgeState))
	}
	c.cacheMsg = msg
	c.cacheAggr = Gather(c.reduce, msg, ctx.DstIndex, ctx.NumNodes)
	pre := tensor.Add(c.SelfLin.Forward(ctx.NodeState), c.NbrLin.Forward(c.cacheAggr.Pooled))
	c.cachePreAct = pre
	return applyActivation(c.activation, pre)
}

// Backward implements Conv.
func (c *SAGEConv) Backward(dOut *tensor.Matrix) *tensor.Matrix {
	if c.cacheCtx == nil {
		panic("gas: SAGEConv.Backward before Forward")
	}
	ctx := c.cacheCtx
	dPre := activationBackward(c.activation, dOut, c.cachePreAct)

	dNode := c.SelfLin.Backward(dPre)
	dAggr := c.NbrLin.Backward(dPre)

	var dMsg *tensor.Matrix
	switch c.reduce {
	case ReduceMean:
		dMsg = tensor.SegmentMeanBackward(dAggr, ctx.DstIndex, c.cacheAggr.Counts)
	case ReduceSum:
		dMsg = tensor.SegmentSumBackward(dAggr, ctx.DstIndex)
	default:
		panic("gas: unsupported reduce in backward")
	}
	if c.EdgeLin != nil && ctx.EdgeState != nil {
		c.EdgeLin.Backward(dMsg) // gradient into edge projection; edges have no upstream
	}
	tensor.ScatterAddRows(dNode, dMsg, ctx.SrcIndex)
	return dNode
}

// Params implements Conv.
func (c *SAGEConv) Params() []*nn.Param {
	ps := append(c.SelfLin.Params(), c.NbrLin.Params()...)
	if c.EdgeLin != nil {
		ps = append(ps, c.EdgeLin.Params()...)
	}
	return ps
}
