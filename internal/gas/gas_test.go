package gas

import (
	"math"
	"testing"

	"inferturbo/internal/tensor"
)

// testCtx builds a small context: 4 nodes, edges 0->1, 0->2, 1->3, 2->3, 3->0.
func testCtx(dim int, edgeDim int, seed int64) *Context {
	rng := tensor.NewRNG(seed)
	state := tensor.New(4, dim)
	rng.Uniform(state, -1, 1)
	ctx := &Context{
		NodeState: state,
		SrcIndex:  []int32{0, 0, 1, 2, 3},
		DstIndex:  []int32{1, 2, 3, 3, 0},
		NumNodes:  4,
	}
	if edgeDim > 0 {
		es := tensor.New(5, edgeDim)
		rng.Uniform(es, -1, 1)
		ctx.EdgeState = es
	}
	return ctx
}

func TestContextValidate(t *testing.T) {
	ctx := testCtx(3, 0, 1)
	if err := ctx.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testCtx(3, 0, 1)
	bad.SrcIndex[0] = 99
	if bad.Validate() == nil {
		t.Fatal("must reject out-of-range src")
	}
	bad2 := testCtx(3, 0, 1)
	bad2.DstIndex = bad2.DstIndex[:3]
	if bad2.Validate() == nil {
		t.Fatal("must reject src/dst length mismatch")
	}
}

func TestReduceKindRoundTrip(t *testing.T) {
	for _, k := range []ReduceKind{ReduceSum, ReduceMean, ReduceMax, ReduceMin, ReduceUnion} {
		got, err := ParseReduceKind(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip of %v failed: %v %v", k, got, err)
		}
	}
	if _, err := ParseReduceKind("bogus"); err == nil {
		t.Fatal("must reject unknown reduce kind")
	}
	if ReduceUnion.Commutative() || !ReduceMean.Commutative() {
		t.Fatal("commutativity annotations wrong")
	}
}

func TestGatherKinds(t *testing.T) {
	msgs := tensor.FromRows([][]float32{{1}, {3}, {5}})
	dst := []int32{0, 0, 1}
	if got := Gather(ReduceSum, msgs, dst, 2); got.Pooled.At(0, 0) != 4 {
		t.Fatalf("sum = %v", got.Pooled.Data)
	}
	if got := Gather(ReduceMean, msgs, dst, 2); got.Pooled.At(0, 0) != 2 {
		t.Fatalf("mean = %v", got.Pooled.Data)
	}
	if got := Gather(ReduceMax, msgs, dst, 2); got.Pooled.At(0, 0) != 3 {
		t.Fatalf("max = %v", got.Pooled.Data)
	}
	if got := Gather(ReduceMin, msgs, dst, 2); got.Pooled.At(0, 0) != 1 {
		t.Fatalf("min = %v", got.Pooled.Data)
	}
	u := Gather(ReduceUnion, msgs, dst, 2)
	if u.Messages != msgs || u.Pooled != nil {
		t.Fatal("union must pass messages through")
	}
}

func TestSAGEInferMatchesForward(t *testing.T) {
	rng := tensor.NewRNG(2)
	c := NewSAGEConv(SAGEConfig{InDim: 3, OutDim: 2, Reduce: ReduceMean, Activation: ActReLU}, rng)
	ctx := testCtx(3, 0, 3)
	if !c.Infer(ctx).Equal(c.Forward(ctx)) {
		t.Fatal("Infer and Forward must agree exactly")
	}
}

func TestSAGEIsolatedNodeGetsSelfOnly(t *testing.T) {
	rng := tensor.NewRNG(4)
	c := NewSAGEConv(SAGEConfig{InDim: 2, OutDim: 2, Reduce: ReduceMean, Activation: ActNone}, rng)
	state := tensor.FromRows([][]float32{{1, 2}, {3, 4}})
	// Node 1 has no in-edges.
	ctx := &Context{NodeState: state, SrcIndex: []int32{1}, DstIndex: []int32{0}, NumNodes: 2}
	out := c.Infer(ctx)
	// Node 1's output must equal SelfLin only (aggregate is zero).
	want := c.SelfLin.Apply(tensor.FromRows([][]float32{{3, 4}}))
	for j := 0; j < 2; j++ {
		if math.Abs(float64(out.At(1, j)-want.At(0, j))) > 1e-6 {
			t.Fatalf("isolated node out = %v, want %v", out.Row(1), want.Row(0))
		}
	}
}

func TestSAGEEdgePermutationInvariance(t *testing.T) {
	rng := tensor.NewRNG(5)
	c := NewSAGEConv(SAGEConfig{InDim: 3, OutDim: 2, Reduce: ReduceMean, Activation: ActReLU}, rng)
	ctx := testCtx(3, 0, 6)
	base := c.Infer(ctx)

	perm := []int{4, 2, 0, 3, 1}
	pctx := &Context{NodeState: ctx.NodeState, NumNodes: 4}
	for _, p := range perm {
		pctx.SrcIndex = append(pctx.SrcIndex, ctx.SrcIndex[p])
		pctx.DstIndex = append(pctx.DstIndex, ctx.DstIndex[p])
	}
	if !c.Infer(pctx).AllClose(base, 1e-5) {
		t.Fatal("mean aggregate must be edge-order invariant")
	}
}

// checkNumericGrad compares conv.Backward against finite differences of a
// fixed linear objective sum(w ⊙ out).
func checkNumericGrad(t *testing.T, c Conv, ctx *Context, tol float64) {
	t.Helper()
	rng := tensor.NewRNG(99)
	probe := func() *tensor.Matrix {
		out := c.Infer(ctx)
		return out
	}
	w := tensor.New(ctx.NumNodes, c.OutDim())
	rng.Uniform(w, -1, 1)
	objective := func() float64 {
		out := probe()
		var s float64
		for i := range out.Data {
			s += float64(out.Data[i]) * float64(w.Data[i])
		}
		return s
	}

	c.Forward(ctx)
	dIn := c.Backward(w)

	const eps = 1e-2
	// Input gradient.
	for i := 0; i < len(ctx.NodeState.Data); i += 3 {
		orig := ctx.NodeState.Data[i]
		ctx.NodeState.Data[i] = orig + eps
		plus := objective()
		ctx.NodeState.Data[i] = orig - eps
		minus := objective()
		ctx.NodeState.Data[i] = orig
		num := (plus - minus) / (2 * eps)
		if math.Abs(num-float64(dIn.Data[i])) > tol {
			t.Fatalf("dIn[%d] = %v, numeric %v", i, dIn.Data[i], num)
		}
	}
	// Parameter gradients (probe a stride of each).
	for _, p := range c.Params() {
		stride := len(p.Value.Data)/4 + 1
		for i := 0; i < len(p.Value.Data); i += stride {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			plus := objective()
			p.Value.Data[i] = orig - eps
			minus := objective()
			p.Value.Data[i] = orig
			num := (plus - minus) / (2 * eps)
			if math.Abs(num-float64(p.Grad.Data[i])) > tol {
				t.Fatalf("param %s grad[%d] = %v, numeric %v", p.Name, i, p.Grad.Data[i], num)
			}
		}
	}
}

func TestSAGEBackwardNumericMean(t *testing.T) {
	rng := tensor.NewRNG(7)
	c := NewSAGEConv(SAGEConfig{InDim: 3, OutDim: 2, Reduce: ReduceMean, Activation: ActNone}, rng)
	checkNumericGrad(t, c, testCtx(3, 0, 8), 2e-2)
}

func TestSAGEBackwardNumericSumWithReLU(t *testing.T) {
	rng := tensor.NewRNG(9)
	c := NewSAGEConv(SAGEConfig{InDim: 3, OutDim: 2, Reduce: ReduceSum, Activation: ActReLU}, rng)
	checkNumericGrad(t, c, testCtx(3, 0, 10), 2e-2)
}

func TestSAGEBackwardNumericWithEdgeFeatures(t *testing.T) {
	rng := tensor.NewRNG(11)
	c := NewSAGEConv(SAGEConfig{InDim: 3, OutDim: 2, EdgeDim: 2, Reduce: ReduceMean, Activation: ActNone}, rng)
	checkNumericGrad(t, c, testCtx(3, 2, 12), 2e-2)
}

func TestSAGETrainRejectsMaxReduce(t *testing.T) {
	rng := tensor.NewRNG(13)
	c := NewSAGEConv(SAGEConfig{InDim: 2, OutDim: 2, Reduce: ReduceMax, Activation: ActNone}, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("training with max reduce must panic")
		}
	}()
	c.Forward(testCtx(2, 0, 14))
}

func TestSAGEBroadcastSafety(t *testing.T) {
	rng := tensor.NewRNG(15)
	plain := NewSAGEConv(SAGEConfig{InDim: 2, OutDim: 2, Reduce: ReduceMean}, rng)
	if !plain.BroadcastSafe() {
		t.Fatal("SAGE without edge features must be broadcast-safe")
	}
	withEdge := NewSAGEConv(SAGEConfig{InDim: 2, OutDim: 2, EdgeDim: 3, Reduce: ReduceMean}, rng)
	if withEdge.BroadcastSafe() {
		t.Fatal("edge-dependent messages are not broadcast-safe")
	}
}

func TestGATInferMatchesForward(t *testing.T) {
	rng := tensor.NewRNG(16)
	c := NewGATConv(GATConfig{InDim: 3, Heads: 2, HeadDim: 2, ConcatHeads: true, Activation: ActReLU}, rng)
	ctx := testCtx(3, 0, 17)
	if !c.Infer(ctx).AllClose(c.Forward(ctx), 1e-6) {
		t.Fatal("GAT Infer and Forward must agree")
	}
}

func TestGATOutDims(t *testing.T) {
	rng := tensor.NewRNG(18)
	concat := NewGATConv(GATConfig{InDim: 3, Heads: 4, HeadDim: 5, ConcatHeads: true}, rng)
	if concat.OutDim() != 20 {
		t.Fatalf("concat out = %d", concat.OutDim())
	}
	avg := NewGATConv(GATConfig{InDim: 3, Heads: 4, HeadDim: 5, ConcatHeads: false}, rng)
	if avg.OutDim() != 5 {
		t.Fatalf("avg out = %d", avg.OutDim())
	}
	if !avg.BroadcastSafe() || avg.Reduce() != ReduceUnion {
		t.Fatal("GAT annotations wrong")
	}
}

func TestGATAttentionWeightsSumToOne(t *testing.T) {
	rng := tensor.NewRNG(19)
	c := NewGATConv(GATConfig{InDim: 3, Heads: 2, HeadDim: 2, ConcatHeads: true}, rng)
	ctx := testCtx(3, 0, 20)
	c.Forward(ctx)
	// Node 3 has two in-edges (rows 2 and 3 of the edge list).
	for k := 0; k < 2; k++ {
		s := c.cacheAlpha.At(2, k) + c.cacheAlpha.At(3, k)
		if math.Abs(float64(s-1)) > 1e-5 {
			t.Fatalf("head %d alphas at node 3 sum to %v", k, s)
		}
	}
}

func TestGATBackwardNumericConcat(t *testing.T) {
	rng := tensor.NewRNG(21)
	c := NewGATConv(GATConfig{InDim: 3, Heads: 2, HeadDim: 2, ConcatHeads: true, Activation: ActNone}, rng)
	checkNumericGrad(t, c, testCtx(3, 0, 22), 3e-2)
}

func TestGATBackwardNumericAveragedWithReLU(t *testing.T) {
	rng := tensor.NewRNG(23)
	c := NewGATConv(GATConfig{InDim: 3, Heads: 3, HeadDim: 2, ConcatHeads: false, Activation: ActReLU}, rng)
	checkNumericGrad(t, c, testCtx(3, 0, 24), 3e-2)
}

func TestGATEdgePermutationInvariance(t *testing.T) {
	rng := tensor.NewRNG(25)
	c := NewGATConv(GATConfig{InDim: 3, Heads: 2, HeadDim: 3, ConcatHeads: true}, rng)
	ctx := testCtx(3, 0, 26)
	base := c.Infer(ctx)
	perm := []int{3, 1, 4, 0, 2}
	pctx := &Context{NodeState: ctx.NodeState, NumNodes: 4}
	for _, p := range perm {
		pctx.SrcIndex = append(pctx.SrcIndex, ctx.SrcIndex[p])
		pctx.DstIndex = append(pctx.DstIndex, ctx.DstIndex[p])
	}
	if !c.Infer(pctx).AllClose(base, 1e-5) {
		t.Fatal("attention output must be edge-order invariant")
	}
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	rng := tensor.NewRNG(27)
	for _, c := range []Conv{
		NewSAGEConv(SAGEConfig{InDim: 2, OutDim: 2, Reduce: ReduceMean}, rng),
		NewGATConv(GATConfig{InDim: 2, Heads: 1, HeadDim: 2}, rng),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%T Backward before Forward must panic", c)
				}
			}()
			c.Backward(tensor.New(4, c.OutDim()))
		}()
	}
}
