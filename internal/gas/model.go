package gas

import (
	"fmt"

	"inferturbo/internal/nn"
	"inferturbo/internal/tensor"
)

// Task distinguishes the prediction head attached to the last layer.
type Task string

const (
	// TaskSingleLabel predicts one class per node (argmax of logits).
	TaskSingleLabel Task = "single"
	// TaskMultiLabel predicts a label set per node (logits > 0).
	TaskMultiLabel Task = "multi"
)

// Model is a stack of GAS convolution layers. The last layer's output is the
// logit matrix; Predict applies the task's decision rule.
type Model struct {
	Name       string
	Task       Task
	NumClasses int
	Layers     []Conv
}

// NumLayers returns the depth (hops) of the model.
func (m *Model) NumLayers() int { return len(m.Layers) }

// InDim returns the node feature dimensionality the model consumes.
func (m *Model) InDim() int { return m.Layers[0].InDim() }

// Infer runs the full stateless forward over a local context, returning the
// logits for all ctx nodes. This is the reference semantics both distributed
// backends must reproduce. Intermediate layer states are recycled through
// the package pool once the next layer has consumed them (the caller's
// input features and the returned logits never are).
func (m *Model) Infer(ctx *Context) *tensor.Matrix {
	state := ctx.NodeState
	for _, l := range m.Layers {
		layerCtx := &Context{
			NodeState: state,
			SrcIndex:  ctx.SrcIndex,
			DstIndex:  ctx.DstIndex,
			EdgeState: ctx.EdgeState,
			NumNodes:  ctx.NumNodes,
		}
		next := l.Infer(layerCtx)
		if state != ctx.NodeState {
			scratch.Put(state)
		}
		state = next
	}
	// Release the package pool's free list so a large graph's working set
	// does not stay resident after the call; within-call reuse above is
	// unaffected.
	scratch.Reset()
	return state
}

// Forward is the training path: like Infer but each layer caches its
// intermediates for Backward.
func (m *Model) Forward(ctx *Context) *tensor.Matrix {
	state := ctx.NodeState
	for _, l := range m.Layers {
		layerCtx := &Context{
			NodeState: state,
			SrcIndex:  ctx.SrcIndex,
			DstIndex:  ctx.DstIndex,
			EdgeState: ctx.EdgeState,
			NumNodes:  ctx.NumNodes,
		}
		state = l.Forward(layerCtx)
	}
	return state
}

// Backward propagates d(logits) through the stack, accumulating parameter
// gradients, and returns d(input features).
func (m *Model) Backward(dLogits *tensor.Matrix) *tensor.Matrix {
	d := dLogits
	for i := len(m.Layers) - 1; i >= 0; i-- {
		d = m.Layers[i].Backward(d)
	}
	return d
}

// Params returns all trainable parameters of the stack.
func (m *Model) Params() []*nn.Param {
	var ps []*nn.Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Predict converts logits into class decisions: a class id per row for
// single-label, a {0,1} matrix for multi-label.
func (m *Model) Predict(logits *tensor.Matrix) ([]int32, *tensor.Matrix) {
	switch m.Task {
	case TaskMultiLabel:
		bin := tensor.New(logits.Rows, logits.Cols)
		for i, v := range logits.Data {
			if v > 0 {
				bin.Data[i] = 1
			}
		}
		return nil, bin
	default:
		return tensor.ArgmaxRows(logits), nil
	}
}

// NewSAGEModel builds a hops-deep GraphSAGE model: hidden layers with ReLU
// and mean aggregation, and a linear output layer producing class logits.
func NewSAGEModel(name string, task Task, inDim, hidden, numClasses, hops, edgeDim int, rng *tensor.RNG) *Model {
	if hops < 1 {
		panic(fmt.Sprintf("gas: model needs >=1 layer, got %d", hops))
	}
	m := &Model{Name: name, Task: task, NumClasses: numClasses}
	for i := 0; i < hops; i++ {
		in, out, act := hidden, hidden, ActReLU
		if i == 0 {
			in = inDim
		}
		if i == hops-1 {
			out, act = numClasses, ActNone
		}
		m.Layers = append(m.Layers, NewSAGEConv(SAGEConfig{
			InDim: in, OutDim: out, EdgeDim: edgeDim,
			Reduce: ReduceMean, Activation: act,
		}, rng))
	}
	return m
}

// NewGATModel builds a hops-deep GAT model: hidden layers concat their heads
// with ReLU, the output layer averages heads into class logits.
func NewGATModel(name string, task Task, inDim, headDim, heads, numClasses, hops int, rng *tensor.RNG) *Model {
	if hops < 1 {
		panic(fmt.Sprintf("gas: model needs >=1 layer, got %d", hops))
	}
	m := &Model{Name: name, Task: task, NumClasses: numClasses}
	in := inDim
	for i := 0; i < hops; i++ {
		if i == hops-1 {
			m.Layers = append(m.Layers, NewGATConv(GATConfig{
				InDim: in, Heads: heads, HeadDim: numClasses,
				ConcatHeads: false, Activation: ActNone,
			}, rng))
		} else {
			m.Layers = append(m.Layers, NewGATConv(GATConfig{
				InDim: in, Heads: heads, HeadDim: headDim,
				ConcatHeads: true, Activation: ActReLU,
			}, rng))
			in = heads * headDim
		}
	}
	return m
}
