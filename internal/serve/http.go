package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"inferturbo/internal/graph"
	"inferturbo/internal/pregel"
)

// maxBodyBytes bounds a query body; a request larger than this is hostile
// or misrouted, not a workload.
const maxBodyBytes = 8 << 20

// QueryRequest is the JSON body of POST /v1/query.
type QueryRequest struct {
	// Roots are existing node ids to answer.
	Roots []int32 `json:"roots"`
	// DeadlineMs overrides the server's MaxLatency deadline for this
	// request; 0 means the default.
	DeadlineMs int `json:"deadline_ms"`
	// Overrides maps node id -> replacement feature vector for a what-if
	// query (keys are strings because JSON objects require it).
	Overrides map[string][]float32 `json:"overrides,omitempty"`
	// ColdStart describes a node not in the graph.
	ColdStart *ColdStartRequest `json:"cold_start,omitempty"`
}

// ColdStartRequest describes a cold-start virtual node.
type ColdStartRequest struct {
	Features     []float32   `json:"features"`
	InNeighbors  []int32     `json:"in_neighbors"`
	EdgeFeatures [][]float32 `json:"edge_features,omitempty"`
}

// QueryResponse is the JSON body of a query answer. For cold-start queries
// the virtual node's answer is last, with Node == -1.
type QueryResponse struct {
	Answers []Answer `json:"answers,omitempty"`
	Error   string   `json:"error,omitempty"`
}

// MutateRequest is the JSON body of POST /v1/mutate: one delta batch to
// stage for the next incremental refresh. Added edges may reference nodes
// introduced by add_nodes in the same (or an earlier staged) batch.
type MutateRequest struct {
	Features    []NodeFeatureUpdate `json:"features,omitempty"`
	AddNodes    []NewNode           `json:"add_nodes,omitempty"`
	AddEdges    []NewEdge           `json:"add_edges,omitempty"`
	RemoveEdges []EdgeRef           `json:"remove_edges,omitempty"`
	// Refresh kicks a background refresh after staging; the response's
	// refresh field says whether one started or was already running.
	Refresh bool `json:"refresh,omitempty"`
}

// NodeFeatureUpdate replaces one existing node's feature row.
type NodeFeatureUpdate struct {
	Node     int32     `json:"node"`
	Features []float32 `json:"features"`
}

// NewNode appends a node; its id is assigned at stage time and returned in
// the response's new_nodes (in add_nodes order).
type NewNode struct {
	Features []float32 `json:"features"`
}

// NewEdge appends a directed edge; features are required exactly when the
// graph carries edge attributes.
type NewEdge struct {
	Src      int32     `json:"src"`
	Dst      int32     `json:"dst"`
	Features []float32 `json:"features,omitempty"`
}

// EdgeRef names a directed (src, dst) pair; removal drops every edge
// between the pair.
type EdgeRef struct {
	Src int32 `json:"src"`
	Dst int32 `json:"dst"`
}

// MutateResponse reports what POST /v1/mutate staged.
type MutateResponse struct {
	// PendingDeltas counts staged batches awaiting a refresh, this one
	// included.
	PendingDeltas int `json:"pending_deltas"`
	// NewNodes are the ids assigned to add_nodes entries, in order.
	NewNodes []int32 `json:"new_nodes,omitempty"`
	// Refresh is "started" or "already running" when the request asked for
	// one, empty otherwise.
	Refresh string `json:"refresh,omitempty"`
	Error   string `json:"error,omitempty"`
}

// Handler returns the server's HTTP API:
//
//	GET  /healthz       — liveness (process up)
//	GET  /readyz        — readiness (store epoch present, queue has room)
//	GET  /v1/nodes/{id} — resident-store lookup for one node
//	POST /v1/query      — fresh k-hop inference (roots / what-if / cold-start)
//	GET  /v1/stats      — serving counters + store epoch
//	GET  /v1/logits     — raw little-endian float32 store dump (bit-level audits)
//	POST /v1/refresh    — kick a background refresh pass
//	POST /v1/mutate     — stage a graph delta for the next incremental refresh
//
// Every handler runs behind a recover fence: a panicking request 500s alone
// while the server and all in-flight work survive.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /v1/nodes/{id}", s.handleNode)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/logits", s.handleLogits)
	mux.HandleFunc("POST /v1/refresh", s.handleRefresh)
	mux.HandleFunc("POST /v1/mutate", s.handleMutate)
	return s.withRecovery(mux)
}

func (s *Server) withRecovery(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.m.panics.Add(1)
				writeJSON(w, http.StatusInternalServerError,
					QueryResponse{Error: fmt.Sprintf("internal error: %v", p)})
			}
		}()
		h.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if ok, reason := s.Ready(); !ok {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "unready", "reason": reason})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleNode(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	if snap == nil {
		writeJSON(w, http.StatusServiceUnavailable, QueryResponse{Error: "resident store empty"})
		return
	}
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: "node id must be an integer"})
		return
	}
	if id < 0 || int(id) >= snap.Logits.Rows {
		writeJSON(w, http.StatusNotFound,
			QueryResponse{Error: fmt.Sprintf("node %d outside [0,%d)", id, snap.Logits.Rows)})
		return
	}
	s.m.storeServed.Add(1)
	writeJSON(w, http.StatusOK, storeAnswer(snap, int32(id), false))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// handleLogits streams the resident store's logits as raw little-endian
// float32 — the chaos harness compares these bytes across crash/resume to
// prove bit-identical recovery.
func (s *Server) handleLogits(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	if snap == nil {
		writeJSON(w, http.StatusServiceUnavailable, QueryResponse{Error: "resident store empty"})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Store-Epoch", strconv.FormatInt(snap.Epoch, 10))
	w.Header().Set("X-Rows", strconv.Itoa(snap.Logits.Rows))
	w.Header().Set("X-Cols", strconv.Itoa(snap.Logits.Cols))
	buf := make([]byte, 4*len(snap.Logits.Data))
	for i, f := range snap.Logits.Data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(f))
	}
	_, _ = w.Write(buf)
}

func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	if !s.TryRefreshAsync() {
		writeJSON(w, http.StatusConflict, map[string]string{"status": "refresh already running"})
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "refresh started"})
}

// handleMutate stages one delta batch. Staging never blocks on a running
// refresh — the batch lands in a side buffer the next refresh drains into
// the resident session — so mutation ingest stays responsive while a pass
// computes. Validation happens here, against the node count every earlier
// staged batch leaves behind, so drains apply cleanly in order.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if s.session == nil {
		s.m.mutationsUnsupported.Add(1)
		writeJSON(w, http.StatusConflict,
			MutateResponse{Error: "incremental mode disabled: this server refreshes by full passes only — " +
				"the mutation was rejected before staging, nothing was acknowledged and nothing is lost; " +
				"re-send it to a server running with incremental refresh enabled"})
		return
	}
	var req MutateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, MutateResponse{Error: "bad request body: " + err.Error()})
		return
	}
	d := graph.Delta{}
	for _, f := range req.Features {
		d.Features = append(d.Features, graph.FeatureUpdate{Node: f.Node, Features: f.Features})
	}
	for _, a := range req.AddNodes {
		d.AddNodes = append(d.AddNodes, graph.NodeAdd{Features: a.Features})
	}
	for _, e := range req.AddEdges {
		d.AddEdges = append(d.AddEdges, graph.EdgeAdd{Src: e.Src, Dst: e.Dst, Features: e.Features})
	}
	for _, e := range req.RemoveEdges {
		d.RemoveEdges = append(d.RemoveEdges, graph.EdgeKey{Src: e.Src, Dst: e.Dst})
	}
	if d.Empty() {
		writeJSON(w, http.StatusBadRequest, MutateResponse{Error: "empty delta: nothing to mutate"})
		return
	}

	s.stagedMu.Lock()
	if msg := s.validateDeltaLocked(d); msg != "" {
		s.stagedMu.Unlock()
		writeJSON(w, http.StatusBadRequest, MutateResponse{Error: msg})
		return
	}
	// Durability boundary: the batch reaches the WAL before it is staged or
	// acknowledged, under stagedMu so WAL order equals staged order. A failed
	// append refuses the mutation outright — the client knows nothing was
	// staged, so nothing acknowledged can ever be lost.
	var seq uint64
	if s.wal != nil {
		seq = s.walSeq + 1
		var aerr error
		if s.faults.fire(pregel.FaultWALAppend) {
			aerr = fmt.Errorf("injected wal-append fault")
		} else {
			aerr = s.wal.Append(seq, encodeDelta(nil, d))
		}
		if aerr != nil {
			s.stagedMu.Unlock()
			s.m.walAppendFailures.Add(1)
			writeJSON(w, http.StatusInternalServerError,
				MutateResponse{Error: "write-ahead log append failed: mutation not staged, not acknowledged — nothing is lost; retry: " + aerr.Error()})
			return
		}
		s.walSeq = seq
	}
	var newIDs []int32
	for i := range d.AddNodes {
		newIDs = append(newIDs, int32(s.stagedNodes+i))
	}
	s.staged = append(s.staged, stagedDelta{seq: seq, d: d})
	s.stagedNodes += len(d.AddNodes)
	pending := len(s.staged)
	s.stagedMu.Unlock()
	s.m.mutations.Add(1)
	if hook := s.cfg.MutateAckHook; hook != nil {
		hook(seq)
	}

	resp := MutateResponse{PendingDeltas: pending, NewNodes: newIDs}
	if req.Refresh {
		if s.TryRefreshAsync() {
			resp.Refresh = "started"
		} else {
			resp.Refresh = "already running"
		}
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// validateDeltaLocked is the stage-time boundary check, mirroring
// graph.ApplyDelta's validation against the post-staging node count (feature
// and edge-feature dimensions never change across deltas, so the config
// graph's are authoritative). Only drain-order conflicts — a removal whose
// edge an earlier batch already dropped — can still fail later.
func (s *Server) validateDeltaLocked(d graph.Delta) string {
	old := s.stagedNodes
	n := old + len(d.AddNodes) // same-batch node references are legal
	fdim := s.cfg.Graph.FeatureDim()
	for _, f := range d.Features {
		if int(f.Node) < 0 || int(f.Node) >= old {
			return fmt.Sprintf("feature update for node %d outside [0,%d)", f.Node, old)
		}
		if len(f.Features) != fdim {
			return fmt.Sprintf("feature update for node %d has dim %d, graph features are %d", f.Node, len(f.Features), fdim)
		}
	}
	for i, a := range d.AddNodes {
		if len(a.Features) != fdim {
			return fmt.Sprintf("add_nodes[%d] has dim %d, graph features are %d", i, len(a.Features), fdim)
		}
	}
	edim := 0
	if s.cfg.Graph.EdgeFeatures != nil {
		edim = s.cfg.Graph.EdgeFeatureDim()
	}
	for i, e := range d.AddEdges {
		if int(e.Src) < 0 || int(e.Src) >= n || int(e.Dst) < 0 || int(e.Dst) >= n {
			return fmt.Sprintf("add_edges[%d] (%d->%d) references nodes outside [0,%d)", i, e.Src, e.Dst, n)
		}
		if len(e.Features) != edim {
			return fmt.Sprintf("add_edges[%d] has feature dim %d, graph edges carry %d", i, len(e.Features), edim)
		}
	}
	for i, e := range d.RemoveEdges {
		if int(e.Src) < 0 || int(e.Src) >= n || int(e.Dst) < 0 || int(e.Dst) >= n {
			return fmt.Sprintf("remove_edges[%d] (%d->%d) references nodes outside [0,%d)", i, e.Src, e.Dst, n)
		}
	}
	return ""
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: "bad request body: " + err.Error()})
		return
	}
	j, errMsg := s.buildJob(&req)
	if errMsg != "" {
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: errMsg})
		return
	}
	s.m.requests.Add(1)

	deadline := s.cfg.MaxLatency
	if req.DeadlineMs > 0 {
		deadline = time.Duration(req.DeadlineMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()
	j.ctx = ctx

	// Admission: refuse during shutdown, shed when the bounded queue is
	// full — the server's capacity statement, not a transient failure.
	select {
	case <-s.stop:
		writeJSON(w, http.StatusServiceUnavailable, QueryResponse{Error: "server shutting down"})
		return
	default:
	}
	select {
	case s.queue <- j:
	default:
		s.m.shed.Add(1)
		w.Header().Set("Retry-After", s.retryAfter())
		writeJSON(w, http.StatusTooManyRequests, QueryResponse{Error: "overloaded: admission queue full"})
		return
	}

	var res jobResult
	select {
	case res = <-j.res:
	case <-ctx.Done():
		// Deadline passed with the job still queued or mid-compute: degrade
		// from the store. finish races the batcher; whichever delivery wins
		// is the response (the channel is guaranteed non-empty after).
		s.finish(j, s.degradeResult(j, "deadline exceeded"))
		res = <-j.res
	}
	if res.errMsg != "" {
		writeJSON(w, res.status, QueryResponse{Error: res.errMsg})
		return
	}
	writeJSON(w, res.status, QueryResponse{Answers: res.answers})
}

// buildJob validates a query against the resident graph — the current
// snapshot's, so freshly mutated-in nodes become queryable the moment their
// refresh lands — and assembles the batcher job. All request-derived indices
// and dimensions are checked here, at the boundary, so the compute path
// never sees malformed input.
func (s *Server) buildJob(req *QueryRequest) (*job, string) {
	g := s.currentGraph()
	if len(req.Roots) == 0 && req.ColdStart == nil {
		return nil, "query needs roots or cold_start"
	}
	seen := make(map[int32]bool, len(req.Roots))
	for _, r := range req.Roots {
		if int(r) < 0 || int(r) >= g.NumNodes {
			return nil, fmt.Sprintf("root %d outside [0,%d)", r, g.NumNodes)
		}
		if seen[r] {
			return nil, fmt.Sprintf("duplicate root %d", r)
		}
		seen[r] = true
	}
	j := &job{roots: req.Roots, res: make(chan jobResult, 1)}
	if len(req.Overrides) > 0 {
		j.overrides = make(map[int32][]float32, len(req.Overrides))
		for key, feat := range req.Overrides {
			node, err := strconv.ParseInt(key, 10, 32)
			if err != nil || int(node) < 0 || int(node) >= g.NumNodes {
				return nil, fmt.Sprintf("override key %q is not a node id in [0,%d)", key, g.NumNodes)
			}
			if len(feat) != g.FeatureDim() {
				return nil, fmt.Sprintf("override for node %d has dim %d, graph features are %d", node, len(feat), g.FeatureDim())
			}
			j.overrides[int32(node)] = feat
		}
	}
	if cs := req.ColdStart; cs != nil {
		if len(cs.InNeighbors) == 0 {
			return nil, "cold_start needs at least one in-neighbor"
		}
		if len(cs.Features) != g.FeatureDim() {
			return nil, fmt.Sprintf("cold_start features dim %d, graph features are %d", len(cs.Features), g.FeatureDim())
		}
		for _, u := range cs.InNeighbors {
			if int(u) < 0 || int(u) >= g.NumNodes {
				return nil, fmt.Sprintf("cold_start in-neighbor %d outside [0,%d)", u, g.NumNodes)
			}
		}
		if g.EdgeFeatures != nil {
			if len(cs.EdgeFeatures) != len(cs.InNeighbors) {
				return nil, fmt.Sprintf("cold_start has %d edge feature rows for %d in-edges", len(cs.EdgeFeatures), len(cs.InNeighbors))
			}
			for i, row := range cs.EdgeFeatures {
				if len(row) != g.EdgeFeatureDim() {
					return nil, fmt.Sprintf("cold_start edge feature %d has dim %d, graph edges are %d", i, len(row), g.EdgeFeatureDim())
				}
			}
		} else if len(cs.EdgeFeatures) != 0 {
			return nil, "cold_start carries edge features but the graph has none"
		}
		j.cold = &graph.VirtualRoot{
			Features:     cs.Features,
			InNeighbors:  cs.InNeighbors,
			EdgeFeatures: cs.EdgeFeatures,
		}
	}
	return j, ""
}
