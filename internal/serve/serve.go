// Package serve is InferTurbo's online inference service: a long-lived
// server that loads graph and model once, keeps the latest full-graph pass
// resident as an immutable prediction store behind an RCU-style atomic swap
// (refreshes never block reads), and answers cold-start/what-if queries with
// fresh k-hop induced-subgraph inference on the batched compute plane.
//
// Robustness is the design center, and it threads through every request:
//
//   - Dynamic micro-batching: concurrent k-hop queries coalesce under a
//     max-batch-size / max-latency window and execute as one canonical
//     induced subgraph, with per-request result scatter.
//   - Bounded admission: a fixed-depth queue sheds excess load with 429 +
//     Retry-After instead of growing goroutines without bound.
//   - Deadline propagation: each request's context deadline flows through
//     the batcher into the compute plane via inference.Options.Cancel; a
//     batch whose every member died aborts at the next superstep.
//   - Graceful degradation: a fresh query that misses its deadline falls
//     back to the resident store's answer, marked stale with its epoch.
//   - Panic isolation: a poisoned query 500s; batch mates are re-executed
//     individually and the server survives.
//   - Health/readiness gated on store epoch and queue depth.
//   - Incremental refresh: POST /v1/mutate stages graph deltas (feature
//     updates, new nodes, edge changes) without blocking on a running pass;
//     the next refresh drains them into a resident inference.Session and
//     recomputes only the change set's L-hop flood — bit-identical to a
//     full pass, falling back to one when the flood is too large.
//
// Fresh answers are bit-identical to the resident store's (enforced by the
// k-hop identity property tests): degradation changes freshness, never
// values, for any graph the store was computed on.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"inferturbo/internal/checkpoint"
	"inferturbo/internal/gas"
	"inferturbo/internal/graph"
	"inferturbo/internal/inference"
	"inferturbo/internal/tensor"
)

// Config assembles a Server.
type Config struct {
	Model *gas.Model
	Graph *graph.Graph
	// Refresh configures the resident store's full-graph pass — including,
	// for chaos testing and crash recovery, CheckpointDir/Resume and a
	// pregel.FaultPlan. Resume is honored only while the store is empty
	// (i.e. the first pass after process start).
	Refresh inference.Options
	// Hops is the induced-subgraph depth for fresh queries; 0 selects the
	// model's layer count (the exact, information-complete neighborhood).
	Hops int
	// QueryWorkers is the partition count for query-batch inference
	// (default 2 — query subgraphs are small).
	QueryWorkers int
	// QueryParallel runs query-batch workers on goroutines.
	QueryParallel bool
	// MaxBatchSize caps the roots coalesced into one micro-batch
	// (default 16).
	MaxBatchSize int
	// BatchWindow is how long the batcher waits to fill a batch after the
	// first request arrives (default 2ms).
	BatchWindow time.Duration
	// QueueDepth bounds the admission queue; a full queue sheds with 429
	// (default 64).
	QueueDepth int
	// MaxLatency is the serving SLO window: the default per-request
	// deadline, and the p99 gate the bench enforces (default 250ms).
	MaxLatency time.Duration
	// RefreshEvery re-runs the full-graph pass periodically when > 0.
	RefreshEvery time.Duration
	// DisableIncremental forces every refresh through the one-shot
	// full-graph pass even when the Refresh options would support an
	// incremental Session; POST /v1/mutate then answers 409. Refresh
	// options the Session rejects (durable CheckpointDir/Resume, subgraph
	// strategy knobs) disable incremental mode implicitly.
	DisableIncremental bool
	// SessionDir makes the mutate→refresh pipeline crash-durable: mutation
	// batches append to a write-ahead log under this directory before they
	// are acknowledged, the incremental session persists its resident slabs
	// as checkpoint epochs under it, and New resumes from both — a restarted
	// server replays unconsumed mutations as one delta pass instead of a
	// full re-prime, with /v1/logits byte-identical to a never-crashed
	// process. Requires incremental mode: combining it with
	// DisableIncremental, or with Refresh options the Session rejects, is a
	// construction error (durability must never silently fall back to losing
	// state). Durability level follows Refresh.CheckpointSync.
	SessionDir string
	// MutateAckHook, when non-nil, runs after a mutation batch has been
	// WAL-appended and staged (i.e. once it is guaranteed recoverable),
	// with the batch's WAL sequence number — the post-mutate-ack SIGKILL
	// seam for the crash tests. Nil outside tests.
	MutateAckHook func(seq uint64)
	// WALTruncateHook, when non-nil, runs on the persister goroutine
	// immediately before the WAL truncation that follows a durable session
	// epoch, with the replay mark being truncated through — the
	// pre-WAL-truncate SIGKILL seam. Nil outside tests.
	WALTruncateHook func(mark uint64)
}

// Snapshot is one immutable full-graph pass result — the resident store.
// Readers load it with a single atomic pointer read; a refresh installs a
// fresh Snapshot with one atomic store and never mutates a published one,
// so lookups are wait-free and always internally consistent.
type Snapshot struct {
	Epoch      int64
	Logits     *tensor.Matrix
	Classes    []int32
	MultiLabel *tensor.Matrix
	Stats      inference.Stats
	// Graph is the graph this pass computed on. Queries validate and induce
	// against it, so answers always agree with the store's epoch even as
	// mutations advance the graph.
	Graph *graph.Graph
	// RefreshKind says which path produced this snapshot ("full" or
	// "delta"); RefreshWall is that pass's wall time (drain included).
	RefreshKind string
	RefreshWall time.Duration
}

// Server is the online inference service. Construct with New, start the
// background machinery with Start, serve s.Handler() over HTTP, stop with
// Close.
type Server struct {
	cfg  Config
	hops int

	snap  atomic.Pointer[Snapshot]
	queue chan *job

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	refreshMu sync.Mutex // single-flight: at most one full-graph pass at a time

	// session is the resident incremental-inference state machine, nil when
	// incremental mode is off. It is touched only under refreshMu; mutations
	// stage into the lock-free-for-refresh side buffer below and drain at
	// the start of the next refresh, so POST /v1/mutate never blocks on a
	// running pass.
	session     *inference.Session
	stagedMu    sync.Mutex // guards staged, stagedNodes and walSeq
	staged      []stagedDelta
	stagedNodes int    // node count after every staged delta applies, in order
	walSeq      uint64 // last WAL sequence number assigned (or replayed)

	// Durable-serving state, nil/zero unless Config.SessionDir is set.
	wal            *checkpoint.WAL
	faults         *serveFaults
	sessionResumed bool
	lastReplayNs   atomic.Int64

	m counters

	// execHook, when non-nil, runs inside the batch compute path (and its
	// panic recovery) before inference — the test seam for slow and
	// poisoned queries.
	execHook func(batch []*job)
}

// New validates cfg, applies defaults, and returns an unstarted Server. The
// store is empty (readiness reports 503) until Start's initial refresh.
func New(cfg Config) (*Server, error) {
	if cfg.Model == nil || cfg.Graph == nil {
		return nil, fmt.Errorf("serve: Config requires Model and Graph")
	}
	if cfg.Graph.FeatureDim() != cfg.Model.InDim() {
		return nil, fmt.Errorf("serve: graph features dim %d, model expects %d", cfg.Graph.FeatureDim(), cfg.Model.InDim())
	}
	if cfg.Hops == 0 {
		cfg.Hops = cfg.Model.NumLayers()
	}
	if cfg.Hops < 0 {
		return nil, fmt.Errorf("serve: negative hops %d", cfg.Hops)
	}
	if cfg.QueryWorkers <= 0 {
		cfg.QueryWorkers = 2
	}
	if cfg.MaxBatchSize <= 0 {
		cfg.MaxBatchSize = 16
	}
	if cfg.BatchWindow <= 0 {
		cfg.BatchWindow = 2 * time.Millisecond
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxLatency <= 0 {
		cfg.MaxLatency = 250 * time.Millisecond
	}
	s := &Server{
		cfg:         cfg,
		hops:        cfg.Hops,
		queue:       make(chan *job, cfg.QueueDepth),
		stop:        make(chan struct{}),
		stagedNodes: cfg.Graph.NumNodes,
	}
	if cfg.SessionDir != "" {
		if err := s.openDurable(); err != nil {
			return nil, err
		}
	} else if !cfg.DisableIncremental {
		// An incompatible Refresh config (durable checkpoints, subgraph
		// strategy knobs) falls back to the one-shot path; /v1/mutate then
		// reports the server as non-incremental. With SessionDir set the
		// fallback is forbidden — openDurable errors loudly instead.
		if sess, err := inference.NewSession(cfg.Model, cfg.Graph, cfg.Refresh); err == nil {
			s.session = sess
		}
	}
	return s, nil
}

// Incremental reports whether the server accepts mutations and refreshes
// through the resident delta session.
func (s *Server) Incremental() bool { return s.session != nil }

// currentGraph is the graph queries validate and induce against: the latest
// snapshot's (it advances as mutations land), or the configured graph before
// any pass has completed.
func (s *Server) currentGraph() *graph.Graph {
	if snap := s.snap.Load(); snap != nil && snap.Graph != nil {
		return snap.Graph
	}
	return s.cfg.Graph
}

// Start runs the initial full-graph pass synchronously (honoring
// Refresh.Resume, so a restarted process continues a killed pass from its
// latest durable epoch) and launches the batcher plus the optional periodic
// refresher.
func (s *Server) Start() error {
	if err := s.Refresh(); err != nil {
		return err
	}
	s.wg.Add(1)
	go s.runBatcher()
	if s.cfg.RefreshEvery > 0 {
		s.wg.Add(1)
		go s.refreshLoop()
	}
	return nil
}

// Close stops the background goroutines and fails any queued requests with
// a shutdown status, then shuts the durable machinery down cleanly: the
// in-flight session epoch drains and the WAL is fsynced regardless of sync
// mode, so a graceful stop is power-loss durable. On a non-durable
// incremental server, acknowledged-but-unrefreshed batches die with the
// process here — they are counted as lost (the observable the WAL exists to
// zero out). Idempotent.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	// The batcher has exited; anything a racing handler enqueued afterwards
	// is failed here so no caller waits out its full deadline.
	for {
		select {
		case j := <-s.queue:
			s.finish(j, jobResult{status: 503, errMsg: "server shutting down", metric: metricError})
		default:
			goto drained
		}
	}
drained:
	if s.session != nil {
		s.session.CloseDurable()
	}
	s.stagedMu.Lock()
	pending := len(s.staged)
	s.stagedMu.Unlock()
	if s.wal != nil {
		// Pending batches are WAL-durable: the next start replays them.
		_ = s.wal.Close()
	} else if s.session != nil && pending > 0 {
		s.m.mutationsLost.Add(int64(pending))
	}
}

// Store returns the current resident snapshot, nil before the first
// completed refresh.
func (s *Server) Store() *Snapshot { return s.snap.Load() }

// Ready reports whether the server can take queries: the store holds at
// least one epoch and the admission queue has room.
func (s *Server) Ready() (bool, string) {
	if s.snap.Load() == nil {
		return false, "store empty: no full-graph pass has completed"
	}
	if len(s.queue) >= cap(s.queue) {
		return false, "admission queue full"
	}
	return true, "ok"
}

// Refresh runs one full-graph pass and atomically swaps the result in as
// the new resident snapshot. Concurrent callers serialize; queries keep
// answering from the previous snapshot throughout (including across any
// injected faults or checkpoint replays inside the pass).
func (s *Server) Refresh() error {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	return s.refreshLocked()
}

// TryRefreshAsync starts a background refresh unless one is already
// running; reports whether a refresh was started.
func (s *Server) TryRefreshAsync() bool {
	if !s.refreshMu.TryLock() {
		return false
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.refreshMu.Unlock()
		_ = s.refreshLocked() // failures are counted and surfaced via /v1/stats
	}()
	return true
}

func (s *Server) refreshLocked() error {
	prev := s.snap.Load()
	start := time.Now()
	res, kind, g, err := s.runRefresh(prev)
	if err != nil {
		s.m.refreshFailures.Add(1)
		return err
	}
	epoch := int64(1)
	if prev != nil {
		epoch = prev.Epoch + 1
	}
	s.snap.Store(&Snapshot{
		Epoch:       epoch,
		Logits:      res.Logits,
		Classes:     res.Classes,
		MultiLabel:  res.MultiLabel,
		Stats:       res.Stats,
		Graph:       g,
		RefreshKind: kind,
		RefreshWall: time.Since(start),
	})
	s.m.refreshes.Add(1)
	return nil
}

// runRefresh executes one pass behind a recover fence, so a panicking
// refresh degrades to an error (the previous snapshot stays live) instead
// of killing the server. The incremental session drains the staged deltas
// and decides delta-vs-full itself; the one-shot path always runs full.
func (s *Server) runRefresh(prev *Snapshot) (res *inference.Result, kind string, g *graph.Graph, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("serve: refresh panicked: %v", p)
		}
	}()
	if s.session == nil {
		opts := s.cfg.Refresh
		if prev != nil {
			// Resume only bridges a killed pass across a process restart;
			// once a pass has completed in this process, later refreshes
			// start clean.
			opts.Resume = false
		}
		res, err = inference.RunPregel(s.cfg.Model, s.cfg.Graph, opts)
		return res, string(inference.RefreshFull), s.cfg.Graph, err
	}

	s.stagedMu.Lock()
	staged := s.staged
	s.staged = nil
	s.stagedMu.Unlock()
	// Chaos harnesses arm fault plans between refreshes; forward the current
	// plan so injected crashes hit the incremental pass too.
	s.session.SetFaults(s.cfg.Refresh.Faults)
	var mark uint64
	for _, sd := range staged {
		if _, merr := s.session.Mutate(sd.d); merr != nil {
			// Stage-time validation leaves only drain-order conflicts (e.g. a
			// removal whose edge an earlier batch already dropped): the batch
			// is rejected, the pass proceeds.
			s.m.mutationsRejected.Add(1)
		} else {
			s.m.mutationsApplied.Add(1)
		}
		// Rejected batches advance the mark too: they are consumed — a
		// restart replaying them would reject them identically.
		mark = sd.seq
	}
	if mark > 0 {
		// The epoch persisted after this pass covers the WAL prefix just
		// drained; onSessionPersist truncates through this mark once (and
		// only once) that epoch is durable.
		s.session.SetReplayMark(mark)
	}
	// Resync the staging node count to what actually applied, so a rejected
	// batch's phantom node ids don't loosen stage-time validation forever
	// (batches staged during the drain stay counted).
	s.stagedMu.Lock()
	n := s.session.Graph().NumNodes
	for _, sd := range s.staged {
		n += len(sd.d.AddNodes)
	}
	s.stagedNodes = n
	s.stagedMu.Unlock()

	var k inference.RefreshKind
	res, k, err = s.session.Refresh()
	return res, string(k), s.session.Graph(), err
}

func (s *Server) refreshLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.RefreshEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			_ = s.Refresh()
		}
	}
}
