package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"inferturbo/internal/graph"
	"inferturbo/internal/inference"
	"inferturbo/internal/pregel"
)

// waitFor polls cond until it holds or the deadline passes — the durable
// machinery (epoch persist, WAL truncation) completes on a background
// goroutine after Refresh returns.
func waitFor(t *testing.T, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// durableServer builds a started server with SessionDir wired, plus its
// HTTP front end. Unlike newTestServer it does not t.Cleanup-close — the
// warm-restart tests close and reopen explicitly.
func durableServer(t *testing.T, dir string, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	g, m := testFixture(t)
	cfg := Config{
		Model: m, Graph: g,
		Refresh:      inference.Options{NumWorkers: 3, DeltaCutover: 1.1},
		QueryWorkers: 2,
		SessionDir:   dir,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s, httptest.NewServer(s.Handler())
}

// TestDurableConfigErrors: a server asked to be durable must never silently
// fall back to a lossy mode — incompatible configs fail construction.
func TestDurableConfigErrors(t *testing.T) {
	g, m := testFixture(t)
	if _, err := New(Config{Model: m, Graph: g, SessionDir: t.TempDir(), DisableIncremental: true}); err == nil {
		t.Fatal("SessionDir + DisableIncremental accepted")
	}
	if _, err := New(Config{Model: m, Graph: g, SessionDir: t.TempDir(),
		Refresh: inference.Options{ShadowNodes: true}}); err == nil {
		t.Fatal("SessionDir + session-incompatible refresh options accepted")
	}
}

// TestDurableWarmRestartBitIdentical is the tentpole property at the serve
// layer, without SIGKILL (the cmd/serve re-exec tests add that): a server
// acknowledges mutations — some refreshed into durable slabs, one still
// only in the WAL — then closes; a second server on the same SessionDir must
// resume, replay, delta-refresh, and serve /v1/logits byte-identical to a
// never-restarted oracle, losing nothing.
func TestDurableWarmRestartBitIdentical(t *testing.T) {
	dir := t.TempDir()
	a, aTS := durableServer(t, dir, nil)
	if !a.Incremental() || a.Metrics().SessionResumed {
		t.Fatalf("fresh durable server: incremental=%v resumed=%v", a.Incremental(), a.Metrics().SessionResumed)
	}
	g0 := a.cfg.Graph
	newID := int32(g0.NumNodes)

	// Batch 1+2 drain into a delta refresh (slab-durable afterwards).
	if st, _ := postMutate(t, aTS, fmt.Sprintf(
		`{"features":[{"node":3,"features":[1,0,-1,0.5,0,2]}],
		  "add_nodes":[{"features":[0.1,0.2,0.3,0.4,0.5,0.6]}],
		  "add_edges":[{"src":%d,"dst":7},{"src":7,"dst":%d}]}`, newID, newID)); st != 202 {
		t.Fatalf("batch 1: %d", st)
	}
	if st, _ := postMutate(t, aTS, `{"features":[{"node":11,"features":[2,2,2,-2,-2,-2]}]}`); st != 202 {
		t.Fatalf("batch 2: %d", st)
	}
	if err := a.Refresh(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "epoch persist + WAL truncation", func() bool {
		m := a.Metrics()
		return m.SessionEpochs >= 2 && m.WALRecords == 0
	})
	// Batch 3 stays WAL-only: acknowledged, never refreshed in this process.
	if st, _ := postMutate(t, aTS, `{"features":[{"node":5,"features":[-3,0,3,0,-3,0]}]}`); st != 202 {
		t.Fatalf("batch 3: %d", st)
	}
	if m := a.Metrics(); !m.Durable || m.WALRecords != 1 || m.WALAppends != 3 {
		t.Fatalf("WAL state before restart: %+v", m)
	}
	aTS.Close()
	a.Close()
	if got := a.Metrics().MutationsLost; got != 0 {
		t.Fatalf("durable close lost %d mutations", got)
	}

	b, bTS := durableServer(t, dir, nil)
	defer func() { bTS.Close(); b.Close() }()
	m := b.Metrics()
	if !m.SessionResumed || m.WALReplayed != 1 || m.LastRefreshKind != "delta" {
		t.Fatalf("restarted server: resumed=%v replayed=%d kind=%q", m.SessionResumed, m.WALReplayed, m.LastRefreshKind)
	}
	if m.LastReplayMs < 0 {
		t.Fatalf("last_replay_ms=%v", m.LastReplayMs)
	}

	// Oracle: all three batches applied offline, computed from scratch.
	og := g0
	for _, d := range []graph.Delta{
		{
			Features: []graph.FeatureUpdate{{Node: 3, Features: []float32{1, 0, -1, 0.5, 0, 2}}},
			AddNodes: []graph.NodeAdd{{Features: []float32{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}}},
			AddEdges: []graph.EdgeAdd{{Src: newID, Dst: 7}, {Src: 7, Dst: newID}},
		},
		{Features: []graph.FeatureUpdate{{Node: 11, Features: []float32{2, 2, 2, -2, -2, -2}}}},
		{Features: []graph.FeatureUpdate{{Node: 5, Features: []float32{-3, 0, 3, 0, -3, 0}}}},
	} {
		var err error
		og, _, err = graph.ApplyDelta(og, d)
		if err != nil {
			t.Fatal(err)
		}
	}
	want, err := inference.RunPregel(b.cfg.Model, og, inference.Options{NumWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fetchLogits(t, bTS), logitsBytes(want.Logits)) {
		t.Fatal("warm-restarted store bytes differ from the never-restarted oracle")
	}
	// The WAL-only batch was consumed by the restart's delta pass; its
	// truncation follows the pass's epoch.
	waitFor(t, "post-restart truncation", func() bool { return b.Metrics().WALRecords == 0 })
}

// TestDurableFaultWALAppend: an injected WAL-append failure refuses the
// mutation with a 500 whose body states nothing was staged — and a retry
// succeeds, because the fault consumed its one occurrence.
func TestDurableFaultWALAppend(t *testing.T) {
	s, ts := durableServer(t, t.TempDir(), func(c *Config) {
		c.Refresh.Faults = &pregel.FaultPlan{Crashes: []pregel.Fault{
			{Superstep: 0, Point: pregel.FaultWALAppend},
		}}
	})
	defer func() { ts.Close(); s.Close() }()
	body := `{"features":[{"node":1,"features":[1,1,1,1,1,1]}]}`
	st, mr := postMutate(t, ts, body)
	if st != 500 || mr.Error == "" {
		t.Fatalf("faulted append: status=%d err=%q", st, mr.Error)
	}
	if m := s.Metrics(); m.WALAppendFailures != 1 || m.Mutations != 0 || m.PendingDeltas != 0 || m.WALRecords != 0 {
		t.Fatalf("after faulted append: %+v", m)
	}
	if st, _ := postMutate(t, ts, body); st != 202 {
		t.Fatalf("retry after fault: %d", st)
	}
	if m := s.Metrics(); m.WALRecords != 1 || m.Mutations != 1 {
		t.Fatalf("after retry: %+v", m)
	}
}

// TestDurableFaultSlabPersist: an aborted epoch persist must leave the WAL
// untruncated (the records still carry the state) and the next refresh's
// persist covers everything.
func TestDurableFaultSlabPersist(t *testing.T) {
	s, ts := durableServer(t, t.TempDir(), func(c *Config) {
		// Occurrence 0 is the initial prime's persist; 1 is the delta pass's.
		c.Refresh.Faults = &pregel.FaultPlan{Crashes: []pregel.Fault{
			{Superstep: 1, Point: pregel.FaultSlabPersist},
		}}
	})
	defer func() { ts.Close(); s.Close() }()
	waitFor(t, "prime persist", func() bool { return s.Metrics().SessionEpochs == 1 })

	if st, _ := postMutate(t, ts, `{"features":[{"node":2,"features":[4,4,4,4,4,4]}]}`); st != 202 {
		t.Fatal("mutate failed")
	}
	if err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "aborted persist", func() bool { return s.Metrics().SessionPersistFailures == 1 })
	if m := s.Metrics(); m.WALRecords != 1 || m.SessionEpochs != 1 {
		t.Fatalf("after aborted persist: %+v", m)
	}
	// The next refresh (another mutation) persists and truncates both records.
	if st, _ := postMutate(t, ts, `{"features":[{"node":4,"features":[5,5,5,5,5,5]}]}`); st != 202 {
		t.Fatal("mutate failed")
	}
	if err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "recovered persist + truncation", func() bool {
		m := s.Metrics()
		return m.SessionEpochs == 2 && m.WALRecords == 0
	})
}

// TestDurableFaultWALTruncateDedup: a skipped truncation leaves consumed
// records in the WAL; a restart must dedup them against the resumed epoch's
// replay mark — applying them again would corrupt the store.
func TestDurableFaultWALTruncateDedup(t *testing.T) {
	dir := t.TempDir()
	a, aTS := durableServer(t, dir, func(c *Config) {
		// Occurrence 0 of wal-truncate is the first mark>0 truncation (the
		// prime epoch's mark-0 persist never truncates).
		c.Refresh.Faults = &pregel.FaultPlan{Crashes: []pregel.Fault{
			{Superstep: 0, Point: pregel.FaultWALTruncate},
		}}
	})
	if st, _ := postMutate(t, aTS, `{"features":[{"node":9,"features":[7,0,-7,0,7,0]}]}`); st != 202 {
		t.Fatal("mutate failed")
	}
	if err := a.Refresh(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "skipped truncation", func() bool { return a.Metrics().WALTruncSkipped == 1 })
	if m := a.Metrics(); m.WALRecords != 1 {
		t.Fatalf("truncation not skipped: %+v", m)
	}
	aTS.Close()
	a.Close()

	b, bTS := durableServer(t, dir, nil)
	defer func() { bTS.Close(); b.Close() }()
	// The lingering record is at or below the resumed replay mark: it must
	// be skipped, not re-staged.
	if m := b.Metrics(); !m.SessionResumed || m.WALReplayed != 0 || m.PendingDeltas != 0 {
		t.Fatalf("restart after skipped truncation: %+v", m)
	}
	g1, _, err := graph.ApplyDelta(b.cfg.Graph, graph.Delta{
		Features: []graph.FeatureUpdate{{Node: 9, Features: []float32{7, 0, -7, 0, 7, 0}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := inference.RunPregel(b.cfg.Model, g1, inference.Options{NumWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fetchLogits(t, bTS), logitsBytes(want.Logits)) {
		t.Fatal("replay after skipped truncation double-applied or lost the mutation")
	}
}

// TestMutateLossAccounting pins the satellite: a non-incremental server
// counts 409-refused mutations (never staged, never lost) and says so in the
// body; a WAL-less incremental server counts acknowledged batches it drops
// at shutdown as lost; a durable server loses nothing.
func TestMutateLossAccounting(t *testing.T) {
	off, offTS := newTestServer(t, func(c *Config) { c.DisableIncremental = true })
	st, mr := postMutate(t, offTS, `{"features":[{"node":1,"features":[0,0,0,0,0,0]}]}`)
	if st != 409 || !bytes.Contains([]byte(mr.Error), []byte("nothing is lost")) {
		t.Fatalf("409 body must state nothing was staged or lost: status=%d err=%q", st, mr.Error)
	}
	if m := off.Metrics(); m.MutationsUnsupported != 1 || m.MutationsLost != 0 {
		t.Fatalf("non-incremental accounting: %+v", m)
	}

	lossy, lossyTS := newTestServer(t, nil)
	if st, _ := postMutate(t, lossyTS, `{"features":[{"node":1,"features":[9,9,9,9,9,9]}]}`); st != 202 {
		t.Fatal("stage failed")
	}
	lossyTS.Close()
	lossy.Close()
	if m := lossy.Metrics(); m.MutationsLost != 1 {
		t.Fatalf("WAL-less close must count the acked-but-unrefreshed batch as lost: %+v", m)
	}
}

// TestConcurrentMutateDuringRefresh hammers the stagedMu handoff — mutations
// staging while refreshes drain concurrently — and then proves no batch was
// lost or doubled: the final store equals an offline application of every
// acknowledged update. Each goroutine owns distinct nodes so the oracle is
// order-independent. Run under -race this is the staging-handoff race test.
func TestConcurrentMutateDuringRefresh(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Refresh = inference.Options{NumWorkers: 3, DeltaCutover: 1.1}
	})
	const goroutines = 8
	const perG = 6
	errs := make(chan error, goroutines)
	var mutators sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		mutators.Add(1)
		go func(gi int) {
			defer mutators.Done()
			for i := 0; i < perG; i++ {
				node := gi*perG + i // distinct node per update
				val := float32(gi + 1)
				body := fmt.Sprintf(`{"features":[{"node":%d,"features":[%g,%g,%g,%g,%g,%g]}]}`,
					node, val, -val, val, -val, val, -val)
				resp, err := http.Post(ts.URL+"/v1/mutate", "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != 202 {
					errs <- fmt.Errorf("mutate %d: status %d", node, resp.StatusCode)
					return
				}
			}
		}(gi)
	}
	// Refresh continuously while mutations land, racing the drain handoff.
	stopRefresh := make(chan struct{})
	var refresher sync.WaitGroup
	refresher.Add(1)
	go func() {
		defer refresher.Done()
		for {
			select {
			case <-stopRefresh:
				return
			default:
				s.TryRefreshAsync()
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
	mutators.Wait()
	close(stopRefresh)
	refresher.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Drain whatever is still staged with one final synchronous refresh.
	if err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
	if a, r := s.m.mutationsApplied.Load(), s.m.mutationsRejected.Load(); a != goroutines*perG || r != 0 {
		t.Fatalf("applied=%d rejected=%d, want %d/0", a, r, goroutines*perG)
	}
	// Oracle: every update applied once, order irrelevant (distinct nodes).
	var d graph.Delta
	for gi := 0; gi < goroutines; gi++ {
		for i := 0; i < perG; i++ {
			val := float32(gi + 1)
			d.Features = append(d.Features, graph.FeatureUpdate{
				Node:     int32(gi*perG + i),
				Features: []float32{val, -val, val, -val, val, -val},
			})
		}
	}
	og, _, err := graph.ApplyDelta(s.cfg.Graph, d)
	if err != nil {
		t.Fatal(err)
	}
	want, err := inference.RunPregel(s.cfg.Model, og, inference.Options{NumWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fetchLogits(t, ts), logitsBytes(want.Logits)) {
		t.Fatal("concurrent mutate-during-refresh lost or doubled an acknowledged batch")
	}
}

// TestWALDeltaCodecRoundTrip pins the WAL payload encoding of a delta batch.
func TestWALDeltaCodecRoundTrip(t *testing.T) {
	in := graph.Delta{
		Features: []graph.FeatureUpdate{{Node: 4, Features: []float32{1, -2, 3}}},
		AddNodes: []graph.NodeAdd{{Features: []float32{0.5, 0.25, -0.125}}},
		AddEdges: []graph.EdgeAdd{
			{Src: 1, Dst: 2, Features: []float32{9}},
			{Src: 2, Dst: 1},
		},
		RemoveEdges: []graph.EdgeKey{{Src: 0, Dst: 3}},
	}
	out, err := decodeDelta(encodeDelta(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Features) != 1 || out.Features[0].Node != 4 || !bitEqual(out.Features[0].Features, in.Features[0].Features) {
		t.Fatalf("features: %+v", out.Features)
	}
	if len(out.AddNodes) != 1 || !bitEqual(out.AddNodes[0].Features, in.AddNodes[0].Features) {
		t.Fatalf("add nodes: %+v", out.AddNodes)
	}
	if len(out.AddEdges) != 2 || out.AddEdges[0].Src != 1 || out.AddEdges[1].Features != nil {
		t.Fatalf("add edges: %+v", out.AddEdges)
	}
	if len(out.RemoveEdges) != 1 || out.RemoveEdges[0] != (graph.EdgeKey{Src: 0, Dst: 3}) {
		t.Fatalf("remove edges: %+v", out.RemoveEdges)
	}
	// Hostile payloads error, never panic.
	if _, err := decodeDelta([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if _, err := decodeDelta(append(encodeDelta(nil, in), 0xee)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	empty, err := decodeDelta(encodeDelta(nil, graph.Delta{}))
	if err != nil || !empty.Empty() {
		t.Fatalf("empty delta round trip: %+v err=%v", empty, err)
	}
}
