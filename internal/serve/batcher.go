package serve

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"inferturbo/internal/graph"
	"inferturbo/internal/inference"
)

// job is one admitted query traveling through the batcher. Its result
// channel is buffered so whichever side finishes a job never blocks, and
// finish/deliver guarantee exactly one result wins even when the batcher
// races a timed-out handler.
type job struct {
	ctx context.Context
	// roots are existing-node ids to answer (validated in-range by the
	// handler).
	roots []int32
	// overrides replaces node features for a what-if query. Forces a
	// singleton batch: overridden features must not leak into batch mates'
	// answers.
	overrides map[int32][]float32
	// cold is a cold-start virtual root; also forces a singleton batch.
	cold *graph.VirtualRoot
	res  chan jobResult
}

// singleton reports whether the job must execute alone: overrides and
// virtual roots mutate the induced subgraph, so sharing one with other jobs
// would contaminate their answers.
func (j *job) singleton() bool { return len(j.overrides) > 0 || j.cold != nil }

// pureRoots reports whether the store can stand in for this job's answer —
// only lookups of existing, unmodified nodes have a resident fallback.
func (j *job) pureRoots() bool { return !j.singleton() }

type jobResult struct {
	status  int
	answers []Answer
	errMsg  string
	metric  metricKind
}

// Answer is one node's prediction in a query response.
type Answer struct {
	// Node is the global node id, or -1 for a cold-start virtual root.
	Node   int32     `json:"node"`
	Class  int32     `json:"class"`
	Logits []float32 `json:"logits"`
	// MultiLabel carries thresholded {0,1} predictions for multi-label
	// models.
	MultiLabel []float32 `json:"multi_label,omitempty"`
	// Stale marks a degraded answer served from the resident store after
	// the fresh pass missed the request deadline; Epoch says which store.
	Stale bool `json:"stale"`
	// Epoch is the resident-store epoch for store-served answers, 0 for
	// fresh compute.
	Epoch int64 `json:"epoch,omitempty"`
	// Source is "fresh" or "store".
	Source string `json:"source"`
}

// deliver offers r as the job's result; exactly one deliver per job wins.
func (j *job) deliver(r jobResult) bool {
	select {
	case j.res <- r:
		return true
	default:
		return false
	}
}

// finish delivers r and counts its metric only if this was the winning
// delivery.
func (s *Server) finish(j *job, r jobResult) {
	if !j.deliver(r) {
		return
	}
	switch r.metric {
	case metricFresh:
		s.m.fresh.Add(1)
	case metricDegraded:
		s.m.degraded.Add(1)
	case metricError:
		s.m.errors.Add(1)
	}
}

// runBatcher is the micro-batching loop: it sleeps on the admission queue,
// and on the first arrival collects follow-ups until the batch fills or the
// window elapses. Singleton jobs (what-if / cold-start) execute alone; one
// arriving mid-collection closes the current batch first, preserving
// admission order.
func (s *Server) runBatcher() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			// Drain so queued callers fail fast instead of riding out their
			// deadlines.
			for {
				select {
				case j := <-s.queue:
					s.finish(j, jobResult{status: 503, errMsg: "server shutting down", metric: metricError})
				default:
					return
				}
			}
		case first := <-s.queue:
			if first.singleton() {
				s.execBatch([]*job{first})
				continue
			}
			batch := []*job{first}
			size := len(first.roots)
			timer := time.NewTimer(s.cfg.BatchWindow)
		collect:
			for size < s.cfg.MaxBatchSize {
				select {
				case <-s.stop:
					break collect
				case <-timer.C:
					break collect
				case j := <-s.queue:
					if j.singleton() {
						// Close the open batch, then run the singleton, so
						// results appear in admission order.
						s.execBatch(batch)
						batch = []*job{j}
						break collect
					}
					batch = append(batch, j)
					size += len(j.roots)
				}
			}
			timer.Stop()
			s.execBatch(batch)
		}
	}
}

// execBatch answers every job in batch: members whose deadline already
// expired degrade to the store immediately, the rest share one canonical
// induced subgraph and one compute pass. A panic in the shared pass is
// isolated by splitting the batch and retrying members individually, so one
// poisoned query cannot take its batch mates (or the server) down.
func (s *Server) execBatch(batch []*job) {
	s.m.batches.Add(1)
	s.m.batchedJobs.Add(int64(len(batch)))

	live := batch[:0:len(batch)]
	for _, j := range batch {
		if j.ctx.Err() != nil {
			s.degrade(j, "deadline expired while queued")
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}

	ind, rootLocal, err := s.induce(live)
	if err != nil {
		// Induce validates request-derived data; its errors are the
		// caller's (bad neighbor ids, wrong dims).
		for _, j := range live {
			s.finish(j, jobResult{status: 400, errMsg: err.Error(), metric: metricError})
		}
		return
	}

	res, err, panicked := s.compute(live, ind)
	if panicked {
		s.m.panics.Add(1)
		if len(live) > 1 {
			for _, j := range live {
				s.execBatch([]*job{j})
			}
			return
		}
		s.finish(live[0], jobResult{status: 500, errMsg: "query compute panicked: " + err.Error(), metric: metricError})
		return
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Every live member's deadline expired mid-pass and the engine
			// aborted at a superstep boundary: degrade them all.
			s.m.cancelAborts.Add(1)
			for _, j := range live {
				s.degrade(j, "deadline exceeded during compute")
			}
			return
		}
		for _, j := range live {
			s.finish(j, jobResult{status: 500, errMsg: err.Error(), metric: metricError})
		}
		return
	}

	for _, j := range live {
		if j.ctx.Err() != nil {
			// The pass finished, but too late for this member.
			s.degrade(j, "deadline exceeded during compute")
			continue
		}
		answers := make([]Answer, 0, len(j.roots)+1)
		for _, r := range j.roots {
			answers = append(answers, s.freshAnswer(res, rootLocal[r], r))
		}
		if j.cold != nil {
			answers = append(answers, s.freshAnswer(res, ind.Virtual, -1))
		}
		s.finish(j, jobResult{status: 200, answers: answers, metric: metricFresh})
	}
}

// induce merges the live jobs' roots (plus any cold-start neighbors) into
// one deduplicated root set, extracts the k-hop neighborhood, and builds the
// canonical executable subgraph. Feature overrides are applied to the
// induced graph's own gathered feature matrix — never to the resident
// graph.
func (s *Server) induce(live []*job) (*graph.Induced, map[int32]int32, error) {
	var uniq []int32
	seen := make(map[int32]bool)
	add := func(r int32) {
		if !seen[r] {
			seen[r] = true
			uniq = append(uniq, r)
		}
	}
	var cold *graph.VirtualRoot
	for _, j := range live {
		for _, r := range j.roots {
			add(r)
		}
		if j.cold != nil {
			cold = j.cold
			// The virtual root's neighbors must be present with complete
			// k-1 neighborhoods; rooting the BFS at them guarantees it.
			for _, u := range j.cold.InNeighbors {
				add(u)
			}
		}
	}

	// One consistent graph for extraction and induction: the snapshot's,
	// which advances as mutations land (node ids only ever grow, so roots
	// validated against an older epoch stay valid).
	g := s.currentGraph()
	sub := graph.KHop(g, uniq, graph.KHopOptions{Hops: s.hops})
	ind, err := sub.Induce(g, cold)
	if err != nil {
		return nil, nil, err
	}
	rootLocal := make(map[int32]int32, len(uniq))
	for i, r := range uniq {
		rootLocal[r] = ind.Roots[i]
	}

	if len(live) == 1 && len(live[0].overrides) > 0 {
		local := make(map[int32]int32, len(ind.Nodes))
		for id, global := range ind.Nodes {
			if global >= 0 {
				local[global] = int32(id)
			}
		}
		for node, feat := range live[0].overrides {
			if id, ok := local[node]; ok {
				copy(ind.G.Features.Row(int(id)), feat)
			}
			// An overridden node outside the k-hop neighborhood cannot
			// influence any answer; skipping it is exact, not approximate.
		}
	}
	return ind, rootLocal, nil
}

// compute runs the shared pass with deadline propagation: the engine polls
// Cancel each superstep and aborts only once every live member's context is
// done — one surviving deadline keeps the whole batch running so its answer
// stays fresh. The recover fence converts a poisoned query's panic into a
// report the caller uses to split the batch.
func (s *Server) compute(live []*job, ind *graph.Induced) (res *inference.Result, err error, panicked bool) {
	defer func() {
		if p := recover(); p != nil {
			res, err, panicked = nil, fmt.Errorf("%v", p), true
		}
	}()
	if s.execHook != nil {
		s.execHook(live)
	}
	cancel := func() error {
		for _, j := range live {
			if j.ctx.Err() == nil {
				return nil
			}
		}
		return context.Canceled
	}
	res, err = inference.RunPregel(s.cfg.Model, ind.G, inference.Options{
		NumWorkers: s.cfg.QueryWorkers,
		Parallel:   s.cfg.QueryParallel,
		OutDegrees: ind.OutDegrees,
		Cancel:     cancel,
	})
	return res, err, false
}

// freshAnswer scatters one node's row out of a completed pass.
func (s *Server) freshAnswer(res *inference.Result, local int32, global int32) Answer {
	a := Answer{Node: global, Source: "fresh"}
	a.Logits = append([]float32(nil), res.Logits.Row(int(local))...)
	if res.Classes != nil {
		a.Class = res.Classes[local]
	}
	if res.MultiLabel != nil {
		a.MultiLabel = append([]float32(nil), res.MultiLabel.Row(int(local))...)
	}
	return a
}

// degrade answers j from the resident store, marked stale — the bottom rung
// of the degradation ladder for queries that missed their deadline. What-if
// and cold-start queries have no resident answer and fail with 504 instead.
func (s *Server) degrade(j *job, reason string) {
	s.finish(j, s.degradeResult(j, reason))
}

// degradeResult builds the store-fallback result without delivering it, so
// the HTTP handler can race it against the batcher through finish.
func (s *Server) degradeResult(j *job, reason string) jobResult {
	if !j.pureRoots() {
		return jobResult{
			status: 504,
			errMsg: reason + " (what-if and cold-start queries have no store fallback)",
			metric: metricError,
		}
	}
	snap := s.snap.Load()
	if snap == nil {
		return jobResult{status: 503, errMsg: reason + "; resident store empty", metric: metricError}
	}
	answers := make([]Answer, len(j.roots))
	for i, r := range j.roots {
		answers[i] = storeAnswer(snap, r, true)
	}
	return jobResult{status: 200, answers: answers, metric: metricDegraded}
}

// storeAnswer reads one node out of an immutable snapshot.
func storeAnswer(snap *Snapshot, node int32, stale bool) Answer {
	a := Answer{Node: node, Stale: stale, Epoch: snap.Epoch, Source: "store"}
	a.Logits = append([]float32(nil), snap.Logits.Row(int(node))...)
	if snap.Classes != nil {
		a.Class = snap.Classes[node]
	}
	if snap.MultiLabel != nil {
		a.MultiLabel = append([]float32(nil), snap.MultiLabel.Row(int(node))...)
	}
	return a
}

// retryAfter is the Retry-After header value for shed requests: one batch
// window rounded up to a whole second (the header's resolution).
func (s *Server) retryAfter() string {
	secs := int(s.cfg.BatchWindow / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
