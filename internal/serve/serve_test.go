package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"inferturbo/internal/datagen"
	"inferturbo/internal/gas"
	"inferturbo/internal/graph"
	"inferturbo/internal/inference"
	"inferturbo/internal/pregel"
	"inferturbo/internal/tensor"
)

// testFixture builds a small skewed graph plus a 2-layer GCN — the degree-
// scaled model is the hardest case for subgraph/full-graph agreement.
func testFixture(t *testing.T) (*graph.Graph, *gas.Model) {
	t.Helper()
	ds := datagen.Generate(datagen.Config{
		Name: "serve", Nodes: 200, AvgDegree: 4, Skew: datagen.SkewIn, Exponent: 1.5,
		FeatureDim: 6, NumClasses: 3, TrainFrac: 0.3, ValFrac: 0.1, Seed: 7,
	})
	m := gas.NewGCNModel("serve-gcn", gas.TaskSingleLabel, 6, 10, 3, 2, tensor.NewRNG(17))
	return ds.Graph, m
}

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	g, m := testFixture(t)
	cfg := Config{
		Model: m, Graph: g,
		Refresh:      inference.Options{NumWorkers: 3},
		QueryWorkers: 2,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postQuery(t *testing.T, ts *httptest.Server, req QueryRequest) (int, QueryResponse, http.Header) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatalf("query response decode: %v", err)
	}
	return resp.StatusCode, qr, resp.Header
}

func bitEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// Fresh k-hop answers must agree with the resident store bit for bit: same
// model, same graph, so degradation can never change values — only
// freshness metadata.
func TestFreshAnswersMatchStoreBitwise(t *testing.T) {
	s, ts := newTestServer(t, nil)
	snap := s.Store()
	if snap == nil || snap.Epoch != 1 {
		t.Fatalf("store not populated after Start: %+v", snap)
	}
	for _, roots := range [][]int32{{0}, {5, 190}, {42, 7, 99}} {
		status, qr, _ := postQuery(t, ts, QueryRequest{Roots: roots, DeadlineMs: 5000})
		if status != 200 {
			t.Fatalf("status %d: %s", status, qr.Error)
		}
		if len(qr.Answers) != len(roots) {
			t.Fatalf("%d answers for %d roots", len(qr.Answers), len(roots))
		}
		for i, a := range qr.Answers {
			if a.Source != "fresh" || a.Stale {
				t.Fatalf("answer %+v not fresh", a)
			}
			if a.Node != roots[i] {
				t.Fatalf("answer %d for node %d, want %d", i, a.Node, roots[i])
			}
			if !bitEqual(a.Logits, snap.Logits.Row(int(roots[i]))) {
				t.Fatalf("node %d: fresh logits %v != store %v", roots[i], a.Logits, snap.Logits.Row(int(roots[i])))
			}
			if a.Class != snap.Classes[roots[i]] {
				t.Fatalf("node %d: class %d != store %d", roots[i], a.Class, snap.Classes[roots[i]])
			}
		}
	}
	// Store lookups agree too.
	resp, err := http.Get(ts.URL + "/v1/nodes/42")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var a Answer
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || a.Stale || a.Epoch != 1 || !bitEqual(a.Logits, snap.Logits.Row(42)) {
		t.Fatalf("store lookup mismatch: status=%d answer=%+v", resp.StatusCode, a)
	}
}

func TestBadRequestsRejectedCleanly(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []QueryRequest{
		{},                       // nothing to answer
		{Roots: []int32{-1}},     // negative root
		{Roots: []int32{100000}}, // out of range
		{Roots: []int32{3, 3}},   // duplicate
		{Roots: []int32{1}, Overrides: map[string][]float32{"zzz": {1}}},                // bad key
		{Roots: []int32{1}, Overrides: map[string][]float32{"2": {1, 2}}},               // bad dim
		{ColdStart: &ColdStartRequest{Features: []float32{1, 2, 3, 4, 5, 6}}},           // no neighbors
		{ColdStart: &ColdStartRequest{Features: []float32{1}, InNeighbors: []int32{2}}}, // bad dim
	}
	for i, req := range cases {
		status, qr, _ := postQuery(t, ts, req)
		if status != 400 || qr.Error == "" {
			t.Fatalf("case %d: status=%d err=%q, want 400 with message", i, status, qr.Error)
		}
	}
	// Node lookups out of range 404, non-integers 400.
	for path, want := range map[string]int{"/v1/nodes/99999": 404, "/v1/nodes/xyz": 400} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// At 2x admission-queue capacity the server sheds deterministically with
// 429 + Retry-After while every admitted request completes.
func TestOverloadShedsWith429(t *testing.T) {
	gate := make(chan struct{})
	var s *Server
	var ts *httptest.Server
	s, ts = newTestServer(t, func(c *Config) {
		c.QueueDepth = 4
		c.MaxBatchSize = 1
		c.BatchWindow = time.Millisecond
	})
	entered := make(chan struct{}, 16)
	s.execHook = func([]*job) {
		entered <- struct{}{}
		<-gate
	}

	type outcome struct {
		status int
		qr     QueryResponse
	}
	results := make(chan outcome, 16)
	fire := func(root int32) {
		go func() {
			st, qr, _ := postQuery(t, ts, QueryRequest{Roots: []int32{root}, DeadlineMs: 10000})
			results <- outcome{st, qr}
		}()
	}

	// One request occupies the batcher (blocked in the hook)...
	fire(0)
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("batcher never picked up the first job")
	}
	// ...four more fill the bounded queue...
	for r := int32(1); r <= 4; r++ {
		fire(r)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %d never reached 4", len(s.queue))
		}
		time.Sleep(time.Millisecond)
	}
	// ...so the next four — 2x capacity in flight — must shed with 429.
	for r := int32(5); r <= 8; r++ {
		status, qr, hdr := postQuery(t, ts, QueryRequest{Roots: []int32{r}, DeadlineMs: 10000})
		if status != 429 {
			t.Fatalf("root %d: status %d (%s), want 429", r, status, qr.Error)
		}
		if hdr.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}
	}
	close(gate)
	for i := 0; i < 5; i++ {
		o := <-results
		if o.status != 200 {
			t.Fatalf("admitted request failed: %d %s", o.status, o.qr.Error)
		}
	}
	if got := s.m.shed.Load(); got != 4 {
		t.Fatalf("shed=%d, want 4", got)
	}
	if ok, reason := s.Ready(); !ok {
		t.Fatalf("server unready after load drained: %s", reason)
	}
}

// A fresh query that misses its deadline degrades to the resident store's
// answer, marked stale with the store epoch — values identical, freshness
// honest.
func TestDeadlineDegradesToStaleStoreAnswer(t *testing.T) {
	s, ts := newTestServer(t, nil)
	s.execHook = func([]*job) { time.Sleep(300 * time.Millisecond) }
	status, qr, _ := postQuery(t, ts, QueryRequest{Roots: []int32{11}, DeadlineMs: 40})
	if status != 200 {
		t.Fatalf("status %d: %s", status, qr.Error)
	}
	a := qr.Answers[0]
	if !a.Stale || a.Source != "store" || a.Epoch != 1 {
		t.Fatalf("answer not degraded-from-store: %+v", a)
	}
	if !bitEqual(a.Logits, s.Store().Logits.Row(11)) {
		t.Fatal("degraded answer diverges from the store")
	}
	waitCounter(t, &s.m.degraded, 1)
	// What-if queries have no store fallback: an expired deadline is an
	// honest 504, never a silently wrong answer.
	status, qr, _ = postQuery(t, ts, QueryRequest{
		Roots: []int32{11}, DeadlineMs: 40,
		Overrides: map[string][]float32{"11": {0, 0, 0, 0, 0, 0}},
	})
	if status != 504 || qr.Error == "" {
		t.Fatalf("what-if past deadline: status=%d err=%q, want 504", status, qr.Error)
	}
}

// Within one micro-batch, a member whose deadline expires degrades while a
// member with headroom still gets the fresh result of the shared pass.
func TestPartialBatchDeadline(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.MaxBatchSize = 8
		c.BatchWindow = 150 * time.Millisecond
	})
	s.execHook = func([]*job) { time.Sleep(250 * time.Millisecond) }

	type outcome struct {
		status int
		qr     QueryResponse
	}
	short := make(chan outcome, 1)
	long := make(chan outcome, 1)
	go func() {
		st, qr, _ := postQuery(t, ts, QueryRequest{Roots: []int32{20}, DeadlineMs: 80})
		short <- outcome{st, qr}
	}()
	go func() {
		st, qr, _ := postQuery(t, ts, QueryRequest{Roots: []int32{21}, DeadlineMs: 5000})
		long <- outcome{st, qr}
	}()
	so, lo := <-short, <-long
	if so.status != 200 || !so.qr.Answers[0].Stale || so.qr.Answers[0].Source != "store" {
		t.Fatalf("short-deadline member: status=%d answers=%+v, want stale store answer", so.status, so.qr.Answers)
	}
	if lo.status != 200 || lo.qr.Answers[0].Stale || lo.qr.Answers[0].Source != "fresh" {
		t.Fatalf("long-deadline member: status=%d answers=%+v, want fresh answer", lo.status, lo.qr.Answers)
	}
	if !bitEqual(lo.qr.Answers[0].Logits, s.Store().Logits.Row(21)) {
		t.Fatal("fresh member's logits diverge from the store")
	}
}

// When every member of a batch is past deadline, the propagated Cancel
// aborts the pass at a superstep boundary instead of burning the compute
// plane on answers nobody is waiting for.
func TestFullBatchCancelAbortsCompute(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.MaxBatchSize = 8
		c.BatchWindow = 100 * time.Millisecond
	})
	// Deadlines outlive the batch window (so the batch reaches compute)
	// but expire during the injected sleep (so Cancel fires mid-pass).
	s.execHook = func([]*job) { time.Sleep(500 * time.Millisecond) }
	done := make(chan int, 2)
	for _, root := range []int32{30, 31} {
		go func(r int32) {
			st, qr, _ := postQuery(t, ts, QueryRequest{Roots: []int32{r}, DeadlineMs: 200})
			if st == 200 && (!qr.Answers[0].Stale || qr.Answers[0].Source != "store") {
				t.Errorf("root %d: expected degraded store answer, got %+v", r, qr.Answers[0])
			}
			done <- st
		}(root)
	}
	if a, b := <-done, <-done; a != 200 || b != 200 {
		t.Fatalf("degraded answers should still be 200/200, got %d/%d", a, b)
	}
	waitCounter(t, &s.m.cancelAborts, 1)
}

// A poisoned query panics its batch: the batch splits, mates re-execute
// individually and succeed, the poisoned member 500s, and the server keeps
// serving.
func TestPanicIsolationSplitsBatch(t *testing.T) {
	const poison = int32(13)
	s, ts := newTestServer(t, func(c *Config) {
		c.MaxBatchSize = 8
		c.BatchWindow = 150 * time.Millisecond
	})
	s.execHook = func(batch []*job) {
		for _, j := range batch {
			for _, r := range j.roots {
				if r == poison {
					panic("poisoned query")
				}
			}
		}
	}
	type outcome struct {
		status int
		qr     QueryResponse
	}
	mate := make(chan outcome, 1)
	bad := make(chan outcome, 1)
	go func() {
		st, qr, _ := postQuery(t, ts, QueryRequest{Roots: []int32{40}, DeadlineMs: 5000})
		mate <- outcome{st, qr}
	}()
	go func() {
		st, qr, _ := postQuery(t, ts, QueryRequest{Roots: []int32{poison}, DeadlineMs: 5000})
		bad <- outcome{st, qr}
	}()
	mo, bo := <-mate, <-bad
	if bo.status != 500 || bo.qr.Error == "" {
		t.Fatalf("poisoned query: status=%d err=%q, want 500", bo.status, bo.qr.Error)
	}
	if mo.status != 200 || mo.qr.Answers[0].Source != "fresh" {
		t.Fatalf("batch mate: status=%d answers=%+v, want fresh 200", mo.status, mo.qr.Answers)
	}
	// The whole-batch panic plus the singleton retry both count.
	if got := s.m.panics.Load(); got < 1 {
		t.Fatalf("panics=%d, want >=1", got)
	}
	// The server survived: a followup query answers normally.
	s.execHook = nil
	if st, qr, _ := postQuery(t, ts, QueryRequest{Roots: []int32{41}, DeadlineMs: 5000}); st != 200 {
		t.Fatalf("server did not survive the panic: %d %s", st, qr.Error)
	}
}

// Cold-start and what-if queries run on the batched plane against a
// subgraph copy; the resident graph and store never change.
func TestColdStartAndWhatIf(t *testing.T) {
	s, ts := newTestServer(t, nil)
	g, m := s.cfg.Graph, s.cfg.Model

	nbrs := []int32{3, 17, 42}
	feats := []float32{0.5, -0.25, 0.125, 1, 0, -1}
	status, qr, _ := postQuery(t, ts, QueryRequest{
		DeadlineMs: 5000,
		ColdStart:  &ColdStartRequest{Features: feats, InNeighbors: nbrs},
	})
	if status != 200 {
		t.Fatalf("cold start: %d %s", status, qr.Error)
	}
	got := qr.Answers[len(qr.Answers)-1]
	if got.Node != -1 || got.Source != "fresh" {
		t.Fatalf("cold answer %+v", got)
	}
	// Oracle: the same virtual root computed directly.
	sub := graph.KHop(g, nbrs, graph.KHopOptions{Hops: m.NumLayers()})
	ind, err := sub.Induce(g, &graph.VirtualRoot{Features: feats, InNeighbors: nbrs})
	if err != nil {
		t.Fatal(err)
	}
	want, err := inference.RunPregel(m, ind.G, inference.Options{
		NumWorkers: s.cfg.QueryWorkers, OutDegrees: ind.OutDegrees,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqual(got.Logits, want.Logits.Row(int(ind.Virtual))) {
		t.Fatalf("cold-start logits %v != direct compute %v", got.Logits, want.Logits.Row(int(ind.Virtual)))
	}

	// What-if: zeroing a node's features must change its fresh answer...
	status, qr, _ = postQuery(t, ts, QueryRequest{
		Roots: []int32{55}, DeadlineMs: 5000,
		Overrides: map[string][]float32{"55": {0, 0, 0, 0, 0, 0}},
	})
	if status != 200 {
		t.Fatalf("what-if: %d %s", status, qr.Error)
	}
	if bitEqual(qr.Answers[0].Logits, s.Store().Logits.Row(55)) {
		t.Fatal("override did not change the answer")
	}
	// ...without perturbing the resident graph: a plain query afterwards
	// still matches the store bitwise.
	status, qr, _ = postQuery(t, ts, QueryRequest{Roots: []int32{55}, DeadlineMs: 5000})
	if status != 200 || !bitEqual(qr.Answers[0].Logits, s.Store().Logits.Row(55)) {
		t.Fatal("what-if leaked into the resident graph")
	}
}

// Readiness is gated on the store: a server that has not completed its
// first pass reports unready, and flips ready after Start.
func TestReadinessGatedOnStore(t *testing.T) {
	g, m := testFixture(t)
	s, err := New(Config{Model: m, Graph: g, Refresh: inference.Options{NumWorkers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Ready(); ok {
		t.Fatal("ready before any pass completed")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("readyz=%d before first pass, want 503", resp.StatusCode)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("readyz=%d after first pass, want 200", resp.StatusCode)
	}
}

// Chaos: a background refresh crashes twice mid-pass (checkpoint recovery
// inside the engine) while live queries keep answering; the refreshed store
// is bit-identical to the first epoch because recovery is exact. Pinned to
// the one-shot full-pass path (the incremental session skips recompute on an
// unchanged graph); TestMutateChaosDeltaRefresh covers the delta pass.
func TestChaosRefreshUnderLiveLoad(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Refresh = inference.Options{NumWorkers: 3, CheckpointEvery: 1}
		c.DisableIncremental = true
	})
	before := fetchLogits(t, ts)

	s.cfg.Refresh.Faults = &pregel.FaultPlan{Crashes: []pregel.Fault{
		{Superstep: 1, Point: pregel.FaultMidPipeline},
		{Superstep: 2, Point: pregel.FaultAtBarrier},
	}}
	if !s.TryRefreshAsync() {
		t.Fatal("refresh did not start")
	}
	// Queries must keep answering from the old epoch throughout.
	deadline := time.Now().Add(10 * time.Second)
	for s.m.refreshes.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("refresh never completed")
		}
		st, qr, _ := postQuery(t, ts, QueryRequest{Roots: []int32{8}, DeadlineMs: 2000})
		if st != 200 {
			t.Fatalf("query failed during chaos refresh: %d %s", st, qr.Error)
		}
		resp, err := http.Get(ts.URL + "/v1/nodes/8")
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("store lookup failed during chaos refresh: %v %d", err, resp.StatusCode)
		}
		resp.Body.Close()
	}
	snap := s.Store()
	if snap.Epoch != 2 {
		t.Fatalf("epoch %d after refresh, want 2", snap.Epoch)
	}
	if snap.Stats.Recoveries != 2 {
		t.Fatalf("recoveries=%d, want 2 (both injected crashes)", snap.Stats.Recoveries)
	}
	after := fetchLogits(t, ts)
	if !bytes.Equal(before, after) {
		t.Fatal("store bytes changed across a crash-recovered refresh")
	}
	if s.m.refreshFailures.Load() != 0 {
		t.Fatal("refresh reported failures")
	}
}

func fetchLogits(t *testing.T, ts *httptest.Server) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/logits")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("logits: %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) == 0 {
		t.Fatal("empty logits dump")
	}
	return b
}

// The server's full lifecycle — load, queries, degradation, refresh,
// shutdown — leaks no goroutines.
func TestNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		g, m := testFixture(t)
		s, err := New(Config{
			Model: m, Graph: g,
			Refresh:      inference.Options{NumWorkers: 2},
			RefreshEvery: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		for i := 0; i < 10; i++ {
			st, qr, _ := postQuery(t, ts, QueryRequest{Roots: []int32{int32(i)}, DeadlineMs: 2000})
			if st != 200 {
				t.Fatalf("query %d: %d %s", i, st, qr.Error)
			}
		}
		resp, err := http.Post(ts.URL+"/v1/refresh", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		ts.Close()
		s.Close()
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if now := runtime.NumGoroutine(); now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: before=%d after=%d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func postMutate(t *testing.T, ts *httptest.Server, body string) (int, MutateResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/mutate", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("mutate: %v", err)
	}
	defer resp.Body.Close()
	var mr MutateResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatalf("mutate response decode: %v", err)
	}
	return resp.StatusCode, mr
}

// logitsBytes encodes a matrix exactly the way /v1/logits streams the store,
// so oracle passes compare byte-for-byte against the HTTP dump.
func logitsBytes(m *tensor.Matrix) []byte {
	buf := make([]byte, 4*len(m.Data))
	for i, f := range m.Data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(f))
	}
	return buf
}

// TestMutateDeltaRefreshBitIdenticalOverHTTP is the serving acceptance test
// of the incremental mode: two staged delta batches (feature rewrite, a new
// node wired both ways, an edge addition referencing the staged node, an
// edge removal) drain into one delta refresh whose /v1/logits bytes equal a
// from-scratch pass over the equivalently mutated graph — and the new node
// is immediately queryable, fresh and from the store.
func TestMutateDeltaRefreshBitIdenticalOverHTTP(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Refresh = inference.Options{NumWorkers: 3, DeltaCutover: 1.1}
	})
	if !s.Incremental() {
		t.Fatal("server not incremental")
	}
	g0 := s.cfg.Graph
	newID := int32(g0.NumNodes)
	srcs, dsts := g0.EdgeList()

	st, mr := postMutate(t, ts, fmt.Sprintf(
		`{"features":[{"node":3,"features":[1,0,-1,0.5,0,2]}],
		  "add_nodes":[{"features":[0.1,0.2,0.3,0.4,0.5,0.6]}],
		  "add_edges":[{"src":%d,"dst":7},{"src":7,"dst":%d}]}`, newID, newID))
	if st != 202 || mr.PendingDeltas != 1 {
		t.Fatalf("batch 1: status=%d resp=%+v", st, mr)
	}
	if len(mr.NewNodes) != 1 || mr.NewNodes[0] != newID {
		t.Fatalf("batch 1 new_nodes=%v, want [%d]", mr.NewNodes, newID)
	}
	// Batch 2 references the staged (not yet applied) node and removes a
	// real edge, then kicks the refresh.
	st, mr = postMutate(t, ts, fmt.Sprintf(
		`{"features":[{"node":%d,"features":[-1,-1,-1,1,1,1]}],
		  "add_edges":[{"src":5,"dst":%d}],
		  "remove_edges":[{"src":%d,"dst":%d}],
		  "refresh":true}`, newID, newID, srcs[0], dsts[0]))
	if st != 202 || mr.Refresh == "" {
		t.Fatalf("batch 2: status=%d resp=%+v", st, mr)
	}
	waitCounter(t, &s.m.refreshes, 2)

	snap := s.Store()
	if snap.Epoch != 2 || snap.RefreshKind != "delta" {
		t.Fatalf("epoch=%d kind=%q after mutate refresh, want 2/delta", snap.Epoch, snap.RefreshKind)
	}
	if snap.Graph.NumNodes != g0.NumNodes+1 {
		t.Fatalf("snapshot graph has %d nodes, want %d", snap.Graph.NumNodes, g0.NumNodes+1)
	}

	// Oracle: the same two deltas applied offline, computed from scratch.
	g1, _, err := graph.ApplyDelta(g0, graph.Delta{
		Features: []graph.FeatureUpdate{{Node: 3, Features: []float32{1, 0, -1, 0.5, 0, 2}}},
		AddNodes: []graph.NodeAdd{{Features: []float32{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}}},
		AddEdges: []graph.EdgeAdd{{Src: newID, Dst: 7}, {Src: 7, Dst: newID}},
	})
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := graph.ApplyDelta(g1, graph.Delta{
		Features:    []graph.FeatureUpdate{{Node: newID, Features: []float32{-1, -1, -1, 1, 1, 1}}},
		AddEdges:    []graph.EdgeAdd{{Src: 5, Dst: newID}},
		RemoveEdges: []graph.EdgeKey{{Src: srcs[0], Dst: dsts[0]}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := inference.RunPregel(s.cfg.Model, g2, inference.Options{NumWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/logits")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("logits: status=%d err=%v", resp.StatusCode, err)
	}
	if resp.Header.Get("X-Rows") != "201" {
		t.Fatalf("X-Rows=%q after node add, want 201", resp.Header.Get("X-Rows"))
	}
	if !bytes.Equal(got, logitsBytes(want.Logits)) {
		t.Fatal("delta-refreshed store bytes differ from a from-scratch pass over HTTP")
	}

	// The new node answers: store lookup and fresh k-hop compute agree.
	nresp, err := http.Get(ts.URL + fmt.Sprintf("/v1/nodes/%d", newID))
	if err != nil {
		t.Fatal(err)
	}
	var na Answer
	if err := json.NewDecoder(nresp.Body).Decode(&na); err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != 200 || !bitEqual(na.Logits, want.Logits.Row(int(newID))) {
		t.Fatalf("new-node store lookup: status=%d answer=%+v", nresp.StatusCode, na)
	}
	qst, qr, _ := postQuery(t, ts, QueryRequest{Roots: []int32{newID}, DeadlineMs: 5000})
	if qst != 200 || qr.Answers[0].Source != "fresh" || !bitEqual(qr.Answers[0].Logits, want.Logits.Row(int(newID))) {
		t.Fatalf("new-node fresh query: status=%d answers=%+v", qst, qr.Answers)
	}

	// Stats surface the incremental observables.
	m := s.Metrics()
	if !m.Incremental || m.LastRefreshKind != "delta" || m.Mutations != 2 ||
		m.MutationsApplied != 2 || m.MutationsRejected != 0 || m.PendingDeltas != 0 {
		t.Fatalf("stats after delta refresh: %+v", m)
	}
	if m.LastRefreshMs < 0 {
		t.Fatalf("last_refresh_ms=%v", m.LastRefreshMs)
	}
}

// TestMutateChaosDeltaRefresh arms worker crashes between refreshes: the
// injected faults fire inside the delta pass, checkpoint recovery restores
// the resident slabs, and the refreshed store still matches a from-scratch
// pass byte for byte over HTTP.
func TestMutateChaosDeltaRefresh(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Refresh = inference.Options{NumWorkers: 3, DeltaCutover: 1.1, CheckpointEvery: 1}
	})
	s.cfg.Refresh.Faults = &pregel.FaultPlan{Crashes: []pregel.Fault{
		{Superstep: 1, Point: pregel.FaultAtBarrier},
		{Superstep: 2, Point: pregel.FaultBeforeSuperstep},
	}}
	st, mr := postMutate(t, ts, `{"features":[{"node":8,"features":[2,2,2,-2,-2,-2]}],"refresh":true}`)
	if st != 202 {
		t.Fatalf("mutate: status=%d resp=%+v", st, mr)
	}
	waitCounter(t, &s.m.refreshes, 2)

	snap := s.Store()
	if snap.RefreshKind != "delta" {
		t.Fatalf("kind=%q, want delta", snap.RefreshKind)
	}
	if snap.Stats.Recoveries != 2 {
		t.Fatalf("recoveries=%d, want 2 (both injected crashes)", snap.Stats.Recoveries)
	}
	g1, _, err := graph.ApplyDelta(s.cfg.Graph, graph.Delta{
		Features: []graph.FeatureUpdate{{Node: 8, Features: []float32{2, 2, 2, -2, -2, -2}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := inference.RunPregel(s.cfg.Model, g1, inference.Options{NumWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fetchLogits(t, ts), logitsBytes(want.Logits)) {
		t.Fatal("chaos delta refresh diverged from scratch over HTTP")
	}
}

// TestMutateRejections pins the mutation boundary: 409 when incremental mode
// is off, 400 for malformed batches (nothing staged), and a drain-order
// conflict — removing an edge an earlier staged batch already dropped —
// rejects only the conflicting batch while the pass applies the rest.
func TestMutateRejections(t *testing.T) {
	off, offTS := newTestServer(t, func(c *Config) { c.DisableIncremental = true })
	if off.Incremental() {
		t.Fatal("DisableIncremental ignored")
	}
	if st, mr := postMutate(t, offTS, `{"features":[{"node":1,"features":[0,0,0,0,0,0]}]}`); st != 409 || mr.Error == "" {
		t.Fatalf("disabled server: status=%d err=%q, want 409 with message", st, mr.Error)
	}

	s, ts := newTestServer(t, func(c *Config) {
		c.Refresh = inference.Options{NumWorkers: 3, DeltaCutover: 1.1}
	})
	for i, body := range []string{
		`{}`, // empty delta
		`{"features":[{"node":99999,"features":[0,0,0,0,0,0]}]}`, // node out of range
		`{"features":[{"node":1,"features":[1,2]}]}`,             // bad feature dim
		`{"add_edges":[{"src":0,"dst":99999}]}`,                  // edge endpoint out of range
		`{"remove_edges":[{"src":-1,"dst":0}]}`,                  // negative endpoint
		`{"add_edges":[{"src":0,"dst":1,"features":[1,2,3]}]}`,   // edge features on a featureless graph
		`{"add_nodes":[{"features":[1]}]}`,                       // new node bad dim
		`{"bogus":true}`,                                         // unknown field
	} {
		if st, mr := postMutate(t, ts, body); st != 400 || mr.Error == "" {
			t.Fatalf("case %d: status=%d err=%q, want 400 with message", i, st, mr.Error)
		}
	}
	if got := s.m.mutations.Load(); got != 0 {
		t.Fatalf("rejected bodies staged %d batches", got)
	}

	// Drain-order conflict: both batches remove the same edge.
	srcs, dsts := s.cfg.Graph.EdgeList()
	rm := fmt.Sprintf(`{"remove_edges":[{"src":%d,"dst":%d}]}`, srcs[0], dsts[0])
	if st, _ := postMutate(t, ts, rm); st != 202 {
		t.Fatalf("first removal: %d", st)
	}
	if st, _ := postMutate(t, ts, rm); st != 202 {
		t.Fatalf("second removal: %d", st)
	}
	if err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
	if a, r := s.m.mutationsApplied.Load(), s.m.mutationsRejected.Load(); a != 1 || r != 1 {
		t.Fatalf("applied=%d rejected=%d, want 1/1", a, r)
	}
	g1, _, err := graph.ApplyDelta(s.cfg.Graph, graph.Delta{RemoveEdges: []graph.EdgeKey{{Src: srcs[0], Dst: dsts[0]}}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := inference.RunPregel(s.cfg.Model, g1, inference.Options{NumWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fetchLogits(t, ts), logitsBytes(want.Logits)) {
		t.Fatal("store after a rejected batch diverged from the applied-only oracle")
	}
}

func waitCounter(t *testing.T, c interface{ Load() int64 }, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter stuck at %d, want >= %d", c.Load(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
