package serve

import "sync/atomic"

// counters aggregates serving metrics. All fields are independent atomics:
// consistency across fields is not needed, only monotonicity per field.
type counters struct {
	requests        atomic.Int64 // queries accepted into a handler
	shed            atomic.Int64 // rejected 429 at the admission queue
	fresh           atomic.Int64 // answered by a k-hop compute pass
	degraded        atomic.Int64 // answered from the store after a missed deadline
	storeServed     atomic.Int64 // plain per-node store lookups
	errors          atomic.Int64 // queries that failed with an error status
	panics          atomic.Int64 // compute panics contained by isolation
	batches         atomic.Int64 // micro-batches executed
	batchedJobs     atomic.Int64 // jobs carried by those batches
	cancelAborts    atomic.Int64 // passes aborted mid-run by deadline propagation
	refreshes       atomic.Int64 // successful refresh passes (full or delta)
	refreshFailures atomic.Int64

	mutations            atomic.Int64 // delta batches staged via /v1/mutate
	mutationsApplied     atomic.Int64 // staged batches a refresh drain applied
	mutationsRejected    atomic.Int64 // staged batches the session refused at drain
	mutationsUnsupported atomic.Int64 // mutations 409-refused in non-incremental mode (never staged, never lost)
	mutationsLost        atomic.Int64 // acked batches dropped at Close on a WAL-less incremental server

	walAppendFailures      atomic.Int64 // mutations refused because the WAL append failed
	walReplayed            atomic.Int64 // WAL records re-staged at startup
	walTruncSkipped        atomic.Int64 // truncations skipped by an injected wal-truncate fault
	walTruncFailures       atomic.Int64 // truncations that errored (records linger; replay dedups)
	sessionEpochs          atomic.Int64 // durable session epochs persisted
	sessionPersistFailures atomic.Int64 // session epoch persists aborted or failed
}

// metricKind tags a jobResult with the counter to bump when it is actually
// delivered — the delivery point is the only increment site, so a result
// raced between the batcher and a timed-out handler is counted exactly once.
type metricKind int

const (
	metricNone metricKind = iota
	metricFresh
	metricDegraded
	metricError
)

// Stats is the JSON shape of /v1/stats.
type Stats struct {
	Epoch      int64 `json:"epoch"`
	Ready      bool  `json:"ready"`
	QueueDepth int   `json:"queue_depth"`
	QueueCap   int   `json:"queue_cap"`

	Requests     int64 `json:"requests"`
	Shed         int64 `json:"shed"`
	Fresh        int64 `json:"fresh"`
	Degraded     int64 `json:"degraded"`
	StoreServed  int64 `json:"store_served"`
	Errors       int64 `json:"errors"`
	Panics       int64 `json:"panics"`
	Batches      int64 `json:"batches"`
	BatchedJobs  int64 `json:"batched_jobs"`
	CancelAborts int64 `json:"cancel_aborts"`

	Refreshes       int64 `json:"refreshes"`
	RefreshFailures int64 `json:"refresh_failures"`
	// Resumed / Recoveries reflect the CURRENT snapshot's pass — the chaos
	// harness asserts a restarted server reports Resumed=true.
	Resumed    bool `json:"resumed"`
	Recoveries int  `json:"recoveries"`

	// Incremental-mode observables. LastRefreshKind/LastRefreshMs describe
	// the pass behind the current snapshot ("full" or "delta"); PendingDeltas
	// counts staged batches awaiting the next refresh.
	Incremental       bool    `json:"incremental"`
	Mutations         int64   `json:"mutations"`
	MutationsApplied  int64   `json:"mutations_applied"`
	MutationsRejected int64   `json:"mutations_rejected"`
	PendingDeltas     int     `json:"pending_deltas"`
	LastRefreshKind   string  `json:"last_refresh_kind,omitempty"`
	LastRefreshMs     float64 `json:"last_refresh_ms"`

	// Mutation-loss accounting. Unsupported counts 409-refused mutations on
	// a non-incremental server (refused before staging — never lost); Lost
	// counts acknowledged batches a WAL-less incremental server dropped at
	// shutdown. A durable server keeps Lost at zero by construction.
	MutationsUnsupported int64 `json:"mutations_unsupported"`
	MutationsLost        int64 `json:"mutations_lost"`

	// Durable-session observables, meaningful when Durable is true.
	// WALRecords/WALBytes gauge the live (unconsumed) log; LastReplayMs is
	// the startup WAL replay's wall time; SessionResumed says this process
	// reconstructed its session from a persisted epoch rather than priming
	// cold.
	Durable                bool    `json:"durable"`
	WALRecords             int     `json:"wal_records"`
	WALBytes               int64   `json:"wal_bytes"`
	WALAppends             int64   `json:"wal_appends"`
	WALAppendFailures      int64   `json:"wal_append_failures"`
	WALReplayed            int64   `json:"wal_replayed"`
	WALTruncations         int64   `json:"wal_truncations"`
	WALTruncSkipped        int64   `json:"wal_trunc_skipped"`
	LastReplayMs           float64 `json:"last_replay_ms"`
	SessionResumed         bool    `json:"session_resumed"`
	SessionEpochs          int64   `json:"session_epochs"`
	SessionPersistFailures int64   `json:"session_persist_failures"`
	SessionPersistMs       float64 `json:"session_persist_ms"`
}

// Metrics assembles a consistent-enough view of the serving counters.
func (s *Server) Metrics() Stats {
	st := Stats{
		QueueDepth:   len(s.queue),
		QueueCap:     cap(s.queue),
		Requests:     s.m.requests.Load(),
		Shed:         s.m.shed.Load(),
		Fresh:        s.m.fresh.Load(),
		Degraded:     s.m.degraded.Load(),
		StoreServed:  s.m.storeServed.Load(),
		Errors:       s.m.errors.Load(),
		Panics:       s.m.panics.Load(),
		Batches:      s.m.batches.Load(),
		BatchedJobs:  s.m.batchedJobs.Load(),
		CancelAborts: s.m.cancelAborts.Load(),

		Refreshes:       s.m.refreshes.Load(),
		RefreshFailures: s.m.refreshFailures.Load(),

		Incremental:       s.session != nil,
		Mutations:         s.m.mutations.Load(),
		MutationsApplied:  s.m.mutationsApplied.Load(),
		MutationsRejected: s.m.mutationsRejected.Load(),

		MutationsUnsupported: s.m.mutationsUnsupported.Load(),
		MutationsLost:        s.m.mutationsLost.Load(),
	}
	s.stagedMu.Lock()
	st.PendingDeltas = len(s.staged)
	s.stagedMu.Unlock()
	if s.wal != nil {
		st.Durable = true
		st.WALRecords = s.wal.Records()
		st.WALBytes = s.wal.Bytes()
		st.WALAppends = s.wal.Appended()
		st.WALTruncations = s.wal.Truncations()
		st.WALAppendFailures = s.m.walAppendFailures.Load()
		st.WALReplayed = s.m.walReplayed.Load()
		st.WALTruncSkipped = s.m.walTruncSkipped.Load()
		st.LastReplayMs = float64(s.lastReplayNs.Load()) / 1e6
		st.SessionResumed = s.sessionResumed
		st.SessionEpochs = s.m.sessionEpochs.Load()
		st.SessionPersistFailures = s.m.sessionPersistFailures.Load()
		if s.session != nil {
			st.SessionPersistMs = float64(s.session.DurableStats().LastWallNs) / 1e6
		}
	}
	st.Ready, _ = s.Ready()
	if snap := s.snap.Load(); snap != nil {
		st.Epoch = snap.Epoch
		st.Resumed = snap.Stats.Resumed
		st.Recoveries = snap.Stats.Recoveries
		st.LastRefreshKind = snap.RefreshKind
		st.LastRefreshMs = float64(snap.RefreshWall) / 1e6
	}
	return st
}
