package serve

// Durable serving: the mutation WAL and the session-epoch truncation
// protocol. With Config.SessionDir set, the server couples two durability
// mechanisms around the mutate→refresh pipeline:
//
//  1. handleMutate appends each validated delta batch to the WAL *before*
//     staging or acknowledging it, under stagedMu so WAL order equals staged
//     order. An acknowledged batch is therefore always either in the durable
//     resident state or in the WAL.
//  2. The refresh drain records the highest staged sequence it consumed as
//     the session's replay mark; the epoch the session persists after that
//     pass carries the mark, and onSessionPersist — running on the session's
//     persister goroutine strictly after the epoch is durable — truncates
//     the WAL through it.
//
// Restart replays the other direction: New resumes the session from the
// newest valid epoch, re-stages every WAL record above the epoch's replay
// mark, and Start's initial refresh consumes them as one delta pass — logits
// byte-identical to a process that never crashed. A crash between persist
// and truncation merely leaves covered records in the WAL; the replay-mark
// filter drops them, so nothing double-applies.
//
// The serve-level FaultPoints (wal-append, wal-truncate, slab-persist) are
// armed from Config.Refresh.Faults and fire in-process as survivable
// degradations here; the re-exec tests layer real SIGKILLs on the same seams
// through the cmd/serve -die-on-* flags.

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"inferturbo/internal/checkpoint"
	"inferturbo/internal/graph"
	"inferturbo/internal/inference"
	"inferturbo/internal/pregel"
)

func nowNanos() int64 { return time.Now().UnixNano() }

// walDeltaVersion versions the WAL payload encoding of one graph.Delta.
const walDeltaVersion = 1

// stagedDelta is one acknowledged mutation batch awaiting a refresh drain,
// tagged with its WAL sequence number (0 when the server runs without a WAL).
type stagedDelta struct {
	seq uint64
	d   graph.Delta
}

// encodeDelta serializes one delta batch as a WAL record payload.
func encodeDelta(b []byte, d graph.Delta) []byte {
	b = checkpoint.AppendU32(b, walDeltaVersion)
	b = checkpoint.AppendU64(b, uint64(len(d.Features)))
	for _, f := range d.Features {
		b = checkpoint.AppendU32(b, uint32(f.Node))
		b = checkpoint.AppendF32s(b, f.Features)
	}
	b = checkpoint.AppendU64(b, uint64(len(d.AddNodes)))
	for _, a := range d.AddNodes {
		b = checkpoint.AppendF32s(b, a.Features)
	}
	b = checkpoint.AppendU64(b, uint64(len(d.AddEdges)))
	for _, e := range d.AddEdges {
		b = checkpoint.AppendU32(b, uint32(e.Src))
		b = checkpoint.AppendU32(b, uint32(e.Dst))
		b = checkpoint.AppendF32s(b, e.Features)
	}
	b = checkpoint.AppendU64(b, uint64(len(d.RemoveEdges)))
	for _, e := range d.RemoveEdges {
		b = checkpoint.AppendU32(b, uint32(e.Src))
		b = checkpoint.AppendU32(b, uint32(e.Dst))
	}
	return b
}

// decodeDelta parses one WAL record payload. Counts are bounds-checked by
// the Reader's length caps, so hostile payloads error instead of allocating.
func decodeDelta(b []byte) (graph.Delta, error) {
	var d graph.Delta
	r := checkpoint.NewReader(b)
	if v := r.U32(); v != walDeltaVersion {
		return d, fmt.Errorf("serve: WAL delta version %d, want %d", v, walDeltaVersion)
	}
	nf := int(r.U64())
	for i := 0; i < nf && r.Err() == nil; i++ {
		node := int32(r.U32())
		d.Features = append(d.Features, graph.FeatureUpdate{Node: node, Features: r.F32s()})
	}
	nn := int(r.U64())
	for i := 0; i < nn && r.Err() == nil; i++ {
		d.AddNodes = append(d.AddNodes, graph.NodeAdd{Features: r.F32s()})
	}
	ne := int(r.U64())
	for i := 0; i < ne && r.Err() == nil; i++ {
		src, dst := int32(r.U32()), int32(r.U32())
		var feat []float32
		if f := r.F32s(); len(f) > 0 {
			feat = f
		}
		d.AddEdges = append(d.AddEdges, graph.EdgeAdd{Src: src, Dst: dst, Features: feat})
	}
	nr := int(r.U64())
	for i := 0; i < nr && r.Err() == nil; i++ {
		d.RemoveEdges = append(d.RemoveEdges, graph.EdgeKey{Src: int32(r.U32()), Dst: int32(r.U32())})
	}
	if err := r.Err(); err != nil {
		return graph.Delta{}, fmt.Errorf("serve: WAL delta payload: %w", err)
	}
	if r.Remaining() != 0 {
		return graph.Delta{}, fmt.Errorf("serve: WAL delta payload has %d trailing bytes", r.Remaining())
	}
	return d, nil
}

// serveFaults arms the serve-level fault points from a FaultPlan. Each entry
// fires once when its point's occurrence counter reaches Fault.Superstep
// (reinterpreted as a zero-based occurrence index).
type serveFaults struct {
	mu    sync.Mutex
	armed map[pregel.FaultPoint][]int
	seen  map[pregel.FaultPoint]int
}

func newServeFaults(plan *pregel.FaultPlan) *serveFaults {
	if plan == nil {
		return nil
	}
	f := &serveFaults{
		armed: make(map[pregel.FaultPoint][]int),
		seen:  make(map[pregel.FaultPoint]int),
	}
	for _, c := range plan.Crashes {
		switch c.Point {
		case pregel.FaultWALAppend, pregel.FaultWALTruncate, pregel.FaultSlabPersist:
			f.armed[c.Point] = append(f.armed[c.Point], c.Superstep)
		}
	}
	if len(f.armed) == 0 {
		return nil
	}
	return f
}

// fire advances point's occurrence counter and reports whether an armed
// fault targets this occurrence (consuming it).
func (f *serveFaults) fire(p pregel.FaultPoint) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	occ := f.seen[p]
	f.seen[p] = occ + 1
	for i, at := range f.armed[p] {
		if at == occ {
			f.armed[p] = append(f.armed[p][:i], f.armed[p][i+1:]...)
			return true
		}
	}
	return false
}

// openDurable wires the WAL and the resumed-or-fresh durable session into a
// just-constructed Server. Called by New when cfg.SessionDir is set; any
// failure is loud — a server asked to be durable must not silently fall back
// to losing state.
func (s *Server) openDurable() error {
	cfg := &s.cfg
	if cfg.DisableIncremental {
		return fmt.Errorf("serve: SessionDir requires incremental mode (remove DisableIncremental)")
	}
	s.faults = newServeFaults(cfg.Refresh.Faults)

	opts := cfg.Refresh
	opts.SessionDir = sessionSlabDir(cfg.SessionDir)
	userBegin := opts.SessionPersistBeginHook
	opts.SessionPersistBeginHook = func(mark uint64) error {
		if userBegin != nil {
			if err := userBegin(mark); err != nil {
				return err
			}
		}
		if s.faults.fire(pregel.FaultSlabPersist) {
			return fmt.Errorf("serve: injected slab-persist fault at mark %d", mark)
		}
		return nil
	}
	userDone := opts.SessionPersistHook
	opts.SessionPersistHook = func(epoch int, mark uint64, err error) {
		s.onSessionPersist(epoch, mark, err)
		if userDone != nil {
			userDone(epoch, mark, err)
		}
	}

	sess, resumed, err := inference.ResumeSession(cfg.Model, opts)
	if err != nil {
		return fmt.Errorf("serve: resume durable session: %w", err)
	}
	if !resumed {
		sess, err = inference.NewSession(cfg.Model, cfg.Graph, opts)
		if err != nil {
			return fmt.Errorf("serve: durable session: %w", err)
		}
	}
	s.session = sess
	s.sessionResumed = resumed
	if resumed {
		// The resumed graph supersedes the configured one for staging
		// validation and the first pass.
		s.stagedNodes = sess.Graph().NumNodes
	}

	wal, recs, err := checkpoint.OpenWAL(walDir(cfg.SessionDir), cfg.Refresh.CheckpointSync)
	if err != nil {
		sess.CloseDurable()
		return err
	}
	s.wal = wal

	// Re-stage every acknowledged batch the durable resident state does not
	// yet contain. Records at or below the replay mark are covered by the
	// resumed slabs (the crash fell between persist and truncation); they are
	// consumed here so the next truncation clears them.
	start := nowNanos()
	mark := sess.ReplayMark()
	// Sequence numbers must stay above every seq the durable state already
	// covers — even when those records are long truncated — or a fresh
	// append could land at-or-below the replay mark and be skipped by the
	// next restart's replay filter.
	s.walSeq = mark
	for _, rec := range recs {
		if rec.Seq > s.walSeq {
			s.walSeq = rec.Seq
		}
		if rec.Seq <= mark {
			continue
		}
		d, derr := decodeDelta(rec.Payload)
		if derr != nil {
			// A record that replayed (CRC-valid) but does not decode was
			// written by an incompatible version; refuse to guess.
			wal.Close()
			sess.CloseDurable()
			return fmt.Errorf("serve: WAL record seq %d: %w", rec.Seq, derr)
		}
		s.staged = append(s.staged, stagedDelta{seq: rec.Seq, d: d})
		s.stagedNodes += len(d.AddNodes)
		s.m.walReplayed.Add(1)
	}
	s.lastReplayNs.Store(nowNanos() - start)
	return nil
}

// sessionSlabDir and walDir lay out SessionDir: epoch files under slabs/,
// the WAL at the top level.
func sessionSlabDir(dir string) string { return filepath.Join(dir, "slabs") }
func walDir(dir string) string         { return dir }

// onSessionPersist runs on the session's persister goroutine after each
// epoch attempt. On success it truncates the WAL prefix the epoch covers —
// the only place WAL records are ever dropped, so truncation strictly
// follows durability of the state that replaces them. Recover-fenced: a
// panic here must degrade (records linger, replay dedups them), never kill
// the persister.
func (s *Server) onSessionPersist(epoch int, mark uint64, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.m.walTruncFailures.Add(1)
		}
	}()
	if err != nil {
		s.m.sessionPersistFailures.Add(1)
		return
	}
	s.m.sessionEpochs.Add(1)
	if s.wal == nil || mark == 0 {
		return
	}
	if s.faults.fire(pregel.FaultWALTruncate) {
		s.m.walTruncSkipped.Add(1)
		return
	}
	if hook := s.cfg.WALTruncateHook; hook != nil {
		hook(mark)
	}
	if terr := s.wal.TruncateThrough(mark); terr != nil {
		s.m.walTruncFailures.Add(1)
	}
}
