package graph

import (
	"fmt"
	"math"
)

// A Strategy selects a placement for a concrete graph. Strategies run once,
// up front, single-threaded over a deterministic node order, so a given
// (graph, numWorkers) pair always produces the same Partitioner — the
// precondition for the system's bit-identical-predictions guarantee to
// extend across placement choices.
//
// Strategies receive the graph the engine will actually run (for the Pregel
// backend that is the shadow rewrite when shadow-nodes is enabled), so
// mirror vertices get first-class placement too.
type Strategy interface {
	// Name identifies the strategy in flags, stats and bench output.
	Name() string
	// Partition builds the placement of g over numWorkers workers.
	Partition(g *Graph, numWorkers int) Partitioner
}

// Hash is the default strategy: the seed's stateless mod-N placement. It
// ignores topology entirely — the baseline every locality-aware strategy is
// measured against.
type Hash struct{}

// Name implements Strategy.
func (Hash) Name() string { return "hash" }

// Partition implements Strategy.
func (Hash) Partition(_ *Graph, numWorkers int) Partitioner {
	return NewPartitioner(numWorkers)
}

// DegreeBalanced is the degree-balanced fallback: stream nodes in id order
// and assign each to the worker with the least accumulated degree (out +
// in), ties to the lowest worker id. Like hash it is locality-blind, but it
// flattens the per-worker edge load that mod-N leaves to chance on skewed
// graphs — the right fallback when a graph is too adversarial for greedy
// edge-cut strategies to help.
type DegreeBalanced struct{}

// Name implements Strategy.
func (DegreeBalanced) Name() string { return "degree" }

// Partition implements Strategy.
func (DegreeBalanced) Partition(g *Graph, numWorkers int) Partitioner {
	if numWorkers <= 0 {
		panic(fmt.Sprintf("graph: invalid worker count %d", numWorkers))
	}
	workerOf := make([]int32, g.NumNodes)
	load := make([]int64, numWorkers)
	for v := int32(0); v < int32(g.NumNodes); v++ {
		best := 0
		for w := 1; w < numWorkers; w++ {
			if load[w] < load[best] {
				best = w
			}
		}
		workerOf[v] = int32(best)
		load[best] += int64(g.OutDegree(v)+g.InDegree(v)) + 1
	}
	return NewMapping(numWorkers, workerOf)
}

// LDG is streaming Linear Deterministic Greedy placement (Stanton &
// Kliot-style) with a capacity penalty: nodes stream in id order and each
// goes to the worker holding most of its already-placed neighbors, scored by
//
//	score(w) = |N(v) ∩ P_w| · (1 − |P_w| / C)
//
// with C = Slack · n / k the soft capacity. The multiplicative penalty
// drives the score to zero as a worker fills, trading edge locality against
// balance; workers at hard capacity are skipped outright. Neighbors count
// both directions (every edge crossing workers costs a message regardless
// of direction). Passes > 1 restreams the graph against the previous
// placement (Nishimura & Ugander's restreaming refinement); a bounded
// strict-improvement sweep then locks in the gains — on community-
// structured power-law graphs the combination roughly halves hash's edge
// cut while keeping node imbalance within the slack.
type LDG struct {
	// Slack widens the per-worker capacity beyond n/k. 0 means 1.05.
	Slack float64
	// Passes is the total number of streaming sweeps. 0 means 5.
	Passes int
}

// Name implements Strategy.
func (LDG) Name() string { return "ldg" }

// Partition implements Strategy.
func (s LDG) Partition(g *Graph, numWorkers int) Partitioner {
	slack := s.Slack
	if slack <= 0 {
		slack = 1.05
	}
	passes := s.Passes
	if passes <= 0 {
		passes = 5
	}
	capF := slack * float64(g.NumNodes) / float64(numWorkers)
	hardCap := int(math.Ceil(capF))
	if hardCap < 1 {
		hardCap = 1
	}
	score := func(neighbors, size int) float64 {
		return float64(neighbors) * (1 - float64(size)/capF)
	}
	return greedyStream(g, numWorkers, passes, hardCap, score)
}

// Fennel is the Fennel-style cost variant of the streaming greedy: instead
// of LDG's multiplicative penalty it subtracts the marginal intra-worker
// cost of the placement objective |edges cut| + α·Σ|P_w|^γ, scoring
//
//	score(w) = |N(v) ∩ P_w| − α·γ·|P_w|^(γ−1)
//
// with the paper's defaults γ = 1.5 and α = √k · m / n^γ, plus a hard
// balance cap of Slack · n / k. The additive penalty lets a worker keep
// absorbing a dense community slightly past the point LDG's multiplicative
// one gives up, at the cost of a worse worst-case balance.
type Fennel struct {
	// Gamma is the size-cost exponent. 0 means 1.5.
	Gamma float64
	// Alpha overrides the cost weight. 0 means √k · m / n^γ.
	Alpha float64
	// Slack bounds per-worker size at Slack · n / k. 0 means 1.1.
	Slack float64
	// Passes is the total number of streaming sweeps. 0 means 3.
	Passes int
}

// Name implements Strategy.
func (Fennel) Name() string { return "fennel" }

// Partition implements Strategy.
func (s Fennel) Partition(g *Graph, numWorkers int) Partitioner {
	gamma := s.Gamma
	if gamma <= 0 {
		gamma = 1.5
	}
	alpha := s.Alpha
	if alpha <= 0 {
		n := float64(g.NumNodes)
		if n == 0 {
			n = 1
		}
		alpha = math.Sqrt(float64(numWorkers)) * float64(g.NumEdges) / math.Pow(n, gamma)
	}
	slack := s.Slack
	if slack <= 0 {
		slack = 1.1
	}
	passes := s.Passes
	if passes <= 0 {
		passes = 3
	}
	hardCap := int(math.Ceil(slack * float64(g.NumNodes) / float64(numWorkers)))
	if hardCap < 1 {
		hardCap = 1
	}
	score := func(neighbors, size int) float64 {
		return float64(neighbors) - alpha*gamma*math.Pow(float64(size), gamma-1)
	}
	return greedyStream(g, numWorkers, passes, hardCap, score)
}

// greedyStream is the shared streaming core of LDG and Fennel: sweep nodes
// in id order Passes times, placing each at the eligible (below hardCap)
// worker with the highest score over its currently placed neighbors; score
// ties and the no-neighbors case resolve to the least-loaded worker, ties
// again to the lowest id. Restreaming sweeps re-place every node against
// the full previous assignment (minus the node itself). Everything is a
// deterministic function of (g, numWorkers, parameters).
func greedyStream(g *Graph, numWorkers, passes, hardCap int, score func(neighbors, size int) float64) Partitioner {
	if numWorkers <= 0 {
		panic(fmt.Sprintf("graph: invalid worker count %d", numWorkers))
	}
	n := g.NumNodes
	workerOf := make([]int32, n)
	for v := range workerOf {
		workerOf[v] = -1
	}
	size := make([]int, numWorkers)
	nbr := make([]int, numWorkers) // per-worker placed-neighbor counts for the current node

	countNeighbors := func(v int32) {
		for w := range nbr {
			nbr[w] = 0
		}
		for _, u := range g.OutNeighbors(v) {
			if u != v && workerOf[u] >= 0 {
				nbr[workerOf[u]]++
			}
		}
		for _, u := range g.InNeighbors(v) {
			if u != v && workerOf[u] >= 0 {
				nbr[workerOf[u]]++
			}
		}
	}

	for pass := 0; pass < passes; pass++ {
		for v := int32(0); v < int32(n); v++ {
			if old := workerOf[v]; old >= 0 {
				size[old]--
				workerOf[v] = -1
			}
			countNeighbors(v)
			// Score ties resolve to the least-loaded worker, then the
			// lowest id — without the load tie-break, LDG's multiplicative
			// score (exactly 0 for a node with no placed neighbors at any
			// load) would pile every such node onto worker 0 up to the cap.
			best, bestScore := -1, math.Inf(-1)
			for w := 0; w < numWorkers; w++ {
				if size[w] >= hardCap {
					continue
				}
				sc := score(nbr[w], size[w])
				if sc > bestScore || (sc == bestScore && best >= 0 && size[w] < size[best]) {
					best, bestScore = w, sc
				}
			}
			if best == -1 {
				// Every worker at hard capacity (only possible with tight
				// slack and ceil rounding): overflow to the least loaded.
				best = 0
				for w := 1; w < numWorkers; w++ {
					if size[w] < size[best] {
						best = w
					}
				}
			}
			workerOf[v] = int32(best)
			size[best]++
		}
	}

	// Refinement sweeps: move a vertex only when the move strictly
	// increases its co-located neighbor count (and the target is below the
	// hard cap). Every accepted move strictly decreases the total cut, so
	// unlike further score-driven restreaming this cannot oscillate; sweeps
	// stop as soon as one makes no move.
	for sweep := 0; sweep < refineSweeps; sweep++ {
		moved := false
		for v := int32(0); v < int32(n); v++ {
			countNeighbors(v)
			cur := int(workerOf[v])
			best := cur
			for w := 0; w < numWorkers; w++ {
				if w == cur || size[w] >= hardCap {
					continue
				}
				if nbr[w] > nbr[best] {
					best = w
				}
			}
			if best != cur {
				size[cur]--
				size[best]++
				workerOf[v] = int32(best)
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	return NewMapping(numWorkers, workerOf)
}

// refineSweeps bounds the post-stream local-improvement sweeps of
// greedyStream; convergence usually stops them much earlier.
const refineSweeps = 8

// Strategies lists every built-in strategy in flag order.
func Strategies() []Strategy {
	return []Strategy{Hash{}, DegreeBalanced{}, LDG{}, Fennel{}}
}

// StrategyByName resolves a strategy from its flag name.
func StrategyByName(name string) (Strategy, error) {
	for _, s := range Strategies() {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("graph: unknown partitioning strategy %q (want hash|degree|ldg|fennel)", name)
}
