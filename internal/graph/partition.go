package graph

import "fmt"

// Partitioner assigns nodes to workers. The paper follows Pregel: hash the
// node id (mod N); each partition owns its nodes' state and out-edges.
type Partitioner struct {
	NumWorkers int
}

// NewPartitioner returns a mod-N partitioner over the given worker count.
func NewPartitioner(numWorkers int) *Partitioner {
	if numWorkers <= 0 {
		panic(fmt.Sprintf("graph: invalid worker count %d", numWorkers))
	}
	return &Partitioner{NumWorkers: numWorkers}
}

// WorkerFor returns the worker owning node v.
func (p *Partitioner) WorkerFor(v int32) int { return int(v) % p.NumWorkers }

// NodesFor lists the nodes of worker w for a graph of n nodes, in id order.
func (p *Partitioner) NodesFor(w, n int) []int32 {
	var out []int32
	for v := w; v < n; v += p.NumWorkers {
		out = append(out, int32(v))
	}
	return out
}

// Stats summarizes a partitioning for load-balance analysis: per-worker node
// and out-edge counts.
type PartitionStats struct {
	Nodes    []int
	OutEdges []int
}

// Stats computes per-worker node and out-edge counts for g.
func (p *Partitioner) Stats(g *Graph) PartitionStats {
	st := PartitionStats{
		Nodes:    make([]int, p.NumWorkers),
		OutEdges: make([]int, p.NumWorkers),
	}
	for v := int32(0); v < int32(g.NumNodes); v++ {
		w := p.WorkerFor(v)
		st.Nodes[w]++
		st.OutEdges[w] += g.OutDegree(v)
	}
	return st
}
