package graph

import "fmt"

// Partitioner assigns nodes to workers. The paper follows Pregel: hash the
// node id (mod N); each partition owns its nodes' state and out-edges.
//
// The mod-N layout makes ownership a pure arithmetic property, which the
// engines exploit for dense per-partition indexing: worker w owns node v iff
// v % N == w, and v is the LocalIndex(v)-th node of that worker. Both are
// O(1) with no lookup tables, so per-superstep structures (counting-sort
// inboxes, combiner last-seen indexes) can be flat arrays.
type Partitioner struct {
	NumWorkers int
}

// NewPartitioner returns a mod-N partitioner over the given worker count.
func NewPartitioner(numWorkers int) *Partitioner {
	if numWorkers <= 0 {
		panic(fmt.Sprintf("graph: invalid worker count %d", numWorkers))
	}
	return &Partitioner{NumWorkers: numWorkers}
}

// WorkerFor returns the worker owning node v.
func (p *Partitioner) WorkerFor(v int32) int { return int(v) % p.NumWorkers }

// LocalIndex returns v's dense position within its owner's node list (the
// index of v in NodesFor(WorkerFor(v), n)).
func (p *Partitioner) LocalIndex(v int32) int { return int(v) / p.NumWorkers }

// OwnedCount returns how many of a graph's n nodes worker w owns, without
// materializing the list.
func (p *Partitioner) OwnedCount(w, n int) int {
	if w >= n {
		return 0
	}
	return (n - w + p.NumWorkers - 1) / p.NumWorkers
}

// NodesFor lists the nodes of worker w for a graph of n nodes, in id order.
func (p *Partitioner) NodesFor(w, n int) []int32 {
	out := make([]int32, 0, p.OwnedCount(w, n))
	for v := w; v < n; v += p.NumWorkers {
		out = append(out, int32(v))
	}
	return out
}

// Stats summarizes a partitioning for load-balance analysis: per-worker node
// and out-edge counts.
type PartitionStats struct {
	Nodes    []int
	OutEdges []int
}

// Stats computes per-worker node and out-edge counts for g.
func (p *Partitioner) Stats(g *Graph) PartitionStats {
	st := PartitionStats{
		Nodes:    make([]int, p.NumWorkers),
		OutEdges: make([]int, p.NumWorkers),
	}
	for w := range st.Nodes {
		st.Nodes[w] = p.OwnedCount(w, g.NumNodes)
	}
	for v := int32(0); v < int32(g.NumNodes); v++ {
		st.OutEdges[p.WorkerFor(v)] += g.OutDegree(v)
	}
	return st
}
