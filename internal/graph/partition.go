package graph

import "fmt"

// Partitioner assigns nodes to workers. The paper follows Pregel — shard the
// vertex set, each partition owning its nodes' state and out-edges — but the
// engines only depend on the placement contract below, so placement is a
// pluggable subsystem: the default mod-N hash keeps the seed behaviour, and
// locality-aware strategies (see strategies.go) drop in without touching the
// engines.
//
// The contract every implementation must honour:
//
//   - WorkerFor is a total function over [0, n) onto [0, NumWorkers()).
//   - LocalIndex(v) is v's position in NodesFor(WorkerFor(v), n): dense
//     [0, OwnedCount) per worker, so per-partition structures (counting-sort
//     inboxes, state slabs, combiner indexes) can be flat arrays.
//   - NodesFor lists a worker's nodes in ascending id order. The engines
//     compute owned vertices in that order, which makes every sender buffer
//     ascending in source id — the property the barrier's merge delivery
//     uses to give each destination a partition-independent inbox order.
//
// Implementations must be safe for concurrent read-only use: the engine's
// workers consult the shared partitioner from their goroutines.
type Partitioner interface {
	// NumWorkers returns the partition count.
	NumWorkers() int
	// WorkerFor returns the worker owning node v.
	WorkerFor(v int32) int
	// LocalIndex returns v's dense position within its owner's node list
	// (the index of v in NodesFor(WorkerFor(v), n)).
	LocalIndex(v int32) int
	// OwnedCount returns how many of a graph's n nodes worker w owns,
	// without materializing the list.
	OwnedCount(w, n int) int
	// NodesFor lists the nodes of worker w for a graph of n nodes, in
	// ascending id order.
	NodesFor(w, n int) []int32
}

// HashPartitioner is the seed's mod-N placement: worker w owns node v iff
// v % N == w, and v is the (v/N)-th node of that worker. Ownership is a pure
// arithmetic property — no lookup tables, valid for any node count — which
// is why it stays the zero-config default for engines that only know a
// vertex count, not a graph.
type HashPartitioner struct {
	Workers int
}

// NewPartitioner returns a mod-N hash partitioner over the given worker
// count.
func NewPartitioner(numWorkers int) *HashPartitioner {
	if numWorkers <= 0 {
		panic(fmt.Sprintf("graph: invalid worker count %d", numWorkers))
	}
	return &HashPartitioner{Workers: numWorkers}
}

// NumWorkers implements Partitioner.
func (p *HashPartitioner) NumWorkers() int { return p.Workers }

// WorkerFor implements Partitioner.
func (p *HashPartitioner) WorkerFor(v int32) int { return int(v) % p.Workers }

// LocalIndex implements Partitioner.
func (p *HashPartitioner) LocalIndex(v int32) int { return int(v) / p.Workers }

// OwnedCount implements Partitioner.
func (p *HashPartitioner) OwnedCount(w, n int) int {
	if w >= n {
		return 0
	}
	return (n - w + p.Workers - 1) / p.Workers
}

// NodesFor implements Partitioner.
func (p *HashPartitioner) NodesFor(w, n int) []int32 {
	out := make([]int32, 0, p.OwnedCount(w, n))
	for v := w; v < n; v += p.Workers {
		out = append(out, int32(v))
	}
	return out
}

// Mapping is a materialized node→worker assignment backed by dense workerOf
// and localIdx tables — the canonical form every computed placement (LDG,
// Fennel, degree-balanced) takes. Lookups are single table reads; the owned
// node lists are built once, in ascending id order, so the Partitioner
// contract holds by construction.
type Mapping struct {
	workers  int
	workerOf []int32
	localIdx []int32
	owned    [][]int32
}

// NewMapping builds the dense tables for an explicit assignment: workerOf[v]
// is the worker owning node v. The slice is copied; every entry must lie in
// [0, numWorkers).
func NewMapping(numWorkers int, workerOf []int32) *Mapping {
	if numWorkers <= 0 {
		panic(fmt.Sprintf("graph: invalid worker count %d", numWorkers))
	}
	m := &Mapping{
		workers:  numWorkers,
		workerOf: append([]int32(nil), workerOf...),
		localIdx: make([]int32, len(workerOf)),
		owned:    make([][]int32, numWorkers),
	}
	counts := make([]int, numWorkers)
	for v, w := range m.workerOf {
		if w < 0 || int(w) >= numWorkers {
			panic(fmt.Sprintf("graph: node %d mapped to worker %d of %d", v, w, numWorkers))
		}
		counts[w]++
	}
	for w, c := range counts {
		m.owned[w] = make([]int32, 0, c)
	}
	for v, w := range m.workerOf {
		m.localIdx[v] = int32(len(m.owned[w]))
		m.owned[w] = append(m.owned[w], int32(v))
	}
	return m
}

// NumWorkers implements Partitioner.
func (m *Mapping) NumWorkers() int { return m.workers }

// WorkerFor implements Partitioner.
func (m *Mapping) WorkerFor(v int32) int { return int(m.workerOf[v]) }

// LocalIndex implements Partitioner.
func (m *Mapping) LocalIndex(v int32) int { return int(m.localIdx[v]) }

// OwnedCount implements Partitioner. n must be the node count the mapping
// was built for — a mismatch means the caller partitioned a different graph
// (e.g. the input graph instead of its shadow rewrite), which would corrupt
// every dense per-partition structure downstream.
func (m *Mapping) OwnedCount(w, n int) int {
	m.checkNodes(n)
	return len(m.owned[w])
}

// NodesFor implements Partitioner. Callers must not mutate the returned
// slice.
func (m *Mapping) NodesFor(w, n int) []int32 {
	m.checkNodes(n)
	return m.owned[w]
}

func (m *Mapping) checkNodes(n int) {
	if n != len(m.workerOf) {
		panic(fmt.Sprintf("graph: mapping built for %d nodes queried with %d", len(m.workerOf), n))
	}
}

// PartitionStats summarizes a placement's quality for a concrete graph:
// per-worker load, the cross-worker traffic the placement induces, and how
// unevenly the load spreads.
type PartitionStats struct {
	// Nodes and OutEdges are per-worker node and out-edge counts.
	Nodes    []int
	OutEdges []int
	// CutEdges counts edges whose endpoints live on different workers; each
	// one costs a cross-worker message every superstep. EdgeCutFrac is
	// CutEdges / NumEdges.
	CutEdges    int
	EdgeCutFrac float64
	// ReplicationFactor is the mean number of workers that need a copy of a
	// node's state during scatter: the owner plus every distinct remote
	// worker among its out-neighbors. 1.0 means fully local; the hub
	// broadcast strategy sends exactly one payload per replica.
	ReplicationFactor float64
	// NodeImbalance and EdgeImbalance are max/mean per-worker load ratios
	// (1.0 = perfectly balanced); the straggler lower bound for superstep
	// wall-clock.
	NodeImbalance float64
	EdgeImbalance float64
}

// ComputeStats measures p's placement of g. Ownership is derived from the
// mapping itself (WorkerFor per node), never from a contiguity assumption,
// so the numbers stay correct for any strategy.
func ComputeStats(p Partitioner, g *Graph) PartitionStats {
	nw := p.NumWorkers()
	st := PartitionStats{
		Nodes:    make([]int, nw),
		OutEdges: make([]int, nw),
	}
	// seen[w] == v+1 marks worker w as holding a replica of the current
	// node v; reset is implicit via the stamp.
	seen := make([]int32, nw)
	var replicas int64
	for v := int32(0); v < int32(g.NumNodes); v++ {
		w := p.WorkerFor(v)
		st.Nodes[w]++
		st.OutEdges[w] += g.OutDegree(v)
		stamp := v + 1
		seen[w] = stamp
		reps := int64(1)
		for _, dst := range g.OutNeighbors(v) {
			dw := p.WorkerFor(dst)
			if dw != w {
				st.CutEdges++
			}
			if seen[dw] != stamp {
				seen[dw] = stamp
				reps++
			}
		}
		replicas += reps
	}
	if g.NumEdges > 0 {
		st.EdgeCutFrac = float64(st.CutEdges) / float64(g.NumEdges)
	}
	if g.NumNodes > 0 {
		st.ReplicationFactor = float64(replicas) / float64(g.NumNodes)
	}
	st.NodeImbalance = imbalance(st.Nodes)
	st.EdgeImbalance = imbalance(st.OutEdges)
	return st
}

// imbalance returns max/mean of the per-worker loads (0 when nothing is
// loaded).
func imbalance(loads []int) float64 {
	total, maxLoad := 0, 0
	for _, l := range loads {
		total += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(loads))
	return float64(maxLoad) / mean
}
