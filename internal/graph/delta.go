package graph

// Graph mutation for the incremental-execution path: a Delta describes a
// batch of feature updates, new nodes and edge additions/removals;
// ApplyDelta materializes a fresh immutable Graph (the original is never
// touched — readers holding the old snapshot stay consistent) together with
// the DeltaEffect seed sets the delta drivers flood from. GatherIndex is the
// pull-side mirror of the CSR: per-destination (source, edge-id) lists in
// exactly the order the Pregel barrier would deliver scattered messages, so
// a resident-state driver can regenerate any vertex's inbox bit-identically
// without messages ever being sent.

import (
	"fmt"
	"sort"

	"inferturbo/internal/tensor"
)

// FeatureUpdate replaces an existing node's feature row.
type FeatureUpdate struct {
	Node     int32
	Features []float32
}

// NodeAdd appends a new node; its id is the graph's node count at the time
// the delta is applied, plus the entry's index within AddNodes.
type NodeAdd struct {
	Features []float32
}

// EdgeAdd appends a directed edge. Features must match the graph's edge
// feature dimensionality (empty when the graph carries no edge attributes).
type EdgeAdd struct {
	Src, Dst int32
	Features []float32
}

// EdgeKey names a directed (src, dst) pair; removal drops every edge
// between the pair (multi-edges included).
type EdgeKey struct {
	Src, Dst int32
}

// Delta is one batch of graph mutations. Added edges may reference nodes
// introduced by AddNodes in the same batch.
type Delta struct {
	Features    []FeatureUpdate
	AddNodes    []NodeAdd
	AddEdges    []EdgeAdd
	RemoveEdges []EdgeKey
}

// Empty reports whether the delta mutates nothing.
func (d Delta) Empty() bool {
	return len(d.Features) == 0 && len(d.AddNodes) == 0 &&
		len(d.AddEdges) == 0 && len(d.RemoveEdges) == 0
}

// DeltaEffect is the seed set an incremental pass floods from, classified by
// what invalidates downstream state:
//
//   - StateDirty: the node's h^0 (feature row) changed — its own layer-1
//     state and every wire message derived from h^0 are stale.
//   - InboxDirty: the node's in-edge set changed — every layer's gather for
//     it must re-run against the new structure, even where no upstream value
//     changed.
//   - DegreeChanged: the node's out-degree changed — degree-scaled wire
//     messages (gas.MessageScaler layers) it sends are stale at every layer
//     even though its states are not.
//
// New nodes appear in both StateDirty and InboxDirty. Sets are sorted and
// duplicate-free.
type DeltaEffect struct {
	// NumNodes is the node count after the delta.
	NumNodes      int
	StateDirty    []int32
	InboxDirty    []int32
	DegreeChanged []int32
	EdgesAdded    int
	EdgesRemoved  int
}

// ApplyDelta builds the mutated graph and its seed sets. g is not modified;
// the returned graph shares no mutable state with it. Edge ids are
// renumbered (kept edges first in original id order, then additions), with
// edge features carried along. An error leaves g unchanged and returns no
// effect; removals that match no edge are errors.
func ApplyDelta(g *Graph, d Delta) (*Graph, *DeltaEffect, error) {
	oldN := g.NumNodes
	newN := oldN + len(d.AddNodes)
	fdim := g.FeatureDim()
	edim := g.EdgeFeatureDim()

	for _, fu := range d.Features {
		if int(fu.Node) < 0 || int(fu.Node) >= oldN {
			return nil, nil, fmt.Errorf("graph: feature update for node %d out of range [0,%d)", fu.Node, oldN)
		}
		if len(fu.Features) != fdim {
			return nil, nil, fmt.Errorf("graph: feature update for node %d has dim %d, want %d", fu.Node, len(fu.Features), fdim)
		}
	}
	for i, na := range d.AddNodes {
		if len(na.Features) != fdim {
			return nil, nil, fmt.Errorf("graph: new node %d has feature dim %d, want %d", i, len(na.Features), fdim)
		}
	}
	for _, ea := range d.AddEdges {
		if int(ea.Src) < 0 || int(ea.Src) >= newN || int(ea.Dst) < 0 || int(ea.Dst) >= newN {
			return nil, nil, fmt.Errorf("graph: added edge (%d,%d) out of range [0,%d)", ea.Src, ea.Dst, newN)
		}
		if len(ea.Features) != edim {
			return nil, nil, fmt.Errorf("graph: added edge (%d,%d) has feature dim %d, want %d", ea.Src, ea.Dst, len(ea.Features), edim)
		}
	}
	// Removal pairs: every matching edge is dropped; a pair matching nothing
	// is a caller error surfaced before anything is built.
	remove := make(map[EdgeKey]int, len(d.RemoveEdges))
	for _, rk := range d.RemoveEdges {
		if int(rk.Src) < 0 || int(rk.Src) >= oldN || int(rk.Dst) < 0 || int(rk.Dst) >= oldN {
			return nil, nil, fmt.Errorf("graph: removed edge (%d,%d) out of range [0,%d)", rk.Src, rk.Dst, oldN)
		}
		remove[rk] = 0
	}

	b := NewBuilder(newN)
	src, dst := g.EdgeList()
	removed := 0
	for e := 0; e < g.NumEdges; e++ {
		key := EdgeKey{Src: src[e], Dst: dst[e]}
		if n, ok := remove[key]; ok {
			remove[key] = n + 1
			removed++
			continue
		}
		var ef []float32
		if g.EdgeFeatures != nil {
			ef = g.EdgeFeatures.Row(e)
		}
		b.AddEdge(src[e], dst[e], ef)
	}
	for key, n := range remove {
		if n == 0 {
			return nil, nil, fmt.Errorf("graph: removed edge (%d,%d) does not exist", key.Src, key.Dst)
		}
	}
	for _, ea := range d.AddEdges {
		b.AddEdge(ea.Src, ea.Dst, ea.Features)
	}
	ng := b.Build()

	// Node attributes: copy-on-write feature matrix, extended with the new
	// rows; labels/masks extend with zero values (serving graphs predict —
	// labels for new nodes are unknown).
	if g.Features != nil {
		nf := tensor.New(newN, fdim)
		copy(nf.Data, g.Features.Data)
		for i, na := range d.AddNodes {
			nf.SetRow(oldN+i, na.Features)
		}
		for _, fu := range d.Features {
			nf.SetRow(int(fu.Node), fu.Features)
		}
		ng.Features = nf
	} else if len(d.AddNodes) > 0 || len(d.Features) > 0 {
		return nil, nil, fmt.Errorf("graph: feature mutations on a graph without features")
	}
	if g.Labels != nil {
		labels := make([]int32, newN)
		copy(labels, g.Labels)
		ng.Labels = labels
	}
	if g.MultiLabels != nil {
		ml := tensor.New(newN, g.MultiLabels.Cols)
		copy(ml.Data, g.MultiLabels.Data)
		ng.MultiLabels = ml
	}
	ng.NumClasses = g.NumClasses
	ng.TrainMask = extendMask(g.TrainMask, newN)
	ng.ValMask = extendMask(g.ValMask, newN)
	ng.TestMask = extendMask(g.TestMask, newN)

	eff := &DeltaEffect{
		NumNodes:     newN,
		EdgesAdded:   len(d.AddEdges),
		EdgesRemoved: removed,
	}
	state := make(map[int32]bool)
	inbox := make(map[int32]bool)
	degCand := make(map[int32]bool)
	for _, fu := range d.Features {
		state[fu.Node] = true
	}
	for i := range d.AddNodes {
		state[int32(oldN+i)] = true
		inbox[int32(oldN+i)] = true
	}
	for _, ea := range d.AddEdges {
		inbox[ea.Dst] = true
		degCand[ea.Src] = true
	}
	for _, rk := range d.RemoveEdges {
		inbox[rk.Dst] = true
		degCand[rk.Src] = true
	}
	// Out-degree changes are measured, not assumed: a node that removed one
	// edge and added another sends the same scaled values — its receivers are
	// already covered through InboxDirty.
	for v := range degCand {
		if int(v) < oldN && g.OutDegree(v) == ng.OutDegree(v) {
			continue
		}
		if int(v) >= oldN {
			continue // new nodes have no stale resident messages to repair
		}
		eff.DegreeChanged = append(eff.DegreeChanged, v)
	}
	eff.StateDirty = sortedKeys(state)
	eff.InboxDirty = sortedKeys(inbox)
	sortInt32(eff.DegreeChanged)
	return ng, eff, nil
}

func extendMask(m []bool, n int) []bool {
	if m == nil {
		return nil
	}
	out := make([]bool, n)
	copy(out, m)
	return out
}

func sortedKeys(m map[int32]bool) []int32 {
	if len(m) == 0 {
		return nil
	}
	out := make([]int32, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sortInt32(out)
	return out
}

func sortInt32(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// GatherIndex is the pull-side view of a graph's in-edges in message
// delivery order: vertex v's in-edges are (Src[i], Edge[i]) for i in
// Ptr[v]..Ptr[v+1], ordered by ascending source id with a source's
// multi-edges in its CSR out-edge order. That is exactly the per-destination
// order the Pregel barrier's ascending-source merge delivers scattered
// messages in — independent of worker count and placement — so folding a
// regenerated inbox in GatherIndex order reproduces an engine gather bit for
// bit. (The CSC's per-destination lists are in edge-insertion order and
// cannot serve this purpose.)
type GatherIndex struct {
	Ptr  []int32 // len NumNodes+1
	Src  []int32 // len NumEdges
	Edge []int32 // len NumEdges
}

// BuildGatherIndex constructs the delivery-order pull index in O(V+E).
func BuildGatherIndex(g *Graph) *GatherIndex {
	gi := &GatherIndex{
		Ptr:  make([]int32, g.NumNodes+1),
		Src:  make([]int32, g.NumEdges),
		Edge: make([]int32, g.NumEdges),
	}
	copy(gi.Ptr, g.InPtr) // in-degree counts are order-independent
	cur := make([]int32, g.NumNodes)
	copy(cur, gi.Ptr[:g.NumNodes])
	for v := int32(0); v < int32(g.NumNodes); v++ {
		dsts, eids := g.OutNeighbors(v), g.OutEdgeIDs(v)
		for i, d := range dsts {
			p := cur[d]
			gi.Src[p] = v
			gi.Edge[p] = eids[i]
			cur[d]++
		}
	}
	return gi
}

// InEdges returns v's (sources, edge ids) in delivery order (aliases
// storage; callers must not mutate).
func (gi *GatherIndex) InEdges(v int32) (srcs, eids []int32) {
	return gi.Src[gi.Ptr[v]:gi.Ptr[v+1]], gi.Edge[gi.Ptr[v]:gi.Ptr[v+1]]
}
