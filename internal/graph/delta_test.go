package graph

import (
	"reflect"
	"testing"

	"inferturbo/internal/tensor"
)

// deltaBase builds a 4-node graph with features and edge features:
// 0->1, 0->2, 1->3, 2->3, 3->0.
func deltaBase(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4)
	edges := [][2]int32{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 0}}
	for i, e := range edges {
		b.AddEdge(e[0], e[1], []float32{float32(i)})
	}
	g := b.Build()
	g.Features = tensor.New(4, 2)
	for v := 0; v < 4; v++ {
		g.Features.SetRow(v, []float32{float32(v), float32(v) + 0.5})
	}
	g.Labels = []int32{0, 1, 0, 1}
	g.NumClasses = 2
	if err := g.Validate(); err != nil {
		t.Fatalf("base graph invalid: %v", err)
	}
	return g
}

func TestApplyDeltaFeatureUpdate(t *testing.T) {
	g := deltaBase(t)
	ng, eff, err := ApplyDelta(g, Delta{
		Features: []FeatureUpdate{{Node: 2, Features: []float32{9, 9}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ng.Validate(); err != nil {
		t.Fatalf("mutated graph invalid: %v", err)
	}
	if got := ng.Features.Row(2); got[0] != 9 || got[1] != 9 {
		t.Fatalf("feature row not updated: %v", got)
	}
	if got := g.Features.Row(2); got[0] != 2 {
		t.Fatalf("original graph mutated: %v", got)
	}
	if !reflect.DeepEqual(eff.StateDirty, []int32{2}) {
		t.Fatalf("StateDirty = %v, want [2]", eff.StateDirty)
	}
	if len(eff.InboxDirty) != 0 || len(eff.DegreeChanged) != 0 {
		t.Fatalf("unexpected structural seeds: %+v", eff)
	}
	if ng.NumEdges != g.NumEdges {
		t.Fatalf("edge count changed: %d != %d", ng.NumEdges, g.NumEdges)
	}
}

func TestApplyDeltaStructural(t *testing.T) {
	g := deltaBase(t)
	ng, eff, err := ApplyDelta(g, Delta{
		AddNodes:    []NodeAdd{{Features: []float32{7, 7}}},
		AddEdges:    []EdgeAdd{{Src: 4, Dst: 1, Features: []float32{40}}, {Src: 0, Dst: 3, Features: []float32{41}}},
		RemoveEdges: []EdgeKey{{Src: 1, Dst: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ng.Validate(); err != nil {
		t.Fatalf("mutated graph invalid: %v", err)
	}
	if ng.NumNodes != 5 || eff.NumNodes != 5 {
		t.Fatalf("node count = %d/%d, want 5", ng.NumNodes, eff.NumNodes)
	}
	if ng.NumEdges != 6 { // 5 - 1 + 2
		t.Fatalf("edge count = %d, want 6", ng.NumEdges)
	}
	if eff.EdgesAdded != 2 || eff.EdgesRemoved != 1 {
		t.Fatalf("edge accounting: %+v", eff)
	}
	// New node: state+inbox dirty. Edge dsts 1 and 3 inbox dirty (3 also via
	// removal). Srcs 4 (new, excluded), 0 (+1 out-edge) and 1 (-1 out-edge)
	// changed degree; 4 is excluded as a new node.
	if !reflect.DeepEqual(eff.StateDirty, []int32{4}) {
		t.Fatalf("StateDirty = %v", eff.StateDirty)
	}
	if !reflect.DeepEqual(eff.InboxDirty, []int32{1, 3, 4}) {
		t.Fatalf("InboxDirty = %v", eff.InboxDirty)
	}
	if !reflect.DeepEqual(eff.DegreeChanged, []int32{0, 1}) {
		t.Fatalf("DegreeChanged = %v", eff.DegreeChanged)
	}
	// Edge features carried: edge 0->3 is new with feature 41; removed edge's
	// feature (id 2, value 2) is gone.
	found := false
	for i := ng.OutPtr[0]; i < ng.OutPtr[1]; i++ {
		if ng.OutDst[i] == 3 && ng.EdgeFeatures.Row(int(ng.OutEdge[i]))[0] == 41 {
			found = true
		}
	}
	if !found {
		t.Fatal("added edge 0->3 with feature 41 not found")
	}
	if got := ng.OutDegree(1); got != 0 {
		t.Fatalf("node 1 out-degree = %d after removal, want 0", got)
	}
	if len(ng.Labels) != 5 {
		t.Fatalf("labels not extended: %d", len(ng.Labels))
	}
}

func TestApplyDeltaNetZeroDegree(t *testing.T) {
	g := deltaBase(t)
	// Node 0 removes 0->1 and adds 0->3: out-degree unchanged, so it must
	// not appear in DegreeChanged; both dsts are inbox-dirty.
	_, eff, err := ApplyDelta(g, Delta{
		AddEdges:    []EdgeAdd{{Src: 0, Dst: 3, Features: []float32{9}}},
		RemoveEdges: []EdgeKey{{Src: 0, Dst: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.DegreeChanged) != 0 {
		t.Fatalf("DegreeChanged = %v, want empty", eff.DegreeChanged)
	}
	if !reflect.DeepEqual(eff.InboxDirty, []int32{1, 3}) {
		t.Fatalf("InboxDirty = %v", eff.InboxDirty)
	}
}

func TestApplyDeltaErrors(t *testing.T) {
	g := deltaBase(t)
	cases := []Delta{
		{Features: []FeatureUpdate{{Node: 9, Features: []float32{1, 2}}}},
		{Features: []FeatureUpdate{{Node: 0, Features: []float32{1}}}},
		{AddNodes: []NodeAdd{{Features: []float32{1}}}},
		{AddEdges: []EdgeAdd{{Src: 0, Dst: 9, Features: []float32{1}}}},
		{AddEdges: []EdgeAdd{{Src: 0, Dst: 1}}}, // missing edge feature
		{RemoveEdges: []EdgeKey{{Src: 3, Dst: 1}}},
	}
	for i, d := range cases {
		if _, _, err := ApplyDelta(g, d); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestApplyDeltaRemovesMultiEdges(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1, nil)
	b.AddEdge(0, 1, nil)
	b.AddEdge(1, 0, nil)
	g := b.Build()
	g.Features = tensor.New(2, 1)
	ng, eff, err := ApplyDelta(g, Delta{RemoveEdges: []EdgeKey{{Src: 0, Dst: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if ng.NumEdges != 1 || eff.EdgesRemoved != 2 {
		t.Fatalf("multi-edge removal: edges=%d removed=%d", ng.NumEdges, eff.EdgesRemoved)
	}
}

// TestGatherIndexDeliveryOrder checks the pull index against a direct
// definition: per destination, sources ascending; a source's multi-edges in
// its CSR out-edge order.
func TestGatherIndexDeliveryOrder(t *testing.T) {
	b := NewBuilder(5)
	// Multi-edges and shuffled insertion order on purpose.
	edges := [][2]int32{{3, 1}, {0, 1}, {2, 1}, {0, 1}, {4, 0}, {2, 4}, {1, 4}, {0, 4}}
	for _, e := range edges {
		b.AddEdge(e[0], e[1], nil)
	}
	g := b.Build()
	gi := BuildGatherIndex(g)

	if len(gi.Src) != g.NumEdges || int(gi.Ptr[g.NumNodes]) != g.NumEdges {
		t.Fatalf("index sizing: %d/%d edges", len(gi.Src), gi.Ptr[g.NumNodes])
	}
	for v := int32(0); v < int32(g.NumNodes); v++ {
		srcs, eids := gi.InEdges(v)
		if len(srcs) != g.InDegree(v) {
			t.Fatalf("vertex %d: %d in-edges, want %d", v, len(srcs), g.InDegree(v))
		}
		// Reconstruct expected order from the CSR directly.
		var wantSrc, wantEid []int32
		for u := int32(0); u < int32(g.NumNodes); u++ {
			dsts, ids := g.OutNeighbors(u), g.OutEdgeIDs(u)
			for i, d := range dsts {
				if d == v {
					wantSrc = append(wantSrc, u)
					wantEid = append(wantEid, ids[i])
				}
			}
		}
		if !reflect.DeepEqual(append([]int32{}, srcs...), append([]int32{}, wantSrc...)) && len(wantSrc) > 0 {
			t.Fatalf("vertex %d: srcs %v, want %v", v, srcs, wantSrc)
		}
		if !reflect.DeepEqual(append([]int32{}, eids...), append([]int32{}, wantEid...)) && len(wantEid) > 0 {
			t.Fatalf("vertex %d: eids %v, want %v", v, eids, wantEid)
		}
	}
}
