package graph

import (
	"testing"

	"inferturbo/internal/tensor"
)

// chain builds 0 -> 1 -> 2 -> 3 (edges point toward higher ids).
func chain(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4)
	b.AddEdge(0, 1, nil)
	b.AddEdge(1, 2, nil)
	b.AddEdge(2, 3, nil)
	return b.Build()
}

func TestKHopZeroHopsIsJustRoots(t *testing.T) {
	g := chain(t)
	sub := KHop(g, []int32{2}, KHopOptions{Hops: 0})
	if sub.NumNodes() != 1 || sub.NumEdges() != 0 {
		t.Fatalf("0-hop = %d nodes %d edges", sub.NumNodes(), sub.NumEdges())
	}
	if sub.Nodes[0] != 2 || sub.Depth[0] != 0 {
		t.Fatalf("root mapping wrong: %v", sub.Nodes)
	}
}

func TestKHopChainDepths(t *testing.T) {
	g := chain(t)
	sub := KHop(g, []int32{3}, KHopOptions{Hops: 2})
	// In-neighborhood of 3 within 2 hops: {3, 2, 1}.
	if sub.NumNodes() != 3 {
		t.Fatalf("nodes = %v", sub.Nodes)
	}
	wantDepth := map[int32]int32{3: 0, 2: 1, 1: 2}
	for i, global := range sub.Nodes {
		if sub.Depth[i] != wantDepth[global] {
			t.Fatalf("depth of %d = %d, want %d", global, sub.Depth[i], wantDepth[global])
		}
	}
	if sub.NumEdges() != 2 {
		t.Fatalf("edges = %d", sub.NumEdges())
	}
}

func TestKHopEdgesAreLocalAndValid(t *testing.T) {
	g := diamond(t)
	sub := KHop(g, []int32{3}, KHopOptions{Hops: 2})
	for i := range sub.Src {
		if int(sub.Src[i]) >= sub.NumNodes() || int(sub.Dst[i]) >= sub.NumNodes() {
			t.Fatalf("edge %d out of local range", i)
		}
		// Every local edge must exist in the global graph.
		gs, gd := sub.Nodes[sub.Src[i]], sub.Nodes[sub.Dst[i]]
		found := false
		for _, nb := range g.OutNeighbors(gs) {
			if nb == gd {
				found = true
			}
		}
		if !found {
			t.Fatalf("edge %d (%d->%d) not in graph", i, gs, gd)
		}
	}
}

func TestKHopCompleteNeighborhoodHasAllEdges(t *testing.T) {
	// In the diamond, the 2-hop in-neighborhood of node 3 must include both
	// length-2 paths (0->1->3 and 0->2->3): 4 edges total.
	g := diamond(t)
	sub := KHop(g, []int32{3}, KHopOptions{Hops: 2})
	if sub.NumNodes() != 4 {
		t.Fatalf("nodes = %v", sub.Nodes)
	}
	if sub.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4", sub.NumEdges())
	}
}

func TestKHopMultipleRootsShareNodes(t *testing.T) {
	g := diamond(t)
	sub := KHop(g, []int32{1, 2}, KHopOptions{Hops: 1})
	// Both roots have in-neighbor 0; it must be interned once.
	if sub.NumRoots != 2 {
		t.Fatalf("roots = %d", sub.NumRoots)
	}
	count := map[int32]int{}
	for _, n := range sub.Nodes {
		count[n]++
	}
	if count[0] != 1 {
		t.Fatalf("node 0 interned %d times", count[0])
	}
	if sub.Nodes[0] != 1 || sub.Nodes[1] != 2 {
		t.Fatal("roots must occupy the first local ids in request order")
	}
}

func TestKHopDuplicateRootPanics(t *testing.T) {
	g := chain(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KHop(g, []int32{1, 1}, KHopOptions{Hops: 1})
}

func TestKHopSamplingBoundsFanout(t *testing.T) {
	// Star: nodes 1..10 all point at node 0.
	b := NewBuilder(11)
	for v := int32(1); v <= 10; v++ {
		b.AddEdge(v, 0, nil)
	}
	g := b.Build()
	rng := tensor.NewRNG(1)
	sub := KHop(g, []int32{0}, KHopOptions{Hops: 1, Fanouts: []int{3}, RNG: rng})
	if sub.NumEdges() != 3 {
		t.Fatalf("sampled edges = %d, want 3", sub.NumEdges())
	}
	if sub.NumNodes() != 4 {
		t.Fatalf("sampled nodes = %d, want 4", sub.NumNodes())
	}
}

func TestKHopSamplingFanoutLargerThanDegreeTakesAll(t *testing.T) {
	g := diamond(t)
	rng := tensor.NewRNG(2)
	sub := KHop(g, []int32{3}, KHopOptions{Hops: 1, Fanouts: []int{100}, RNG: rng})
	if sub.NumEdges() != 2 {
		t.Fatalf("edges = %d, want all 2", sub.NumEdges())
	}
}

func TestKHopSamplingDeterministicPerSeed(t *testing.T) {
	b := NewBuilder(50)
	rng := tensor.NewRNG(7)
	for i := 0; i < 300; i++ {
		b.AddEdge(int32(rng.Intn(50)), int32(rng.Intn(50)), nil)
	}
	g := b.Build()
	a := KHop(g, []int32{0, 1, 2}, KHopOptions{Hops: 2, Fanouts: []int{5, 5}, RNG: tensor.NewRNG(11)})
	c := KHop(g, []int32{0, 1, 2}, KHopOptions{Hops: 2, Fanouts: []int{5, 5}, RNG: tensor.NewRNG(11)})
	if a.NumNodes() != c.NumNodes() || a.NumEdges() != c.NumEdges() {
		t.Fatal("same seed must give identical subgraphs")
	}
	for i := range a.Nodes {
		if a.Nodes[i] != c.Nodes[i] {
			t.Fatal("same seed must give identical node order")
		}
	}
}

func TestKHopSamplingRequiresRNG(t *testing.T) {
	g := chain(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KHop(g, []int32{3}, KHopOptions{Hops: 1, Fanouts: []int{2}})
}

func TestKHopGatherFeatures(t *testing.T) {
	g := chain(t)
	g.Features = tensor.FromRows([][]float32{{0}, {10}, {20}, {30}})
	sub := KHop(g, []int32{3}, KHopOptions{Hops: 1})
	feats := sub.GatherFeatures(g)
	if feats.Rows != sub.NumNodes() {
		t.Fatalf("feature rows = %d", feats.Rows)
	}
	if feats.At(0, 0) != 30 {
		t.Fatalf("root feature = %v, want 30", feats.At(0, 0))
	}
}

func TestKHopGatherEdgeFeatures(t *testing.T) {
	g := diamond(t)
	sub := KHop(g, []int32{3}, KHopOptions{Hops: 1})
	ef := sub.GatherEdgeFeatures(g)
	if ef == nil || ef.Rows != sub.NumEdges() {
		t.Fatal("edge features must be gathered per subgraph edge")
	}
	// The diamond's edge features equal their global edge id.
	for i, e := range sub.EdgeIDs {
		if ef.At(i, 0) != float32(e) {
			t.Fatalf("edge feature %d = %v, want %d", i, ef.At(i, 0), e)
		}
	}
	gNoEf := chain(t)
	sub2 := KHop(gNoEf, []int32{1}, KHopOptions{Hops: 1})
	if sub2.GatherEdgeFeatures(gNoEf) != nil {
		t.Fatal("nil edge features expected")
	}
}

func TestKHopNeighborhoodGrowth(t *testing.T) {
	// On a dense-ish random graph the neighborhood size grows monotonically
	// with hops and is bounded by the full graph.
	rng := tensor.NewRNG(3)
	b := NewBuilder(200)
	for i := 0; i < 1000; i++ {
		b.AddEdge(int32(rng.Intn(200)), int32(rng.Intn(200)), nil)
	}
	g := b.Build()
	prev := 0
	for hops := 0; hops <= 3; hops++ {
		sub := KHop(g, []int32{0}, KHopOptions{Hops: hops})
		if sub.NumNodes() < prev {
			t.Fatalf("neighborhood shrank at hops=%d", hops)
		}
		if sub.NumNodes() > g.NumNodes {
			t.Fatal("neighborhood larger than graph")
		}
		prev = sub.NumNodes()
	}
}
