// Package graph provides the attributed directed graph representation shared
// by the trainer, both inference backends, and the traditional baseline: CSR
// out-adjacency and CSC in-adjacency built deterministically from an edge
// list, plus node/edge features, labels and split masks.
package graph

import (
	"fmt"

	"inferturbo/internal/tensor"
)

// Graph is a directed attributed graph. Node ids are dense [0, NumNodes).
// Edge ids are dense [0, NumEdges) in the order edges were supplied to the
// builder; both adjacency structures reference edges by that id so edge
// features are stored once.
type Graph struct {
	NumNodes int
	NumEdges int

	// CSR over out-edges: for node v, edges are indices OutPtr[v]..OutPtr[v+1]
	// into OutDst (destination node) and OutEdge (edge id).
	OutPtr  []int32
	OutDst  []int32
	OutEdge []int32

	// CSC over in-edges: for node v, in-edges are InPtr[v]..InPtr[v+1] into
	// InSrc (source node) and InEdge (edge id).
	InPtr  []int32
	InSrc  []int32
	InEdge []int32

	// Features is the NumNodes x F node feature matrix.
	Features *tensor.Matrix
	// EdgeFeatures is the NumEdges x Fe edge feature matrix; nil when the
	// graph has no edge attributes.
	EdgeFeatures *tensor.Matrix

	// Labels holds one class id per node for single-label tasks; nil for
	// multi-label tasks.
	Labels []int32
	// MultiLabels is the NumNodes x NumClasses {0,1} matrix for multi-label
	// tasks (the PPI setting); nil for single-label tasks.
	MultiLabels *tensor.Matrix

	NumClasses int

	TrainMask []bool
	ValMask   []bool
	TestMask  []bool
}

// Builder accumulates edges then produces an immutable Graph.
type Builder struct {
	numNodes int
	src      []int32
	dst      []int32
	efeat    [][]float32
	edgeDim  int
}

// NewBuilder creates a builder for a graph with the given node count.
func NewBuilder(numNodes int) *Builder {
	if numNodes < 0 {
		panic("graph: negative node count")
	}
	return &Builder{numNodes: numNodes, edgeDim: -1}
}

// AddEdge appends a directed edge src -> dst with optional features. All
// edges must carry the same feature dimensionality (possibly zero).
func (b *Builder) AddEdge(src, dst int32, feat []float32) {
	if int(src) < 0 || int(src) >= b.numNodes || int(dst) < 0 || int(dst) >= b.numNodes {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", src, dst, b.numNodes))
	}
	if b.edgeDim == -1 {
		b.edgeDim = len(feat)
	} else if len(feat) != b.edgeDim {
		panic(fmt.Sprintf("graph: edge feature dim %d != %d", len(feat), b.edgeDim))
	}
	b.src = append(b.src, src)
	b.dst = append(b.dst, dst)
	if len(feat) > 0 {
		cp := make([]float32, len(feat))
		copy(cp, feat)
		b.efeat = append(b.efeat, cp)
	}
}

// NumEdges reports edges added so far.
func (b *Builder) NumEdges() int { return len(b.src) }

// Build assembles the CSR/CSC structures. The builder may not be reused.
func (b *Builder) Build() *Graph {
	g := &Graph{
		NumNodes: b.numNodes,
		NumEdges: len(b.src),
	}
	g.OutPtr, g.OutDst, g.OutEdge = buildAdj(b.numNodes, b.src, b.dst)
	g.InPtr, g.InSrc, g.InEdge = buildAdj(b.numNodes, b.dst, b.src)
	if len(b.efeat) > 0 {
		g.EdgeFeatures = tensor.FromRows(b.efeat)
	}
	return g
}

// buildAdj produces ptr/nbr/edge arrays keyed by `key` with neighbor `val`
// via a counting sort, so edge order within a node follows insertion order —
// deterministic across runs.
func buildAdj(n int, key, val []int32) (ptr, nbr, eid []int32) {
	ptr = make([]int32, n+1)
	for _, k := range key {
		ptr[k+1]++
	}
	for i := 0; i < n; i++ {
		ptr[i+1] += ptr[i]
	}
	nbr = make([]int32, len(key))
	eid = make([]int32, len(key))
	cursor := make([]int32, n)
	copy(cursor, ptr[:n])
	for e := range key {
		k := key[e]
		p := cursor[k]
		nbr[p] = val[e]
		eid[p] = int32(e)
		cursor[k]++
	}
	return ptr, nbr, eid
}

// OutDegree returns the out-degree of node v.
func (g *Graph) OutDegree(v int32) int { return int(g.OutPtr[v+1] - g.OutPtr[v]) }

// InDegree returns the in-degree of node v.
func (g *Graph) InDegree(v int32) int { return int(g.InPtr[v+1] - g.InPtr[v]) }

// OutNeighbors returns the destinations of v's out-edges (aliases storage).
func (g *Graph) OutNeighbors(v int32) []int32 { return g.OutDst[g.OutPtr[v]:g.OutPtr[v+1]] }

// OutEdgeIDs returns the edge ids of v's out-edges (aliases storage).
func (g *Graph) OutEdgeIDs(v int32) []int32 { return g.OutEdge[g.OutPtr[v]:g.OutPtr[v+1]] }

// InNeighbors returns the sources of v's in-edges (aliases storage).
func (g *Graph) InNeighbors(v int32) []int32 { return g.InSrc[g.InPtr[v]:g.InPtr[v+1]] }

// InEdgeIDs returns the edge ids of v's in-edges (aliases storage).
func (g *Graph) InEdgeIDs(v int32) []int32 { return g.InEdge[g.InPtr[v]:g.InPtr[v+1]] }

// FeatureDim returns the node feature dimensionality (0 when unset).
func (g *Graph) FeatureDim() int {
	if g.Features == nil {
		return 0
	}
	return g.Features.Cols
}

// EdgeFeatureDim returns the edge feature dimensionality (0 when unset).
func (g *Graph) EdgeFeatureDim() int {
	if g.EdgeFeatures == nil {
		return 0
	}
	return g.EdgeFeatures.Cols
}

// EdgeList reconstructs the (src, dst) arrays in edge-id order, mostly for
// tests and export.
func (g *Graph) EdgeList() (src, dst []int32) {
	src = make([]int32, g.NumEdges)
	dst = make([]int32, g.NumEdges)
	for v := int32(0); v < int32(g.NumNodes); v++ {
		for i := g.OutPtr[v]; i < g.OutPtr[v+1]; i++ {
			e := g.OutEdge[i]
			src[e] = v
			dst[e] = g.OutDst[i]
		}
	}
	return src, dst
}

// Validate checks internal consistency: pointer monotonicity, symmetric
// edge counts between CSR and CSC, index bounds, array lengths and matrix
// shapes. Intended for tests and dataset loaders — it must reject any
// adversarial byte-level corruption a loader can hand it without panicking,
// so every array access below is guarded by an explicit length or range
// check first. Cost is O(V+E).
func (g *Graph) Validate() error {
	if g.NumNodes < 0 || g.NumEdges < 0 {
		return fmt.Errorf("graph: negative counts (nodes=%d edges=%d)", g.NumNodes, g.NumEdges)
	}
	if len(g.OutPtr) != g.NumNodes+1 || len(g.InPtr) != g.NumNodes+1 {
		return fmt.Errorf("graph: ptr arrays sized %d/%d, want %d", len(g.OutPtr), len(g.InPtr), g.NumNodes+1)
	}
	if len(g.OutDst) != g.NumEdges || len(g.OutEdge) != g.NumEdges ||
		len(g.InSrc) != g.NumEdges || len(g.InEdge) != g.NumEdges {
		return fmt.Errorf("graph: adjacency arrays sized %d/%d/%d/%d, want %d edges",
			len(g.OutDst), len(g.OutEdge), len(g.InSrc), len(g.InEdge), g.NumEdges)
	}
	if g.OutPtr[0] != 0 || g.InPtr[0] != 0 ||
		int(g.OutPtr[g.NumNodes]) != g.NumEdges || int(g.InPtr[g.NumNodes]) != g.NumEdges {
		return fmt.Errorf("graph: ptr spans [%d,%d]/[%d,%d], want [0,%d]",
			g.OutPtr[0], g.OutPtr[g.NumNodes], g.InPtr[0], g.InPtr[g.NumNodes], g.NumEdges)
	}
	for v := 0; v < g.NumNodes; v++ {
		if g.OutPtr[v] > g.OutPtr[v+1] || g.InPtr[v] > g.InPtr[v+1] {
			return fmt.Errorf("graph: non-monotone ptr at node %d", v)
		}
	}
	for i, d := range g.OutDst {
		if int(d) < 0 || int(d) >= g.NumNodes {
			return fmt.Errorf("graph: out neighbor %d at slot %d out of range [0,%d)", d, i, g.NumNodes)
		}
	}
	for i, s := range g.InSrc {
		if int(s) < 0 || int(s) >= g.NumNodes {
			return fmt.Errorf("graph: in neighbor %d at slot %d out of range [0,%d)", s, i, g.NumNodes)
		}
	}
	seen := make([]bool, g.NumEdges)
	for _, e := range g.OutEdge {
		if int(e) < 0 || int(e) >= g.NumEdges || seen[e] {
			return fmt.Errorf("graph: bad or duplicate out edge id %d", e)
		}
		seen[e] = true
	}
	for i := range seen {
		seen[i] = false
	}
	for _, e := range g.InEdge {
		if int(e) < 0 || int(e) >= g.NumEdges || seen[e] {
			return fmt.Errorf("graph: bad or duplicate in edge id %d", e)
		}
		seen[e] = true
	}
	// CSR and CSC must describe the same edge set.
	srcByEdge := make([]int32, g.NumEdges)
	dstByEdge := make([]int32, g.NumEdges)
	for v := int32(0); v < int32(g.NumNodes); v++ {
		for i := g.OutPtr[v]; i < g.OutPtr[v+1]; i++ {
			srcByEdge[g.OutEdge[i]] = v
			dstByEdge[g.OutEdge[i]] = g.OutDst[i]
		}
	}
	for v := int32(0); v < int32(g.NumNodes); v++ {
		for i := g.InPtr[v]; i < g.InPtr[v+1]; i++ {
			e := g.InEdge[i]
			if dstByEdge[e] != v || srcByEdge[e] != g.InSrc[i] {
				return fmt.Errorf("graph: CSR/CSC disagree on edge %d", e)
			}
		}
	}
	if err := checkMatrix("features", g.Features, g.NumNodes); err != nil {
		return err
	}
	if err := checkMatrix("edge features", g.EdgeFeatures, g.NumEdges); err != nil {
		return err
	}
	if err := checkMatrix("multi-labels", g.MultiLabels, g.NumNodes); err != nil {
		return err
	}
	if g.Labels != nil && len(g.Labels) != g.NumNodes {
		return fmt.Errorf("graph: labels len %d != nodes %d", len(g.Labels), g.NumNodes)
	}
	for name, mask := range map[string][]bool{"train": g.TrainMask, "val": g.ValMask, "test": g.TestMask} {
		if mask != nil && len(mask) != g.NumNodes {
			return fmt.Errorf("graph: %s mask len %d != nodes %d", name, len(mask), g.NumNodes)
		}
	}
	return nil
}

// checkMatrix rejects a matrix whose header disagrees with its backing data
// or with the expected row count — a decoded matrix with a lying shape
// would turn every Row call into an out-of-bounds slice.
func checkMatrix(name string, m *tensor.Matrix, rows int) error {
	if m == nil {
		return nil
	}
	if m.Rows != rows {
		return fmt.Errorf("graph: %s rows %d, want %d", name, m.Rows, rows)
	}
	if m.Rows < 0 || m.Cols < 0 || len(m.Data) != m.Rows*m.Cols {
		return fmt.Errorf("graph: %s shape %dx%d does not match %d data values", name, m.Rows, m.Cols, len(m.Data))
	}
	return nil
}

// MaskedNodes returns the node ids with mask[v] == true.
func MaskedNodes(mask []bool) []int32 {
	var out []int32
	for v, m := range mask {
		if m {
			out = append(out, int32(v))
		}
	}
	return out
}
