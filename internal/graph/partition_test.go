package graph

import "testing"

func TestOwnedCountMatchesNodesFor(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 8} {
		p := NewPartitioner(workers)
		for _, n := range []int{0, 1, 5, 16, 97} {
			for w := 0; w < workers; w++ {
				nodes := p.NodesFor(w, n)
				if got := p.OwnedCount(w, n); got != len(nodes) {
					t.Fatalf("OwnedCount(%d, %d) with %d workers = %d, NodesFor has %d",
						w, n, workers, got, len(nodes))
				}
				if cap(nodes) != len(nodes) {
					t.Fatalf("NodesFor(%d, %d) with %d workers over-allocated: cap %d, len %d",
						w, n, workers, cap(nodes), len(nodes))
				}
			}
		}
	}
}

func TestLocalIndexIsDenseAndStable(t *testing.T) {
	const n = 53
	for _, workers := range []int{1, 2, 5, 8} {
		p := NewPartitioner(workers)
		for w := 0; w < workers; w++ {
			for i, v := range p.NodesFor(w, n) {
				if p.WorkerFor(v) != w {
					t.Fatalf("node %d listed for worker %d but owned by %d", v, w, p.WorkerFor(v))
				}
				if got := p.LocalIndex(v); got != i {
					t.Fatalf("LocalIndex(%d) = %d, want position %d", v, got, i)
				}
			}
		}
	}
}

func TestStatsNodeCountsCoverGraph(t *testing.T) {
	b := NewBuilder(23)
	for v := int32(0); v < 22; v++ {
		b.AddEdge(v, v+1, nil)
	}
	g := b.Build()
	p := NewPartitioner(4)
	st := p.Stats(g)
	nodes, edges := 0, 0
	for w := range st.Nodes {
		nodes += st.Nodes[w]
		edges += st.OutEdges[w]
	}
	if nodes != g.NumNodes {
		t.Fatalf("node counts sum to %d, want %d", nodes, g.NumNodes)
	}
	if edges != g.NumEdges {
		t.Fatalf("edge counts sum to %d, want %d", edges, g.NumEdges)
	}
}
