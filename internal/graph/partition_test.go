package graph

import (
	"sync"
	"testing"
)

// partitioners under test: the arithmetic hash and a Mapping holding the
// same assignment, which must be observationally identical.
func hashAndMapping(workers, n int) []Partitioner {
	hash := NewPartitioner(workers)
	workerOf := make([]int32, n)
	for v := range workerOf {
		workerOf[v] = int32(hash.WorkerFor(int32(v)))
	}
	return []Partitioner{hash, NewMapping(workers, workerOf)}
}

func TestOwnedCountMatchesNodesFor(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 8} {
		for _, n := range []int{0, 1, 5, 16, 97} {
			for _, p := range hashAndMapping(workers, n) {
				for w := 0; w < workers; w++ {
					nodes := p.NodesFor(w, n)
					if got := p.OwnedCount(w, n); got != len(nodes) {
						t.Fatalf("OwnedCount(%d, %d) with %d workers = %d, NodesFor has %d",
							w, n, workers, got, len(nodes))
					}
				}
			}
		}
	}
}

func TestLocalIndexIsDenseAndStable(t *testing.T) {
	const n = 53
	for _, workers := range []int{1, 2, 5, 8} {
		for _, p := range hashAndMapping(workers, n) {
			for w := 0; w < workers; w++ {
				for i, v := range p.NodesFor(w, n) {
					if p.WorkerFor(v) != w {
						t.Fatalf("node %d listed for worker %d but owned by %d", v, w, p.WorkerFor(v))
					}
					if got := p.LocalIndex(v); got != i {
						t.Fatalf("LocalIndex(%d) = %d, want position %d", v, got, i)
					}
				}
			}
		}
	}
}

// checkPartitionContract asserts the full Partitioner contract over a graph
// of n nodes: total coverage, dense local indexes, ascending owned lists.
func checkPartitionContract(t *testing.T, p Partitioner, n int) {
	t.Helper()
	covered := make([]bool, n)
	total := 0
	for w := 0; w < p.NumWorkers(); w++ {
		nodes := p.NodesFor(w, n)
		if len(nodes) != p.OwnedCount(w, n) {
			t.Fatalf("worker %d: OwnedCount %d, NodesFor %d", w, p.OwnedCount(w, n), len(nodes))
		}
		for i, v := range nodes {
			if i > 0 && nodes[i-1] >= v {
				t.Fatalf("worker %d node list not ascending at %d: %v >= %v", w, i, nodes[i-1], v)
			}
			if covered[v] {
				t.Fatalf("node %d owned twice", v)
			}
			covered[v] = true
			if p.WorkerFor(v) != w || p.LocalIndex(v) != i {
				t.Fatalf("node %d: WorkerFor=%d LocalIndex=%d, want %d/%d",
					v, p.WorkerFor(v), p.LocalIndex(v), w, i)
			}
		}
		total += len(nodes)
	}
	if total != n {
		t.Fatalf("coverage %d of %d nodes", total, n)
	}
}

func TestMappingRejectsBadAssignments(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range worker")
		}
	}()
	NewMapping(2, []int32{0, 1, 2})
}

func TestMappingRejectsMismatchedNodeCount(t *testing.T) {
	m := NewMapping(2, []int32{0, 1, 0})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on node-count mismatch")
		}
	}()
	m.NodesFor(0, 4)
}

// communityGraph plants k communities of size cs with dense intra-community
// rings and a sparse cross-community chord — a graph with an obvious good
// cut for the locality strategies to find.
func communityGraph(t *testing.T, k, cs int) *Graph {
	t.Helper()
	n := k * cs
	b := NewBuilder(n)
	for c := 0; c < k; c++ {
		base := int32(c * cs)
		for i := 0; i < cs; i++ {
			v := base + int32(i)
			for d := 1; d <= 3; d++ {
				b.AddEdge(v, base+int32((i+d)%cs), nil)
			}
		}
		// One chord to the next community.
		b.AddEdge(base, int32(((c+1)%k)*cs), nil)
	}
	return b.Build()
}

func TestStrategiesSatisfyContract(t *testing.T) {
	g := communityGraph(t, 4, 25)
	for _, s := range Strategies() {
		for _, workers := range []int{1, 2, 4, 7} {
			p := s.Partition(g, workers)
			if p.NumWorkers() != workers {
				t.Fatalf("%s: NumWorkers = %d, want %d", s.Name(), p.NumWorkers(), workers)
			}
			checkPartitionContract(t, p, g.NumNodes)
		}
	}
}

func TestStrategiesAreDeterministic(t *testing.T) {
	g := communityGraph(t, 4, 25)
	for _, s := range Strategies() {
		a, b := s.Partition(g, 4), s.Partition(g, 4)
		for v := int32(0); v < int32(g.NumNodes); v++ {
			if a.WorkerFor(v) != b.WorkerFor(v) {
				t.Fatalf("%s: node %d placed on %d then %d", s.Name(), v, a.WorkerFor(v), b.WorkerFor(v))
			}
		}
	}
}

func TestLDGCutsCommunityGraph(t *testing.T) {
	g := communityGraph(t, 8, 25)
	hash := ComputeStats(Hash{}.Partition(g, 4), g)
	for _, s := range []Strategy{LDG{}, Fennel{}} {
		st := ComputeStats(s.Partition(g, 4), g)
		if st.EdgeCutFrac >= hash.EdgeCutFrac/2 {
			t.Fatalf("%s edge cut %.3f did not halve hash's %.3f on a community graph",
				s.Name(), st.EdgeCutFrac, hash.EdgeCutFrac)
		}
		if st.NodeImbalance > 1.15 {
			t.Fatalf("%s node imbalance %.3f exceeds the capacity slack", s.Name(), st.NodeImbalance)
		}
	}
}

func TestLDGRespectsCapacity(t *testing.T) {
	// A single dense community: without the capacity penalty LDG would pile
	// every node onto one worker.
	g := communityGraph(t, 1, 120)
	p := LDG{Slack: 1.05}.Partition(g, 4)
	hardCap := 32 // ceil(1.05 * 120 / 4)
	for w := 0; w < 4; w++ {
		if c := p.OwnedCount(w, g.NumNodes); c > hardCap {
			t.Fatalf("worker %d owns %d nodes, cap %d", w, c, hardCap)
		}
	}
}

func TestDegreeBalancedFlattensEdgeLoad(t *testing.T) {
	// Degrees correlated with v mod 4 — adversarial for mod-N hashing,
	// which lands every heavy node on worker 0. Degree balancing must
	// spread the load regardless of id pattern.
	const n = 200
	b := NewBuilder(n)
	for v := int32(0); v < n; v++ {
		deg := 1
		if v%4 == 0 {
			deg = 16
		}
		for i := 0; i < deg; i++ {
			b.AddEdge(v, (v+int32(i)+1)%n, nil)
		}
	}
	g := b.Build()
	hash := ComputeStats(Hash{}.Partition(g, 4), g)
	bal := ComputeStats(DegreeBalanced{}.Partition(g, 4), g)
	if hash.EdgeImbalance < 2 {
		t.Fatalf("test graph not adversarial for hash: imbalance %.3f", hash.EdgeImbalance)
	}
	if bal.EdgeImbalance > 1.3 {
		t.Fatalf("degree-balanced edge imbalance = %.3f (hash %.3f)", bal.EdgeImbalance, hash.EdgeImbalance)
	}
}

// TestStatsDeriveOwnershipFromMapping is the regression for the seed bug:
// Stats assumed contiguous round-robin ownership, so any non-mod-N mapping
// reported wrong per-worker node counts.
func TestStatsDeriveOwnershipFromMapping(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1, nil)
	b.AddEdge(2, 3, nil)
	b.AddEdge(4, 5, nil)
	g := b.Build()
	// Everything on worker 1; worker 0 owns nothing.
	m := NewMapping(2, []int32{1, 1, 1, 1, 1, 1})
	st := ComputeStats(m, g)
	if st.Nodes[0] != 0 || st.Nodes[1] != 6 {
		t.Fatalf("node counts = %v, want [0 6]", st.Nodes)
	}
	if st.OutEdges[0] != 0 || st.OutEdges[1] != 3 {
		t.Fatalf("edge counts = %v, want [0 3]", st.OutEdges)
	}
	if st.CutEdges != 0 || st.EdgeCutFrac != 0 {
		t.Fatalf("single-worker placement reported a cut: %+v", st)
	}
	if st.ReplicationFactor != 1 {
		t.Fatalf("replication = %v, want 1", st.ReplicationFactor)
	}
}

func TestStatsEdgeCutAndReplication(t *testing.T) {
	// 0→1, 0→2 with 0,1 on worker 0 and 2 on worker 1: one cut edge, node 0
	// replicated on both workers.
	b := NewBuilder(3)
	b.AddEdge(0, 1, nil)
	b.AddEdge(0, 2, nil)
	g := b.Build()
	st := ComputeStats(NewMapping(2, []int32{0, 0, 1}), g)
	if st.CutEdges != 1 || st.EdgeCutFrac != 0.5 {
		t.Fatalf("cut = %d (%.2f), want 1 (0.50)", st.CutEdges, st.EdgeCutFrac)
	}
	if want := (2.0 + 1 + 1) / 3; st.ReplicationFactor != want {
		t.Fatalf("replication = %v, want %v", st.ReplicationFactor, want)
	}
}

func TestStrategyByName(t *testing.T) {
	for _, s := range Strategies() {
		got, err := StrategyByName(s.Name())
		if err != nil || got.Name() != s.Name() {
			t.Fatalf("StrategyByName(%q) = %v, %v", s.Name(), got, err)
		}
	}
	if _, err := StrategyByName("metis"); err == nil {
		t.Fatal("unknown strategy must error")
	}
}

// TestMappingConcurrentLookups exercises the engine's access pattern under
// the race detector: many goroutines reading the shared tables.
func TestMappingConcurrentLookups(t *testing.T) {
	g := communityGraph(t, 4, 25)
	p := LDG{}.Partition(g, 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := int32(0); v < int32(g.NumNodes); v++ {
				_ = p.WorkerFor(v)
				_ = p.LocalIndex(v)
			}
			_ = p.NodesFor(w%4, g.NumNodes)
			_ = p.OwnedCount(w%4, g.NumNodes)
		}(w)
	}
	wg.Wait()
}
