package graph

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Serialization lets the cmd tools hand datasets between processes. The
// format is gob of the full Graph struct (all fields are exported), with a
// small header guarding against format drift.

const ioMagic = "inferturbo-graph-v1"

// Encode serializes g.
func (g *Graph) Encode(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(ioMagic); err != nil {
		return fmt.Errorf("graph: encoding header: %w", err)
	}
	if err := enc.Encode(g); err != nil {
		return fmt.Errorf("graph: encoding graph: %w", err)
	}
	return nil
}

// Decode deserializes a graph written by Encode and validates it. Corrupt
// or adversarial input yields an error, never a panic: Validate guards every
// index and length invariant, and a recover converts any residual decode
// panic (gob internals on pathological streams) into an error, because this
// is a data-plane entry point fed by files the process does not control.
func Decode(r io.Reader) (g *Graph, err error) {
	defer func() {
		if p := recover(); p != nil {
			g, err = nil, fmt.Errorf("graph: decoding panicked on corrupt input: %v", p)
		}
	}()
	dec := gob.NewDecoder(r)
	var magic string
	if err := dec.Decode(&magic); err != nil {
		return nil, fmt.Errorf("graph: decoding header: %w", err)
	}
	if magic != ioMagic {
		return nil, fmt.Errorf("graph: bad header %q", magic)
	}
	var dg Graph
	if err := dec.Decode(&dg); err != nil {
		return nil, fmt.Errorf("graph: decoding graph: %w", err)
	}
	if err := dg.Validate(); err != nil {
		return nil, fmt.Errorf("graph: loaded graph invalid: %w", err)
	}
	return &dg, nil
}

// SaveFile writes g to path.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := g.Encode(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a graph from path.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
