package graph

import (
	"bytes"
	"strings"
	"testing"

	"inferturbo/internal/tensor"
)

func TestGraphEncodeDecodeRoundTrip(t *testing.T) {
	g := diamond(t)
	g.Features = tensor.FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}, {7, 8}})
	g.Labels = []int32{0, 1, 0, 1}
	g.NumClasses = 2
	g.TrainMask = []bool{true, false, true, false}

	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes != g.NumNodes || g2.NumEdges != g.NumEdges {
		t.Fatal("size lost")
	}
	if !g2.Features.Equal(g.Features) || !g2.EdgeFeatures.Equal(g.EdgeFeatures) {
		t.Fatal("features lost")
	}
	for v := range g.Labels {
		if g2.Labels[v] != g.Labels[v] || g2.TrainMask[v] != g.TrainMask[v] {
			t.Fatal("labels or masks lost")
		}
	}
	s1, d1 := g.EdgeList()
	s2, d2 := g2.EdgeList()
	for i := range s1 {
		if s1[i] != s2[i] || d1[i] != d2[i] {
			t.Fatal("edges lost")
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(strings.NewReader("not a graph")); err == nil {
		t.Fatal("must reject garbage")
	}
}

func TestDecodeRejectsWrongMagic(t *testing.T) {
	var buf bytes.Buffer
	// Encode a different header then a graph.
	g := diamond(t)
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the magic bytes.
	idx := bytes.Index(raw, []byte("inferturbo-graph-v1"))
	if idx < 0 {
		t.Fatal("magic not found")
	}
	raw[idx] = 'X'
	if _, err := Decode(bytes.NewReader(raw)); err == nil {
		t.Fatal("must reject wrong magic")
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := diamond(t)
	g.Features = tensor.New(4, 3)
	path := t.TempDir() + "/g.bin"
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges != g.NumEdges {
		t.Fatal("file round trip lost edges")
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Fatal("missing file must error")
	}
}
