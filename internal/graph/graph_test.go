package graph

import (
	"testing"
	"testing/quick"

	"inferturbo/internal/tensor"
)

// diamond builds the 4-node test graph 0->1, 0->2, 1->3, 2->3, 3->0 with a
// one-dim edge feature equal to the edge id.
func diamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4)
	edges := [][2]int32{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 0}}
	for i, e := range edges {
		b.AddEdge(e[0], e[1], []float32{float32(i)})
	}
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatalf("diamond invalid: %v", err)
	}
	return g
}

func TestBuilderDegrees(t *testing.T) {
	g := diamond(t)
	if g.NumNodes != 4 || g.NumEdges != 5 {
		t.Fatalf("size = %d nodes %d edges", g.NumNodes, g.NumEdges)
	}
	if g.OutDegree(0) != 2 || g.InDegree(0) != 1 {
		t.Fatalf("node0 degrees out=%d in=%d", g.OutDegree(0), g.InDegree(0))
	}
	if g.InDegree(3) != 2 || g.OutDegree(3) != 1 {
		t.Fatalf("node3 degrees")
	}
}

func TestNeighborLists(t *testing.T) {
	g := diamond(t)
	out0 := g.OutNeighbors(0)
	if len(out0) != 2 || out0[0] != 1 || out0[1] != 2 {
		t.Fatalf("OutNeighbors(0) = %v", out0)
	}
	in3 := g.InNeighbors(3)
	if len(in3) != 2 || in3[0] != 1 || in3[1] != 2 {
		t.Fatalf("InNeighbors(3) = %v", in3)
	}
}

func TestEdgeIDsAlignWithFeatures(t *testing.T) {
	g := diamond(t)
	// Edge 1->3 was inserted third (id 2).
	eids := g.InEdgeIDs(3)
	if g.EdgeFeatures.At(int(eids[0]), 0) != 2 {
		t.Fatalf("edge feature of 1->3 = %v, want 2", g.EdgeFeatures.At(int(eids[0]), 0))
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := diamond(t)
	src, dst := g.EdgeList()
	want := [][2]int32{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 0}}
	for i, e := range want {
		if src[i] != e[0] || dst[i] != e[1] {
			t.Fatalf("edge %d = (%d,%d), want %v", i, src[i], dst[i], e)
		}
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 5, nil)
}

func TestBuilderPanicsOnRaggedEdgeFeatures(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1, []float32{1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.AddEdge(1, 0, []float32{1, 2})
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := diamond(t)
	g.OutDst[0] = 3 // break CSR/CSC agreement
	if err := g.Validate(); err == nil {
		t.Fatal("Validate must catch corrupted adjacency")
	}
}

func TestRandomGraphValidates(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		n := 2 + rng.Intn(30)
		b := NewBuilder(n)
		e := rng.Intn(100)
		for i := 0; i < e; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), nil)
		}
		g := b.Build()
		if g.Validate() != nil {
			return false
		}
		// Degree sums must both equal the edge count.
		var inSum, outSum int
		for v := int32(0); v < int32(n); v++ {
			inSum += g.InDegree(v)
			outSum += g.OutDegree(v)
		}
		return inSum == e && outSum == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMaskedNodes(t *testing.T) {
	got := MaskedNodes([]bool{true, false, true})
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("MaskedNodes = %v", got)
	}
}

func TestPartitionerModAndRoundTrip(t *testing.T) {
	p := NewPartitioner(3)
	if p.WorkerFor(7) != 1 {
		t.Fatalf("WorkerFor(7) = %d", p.WorkerFor(7))
	}
	nodes := p.NodesFor(1, 10)
	want := []int32{1, 4, 7}
	if len(nodes) != len(want) {
		t.Fatalf("NodesFor = %v", nodes)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("NodesFor = %v", nodes)
		}
	}
	// Every node belongs to exactly one worker and NodesFor covers all.
	covered := map[int32]bool{}
	for w := 0; w < 3; w++ {
		for _, v := range p.NodesFor(w, 10) {
			if covered[v] || p.WorkerFor(v) != w {
				t.Fatalf("partition inconsistency at node %d", v)
			}
			covered[v] = true
		}
	}
	if len(covered) != 10 {
		t.Fatalf("coverage = %d", len(covered))
	}
}

func TestPartitionerStats(t *testing.T) {
	g := diamond(t)
	st := ComputeStats(NewPartitioner(2), g)
	if st.Nodes[0]+st.Nodes[1] != 4 {
		t.Fatalf("node totals = %v", st.Nodes)
	}
	if st.OutEdges[0]+st.OutEdges[1] != 5 {
		t.Fatalf("edge totals = %v", st.OutEdges)
	}
}

func TestPartitionerPanicsOnZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPartitioner(0)
}

func TestDegreeStats(t *testing.T) {
	g := diamond(t)
	in := InDegreeStats(g)
	if in.Max != 2 {
		t.Fatalf("in max = %d", in.Max)
	}
	if in.Mean != 5.0/4.0 {
		t.Fatalf("in mean = %v", in.Mean)
	}
	out := OutDegreeStats(g)
	if out.Max != 2 {
		t.Fatalf("out max = %d", out.Max)
	}
}

func TestGiniZeroForUniform(t *testing.T) {
	b := NewBuilder(4)
	for v := int32(0); v < 4; v++ {
		b.AddEdge(v, (v+1)%4, nil)
	}
	g := b.Build()
	st := OutDegreeStats(g)
	if st.Gini > 1e-9 {
		t.Fatalf("uniform degrees must have Gini 0, got %v", st.Gini)
	}
}

func TestHubNodesSortedByDegree(t *testing.T) {
	b := NewBuilder(5)
	// node 0: 3 out-edges; node 1: 2; others 0.
	b.AddEdge(0, 1, nil)
	b.AddEdge(0, 2, nil)
	b.AddEdge(0, 3, nil)
	b.AddEdge(1, 2, nil)
	b.AddEdge(1, 3, nil)
	g := b.Build()
	hubs := HubNodes(g, 1, false)
	if len(hubs) != 2 || hubs[0] != 0 || hubs[1] != 1 {
		t.Fatalf("HubNodes = %v", hubs)
	}
}

func TestStrategyThreshold(t *testing.T) {
	// Paper: 1B edges, 1000 workers, λ=0.1 → 100,000.
	if got := StrategyThreshold(0.1, 1_000_000_000, 1000); got != 100_000 {
		t.Fatalf("threshold = %d, want 100000", got)
	}
	if got := StrategyThreshold(0.1, 10, 1000); got != 1 {
		t.Fatalf("threshold floor = %d, want 1", got)
	}
	if got := StrategyThreshold(0.1, 10, 0); got != 0 {
		t.Fatalf("zero workers = %d", got)
	}
}
