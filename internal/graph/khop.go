package graph

import (
	"fmt"

	"inferturbo/internal/tensor"
)

// Subgraph is an induced k-hop neighborhood with local node ids. Node 0..R-1
// are the R roots (in request order); the remaining nodes are discovered in
// deterministic BFS order. Edges point src -> dst in local ids, and EdgeIDs
// maps each local edge back to the global edge for feature lookup.
type Subgraph struct {
	Nodes    []int32 // local id -> global id
	Src, Dst []int32 // local edge endpoints
	EdgeIDs  []int32 // global edge ids
	NumRoots int
	Depth    []int32 // local id -> hop distance from the root set
}

// NumNodes returns the node count of the subgraph.
func (s *Subgraph) NumNodes() int { return len(s.Nodes) }

// NumEdges returns the edge count of the subgraph.
func (s *Subgraph) NumEdges() int { return len(s.Src) }

// GatherFeatures copies the root graph's node features for the subgraph's
// nodes into a local matrix.
func (s *Subgraph) GatherFeatures(g *Graph) *tensor.Matrix {
	return tensor.GatherRows(g.Features, s.Nodes)
}

// GatherEdgeFeatures copies the root graph's edge features for the
// subgraph's edges; returns nil when the graph has none.
func (s *Subgraph) GatherEdgeFeatures(g *Graph) *tensor.Matrix {
	if g.EdgeFeatures == nil {
		return nil
	}
	return tensor.GatherRows(g.EdgeFeatures, s.EdgeIDs)
}

// KHopOptions controls neighborhood extraction.
type KHopOptions struct {
	// Hops is the number of GNN layers the neighborhood must support.
	Hops int
	// Fanouts optionally limits the number of in-neighbors sampled when
	// expanding a node at each hop; Fanouts[d] applies at depth d. A value
	// < 0 (or a nil slice) means take all in-neighbors — the exact,
	// information-complete neighborhood.
	Fanouts []int
	// RNG drives sampling; required when any fanout is non-negative.
	RNG *tensor.RNG
}

// KHop extracts the (optionally sampled) k-hop in-neighborhood of the given
// roots. With nil/negative fanouts the result is information-complete: a
// k-layer GNN forward over it reproduces the full-graph values at the roots
// exactly (the AGL sufficiency property; enforced by tests).
func KHop(g *Graph, roots []int32, opt KHopOptions) *Subgraph {
	if opt.Hops < 0 {
		panic(fmt.Sprintf("graph: negative hops %d", opt.Hops))
	}
	sampled := false
	for _, f := range opt.Fanouts {
		if f >= 0 {
			sampled = true
		}
	}
	if sampled && opt.RNG == nil {
		panic("graph: sampling requires an RNG")
	}

	local := make(map[int32]int32, len(roots)*4)
	sub := &Subgraph{NumRoots: len(roots)}
	intern := func(global int32, depth int32) int32 {
		if id, ok := local[global]; ok {
			return id
		}
		id := int32(len(sub.Nodes))
		local[global] = id
		sub.Nodes = append(sub.Nodes, global)
		sub.Depth = append(sub.Depth, depth)
		return id
	}

	frontier := make([]int32, 0, len(roots))
	for _, r := range roots {
		if _, ok := local[r]; ok {
			panic(fmt.Sprintf("graph: duplicate root %d", r))
		}
		intern(r, 0)
		frontier = append(frontier, r)
	}

	for d := 0; d < opt.Hops; d++ {
		fanout := -1
		if d < len(opt.Fanouts) {
			fanout = opt.Fanouts[d]
		}
		var next []int32
		for _, v := range frontier {
			dstLocal := local[v]
			nbrs := g.InNeighbors(v)
			eids := g.InEdgeIDs(v)
			var picks []int
			if fanout >= 0 && fanout < len(nbrs) {
				picks = opt.RNG.SampleWithoutReplacement(len(nbrs), fanout)
			} else {
				picks = make([]int, len(nbrs))
				for i := range picks {
					picks[i] = i
				}
			}
			for _, i := range picks {
				u := nbrs[i]
				if _, ok := local[u]; !ok {
					next = append(next, u)
				}
				srcLocal := intern(u, int32(d+1))
				sub.Src = append(sub.Src, srcLocal)
				sub.Dst = append(sub.Dst, dstLocal)
				sub.EdgeIDs = append(sub.EdgeIDs, eids[i])
			}
		}
		frontier = next
	}
	return sub
}
