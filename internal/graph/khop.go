package graph

import (
	"fmt"
	"sort"

	"inferturbo/internal/tensor"
)

// Subgraph is an induced k-hop neighborhood with local node ids. Node 0..R-1
// are the R roots (in request order); the remaining nodes are discovered in
// deterministic BFS order. Edges point src -> dst in local ids, and EdgeIDs
// maps each local edge back to the global edge for feature lookup.
type Subgraph struct {
	Nodes    []int32 // local id -> global id
	Src, Dst []int32 // local edge endpoints
	EdgeIDs  []int32 // global edge ids
	NumRoots int
	Depth    []int32 // local id -> hop distance from the root set
}

// NumNodes returns the node count of the subgraph.
func (s *Subgraph) NumNodes() int { return len(s.Nodes) }

// NumEdges returns the edge count of the subgraph.
func (s *Subgraph) NumEdges() int { return len(s.Src) }

// GatherFeatures copies the root graph's node features for the subgraph's
// nodes into a local matrix.
func (s *Subgraph) GatherFeatures(g *Graph) *tensor.Matrix {
	return tensor.GatherRows(g.Features, s.Nodes)
}

// GatherEdgeFeatures copies the root graph's edge features for the
// subgraph's edges; returns nil when the graph has none.
func (s *Subgraph) GatherEdgeFeatures(g *Graph) *tensor.Matrix {
	if g.EdgeFeatures == nil {
		return nil
	}
	return tensor.GatherRows(g.EdgeFeatures, s.EdgeIDs)
}

// KHopOptions controls neighborhood extraction.
type KHopOptions struct {
	// Hops is the number of GNN layers the neighborhood must support.
	Hops int
	// Fanouts optionally limits the number of in-neighbors sampled when
	// expanding a node at each hop; Fanouts[d] applies at depth d. A value
	// < 0 (or a nil slice) means take all in-neighbors — the exact,
	// information-complete neighborhood.
	Fanouts []int
	// RNG drives sampling; required when any fanout is non-negative.
	RNG *tensor.RNG
}

// KHop extracts the (optionally sampled) k-hop in-neighborhood of the given
// roots. With nil/negative fanouts the result is information-complete: a
// k-layer GNN forward over it reproduces the full-graph values at the roots
// exactly (the AGL sufficiency property; enforced by tests).
func KHop(g *Graph, roots []int32, opt KHopOptions) *Subgraph {
	if opt.Hops < 0 {
		panic(fmt.Sprintf("graph: negative hops %d", opt.Hops))
	}
	sampled := false
	for _, f := range opt.Fanouts {
		if f >= 0 {
			sampled = true
		}
	}
	if sampled && opt.RNG == nil {
		panic("graph: sampling requires an RNG")
	}

	local := make(map[int32]int32, len(roots)*4)
	sub := &Subgraph{NumRoots: len(roots)}
	intern := func(global int32, depth int32) int32 {
		if id, ok := local[global]; ok {
			return id
		}
		id := int32(len(sub.Nodes))
		local[global] = id
		sub.Nodes = append(sub.Nodes, global)
		sub.Depth = append(sub.Depth, depth)
		return id
	}

	frontier := make([]int32, 0, len(roots))
	for _, r := range roots {
		if _, ok := local[r]; ok {
			panic(fmt.Sprintf("graph: duplicate root %d", r))
		}
		intern(r, 0)
		frontier = append(frontier, r)
	}

	for d := 0; d < opt.Hops && len(frontier) > 0; d++ {
		fanout := -1
		if d < len(opt.Fanouts) {
			fanout = opt.Fanouts[d]
		}
		var next []int32
		for _, v := range frontier {
			dstLocal := local[v]
			nbrs := g.InNeighbors(v)
			eids := g.InEdgeIDs(v)
			var picks []int
			if fanout >= 0 && fanout < len(nbrs) {
				picks = opt.RNG.SampleWithoutReplacement(len(nbrs), fanout)
			} else {
				picks = make([]int, len(nbrs))
				for i := range picks {
					picks[i] = i
				}
			}
			for _, i := range picks {
				u := nbrs[i]
				if _, ok := local[u]; !ok {
					next = append(next, u)
				}
				srcLocal := intern(u, int32(d+1))
				sub.Src = append(sub.Src, srcLocal)
				sub.Dst = append(sub.Dst, dstLocal)
				sub.EdgeIDs = append(sub.EdgeIDs, eids[i])
			}
		}
		frontier = next
	}
	return sub
}

// VirtualRoot describes a node that does not exist in the graph — a
// cold-start query: its features plus the in-edges connecting it to existing
// nodes. The virtual node sends nothing (out-degree 0), so attaching it
// perturbs no existing node's inference.
type VirtualRoot struct {
	Features []float32
	// InNeighbors are global node ids; repeats create parallel edges. Every
	// neighbor must already be in the subgraph being induced.
	InNeighbors []int32
	// EdgeFeatures carries one feature row per in-edge; required (aligned
	// with InNeighbors) when the graph has edge features, nil otherwise.
	EdgeFeatures [][]float32
}

// Induced is a Subgraph rebuilt as an executable Graph in canonical form:
// local node ids ascend with global node ids and edges are inserted in
// ascending global edge-id order. That canonicalization is what makes
// subgraph inference bit-identical to the full-graph pass at the roots —
// the engine delivers each destination's messages in globally ascending
// source order with ties broken by edge insertion order, so a relabeling
// that preserves both orders reproduces every per-destination reduction
// sequence (and hence every float32 summation) exactly. Degree-scaled
// layers additionally need OutDegrees: the full graph's out-degree per
// local node, fed through inference.Options.OutDegrees, because a node's
// local out-degree undercounts edges that left the neighborhood.
type Induced struct {
	// G is the executable subgraph, carrying gathered node/edge features
	// and the root graph's NumClasses.
	G *Graph
	// OutDegrees is the ROOT graph's out-degree for each local node (0 for
	// the virtual root).
	OutDegrees []int32
	// Roots maps the subgraph's roots, in request order, to their canonical
	// local ids.
	Roots []int32
	// Nodes maps canonical local ids back to global ids (-1 for the virtual
	// root).
	Nodes []int32
	// Virtual is the local id of the attached VirtualRoot, -1 when none.
	Virtual int32
}

// Induce rebuilds the subgraph as a canonical executable Graph (see
// Induced), optionally attaching one virtual cold-start root. It validates
// its inputs and returns errors rather than panicking: the serving layer
// feeds it request-derived data.
func (s *Subgraph) Induce(g *Graph, virt *VirtualRoot) (*Induced, error) {
	n := len(s.Nodes)
	total := n
	if virt != nil {
		total++
	}
	if total == 0 {
		return nil, fmt.Errorf("graph: inducing an empty subgraph")
	}

	// Canonical node order: ascending global id. rank[old local] = new local.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool { return s.Nodes[order[a]] < s.Nodes[order[b]] })
	rank := make([]int32, n)
	for newID, oldID := range order {
		rank[oldID] = int32(newID)
	}

	// Canonical edge order: ascending global edge id (unique by
	// construction — KHop expands each node at most once).
	eorder := make([]int32, len(s.Src))
	for i := range eorder {
		eorder[i] = int32(i)
	}
	sort.Slice(eorder, func(a, b int) bool { return s.EdgeIDs[eorder[a]] < s.EdgeIDs[eorder[b]] })

	ind := &Induced{
		OutDegrees: make([]int32, total),
		Roots:      make([]int32, s.NumRoots),
		Nodes:      make([]int32, total),
		Virtual:    -1,
	}
	for i := 0; i < s.NumRoots; i++ {
		ind.Roots[i] = rank[i] // roots occupy old local ids 0..R-1
	}

	b := NewBuilder(total)
	hasEdgeFeat := g.EdgeFeatures != nil
	for _, e := range eorder {
		src, dst := rank[s.Src[e]], rank[s.Dst[e]]
		var feat []float32
		if hasEdgeFeat {
			eid := s.EdgeIDs[e]
			if int(eid) < 0 || int(eid) >= g.NumEdges {
				return nil, fmt.Errorf("graph: subgraph edge id %d out of range [0,%d)", eid, g.NumEdges)
			}
			feat = g.EdgeFeatures.Row(int(eid))
		}
		b.AddEdge(src, dst, feat)
	}

	for oldID, global := range s.Nodes {
		if int(global) < 0 || int(global) >= g.NumNodes {
			return nil, fmt.Errorf("graph: subgraph node %d out of range [0,%d)", global, g.NumNodes)
		}
		ind.Nodes[rank[oldID]] = global
		ind.OutDegrees[rank[oldID]] = int32(g.OutDegree(global))
	}

	if virt != nil {
		// The virtual root takes the last local id: it never sends (the
		// engine orders deliveries by source), so its position cannot
		// disturb any existing node's message order.
		v := int32(n)
		ind.Virtual = v
		ind.Nodes[v] = -1
		if g.Features != nil && len(virt.Features) != g.Features.Cols {
			return nil, fmt.Errorf("graph: virtual root features dim %d, graph has %d", len(virt.Features), g.Features.Cols)
		}
		if hasEdgeFeat && len(virt.EdgeFeatures) != len(virt.InNeighbors) {
			return nil, fmt.Errorf("graph: virtual root has %d edge feature rows for %d in-edges", len(virt.EdgeFeatures), len(virt.InNeighbors))
		}
		for i, row := range virt.EdgeFeatures {
			if hasEdgeFeat && len(row) != g.EdgeFeatures.Cols {
				return nil, fmt.Errorf("graph: virtual root edge feature %d has dim %d, graph has %d", i, len(row), g.EdgeFeatures.Cols)
			}
		}
		// In-edges attach after every real edge; their relative order only
		// affects the virtual root's own inbox, deterministically.
		local := make(map[int32]int32, n)
		for newID, global := range ind.Nodes[:n] {
			local[global] = int32(newID)
		}
		for i, nbr := range virt.InNeighbors {
			src, ok := local[nbr]
			if !ok {
				return nil, fmt.Errorf("graph: virtual root in-neighbor %d not in the subgraph", nbr)
			}
			var feat []float32
			if hasEdgeFeat {
				feat = virt.EdgeFeatures[i]
			}
			b.AddEdge(src, v, feat)
		}
	}

	sub := b.Build()
	sub.NumClasses = g.NumClasses
	if g.Features != nil {
		f := tensor.New(total, g.Features.Cols)
		for newID, global := range ind.Nodes {
			if global >= 0 {
				copy(f.Row(newID), g.Features.Row(int(global)))
			} else {
				copy(f.Row(newID), virt.Features)
			}
		}
		sub.Features = f
	}
	ind.G = sub
	return ind, nil
}
