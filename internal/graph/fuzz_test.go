package graph

import (
	"bytes"
	"testing"

	"inferturbo/internal/tensor"
)

// fuzzSeedGraph builds a small graph exercising every optional field so the
// fuzzer starts from structurally valid encodings.
func fuzzSeedGraph(edgeFeatures, multiLabel bool) *Graph {
	b := NewBuilder(6)
	edges := [][2]int32{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {0, 3}}
	for i, e := range edges {
		var feat []float32
		if edgeFeatures {
			feat = []float32{float32(i), float32(-i)}
		}
		b.AddEdge(e[0], e[1], feat)
	}
	g := b.Build()
	g.NumClasses = 3
	f := tensor.New(6, 4)
	for i := range f.Data {
		f.Data[i] = float32(i) * 0.25
	}
	g.Features = f
	if multiLabel {
		ml := tensor.New(6, 3)
		for i := range ml.Data {
			ml.Data[i] = float32(i % 2)
		}
		g.MultiLabels = ml
	} else {
		g.Labels = []int32{0, 1, 2, 0, 1, 2}
	}
	g.TrainMask = []bool{true, true, false, false, false, false}
	g.ValMask = []bool{false, false, true, false, false, false}
	g.TestMask = []bool{false, false, false, true, true, true}
	return g
}

// FuzzGraphDecode hammers the dataset loader with corrupt and adversarial
// byte streams: Decode must return an error or a graph that survives full
// traversal — never panic, never hand back a structure whose accessors can
// go out of bounds. This is the loader-hardening contract of the serving
// layer (a server loads operator-supplied files at startup).
func FuzzGraphDecode(f *testing.F) {
	for _, g := range []*Graph{
		fuzzSeedGraph(false, false),
		fuzzSeedGraph(true, false),
		fuzzSeedGraph(false, true),
		NewBuilder(0).Build(),
	} {
		var buf bytes.Buffer
		if err := g.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte("inferturbo-graph-v1 but not gob"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // gob can amplify; bound the decode cost per input
		}
		g, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A graph that decoded successfully must be fully traversable.
		if verr := g.Validate(); verr != nil {
			t.Fatalf("Decode accepted a graph Validate rejects: %v", verr)
		}
		for v := int32(0); v < int32(g.NumNodes); v++ {
			_ = g.OutNeighbors(v)
			_ = g.OutEdgeIDs(v)
			_ = g.InNeighbors(v)
			_ = g.InEdgeIDs(v)
			_ = g.OutDegree(v)
			_ = g.InDegree(v)
			if g.Features != nil {
				_ = g.Features.Row(int(v))
			}
		}
		for e := int32(0); e < int32(g.NumEdges); e++ {
			if g.EdgeFeatures != nil {
				_ = g.EdgeFeatures.Row(int(e))
			}
		}
		src, dst := g.EdgeList()
		if len(src) != g.NumEdges || len(dst) != g.NumEdges {
			t.Fatalf("EdgeList returned %d/%d for %d edges", len(src), len(dst), g.NumEdges)
		}
	})
}
