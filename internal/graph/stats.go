package graph

import "sort"

// DegreeStats summarizes a degree distribution; used by the experiment
// harness to verify the synthetic power-law datasets are actually skewed and
// by the strategy threshold heuristic.
type DegreeStats struct {
	Max    int
	Mean   float64
	P50    int
	P99    int
	Gini   float64 // inequality of the distribution, 0 = uniform
	Counts []int   // raw per-node degrees (sorted ascending)
}

// InDegreeStats computes statistics of the in-degree distribution.
func InDegreeStats(g *Graph) DegreeStats { return degreeStats(g, true) }

// OutDegreeStats computes statistics of the out-degree distribution.
func OutDegreeStats(g *Graph) DegreeStats { return degreeStats(g, false) }

func degreeStats(g *Graph, in bool) DegreeStats {
	degs := make([]int, g.NumNodes)
	total := 0
	for v := int32(0); v < int32(g.NumNodes); v++ {
		d := g.OutDegree(v)
		if in {
			d = g.InDegree(v)
		}
		degs[v] = d
		total += d
	}
	sort.Ints(degs)
	st := DegreeStats{Counts: degs}
	if g.NumNodes == 0 {
		return st
	}
	st.Max = degs[len(degs)-1]
	st.Mean = float64(total) / float64(g.NumNodes)
	st.P50 = degs[len(degs)/2]
	st.P99 = degs[min(len(degs)-1, len(degs)*99/100)]
	// Gini over the sorted degrees.
	if total > 0 {
		var cum float64
		for i, d := range degs {
			cum += float64(d) * float64(2*(i+1)-len(degs)-1)
		}
		st.Gini = cum / (float64(len(degs)) * float64(total))
	}
	return st
}

// HubNodes returns nodes whose degree (in or out per `in`) exceeds the
// threshold, descending by degree. This feeds the shadow-nodes / broadcast
// activation decision.
func HubNodes(g *Graph, threshold int, in bool) []int32 {
	var hubs []int32
	for v := int32(0); v < int32(g.NumNodes); v++ {
		d := g.OutDegree(v)
		if in {
			d = g.InDegree(v)
		}
		if d > threshold {
			hubs = append(hubs, v)
		}
	}
	sort.Slice(hubs, func(i, j int) bool {
		di, dj := deg(g, hubs[i], in), deg(g, hubs[j], in)
		if di != dj {
			return di > dj
		}
		return hubs[i] < hubs[j]
	})
	return hubs
}

func deg(g *Graph, v int32, in bool) int {
	if in {
		return g.InDegree(v)
	}
	return g.OutDegree(v)
}

// StrategyThreshold implements the paper's heuristic
// threshold = λ · total_edges / total_workers  (λ defaults to 0.1).
func StrategyThreshold(lambda float64, totalEdges, totalWorkers int) int {
	if totalWorkers <= 0 {
		return 0
	}
	t := int(lambda * float64(totalEdges) / float64(totalWorkers))
	if t < 1 {
		t = 1
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
