package baseline

import (
	"errors"
	"testing"

	"inferturbo/internal/cluster"
	"inferturbo/internal/datagen"
	"inferturbo/internal/gas"
	"inferturbo/internal/graph"
	"inferturbo/internal/inference"
	"inferturbo/internal/tensor"
)

func testGraph(t *testing.T, nodes int) *graph.Graph {
	t.Helper()
	ds := datagen.Generate(datagen.Config{
		Name: "b", Nodes: nodes, AvgDegree: 6, Skew: datagen.SkewIn, Exponent: 1.8,
		FeatureDim: 8, NumClasses: 4, Seed: 21,
	})
	return ds.Graph
}

func testModel(t *testing.T) *gas.Model {
	t.Helper()
	return gas.NewSAGEModel("b", gas.TaskSingleLabel, 8, 10, 4, 2, 0, tensor.NewRNG(3))
}

func TestUnsampledBaselineMatchesFullGraph(t *testing.T) {
	// With no sampling, the k-hop neighborhood is information-complete, so
	// the localized forward must equal the full-graph forward at every node
	// — the AGL sufficiency theorem (DESIGN.md invariant 4).
	g := testGraph(t, 200)
	m := testModel(t)
	res, err := Run(m, g, Options{Workers: 3, Fanout: -1})
	if err != nil {
		t.Fatal(err)
	}
	want := inference.ReferenceForward(m, g)
	if !res.Logits.AllClose(want, 2e-3) {
		t.Fatalf("unsampled baseline diverges from full graph: %v", res.Logits.MaxAbsDiff(want))
	}
	wantClasses := tensor.ArgmaxRows(want)
	for v, c := range res.Classes {
		if c != wantClasses[v] {
			t.Fatalf("class of %d = %d, want %d", v, c, wantClasses[v])
		}
	}
}

func TestSamplingIsInconsistentAcrossSeeds(t *testing.T) {
	// The pathology the paper measures in Fig 7: small fanouts flip
	// predictions between runs.
	g := testGraph(t, 400)
	m := testModel(t)
	a, err := Run(m, g, Options{Workers: 3, Fanout: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(m, g, Options{Workers: 3, Fanout: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	flips := 0
	for v := range a.Classes {
		if a.Classes[v] != b.Classes[v] {
			flips++
		}
	}
	if flips == 0 {
		t.Fatal("expected prediction flips under aggressive sampling")
	}
}

func TestSameSeedIsDeterministic(t *testing.T) {
	g := testGraph(t, 200)
	m := testModel(t)
	a, err := Run(m, g, Options{Workers: 3, Fanout: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(m, g, Options{Workers: 3, Fanout: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Logits.Equal(b.Logits) {
		t.Fatal("same seed must reproduce identical logits")
	}
}

func TestExpansionTreeGrowsWithHops(t *testing.T) {
	g := testGraph(t, 300)
	prev := 0.0
	for hops := 0; hops <= 3; hops++ {
		tree := ExpansionTree(g, hops, -1)
		var total float64
		for _, v := range tree {
			total += v
		}
		if total <= prev {
			t.Fatalf("tree visits must grow with hops: %v then %v", prev, total)
		}
		prev = total
	}
}

func TestExpansionTreeSamplingBounds(t *testing.T) {
	g := testGraph(t, 300)
	full := ExpansionTree(g, 2, -1)
	sampled := ExpansionTree(g, 2, 2)
	for v := range full {
		if sampled[v] > full[v]+1e-9 {
			t.Fatalf("sampling must not increase tree size at %d: %v > %v", v, sampled[v], full[v])
		}
	}
	// Zero-hop trees are exactly 1.
	zero := ExpansionTree(g, 0, -1)
	for _, x := range zero {
		if x != 1 {
			t.Fatal("0-hop tree must be 1")
		}
	}
}

func TestRedundancyExceedsOne(t *testing.T) {
	g := testGraph(t, 300)
	m := testModel(t)
	res, err := Run(m, g, Options{Workers: 2, Fanout: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Redundant computation: visits well beyond one per node.
	if res.Stats.Redundancy < 2 {
		t.Fatalf("redundancy = %v, expected >= 2 on a 2-layer model", res.Stats.Redundancy)
	}
}

func TestOOMAtLargeFanoutDeepHops(t *testing.T) {
	g := testGraph(t, 400)
	m := gas.NewSAGEModel("deep", gas.TaskSingleLabel, 8, 10, 4, 3, 0, tensor.NewRNG(4))
	// A cap that survives fanout 5 but not fanout 10000 at 3 hops.
	small, err := Run(m, g, Options{Workers: 2, Fanout: 5, MemLimitBytes: 1 << 20})
	if err != nil {
		t.Fatalf("small fanout should fit: %v", err)
	}
	if small.Stats.TreeVisits == 0 {
		t.Fatal("stats missing")
	}
	_, err = Run(m, g, Options{Workers: 2, Fanout: 10000, MemLimitBytes: 1 << 20})
	var oom *cluster.OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("expected OOM at fanout 10000 × 3 hops, got %v", err)
	}
}

func TestTargetMaskRestrictsWork(t *testing.T) {
	g := testGraph(t, 200)
	m := testModel(t)
	mask := make([]bool, g.NumNodes)
	for v := 0; v < 20; v++ {
		mask[v] = true
	}
	res, err := Run(m, g, Options{Workers: 2, Fanout: -1, TargetMask: mask})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Targets != 20 || res.Logits.Rows != 20 {
		t.Fatalf("targets = %d rows = %d", res.Stats.Targets, res.Logits.Rows)
	}
	// Unmasked nodes keep the -1 sentinel.
	if res.Classes[50] != -1 {
		t.Fatal("non-target nodes must stay unpredicted")
	}
	full, err := Run(m, g, Options{Workers: 2, Fanout: -1})
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.TreeVisits <= res.Stats.TreeVisits {
		t.Fatal("masked run must do less work")
	}
}

func TestPhasesAndLoads(t *testing.T) {
	g := testGraph(t, 150)
	m := testModel(t)
	res, err := Run(m, g, Options{Workers: 4, Fanout: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 1 || len(res.Phases[0].Workers) != 4 {
		t.Fatal("expected one phase with 4 worker loads")
	}
	var flops, bytes int64
	for _, l := range res.Phases[0].Workers {
		flops += l.Flops
		bytes += l.BytesIn
		if l.PeakMem == 0 {
			t.Fatal("peak memory not charged")
		}
	}
	if flops == 0 || bytes == 0 {
		t.Fatal("loads not charged")
	}
}

func TestMultiLabelBaseline(t *testing.T) {
	g := testGraph(t, 100)
	m := gas.NewSAGEModel("ml", gas.TaskMultiLabel, 8, 8, 4, 2, 0, tensor.NewRNG(5))
	res, err := Run(m, g, Options{Workers: 2, Fanout: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.MultiLabel == nil {
		t.Fatal("multi-label output missing")
	}
}

func TestDimMismatchRejected(t *testing.T) {
	g := testGraph(t, 50)
	bad := gas.NewSAGEModel("bad", gas.TaskSingleLabel, 99, 8, 4, 2, 0, tensor.NewRNG(6))
	if _, err := Run(bad, g, Options{Workers: 2}); err == nil {
		t.Fatal("expected dimension error")
	}
}
