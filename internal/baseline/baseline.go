// Package baseline implements the traditional GNN inference pipeline the
// paper compares against (the PyG/DGL deployment style): a distributed graph
// store serves k-hop (optionally sampled) neighborhoods to a pool of
// inference workers, each of which runs a localized forward per batch of
// target nodes.
//
// Two structural pathologies of this pipeline are what InferTurbo removes,
// and both are reproduced here:
//
//   - redundant computation: neighborhoods of different targets overlap, so
//     the same node is fetched and re-computed many times; the expansion-tree
//     accounting below charges exactly that redundancy, which grows
//     exponentially with hops;
//   - inconsistency: with neighbor sampling, a node's prediction depends on
//     the per-run sampling seed, so repeated runs flip classes (the paper's
//     Fig 7).
//
// Predictions are computed for real (sampled subgraph + gas.Model forward),
// while bytes/flops/memory are charged from the expansion-tree model so the
// cost shape matches the real pipeline rather than our batched shortcut.
package baseline

import (
	"fmt"

	"inferturbo/internal/cluster"
	"inferturbo/internal/gas"
	"inferturbo/internal/graph"
	"inferturbo/internal/tensor"
)

// Options configures a traditional-pipeline run.
type Options struct {
	// Workers is the inference worker count (the paper uses 200×10 cores).
	Workers int
	// Fanout bounds sampled in-neighbors per hop; < 0 disables sampling.
	Fanout int
	// Hops overrides the neighborhood depth (default: model layers).
	Hops int
	// BatchSize is the number of target nodes a worker processes per
	// localized forward (default 64).
	BatchSize int
	// Seed drives neighbor sampling. Different seeds emulate different
	// runs; the consistency experiment varies this.
	Seed int64
	// MemLimitBytes caps a worker's peak memory; exceeded ⇒ OOM error,
	// reproducing the paper's Table IV failure at nbr10000 × 3 hops.
	// Zero means unlimited.
	MemLimitBytes int64
	// TargetMask optionally restricts inference to masked nodes (nil = all
	// nodes, the full-graph inference task).
	TargetMask []bool
}

func (o Options) withDefaults(m *gas.Model) Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Hops <= 0 {
		o.Hops = m.NumLayers()
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	return o
}

// Stats aggregates the run's cost counters.
type Stats struct {
	Targets        int
	TreeVisits     float64 // Σ expansion-tree sizes: the redundancy measure
	Redundancy     float64 // TreeVisits / graph nodes
	FetchedBytes   int64
	StoreRequests  int64
	PeakBatchBytes int64
}

// Result of a traditional-pipeline run.
type Result struct {
	// Logits holds rows only for target nodes (all nodes by default).
	Logits *tensor.Matrix
	// Classes are single-label predictions aligned with graph node ids;
	// non-target nodes hold -1.
	Classes []int32
	// MultiLabel predictions for multi-label tasks.
	MultiLabel *tensor.Matrix
	Phases     []cluster.Phase
	Stats      Stats
}

// ExpansionTree computes, for every node, the expected size of the sampled
// k-hop expansion tree rooted there — the multiset of node visits a
// localized forward materializes, counting overlaps between branches (no
// dedup), which is exactly the redundant work the traditional pipeline
// performs. T(v,0) = 1; T(v,d) = 1 + scale(v) · Σ_{u∈in(v)} T(u,d-1) with
// scale = min(fanout, deg)/deg under sampling.
func ExpansionTree(g *graph.Graph, hops, fanout int) []float64 {
	cur := make([]float64, g.NumNodes)
	for v := range cur {
		cur[v] = 1
	}
	for d := 1; d <= hops; d++ {
		next := make([]float64, g.NumNodes)
		for v := int32(0); v < int32(g.NumNodes); v++ {
			deg := g.InDegree(v)
			if deg == 0 {
				next[v] = 1
				continue
			}
			scale := 1.0
			if fanout >= 0 && fanout < deg {
				scale = float64(fanout) / float64(deg)
			}
			var sum float64
			for _, u := range g.InNeighbors(v) {
				sum += cur[u]
			}
			next[v] = 1 + scale*sum
		}
		cur = next
	}
	return cur
}

// Run executes the traditional pipeline: for every target node, fetch its
// (sampled) k-hop neighborhood from the graph store and forward the model
// over it.
func Run(m *gas.Model, g *graph.Graph, opts Options) (*Result, error) {
	opts = opts.withDefaults(m)
	if g.FeatureDim() != m.InDim() {
		return nil, fmt.Errorf("baseline: feature dim %d, model expects %d", g.FeatureDim(), m.InDim())
	}

	var targets []int32
	if opts.TargetMask != nil {
		targets = graph.MaskedNodes(opts.TargetMask)
	} else {
		targets = make([]int32, g.NumNodes)
		for v := range targets {
			targets[v] = int32(v)
		}
	}

	tree := ExpansionTree(g, opts.Hops, opts.Fanout)
	featBytes := int64(4 * g.FeatureDim())
	maxDim := m.InDim()
	for _, l := range m.Layers {
		if l.OutDim() > maxDim {
			maxDim = l.OutDim()
		}
	}

	fanouts := make([]int, opts.Hops)
	for i := range fanouts {
		fanouts[i] = opts.Fanout
	}

	res := &Result{
		Logits:  tensor.New(len(targets), m.NumClasses),
		Classes: make([]int32, g.NumNodes),
	}
	for v := range res.Classes {
		res.Classes[v] = -1
	}
	if m.Task == gas.TaskMultiLabel {
		res.MultiLabel = tensor.New(g.NumNodes, m.NumClasses)
	}

	loads := make([]cluster.WorkerLoad, opts.Workers)
	var st Stats
	st.Targets = len(targets)

	// Worker w owns targets w, w+W, ... processed in batches.
	for w := 0; w < opts.Workers; w++ {
		var owned []int32
		for i := w; i < len(targets); i += opts.Workers {
			owned = append(owned, targets[i])
		}
		rng := tensor.NewRNG(opts.Seed + int64(w)*7919)
		var peak int64
		for start := 0; start < len(owned); start += opts.BatchSize {
			end := start + opts.BatchSize
			if end > len(owned) {
				end = len(owned)
			}
			batch := owned[start:end]

			// Accounting from the expansion-tree model: what the real
			// pipeline fetches and computes for this batch.
			var visits float64
			for _, root := range batch {
				visits += tree[root]
			}
			st.TreeVisits += visits
			fetched := int64(visits * float64(featBytes))
			loads[w].BytesIn += fetched
			loads[w].MsgsIn += int64(visits)
			loads[w].Flops += int64(visits) * batchFlops(m)
			batchBytes := int64(visits) * int64(4*maxDim+int(featBytes))
			if batchBytes > peak {
				peak = batchBytes
			}
			st.FetchedBytes += fetched
			st.StoreRequests += int64(visits)

			if opts.MemLimitBytes > 0 && batchBytes > opts.MemLimitBytes {
				return nil, &cluster.OOMError{
					Phase: "khop-batch", Worker: w,
					Need: batchBytes, Have: opts.MemLimitBytes,
				}
			}

			// Real prediction: localized forward over the sampled batch
			// subgraph (deduplicated — a fidelity shortcut that changes
			// cost, which is why cost is charged above, not measured here).
			khopOpts := graph.KHopOptions{Hops: opts.Hops}
			if opts.Fanout >= 0 {
				khopOpts.Fanouts = fanouts
				khopOpts.RNG = rng
			}
			sub := graph.KHop(g, batch, khopOpts)
			ctx := &gas.Context{
				NodeState: sub.GatherFeatures(g),
				SrcIndex:  sub.Src,
				DstIndex:  sub.Dst,
				EdgeState: sub.GatherEdgeFeatures(g),
				NumNodes:  sub.NumNodes(),
			}
			logits := m.Infer(ctx)
			for bi, root := range batch {
				row := logits.Row(bi) // roots occupy the first local ids
				res.Logits.SetRow(indexOf(targets, w, start+bi, opts.Workers), row)
				if m.Task == gas.TaskMultiLabel {
					for j, x := range row {
						if x > 0 {
							res.MultiLabel.Set(int(root), j, 1)
						}
					}
				} else {
					best := 0
					for j := 1; j < len(row); j++ {
						if row[j] > row[best] {
							best = j
						}
					}
					res.Classes[root] = int32(best)
				}
			}
		}
		loads[w].PeakMem = peak
	}
	st.Redundancy = st.TreeVisits / float64(g.NumNodes)
	res.Stats = st
	res.Phases = []cluster.Phase{{Name: "khop-inference", Workers: loads}}
	return res, nil
}

// indexOf recovers the row of target i for worker w's position p in the
// round-robin assignment: targets were assigned w, w+W, ...; position p maps
// back to global index w + p*W.
func indexOf(targets []int32, w, p, workers int) int {
	idx := w + p*workers
	if idx >= len(targets) {
		panic("baseline: target index out of range")
	}
	return idx
}

// batchFlops is the per-tree-visit compute charge: each visited node costs
// one layer application on average (visits are already multiplied across
// layers by the tree model).
func batchFlops(m *gas.Model) int64 {
	var total int64
	for _, l := range m.Layers {
		switch c := l.(type) {
		case *gas.SAGEConv:
			total += int64(4 * c.InDim() * c.OutDim())
		case *gas.GATConv:
			total += int64(2 * c.InDim() * c.Heads() * c.HeadDim())
		default:
			total += int64(2 * l.InDim() * l.OutDim())
		}
	}
	return total / int64(m.NumLayers())
}
