package pregel

import (
	"testing"

	"inferturbo/internal/graph"
)

// ldgFor builds an LDG placement of the test topology (adapted back to the
// underlying graph).
func ldgFor(t *testing.T, topo Topology, workers int) graph.Partitioner {
	t.Helper()
	gt, ok := topo.(GraphTopology)
	if !ok {
		t.Fatal("test topology must wrap a graph")
	}
	return graph.LDG{}.Partition(gt.G, workers)
}

// TestPlacementDoesNotChangeValues: the engine's headline invariant for
// pluggable partitioning — an integer-exact program produces identical
// values under hash and LDG placements, at every worker count, with and
// without combining, on both message planes.
func TestPlacementDoesNotChangeValues(t *testing.T) {
	topo := randomTopology(t, 80, 400, 21)
	_, ref := runColSum(t, topo, 1, false, false)
	for _, workers := range []int{2, 4, 8} {
		for _, combine := range []bool{false, true} {
			part := ldgFor(t, topo, workers)
			ops := &ColumnarOps{}
			if combine {
				ops.Combine = colSumCombiner
			}
			ce := NewEngine[float32, [3]float32](topo, &colSumProg{rounds: 4}, Config[[3]float32]{
				NumWorkers: workers, Columnar: ops, Partitioner: part, Parallel: true,
			})
			if err := ce.Run(); err != nil {
				t.Fatal(err)
			}
			be := NewEngine[float32, [3]float32](topo, &boxedSumProg{rounds: 4}, Config[[3]float32]{
				NumWorkers:   workers,
				Partitioner:  part,
				MessageBytes: func(m [3]float32) int { return 4*len(m) + 16 },
			})
			if combine {
				// Rebuild with the combiner (Config is by value).
				be = NewEngine[float32, [3]float32](topo, &boxedSumProg{rounds: 4}, Config[[3]float32]{
					NumWorkers:   workers,
					Partitioner:  part,
					Combiner:     boxedSumCombiner,
					MessageBytes: func(m [3]float32) int { return 4*len(m) + 16 },
				})
			}
			if err := be.Run(); err != nil {
				t.Fatal(err)
			}
			for v := range ref {
				if ce.Values()[v] != ref[v] {
					t.Fatalf("workers=%d combine=%v: LDG columnar value[%d] = %v, hash-1-worker %v",
						workers, combine, v, ce.Values()[v], ref[v])
				}
				if be.Values()[v] != ref[v] {
					t.Fatalf("workers=%d combine=%v: LDG boxed value[%d] = %v, hash-1-worker %v",
						workers, combine, v, be.Values()[v], ref[v])
				}
			}
		}
	}
}

// TestDeliveryOrderIsCanonical: every destination receives its messages in
// globally ascending source id order (emission order within a source),
// independent of worker count and placement.
func TestDeliveryOrderIsCanonical(t *testing.T) {
	topo := ringTopology(t, 13)
	want := make([]int32, 0, 13*3)
	for src := int32(0); src < 13; src++ {
		for s := int32(0); s < 3; s++ {
			want = append(want, src*4+s)
		}
	}
	run := func(workers int, part graph.Partitioner) []int32 {
		cp := &orderProgCol{}
		ce := NewEngine[int, [3]float32](topo, cp, Config[[3]float32]{
			NumWorkers: workers, MaxSupersteps: 4, Parallel: true,
			Columnar: &ColumnarOps{}, Partitioner: part,
		})
		if err := ce.Run(); err != nil {
			t.Fatal(err)
		}
		return cp.got
	}
	for _, workers := range []int{1, 2, 4, 5} {
		for name, part := range map[string]graph.Partitioner{
			"hash": nil,
			"ldg":  ldgFor(t, topo, workers),
		} {
			got := run(workers, part)
			if len(got) != len(want) {
				t.Fatalf("workers=%d %s: received %d messages, want %d", workers, name, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d %s: delivery order diverges at %d: got %v want %v",
						workers, name, i, got, want)
				}
			}
		}
	}
}

// TestRemoteTrafficAccounting: a two-community graph placed by LDG must
// report less remote traffic than hash, while total sent traffic is
// identical; a single worker reports zero remote traffic.
func TestRemoteTrafficAccounting(t *testing.T) {
	// Two communities of 20, dense inside, one bridge each way.
	b := graph.NewBuilder(40)
	for c := 0; c < 2; c++ {
		base := int32(c * 20)
		for i := int32(0); i < 20; i++ {
			b.AddEdge(base+i, base+(i+1)%20, nil)
			b.AddEdge(base+i, base+(i+7)%20, nil)
		}
	}
	b.AddEdge(0, 20, nil)
	b.AddEdge(20, 0, nil)
	topo := GraphTopology{G: b.Build()}

	totals := func(part graph.Partitioner, workers int) (sent, remote int64) {
		eng := NewEngine[float32, [3]float32](topo, &colSumProg{rounds: 3}, Config[[3]float32]{
			NumWorkers: workers, Columnar: &ColumnarOps{}, Partitioner: part,
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		for _, m := range eng.TotalMetrics() {
			sent += m.MessagesSent
			remote += m.RemoteMessagesSent
		}
		return sent, remote
	}
	hashSent, hashRemote := totals(nil, 2)
	ldgSent, ldgRemote := totals(ldgFor(t, topo, 2), 2)
	if hashSent != ldgSent {
		t.Fatalf("placement changed total traffic: %d vs %d", hashSent, ldgSent)
	}
	if ldgRemote >= hashRemote {
		t.Fatalf("LDG remote %d not below hash remote %d on a community graph", ldgRemote, hashRemote)
	}
	if _, remote := totals(nil, 1); remote != 0 {
		t.Fatalf("single worker reported %d remote messages", remote)
	}
}

// TestPartitionerWorkerCountMismatchPanics: a partitioner built for a
// different worker count is a configuration bug the engine rejects.
func TestPartitionerWorkerCountMismatchPanics(t *testing.T) {
	topo := ringTopology(t, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine[int, int](topo, &echoProgram{}, Config[int]{
		NumWorkers: 3, Partitioner: graph.NewPartitioner(2),
	})
}
