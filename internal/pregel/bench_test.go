package pregel

import (
	"testing"

	"inferturbo/internal/graph"
	"inferturbo/internal/tensor"
)

// Message-plane benchmarks: a GNN-shaped payload fan-out (16-wide state
// vectors along every edge, sender-side combining) measured end to end on
// both planes. The columnar plane's wins come from exactly the costs these
// isolate: per-message payload boxing, per-merge combiner allocation, and
// per-vertex inbox rebuilding.

const benchDim = 16

// benchMsg mirrors the GNN driver's boxed message shape.
type benchMsg struct {
	src   int32
	count int32
	pay   []float32
}

type benchBoxedProg struct{ rounds int }

func (p *benchBoxedProg) Compute(ctx *Context[[]float32, benchMsg], msgs []benchMsg) {
	if ctx.Superstep == 0 {
		v := make([]float32, benchDim)
		for i := range v {
			v[i] = float32(int(ctx.ID+int32(i)) % 13)
		}
		*ctx.Value = v
	} else {
		// The shared-payload send below aliases this buffer in receivers'
		// inboxes until the next superstep, so the boxed plane forces a
		// fresh state buffer every round — the allocation the columnar
		// program avoids.
		next := make([]float32, benchDim)
		for _, m := range msgs {
			for i, x := range m.pay {
				next[i] += x
			}
		}
		for i := range next {
			next[i] = float32(int(next[i]) % 9973)
		}
		*ctx.Value = next
	}
	if ctx.Superstep >= p.rounds {
		ctx.VoteToHalt()
		return
	}
	dsts, _ := ctx.OutEdges()
	// Identity apply_edge: one shared payload for all out-edges, like the
	// boxed GNN driver (the combiner copies before mutating).
	m := benchMsg{src: ctx.ID, count: 1, pay: *ctx.Value}
	for _, d := range dsts {
		ctx.SendMessage(d, m)
	}
}

// benchBoxedCombiner accumulates into an owned buffer (src == -1), exactly
// like the fixed combineMsgs.
func benchBoxedCombiner(a, b benchMsg) (benchMsg, bool) {
	acc := a.pay
	if a.src != -1 {
		acc = make([]float32, len(a.pay))
		copy(acc, a.pay)
	}
	for i, v := range b.pay {
		acc[i] += v
	}
	return benchMsg{src: -1, count: a.count + b.count, pay: acc}, true
}

type benchColProg struct{ rounds int }

func (p *benchColProg) Compute(ctx *Context[[]float32, benchMsg], _ []benchMsg) {
	if ctx.Superstep == 0 {
		v := make([]float32, benchDim)
		for i := range v {
			v[i] = float32(int(ctx.ID+int32(i)) % 13)
		}
		*ctx.Value = v
	} else {
		// SendColumnar copied last round's state into the arena, so unlike
		// the boxed program this one may accumulate into its state buffer
		// in place — no per-vertex allocation after initialization.
		in := ctx.ColumnarInbox()
		next := *ctx.Value
		for i := range next {
			next[i] = 0
		}
		for i := 0; i < in.Len(); i++ {
			for j, x := range in.Payloads[i] {
				next[j] += x
			}
		}
		for i := range next {
			next[i] = float32(int(next[i]) % 9973)
		}
	}
	if ctx.Superstep >= p.rounds {
		ctx.VoteToHalt()
		return
	}
	dsts, _ := ctx.OutEdges()
	for _, d := range dsts {
		ctx.SendColumnar(d, 0, ctx.ID, 1, *ctx.Value)
	}
}

func benchColCombiner(_ uint8, acc, pay []float32, accCount, payCount int32) (int32, bool) {
	for i, v := range pay {
		acc[i] += v
	}
	return accCount + payCount, true
}

func benchTopology(b *testing.B) Topology {
	b.Helper()
	rng := tensor.NewRNG(42)
	gb := graph.NewBuilder(2000)
	for i := 0; i < 16000; i++ {
		gb.AddEdge(int32(rng.Intn(2000)), int32(rng.Intn(2000)), nil)
	}
	return GraphTopology{G: gb.Build()}
}

const benchRounds = 6

func benchmarkBoxed(b *testing.B, combine, parallel bool) {
	topo := benchTopology(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := Config[benchMsg]{
			NumWorkers:   8,
			Parallel:     parallel,
			MessageBytes: func(m benchMsg) int { return 4*len(m.pay) + 16 },
		}
		if combine {
			cfg.Combiner = benchBoxedCombiner
		}
		eng := NewEngine[[]float32, benchMsg](topo, &benchBoxedProg{rounds: benchRounds}, cfg)
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkColumnar(b *testing.B, combine, parallel bool) {
	topo := benchTopology(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops := &ColumnarOps{}
		if combine {
			ops.Combine = benchColCombiner
		}
		eng := NewEngine[[]float32, benchMsg](topo, &benchColProg{rounds: benchRounds}, Config[benchMsg]{
			NumWorkers: 8, Parallel: parallel, Columnar: ops,
		})
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkPipelined(b *testing.B, combine, parallel bool) {
	topo := benchTopology(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops := &ColumnarOps{}
		if combine {
			ops.Combine = benchColCombiner
		}
		eng := NewEngine[[]float32, benchMsg](topo, &benchColProg{rounds: benchRounds}, Config[benchMsg]{
			NumWorkers: 8, Parallel: parallel, Columnar: ops, Pipelined: true,
		})
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuperstepBoxed(b *testing.B)             { benchmarkBoxed(b, false, false) }
func BenchmarkSuperstepBoxedCombine(b *testing.B)      { benchmarkBoxed(b, true, false) }
func BenchmarkSuperstepColumnar(b *testing.B)          { benchmarkColumnar(b, false, false) }
func BenchmarkSuperstepColumnarCombine(b *testing.B)   { benchmarkColumnar(b, true, false) }
func BenchmarkSuperstepBoxedParallel(b *testing.B)     { benchmarkBoxed(b, true, true) }
func BenchmarkSuperstepColumnarParallel(b *testing.B)  { benchmarkColumnar(b, true, true) }
func BenchmarkSuperstepPipelined(b *testing.B)         { benchmarkPipelined(b, false, false) }
func BenchmarkSuperstepPipelinedCombine(b *testing.B)  { benchmarkPipelined(b, true, false) }
func BenchmarkSuperstepPipelinedParallel(b *testing.B) { benchmarkPipelined(b, true, true) }
