package pregel

// Durable checkpoints: the bridge between the engine's in-memory snapshots
// and the internal/checkpoint epoch store. The in-memory snapshot stays the
// recovery fast path (simulated faults roll back without touching disk);
// attaching a Sink additionally persists every snapshot as a checksummed
// epoch file, and Resume rebuilds engine state from the newest valid epoch
// so a killed process restarts mid-run.
//
// Persistence never blocks the supersteps it protects: takeCheckpoint
// captures the immutable in-memory snapshot synchronously (the same deep
// copies the fast path needs anyway) and hands it to a single background
// persister goroutine that encodes and writes it while the next supersteps
// compute — the same overlap discipline as the PR 5 pipelined plane. A
// snapshot is never written after capture (the invariant the in-memory
// restore path already relies on), which is what makes the background
// encode race-free. The persist queue holds one snapshot, so at most two
// epochs are outstanding and a fast-checkpointing run backpressures instead
// of ballooning.

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"inferturbo/internal/checkpoint"
)

// SnapshotCodec encodes vertex values and boxed messages for the durable
// sink. Encoding must be bit-exact: a decoded value must reproduce the
// encoded one exactly (float32 fields round-trip through their IEEE-754
// bits — see checkpoint.AppendF32s), or crash-resume loses the engine's
// bit-identity guarantee. Msg methods are only exercised on the boxed
// message plane; columnar snapshots carry payload arenas, not M values.
type SnapshotCodec[V, M any] interface {
	// EncodeValues appends the encoding to dst and returns the extended
	// slice (append-style, like encoding/binary's Append* helpers), so the
	// persister can reuse one encode arena across epochs.
	EncodeValues(dst []byte, vals []V) ([]byte, error)
	// DecodeValues decodes into the engine's value slab (len fixed at
	// NumVertices).
	DecodeValues(data []byte, into []V) error
	EncodeMsgs(dst []byte, msgs []M) ([]byte, error)
	DecodeMsgs(data []byte) ([]M, error)
}

// ProgramDiskStater extends ProgramStater with byte encoding of the
// program-owned snapshot, so durable checkpoints can carry a batch
// program's state slabs. Programs whose state lives entirely in vertex
// values need neither interface. EncodeProgState is append-style, like
// SnapshotCodec.
type ProgramDiskStater interface {
	ProgramStater
	EncodeProgState(dst []byte, snap any) ([]byte, error)
	DecodeProgState(data []byte) (any, error)
}

// CheckpointStats aggregates a run's checkpoint activity.
type CheckpointStats struct {
	Checkpoints int   // snapshots committed (including the superstep-0 seed, when taken)
	SnapshotNs  int64 // wall time capturing in-memory snapshots (blocks the run)
	PersistNs   int64 // wall time encoding + writing epochs (overlaps compute)
	// Bytes counts encoded segment bytes handed to the sink. The superstep-0
	// seed — captured only when a fault plan is armed, as the in-process
	// rollback target — stays in memory only (resuming from it equals a cold
	// start), so it contributes to Checkpoints but never to Bytes.
	Bytes int64
}

// SetSink attaches a durable checkpoint sink. Every in-memory checkpoint
// (cadence: Config.CheckpointEvery) is additionally encoded through codec
// and persisted via sink by a background goroutine. Must be called before
// Run; the engine does not take ownership of the sink's directory lifecycle.
func (e *Engine[V, M]) SetSink(sink checkpoint.Sink, codec SnapshotCodec[V, M]) {
	if sink != nil && codec == nil {
		panic("pregel: SetSink requires a codec")
	}
	e.sink = sink
	e.codec = codec
}

// Resume loads the newest valid epoch from the sink and reinstalls it as
// both the engine's live state and its recovery point; the next Run starts
// at the checkpointed superstep. Returns false (and leaves the engine
// untouched) when the sink holds nothing recoverable — callers then run
// from scratch. Metrics of a resumed run cover only the resumed supersteps.
func (e *Engine[V, M]) Resume() (bool, error) {
	if e.sink == nil {
		return false, errors.New("pregel: Resume without a sink (call SetSink first)")
	}
	step, segs, found, err := e.sink.Load()
	if err != nil {
		return false, err
	}
	if !found {
		return false, nil
	}
	cp, err := e.decodeSnapshot(step, segs)
	if err != nil {
		return false, err
	}
	cp.ioDone = 1 // never enqueued; eligible for recycling once displaced
	e.checkpoint = cp
	e.restoreCheckpoint()
	e.startStep = cp.step
	e.resumed = true
	return true, nil
}

// CheckpointStats reports the run's checkpoint activity. Valid after Run
// (the persister's totals are published by its join).
func (e *Engine[V, M]) CheckpointStats() CheckpointStats {
	return CheckpointStats{
		Checkpoints: e.ckptCount,
		SnapshotNs:  e.ckptWallNs,
		PersistNs:   atomic.LoadInt64(&e.persistNs),
		Bytes:       atomic.LoadInt64(&e.ckptBytes),
	}
}

// startPersister launches the background persist goroutine; stopPersister
// joins it and surfaces the first persist failure. enqueuePersist blocks
// only when a previous epoch is still being written (queue capacity 1).
func (e *Engine[V, M]) startPersister() {
	e.persistCh = make(chan *snapshot[V, M], 1)
	e.persistDone = make(chan struct{})
	go func() {
		for cp := range e.persistCh {
			e.persistSnapshot(cp)
			e.persistWG.Done()
		}
		close(e.persistDone)
	}()
}

func (e *Engine[V, M]) stopPersister() error {
	close(e.persistCh)
	<-e.persistDone
	e.persistCh = nil
	e.persistMu.Lock()
	defer e.persistMu.Unlock()
	return e.persistFailure
}

func (e *Engine[V, M]) enqueuePersist(cp *snapshot[V, M]) {
	e.persistWG.Add(1)
	e.persistCh <- cp
}

// drainPersist blocks until every enqueued snapshot is durably written —
// the pre-hook barrier that makes SuperstepHook-driven process kills
// deterministic about which epochs exist.
func (e *Engine[V, M]) drainPersist() { e.persistWG.Wait() }

func (e *Engine[V, M]) persistSnapshot(cp *snapshot[V, M]) {
	// Publish completion regardless of outcome so takeCheckpoint can recycle
	// this snapshot's slabs after it is displaced.
	defer atomic.StoreUint32(&cp.ioDone, 1)
	e.persistMu.Lock()
	failed := e.persistFailure != nil
	e.persistMu.Unlock()
	if failed {
		// Durability already degraded; don't burn IO on further epochs. The
		// in-memory recovery path is unaffected and the error surfaces at
		// Run's return.
		return
	}
	t0 := time.Now()
	segs, err := e.encodeSnapshot(cp)
	if err == nil {
		err = e.sink.Save(cp.step, segs)
	}
	atomic.AddInt64(&e.persistNs, time.Since(t0).Nanoseconds())
	if err != nil {
		e.persistMu.Lock()
		e.persistFailure = err
		e.persistMu.Unlock()
		return
	}
	var bytes int64
	for _, sg := range segs {
		bytes += int64(len(sg.Data))
	}
	atomic.AddInt64(&e.ckptBytes, bytes)
}

// Segment names of the epoch layout. The meta segment pins the engine shape
// (plane, workers, vertex count) so a resume against a mismatched
// configuration fails loudly instead of corrupting state.
const (
	segMeta    = "meta"
	segActive  = "active"
	segValues  = "values"
	segAgg     = "agg"
	segColIn   = "colin"
	segColMail = "colmail"
	segPendIn  = "pendin"
	segBoxOff  = "boxoff"
	segBoxMsgs = "boxmsgs"
	segBoxMail = "boxmail"
	segProg    = "prog"
)

const snapshotVersion = 1

// segArena builds an epoch's segments inside one reusable buffer. Appends
// may reallocate the buffer, so segment boundaries are tracked as end
// offsets and re-sliced into views only once the epoch is complete.
type segArena struct {
	buf   []byte
	names []string
	ends  []int
}

func (a *segArena) reset() {
	a.buf = a.buf[:0]
	a.names = a.names[:0]
	a.ends = a.ends[:0]
}

// seal marks everything appended since the previous seal as segment name.
func (a *segArena) seal(name string) {
	a.names = append(a.names, name)
	a.ends = append(a.ends, len(a.buf))
}

// grow reserves room for at least n more bytes in one allocation, so the
// epoch's appends don't churn through reallocation doubling.
func (a *segArena) grow(n int) {
	if cap(a.buf)-len(a.buf) < n {
		nb := make([]byte, len(a.buf), len(a.buf)+n)
		copy(nb, a.buf)
		a.buf = nb
	}
}

func (a *segArena) segments(dst []checkpoint.Segment) []checkpoint.Segment {
	dst = dst[:0]
	start := 0
	for i, name := range a.names {
		dst = append(dst, checkpoint.Segment{Name: name, Data: a.buf[start:a.ends[i]]})
		start = a.ends[i]
	}
	return dst
}

// encodeSnapshot serializes one immutable snapshot into named segments, all
// carved from the engine's reusable encode arena — steady-state epochs
// encode without allocating. Runs on the persister goroutine: it reads only
// the snapshot (immutable after capture), engine fields fixed at
// construction, and the persister-only scratch buffers. The returned
// segments are views into the arena, valid until the next encodeSnapshot.
func (e *Engine[V, M]) encodeSnapshot(cp *snapshot[V, M]) ([]checkpoint.Segment, error) {
	nw := e.cfg.NumWorkers
	a := &e.encArena
	a.reset()
	// Size the arena from the known-size bulk (the inbox arenas dominate an
	// epoch) plus slack for the codec-encoded values and program state.
	est := 4096 + len(cp.active) + 16*len(cp.values)
	if e.columnar {
		for r := 0; r < nw; r++ {
			est += colSnapSize(cp.colIn[r]) + colSnapSize(cp.colMail[r])
		}
	}
	a.grow(est + est/8)
	b := a.buf
	b = checkpoint.AppendU32(b, snapshotVersion)
	b = checkpoint.AppendBools(b, []bool{e.columnar, e.pipelined, cp.hasProg, cp.aggPrev != nil})
	b = checkpoint.AppendU32(b, uint32(nw))
	b = checkpoint.AppendU64(b, uint64(len(cp.values)))
	b = checkpoint.AppendI64(b, int64(cp.inTotal))
	b = checkpoint.AppendI64(b, int64(cp.mailTotal))
	a.buf = b
	a.seal(segMeta)

	a.buf = checkpoint.AppendBools(a.buf, cp.active)
	a.seal(segActive)

	vals, err := e.codec.EncodeValues(a.buf, cp.values)
	if err != nil {
		return nil, fmt.Errorf("pregel: encode values: %w", err)
	}
	a.buf = vals
	a.seal(segValues)

	if cp.aggPrev != nil {
		keys := make([]string, 0, len(cp.aggPrev))
		for k := range cp.aggPrev {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b := a.buf
		b = checkpoint.AppendU64(b, uint64(len(keys)))
		for _, k := range keys {
			b = checkpoint.AppendString(b, k)
			b = checkpoint.AppendF32s(b, cp.aggPrev[k])
		}
		a.buf = b
		a.seal(segAgg)
	}

	if e.columnar {
		b := a.buf
		for r := 0; r < nw; r++ {
			b = appendColSnap(b, cp.colIn[r])
		}
		a.buf = b
		a.seal(segColIn)
		b = a.buf
		for r := 0; r < nw; r++ {
			b = appendColSnap(b, cp.colMail[r])
		}
		a.buf = b
		a.seal(segColMail)
		if e.pipelined {
			b = a.buf
			for r := 0; r < nw; r++ {
				b = checkpoint.AppendI64(b, cp.pendIn[r].msgs)
				b = checkpoint.AppendI64(b, cp.pendIn[r].bytes)
			}
			a.buf = b
			a.seal(segPendIn)
		}
	} else {
		b := a.buf
		for r := 0; r < nw; r++ {
			b = checkpoint.AppendI32s(b, cp.boxOff[r])
		}
		a.buf = b
		a.seal(segBoxOff)
		// Per-worker message blobs nest length-prefixed inside the segment,
		// so each is encoded into a reused scratch first.
		b = a.buf
		for r := 0; r < nw; r++ {
			if e.boxScratch, err = e.codec.EncodeMsgs(e.boxScratch[:0], cp.boxMsgs[r]); err != nil {
				return nil, fmt.Errorf("pregel: encode inbox msgs: %w", err)
			}
			b = checkpoint.AppendBytes(b, e.boxScratch)
		}
		a.buf = b
		a.seal(segBoxMsgs)
		b = a.buf
		for r := 0; r < nw; r++ {
			if e.boxScratch, err = e.codec.EncodeMsgs(e.boxScratch[:0], cp.boxMail[r]); err != nil {
				return nil, fmt.Errorf("pregel: encode worker mail: %w", err)
			}
			b = checkpoint.AppendBytes(b, e.boxScratch)
		}
		a.buf = b
		a.seal(segBoxMail)
	}

	if cp.hasProg {
		ds, ok := e.prog.(ProgramDiskStater)
		if !ok {
			return nil, errors.New("pregel: program keeps state (ProgramStater) but does not implement ProgramDiskStater; durable checkpoints cannot carry it")
		}
		pb, err := ds.EncodeProgState(a.buf, cp.progState)
		if err != nil {
			return nil, fmt.Errorf("pregel: encode program state: %w", err)
		}
		a.buf = pb
		a.seal(segProg)
	}
	e.encSegs = a.segments(e.encSegs)
	return e.encSegs, nil
}

// colSnapSize is appendColSnap's output size for s plus its length words.
func colSnapSize(s colSnap) int {
	return 48 + 4*len(s.off) + len(s.kinds) + 4*len(s.srcs) + 4*len(s.counts) +
		8*len(s.payOff) + 4*len(s.arena)
}

func appendColSnap(b []byte, s colSnap) []byte {
	b = checkpoint.AppendI32s(b, s.off)
	b = checkpoint.AppendBytes(b, s.kinds)
	b = checkpoint.AppendI32s(b, s.srcs)
	b = checkpoint.AppendI32s(b, s.counts)
	// Same wire shape as AppendI64s, without materializing an []int64.
	b = checkpoint.AppendU64(b, uint64(len(s.payOff)))
	for _, v := range s.payOff {
		b = checkpoint.AppendI64(b, int64(v))
	}
	return checkpoint.AppendF32s(b, s.arena)
}

func readColSnap(r *checkpoint.Reader) colSnap {
	var s colSnap
	s.off = r.I32s()
	s.kinds = append([]uint8(nil), r.Bytes()...)
	s.srcs = r.I32s()
	s.counts = r.I32s()
	po := r.I64s()
	s.payOff = make([]int, len(po))
	for i, v := range po {
		s.payOff[i] = int(v)
	}
	s.arena = r.F32s()
	return s
}

// validateColSnap checks a decoded column snapshot's internal consistency —
// the invariants snapColsInto guarantees on capture — so a CRC-valid but
// semantically corrupt epoch fails the resume with an error instead of
// panicking later inside restoreCols or the delivery barrier. wantOff > 0
// additionally pins the CSR offsets: monotone from 0 to the message count,
// so every Batch view sliced from them stays in bounds.
func validateColSnap(s colSnap, wantOff int) error {
	n := len(s.srcs)
	if len(s.kinds) != n || len(s.counts) != n {
		return fmt.Errorf("column lengths disagree (kinds=%d srcs=%d counts=%d)", len(s.kinds), n, len(s.counts))
	}
	if len(s.payOff) != n+1 {
		return fmt.Errorf("payload offsets len %d, want %d", len(s.payOff), n+1)
	}
	if s.payOff[0] != 0 || s.payOff[n] != len(s.arena) {
		return fmt.Errorf("payload offsets span [%d,%d], arena holds %d", s.payOff[0], s.payOff[n], len(s.arena))
	}
	for i := 0; i < n; i++ {
		if s.payOff[i] > s.payOff[i+1] {
			return fmt.Errorf("payload offsets regress at message %d", i)
		}
	}
	if wantOff > 0 {
		if len(s.off) != wantOff {
			return fmt.Errorf("CSR has %d offsets, want %d", len(s.off), wantOff)
		}
		if s.off[0] != 0 || int(s.off[wantOff-1]) != n {
			return fmt.Errorf("CSR spans [%d,%d], inbox holds %d messages", s.off[0], s.off[wantOff-1], n)
		}
		for i := 0; i+1 < wantOff; i++ {
			if s.off[i] > s.off[i+1] {
				return fmt.Errorf("CSR offsets regress at slot %d", i)
			}
		}
	}
	return nil
}

// decodeSnapshot rebuilds a snapshot from epoch segments, validating shape
// against the engine's configuration before any state is touched.
func (e *Engine[V, M]) decodeSnapshot(step int, segs []checkpoint.Segment) (*snapshot[V, M], error) {
	bySeg := make(map[string][]byte, len(segs))
	for _, sg := range segs {
		bySeg[sg.Name] = sg.Data
	}
	need := func(name string) (*checkpoint.Reader, error) {
		b, ok := bySeg[name]
		if !ok {
			return nil, fmt.Errorf("pregel: checkpoint missing segment %q", name)
		}
		return checkpoint.NewReader(b), nil
	}

	mr, err := need(segMeta)
	if err != nil {
		return nil, err
	}
	version := mr.U32()
	flags := mr.Bools()
	nw := int(mr.U32())
	nvert := int(mr.U64())
	inTotal := int(mr.I64())
	mailTotal := int(mr.I64())
	if mr.Err() != nil || len(flags) != 4 || nw < 0 || nvert < 0 || inTotal < 0 || mailTotal < 0 {
		return nil, errors.New("pregel: checkpoint meta segment malformed")
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("pregel: checkpoint version %d, engine speaks %d", version, snapshotVersion)
	}
	columnar, pipelined, hasProg, hasAgg := flags[0], flags[1], flags[2], flags[3]
	if columnar != e.columnar || pipelined != e.pipelined ||
		nw != e.cfg.NumWorkers || nvert != len(e.values) {
		return nil, fmt.Errorf("pregel: checkpoint shape (columnar=%v pipelined=%v workers=%d vertices=%d) does not match engine (columnar=%v pipelined=%v workers=%d vertices=%d)",
			columnar, pipelined, nw, nvert, e.columnar, e.pipelined, e.cfg.NumWorkers, len(e.values))
	}

	cp := &snapshot[V, M]{step: step, inTotal: inTotal, mailTotal: mailTotal, hasProg: hasProg}

	ar, err := need(segActive)
	if err != nil {
		return nil, err
	}
	cp.active = ar.Bools()
	if ar.Err() != nil || len(cp.active) != nvert {
		return nil, errors.New("pregel: checkpoint active segment malformed")
	}

	vb, ok := bySeg[segValues]
	if !ok {
		return nil, fmt.Errorf("pregel: checkpoint missing segment %q", segValues)
	}
	cp.values = make([]V, nvert)
	if err := e.codec.DecodeValues(vb, cp.values); err != nil {
		return nil, fmt.Errorf("pregel: decode values: %w", err)
	}

	if hasAgg {
		gr, err := need(segAgg)
		if err != nil {
			return nil, err
		}
		n := int(gr.U64())
		agg := make(map[string][]float32, n)
		for i := 0; i < n && gr.Err() == nil; i++ {
			k := gr.String()
			agg[k] = gr.F32s()
		}
		if gr.Err() != nil {
			return nil, errors.New("pregel: checkpoint aggregator segment malformed")
		}
		cp.aggPrev = agg
	}

	if e.columnar {
		ir, err := need(segColIn)
		if err != nil {
			return nil, err
		}
		mrd, err := need(segColMail)
		if err != nil {
			return nil, err
		}
		cp.colIn = make([]colSnap, nw)
		cp.colMail = make([]colSnap, nw)
		for r := 0; r < nw; r++ {
			cp.colIn[r] = readColSnap(ir)
			cp.colMail[r] = readColSnap(mrd)
		}
		if ir.Err() != nil || mrd.Err() != nil {
			return nil, errors.New("pregel: checkpoint columnar segments malformed")
		}
		for r := 0; r < nw; r++ {
			if err := validateColSnap(cp.colIn[r], len(e.colIn[r].off)); err != nil {
				return nil, fmt.Errorf("pregel: checkpoint inbox for worker %d malformed: %w", r, err)
			}
			if err := validateColSnap(cp.colMail[r], 0); err != nil {
				return nil, fmt.Errorf("pregel: checkpoint worker mail for worker %d malformed: %w", r, err)
			}
		}
		if e.pipelined {
			pr, err := need(segPendIn)
			if err != nil {
				return nil, err
			}
			cp.pendIn = make([]inMetrics, nw)
			for r := 0; r < nw; r++ {
				cp.pendIn[r].msgs = pr.I64()
				cp.pendIn[r].bytes = pr.I64()
			}
			if pr.Err() != nil {
				return nil, errors.New("pregel: checkpoint pendin segment malformed")
			}
		}
	} else {
		or, err := need(segBoxOff)
		if err != nil {
			return nil, err
		}
		br, err := need(segBoxMsgs)
		if err != nil {
			return nil, err
		}
		wr, err := need(segBoxMail)
		if err != nil {
			return nil, err
		}
		cp.boxOff = make([][]int32, nw)
		cp.boxMsgs = make([][]M, nw)
		cp.boxMail = make([][]M, nw)
		for r := 0; r < nw; r++ {
			cp.boxOff[r] = or.I32s()
			if want := len(e.boxIn[r].off); len(cp.boxOff[r]) != want {
				return nil, fmt.Errorf("pregel: checkpoint inbox CSR for worker %d has %d offsets, engine expects %d", r, len(cp.boxOff[r]), want)
			}
			mb := br.Bytes()
			if cp.boxMsgs[r], err = e.codec.DecodeMsgs(mb); err != nil {
				return nil, fmt.Errorf("pregel: decode inbox msgs: %w", err)
			}
			wb := wr.Bytes()
			if cp.boxMail[r], err = e.codec.DecodeMsgs(wb); err != nil {
				return nil, fmt.Errorf("pregel: decode worker mail: %w", err)
			}
		}
		if or.Err() != nil || br.Err() != nil || wr.Err() != nil {
			return nil, errors.New("pregel: checkpoint boxed segments malformed")
		}
	}

	if hasProg {
		ds, ok := e.prog.(ProgramDiskStater)
		if !ok {
			return nil, errors.New("pregel: checkpoint carries program state but the program does not implement ProgramDiskStater")
		}
		pb, okSeg := bySeg[segProg]
		if !okSeg {
			return nil, fmt.Errorf("pregel: checkpoint missing segment %q", segProg)
		}
		if cp.progState, err = ds.DecodeProgState(pb); err != nil {
			return nil, fmt.Errorf("pregel: decode program state: %w", err)
		}
	}
	return cp, nil
}
