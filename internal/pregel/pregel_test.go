package pregel

import (
	"math"
	"testing"

	"inferturbo/internal/datagen"
	"inferturbo/internal/graph"
	"inferturbo/internal/tensor"
)

func ringTopology(t *testing.T, n int) Topology {
	t.Helper()
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(int32(v), int32((v+1)%n), nil)
	}
	return GraphTopology{G: b.Build()}
}

func randomTopology(t *testing.T, n, e int, seed int64) Topology {
	t.Helper()
	rng := tensor.NewRNG(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < e; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), nil)
	}
	return GraphTopology{G: b.Build()}
}

func TestPageRankMatchesReference(t *testing.T) {
	topo := randomTopology(t, 100, 500, 1)
	prog := &PageRankProgram{NumVertices: 100, Iterations: 20}
	eng := NewEngine[float64, float64](topo, prog, Config[float64]{
		NumWorkers: 4, MaxSupersteps: 25, Combiner: PageRankCombiner,
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := ReferencePageRank(topo, 20)
	for v, got := range eng.Values() {
		if math.Abs(got-want[v]) > 1e-9 {
			t.Fatalf("rank[%d] = %v, want %v", v, got, want[v])
		}
	}
}

func TestPageRankRanksSum(t *testing.T) {
	topo := ringTopology(t, 50)
	prog := &PageRankProgram{NumVertices: 50, Iterations: 10}
	eng := NewEngine[float64, float64](topo, prog, Config[float64]{NumWorkers: 3})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range eng.Values() {
		sum += r
	}
	// On a ring (every vertex has out-degree 1) rank mass is conserved.
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("total rank = %v, want 1", sum)
	}
}

func TestPageRankIndependentOfWorkerCount(t *testing.T) {
	topo := randomTopology(t, 80, 400, 2)
	run := func(workers int) []float64 {
		prog := &PageRankProgram{NumVertices: 80, Iterations: 15}
		eng := NewEngine[float64, float64](topo, prog, Config[float64]{NumWorkers: workers})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 80)
		copy(out, eng.Values())
		return out
	}
	a, b := run(1), run(7)
	for v := range a {
		if math.Abs(a[v]-b[v]) > 1e-9 {
			t.Fatalf("rank[%d] differs across worker counts: %v vs %v", v, a[v], b[v])
		}
	}
}

func TestSSSPMatchesBFS(t *testing.T) {
	topo := randomTopology(t, 120, 400, 3)
	prog := &SSSPProgram{Source: 0}
	eng := NewEngine[float64, float64](topo, prog, Config[float64]{
		NumWorkers: 5, MaxSupersteps: 200, Combiner: SSSPCombiner,
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := ReferenceSSSP(topo, 0)
	for v, got := range eng.Values() {
		if got != want[v] && !(math.IsInf(got, 1) && math.IsInf(want[v], 1)) {
			t.Fatalf("dist[%d] = %v, want %v", v, got, want[v])
		}
	}
}

func TestSSSPHaltsBeforeMaxSupersteps(t *testing.T) {
	topo := ringTopology(t, 10)
	prog := &SSSPProgram{Source: 0}
	eng := NewEngine[float64, float64](topo, prog, Config[float64]{NumWorkers: 2, MaxSupersteps: 100})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// A 10-ring needs ~11 supersteps; the engine must not run to the cap.
	if eng.Supersteps() > 15 {
		t.Fatalf("supersteps = %d, expected early halt", eng.Supersteps())
	}
}

func TestCombinerReducesTraffic(t *testing.T) {
	// Star graph: all vertices point at 0 — a combiner should merge each
	// worker's messages to a single one per superstep.
	b := graph.NewBuilder(101)
	for v := int32(1); v <= 100; v++ {
		b.AddEdge(v, 0, nil)
	}
	topo := GraphTopology{G: b.Build()}

	run := func(combine bool) (sent int64, combined int64) {
		prog := &PageRankProgram{NumVertices: 101, Iterations: 2}
		cfg := Config[float64]{NumWorkers: 4}
		if combine {
			cfg.Combiner = PageRankCombiner
		}
		eng := NewEngine[float64, float64](topo, prog, cfg)
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		for _, m := range eng.TotalMetrics() {
			sent += m.MessagesSent
			combined += m.CombinedAway
		}
		return sent, combined
	}
	plainSent, _ := run(false)
	combSent, combined := run(true)
	if combSent >= plainSent {
		t.Fatalf("combiner did not reduce traffic: %d vs %d", combSent, plainSent)
	}
	if combined == 0 {
		t.Fatal("combiner merges not counted")
	}
}

func TestMetricsBalance(t *testing.T) {
	topo := randomTopology(t, 60, 300, 4)
	prog := &PageRankProgram{NumVertices: 60, Iterations: 5}
	eng := NewEngine[float64, float64](topo, prog, Config[float64]{NumWorkers: 3})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	var sent, received int64
	for _, m := range eng.TotalMetrics() {
		sent += m.MessagesSent
		received += m.MessagesReceived
	}
	if sent != received {
		t.Fatalf("sent %d != received %d", sent, received)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	topo := randomTopology(t, 100, 600, 5)
	run := func(parallel bool) []float64 {
		prog := &PageRankProgram{NumVertices: 100, Iterations: 10}
		eng := NewEngine[float64, float64](topo, prog, Config[float64]{
			NumWorkers: 8, Parallel: parallel, Combiner: PageRankCombiner,
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 100)
		copy(out, eng.Values())
		return out
	}
	seq, par := run(false), run(true)
	for v := range seq {
		if seq[v] != par[v] {
			t.Fatalf("parallel execution changed rank[%d]: %v vs %v", v, seq[v], par[v])
		}
	}
}

// echoProgram exercises aggregators and worker mailboxes: superstep 0
// publishes vertex 0's id via the aggregator and a worker message; superstep
// 1 reads them.
type echoProgram struct {
	sawAggregator bool
	sawWorkerMail bool
}

func (p *echoProgram) Compute(ctx *Context[int, int], msgs []int) {
	switch ctx.Superstep {
	case 0:
		if ctx.ID == 0 {
			ctx.AggregatorPut("hello", []float32{42})
			for w := 0; w < ctx.NumWorkers(); w++ {
				ctx.SendToWorker(w, 7)
			}
		}
		// Stay active for one more superstep.
	case 1:
		if v, ok := ctx.AggregatorGet("hello"); ok && v[0] == 42 {
			p.sawAggregator = true
		}
		ctx.VoteToHalt()
	default:
		ctx.VoteToHalt()
	}
}

func TestAggregatorVisibleNextSuperstep(t *testing.T) {
	topo := ringTopology(t, 6)
	prog := &echoProgram{}
	eng := NewEngine[int, int](topo, prog, Config[int]{NumWorkers: 3, MaxSupersteps: 4})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !prog.sawAggregator {
		t.Fatal("aggregator value not visible in the following superstep")
	}
	// Worker mailboxes were delivered and accounted.
	var received int64
	for _, m := range eng.TotalMetrics() {
		received += m.MessagesReceived
	}
	if received < 3 {
		t.Fatalf("worker mail not delivered: received=%d", received)
	}
}

func TestMessageBytesAccounting(t *testing.T) {
	topo := ringTopology(t, 4)
	prog := &PageRankProgram{NumVertices: 4, Iterations: 1}
	eng := NewEngine[float64, float64](topo, prog, Config[float64]{
		NumWorkers:   2,
		MessageBytes: func(float64) int { return 8 },
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	var sentMsgs, sentBytes int64
	for _, m := range eng.TotalMetrics() {
		sentMsgs += m.MessagesSent
		sentBytes += m.BytesSent
	}
	if sentBytes != sentMsgs*8 {
		t.Fatalf("bytes = %d for %d msgs", sentBytes, sentMsgs)
	}
}

func TestEngineRejectsBadWorkerCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine[int, int](ringTopology(t, 3), &echoProgram{}, Config[int]{NumWorkers: 0})
}

func TestEngineOnPowerLawGraph(t *testing.T) {
	// Smoke: the engine handles a skewed graph and cost accounting piles up
	// on the hub's worker.
	ds := datagen.PowerLaw(500, datagen.SkewOut, 6)
	topo := GraphTopology{G: ds.Graph}
	prog := &PageRankProgram{NumVertices: ds.Graph.NumNodes, Iterations: 3}
	eng := NewEngine[float64, float64](topo, prog, Config[float64]{NumWorkers: 10})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	var maxCost, minCost int64 = 0, 1 << 62
	for _, m := range eng.TotalMetrics() {
		if m.ComputeCost > maxCost {
			maxCost = m.ComputeCost
		}
		if m.ComputeCost < minCost {
			minCost = m.ComputeCost
		}
	}
	if maxCost <= minCost {
		t.Fatal("expected compute skew across workers on a power-law graph")
	}
}
