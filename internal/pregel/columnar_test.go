package pregel

import (
	"testing"

	"inferturbo/internal/graph"
)

// Plane-equivalence programs: the same integer-valued computation expressed
// once over boxed [3]float32 messages and once over the columnar plane.
// Payload layout is [value, srcID, count]; every quantity stays an integer
// well below 2^24, so float32 arithmetic is exact and any divergence
// between the planes (or across worker counts) is a real delivery bug, not
// rounding.

const sumMod = 9973

type boxedSumProg struct{ rounds int }

func (p *boxedSumProg) Compute(ctx *Context[float32, [3]float32], msgs [][3]float32) {
	if ctx.Superstep == 0 {
		*ctx.Value = float32(int(ctx.ID)%7 + 1)
	} else {
		var s float32
		for _, m := range msgs {
			s += m[0] + m[2]
		}
		*ctx.Value = float32(int(s) % sumMod)
	}
	if ctx.Superstep >= p.rounds {
		ctx.VoteToHalt()
		return
	}
	dsts, _ := ctx.OutEdges()
	for _, d := range dsts {
		ctx.SendMessage(d, [3]float32{*ctx.Value, float32(ctx.ID), 1})
	}
}

func boxedSumCombiner(a, b [3]float32) ([3]float32, bool) {
	return [3]float32{a[0] + b[0], a[1] + b[1], a[2] + b[2]}, true
}

type colSumProg struct{ rounds int }

func (p *colSumProg) Compute(ctx *Context[float32, [3]float32], _ [][3]float32) {
	if ctx.Superstep == 0 {
		*ctx.Value = float32(int(ctx.ID)%7 + 1)
	} else {
		in := ctx.ColumnarInbox()
		var s float32
		for i := 0; i < in.Len(); i++ {
			s += in.Payloads[i][0] + in.Payloads[i][2]
		}
		*ctx.Value = float32(int(s) % sumMod)
	}
	if ctx.Superstep >= p.rounds {
		ctx.VoteToHalt()
		return
	}
	dsts, _ := ctx.OutEdges()
	pay := [3]float32{*ctx.Value, float32(ctx.ID), 1}
	for _, d := range dsts {
		ctx.SendColumnar(d, 0, ctx.ID, 1, pay[:])
	}
}

func colSumCombiner(_ uint8, acc, pay []float32, accCount, payCount int32) (int32, bool) {
	for i, v := range pay {
		acc[i] += v
	}
	return accCount + payCount, true
}

func runBoxedSum(t *testing.T, topo Topology, workers int, combine, parallel bool) (*Engine[float32, [3]float32], []float32) {
	t.Helper()
	cfg := Config[[3]float32]{
		NumWorkers:   workers,
		Parallel:     parallel,
		MessageBytes: func(m [3]float32) int { return 4*len(m) + 16 },
	}
	if combine {
		cfg.Combiner = boxedSumCombiner
	}
	eng := NewEngine[float32, [3]float32](topo, &boxedSumProg{rounds: 4}, cfg)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return eng, append([]float32(nil), eng.Values()...)
}

func runColSum(t *testing.T, topo Topology, workers int, combine, parallel bool) (*Engine[float32, [3]float32], []float32) {
	t.Helper()
	ops := &ColumnarOps{}
	if combine {
		ops.Combine = colSumCombiner
	}
	cfg := Config[[3]float32]{NumWorkers: workers, Parallel: parallel, Columnar: ops}
	eng := NewEngine[float32, [3]float32](topo, &colSumProg{rounds: 4}, cfg)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return eng, append([]float32(nil), eng.Values()...)
}

// TestColumnarMatchesBoxed: the tentpole invariant — the columnar plane is
// a pure transport change. Values, message counts, wire bytes and combine
// counts must all be bit-identical to the boxed plane at every worker
// count, serial and parallel, with and without combining. (The default
// columnar Bytes — 4*len+16 — matches the boxed MessageBytes above.)
func TestColumnarMatchesBoxed(t *testing.T) {
	topo := randomTopology(t, 60, 240, 11)
	for _, workers := range []int{1, 2, 4, 8} {
		for _, combine := range []bool{false, true} {
			for _, parallel := range []bool{false, true} {
				be, bv := runBoxedSum(t, topo, workers, combine, parallel)
				ce, cv := runColSum(t, topo, workers, combine, parallel)
				for v := range bv {
					if bv[v] != cv[v] {
						t.Fatalf("workers=%d combine=%v parallel=%v: value[%d] boxed %v columnar %v",
							workers, combine, parallel, v, bv[v], cv[v])
					}
				}
				bm, cm := be.TotalMetrics(), ce.TotalMetrics()
				for w := range bm {
					if bm[w].MessagesSent != cm[w].MessagesSent ||
						bm[w].MessagesReceived != cm[w].MessagesReceived ||
						bm[w].BytesSent != cm[w].BytesSent ||
						bm[w].BytesReceived != cm[w].BytesReceived ||
						bm[w].CombinedAway != cm[w].CombinedAway {
						t.Fatalf("workers=%d combine=%v parallel=%v: worker %d metrics diverge:\nboxed    %+v\ncolumnar %+v",
							workers, combine, parallel, w, bm[w], cm[w])
					}
				}
			}
		}
	}
}

// TestColumnarWorkerCountInvariant: integer-exact combining means results
// must not depend on how vertices are partitioned.
func TestColumnarWorkerCountInvariant(t *testing.T) {
	topo := randomTopology(t, 80, 400, 12)
	_, ref := runColSum(t, topo, 1, true, false)
	for _, workers := range []int{2, 3, 5, 8} {
		_, got := runColSum(t, topo, workers, true, true)
		for v := range ref {
			if ref[v] != got[v] {
				t.Fatalf("workers=%d changed value[%d]: %v vs %v", workers, v, got[v], ref[v])
			}
		}
	}
}

// orderProg records the source order in which vertex 0 receives messages.
type orderProgBoxed struct{ got []int32 }

func (p *orderProgBoxed) Compute(ctx *Context[int, [3]float32], msgs [][3]float32) {
	switch ctx.Superstep {
	case 0:
		for s := int32(0); s < 3; s++ { // every vertex sends 3 messages to vertex 0
			ctx.SendMessage(0, [3]float32{float32(ctx.ID), float32(s), 0})
		}
	case 1:
		if ctx.ID == 0 {
			for _, m := range msgs {
				p.got = append(p.got, int32(m[0])*4+int32(m[1]))
			}
		}
		ctx.VoteToHalt()
	default:
		ctx.VoteToHalt()
	}
}

type orderProgCol struct{ got []int32 }

func (p *orderProgCol) Compute(ctx *Context[int, [3]float32], _ [][3]float32) {
	switch ctx.Superstep {
	case 0:
		for s := int32(0); s < 3; s++ {
			ctx.SendColumnar(0, 0, ctx.ID, s, []float32{float32(ctx.ID), float32(s), 0})
		}
	case 1:
		if ctx.ID == 0 {
			in := ctx.ColumnarInbox()
			for i := 0; i < in.Len(); i++ {
				p.got = append(p.got, in.Srcs[i]*4+in.Counts[i])
			}
		}
		ctx.VoteToHalt()
	default:
		ctx.VoteToHalt()
	}
}

// TestColumnarDeliveryOrderMatchesBoxed: per-destination message order is
// part of the engine contract (globally ascending source id, emission order
// within a source); the columnar barrier must reproduce the boxed order
// exactly, parallel delivery included.
func TestColumnarDeliveryOrderMatchesBoxed(t *testing.T) {
	topo := ringTopology(t, 13)
	for _, workers := range []int{1, 2, 4, 5} {
		bp := &orderProgBoxed{}
		be := NewEngine[int, [3]float32](topo, bp, Config[[3]float32]{NumWorkers: workers, MaxSupersteps: 4})
		if err := be.Run(); err != nil {
			t.Fatal(err)
		}
		cp := &orderProgCol{}
		ce := NewEngine[int, [3]float32](topo, cp, Config[[3]float32]{
			NumWorkers: workers, MaxSupersteps: 4, Parallel: true, Columnar: &ColumnarOps{},
		})
		if err := ce.Run(); err != nil {
			t.Fatal(err)
		}
		if len(bp.got) != len(cp.got) || len(bp.got) != 13*3 {
			t.Fatalf("workers=%d: boxed received %d, columnar %d, want %d", workers, len(bp.got), len(cp.got), 13*3)
		}
		for i := range bp.got {
			if bp.got[i] != cp.got[i] {
				t.Fatalf("workers=%d: delivery order diverges at %d: boxed %v columnar %v",
					workers, i, bp.got, cp.got)
			}
		}
	}
}

// mailProg exercises columnar worker mailboxes.
type mailProg struct {
	sawMail []bool // indexed by worker id
}

func (p *mailProg) Compute(ctx *Context[int, [3]float32], _ [][3]float32) {
	switch ctx.Superstep {
	case 0:
		if ctx.ID == 0 {
			for w := 0; w < ctx.NumWorkers(); w++ {
				ctx.SendColumnarToWorker(w, 7, ctx.ID, 0, []float32{42, 43})
			}
		}
	case 1:
		mail := ctx.ColumnarWorkerMail()
		for i := 0; i < mail.Len(); i++ {
			if mail.Kinds[i] == 7 && mail.Srcs[i] == 0 &&
				len(mail.Payloads[i]) == 2 && mail.Payloads[i][0] == 42 && mail.Payloads[i][1] == 43 {
				p.sawMail[ctx.WorkerID()] = true
			}
		}
		ctx.VoteToHalt()
	default:
		ctx.VoteToHalt()
	}
}

func TestColumnarWorkerMailDelivered(t *testing.T) {
	topo := ringTopology(t, 9)
	prog := &mailProg{sawMail: make([]bool, 3)}
	eng := NewEngine[int, [3]float32](topo, prog, Config[[3]float32]{
		NumWorkers: 3, MaxSupersteps: 4, Columnar: &ColumnarOps{},
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for w, saw := range prog.sawMail {
		if !saw {
			t.Fatalf("worker %d never saw its mailbox payload", w)
		}
	}
	var received int64
	for _, m := range eng.TotalMetrics() {
		received += m.MessagesReceived
	}
	if received < 3 {
		t.Fatalf("worker mail not accounted: received=%d", received)
	}
}

// TestColumnarCombinerReducesTraffic mirrors the boxed combiner test on the
// columnar plane: a star graph where each sending worker's messages for the
// hub merge in place into one arena row.
func TestColumnarCombinerReducesTraffic(t *testing.T) {
	b := starTopologyBuilder(101)
	run := func(combine bool) (values []float32, sent, combined int64) {
		ops := &ColumnarOps{}
		if combine {
			ops.Combine = colSumCombiner
		}
		eng := NewEngine[float32, [3]float32](b, &colSumProg{rounds: 2}, Config[[3]float32]{
			NumWorkers: 4, Columnar: ops,
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		for _, m := range eng.TotalMetrics() {
			sent += m.MessagesSent
			combined += m.CombinedAway
		}
		return append([]float32(nil), eng.Values()...), sent, combined
	}
	plainVals, plainSent, _ := run(false)
	combVals, combSent, combined := run(true)
	if combSent >= plainSent {
		t.Fatalf("combiner did not reduce traffic: %d vs %d", combSent, plainSent)
	}
	if combined == 0 {
		t.Fatal("combiner merges not counted")
	}
	for v := range plainVals {
		if plainVals[v] != combVals[v] {
			t.Fatalf("combining changed value[%d]: %v vs %v", v, combVals[v], plainVals[v])
		}
	}
}

// TestColumnarBytesAccounting: a custom Bytes function sees the kind byte
// and the true arena extent of every message.
func TestColumnarBytesAccounting(t *testing.T) {
	topo := ringTopology(t, 6)
	prog := progFunc[int, [3]float32](func(ctx *Context[int, [3]float32], _ [][3]float32) {
		if ctx.Superstep == 0 {
			dsts, _ := ctx.OutEdges()
			for _, d := range dsts {
				ctx.SendColumnar(d, 1, ctx.ID, 0, nil)             // a reference: 12 bytes
				ctx.SendColumnar(d, 0, ctx.ID, 1, []float32{1, 2}) // a payload: 4*2+16
			}
		}
		ctx.VoteToHalt()
	})
	eng := NewEngine[int, [3]float32](topo, prog, Config[[3]float32]{
		NumWorkers: 2, MaxSupersteps: 3,
		Columnar: &ColumnarOps{Bytes: func(kind uint8, payloadLen int) int {
			if kind == 1 {
				return 12
			}
			return 4*payloadLen + 16
		}},
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	var sentMsgs, sentBytes int64
	for _, m := range eng.TotalMetrics() {
		sentMsgs += m.MessagesSent
		sentBytes += m.BytesSent
	}
	if sentMsgs != 12 {
		t.Fatalf("sent %d messages, want 12", sentMsgs)
	}
	if want := int64(6*12 + 6*24); sentBytes != want {
		t.Fatalf("sent bytes = %d, want %d", sentBytes, want)
	}
}

// TestPlaneMisuse: crossing the planes is a programming error the engine
// reports immediately.
func TestPlaneMisuse(t *testing.T) {
	topo := ringTopology(t, 4)
	expectPanic := func(name string, prog VertexProgram[int, [3]float32], col *ColumnarOps) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		eng := NewEngine[int, [3]float32](topo, prog, Config[[3]float32]{NumWorkers: 2, Columnar: col})
		_ = eng.Run()
	}
	expectPanic("SendMessage on columnar", progFunc[int, [3]float32](func(ctx *Context[int, [3]float32], _ [][3]float32) {
		ctx.SendMessage(0, [3]float32{})
	}), &ColumnarOps{})
	expectPanic("SendColumnar on boxed", progFunc[int, [3]float32](func(ctx *Context[int, [3]float32], _ [][3]float32) {
		ctx.SendColumnar(0, 0, ctx.ID, 1, []float32{1})
	}), nil)
	expectPanic("ColumnarInbox on boxed", progFunc[int, [3]float32](func(ctx *Context[int, [3]float32], _ [][3]float32) {
		ctx.ColumnarInbox()
	}), nil)
}

// starTopologyBuilder builds a hub-at-0 star over n vertices.
func starTopologyBuilder(n int) Topology {
	b := graph.NewBuilder(n)
	for v := int32(1); v < int32(n); v++ {
		b.AddEdge(v, 0, nil)
	}
	return GraphTopology{G: b.Build()}
}

// colFanProg is colSumProg scattering through SendColumnarFan — the
// broadcast-safe fan path that stores each payload once per destination
// worker and aliases arena extents for the rest.
type colFanProg struct{ rounds int }

func (p *colFanProg) Compute(ctx *Context[float32, [3]float32], _ [][3]float32) {
	if ctx.Superstep == 0 {
		*ctx.Value = float32(int(ctx.ID)%7 + 1)
	} else {
		in := ctx.ColumnarInbox()
		var s float32
		for i := 0; i < in.Len(); i++ {
			s += in.Payloads[i][0] + in.Payloads[i][2]
		}
		*ctx.Value = float32(int(s) % sumMod)
	}
	if ctx.Superstep >= p.rounds {
		ctx.VoteToHalt()
		return
	}
	dsts, _ := ctx.OutEdges()
	pay := [3]float32{*ctx.Value, float32(ctx.ID), 1}
	ctx.SendColumnarFan(dsts, 0, ctx.ID, 1, pay[:])
}

// TestColumnarFanMatchesPerEdgeSends: fanning one payload along every
// out-edge must be indistinguishable from issuing individual SendColumnar
// calls — values, traffic accounting and combine counts — at every worker
// count, with and without combining, including on a hub-heavy star where
// extents are maximally aliased and the combiner must copy-on-merge instead
// of folding into a shared extent.
func TestColumnarFanMatchesPerEdgeSends(t *testing.T) {
	for _, topo := range []Topology{
		randomTopology(t, 60, 240, 19),
		starTopologyBuilder(40),
	} {
		for _, workers := range []int{1, 2, 4, 8} {
			for _, combine := range []bool{false, true} {
				for _, parallel := range []bool{false, true} {
					ce, cv := runColSum(t, topo, workers, combine, parallel)
					ops := &ColumnarOps{}
					if combine {
						ops.Combine = colSumCombiner
					}
					fe := NewEngine[float32, [3]float32](topo, &colFanProg{rounds: 4},
						Config[[3]float32]{NumWorkers: workers, Parallel: parallel, Columnar: ops})
					if err := fe.Run(); err != nil {
						t.Fatal(err)
					}
					for v := range cv {
						if cv[v] != fe.Values()[v] {
							t.Fatalf("workers=%d combine=%v parallel=%v: value[%d] per-edge %v fan %v",
								workers, combine, parallel, v, cv[v], fe.Values()[v])
						}
					}
					cm, fm := ce.TotalMetrics(), fe.TotalMetrics()
					for w := range cm {
						if cm[w] != fm[w] {
							t.Fatalf("workers=%d combine=%v parallel=%v: worker %d metrics diverge:\nper-edge %+v\nfan      %+v",
								workers, combine, parallel, w, cm[w], fm[w])
						}
					}
				}
			}
		}
	}
}

// TestColumnarFanMultiEdge: duplicate destinations inside one fan must see
// the pristine payload for every appended copy even after a combine has
// folded into the first row — the copy-on-merge materialization at work.
func TestColumnarFanMultiEdge(t *testing.T) {
	b := graph.NewBuilder(3)
	// Vertex 0 sends to 1 three times and 2 once; with combining, rows for
	// dst 1 merge while dst 2's alias must keep reading the original value.
	b.AddEdge(0, 1, nil)
	b.AddEdge(0, 1, nil)
	b.AddEdge(0, 2, nil)
	b.AddEdge(0, 1, nil)
	topo := GraphTopology{G: b.Build()}
	for _, combine := range []bool{false, true} {
		ce, cv := runColSum(t, topo, 2, combine, false)
		ops := &ColumnarOps{}
		if combine {
			ops.Combine = colSumCombiner
		}
		fe := NewEngine[float32, [3]float32](topo, &colFanProg{rounds: 4},
			Config[[3]float32]{NumWorkers: 2, Columnar: ops})
		if err := fe.Run(); err != nil {
			t.Fatal(err)
		}
		for v := range cv {
			if cv[v] != fe.Values()[v] {
				t.Fatalf("combine=%v: value[%d] per-edge %v fan %v", combine, v, cv[v], fe.Values()[v])
			}
		}
		cm, fm := ce.TotalMetrics(), fe.TotalMetrics()
		for w := range cm {
			if cm[w] != fm[w] {
				t.Fatalf("combine=%v: worker %d metrics diverge", combine, w)
			}
		}
	}
}
