package pregel

// Deterministic fault injection. The chaos tests drive the engine through
// crashes at every interesting point of a superstep's lifecycle and assert
// bit-identical results against a failure-free run; FaultPlan is the
// schedule they author. Injection is deterministic by construction: a fault
// fires on the single engine goroutine at a fixed phase boundary of a fixed
// superstep, never from a signal or timer, so a plan replays identically on
// every run.

// FaultPoint identifies where within a superstep's lifecycle an injected
// crash fires. All points sit at single-goroutine phase boundaries — worker
// goroutines (compute, pipelined assembly) are always quiescent or joined
// when a fault fires, which is what keeps injected runs deterministic.
type FaultPoint int

const (
	// FaultBeforeSuperstep crashes before the superstep's compute begins —
	// the legacy FailAtSuperstep semantics. Nothing of the superstep
	// executed; recovery replays from the latest checkpoint.
	FaultBeforeSuperstep FaultPoint = iota
	// FaultMidPipeline crashes after the compute phase has produced (and, on
	// the pipelined plane, flushed and partially assembled) send data, but
	// before the barrier merges any of it: in-flight assembler state and the
	// filled send buffers are lost work that recovery must discard.
	FaultMidPipeline
	// FaultAtBarrier crashes after the barrier's delivery/merge has rebuilt
	// the inboxes but before the superstep commits (totals, aggregators, the
	// send-buffer generation shift) — the freshly delivered inbox is lost.
	FaultAtBarrier
	// FaultDuringCheckpoint crashes while the checkpoint following the given
	// superstep is being captured: the partially built snapshot is discarded
	// and the previous checkpoint must remain the recovery point. (Torn
	// epoch files on disk are the Store's own test surface — see
	// internal/checkpoint.)
	FaultDuringCheckpoint

	// The remaining points target the serving layer's durable-session
	// machinery rather than the engine's superstep lifecycle; the engine
	// never fires them. For these, Fault.Superstep is reinterpreted as the
	// zero-based occurrence index of the event (the Nth WAL append, the Nth
	// epoch persist, ...), keeping injection deterministic.

	// FaultWALAppend fails the Nth mutation's write-ahead-log append: the
	// serving layer refuses that mutation with a 500 before anything is
	// staged or acknowledged, so nothing acknowledged can be lost.
	FaultWALAppend
	// FaultWALTruncate skips the WAL head-truncation that would follow the
	// Nth durable session epoch: consumed records linger in the log, and
	// restart-time replay must dedup them against the epoch's replay mark.
	FaultWALTruncate
	// FaultSlabPersist aborts the Nth resident-slab epoch persist before its
	// write begins: the session keeps serving from memory, nothing durable
	// changes, and the WAL keeps every record the failed epoch would have
	// covered.
	FaultSlabPersist
)

// String names a FaultPoint for logs and test output.
func (p FaultPoint) String() string {
	switch p {
	case FaultBeforeSuperstep:
		return "before-superstep"
	case FaultMidPipeline:
		return "mid-pipeline"
	case FaultAtBarrier:
		return "at-barrier"
	case FaultDuringCheckpoint:
		return "during-checkpoint"
	case FaultWALAppend:
		return "wal-append"
	case FaultWALTruncate:
		return "wal-truncate"
	case FaultSlabPersist:
		return "slab-persist"
	}
	return "unknown"
}

// Fault is one injected crash: it fires the first time the run reaches
// Point at Superstep, then disarms (a replayed superstep does not re-crash,
// matching a real transient failure). Superstep 0 is targetable — unlike
// the legacy FailAtSuperstep field, whose zero value means "off".
type Fault struct {
	Superstep int
	Point     FaultPoint
}

// FaultPlan is a deterministic schedule of injected crashes for one run.
// Multiple faults may target the same superstep (even the same point via
// duplicate entries); each entry fires exactly once, in the order the run
// reaches them.
type FaultPlan struct {
	Crashes []Fault
}

// faultState tracks one planned fault's armed/fired status.
type faultState struct {
	Fault
	fired bool
}

// buildFaults folds the configured FaultPlan and the legacy FailAtSuperstep
// field into one armed schedule.
func buildFaults[M any](cfg Config[M]) []faultState {
	var fs []faultState
	if cfg.Faults != nil {
		for _, f := range cfg.Faults.Crashes {
			fs = append(fs, faultState{Fault: f})
		}
	}
	if cfg.FailAtSuperstep > 0 {
		fs = append(fs, faultState{Fault: Fault{Superstep: cfg.FailAtSuperstep, Point: FaultBeforeSuperstep}})
	}
	return fs
}

// faultAt reports whether an armed fault targets (step, p), consuming it.
func (e *Engine[V, M]) faultAt(step int, p FaultPoint) bool {
	for i := range e.faults {
		f := &e.faults[i]
		if !f.fired && f.Superstep == step && f.Point == p {
			f.fired = true
			return true
		}
	}
	return false
}
