package pregel

import "math"

// Classic graph-processing programs. They validate the engine against
// reference implementations (the paper motivates the GAS abstraction with
// exactly these workloads) and serve as runnable examples of the vertex API.

// PageRankProgram computes PageRank with damping 0.85 for a fixed number of
// iterations. Vertex value is the rank; messages are rank contributions.
type PageRankProgram struct {
	NumVertices int
	Iterations  int
}

// Compute implements VertexProgram.
func (p *PageRankProgram) Compute(ctx *Context[float64, float64], msgs []float64) {
	switch {
	case ctx.Superstep == 0:
		*ctx.Value = 1 / float64(p.NumVertices)
	case ctx.Superstep <= p.Iterations:
		var sum float64
		for _, m := range msgs {
			sum += m
		}
		*ctx.Value = 0.15/float64(p.NumVertices) + 0.85*sum
	}
	if ctx.Superstep >= p.Iterations {
		ctx.VoteToHalt()
		return
	}
	if d := ctx.OutDegree(); d > 0 {
		share := *ctx.Value / float64(d)
		dsts, _ := ctx.OutEdges()
		for _, dst := range dsts {
			ctx.SendMessage(dst, share)
		}
		ctx.AddCost(int64(d))
	}
}

// PageRankCombiner merges rank contributions for the same destination.
func PageRankCombiner(a, b float64) (float64, bool) { return a + b, true }

// ReferencePageRank computes the same fixed-iteration PageRank on a single
// thread for engine validation.
func ReferencePageRank(topo Topology, iterations int) []float64 {
	n := topo.NumVertices()
	rank := make([]float64, n)
	for v := range rank {
		rank[v] = 1 / float64(n)
	}
	for it := 0; it < iterations; it++ {
		next := make([]float64, n)
		for v := range next {
			next[v] = 0.15 / float64(n)
		}
		for v := 0; v < n; v++ {
			d := topo.OutDegree(int32(v))
			if d == 0 {
				continue
			}
			share := 0.85 * rank[v] / float64(d)
			dsts, _ := topo.OutEdges(int32(v))
			for _, u := range dsts {
				next[u] += share
			}
		}
		rank = next
	}
	return rank
}

// SSSPProgram computes single-source shortest paths over unit-weight edges.
// Vertex value is the tentative distance; messages are candidate distances.
type SSSPProgram struct {
	Source int32
}

// Compute implements VertexProgram.
func (p *SSSPProgram) Compute(ctx *Context[float64, float64], msgs []float64) {
	if ctx.Superstep == 0 {
		if ctx.ID == p.Source {
			*ctx.Value = 0
		} else {
			*ctx.Value = math.Inf(1)
			ctx.VoteToHalt()
			return
		}
	} else {
		best := *ctx.Value
		for _, m := range msgs {
			if m < best {
				best = m
			}
		}
		if best >= *ctx.Value {
			ctx.VoteToHalt()
			return
		}
		*ctx.Value = best
	}
	dsts, _ := ctx.OutEdges()
	for _, dst := range dsts {
		ctx.SendMessage(dst, *ctx.Value+1)
	}
	ctx.AddCost(int64(len(dsts)))
	ctx.VoteToHalt()
}

// SSSPCombiner keeps the smallest candidate distance per destination.
func SSSPCombiner(a, b float64) (float64, bool) {
	if a < b {
		return a, true
	}
	return b, true
}

// ReferenceSSSP is a BFS validation oracle for unit-weight SSSP.
func ReferenceSSSP(topo Topology, source int32) []float64 {
	n := topo.NumVertices()
	dist := make([]float64, n)
	for v := range dist {
		dist[v] = math.Inf(1)
	}
	dist[source] = 0
	queue := []int32{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dsts, _ := topo.OutEdges(v)
		for _, u := range dsts {
			if dist[v]+1 < dist[u] {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}
