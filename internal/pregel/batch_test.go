package pregel

import (
	"testing"
)

// The batched compute plane must be a pure dispatch change: a batch program
// that folds each vertex's inbox range in order reproduces the per-vertex
// columnar program bit for bit — values, metrics, and recovery behaviour.

// batchSumProg is colSumProg re-expressed as a BatchProgram. Its state is
// program-owned (per-worker value slabs indexed by local vertex), the shape
// the GNN driver uses, so checkpoint recovery exercises the ProgramStater
// hooks: replays would diverge if the engine failed to snapshot/restore the
// slabs.
type batchSumProg struct {
	rounds int
	vals   [][]float32 // per worker, indexed by local vertex index
}

func newBatchSumProg(rounds, workers int) *batchSumProg {
	return &batchSumProg{rounds: rounds, vals: make([][]float32, workers)}
}

// Compute satisfies VertexProgram; the engine never calls it in batched mode.
func (p *batchSumProg) Compute(*Context[float32, [3]float32], [][3]float32) {
	panic("batchSumProg: per-vertex Compute on the batched plane")
}

func (p *batchSumProg) ComputeBatch(ctx *BatchContext[float32, [3]float32]) {
	w := ctx.WorkerID()
	owned := ctx.Owned()
	if ctx.Superstep == 0 {
		p.vals[w] = make([]float32, len(owned))
		for li, v := range owned {
			p.vals[w][li] = float32(int(v)%7 + 1)
		}
	} else {
		off, in := ctx.InboxCSR()
		for li := range owned {
			var s float32
			for i := off[li]; i < off[li+1]; i++ {
				s += in.Payloads[i][0] + in.Payloads[i][2]
			}
			p.vals[w][li] = float32(int(s) % sumMod)
		}
	}
	for li, v := range owned {
		*ctx.Value(v) = p.vals[w][li] // mirror for Engine.Values()
	}
	if ctx.Superstep >= p.rounds {
		ctx.HaltAll()
		return
	}
	var pay [3]float32
	chunk := ctx.ChunkSize() // 0 off the pipelined plane
	for li, v := range owned {
		dsts, _ := ctx.OutEdges(v)
		pay = [3]float32{p.vals[w][li], float32(v), 1}
		for _, d := range dsts {
			ctx.SendColumnar(d, 0, v, 1, pay[:])
		}
		if chunk > 0 && (li+1)%chunk == 0 {
			ctx.FlushChunk()
		}
	}
}

// SnapshotProgState implements ProgramStater.
func (p *batchSumProg) SnapshotProgState() any {
	snap := make([][]float32, len(p.vals))
	for w, vs := range p.vals {
		snap[w] = append([]float32(nil), vs...)
	}
	return snap
}

// RestoreProgState implements ProgramStater.
func (p *batchSumProg) RestoreProgState(snap any) {
	for w, vs := range snap.([][]float32) {
		p.vals[w] = append(p.vals[w][:0], vs...)
	}
}

func runBatchSum(t *testing.T, topo Topology, workers int, combine, parallel bool) (*Engine[float32, [3]float32], []float32) {
	t.Helper()
	ops := &ColumnarOps{}
	if combine {
		ops.Combine = colSumCombiner
	}
	cfg := Config[[3]float32]{NumWorkers: workers, Parallel: parallel, Columnar: ops, Batched: true}
	eng := NewEngine[float32, [3]float32](topo, newBatchSumProg(4, workers), cfg)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return eng, append([]float32(nil), eng.Values()...)
}

// TestBatchedMatchesPerVertex: values, traffic and combine counts must be
// bit-identical to the per-vertex columnar plane at every worker count,
// serial and parallel, with and without combining.
func TestBatchedMatchesPerVertex(t *testing.T) {
	topo := randomTopology(t, 60, 240, 11)
	for _, workers := range []int{1, 2, 4, 8} {
		for _, combine := range []bool{false, true} {
			for _, parallel := range []bool{false, true} {
				ce, cv := runColSum(t, topo, workers, combine, parallel)
				be, bv := runBatchSum(t, topo, workers, combine, parallel)
				for v := range cv {
					if cv[v] != bv[v] {
						t.Fatalf("workers=%d combine=%v parallel=%v: value[%d] per-vertex %v batched %v",
							workers, combine, parallel, v, cv[v], bv[v])
					}
				}
				cm, bm := ce.TotalMetrics(), be.TotalMetrics()
				for w := range cm {
					if cm[w] != bm[w] {
						t.Fatalf("workers=%d combine=%v parallel=%v: worker %d metrics diverge:\nper-vertex %+v\nbatched    %+v",
							workers, combine, parallel, w, cm[w], bm[w])
					}
				}
			}
		}
	}
}

// TestBatchedRecoveryByteIdentical: a batched run that loses a superstep to
// an injected failure must replay to the failure-free result, which requires
// the engine to checkpoint the program-owned slabs through ProgramStater.
func TestBatchedRecoveryByteIdentical(t *testing.T) {
	topo := randomTopology(t, 70, 300, 21)
	run := func(failAt int) ([]float32, int) {
		eng := NewEngine[float32, [3]float32](topo, newBatchSumProg(6, 4), Config[[3]float32]{
			NumWorkers:      4,
			Parallel:        true,
			MaxSupersteps:   10,
			CheckpointEvery: 2,
			FailAtSuperstep: failAt,
			Columnar:        &ColumnarOps{Combine: colSumCombiner},
			Batched:         true,
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return append([]float32(nil), eng.Values()...), eng.Recoveries()
	}
	clean, rec0 := run(0)
	if rec0 != 0 {
		t.Fatal("clean run must not recover")
	}
	failed, rec1 := run(5) // fails one superstep past the step-4 checkpoint
	if rec1 != 1 {
		t.Fatalf("recoveries = %d, want 1", rec1)
	}
	for v := range clean {
		if clean[v] != failed[v] {
			t.Fatalf("value[%d] differs after recovery: %v vs %v", v, clean[v], failed[v])
		}
	}
}

// TestBatchedConfigMisuse: the batched plane requires the columnar plane and
// a BatchProgram; both misconfigurations panic at construction.
func TestBatchedConfigMisuse(t *testing.T) {
	topo := ringTopology(t, 4)
	expectPanic := func(name string, build func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		build()
	}
	expectPanic("batched without columnar", func() {
		NewEngine[float32, [3]float32](topo, newBatchSumProg(2, 2), Config[[3]float32]{
			NumWorkers: 2, Batched: true,
		})
	})
	expectPanic("batched without BatchProgram", func() {
		NewEngine[float32, [3]float32](topo, &colSumProg{rounds: 2}, Config[[3]float32]{
			NumWorkers: 2, Batched: true, Columnar: &ColumnarOps{},
		})
	})
}
