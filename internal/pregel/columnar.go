package pregel

// The columnar message plane: instead of boxing every message as an M value
// with its own heap-allocated payload, batched programs append payloads into
// flat []float32 arenas alongside parallel dst/kind/src/count columns. One
// send buffer exists per (sender, receiver) worker pair and recycles across
// supersteps through a free list, so a steady-state superstep performs no
// per-message allocation: the cost of messaging scales with the bytes moved,
// not the number of messages created.
//
// Delivery is zero-copy. The barrier's counting sort builds per-receiver
// CSR-shaped inboxes whose payload entries are subslices of the sender
// arenas — payload floats are written exactly once (at send) and read in
// place (at gather). The arenas backing an inbox stay alive for one extra
// superstep (the "live" generation) and only then return to the free list.
//
// Checkpoints are the one place this aliasing must be cut: a snapshot
// deep-copies every payload out of the live arenas into its own flat arena,
// because by the time a recovery replays, the original arenas have been
// recycled and overwritten. Restores may alias the snapshot arena in turn —
// snapshots are immutable after capture; every writer (send append, combine,
// recycle) targets engine-owned buffers only.

// ColumnarOps opts a vertex program into the columnar message plane (set
// Config.Columnar to a non-nil value). In columnar mode the program sends
// with Context.SendColumnar / SendColumnarToWorker and reads with
// Context.ColumnarInbox / ColumnarWorkerMail; Compute's msgs argument is
// always nil, and Config.Combiner / Config.MessageBytes are ignored.
type ColumnarOps struct {
	// Combine merges an in-flight payload into the arena row acc of an
	// earlier message for the same destination, in place — Pregel's
	// sender-side combining without the boxed path's per-merge allocation.
	// It is only invoked when the two messages carry the same kind byte and
	// payload length; acc and pay are both payLen long. Returning the merged
	// count and true commits the merge; returning false declines it, leaving
	// both messages to be delivered individually (later messages for the
	// same destination still attempt to merge with the first one, matching
	// the boxed combiner's behaviour). nil disables combining.
	Combine func(kind uint8, acc, pay []float32, accCount, payCount int32) (int32, bool)
	// Bytes estimates the wire size of a message from its kind byte and
	// payload length, feeding the IO accounting. Defaults to 4*payloadLen+16
	// when nil.
	Bytes func(kind uint8, payloadLen int) int
	// ReserveMsgs / ReserveFloats pre-size each sender→receiver send
	// buffer's first generation (header rows / arena values). Later
	// generations size themselves from the previous generation's extents;
	// the first two start cold, and without a hint their columns grow by
	// log-many append doublings per buffer. Programs that can estimate
	// per-buffer volume (the GNN driver: edges / workers², at the model's
	// widest payload) set these; 0 leaves buffers growing on demand.
	ReserveMsgs   int
	ReserveFloats int
}

// Batch is a zero-copy columnar view of the messages addressed to one
// vertex (Context.ColumnarInbox) or one worker (Context.ColumnarWorkerMail).
// All columns share indexing; Payloads entries are views into message
// arenas, valid only for the duration of the current superstep and never to
// be mutated.
type Batch struct {
	Kinds    []uint8
	Srcs     []int32
	Counts   []int32
	Payloads [][]float32
}

// Len returns the number of messages in the batch.
func (b Batch) Len() int { return len(b.Kinds) }

// colBuf is one sender→receiver send buffer: message headers in parallel
// columns, payloads packed back-to-back in arena. offs[i] : offs[i]+lens[i]
// is message i's payload extent; appends grow the arena, in-place combines
// rewrite an existing extent, so offsets stay valid for the buffer's whole
// lifetime.
type colBuf struct {
	dsts   []int32
	kinds  []uint8
	srcs   []int32
	counts []int32
	offs   []int
	lens   []int32
	arena  []float32
	// shared[i] marks row i's extent as potentially aliased by other rows
	// (fan-out sends); a combine into a shared row materializes a private
	// accumulator first. Rows appended by add are exclusive.
	shared []bool
}

// reset truncates the buffer for reuse, keeping every backing array.
func (b *colBuf) reset() {
	b.dsts = b.dsts[:0]
	b.kinds = b.kinds[:0]
	b.srcs = b.srcs[:0]
	b.counts = b.counts[:0]
	b.offs = b.offs[:0]
	b.lens = b.lens[:0]
	b.arena = b.arena[:0]
	b.shared = b.shared[:0]
}

// add appends one message, copying the payload into the arena.
func (b *colBuf) add(dst int32, kind uint8, src, count int32, pay []float32) {
	b.dsts = append(b.dsts, dst)
	b.kinds = append(b.kinds, kind)
	b.srcs = append(b.srcs, src)
	b.counts = append(b.counts, count)
	b.offs = append(b.offs, len(b.arena))
	b.lens = append(b.lens, int32(len(pay)))
	b.arena = append(b.arena, pay...)
	b.shared = append(b.shared, false)
}

// addAlias appends one message whose payload is an existing arena extent
// [off, off+length): the fan-out path stores a broadcast-identical payload
// once per buffer and points every further header at it, so a hub vertex's
// out-edges cost one payload copy per destination worker instead of one per
// edge. Extents are addressed by index, so arena growth never invalidates an
// alias.
func (b *colBuf) addAlias(dst int32, kind uint8, src, count int32, off int, length int32) {
	b.dsts = append(b.dsts, dst)
	b.kinds = append(b.kinds, kind)
	b.srcs = append(b.srcs, src)
	b.counts = append(b.counts, count)
	b.offs = append(b.offs, off)
	b.lens = append(b.lens, length)
	b.shared = append(b.shared, true)
}

// payload returns message i's arena extent.
func (b *colBuf) payload(i int) []float32 {
	return b.arena[b.offs[i] : b.offs[i]+int(b.lens[i])]
}

// mergeTarget returns the accumulator extent for an in-place combine into
// row i. Exclusive rows (appended by add outside a fan) combine in place,
// the PR 2 hot path. Shared rows — a fan extent other rows may alias —
// first materialize a private copy at the arena tail, so the combine cannot
// corrupt sibling messages or the pristine payload later aliases read; the
// materialized row is exclusive from then on. This is the arena form of the
// boxed combiner's copy-on-first-merge, and it produces the same merged
// values: the fold runs on an identical copy of the same accumulator.
func (b *colBuf) mergeTarget(i int32) []float32 {
	if !b.shared[i] {
		return b.payload(int(i))
	}
	n := int(b.lens[i])
	off := len(b.arena)
	b.arena = append(b.arena, b.arena[b.offs[i]:b.offs[i]+n]...)
	b.offs[i] = off
	b.shared[i] = false
	return b.arena[off : off+n]
}

// reserve grows the buffer's backing arrays to hold at least msgs headers
// and floats payload values, replacing log-many append doublings with one
// allocation per column when the expected volume is known up front.
func (b *colBuf) reserve(msgs, floats int) {
	if cap(b.dsts) < msgs {
		b.dsts = make([]int32, 0, msgs)
		b.kinds = make([]uint8, 0, msgs)
		b.srcs = make([]int32, 0, msgs)
		b.counts = make([]int32, 0, msgs)
		b.offs = make([]int, 0, msgs)
		b.lens = make([]int32, 0, msgs)
		b.shared = make([]bool, 0, msgs)
	}
	if cap(b.arena) < floats {
		b.arena = make([]float32, 0, floats)
	}
}

// bufPool is a tensor.Pool-style free list of send buffers. Buffers retire
// here once the inbox views into their arenas have been consumed (one
// superstep after they were filled) and are handed back out truncated, so
// arena capacity is reused across supersteps instead of reallocated.
type bufPool struct {
	free []*colBuf
}

// get returns a truncated buffer, pre-reserved to the extents of hint (the
// previous generation's buffer for the same sender→receiver pair, whose
// volume the new superstep will roughly repeat). hint may be nil.
func (p *bufPool) get(hint *colBuf) *colBuf {
	var b *colBuf
	if n := len(p.free); n > 0 {
		b = p.free[n-1]
		p.free = p.free[:n-1]
		b.reset()
	} else {
		b = &colBuf{}
	}
	if hint != nil {
		b.reserve(len(hint.dsts), len(hint.arena))
	}
	return b
}

func (p *bufPool) put(b *colBuf) {
	if b != nil {
		p.free = append(p.free, b)
	}
}

// colCols holds flat message columns for a receiver-side inbox or worker
// mailbox. Backing arrays are reused across supersteps (grow-only); pays
// entries are zero-copy views into sender arenas.
type colCols struct {
	kinds  []uint8
	srcs   []int32
	counts []int32
	pays   [][]float32
}

// resize sets the column length to n, reusing capacity.
func (c *colCols) resize(n int) {
	if cap(c.kinds) < n {
		c.kinds = make([]uint8, n)
		c.srcs = make([]int32, n)
		c.counts = make([]int32, n)
		c.pays = make([][]float32, n)
		return
	}
	c.kinds = c.kinds[:n]
	c.srcs = c.srcs[:n]
	c.counts = c.counts[:n]
	c.pays = c.pays[:n]
}

// set writes message fields at slot i.
func (c *colCols) set(i int, kind uint8, src, count int32, pay []float32) {
	c.kinds[i] = kind
	c.srcs[i] = src
	c.counts[i] = count
	c.pays[i] = pay
}

// batch returns the [lo, hi) view.
func (c *colCols) batch(lo, hi int32) Batch {
	return Batch{
		Kinds:    c.kinds[lo:hi],
		Srcs:     c.srcs[lo:hi],
		Counts:   c.counts[lo:hi],
		Payloads: c.pays[lo:hi],
	}
}

// colInbox is one receiver's CSR inbox for a superstep: off is indexed by
// the receiver's dense local vertex index (graph.Partitioner.LocalIndex),
// so vertex v's messages are cols[off[li] : off[li+1]]. next is the scatter
// cursor of the counting sort's second pass.
type colInbox struct {
	off  []int32 // len ownedCount+1
	next []int32 // len ownedCount
	cols colCols
}

// colSnap is the checkpointed form of a colCols (+ optional CSR offsets):
// headers copied, payloads flattened into an owned arena. Immutable after
// capture.
type colSnap struct {
	off    []int32 // nil for worker mail
	kinds  []uint8
	srcs   []int32
	counts []int32
	payOff []int // len msgs+1; payload i is arena[payOff[i]:payOff[i+1]]
	arena  []float32
}

// snapColsInto deep-copies columns into a snapshot slot, cutting every arena
// alias. It reuses the slot's slice capacity, so a recycled snapshot (see
// takeCheckpoint) captures without reallocating.
func snapColsInto(s *colSnap, off []int32, c *colCols) {
	s.off = append(s.off[:0], off...)
	s.kinds = append(s.kinds[:0], c.kinds...)
	s.srcs = append(s.srcs[:0], c.srcs...)
	s.counts = append(s.counts[:0], c.counts...)
	if cap(s.payOff) < len(c.pays)+1 {
		s.payOff = make([]int, len(c.pays)+1)
	} else {
		s.payOff = s.payOff[:len(c.pays)+1]
	}
	total := 0
	for _, p := range c.pays {
		total += len(p)
	}
	if cap(s.arena) < total {
		s.arena = make([]float32, 0, total) // one exact allocation, no append doubling
	} else {
		s.arena = s.arena[:0]
	}
	for i, p := range c.pays {
		s.payOff[i] = len(s.arena)
		s.arena = append(s.arena, p...)
	}
	s.payOff[len(c.pays)] = len(s.arena)
}

// restoreCols rebuilds live columns from a snapshot. Headers are copied
// (the barrier overwrites the live arrays in place); payload views alias
// the snapshot's arena, which is safe because snapshots are never written
// after capture and every future send/recycle targets engine-owned buffers.
func restoreCols(off []int32, c *colCols, s colSnap) {
	copy(off, s.off)
	n := len(s.kinds)
	c.resize(n)
	copy(c.kinds, s.kinds)
	copy(c.srcs, s.srcs)
	copy(c.counts, s.counts)
	for i := 0; i < n; i++ {
		c.pays[i] = s.arena[s.payOff[i]:s.payOff[i+1]]
	}
}
