package pregel

import (
	"strconv"
	"testing"
)

// The pipelined plane must be a pure scheduling change: chunked eager
// flushing and background inbox assembly may move delivery work around, but
// values, per-destination delivery order, and every metric must stay
// bit-identical to the BSP columnar path at any chunk size, pipeline depth,
// worker count, and parallelism setting.

// pipeCfg builds a pipelined columnar config.
func pipeCfg(workers int, combine, parallel bool, chunk int) Config[[3]float32] {
	ops := &ColumnarOps{}
	if combine {
		ops.Combine = colSumCombiner
	}
	return Config[[3]float32]{
		NumWorkers: workers,
		Parallel:   parallel,
		Columnar:   ops,
		Pipelined:  true,
		ChunkSize:  chunk,
	}
}

func runPipelined(t *testing.T, topo Topology, prog VertexProgram[float32, [3]float32], cfg Config[[3]float32]) (*Engine[float32, [3]float32], []float32) {
	t.Helper()
	eng := NewEngine[float32, [3]float32](topo, prog, cfg)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return eng, append([]float32(nil), eng.Values()...)
}

// requireSameMetrics compares the full per-superstep, per-worker metric
// history — not just totals — so a pipelined run that shifted accounting to
// the wrong superstep fails loudly.
func requireSameMetrics(t *testing.T, label string, want, got *Engine[float32, [3]float32]) {
	t.Helper()
	wm, gm := want.Metrics(), got.Metrics()
	if len(wm) != len(gm) {
		t.Fatalf("%s: superstep counts diverge: %d vs %d", label, len(wm), len(gm))
	}
	for s := range wm {
		for w := range wm[s] {
			if wm[s][w] != gm[s][w] {
				t.Fatalf("%s: superstep %d worker %d metrics diverge:\nbsp       %+v\npipelined %+v",
					label, s, w, wm[s][w], gm[s][w])
			}
		}
	}
}

// TestPipelinedMatchesBSP: the tentpole invariant over the per-vertex
// columnar program, at chunk sizes from degenerate (1 vertex) to larger than
// any partition.
func TestPipelinedMatchesBSP(t *testing.T) {
	topo := randomTopology(t, 60, 240, 11)
	for _, workers := range []int{1, 2, 4, 8} {
		for _, combine := range []bool{false, true} {
			for _, parallel := range []bool{false, true} {
				be, bv := runColSum(t, topo, workers, combine, parallel)
				for _, chunk := range []int{1, 3, 16, 1024} {
					pe, pv := runPipelined(t, topo, &colSumProg{rounds: 4}, pipeCfg(workers, combine, parallel, chunk))
					label := labelf(workers, combine, parallel, chunk)
					for v := range bv {
						if bv[v] != pv[v] {
							t.Fatalf("%s: value[%d] bsp %v pipelined %v", label, v, bv[v], pv[v])
						}
					}
					requireSameMetrics(t, label, be, pe)
				}
			}
		}
	}
}

func labelf(workers int, combine, parallel bool, chunk int) string {
	l := "workers=" + strconv.Itoa(workers) + "/chunk=" + strconv.Itoa(chunk)
	if combine {
		l += "/combine"
	}
	if parallel {
		l += "/parallel"
	}
	return l
}

// TestPipelinedFanMatchesBSP: the fan path's shared extents and
// copy-on-merge must survive chunked sealing — including on a star, where a
// hub fans maximally aliased payloads across chunk boundaries.
func TestPipelinedFanMatchesBSP(t *testing.T) {
	for _, topo := range []Topology{
		randomTopology(t, 60, 240, 19),
		starTopologyBuilder(40),
	} {
		for _, workers := range []int{1, 4} {
			for _, combine := range []bool{false, true} {
				ops := &ColumnarOps{}
				if combine {
					ops.Combine = colSumCombiner
				}
				fe := NewEngine[float32, [3]float32](topo, &colFanProg{rounds: 4},
					Config[[3]float32]{NumWorkers: workers, Columnar: ops})
				if err := fe.Run(); err != nil {
					t.Fatal(err)
				}
				for _, chunk := range []int{2, 7} {
					pe, pv := runPipelined(t, topo, &colFanProg{rounds: 4}, pipeCfg(workers, combine, true, chunk))
					for v := range pv {
						if fe.Values()[v] != pv[v] {
							t.Fatalf("workers=%d combine=%v chunk=%d: value[%d] bsp %v pipelined %v",
								workers, combine, chunk, v, fe.Values()[v], pv[v])
						}
					}
					requireSameMetrics(t, labelf(workers, combine, true, chunk), fe, pe)
				}
			}
		}
	}
}

// TestPipelinedBatchedMatchesBSP: the batched plane drives the pipeline
// itself through BatchContext.FlushChunk; results and metrics must match the
// BSP batched run (and, transitively, the per-vertex planes).
func TestPipelinedBatchedMatchesBSP(t *testing.T) {
	topo := randomTopology(t, 60, 240, 11)
	for _, workers := range []int{1, 3, 8} {
		for _, combine := range []bool{false, true} {
			for _, parallel := range []bool{false, true} {
				be, bv := runBatchSum(t, topo, workers, combine, parallel)
				for _, chunk := range []int{4, 32} {
					cfg := pipeCfg(workers, combine, parallel, chunk)
					cfg.Batched = true
					pe, pv := runPipelined(t, topo, newBatchSumProg(4, workers), cfg)
					label := labelf(workers, combine, parallel, chunk)
					for v := range bv {
						if bv[v] != pv[v] {
							t.Fatalf("%s: value[%d] bsp-batched %v pipelined-batched %v", label, v, bv[v], pv[v])
						}
					}
					requireSameMetrics(t, label, be, pe)
				}
			}
		}
	}
}

// TestPipelinedDeliveryOrder: the ownership-order merge must reproduce the
// BSP merge's per-destination delivery order exactly.
func TestPipelinedDeliveryOrder(t *testing.T) {
	topo := ringTopology(t, 13)
	for _, workers := range []int{1, 2, 4, 5} {
		bp := &orderProgCol{}
		be := NewEngine[int, [3]float32](topo, bp, Config[[3]float32]{
			NumWorkers: workers, MaxSupersteps: 4, Columnar: &ColumnarOps{},
		})
		if err := be.Run(); err != nil {
			t.Fatal(err)
		}
		pp := &orderProgCol{}
		pe := NewEngine[int, [3]float32](topo, pp, Config[[3]float32]{
			NumWorkers: workers, MaxSupersteps: 4, Parallel: true,
			Columnar: &ColumnarOps{}, Pipelined: true, ChunkSize: 2, PipelineDepth: 1,
		})
		if err := pe.Run(); err != nil {
			t.Fatal(err)
		}
		if len(bp.got) != len(pp.got) || len(bp.got) != 13*3 {
			t.Fatalf("workers=%d: bsp received %d, pipelined %d, want %d", workers, len(bp.got), len(pp.got), 13*3)
		}
		for i := range bp.got {
			if bp.got[i] != pp.got[i] {
				t.Fatalf("workers=%d: delivery order diverges at %d: bsp %v pipelined %v",
					workers, i, bp.got, pp.got)
			}
		}
	}
}

// TestPipelinedWorkerMail: worker mailboxes assembled from sealed extents
// must arrive with the same contents and sender-major order.
func TestPipelinedWorkerMail(t *testing.T) {
	topo := ringTopology(t, 9)
	prog := &mailProg{sawMail: make([]bool, 3)}
	eng := NewEngine[int, [3]float32](topo, prog, Config[[3]float32]{
		NumWorkers: 3, MaxSupersteps: 4, Columnar: &ColumnarOps{}, Pipelined: true, ChunkSize: 1,
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for w, saw := range prog.sawMail {
		if !saw {
			t.Fatalf("worker %d never saw its mailbox payload", w)
		}
	}
}

// TestPipelinedRequiresColumnar: the pipelined plane has no boxed form.
func TestPipelinedRequiresColumnar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine[float32, [3]float32](ringTopology(t, 4), &boxedSumProg{rounds: 2}, Config[[3]float32]{
		NumWorkers: 2, Pipelined: true,
	})
}

// frontierProg keeps only a tiny moving frontier sending: vertex k sends to
// its out-neighbors at superstep k, everyone else stays halted. Sparse
// supersteps drive the ownership merge's jump-to-lowest-head path (the
// frontier sources sit far apart in the id space).
type frontierProg struct{ rounds int }

func (p *frontierProg) Compute(ctx *Context[float32, [3]float32], _ [][3]float32) {
	if ctx.Superstep > 0 {
		in := ctx.ColumnarInbox()
		for i := 0; i < in.Len(); i++ {
			*ctx.Value += in.Payloads[i][0]
		}
	}
	if ctx.Superstep < p.rounds && int(ctx.ID) == ctx.Superstep*37%97 {
		dsts, _ := ctx.OutEdges()
		pay := [3]float32{float32(ctx.ID) + 1, float32(ctx.ID), 1}
		for _, d := range dsts {
			ctx.SendColumnar(d, 0, ctx.ID, 1, pay[:])
		}
	}
	ctx.VoteToHalt()
}

// TestPipelinedSparseFrontierMatchesBSP: converged-frontier supersteps (a
// handful of messages over a large id space) must still deliver exactly the
// BSP order and values — the sparse-scan jump is an optimization, not a
// semantic change.
func TestPipelinedSparseFrontierMatchesBSP(t *testing.T) {
	topo := randomTopology(t, 400, 1600, 23)
	run := func(cfg Config[[3]float32]) (*Engine[float32, [3]float32], []float32) {
		cfg.MaxSupersteps = 12
		eng := NewEngine[float32, [3]float32](topo, &frontierProg{rounds: 10}, cfg)
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng, append([]float32(nil), eng.Values()...)
	}
	for _, workers := range []int{3, 8} {
		be, bv := run(Config[[3]float32]{NumWorkers: workers, Columnar: &ColumnarOps{}})
		pe, pv := run(Config[[3]float32]{
			NumWorkers: workers, Columnar: &ColumnarOps{}, Pipelined: true, ChunkSize: 16, Parallel: true,
		})
		for v := range bv {
			if bv[v] != pv[v] {
				t.Fatalf("workers=%d: value[%d] bsp %v pipelined %v", workers, v, bv[v], pv[v])
			}
		}
		requireSameMetrics(t, labelf(workers, false, true, 16), be, pe)
	}
}

// badSrcProg violates the SendColumnar src contract: every message claims
// src 0 regardless of the computing vertex.
type badSrcProg struct{}

func (badSrcProg) Compute(ctx *Context[float32, [3]float32], _ [][3]float32) {
	if ctx.Superstep >= 1 {
		ctx.VoteToHalt()
		return
	}
	dsts, _ := ctx.OutEdges()
	for _, d := range dsts {
		ctx.SendColumnar(d, 0, 0, 1, []float32{1})
	}
}

// TestPipelinedSrcContractPanic: a contract-violating program must fail with
// the deterministic stall panic, not lose messages silently.
func TestPipelinedSrcContractPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected the delivery-stall panic")
		}
	}()
	eng := NewEngine[float32, [3]float32](randomTopology(t, 40, 200, 5), badSrcProg{}, Config[[3]float32]{
		NumWorkers: 4, MaxSupersteps: 3, Columnar: &ColumnarOps{}, Pipelined: true,
	})
	_ = eng.Run()
}
