// Package pregel implements a Pregel-like bulk-synchronous graph processing
// engine: the "think-like-a-vertex" substrate InferTurbo's first backend
// runs on. Vertices are hash-partitioned across workers together with their
// out-edges; a computation proceeds in supersteps where every active vertex
// consumes the messages addressed to it, updates its value, and sends
// messages along out-edges for the next superstep.
//
// The engine reproduces the system behaviours the paper's evaluation
// depends on: sender-side combiners (the hook partial-gather uses), global
// aggregators (the hook broadcast uses), deterministic message delivery, and
// per-worker, per-superstep traffic/compute accounting that feeds the
// cluster cost model.
package pregel

import (
	"fmt"
	"sync"

	"inferturbo/internal/graph"
)

// Topology exposes the partition-resident structure a vertex program may
// consult: vertex count and per-vertex out-edges. *graph.Graph is adapted by
// GraphTopology; the shadow-nodes preprocessing produces its own Topology.
type Topology interface {
	NumVertices() int
	OutDegree(v int32) int
	// OutEdges returns destination vertex ids and edge ids for v. Callers
	// must not mutate the returned slices.
	OutEdges(v int32) (dsts, eids []int32)
}

// GraphTopology adapts *graph.Graph to Topology.
type GraphTopology struct{ G *graph.Graph }

// NumVertices implements Topology.
func (t GraphTopology) NumVertices() int { return t.G.NumNodes }

// OutDegree implements Topology.
func (t GraphTopology) OutDegree(v int32) int { return t.G.OutDegree(v) }

// OutEdges implements Topology.
func (t GraphTopology) OutEdges(v int32) (dsts, eids []int32) {
	return t.G.OutNeighbors(v), t.G.OutEdgeIDs(v)
}

// VertexProgram is the user computation. Compute runs once per active vertex
// per superstep; at superstep 0 msgs is empty (the initialization step).
type VertexProgram[V, M any] interface {
	Compute(ctx *Context[V, M], msgs []M)
}

// Config tunes an engine run.
type Config[M any] struct {
	NumWorkers    int
	MaxSupersteps int
	// Combiner, when non-nil, merges messages addressed to the same
	// destination vertex on the sender side before transmission — Pregel's
	// combining, the mechanism behind the paper's partial-gather. Returning
	// false declines the merge (e.g. union-aggregated GAT messages), leaving
	// both messages to be delivered individually.
	Combiner func(a, b M) (M, bool)
	// MessageBytes estimates the wire size of a message for the IO
	// accounting. Defaults to a constant 64 bytes when nil.
	MessageBytes func(M) int
	// Parallel executes workers on goroutines. Delivery order stays
	// deterministic either way.
	Parallel bool
	// CheckpointEvery snapshots engine state every n supersteps (0 = off),
	// enabling recovery after a worker failure. Vertex programs must
	// replace, not mutate, their value contents for snapshots to be sound
	// (both bundled algorithms and the GNN driver do).
	CheckpointEvery int
	// FailAtSuperstep injects one simulated worker crash at the given
	// superstep (> 0; the zero value disables injection): that superstep's
	// work is lost and the engine restores the latest checkpoint and
	// re-executes. Used by the fault tolerance tests.
	FailAtSuperstep int
}

// StepMetrics records one worker's activity during one superstep.
type StepMetrics struct {
	Superstep        int
	Worker           int
	ActiveVertices   int
	MessagesSent     int64
	MessagesReceived int64
	BytesSent        int64
	BytesReceived    int64
	CombinedAway     int64 // messages eliminated by the combiner
	ComputeCost      int64 // user-charged units via Context.AddCost
}

// Context is handed to Compute; it exposes the vertex, its mutable value,
// messaging, aggregators and cost accounting.
type Context[V, M any] struct {
	worker    *worker[V, M]
	ID        int32
	Superstep int
	Value     *V

	halted bool
}

// NumWorkers returns the configured worker count.
func (c *Context[V, M]) NumWorkers() int { return c.worker.engine.cfg.NumWorkers }

// WorkerID returns the worker executing this vertex.
func (c *Context[V, M]) WorkerID() int { return c.worker.id }

// OutEdges returns the vertex's out-edges from the topology.
func (c *Context[V, M]) OutEdges() (dsts, eids []int32) {
	return c.worker.engine.topo.OutEdges(c.ID)
}

// OutDegree returns the vertex's out-degree.
func (c *Context[V, M]) OutDegree() int { return c.worker.engine.topo.OutDegree(c.ID) }

// SendMessage routes m to vertex dst for the next superstep, applying the
// sender-side combiner when configured.
func (c *Context[V, M]) SendMessage(dst int32, m M) {
	c.worker.send(dst, m)
}

// SendToWorker routes m to a synthetic per-worker mailbox (vertex -1-w on
// worker w); used by strategies that address workers rather than vertices.
func (c *Context[V, M]) SendToWorker(w int, m M) {
	c.worker.sendToWorker(w, m)
}

// VoteToHalt deactivates the vertex until a message arrives for it.
func (c *Context[V, M]) VoteToHalt() { c.halted = true }

// WorkerMail returns the messages addressed to this worker (via
// SendToWorker) during the previous superstep. The slice is shared by every
// vertex the worker computes this superstep; callers must not mutate it.
func (c *Context[V, M]) WorkerMail() []M { return c.worker.workerInbox }

// AddCost charges user-defined compute units (e.g. flops) to this worker's
// current superstep, feeding the cluster cost model.
func (c *Context[V, M]) AddCost(units int64) { c.worker.stepCost += units }

// AggregatorPut publishes a key/value into the global aggregator visible to
// every worker in the NEXT superstep. Keys must be unique per superstep.
func (c *Context[V, M]) AggregatorPut(key string, value []float32) {
	c.worker.aggPut(key, value)
}

// AggregatorGet reads a value published during the PREVIOUS superstep.
func (c *Context[V, M]) AggregatorGet(key string) ([]float32, bool) {
	v, ok := c.worker.engine.aggPrev[key]
	return v, ok
}

// pending is a sender-side buffer of messages for one destination worker.
type pending[M any] struct {
	dsts []int32
	msgs []M
	// index into dsts/msgs per destination vertex while combining
	byDst map[int32]int
}

type worker[V, M any] struct {
	engine *Engine[V, M]
	id     int
	verts  []int32 // owned vertex ids

	out []pending[M] // one per destination worker

	workerInbox []M // messages sent via SendToWorker

	stepCost int64
	aggLocal map[string][]float32
}

func (w *worker[V, M]) send(dst int32, m M) {
	dw := w.engine.part.WorkerFor(dst)
	p := &w.out[dw]
	if w.engine.cfg.Combiner != nil {
		if i, ok := p.byDst[dst]; ok {
			if merged, ok := w.engine.cfg.Combiner(p.msgs[i], m); ok {
				p.msgs[i] = merged
				w.engine.metrics[len(w.engine.metrics)-1][w.id].CombinedAway++
				return
			}
		} else {
			p.byDst[dst] = len(p.dsts)
		}
	}
	p.dsts = append(p.dsts, dst)
	p.msgs = append(p.msgs, m)
}

func (w *worker[V, M]) sendToWorker(dw int, m M) {
	p := &w.out[dw]
	p.dsts = append(p.dsts, -1)
	p.msgs = append(p.msgs, m)
}

func (w *worker[V, M]) aggPut(key string, value []float32) {
	if w.aggLocal == nil {
		w.aggLocal = map[string][]float32{}
	}
	w.aggLocal[key] = value
}

// Engine executes a vertex program over a topology.
type Engine[V, M any] struct {
	topo Topology
	prog VertexProgram[V, M]
	cfg  Config[M]
	part *graph.Partitioner

	values  []V
	active  []bool
	workers []*worker[V, M]

	// inbox[v] holds messages for vertex v in the upcoming superstep;
	// workerInbox[w] holds worker-addressed messages.
	inbox       [][]M
	workerInbox [][]M

	aggPrev map[string][]float32

	metrics    [][]StepMetrics // one entry per executed superstep (replays add entries)
	supersteps int

	checkpoint *snapshot[V, M]
	recoveries int
	failArmed  bool
}

// snapshot is a recovery point: everything the next superstep reads.
type snapshot[V, M any] struct {
	step        int
	values      []V
	active      []bool
	inbox       [][]M
	workerInbox [][]M
	aggPrev     map[string][]float32
}

// NewEngine constructs an engine; Run executes it.
func NewEngine[V, M any](topo Topology, prog VertexProgram[V, M], cfg Config[M]) *Engine[V, M] {
	if cfg.NumWorkers <= 0 {
		panic(fmt.Sprintf("pregel: invalid worker count %d", cfg.NumWorkers))
	}
	if cfg.MaxSupersteps <= 0 {
		cfg.MaxSupersteps = 64
	}
	if cfg.MessageBytes == nil {
		cfg.MessageBytes = func(M) int { return 64 }
	}
	e := &Engine[V, M]{
		topo: topo,
		prog: prog,
		cfg:  cfg,
		part: graph.NewPartitioner(cfg.NumWorkers),
	}
	n := topo.NumVertices()
	e.values = make([]V, n)
	e.active = make([]bool, n)
	for i := range e.active {
		e.active[i] = true
	}
	e.inbox = make([][]M, n)
	e.workerInbox = make([][]M, cfg.NumWorkers)
	for w := 0; w < cfg.NumWorkers; w++ {
		wk := &worker[V, M]{engine: e, id: w, verts: e.part.NodesFor(w, n)}
		e.workers = append(e.workers, wk)
	}
	return e
}

// Run executes supersteps until every vertex has halted with no messages in
// flight, or MaxSupersteps is reached. When checkpointing is on and a
// failure is injected, the engine rolls back to the latest checkpoint and
// re-executes — results are identical to a failure-free run because every
// superstep is deterministic.
func (e *Engine[V, M]) Run() error {
	e.failArmed = failConfigured(e.cfg)
	if e.cfg.CheckpointEvery > 0 {
		e.takeCheckpoint(0) // superstep-0 inputs are always recoverable
	}
	for step := 0; step < e.cfg.MaxSupersteps; step++ {
		anyActive := false
		for v := range e.active {
			if e.active[v] || len(e.inbox[v]) > 0 {
				anyActive = true
				break
			}
		}
		anyWorkerMail := false
		for _, ms := range e.workerInbox {
			if len(ms) > 0 {
				anyWorkerMail = true
			}
		}
		if !anyActive && !anyWorkerMail {
			return nil
		}

		if e.failArmed && step == e.cfg.FailAtSuperstep {
			e.failArmed = false
			if e.checkpoint == nil {
				return fmt.Errorf("pregel: worker failure at superstep %d with no checkpoint", step)
			}
			e.restoreCheckpoint()
			e.recoveries++
			step = e.checkpoint.step - 1 // loop increment re-enters at the checkpoint
			continue
		}

		e.runSuperstep(step)
		if e.cfg.CheckpointEvery > 0 && (step+1)%e.cfg.CheckpointEvery == 0 {
			e.takeCheckpoint(step + 1)
		}
	}
	// Reaching the cap is normal for fixed-round programs (k-layer GNNs);
	// programs that expect convergence can inspect Supersteps().
	return nil
}

// failConfigured reports whether a failure injection is requested; the
// Config zero value (FailAtSuperstep == 0) means no failure, so existing
// configurations are unaffected.
func failConfigured[M any](cfg Config[M]) bool { return cfg.FailAtSuperstep > 0 }

// takeCheckpoint snapshots everything the upcoming superstep consumes.
func (e *Engine[V, M]) takeCheckpoint(step int) {
	cp := &snapshot[V, M]{step: step, aggPrev: e.aggPrev}
	cp.values = append([]V(nil), e.values...)
	cp.active = append([]bool(nil), e.active...)
	cp.inbox = make([][]M, len(e.inbox))
	for v := range e.inbox {
		cp.inbox[v] = append([]M(nil), e.inbox[v]...)
	}
	cp.workerInbox = make([][]M, len(e.workerInbox))
	for w := range e.workerInbox {
		cp.workerInbox[w] = append([]M(nil), e.workerInbox[w]...)
	}
	e.checkpoint = cp
}

// restoreCheckpoint rolls engine state back to the latest checkpoint,
// discarding the metrics of the lost supersteps.
func (e *Engine[V, M]) restoreCheckpoint() {
	cp := e.checkpoint
	copy(e.values, cp.values)
	copy(e.active, cp.active)
	for v := range e.inbox {
		e.inbox[v] = append([]M(nil), cp.inbox[v]...)
	}
	for w := range e.workerInbox {
		e.workerInbox[w] = append([]M(nil), cp.workerInbox[w]...)
	}
	e.aggPrev = cp.aggPrev
	if len(e.metrics) > cp.step {
		e.metrics = e.metrics[:cp.step]
	}
}

// Recoveries reports how many checkpoint recoveries the run performed.
func (e *Engine[V, M]) Recoveries() int { return e.recoveries }

func (e *Engine[V, M]) runSuperstep(step int) {
	e.supersteps = step + 1
	stepMetrics := make([]StepMetrics, e.cfg.NumWorkers)
	for w := range stepMetrics {
		stepMetrics[w] = StepMetrics{Superstep: step, Worker: w}
	}
	e.metrics = append(e.metrics, stepMetrics)

	for _, w := range e.workers {
		w.out = make([]pending[M], e.cfg.NumWorkers)
		if e.cfg.Combiner != nil {
			for i := range w.out {
				w.out[i].byDst = map[int32]int{}
			}
		}
		w.stepCost = 0
		w.aggLocal = nil
		w.workerInbox = e.workerInbox[w.id]
	}
	e.workerInbox = make([][]M, e.cfg.NumWorkers)

	runWorker := func(w *worker[V, M]) {
		m := &e.metrics[len(e.metrics)-1][w.id]
		for _, ms := range w.workerInbox {
			m.MessagesReceived++
			m.BytesReceived += int64(e.cfg.MessageBytes(ms))
		}
		for _, v := range w.verts {
			msgs := e.inbox[v]
			if !e.active[v] && len(msgs) == 0 {
				continue
			}
			m.ActiveVertices++
			m.MessagesReceived += int64(len(msgs))
			for _, one := range msgs {
				m.BytesReceived += int64(e.cfg.MessageBytes(one))
			}
			ctx := &Context[V, M]{worker: w, ID: v, Superstep: step, Value: &e.values[v]}
			e.prog.Compute(ctx, msgs)
			e.active[v] = !ctx.halted
		}
		m.ComputeCost = w.stepCost
	}

	if e.cfg.Parallel {
		var wg sync.WaitGroup
		for _, w := range e.workers {
			wg.Add(1)
			go func(w *worker[V, M]) {
				defer wg.Done()
				runWorker(w)
			}(w)
		}
		wg.Wait()
	} else {
		for _, w := range e.workers {
			runWorker(w)
		}
	}

	// Barrier: clear inboxes, deliver pending messages deterministically in
	// sender-worker order, merge aggregators.
	for v := range e.inbox {
		e.inbox[v] = nil
	}
	agg := map[string][]float32{}
	for _, w := range e.workers {
		m := &e.metrics[len(e.metrics)-1][w.id]
		for dw := range w.out {
			p := &w.out[dw]
			for i, dst := range p.dsts {
				bytes := int64(e.cfg.MessageBytes(p.msgs[i]))
				m.MessagesSent++
				m.BytesSent += bytes
				if dst < 0 {
					e.workerInbox[dw] = append(e.workerInbox[dw], p.msgs[i])
					continue
				}
				e.inbox[dst] = append(e.inbox[dst], p.msgs[i])
				// A message reactivates its destination.
				e.active[dst] = e.active[dst] || true
			}
		}
		for k, v := range w.aggLocal {
			agg[k] = v
		}
		w.workerInbox = nil
	}
	e.aggPrev = agg
}

// VertexValue returns a pointer to v's value after Run.
func (e *Engine[V, M]) VertexValue(v int32) *V { return &e.values[v] }

// Values returns the full value slice (indexed by vertex id).
func (e *Engine[V, M]) Values() []V { return e.values }

// Supersteps reports how many supersteps executed.
func (e *Engine[V, M]) Supersteps() int { return e.supersteps }

// Metrics returns per-superstep, per-worker metrics.
func (e *Engine[V, M]) Metrics() [][]StepMetrics { return e.metrics }

// TotalMetrics sums the per-step metrics into one record per worker.
func (e *Engine[V, M]) TotalMetrics() []StepMetrics {
	out := make([]StepMetrics, e.cfg.NumWorkers)
	for w := range out {
		out[w].Worker = w
	}
	for _, step := range e.metrics {
		for w, m := range step {
			out[w].ActiveVertices += m.ActiveVertices
			out[w].MessagesSent += m.MessagesSent
			out[w].MessagesReceived += m.MessagesReceived
			out[w].BytesSent += m.BytesSent
			out[w].BytesReceived += m.BytesReceived
			out[w].CombinedAway += m.CombinedAway
			out[w].ComputeCost += m.ComputeCost
		}
	}
	return out
}
