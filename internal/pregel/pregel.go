// Package pregel implements a Pregel-like bulk-synchronous graph processing
// engine: the "think-like-a-vertex" substrate InferTurbo's first backend
// runs on. Vertices are hash-partitioned across workers together with their
// out-edges; a computation proceeds in supersteps where every active vertex
// consumes the messages addressed to it, updates its value, and sends
// messages along out-edges for the next superstep.
//
// The engine reproduces the system behaviours the paper's evaluation
// depends on: sender-side combiners (the hook partial-gather uses), global
// aggregators (the hook broadcast uses), deterministic message delivery, and
// per-worker, per-superstep traffic/compute accounting that feeds the
// cluster cost model.
//
// Messages travel over one of two planes. The boxed plane carries M values
// (the classic Pregel API: SendMessage / Compute's msgs slice). The
// columnar plane (Config.Columnar, see columnar.go) carries fixed-header
// messages with payloads packed into recycled []float32 arenas — the
// allocation-free fast path the GNN driver uses. Both planes share the same
// barrier: a counting sort builds per-receiver CSR inboxes, with delivery
// parallelized across receiving workers. Each receiver owns a disjoint
// vertex range and merges its sender buffers by ascending source vertex id
// — well-defined because workers compute their owned vertices in id order,
// making every sender buffer source-sorted, and because a source is owned
// by exactly one worker. Per-destination message order is therefore a
// function of the topology and the program alone: identical at any worker
// count, under any vertex placement (Config.Partitioner), parallel or not —
// which is what makes results bit-identical across all of those axes.
//
// Vertex placement defaults to mod-N hashing and is pluggable through
// Config.Partitioner; the engine converts whatever placement it is given
// into dense workerOf/localIdx tables once, so the per-message hot paths
// never depend on the strategy.
//
// Compute likewise runs on one of two planes. The classic per-vertex plane
// invokes Compute once per active vertex. The batched plane (Config.Batched,
// columnar only) invokes ComputeBatch once per worker per superstep with the
// worker's whole owned range and its full CSR inbox, so partition-centric
// programs can replace millions of tiny per-vertex operations with a few
// dense kernel calls; see BatchProgram for the equivalence contract.
//
// Superstep execution itself is strict BSP by default; Config.Pipelined
// (columnar only) overlaps each superstep's scatter/delivery with its
// compute through chunked eager flushing and background inbox assembly,
// shrinking the barrier to a drain plus the source merge — with results,
// delivery order and IO accounting bit-identical to the BSP path. See
// pipeline.go.
package pregel

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"inferturbo/internal/checkpoint"
	"inferturbo/internal/graph"
)

// Topology exposes the partition-resident structure a vertex program may
// consult: vertex count and per-vertex out-edges. *graph.Graph is adapted by
// GraphTopology; the shadow-nodes preprocessing produces its own Topology.
type Topology interface {
	NumVertices() int
	OutDegree(v int32) int
	// OutEdges returns destination vertex ids and edge ids for v. Callers
	// must not mutate the returned slices.
	OutEdges(v int32) (dsts, eids []int32)
}

// GraphTopology adapts *graph.Graph to Topology.
type GraphTopology struct{ G *graph.Graph }

// NumVertices implements Topology.
func (t GraphTopology) NumVertices() int { return t.G.NumNodes }

// OutDegree implements Topology.
func (t GraphTopology) OutDegree(v int32) int { return t.G.OutDegree(v) }

// OutEdges implements Topology.
func (t GraphTopology) OutEdges(v int32) (dsts, eids []int32) {
	return t.G.OutNeighbors(v), t.G.OutEdgeIDs(v)
}

// VertexProgram is the user computation. Compute runs once per active vertex
// per superstep; at superstep 0 msgs is empty (the initialization step).
// msgs (and the *Context) are only valid for the duration of the call: the
// engine recycles message storage across supersteps, so programs that need a
// message beyond their Compute invocation must copy it.
type VertexProgram[V, M any] interface {
	Compute(ctx *Context[V, M], msgs []M)
}

// BatchProgram is the partition-centric compute plane: instead of one
// Compute call per vertex, the engine invokes ComputeBatch once per worker
// per superstep with the worker's whole owned-vertex range and its full CSR
// columnar inbox. Programs that batch their per-vertex work into dense
// kernel calls (the GNN driver's one MatMul per layer per partition) avoid
// the per-vertex dispatch and allocation the classic API forces. Requires
// the columnar message plane (Config.Columnar) and Config.Batched.
//
// Engine semantics are unchanged: the engine still does the activity
// accounting per vertex (a vertex is computed this superstep iff it is
// active or has inbox messages), computed vertices stay active afterwards
// unless halted through the BatchContext, and message delivery order is the
// same CSR order the per-vertex plane observes — so a batch program that
// folds each vertex's inbox range in order reproduces the per-vertex plane
// bit for bit.
type BatchProgram[V, M any] interface {
	ComputeBatch(ctx *BatchContext[V, M])
}

// ProgramStater is implemented by programs that keep superstep-to-superstep
// state outside the engine's vertex values — batch programs typically own
// per-worker state slabs. When checkpointing is enabled the engine snapshots
// that state alongside its own: SnapshotProgState must return a deep copy of
// everything the next superstep reads (it is never written after capture),
// and RestoreProgState must reinstall such a snapshot, after which the
// program re-executes from the checkpointed superstep.
type ProgramStater interface {
	SnapshotProgState() any
	RestoreProgState(snap any)
}

// Config tunes an engine run.
type Config[M any] struct {
	NumWorkers    int
	MaxSupersteps int
	// Partitioner places vertices on workers. nil selects the mod-N hash
	// over NumWorkers; a non-nil value must report the same worker count.
	// The barrier's source-merged delivery keeps every destination's inbox
	// order placement-independent, so for combiner-free programs placement
	// changes traffic only, never results; with a combiner configured,
	// merges group by sending worker, so placement additionally regroups
	// the combiner's folds (each configuration stays deterministic).
	Partitioner graph.Partitioner
	// Combiner, when non-nil, merges messages addressed to the same
	// destination vertex on the sender side before transmission — Pregel's
	// combining, the mechanism behind the paper's partial-gather. Returning
	// false declines the merge (e.g. union-aggregated GAT messages), leaving
	// both messages to be delivered individually. Ignored in columnar mode
	// (use Columnar.Combine).
	Combiner func(a, b M) (M, bool)
	// MessageBytes estimates the wire size of a message for the IO
	// accounting. Defaults to a constant 64 bytes when nil. Ignored in
	// columnar mode (use Columnar.Bytes).
	MessageBytes func(M) int
	// Columnar, when non-nil, switches the engine onto the columnar message
	// plane: programs send payload rows instead of boxed M values and read
	// them back as zero-copy Batch views. See ColumnarOps.
	Columnar *ColumnarOps
	// Batched invokes the program's ComputeBatch once per worker per
	// superstep instead of Compute once per vertex. Requires the columnar
	// plane and a program implementing BatchProgram.
	Batched bool
	// Pipelined overlaps each superstep's scatter/delivery with its compute:
	// workers seal their send buffers into fixed-size chunk extents and
	// eagerly flush them to the destination workers, whose background inbox
	// assembly (counting-sort bucketing plus send/receive accounting) runs
	// while other chunks are still computing; the barrier shrinks to draining
	// in-flight extents plus the ascending-source merge over the pre-bucketed
	// runs (see pipeline.go). Results, delivery order and IO stats are
	// bit-identical to the BSP path at any chunk size, pipeline depth and
	// worker count. Requires the columnar plane, and requires programs to
	// follow the SendColumnar src contract (src = the computing vertex's id —
	// every bundled program and the GNN driver do); a violating program fails
	// with a deterministic panic at the delivery barrier.
	Pipelined bool
	// ChunkSize is the pipelined plane's chunk granularity in owned vertices:
	// the per-vertex plane seals automatically every ChunkSize vertices, and
	// batch programs are told this cadence through BatchContext.ChunkSize.
	// 0 selects the default (64). Ignored unless Pipelined.
	ChunkSize int
	// PipelineDepth bounds each receiver's in-flight sealed-extent queue
	// under Parallel execution: a sender that runs more than PipelineDepth
	// extents ahead of a receiver's assembly blocks until the assembler
	// catches up. 0 selects the default (32). Ignored unless Pipelined; in
	// serial runs assembly happens inline at the flush and the queue is
	// unused.
	PipelineDepth int
	// Parallel executes workers on goroutines — both the compute phase and
	// the barrier's delivery (receivers own disjoint inboxes). Delivery
	// order stays deterministic either way.
	Parallel bool
	// CheckpointEvery snapshots engine state every n supersteps (0 = off),
	// enabling recovery after a worker failure. Vertex programs must
	// replace, not mutate, their value contents for snapshots to be sound
	// (both bundled algorithms and the GNN driver do). In-flight message
	// payloads need no such discipline: snapshots deep-copy the live arenas.
	CheckpointEvery int
	// FailAtSuperstep injects one simulated worker crash at the given
	// superstep (> 0; the zero value disables injection): that superstep's
	// work is lost and the engine restores the latest checkpoint and
	// re-executes. Kept for back-compat — it folds into the Faults plan as a
	// FaultBeforeSuperstep entry; use Faults to target superstep 0 (which
	// this field's zero-value overload cannot express) or any other fault
	// point.
	FailAtSuperstep int
	// Faults schedules deterministic crash injections: multiple crashes per
	// run, at any superstep lifecycle point (before compute, mid-pipeline,
	// at the barrier, during checkpoint capture). See FaultPlan. nil injects
	// nothing.
	Faults *FaultPlan
	// PipelineWatchdog bounds how long a pipelined sender blocks on a
	// backpressured inbox assembler before degrading that receiver to
	// inline assembly for the rest of the superstep (results unchanged —
	// assembly is commutative bucketing; see pipeline.go). 0 selects the
	// default (30s); negative disables the watchdog. Ignored unless
	// Pipelined.
	PipelineWatchdog time.Duration
	// SuperstepHook, when non-nil, runs on the engine goroutine at the start
	// of every superstep, after all previously enqueued durable checkpoints
	// have been flushed to the sink. The flush makes hook-driven process
	// kills (cmd/infer -die-at) deterministic about which epochs survive.
	SuperstepHook func(step int)
	// Cancel, when non-nil, is polled on the engine goroutine at the start
	// of every superstep; a non-nil return aborts the run with that error
	// before any further compute. Superstep granularity is the engine's
	// cancellation unit: an in-flight superstep always completes, so an
	// aborted run leaves no partially delivered state behind. The serving
	// layer uses this to propagate request deadlines into the compute plane.
	Cancel func() error
	// Frontier, when non-nil, selects the initially active vertex set
	// instead of the default "every vertex active": only the listed vertices
	// compute at superstep 0. Activation then spreads through messaging as
	// always — delivery marks receivers active for the next superstep — so a
	// frontier-seeded run floods outward from its seeds while untouched
	// vertices never compute. An empty (non-nil) frontier terminates at
	// superstep 0. The incremental GNN drivers seed this with the dirty set
	// of a graph delta. Out-of-range ids panic at construction.
	Frontier []int32
}

// StepMetrics records one worker's activity during one superstep.
type StepMetrics struct {
	Superstep        int
	Worker           int
	ActiveVertices   int
	MessagesSent     int64
	MessagesReceived int64
	BytesSent        int64
	BytesReceived    int64
	// RemoteMessagesSent / RemoteBytesSent count only the traffic addressed
	// to other workers — the part a placement strategy can eliminate; the
	// Sent totals include worker-local delivery.
	RemoteMessagesSent int64
	RemoteBytesSent    int64
	CombinedAway       int64 // messages eliminated by the combiner
	ComputeCost        int64 // user-charged units via Context.AddCost
	// CheckpointNs is the wall time of the in-memory snapshot taken after
	// this superstep, charged to worker 0's row (capture blocks the whole
	// engine; durable persistence overlaps compute and is reported in
	// CheckpointStats instead). Zero on non-checkpoint supersteps.
	CheckpointNs int64
}

// Context is handed to Compute; it exposes the vertex, its mutable value,
// messaging, aggregators and cost accounting. The engine reuses one Context
// per worker across vertices, so programs must not retain it past Compute.
type Context[V, M any] struct {
	worker    *worker[V, M]
	ID        int32
	Superstep int
	Value     *V

	inLo, inHi int32 // columnar inbox bounds for this vertex
	halted     bool
}

// NumWorkers returns the configured worker count.
func (c *Context[V, M]) NumWorkers() int { return c.worker.engine.cfg.NumWorkers }

// WorkerID returns the worker executing this vertex.
func (c *Context[V, M]) WorkerID() int { return c.worker.id }

// OutEdges returns the vertex's out-edges from the topology.
func (c *Context[V, M]) OutEdges() (dsts, eids []int32) {
	return c.worker.engine.topo.OutEdges(c.ID)
}

// OutDegree returns the vertex's out-degree.
func (c *Context[V, M]) OutDegree() int { return c.worker.engine.topo.OutDegree(c.ID) }

// SendMessage routes m to vertex dst for the next superstep, applying the
// sender-side combiner when configured. Boxed plane only.
func (c *Context[V, M]) SendMessage(dst int32, m M) {
	c.worker.send(c.ID, dst, m)
}

// SendToWorker routes m to a synthetic per-worker mailbox (vertex -1-w on
// worker w); used by strategies that address workers rather than vertices.
// Boxed plane only.
func (c *Context[V, M]) SendToWorker(w int, m M) {
	c.worker.sendToWorker(w, m)
}

// SendColumnar routes a columnar message to vertex dst for the next
// superstep: kind is an opaque tag (also the combiner's merge gate), src and
// count ride in header columns, and payload is copied into the send arena —
// the caller's slice is not retained and may be reused immediately.
// Columnar plane only.
//
// src is also the barrier's delivery-order key: pass the computing vertex's
// id (ctx.ID), as every bundled program does. The engine then delivers each
// destination's messages in globally ascending src order — independent of
// vertex placement and worker count. A program that sends under arbitrary
// src values still gets deterministic delivery, but the order degrades to a
// placement-dependent one (sender-worker-id major).
func (c *Context[V, M]) SendColumnar(dst int32, kind uint8, src, count int32, payload []float32) {
	c.worker.sendColumnar(dst, kind, src, count, payload)
}

// SendColumnarFan routes one identical payload to every destination in
// dsts, in order, copying it into each destination-worker arena at most
// once — results are identical to len(dsts) SendColumnar calls; only the
// arena bytes moved differ. The natural send for broadcast-safe scatters.
// Columnar plane only. src carries the same delivery-order contract as
// SendColumnar: pass the computing vertex's id.
func (c *Context[V, M]) SendColumnarFan(dsts []int32, kind uint8, src, count int32, payload []float32) {
	c.worker.sendColumnarFan(dsts, kind, src, count, payload)
}

// SendColumnarToWorker routes a columnar message to worker w's mailbox
// (read back via ColumnarWorkerMail). Columnar plane only.
func (c *Context[V, M]) SendColumnarToWorker(w int, kind uint8, src, count int32, payload []float32) {
	c.worker.sendColumnarToWorker(w, kind, src, count, payload)
}

// ColumnarInbox returns the columnar messages addressed to this vertex for
// the current superstep. The view (including payloads) is only valid during
// Compute. Columnar plane only.
func (c *Context[V, M]) ColumnarInbox() Batch {
	e := c.worker.engine
	if !e.columnar {
		panic("pregel: ColumnarInbox on the boxed plane")
	}
	return e.colIn[c.worker.id].cols.batch(c.inLo, c.inHi)
}

// ColumnarWorkerMail returns the columnar messages addressed to this worker
// (via SendColumnarToWorker) during the previous superstep. The view is
// shared by every vertex the worker computes this superstep; callers must
// not mutate it. Columnar plane only.
func (c *Context[V, M]) ColumnarWorkerMail() Batch {
	e := c.worker.engine
	if !e.columnar {
		panic("pregel: ColumnarWorkerMail on the boxed plane")
	}
	m := &e.colMail[c.worker.id]
	return m.batch(0, int32(len(m.kinds)))
}

// ExecSeq returns the count of supersteps the engine has executed so far,
// including checkpoint-recovery replays. Unlike Superstep it never repeats,
// so it is the correct key for any per-superstep cache of zero-copy views:
// a replayed superstep carries the same Superstep number as its original
// execution but rebuilt inboxes and mailboxes.
func (c *Context[V, M]) ExecSeq() int { return c.worker.engine.executed }

// VoteToHalt deactivates the vertex until a message arrives for it.
func (c *Context[V, M]) VoteToHalt() { c.halted = true }

// WorkerMail returns the messages addressed to this worker (via
// SendToWorker) during the previous superstep. The slice is shared by every
// vertex the worker computes this superstep; callers must not mutate it.
// Boxed plane only.
func (c *Context[V, M]) WorkerMail() []M { return c.worker.engine.boxMail[c.worker.id] }

// AddCost charges user-defined compute units (e.g. flops) to this worker's
// current superstep, feeding the cluster cost model.
func (c *Context[V, M]) AddCost(units int64) { c.worker.stepCost += units }

// AggregatorPut publishes a key/value into the global aggregator visible to
// every worker in the NEXT superstep. Keys must be unique per superstep.
func (c *Context[V, M]) AggregatorPut(key string, value []float32) {
	c.worker.aggPut(key, value)
}

// AggregatorGet reads a value published during the PREVIOUS superstep.
func (c *Context[V, M]) AggregatorGet(key string) ([]float32, bool) {
	v, ok := c.worker.engine.aggPrev[key]
	return v, ok
}

// BatchContext is handed to ComputeBatch: one call sees the worker's whole
// partition for the superstep. Like Context it is only valid for the
// duration of the call, and every view it returns (owned ids, inbox
// columns, mailboxes) is engine-owned and must not be mutated or retained.
type BatchContext[V, M any] struct {
	worker    *worker[V, M]
	Superstep int
}

// NumWorkers returns the configured worker count.
func (c *BatchContext[V, M]) NumWorkers() int { return c.worker.engine.cfg.NumWorkers }

// WorkerID returns the worker executing this batch.
func (c *BatchContext[V, M]) WorkerID() int { return c.worker.id }

// Owned returns the worker's owned vertex ids in local-index order: vertex
// Owned()[li] has local index li, the row index of every per-partition
// structure (the inbox CSR, a program's state slabs).
func (c *BatchContext[V, M]) Owned() []int32 { return c.worker.verts }

// Computed reports whether local vertex li computes this superstep — it is
// active or has inbox messages — i.e. whether the per-vertex plane would
// have invoked Compute for it. Programs whose vertices never halt mid-run
// (the GNN driver) can ignore this and process the full range.
func (c *BatchContext[V, M]) Computed(li int) bool { return c.worker.computed[li] }

// Value returns vertex v's engine-resident value. Batch programs that keep
// their state in their own slabs (see ProgramStater) typically never touch
// it.
func (c *BatchContext[V, M]) Value(v int32) *V { return &c.worker.engine.values[v] }

// InboxCSR returns the worker's full columnar inbox for the superstep as a
// CSR view: local vertex li's messages are msgs[off[li]:off[li+1]], in the
// same per-destination delivery order the per-vertex plane observes. The
// view is only valid during ComputeBatch.
func (c *BatchContext[V, M]) InboxCSR() (off []int32, msgs Batch) {
	in := &c.worker.engine.colIn[c.worker.id]
	off = in.off
	return off, in.cols.batch(0, off[len(off)-1])
}

// ColumnarWorkerMail returns the columnar messages addressed to this worker
// during the previous superstep; see Context.ColumnarWorkerMail.
func (c *BatchContext[V, M]) ColumnarWorkerMail() Batch {
	m := &c.worker.engine.colMail[c.worker.id]
	return m.batch(0, int32(len(m.kinds)))
}

// OutEdges returns vertex v's out-edges from the topology.
func (c *BatchContext[V, M]) OutEdges(v int32) (dsts, eids []int32) {
	return c.worker.engine.topo.OutEdges(v)
}

// OutDegree returns vertex v's out-degree.
func (c *BatchContext[V, M]) OutDegree(v int32) int { return c.worker.engine.topo.OutDegree(v) }

// SendColumnar routes a columnar message to vertex dst for the next
// superstep; see Context.SendColumnar. Sends issued in owned-vertex order
// produce the same send buffers — and therefore the same delivery order and
// combiner merges — as the per-vertex plane.
func (c *BatchContext[V, M]) SendColumnar(dst int32, kind uint8, src, count int32, payload []float32) {
	c.worker.sendColumnar(dst, kind, src, count, payload)
}

// SendColumnarFan routes one identical payload along every dst with at most
// one payload copy per destination-worker arena; see Context.SendColumnarFan.
func (c *BatchContext[V, M]) SendColumnarFan(dsts []int32, kind uint8, src, count int32, payload []float32) {
	c.worker.sendColumnarFan(dsts, kind, src, count, payload)
}

// SendColumnarToWorker routes a columnar message to worker w's mailbox; see
// Context.SendColumnarToWorker.
func (c *BatchContext[V, M]) SendColumnarToWorker(w int, kind uint8, src, count int32, payload []float32) {
	c.worker.sendColumnarToWorker(w, kind, src, count, payload)
}

// ChunkSize reports the pipelined plane's chunk granularity in owned
// vertices, or 0 when the engine is not pipelined. Batch programs drive the
// pipeline themselves: scatter loops should call FlushChunk every ChunkSize
// owned vertices (the cadence the per-vertex plane seals at automatically).
func (c *BatchContext[V, M]) ChunkSize() int {
	if !c.worker.engine.pipelined {
		return 0
	}
	return c.worker.engine.chunkSize
}

// FlushChunk seals everything this worker has sent since the previous seal
// and eagerly flushes the extents to the destination workers' background
// assemblers. A no-op outside the pipelined plane. Calling it at any cadence
// (or never) only changes when delivery work happens, never results: sealed
// extents are concatenated in send order at the barrier.
func (c *BatchContext[V, M]) FlushChunk() { c.worker.sealChunk() }

// ExecSeq returns the engine's executed-superstep count; see
// Context.ExecSeq.
func (c *BatchContext[V, M]) ExecSeq() int { return c.worker.engine.executed }

// AddCost charges user-defined compute units to this worker's superstep.
func (c *BatchContext[V, M]) AddCost(units int64) { c.worker.stepCost += units }

// Halt deactivates local vertex li until a message arrives for it — the
// batched form of Context.VoteToHalt. Only computed vertices are affected.
func (c *BatchContext[V, M]) Halt(li int) { c.worker.halted[li] = true }

// HaltAll deactivates every computed vertex of the partition.
func (c *BatchContext[V, M]) HaltAll() {
	for i := range c.worker.halted {
		c.worker.halted[i] = true
	}
}

// AggregatorPut publishes a key/value into the global aggregator visible in
// the next superstep; see Context.AggregatorPut.
func (c *BatchContext[V, M]) AggregatorPut(key string, value []float32) {
	c.worker.aggPut(key, value)
}

// AggregatorGet reads a value published during the previous superstep.
func (c *BatchContext[V, M]) AggregatorGet(key string) ([]float32, bool) {
	v, ok := c.worker.engine.aggPrev[key]
	return v, ok
}

// pending is a boxed sender-side buffer of messages for one destination
// worker, recycled across supersteps by truncation. srcs[i] records the
// sending vertex of message i (the vertex that created the slot, for
// combined messages; -1 for worker mail) — the key the barrier merges
// sender buffers by.
type pending[M any] struct {
	dsts []int32
	srcs []int32
	msgs []M
}

// boxInbox is one receiver's CSR inbox on the boxed plane: vertex with local
// index li holds msgs[off[li] : off[li+1]].
type boxInbox[M any] struct {
	off  []int32 // len ownedCount+1
	next []int32 // scatter cursors, len ownedCount
	msgs []M
}

type worker[V, M any] struct {
	engine *Engine[V, M]
	id     int
	verts  []int32 // owned vertex ids

	out []pending[M] // boxed send buffers, one per destination worker

	// Dense sender-side combiner index replacing the per-superstep
	// map[int32]int: lastSeen[dst] is the buffer index of the first message
	// this worker sent to dst in the current superstep, valid iff
	// seenStamp[dst] == stamp. stamp increments each superstep, so no
	// clearing pass is needed. Allocated only when a combiner is configured.
	// Footprint is a deliberate trade: 8 bytes x NumVertices per worker
	// buys branch-free O(1) lookups on the per-message hot path; in the
	// distributed deployment this simulates, each worker is a separate
	// machine and the seed's maps cost more than the dense array there.
	lastSeen  []int32
	seenStamp []uint32
	stamp     uint32

	// Pipelined-plane sender state (allocated only when Config.Pipelined):
	// sealedRows[r] is the row watermark of this sender's buffer for
	// receiver r — rows below it have been sealed into flushed extents.
	// wdTimer is the sender's reusable watchdog timer for backpressured
	// flushes (see flushExtent), allocated on first use.
	sealedRows []int
	wdTimer    *time.Timer

	// Batched-plane scratch (len ownedCount, allocated only when
	// Config.Batched): computed[li] records whether local vertex li computes
	// this superstep; halted[li] collects BatchContext.Halt votes.
	computed []bool
	halted   []bool

	// Fan-out scratch (len NumWorkers, columnar only): fanOff[dw] is the
	// arena offset of the payload this fan already copied into destination
	// worker dw's buffer, or -1.
	fanOff []int64

	m        *StepMetrics // this worker's metrics entry for the current superstep
	stepCost int64
	aggLocal map[string][]float32
}

func (w *worker[V, M]) send(src, dst int32, m M) {
	e := w.engine
	if e.columnar {
		panic("pregel: SendMessage on the columnar plane")
	}
	dw := e.workerOf[dst]
	p := &w.out[dw]
	if e.cfg.Combiner != nil {
		if w.seenStamp[dst] == w.stamp {
			i := w.lastSeen[dst]
			if merged, ok := e.cfg.Combiner(p.msgs[i], m); ok {
				p.msgs[i] = merged
				w.m.CombinedAway++
				return
			}
		} else {
			w.seenStamp[dst] = w.stamp
			w.lastSeen[dst] = int32(len(p.dsts))
		}
	}
	p.dsts = append(p.dsts, dst)
	p.srcs = append(p.srcs, src)
	p.msgs = append(p.msgs, m)
}

func (w *worker[V, M]) sendToWorker(dw int, m M) {
	if w.engine.columnar {
		panic("pregel: SendToWorker on the columnar plane")
	}
	p := &w.out[dw]
	p.dsts = append(p.dsts, -1)
	p.srcs = append(p.srcs, -1)
	p.msgs = append(p.msgs, m)
}

func (w *worker[V, M]) sendColumnar(dst int32, kind uint8, src, count int32, pay []float32) {
	e := w.engine
	if !e.columnar {
		panic("pregel: SendColumnar on the boxed plane")
	}
	dw := e.workerOf[dst]
	b := e.colCur[w.id][dw]
	if e.colCombine != nil {
		if w.seenStamp[dst] == w.stamp {
			i := w.lastSeen[dst]
			if b.kinds[i] == kind && int(b.lens[i]) == len(pay) {
				acc := b.mergeTarget(i)
				if merged, ok := e.colCombine(kind, acc, pay, b.counts[i], count); ok {
					// The row keeps the src that created it: a merged row
					// has no single source semantically, but the creation
					// src is the key the barrier merges sender buffers by.
					b.counts[i] = merged
					w.m.CombinedAway++
					return
				}
			}
		} else {
			w.seenStamp[dst] = w.stamp
			w.lastSeen[dst] = int32(len(b.dsts))
		}
	}
	b.add(dst, kind, src, count, pay)
}

// sendColumnarFan routes one identical payload to every destination in
// dsts, in order — the columnar form of a broadcast-safe scatter. The
// payload is copied into each destination-worker arena at most once; every
// further send to the same worker appends only a header row aliasing that
// extent, so a hub's out-edges cost one payload copy per worker instead of
// one per edge. Fan extents are marked shared, which makes any combine into
// them copy-on-first-merge (see colBuf.mergeTarget) — delivered values, and
// therefore results, are identical to issuing len(dsts) individual
// sendColumnar calls; only the arena bytes differ.
func (w *worker[V, M]) sendColumnarFan(dsts []int32, kind uint8, src, count int32, pay []float32) {
	e := w.engine
	if !e.columnar {
		panic("pregel: SendColumnarFan on the boxed plane")
	}
	fan := w.fanOff[:e.cfg.NumWorkers]
	for i := range fan {
		fan[i] = -1
	}
	for _, dst := range dsts {
		dw := e.workerOf[dst]
		b := e.colCur[w.id][dw]
		if e.colCombine != nil {
			if w.seenStamp[dst] == w.stamp {
				i := w.lastSeen[dst]
				if b.kinds[i] == kind && int(b.lens[i]) == len(pay) {
					acc := b.mergeTarget(i)
					if merged, ok := e.colCombine(kind, acc, pay, b.counts[i], count); ok {
						b.counts[i] = merged
						w.m.CombinedAway++
						continue
					}
				}
			} else {
				w.seenStamp[dst] = w.stamp
				w.lastSeen[dst] = int32(len(b.dsts))
			}
		}
		if off := fan[dw]; off >= 0 {
			b.addAlias(dst, kind, src, count, int(off), int32(len(pay)))
			continue
		}
		fan[dw] = int64(len(b.arena))
		b.add(dst, kind, src, count, pay)
		// The freshly appended extent is this fan's shared source: combines
		// must not fold into it in place, or later aliases would read the
		// merged value instead of the pristine payload.
		b.shared[len(b.shared)-1] = true
	}
}

func (w *worker[V, M]) sendColumnarToWorker(dw int, kind uint8, src, count int32, pay []float32) {
	e := w.engine
	if !e.columnar {
		panic("pregel: SendColumnarToWorker on the boxed plane")
	}
	e.colCur[w.id][dw].add(-1, kind, src, count, pay)
}

func (w *worker[V, M]) aggPut(key string, value []float32) {
	if w.aggLocal == nil {
		w.aggLocal = map[string][]float32{}
	}
	w.aggLocal[key] = value
}

// Engine executes a vertex program over a topology.
type Engine[V, M any] struct {
	topo  Topology
	prog  VertexProgram[V, M]
	batch BatchProgram[V, M] // non-nil iff cfg.Batched
	cfg   Config[M]
	part  graph.Partitioner

	values  []V
	active  []bool
	workers []*worker[V, M]

	// localIdx[v] caches part.LocalIndex(v) (the dense per-receiver inbox
	// slot) and workerOf[v] caches part.WorkerFor(v): whatever the
	// partitioner's internal representation, the barrier's counting sort
	// and the send hot path only ever do table reads.
	localIdx []int32
	workerOf []int32

	// mergeCur[r] / mergeHeads[r] are receiver r's per-sender cursor and
	// head-source scratch for the barrier's source-order merge; persistent
	// so parallel delivery stays allocation-free.
	mergeCur   [][]int
	mergeHeads [][]int32

	columnar   bool
	colCombine func(kind uint8, acc, pay []float32, accCount, payCount int32) (int32, bool)
	colBytes   func(kind uint8, payloadLen int) int

	// Boxed plane: per-receiver CSR inboxes and worker mailboxes.
	boxIn   []boxInbox[M]
	boxMail [][]M

	// Columnar plane: per-receiver inboxes/mailboxes plus the send-buffer
	// generations. colCur[s][r] is filled by sender s during the current
	// superstep; colLive holds the previous generation, whose arenas back
	// the current inbox views, and recycles into colFree at the barrier.
	colIn   []colInbox
	colMail []colCols
	colCur  [][]*colBuf
	colLive [][]*colBuf
	colFree bufPool

	// Pipelined plane (see pipeline.go): one background assembler per
	// receiver, and pendIn[r] carrying the assembler's receive totals to the
	// next superstep's compute metrics. Send buffers, generations and
	// recycling are the BSP plane's — sealed extents are row ranges of the
	// colCur buffers.
	pipelined bool
	chunkSize int
	pipeDepth int
	asm       []*inboxAsm
	pendIn    []inMetrics

	inTotal   int // vertex-addressed messages awaiting the next superstep
	mailTotal int // worker-addressed messages awaiting the next superstep

	aggPrev map[string][]float32

	metrics [][]StepMetrics // one entry per executed superstep (replays add entries)
	// metricsSlab backs the per-superstep metrics windows: supersteps carve
	// NumWorkers-wide windows out of one block allocation instead of
	// allocating a fresh slice each superstep. Earlier windows keep aliasing
	// retired blocks after growth, which is sound because a window is only
	// written during its own superstep.
	metricsSlab []StepMetrics
	supersteps  int
	executed    int // total supersteps executed, never rolled back by recovery

	checkpoint *snapshot[V, M]
	spare      *snapshot[V, M] // displaced checkpoint, recycled by the next capture
	recoveries int
	faults     []faultState

	// Durable checkpointing (see durable.go): sink/codec attached via
	// SetSink, snapshots encoded and written by one persister goroutine.
	sink           checkpoint.Sink
	codec          SnapshotCodec[V, M]
	encArena       segArena             // persister-goroutine-only encode scratch
	encSegs        []checkpoint.Segment // persister-goroutine-only segment views
	boxScratch     []byte               // persister-goroutine-only boxed-plane scratch
	persistCh      chan *snapshot[V, M]
	persistDone    chan struct{}
	persistWG      sync.WaitGroup
	persistMu      sync.Mutex
	persistFailure error
	startStep      int
	resumed        bool

	ckptCount  int
	ckptWallNs int64
	ckptBytes  int64 // atomic; written by the persister
	persistNs  int64 // atomic; written by the persister

	// Pipelined-assembler watchdog (see pipeline.go). asmStall is a test
	// seam: when non-nil the drain goroutines call it before each extent.
	watchdog      time.Duration
	watchdogTrips int64 // atomic
	asmStall      func(r int)
}

// snapshot is a recovery point: everything the next superstep reads. All
// fields are deep copies (payloads included — see columnar.go) and are
// never written after capture.
type snapshot[V, M any] struct {
	step    int
	values  []V
	active  []bool
	aggPrev map[string][]float32

	// ioDone (atomic) is 1 once the persister has finished with this
	// snapshot (or it was never enqueued); takeCheckpoint only recycles a
	// displaced snapshot's slabs after observing it.
	ioDone uint32

	inTotal   int
	mailTotal int

	// boxed plane
	boxOff  [][]int32
	boxMsgs [][]M
	boxMail [][]M

	// columnar plane
	colIn   []colSnap
	colMail []colSnap
	// pipelined plane: the receive totals the checkpointed superstep's
	// compute will credit (pendIn). Sealed extents themselves need no
	// snapshotting — checkpoints are taken between supersteps, when every
	// extent has been drained into the inbox the colIn snapshot deep-copies.
	pendIn []inMetrics

	// program-owned state (ProgramStater), e.g. a batch program's slabs
	progState any
	hasProg   bool
}

// NewEngine constructs an engine; Run executes it.
func NewEngine[V, M any](topo Topology, prog VertexProgram[V, M], cfg Config[M]) *Engine[V, M] {
	if cfg.NumWorkers <= 0 {
		panic(fmt.Sprintf("pregel: invalid worker count %d", cfg.NumWorkers))
	}
	if cfg.MaxSupersteps <= 0 {
		cfg.MaxSupersteps = 64
	}
	if cfg.MessageBytes == nil {
		cfg.MessageBytes = func(M) int { return 64 }
	}
	part := cfg.Partitioner
	if part == nil {
		part = graph.NewPartitioner(cfg.NumWorkers)
	} else if part.NumWorkers() != cfg.NumWorkers {
		panic(fmt.Sprintf("pregel: partitioner has %d workers, config %d", part.NumWorkers(), cfg.NumWorkers))
	}
	e := &Engine[V, M]{
		topo:     topo,
		prog:     prog,
		cfg:      cfg,
		part:     part,
		columnar: cfg.Columnar != nil,
	}
	if cfg.Batched {
		if !e.columnar {
			panic("pregel: Config.Batched requires the columnar message plane")
		}
		bp, ok := prog.(BatchProgram[V, M])
		if !ok {
			panic("pregel: Config.Batched requires a program implementing BatchProgram")
		}
		e.batch = bp
	}
	if cfg.Pipelined {
		if !e.columnar {
			panic("pregel: Config.Pipelined requires the columnar message plane")
		}
		e.pipelined = true
		e.chunkSize = cfg.ChunkSize
		if e.chunkSize <= 0 {
			e.chunkSize = defaultChunkSize
		}
		e.pipeDepth = cfg.PipelineDepth
		if e.pipeDepth <= 0 {
			e.pipeDepth = defaultPipelineDepth
		}
		e.watchdog = cfg.PipelineWatchdog
		if e.watchdog == 0 {
			e.watchdog = defaultWatchdog
		}
	}
	e.faults = buildFaults(cfg)
	n := topo.NumVertices()
	e.values = make([]V, n)
	e.active = make([]bool, n)
	if cfg.Frontier != nil {
		for _, v := range cfg.Frontier {
			if int(v) < 0 || int(v) >= n {
				panic(fmt.Sprintf("pregel: frontier vertex %d out of range [0,%d)", v, n))
			}
			e.active[v] = true
		}
	} else {
		for i := range e.active {
			e.active[i] = true
		}
	}
	e.localIdx = make([]int32, n)
	e.workerOf = make([]int32, n)
	for v := range e.localIdx {
		e.localIdx[v] = int32(e.part.LocalIndex(int32(v)))
		e.workerOf[v] = int32(e.part.WorkerFor(int32(v)))
	}
	nw := cfg.NumWorkers
	combining := false
	if e.columnar {
		e.colCombine = cfg.Columnar.Combine
		e.colBytes = cfg.Columnar.Bytes
		if e.colBytes == nil {
			e.colBytes = func(_ uint8, payloadLen int) int { return 4*payloadLen + 16 }
		}
		combining = e.colCombine != nil
		e.colIn = make([]colInbox, nw)
		e.colMail = make([]colCols, nw)
		e.colCur = make([][]*colBuf, nw)
		e.colLive = make([][]*colBuf, nw)
		for s := 0; s < nw; s++ {
			e.colCur[s] = make([]*colBuf, nw)
			e.colLive[s] = make([]*colBuf, nw)
		}
		if e.pipelined {
			e.pendIn = make([]inMetrics, nw)
			e.asm = make([]*inboxAsm, nw)
		}
	} else {
		combining = cfg.Combiner != nil
		e.boxIn = make([]boxInbox[M], nw)
		e.boxMail = make([][]M, nw)
	}
	e.mergeCur = make([][]int, nw)
	e.mergeHeads = make([][]int32, nw)
	for w := 0; w < nw; w++ {
		e.mergeCur[w] = make([]int, nw)
		e.mergeHeads[w] = make([]int32, nw)
		wk := &worker[V, M]{engine: e, id: w, verts: e.part.NodesFor(w, n)}
		if !e.columnar {
			wk.out = make([]pending[M], nw)
		} else {
			wk.fanOff = make([]int64, nw)
		}
		if combining {
			wk.lastSeen = make([]int32, n)
			wk.seenStamp = make([]uint32, n)
		}
		owned := len(wk.verts)
		if e.pipelined {
			wk.sealedRows = make([]int, nw)
			e.asm[w] = newInboxAsm(nw, owned)
		}
		if cfg.Batched {
			wk.computed = make([]bool, owned)
			wk.halted = make([]bool, owned)
		}
		if e.columnar {
			e.colIn[w].off = make([]int32, owned+1)
			e.colIn[w].next = make([]int32, owned)
		} else {
			e.boxIn[w].off = make([]int32, owned+1)
			e.boxIn[w].next = make([]int32, owned)
		}
		e.workers = append(e.workers, wk)
	}
	return e
}

// Run executes supersteps until every vertex has halted with no messages in
// flight, or MaxSupersteps is reached. When checkpointing is on and a
// failure is injected, the engine rolls back to the latest checkpoint and
// re-executes — results are identical to a failure-free run because every
// superstep is deterministic. With a durable sink attached (SetSink),
// checkpoints are additionally persisted by a background goroutine whose
// first failure surfaces from Run after the computation finishes.
func (e *Engine[V, M]) Run() error {
	if e.sink != nil {
		e.startPersister()
	}
	err := e.runLoop()
	if e.sink != nil {
		e.persistWG.Wait()
		if perr := e.stopPersister(); err == nil {
			err = perr
		}
	}
	return err
}

func (e *Engine[V, M]) runLoop() error {
	if e.cfg.CheckpointEvery > 0 && !e.resumed && len(e.faults) > 0 {
		// The superstep-0 seed is the rollback target for faults injected
		// before the first periodic checkpoint — the only way an in-process
		// rollback can be needed that early. Real crashes kill the process
		// and resume from disk, where a superstep-0 epoch equals a cold
		// start, so fault-free runs skip the capture entirely.
		e.takeCheckpoint(0)
	}
	for step := e.startStep; step < e.cfg.MaxSupersteps; step++ {
		// Delivery reactivates destinations, so in-flight vertex messages
		// imply an active vertex; the explicit totals guard worker mail and
		// keep the invariant local.
		anyActive := e.inTotal > 0 || e.mailTotal > 0
		if !anyActive {
			for _, a := range e.active {
				if a {
					anyActive = true
					break
				}
			}
		}
		if !anyActive {
			return nil
		}

		if e.cfg.SuperstepHook != nil {
			e.drainPersist()
			e.cfg.SuperstepHook(step)
		}

		if e.cfg.Cancel != nil {
			if err := e.cfg.Cancel(); err != nil {
				return fmt.Errorf("pregel: run canceled before superstep %d: %w", step, err)
			}
		}

		if e.faultAt(step, FaultBeforeSuperstep) {
			if err := e.recoverFromCrash(step); err != nil {
				return err
			}
			step = e.checkpoint.step - 1 // loop increment re-enters at the checkpoint
			continue
		}

		if crashed := e.runSuperstep(step); crashed {
			if err := e.recoverFromCrash(step); err != nil {
				return err
			}
			step = e.checkpoint.step - 1
			continue
		}
		if e.cfg.CheckpointEvery > 0 && (step+1)%e.cfg.CheckpointEvery == 0 {
			if e.faultAt(step, FaultDuringCheckpoint) {
				// Crash mid-capture: the partially built snapshot is lost
				// work (captured here, then discarded without committing);
				// the previous checkpoint stays the recovery point.
				_ = e.captureSnapshot(step + 1)
				if err := e.recoverFromCrash(step); err != nil {
					return err
				}
				step = e.checkpoint.step - 1
				continue
			}
			e.takeCheckpoint(step + 1)
		}
	}
	// Reaching the cap is normal for fixed-round programs (k-layer GNNs);
	// programs that expect convergence can inspect Supersteps().
	return nil
}

// recoverFromCrash rolls back to the latest checkpoint after an injected
// crash at superstep step.
func (e *Engine[V, M]) recoverFromCrash(step int) error {
	if e.checkpoint == nil {
		return fmt.Errorf("pregel: worker failure at superstep %d with no checkpoint", step)
	}
	e.restoreCheckpoint()
	e.recoveries++
	return nil
}

// takeCheckpoint snapshots everything the upcoming superstep consumes and
// commits the snapshot as the recovery point, handing it to the background
// persister when a durable sink is attached. Capture wall time is charged
// to worker 0's metrics row of the superstep just finished (the initial
// step-0 capture precedes all metrics and lands only in CheckpointStats).
func (e *Engine[V, M]) takeCheckpoint(step int) {
	t0 := time.Now()
	cp := e.grabSpare()
	e.captureSnapshotInto(cp, step)
	if prev := e.checkpoint; prev != nil {
		e.spare = prev
	}
	e.checkpoint = cp
	ns := time.Since(t0).Nanoseconds()
	e.ckptCount++
	e.ckptWallNs += ns
	if len(e.metrics) > 0 {
		e.metrics[len(e.metrics)-1][0].CheckpointNs += ns
	}
	// The superstep-0 seed never reaches the sink: resuming from it is
	// byte-identical to a cold start, so persisting it buys nothing.
	if e.sink != nil && step > 0 {
		e.enqueuePersist(cp)
	} else {
		atomic.StoreUint32(&cp.ioDone, 1)
	}
}

// grabSpare returns the previously displaced checkpoint for slab reuse once
// the persister is done with it, else a fresh snapshot. Recycling makes the
// steady-state capture cost a memcpy instead of an allocation storm.
func (e *Engine[V, M]) grabSpare() *snapshot[V, M] {
	if sp := e.spare; sp != nil && atomic.LoadUint32(&sp.ioDone) == 1 {
		e.spare = nil
		return sp
	}
	return &snapshot[V, M]{}
}

// captureSnapshot deep-copies into a fresh snapshot (discard-path helper;
// the checkpoint path goes through takeCheckpoint's recycling).
func (e *Engine[V, M]) captureSnapshot(step int) *snapshot[V, M] {
	cp := &snapshot[V, M]{}
	e.captureSnapshotInto(cp, step)
	return cp
}

// captureSnapshotInto deep-copies everything the upcoming superstep consumes
// into cp, reusing its slice capacity. Message payloads are deep-copied out
// of the live arenas: by the time a recovery replays, the arenas backing the
// current inbox views have been recycled and overwritten.
func (e *Engine[V, M]) captureSnapshotInto(cp *snapshot[V, M], step int) {
	cp.step = step
	cp.aggPrev = e.aggPrev
	cp.inTotal = e.inTotal
	cp.mailTotal = e.mailTotal
	cp.ioDone = 0
	cp.values = append(cp.values[:0], e.values...)
	cp.active = append(cp.active[:0], e.active...)
	nw := e.cfg.NumWorkers
	if e.columnar {
		if cp.colIn == nil {
			cp.colIn = make([]colSnap, nw)
			cp.colMail = make([]colSnap, nw)
		}
		for r := 0; r < nw; r++ {
			snapColsInto(&cp.colIn[r], e.colIn[r].off, &e.colIn[r].cols)
			snapColsInto(&cp.colMail[r], nil, &e.colMail[r])
		}
		if e.pipelined {
			cp.pendIn = append(cp.pendIn[:0], e.pendIn...)
		}
	} else {
		if cp.boxOff == nil {
			cp.boxOff = make([][]int32, nw)
			cp.boxMsgs = make([][]M, nw)
			cp.boxMail = make([][]M, nw)
		}
		for r := 0; r < nw; r++ {
			cp.boxOff[r] = append(cp.boxOff[r][:0], e.boxIn[r].off...)
			cp.boxMsgs[r] = append(cp.boxMsgs[r][:0], e.boxIn[r].msgs...)
			cp.boxMail[r] = append(cp.boxMail[r][:0], e.boxMail[r]...)
		}
	}
	if ps, ok := e.prog.(ProgramStater); ok {
		cp.progState = ps.SnapshotProgState()
		cp.hasProg = true
	}
}

// restoreCheckpoint rolls engine state back to the latest checkpoint,
// discarding the metrics of the lost supersteps.
func (e *Engine[V, M]) restoreCheckpoint() {
	cp := e.checkpoint
	copy(e.values, cp.values)
	copy(e.active, cp.active)
	e.aggPrev = cp.aggPrev
	e.inTotal = cp.inTotal
	e.mailTotal = cp.mailTotal
	nw := e.cfg.NumWorkers
	if e.columnar {
		for r := 0; r < nw; r++ {
			restoreCols(e.colIn[r].off, &e.colIn[r].cols, cp.colIn[r])
			restoreCols(nil, &e.colMail[r], cp.colMail[r])
		}
		// The inbox no longer references the live arenas; recycle them. A
		// crash mid-superstep (FaultMidPipeline / FaultAtBarrier) also leaves
		// the current generation filled but never shifted — recycle it too.
		for s := 0; s < nw; s++ {
			for r := 0; r < nw; r++ {
				if e.colLive[s][r] != nil {
					e.colFree.put(e.colLive[s][r])
					e.colLive[s][r] = nil
				}
				if e.colCur[s][r] != nil {
					e.colFree.put(e.colCur[s][r])
					e.colCur[s][r] = nil
				}
			}
		}
		if e.pipelined {
			copy(e.pendIn, cp.pendIn)
		}
	} else {
		for r := 0; r < nw; r++ {
			copy(e.boxIn[r].off, cp.boxOff[r])
			e.boxIn[r].msgs = append(e.boxIn[r].msgs[:0], cp.boxMsgs[r]...)
			e.boxMail[r] = append(e.boxMail[r][:0], cp.boxMail[r]...)
		}
	}
	if cp.hasProg {
		e.prog.(ProgramStater).RestoreProgState(cp.progState)
	}
	if len(e.metrics) > cp.step {
		e.metrics = e.metrics[:cp.step]
	}
}

// Recoveries reports how many checkpoint recoveries the run performed.
func (e *Engine[V, M]) Recoveries() int { return e.recoveries }

// forEachWorker runs fn(i) for every worker index, on goroutines when the
// engine is parallel. Callers guarantee fn(i) only touches state owned by
// worker i (its metrics entry, its send buffers, its inbox, its vertices).
func (e *Engine[V, M]) forEachWorker(fn func(i int)) {
	if !e.cfg.Parallel || e.cfg.NumWorkers == 1 {
		for i := range e.workers {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for i := range e.workers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// runSuperstep executes one superstep. It returns true when an injected
// fault crashed the step partway: the caller must roll back to the latest
// checkpoint — everything the step produced (send buffers, assembler state,
// delivered inboxes, its metrics row) is lost work that restoreCheckpoint
// discards.
func (e *Engine[V, M]) runSuperstep(step int) (crashed bool) {
	e.supersteps = step + 1
	e.executed++
	stepMetrics := e.carveStepMetrics()
	for w := range stepMetrics {
		stepMetrics[w] = StepMetrics{Superstep: step, Worker: w}
	}
	e.metrics = append(e.metrics, stepMetrics)

	nw := e.cfg.NumWorkers
	for _, w := range e.workers {
		w.m = &e.metrics[len(e.metrics)-1][w.id]
		w.stepCost = 0
		w.aggLocal = nil
		w.stamp++
		if e.columnar {
			for r := 0; r < nw; r++ {
				b := e.colFree.get(e.colLive[w.id][r])
				if e.colLive[w.id][r] == nil && e.cfg.Columnar.ReserveMsgs > 0 {
					// Cold buffer (first two generations): apply the
					// program's volume hint instead of growing by doubling.
					b.reserve(e.cfg.Columnar.ReserveMsgs, e.cfg.Columnar.ReserveFloats)
				}
				e.colCur[w.id][r] = b
			}
			if e.pipelined {
				for r := range w.sealedRows {
					w.sealedRows[r] = 0
				}
			}
		} else {
			for r := range w.out {
				w.out[r].dsts = w.out[r].dsts[:0]
				w.out[r].srcs = w.out[r].srcs[:0]
				w.out[r].msgs = w.out[r].msgs[:0]
			}
		}
	}
	if e.pipelined {
		e.startAssembly()
	}

	// Compute phase: every worker runs its owned vertices against the
	// current inbox, sending into its own per-destination buffers. On the
	// pipelined plane, chunk seals flush extents to the receiving workers'
	// assemblers throughout this phase.
	e.forEachWorker(func(i int) { e.computeWorker(e.workers[i], step) })

	// Fault point: compute finished (send data produced, and on the
	// pipelined plane partially assembled), barrier not yet run. The drain
	// goroutines are joined before the crash propagates so no assembly races
	// the recovery; their output is discarded with the rest of the step.
	if e.faultAt(step, FaultMidPipeline) {
		if e.pipelined {
			e.finishAssembly()
		}
		return true
	}

	// Barrier. On the BSP path, send-side accounting is parallel over
	// senders (each writes its own metrics entry); delivery is parallel over
	// receivers (each owns a disjoint inbox and drains sender buffers in
	// worker-id order, keeping per-destination message order independent of
	// scheduling). On the pipelined path, accounting already happened during
	// assembly; the barrier drains the in-flight extents and runs the
	// ascending-source merge over the assembled runs.
	if e.pipelined {
		e.finishAssembly()
		e.forEachWorker(func(i int) { e.deliverPipelined(i) })
		e.foldAssemblyMetrics()
	} else if e.columnar {
		e.forEachWorker(func(i int) { e.accountSent(i) })
		e.forEachWorker(func(i int) { e.deliverColumnar(i) })
	} else {
		e.forEachWorker(func(i int) { e.accountSent(i) })
		e.forEachWorker(func(i int) { e.deliverBoxed(i) })
	}

	// Fault point: delivery/merge done, superstep not yet committed (totals,
	// aggregators, generation shift) — the freshly merged inboxes are lost.
	if e.faultAt(step, FaultAtBarrier) {
		return true
	}

	inTotal, mailTotal := 0, 0
	if e.columnar {
		for r := 0; r < nw; r++ {
			inTotal += len(e.colIn[r].cols.kinds)
			mailTotal += len(e.colMail[r].kinds)
		}
	} else {
		for r := 0; r < nw; r++ {
			inTotal += len(e.boxIn[r].msgs)
			mailTotal += len(e.boxMail[r])
		}
	}
	e.inTotal, e.mailTotal = inTotal, mailTotal

	// Merge aggregators serially in worker-id order (last writer wins, as
	// in the seed engine). The map is only allocated when some worker
	// published this superstep — aggregator-free programs (the GNN driver)
	// skip the per-superstep allocation, and reads on a nil map miss as
	// before.
	var agg map[string][]float32
	for _, w := range e.workers {
		for k, v := range w.aggLocal {
			if agg == nil {
				agg = map[string][]float32{}
			}
			agg[k] = v
		}
	}
	e.aggPrev = agg

	// Shift send-buffer generations: the buffers consumed by this
	// superstep's compute recycle; the ones just filled back the new inbox
	// views and stay live for one more superstep. Sealed extents are row
	// ranges of these same buffers, so the pipelined plane shares the shift
	// unchanged.
	if e.columnar {
		for s := 0; s < nw; s++ {
			for r := 0; r < nw; r++ {
				if e.colLive[s][r] != nil {
					e.colFree.put(e.colLive[s][r])
				}
				e.colLive[s][r] = e.colCur[s][r]
				e.colCur[s][r] = nil
			}
		}
	}
	return false
}

// carveStepMetrics returns this superstep's NumWorkers-wide metrics window,
// carved from the slab (growing it by doubling when exhausted) instead of
// allocating one slice per superstep.
func (e *Engine[V, M]) carveStepMetrics() []StepMetrics {
	nw := e.cfg.NumWorkers
	if cap(e.metricsSlab)-len(e.metricsSlab) < nw {
		grow := 8 * nw
		if c := 2 * cap(e.metricsSlab); c > grow {
			grow = c
		}
		// Retired blocks stay referenced by the windows already handed out;
		// only the tail moves to the fresh block.
		e.metricsSlab = make([]StepMetrics, 0, grow)
	}
	lo := len(e.metricsSlab)
	e.metricsSlab = e.metricsSlab[:lo+nw]
	return e.metricsSlab[lo : lo+nw : lo+nw]
}

// computeWorker runs one worker's compute phase for a superstep.
func (e *Engine[V, M]) computeWorker(w *worker[V, M], step int) {
	m := w.m
	if e.batch != nil {
		// Batched plane: the engine keeps the per-vertex activity and IO
		// accounting (identical to the columnar per-vertex loop below), then
		// hands the whole partition to ComputeBatch in one call. On the
		// pipelined plane the per-message receive totals were already summed
		// by last superstep's assembly (pendIn), so only the per-vertex
		// activity scan remains.
		if e.pipelined {
			m.MessagesReceived += e.pendIn[w.id].msgs
			m.BytesReceived += e.pendIn[w.id].bytes
		} else {
			mail := &e.colMail[w.id]
			for i := range mail.kinds {
				m.MessagesReceived++
				m.BytesReceived += int64(e.colBytes(mail.kinds[i], len(mail.pays[i])))
			}
		}
		in := &e.colIn[w.id]
		for li, v := range w.verts {
			lo, hi := in.off[li], in.off[li+1]
			w.computed[li] = e.active[v] || lo != hi
			w.halted[li] = false
			if !w.computed[li] {
				continue
			}
			m.ActiveVertices++
			if !e.pipelined {
				m.MessagesReceived += int64(hi - lo)
				for i := lo; i < hi; i++ {
					m.BytesReceived += int64(e.colBytes(in.cols.kinds[i], len(in.cols.pays[i])))
				}
			}
		}
		e.batch.ComputeBatch(&BatchContext[V, M]{worker: w, Superstep: step})
		w.sealTail()
		for li, v := range w.verts {
			if w.computed[li] {
				e.active[v] = !w.halted[li]
			}
		}
		m.ComputeCost = w.stepCost
		return
	}
	if e.columnar {
		if e.pipelined {
			m.MessagesReceived += e.pendIn[w.id].msgs
			m.BytesReceived += e.pendIn[w.id].bytes
		} else {
			mail := &e.colMail[w.id]
			for i := range mail.kinds {
				m.MessagesReceived++
				m.BytesReceived += int64(e.colBytes(mail.kinds[i], len(mail.pays[i])))
			}
		}
		in := &e.colIn[w.id]
		ctx := &Context[V, M]{worker: w, Superstep: step}
		for li, v := range w.verts {
			if e.pipelined && li > 0 && li%e.chunkSize == 0 {
				// Chunk boundary: seal and flush what the previous chunk
				// sent. The cadence runs over owned indices (not computed
				// vertices), so it is deterministic under any halt pattern.
				w.sealChunk()
			}
			lo, hi := in.off[li], in.off[li+1]
			if !e.active[v] && lo == hi {
				continue
			}
			m.ActiveVertices++
			if !e.pipelined {
				m.MessagesReceived += int64(hi - lo)
				for i := lo; i < hi; i++ {
					m.BytesReceived += int64(e.colBytes(in.cols.kinds[i], len(in.cols.pays[i])))
				}
			}
			ctx.ID, ctx.Value, ctx.inLo, ctx.inHi, ctx.halted = v, &e.values[v], lo, hi, false
			e.prog.Compute(ctx, nil)
			e.active[v] = !ctx.halted
		}
		w.sealTail()
	} else {
		for _, ms := range e.boxMail[w.id] {
			m.MessagesReceived++
			m.BytesReceived += int64(e.cfg.MessageBytes(ms))
		}
		in := &e.boxIn[w.id]
		ctx := &Context[V, M]{worker: w, Superstep: step}
		for li, v := range w.verts {
			msgs := in.msgs[in.off[li]:in.off[li+1]]
			if !e.active[v] && len(msgs) == 0 {
				continue
			}
			m.ActiveVertices++
			m.MessagesReceived += int64(len(msgs))
			for _, one := range msgs {
				m.BytesReceived += int64(e.cfg.MessageBytes(one))
			}
			ctx.ID, ctx.Value, ctx.halted = v, &e.values[v], false
			e.prog.Compute(ctx, msgs)
			e.active[v] = !ctx.halted
		}
	}
	m.ComputeCost = w.stepCost
}

// accountSent charges sender s for every message (and its wire bytes) it
// buffered this superstep. Bytes are measured on the post-combine buffers —
// from the arena extents on the columnar plane. Traffic addressed to other
// workers is additionally recorded as remote: the share a locality-aware
// partitioner can reduce.
func (e *Engine[V, M]) accountSent(s int) {
	w := e.workers[s]
	m := w.m
	if e.columnar {
		for r := 0; r < e.cfg.NumWorkers; r++ {
			b := e.colCur[s][r]
			m.MessagesSent += int64(len(b.dsts))
			var bytes int64
			for i := range b.dsts {
				bytes += int64(e.colBytes(b.kinds[i], int(b.lens[i])))
			}
			m.BytesSent += bytes
			if r != s {
				m.RemoteMessagesSent += int64(len(b.dsts))
				m.RemoteBytesSent += bytes
			}
		}
	} else {
		for r := range w.out {
			p := &w.out[r]
			m.MessagesSent += int64(len(p.dsts))
			var bytes int64
			for i := range p.msgs {
				bytes += int64(e.cfg.MessageBytes(p.msgs[i]))
			}
			m.BytesSent += bytes
			if r != s {
				m.RemoteMessagesSent += int64(len(p.dsts))
				m.RemoteBytesSent += bytes
			}
		}
	}
}

// deliverColumnar rebuilds receiver r's CSR inbox and mailbox with a
// counting sort over the sender buffers addressed to it. Worker mail drains
// in sender-worker-id order (mailboxes are per-worker state); vertex
// messages are scattered in globally ascending source order via the sender
// merge, so every destination's inbox order is independent of vertex
// placement and worker count. Payloads are not copied: inbox entries are
// views into the sender arenas, which stay live until the next barrier.
func (e *Engine[V, M]) deliverColumnar(r int) {
	in := &e.colIn[r]
	off := in.off
	for i := range off {
		off[i] = 0
	}
	mailN := 0
	nw := e.cfg.NumWorkers
	for s := 0; s < nw; s++ {
		for _, dst := range e.colCur[s][r].dsts {
			if dst < 0 {
				mailN++
			} else {
				off[e.localIdx[dst]+1]++
			}
		}
	}
	for i := 1; i < len(off); i++ {
		off[i] += off[i-1]
	}
	total := int(off[len(off)-1])
	in.cols.resize(total)
	copy(in.next, off[:len(in.next)])
	e.fillColMail(r, mailN)
	// Source-order merge of the vertex-addressed rows: each sender buffer
	// is ascending in source id (workers compute owned vertices in id
	// order) and a source is owned by exactly one worker, so consuming the
	// buffer with the smallest head source yields the unique global order —
	// the same at any worker count and under any vertex placement. Head
	// sources are cached in a flat int32 scratch (exhausted buffers pinned
	// at the sentinel), and the winning buffer is drained in runs — every
	// row up to the runner-up's head — so locality-heavy placements pay the
	// head scan once per run, not once per message. Mod-N hash placement is
	// the worst case: ascending sources alternate owners, runs collapse to
	// single rows, and every message pays the nw-wide scan — the ~5–15%
	// barrier cost recorded in DESIGN.md, the price of placement-
	// independent delivery on the placement that benefits least from it.
	cur, heads := e.mergeCur[r], e.mergeHeads[r]
	live := 0
	for s := 0; s < nw; s++ {
		b := e.colCur[s][r]
		cur[s] = skipMail(b.dsts, 0)
		if cur[s] < len(b.dsts) {
			heads[s] = b.srcs[cur[s]]
			live++
		} else {
			heads[s] = mergeDone
		}
	}
	if live == 1 {
		// Single-sender fast path (one worker, or a converged region): the
		// buffer order already is the global order.
		for s := 0; s < nw; s++ {
			b := e.colCur[s][r]
			for i := cur[s]; i < len(b.dsts); i++ {
				if dst := b.dsts[i]; dst >= 0 {
					e.scatterColRow(in, b, i, dst)
				}
			}
		}
		return
	}
	for {
		best, second := mergeBest(heads)
		if best == -1 {
			break
		}
		b := e.colCur[best][r]
		i := cur[best]
		for i < len(b.dsts) {
			if dst := b.dsts[i]; dst >= 0 {
				if b.srcs[i] > second {
					break
				}
				e.scatterColRow(in, b, i, dst)
			}
			i++
		}
		cur[best] = i
		if i < len(b.dsts) {
			heads[best] = b.srcs[i]
		} else {
			heads[best] = mergeDone
		}
	}
}

// scatterColRow delivers one columnar row into its receiver's CSR slot —
// the single scatter implementation both the BSP and pipelined barriers
// use, so reactivation semantics and slot layout cannot drift apart.
func (e *Engine[V, M]) scatterColRow(in *colInbox, b *colBuf, i int, dst int32) {
	li := e.localIdx[dst]
	slot := in.next[li]
	in.next[li]++
	in.cols.set(int(slot), b.kinds[i], b.srcs[i], b.counts[i], b.payload(i))
	// A message reactivates its destination.
	e.active[dst] = true
}

// fillColMail rebuilds receiver r's worker mailbox from the current send
// buffers in sender-major, buffer order — shared by both barriers
// (mailboxes are per-worker state, so this order is the contract).
func (e *Engine[V, M]) fillColMail(r, mailN int) {
	mail := &e.colMail[r]
	mail.resize(mailN)
	if mailN == 0 {
		return
	}
	mi := 0
	for s := 0; s < e.cfg.NumWorkers; s++ {
		b := e.colCur[s][r]
		for i, dst := range b.dsts {
			if dst < 0 {
				mail.set(mi, b.kinds[i], b.srcs[i], b.counts[i], b.payload(i))
				mi++
			}
		}
	}
}

// mergeDone is the exhausted-buffer sentinel of the barrier merge: above
// every vertex id, so a drained buffer never wins the head scan.
const mergeDone = int32(math.MaxInt32)

// mergeBest scans the cached head sources and returns the winning buffer
// (lowest head, ties to the lowest index) and the runner-up head value —
// the run bound the winner may drain up to. best is -1 when every buffer
// is exhausted. Shared by both planes' delivery loops so the subtle part
// of the merge has exactly one implementation.
func mergeBest(heads []int32) (best int, second int32) {
	best = -1
	bestSrc := mergeDone
	second = mergeDone
	for s, h := range heads {
		if h < bestSrc {
			best, second, bestSrc = s, bestSrc, h
		} else if h < second {
			second = h
		}
	}
	return best, second
}

// skipMail advances i past worker-mail rows (dst < 0).
func skipMail(dsts []int32, i int) int {
	for i < len(dsts) && dsts[i] < 0 {
		i++
	}
	return i
}

// deliverBoxed is deliverColumnar for the boxed plane: same counting sort
// and source-order merge, message values copied into the receiver's flat
// inbox.
func (e *Engine[V, M]) deliverBoxed(r int) {
	in := &e.boxIn[r]
	off := in.off
	for i := range off {
		off[i] = 0
	}
	mailN := 0
	nw := e.cfg.NumWorkers
	for s := 0; s < nw; s++ {
		for _, dst := range e.workers[s].out[r].dsts {
			if dst < 0 {
				mailN++
			} else {
				off[e.localIdx[dst]+1]++
			}
		}
	}
	for i := 1; i < len(off); i++ {
		off[i] += off[i-1]
	}
	total := int(off[len(off)-1])
	if cap(in.msgs) < total {
		in.msgs = make([]M, total)
	} else {
		in.msgs = in.msgs[:total]
	}
	copy(in.next, off[:len(in.next)])
	mail := e.boxMail[r][:0]
	if cap(mail) < mailN {
		mail = make([]M, 0, mailN)
	}
	if mailN > 0 {
		for s := 0; s < nw; s++ {
			p := &e.workers[s].out[r]
			for i, dst := range p.dsts {
				if dst < 0 {
					mail = append(mail, p.msgs[i])
				}
			}
		}
	}
	cur, heads := e.mergeCur[r], e.mergeHeads[r]
	live := 0
	for s := 0; s < nw; s++ {
		p := &e.workers[s].out[r]
		cur[s] = skipMail(p.dsts, 0)
		if cur[s] < len(p.dsts) {
			heads[s] = p.srcs[cur[s]]
			live++
		} else {
			heads[s] = mergeDone
		}
	}
	deliverRow := func(p *pending[M], i int, dst int32) {
		li := e.localIdx[dst]
		slot := in.next[li]
		in.next[li]++
		in.msgs[slot] = p.msgs[i]
		// A message reactivates its destination.
		e.active[dst] = true
	}
	if live == 1 {
		for s := 0; s < nw; s++ {
			p := &e.workers[s].out[r]
			for i := cur[s]; i < len(p.dsts); i++ {
				if dst := p.dsts[i]; dst >= 0 {
					deliverRow(p, i, dst)
				}
			}
		}
		e.boxMail[r] = mail
		return
	}
	for {
		best, second := mergeBest(heads)
		if best == -1 {
			break
		}
		p := &e.workers[best].out[r]
		i := cur[best]
		for i < len(p.dsts) {
			if dst := p.dsts[i]; dst >= 0 {
				if p.srcs[i] > second {
					break
				}
				deliverRow(p, i, dst)
			}
			i++
		}
		cur[best] = i
		if i < len(p.dsts) {
			heads[best] = p.srcs[i]
		} else {
			heads[best] = mergeDone
		}
	}
	e.boxMail[r] = mail
}

// VertexValue returns a pointer to v's value after Run.
func (e *Engine[V, M]) VertexValue(v int32) *V { return &e.values[v] }

// Values returns the full value slice (indexed by vertex id).
func (e *Engine[V, M]) Values() []V { return e.values }

// Supersteps reports how many supersteps executed.
func (e *Engine[V, M]) Supersteps() int { return e.supersteps }

// Metrics returns per-superstep, per-worker metrics.
func (e *Engine[V, M]) Metrics() [][]StepMetrics { return e.metrics }

// TotalMetrics sums the per-step metrics into one record per worker.
func (e *Engine[V, M]) TotalMetrics() []StepMetrics {
	out := make([]StepMetrics, e.cfg.NumWorkers)
	for w := range out {
		out[w].Worker = w
	}
	for _, step := range e.metrics {
		for w, m := range step {
			out[w].ActiveVertices += m.ActiveVertices
			out[w].MessagesSent += m.MessagesSent
			out[w].MessagesReceived += m.MessagesReceived
			out[w].BytesSent += m.BytesSent
			out[w].BytesReceived += m.BytesReceived
			out[w].RemoteMessagesSent += m.RemoteMessagesSent
			out[w].RemoteBytesSent += m.RemoteBytesSent
			out[w].CombinedAway += m.CombinedAway
			out[w].ComputeCost += m.ComputeCost
			out[w].CheckpointNs += m.CheckpointNs
		}
	}
	return out
}
