package pregel

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"inferturbo/internal/checkpoint"
)

// Codecs for the test programs. colCodec speaks the columnar test programs'
// types (V=float32, M=[3]float32); rankCodec speaks PageRank's (V=M=float64).

type colCodec struct{}

func (colCodec) EncodeValues(dst []byte, vals []float32) ([]byte, error) {
	return checkpoint.AppendF32s(dst, vals), nil
}

func (colCodec) DecodeValues(data []byte, into []float32) error {
	r := checkpoint.NewReader(data)
	copy(into, r.F32s())
	return r.Err()
}

func (colCodec) EncodeMsgs(dst []byte, msgs [][3]float32) ([]byte, error) {
	dst = checkpoint.AppendU64(dst, uint64(3*len(msgs)))
	for _, m := range msgs {
		for _, x := range m {
			dst = checkpoint.AppendU32(dst, math.Float32bits(x))
		}
	}
	return dst, nil
}

func (colCodec) DecodeMsgs(data []byte) ([][3]float32, error) {
	r := checkpoint.NewReader(data)
	flat := r.F32s()
	if err := r.Err(); err != nil {
		return nil, err
	}
	msgs := make([][3]float32, len(flat)/3)
	for i := range msgs {
		copy(msgs[i][:], flat[3*i:])
	}
	return msgs, nil
}

type rankCodec struct{}

func appendF64s(b []byte, v []float64) []byte {
	b = checkpoint.AppendU64(b, uint64(len(v)))
	for _, x := range v {
		b = checkpoint.AppendU64(b, math.Float64bits(x))
	}
	return b
}

func readF64s(r *checkpoint.Reader) []float64 {
	n := int(r.U64())
	v := make([]float64, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		v = append(v, math.Float64frombits(r.U64()))
	}
	return v
}

func (rankCodec) EncodeValues(dst []byte, vals []float64) ([]byte, error) {
	return appendF64s(dst, vals), nil
}

func (rankCodec) DecodeValues(data []byte, into []float64) error {
	r := checkpoint.NewReader(data)
	copy(into, readF64s(r))
	return r.Err()
}

func (rankCodec) EncodeMsgs(dst []byte, msgs []float64) ([]byte, error) {
	return appendF64s(dst, msgs), nil
}

func (rankCodec) DecodeMsgs(data []byte) ([]float64, error) {
	r := checkpoint.NewReader(data)
	v := readF64s(r)
	return v, r.Err()
}

// ProgramDiskStater for batchSumProg, so durable checkpoints can carry its
// per-worker slabs.
func (p *batchSumProg) EncodeProgState(dst []byte, snap any) ([]byte, error) {
	slabs := snap.([][]float32)
	b := checkpoint.AppendU64(dst, uint64(len(slabs)))
	for _, s := range slabs {
		b = checkpoint.AppendF32s(b, s)
	}
	return b, nil
}

func (p *batchSumProg) DecodeProgState(data []byte) (any, error) {
	r := checkpoint.NewReader(data)
	n := int(r.U64())
	slabs := make([][]float32, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		slabs = append(slabs, r.F32s())
	}
	return slabs, r.Err()
}

// colConfig builds the standard columnar test config for one plane combo.
func colConfig(parallel, pipelined, batched bool, chunk int) Config[[3]float32] {
	return Config[[3]float32]{
		NumWorkers:      4,
		Parallel:        parallel,
		MaxSupersteps:   10,
		CheckpointEvery: 2,
		Columnar:        &ColumnarOps{Combine: colSumCombiner},
		Pipelined:       pipelined,
		Batched:         batched,
		ChunkSize:       chunk,
	}
}

func newColProg(batched bool) VertexProgram[float32, [3]float32] {
	if batched {
		return newBatchSumProg(6, 4)
	}
	return newScratchSumProg(6, 4)
}

// TestFaultPlanMatrixByteIdentical drives every fault point through every
// plane combo — including multiple crashes in one run — and requires values
// and message totals bit-identical to the failure-free run.
func TestFaultPlanMatrixByteIdentical(t *testing.T) {
	topo := randomTopology(t, 70, 300, 21)
	planes := []struct {
		name               string
		pipelined, batched bool
		chunk              int
	}{
		{"bsp-pervertex", false, false, 0},
		{"pipelined-pervertex", true, false, 5},
		{"pipelined-batched", true, true, 4},
		{"pipelined-awkward-chunk", true, true, 7}, // chunk doesn't divide partitions: epoch state spans partial FlushChunk extents
	}
	faultSets := map[string][]Fault{
		"before":     {{Superstep: 5, Point: FaultBeforeSuperstep}},
		"mid":        {{Superstep: 5, Point: FaultMidPipeline}},
		"barrier":    {{Superstep: 5, Point: FaultAtBarrier}},
		"checkpoint": {{Superstep: 3, Point: FaultDuringCheckpoint}},
		"multi": {
			{Superstep: 1, Point: FaultMidPipeline},
			{Superstep: 3, Point: FaultDuringCheckpoint},
			{Superstep: 5, Point: FaultAtBarrier},
			{Superstep: 5, Point: FaultBeforeSuperstep}, // fires on the replay pass
		},
	}
	for _, pl := range planes {
		run := func(plan *FaultPlan) ([]float32, int, int64) {
			cfg := colConfig(true, pl.pipelined, pl.batched, pl.chunk)
			cfg.Faults = plan
			eng := NewEngine[float32, [3]float32](topo, newColProg(pl.batched), cfg)
			if err := eng.Run(); err != nil {
				t.Fatal(err)
			}
			var sent int64
			for _, m := range eng.TotalMetrics() {
				sent += m.MessagesSent
			}
			return append([]float32(nil), eng.Values()...), eng.Recoveries(), sent
		}
		clean, rec0, sent0 := run(nil)
		if rec0 != 0 {
			t.Fatalf("%s: clean run recovered", pl.name)
		}
		for name, faults := range faultSets {
			failed, rec, sent := run(&FaultPlan{Crashes: faults})
			if rec != len(faults) {
				t.Fatalf("%s/%s: recoveries = %d, want %d", pl.name, name, rec, len(faults))
			}
			if sent != sent0 {
				t.Fatalf("%s/%s: message totals differ: clean %d vs %d (lost work not discarded)",
					pl.name, name, sent0, sent)
			}
			for v := range clean {
				if clean[v] != failed[v] {
					t.Fatalf("%s/%s: value[%d] differs after recovery: %v vs %v",
						pl.name, name, v, clean[v], failed[v])
				}
			}
		}
	}
}

// TestFaultAtSuperstepZero: the legacy FailAtSuperstep field cannot target
// superstep 0 (its zero value means "off"); a FaultPlan entry can, and the
// always-taken step-0 checkpoint recovers it.
func TestFaultAtSuperstepZero(t *testing.T) {
	topo := randomTopology(t, 50, 200, 13)
	run := func(plan *FaultPlan) ([]float32, int) {
		cfg := colConfig(false, false, false, 0)
		cfg.Faults = plan
		eng := NewEngine[float32, [3]float32](topo, newScratchSumProg(5, 4), cfg)
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return append([]float32(nil), eng.Values()...), eng.Recoveries()
	}
	clean, _ := run(nil)
	for _, p := range []FaultPoint{FaultBeforeSuperstep, FaultMidPipeline, FaultAtBarrier} {
		failed, rec := run(&FaultPlan{Crashes: []Fault{{Superstep: 0, Point: p}}})
		if rec != 1 {
			t.Fatalf("%v at superstep 0: recoveries = %d, want 1", p, rec)
		}
		for v := range clean {
			if clean[v] != failed[v] {
				t.Fatalf("%v at superstep 0: value[%d] differs", p, v)
			}
		}
	}
}

// TestBoxedPlaneFaultRecovery mirrors the columnar matrix on the boxed
// message plane, exercising worker mail and aggregators across a rollback.
func TestBoxedPlaneFaultRecovery(t *testing.T) {
	topo := randomTopology(t, 60, 240, 17)
	// A boxed program using every snapshotted channel: vertex messages,
	// worker mail, and an aggregator read back the next superstep.
	prog := func() VertexProgram[float64, float64] {
		return progFunc[float64, float64](func(ctx *Context[float64, float64], msgs []float64) {
			if ctx.Superstep == 0 {
				*ctx.Value = float64(int(ctx.ID)%9 + 1)
			} else {
				var s float64
				for _, m := range msgs {
					s += m
				}
				for _, m := range ctx.WorkerMail() {
					s += m / 1000
				}
				if g, ok := ctx.AggregatorGet("shift"); ok {
					s += float64(g[0])
				}
				*ctx.Value = math.Mod(s, 9973)
			}
			if ctx.Superstep >= 6 {
				ctx.VoteToHalt()
				return
			}
			dsts, _ := ctx.OutEdges()
			for _, d := range dsts {
				ctx.SendMessage(d, *ctx.Value+float64(ctx.ID)/7)
			}
			ctx.SendToWorker((int(ctx.ID)+1)%ctx.NumWorkers(), float64(ctx.ID))
			if ctx.ID == 0 {
				ctx.AggregatorPut("shift", []float32{float32(ctx.Superstep)})
			}
		})
	}
	run := func(plan *FaultPlan) ([]float64, int) {
		eng := NewEngine[float64, float64](topo, prog(), Config[float64]{
			NumWorkers: 4, Parallel: true, MaxSupersteps: 10, CheckpointEvery: 2, Faults: plan,
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return append([]float64(nil), eng.Values()...), eng.Recoveries()
	}
	clean, _ := run(nil)
	for name, faults := range map[string][]Fault{
		"mid":     {{Superstep: 3, Point: FaultMidPipeline}},
		"barrier": {{Superstep: 5, Point: FaultAtBarrier}},
		"multi":   {{Superstep: 1, Point: FaultAtBarrier}, {Superstep: 5, Point: FaultMidPipeline}},
	} {
		failed, rec := run(&FaultPlan{Crashes: faults})
		if rec != len(faults) {
			t.Fatalf("%s: recoveries = %d, want %d", name, rec, len(faults))
		}
		for v := range clean {
			if clean[v] != failed[v] {
				t.Fatalf("%s: value[%d] differs after boxed recovery: %v vs %v",
					name, v, clean[v], failed[v])
			}
		}
	}
}

// runDurable executes one engine run against a disk store in dir, optionally
// resuming, with MaxSupersteps capped at maxSteps (simulating a kill by
// stopping the loop early while epochs stay on disk).
func runDurable(t *testing.T, topo Topology, pipelined, batched bool, chunk, maxSteps int, dir string, resume bool) ([]float32, bool) {
	t.Helper()
	cfg := colConfig(true, pipelined, batched, chunk)
	cfg.MaxSupersteps = maxSteps
	eng := NewEngine[float32, [3]float32](topo, newColProg(batched), cfg)
	st, err := checkpoint.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetSink(st, colCodec{})
	resumed := false
	if resume {
		if resumed, err = eng.Resume(); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return append([]float32(nil), eng.Values()...), resumed
}

// TestDurableResumeBitIdentical: stop a run partway (epochs on disk), build
// a fresh engine over the same store, Resume, finish — values must equal an
// uninterrupted run's, on every plane combo including awkward chunk sizes.
func TestDurableResumeBitIdentical(t *testing.T) {
	topo := randomTopology(t, 70, 300, 21)
	planes := []struct {
		name               string
		pipelined, batched bool
		chunk              int
	}{
		{"bsp-pervertex", false, false, 0},
		{"pipelined-pervertex", true, false, 5},
		{"pipelined-batched", true, true, 4},
		{"pipelined-awkward-chunk", true, true, 7},
	}
	for _, pl := range planes {
		clean, _ := runDurable(t, topo, pl.pipelined, pl.batched, pl.chunk, 10, t.TempDir(), false)
		dir := t.TempDir()
		runDurable(t, topo, pl.pipelined, pl.batched, pl.chunk, 4, dir, false) // "killed" after superstep 3
		resumedVals, resumed := runDurable(t, topo, pl.pipelined, pl.batched, pl.chunk, 10, dir, true)
		if !resumed {
			t.Fatalf("%s: no epoch found to resume from", pl.name)
		}
		for v := range clean {
			if clean[v] != resumedVals[v] {
				t.Fatalf("%s: value[%d] differs after resume: %v vs %v",
					pl.name, v, clean[v], resumedVals[v])
			}
		}
	}
}

// TestDurableResumeBoxedPlane covers Resume on the boxed plane (codec-
// encoded M values in the epoch).
func TestDurableResumeBoxedPlane(t *testing.T) {
	topo := randomTopology(t, 60, 240, 9)
	run := func(maxSteps int, dir string, resume bool) ([]float64, bool) {
		prog := &PageRankProgram{NumVertices: 60, Iterations: 8}
		eng := NewEngine[float64, float64](topo, prog, Config[float64]{
			NumWorkers: 3, MaxSupersteps: maxSteps, CheckpointEvery: 2, Combiner: PageRankCombiner,
		})
		st, err := checkpoint.NewStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetSink(st, rankCodec{})
		resumed := false
		if resume {
			if resumed, err = eng.Resume(); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return append([]float64(nil), eng.Values()...), resumed
	}
	clean, _ := run(10, t.TempDir(), false)
	dir := t.TempDir()
	run(4, dir, false)
	got, resumed := run(10, dir, true)
	if !resumed {
		t.Fatal("no epoch found to resume from")
	}
	for v := range clean {
		if clean[v] != got[v] {
			t.Fatalf("value[%d] differs after boxed resume: %v vs %v", v, clean[v], got[v])
		}
	}
}

// TestResumeFallsBackPastCorruptEpoch: corrupt the newest epoch file; Resume
// must recover from the previous epoch and still finish bit-identically.
func TestResumeFallsBackPastCorruptEpoch(t *testing.T) {
	topo := randomTopology(t, 70, 300, 21)
	clean, _ := runDurable(t, topo, true, true, 4, 10, t.TempDir(), false)
	dir := t.TempDir()
	runDurable(t, topo, true, true, 4, 10, dir, false)
	// Corrupt the newest epoch: flip a byte in the middle.
	names, err := filepath.Glob(filepath.Join(dir, "epoch-*.ckpt"))
	if err != nil || len(names) < 2 {
		t.Fatalf("expected >=2 epochs, got %v (err %v)", names, err)
	}
	latest := names[len(names)-1]
	b, _ := os.ReadFile(latest)
	b[len(b)/2] ^= 0xff
	os.WriteFile(latest, b, 0o644)
	got, resumed := runDurable(t, topo, true, true, 4, 10, dir, true)
	if !resumed {
		t.Fatal("fallback epoch not found")
	}
	for v := range clean {
		if clean[v] != got[v] {
			t.Fatalf("value[%d] differs after torn-epoch fallback: %v vs %v", v, clean[v], got[v])
		}
	}
}

// TestResumeShapeMismatchFailsLoudly: an epoch written by a differently
// configured engine must be rejected, not silently misapplied.
func TestResumeShapeMismatch(t *testing.T) {
	topo := randomTopology(t, 70, 300, 21)
	dir := t.TempDir()
	runDurable(t, topo, false, false, 0, 4, dir, false) // BSP epoch
	cfg := colConfig(true, true, false, 5)              // pipelined engine
	eng := NewEngine[float32, [3]float32](topo, newScratchSumProg(6, 4), cfg)
	st, _ := checkpoint.NewStore(dir)
	eng.SetSink(st, colCodec{})
	if _, err := eng.Resume(); err == nil || !strings.Contains(err.Error(), "does not match engine") {
		t.Fatalf("shape mismatch not rejected: %v", err)
	}
}

// TestResumeEmptyStore: nothing on disk is a cold start, not an error.
func TestResumeEmptyStore(t *testing.T) {
	topo := ringTopology(t, 8)
	eng := NewEngine[float32, [3]float32](topo, newScratchSumProg(3, 2), Config[[3]float32]{
		NumWorkers: 2, MaxSupersteps: 6, CheckpointEvery: 2, Columnar: &ColumnarOps{},
	})
	st, _ := checkpoint.NewStore(t.TempDir())
	eng.SetSink(st, colCodec{})
	resumed, err := eng.Resume()
	if err != nil || resumed {
		t.Fatalf("empty store: resumed=%v err=%v", resumed, err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointStatsObservability: committed checkpoints, snapshot wall
// time, persisted bytes, and the per-superstep CheckpointNs metric must all
// be visible.
func TestCheckpointStatsObservability(t *testing.T) {
	topo := randomTopology(t, 50, 200, 5)
	cfg := colConfig(false, false, false, 0)
	eng := NewEngine[float32, [3]float32](topo, newScratchSumProg(6, 4), cfg)
	st, _ := checkpoint.NewStore(t.TempDir())
	eng.SetSink(st, colCodec{})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	cs := eng.CheckpointStats()
	// 6 rounds + halt step, CheckpointEvery=2: seed at 0 plus steps 2,4,6.
	if cs.Checkpoints < 3 {
		t.Fatalf("checkpoints = %d, want >= 3", cs.Checkpoints)
	}
	if cs.Bytes == 0 || cs.SnapshotNs == 0 {
		t.Fatalf("stats not recorded: %+v", cs)
	}
	var perStep int64
	for _, step := range eng.Metrics() {
		perStep += step[0].CheckpointNs
	}
	if perStep == 0 {
		t.Fatal("StepMetrics.CheckpointNs never charged")
	}
	var total int64
	for _, m := range eng.TotalMetrics() {
		total += m.CheckpointNs
	}
	if total != perStep {
		t.Fatalf("TotalMetrics checkpoint time %d != per-step sum %d", total, perStep)
	}
}

// TestWatchdogDegradesToInlineAssembly: stall the drain goroutines past the
// watchdog; senders must degrade to inline assembly, the run must finish,
// and results must stay bit-identical to the unstalled run.
func TestWatchdogDegradesToInlineAssembly(t *testing.T) {
	topo := randomTopology(t, 70, 300, 21)
	run := func(stall bool) ([]float32, int) {
		cfg := colConfig(true, true, false, 2)
		cfg.PipelineDepth = 1
		cfg.PipelineWatchdog = 2 * time.Millisecond
		eng := NewEngine[float32, [3]float32](topo, newScratchSumProg(6, 4), cfg)
		if stall {
			eng.asmStall = func(int) { time.Sleep(20 * time.Millisecond) }
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return append([]float32(nil), eng.Values()...), eng.WatchdogTrips()
	}
	clean, trips0 := run(false)
	if trips0 != 0 {
		t.Fatalf("unstalled run tripped the watchdog %d times", trips0)
	}
	stalled, trips := run(true)
	if trips == 0 {
		t.Fatal("stalled run never tripped the watchdog")
	}
	for v := range clean {
		if clean[v] != stalled[v] {
			t.Fatalf("value[%d] differs under degraded assembly: %v vs %v", v, clean[v], stalled[v])
		}
	}
}

// TestLegacyFailAtSuperstepStillWorks pins the back-compat fold of the old
// field into the fault plan.
func TestLegacyFailAtSuperstepStillWorks(t *testing.T) {
	topo := ringTopology(t, 20)
	prog := &PageRankProgram{NumVertices: 20, Iterations: 8}
	eng := NewEngine[float64, float64](topo, prog, Config[float64]{
		NumWorkers:      3,
		CheckpointEvery: 2,
		FailAtSuperstep: 3,
		Faults:          &FaultPlan{Crashes: []Fault{{Superstep: 5, Point: FaultAtBarrier}}},
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if eng.Recoveries() != 2 {
		t.Fatalf("recoveries = %d, want 2 (legacy field + plan entry)", eng.Recoveries())
	}
}
