package pregel

import (
	"testing"
)

// hopProg records the first superstep each vertex computed at (1-based so
// zero means "never computed") and relays a token along its out-edges, then
// halts. With a seeded frontier, computation floods outward one hop per
// superstep — the activation pattern the incremental GNN drivers rely on.
type hopProg struct{ hops int }

func (p *hopProg) Compute(ctx *Context[int, int], msgs []int) {
	if *ctx.Value == 0 {
		*ctx.Value = ctx.Superstep + 1
	}
	if ctx.Superstep < p.hops {
		dsts, _ := ctx.OutEdges()
		for _, d := range dsts {
			ctx.SendMessage(d, 1)
		}
	}
	ctx.VoteToHalt()
}

func TestFrontierFloodsFromSeeds(t *testing.T) {
	const n = 12
	topo := ringTopology(t, n)
	for _, workers := range []int{1, 3} {
		prog := &hopProg{hops: 3}
		eng := NewEngine[int, int](topo, prog, Config[int]{
			NumWorkers: workers, MaxSupersteps: 10, Frontier: []int32{0},
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		// Vertex v on the ring first computes at superstep v, for v <= hops
		// (relaying stops at superstep hops); later vertices never run.
		for v, got := range eng.Values() {
			want := 0
			if v <= 3 {
				want = v + 1
			}
			if got != want {
				t.Fatalf("workers=%d vertex %d first-computed %d, want %d", workers, v, got, want)
			}
		}
		// Frontier size per superstep is observable through StepMetrics.
		for s, step := range eng.Metrics() {
			active := 0
			for _, m := range step {
				active += m.ActiveVertices
			}
			if active != 1 {
				t.Fatalf("superstep %d: %d active vertices, want 1", s, active)
			}
		}
	}
}

func TestFrontierMultipleSeeds(t *testing.T) {
	const n = 10
	topo := ringTopology(t, n)
	prog := &hopProg{hops: 1}
	eng := NewEngine[int, int](topo, prog, Config[int]{
		NumWorkers: 2, MaxSupersteps: 5, Frontier: []int32{2, 7},
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := map[int]int{2: 1, 7: 1, 3: 2, 8: 2}
	for v, got := range eng.Values() {
		if got != want[v] {
			t.Fatalf("vertex %d first-computed %d, want %d", v, got, want[v])
		}
	}
}

func TestFrontierEmptyTerminatesImmediately(t *testing.T) {
	topo := ringTopology(t, 8)
	eng := NewEngine[int, int](topo, &hopProg{hops: 3}, Config[int]{
		NumWorkers: 2, MaxSupersteps: 5, Frontier: []int32{},
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if eng.Supersteps() != 0 {
		t.Fatalf("supersteps = %d, want 0", eng.Supersteps())
	}
	for v, got := range eng.Values() {
		if got != 0 {
			t.Fatalf("vertex %d computed (%d) despite empty frontier", v, got)
		}
	}
}

func TestFrontierOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range frontier vertex")
		}
	}()
	NewEngine[int, int](ringTopology(t, 4), &hopProg{}, Config[int]{
		NumWorkers: 1, Frontier: []int32{9},
	})
}
