package pregel

// The pipelined superstep plane (Config.Pipelined): overlap each superstep's
// scatter/delivery with its compute instead of deferring all delivery work
// to one hard barrier.
//
// Senders cut their per-(sender,receiver) columnar send buffers at chunk
// granularity: every ChunkSize owned vertices (automatically on the
// per-vertex plane, via BatchContext.FlushChunk on the batched plane) the
// rows appended since the previous seal form a sealed extent that is eagerly
// flushed to its receiving worker. An extent is not a copy — it captures the
// buffer's dst/kind/len column slices over the sealed row range. Those
// columns are immutable once written (appends only extend the buffer, and
// sender-side combining rewrites only the count column and payload extents),
// so the receiver can assemble an extent while the sender keeps appending —
// even across a column reallocation, since the captured slices keep the old
// backing array alive with the sealed rows intact. The send path itself is
// exactly the BSP code: sealing records row watermarks, it never touches how
// rows are produced, which is what makes bit-identity structural rather
// than coincidental.
//
// Background inbox assembly consumes sealed extents while later chunks are
// still computing: it buckets each extent's rows into the counting sort's
// per-vertex counts and prices the extent's traffic (run-length wire pricing
// over rows sharing a (kind, payload-length) shape — whole extents, for
// identity-payload scatters). Under Parallel execution assembly runs on one
// goroutine per receiver behind a PipelineDepth-bounded queue, filling cores
// that finished their partitions early; in serial runs the same assembly
// executes inline at the flush, which still replaces the BSP barrier's three
// post-compute passes (sent accounting, received accounting, the counting
// sort's first pass) with one cache-warm pass per extent.
//
// The barrier then shrinks to: drain the in-flight extents, prefix-sum the
// pre-bucketed counts, and run the ascending-source merge over the (now
// settled) sender buffers. The merge exploits what the src contract
// guarantees (src = the computing vertex's id, so every buffer is ascending
// in src and every src is owned by exactly one sender): the globally
// ascending source order is simply "vertices in id order, each drained from
// its owner's buffer" — an ownership scan replacing the BSP merge's per-row
// NumWorkers-wide head scan (the documented worst case under mod-N hash
// placement, where runs collapse to single rows). Dense supersteps cost
// O(numVertices + rows); sparse ones (a converged frontier) jump over
// sourceless id stretches to the lowest live head, bounding delivery at
// O(rows + runs·NumWorkers) instead of rescanning every vertex id. A
// program that breaks the contract leaves rows no ownership scan can reach;
// the engine detects the stall and panics deterministically rather than
// dropping messages.
//
// Everything downstream of the barrier is untouched: arenas double-buffer
// through colCur/colLive exactly as on the BSP plane (sealed extents are
// ranges of those same buffers, so they survive into the next superstep's
// send phase for free), checkpoints deep-copy the delivered inbox the same
// way, and inbox views stay zero-copy.

import (
	"sync"
	"sync/atomic"
	"time"
)

// defaultChunkSize is the pipelined plane's default chunk granularity in
// owned vertices; defaultPipelineDepth bounds each receiver's in-flight
// extent queue under Parallel execution; defaultWatchdog is how long a
// sender blocks on a backpressured assembler before degrading it to inline
// assembly (Config.PipelineWatchdog overrides).
const (
	defaultChunkSize     = 64
	defaultPipelineDepth = 32
	defaultWatchdog      = 30 * time.Second
)

// extent is one sealed chunk of a sender→receiver send buffer, in flight to
// the receiver's assembler: zero-copy views of the immutable header columns
// over the sealed row range.
type extent struct {
	sender int
	dsts   []int32
	kinds  []uint8
	lens   []int32
}

// inMetrics carries a receiver's assembled message/byte totals into the next
// superstep's compute metrics (the superstep that consumes them — matching
// when the BSP path counts received traffic).
type inMetrics struct {
	msgs  int64
	bytes int64
}

// inboxAsm is one receiver's background inbox-assembly state for the current
// superstep. During the compute phase it is owned by exactly one goroutine:
// the drain goroutine behind queue under Parallel execution, the single
// engine goroutine otherwise. The barrier reads it only after finishAssembly.
type inboxAsm struct {
	queue chan extent   // in-flight extents; non-nil only during a parallel compute phase
	done  chan struct{} // closed when the drain goroutine exits

	cnt   []int32 // counting-sort buckets, one-shifted like colInbox.off (len owned+1)
	mailN int
	in    inMetrics

	// Per-sender send accounting, folded into the senders' StepMetrics at
	// the barrier: assembly prices extents receiver-side, but the traffic is
	// charged to the sending worker exactly as the BSP accountSent pass
	// does.
	sentMsgs  []int64
	sentBytes []int64

	// Watchdog degradation state. When a sender times out waiting on this
	// assembler's queue it flips degraded and assembles its own extents
	// inline from then on (this superstep); mu then serializes every
	// assembleExtent touching this assembler — sender-inline and drain-
	// goroutine alike. Assembly is commutative integer accumulation, so the
	// serialization order does not affect results; see flushExtent.
	mu       sync.Mutex
	degraded atomic.Bool
}

func newInboxAsm(nw, owned int) *inboxAsm {
	return &inboxAsm{
		cnt:       make([]int32, owned+1),
		sentMsgs:  make([]int64, nw),
		sentBytes: make([]int64, nw),
	}
}

func (a *inboxAsm) reset() {
	for i := range a.cnt {
		a.cnt[i] = 0
	}
	for i := range a.sentMsgs {
		a.sentMsgs[i] = 0
		a.sentBytes[i] = 0
	}
	a.mailN = 0
	a.in = inMetrics{}
	a.degraded.Store(false)
}

// startAssembly resets every receiver's assembler and, under Parallel
// execution, starts one drain goroutine per receiver. Must run before any
// compute can flush an extent.
func (e *Engine[V, M]) startAssembly() {
	parallel := e.cfg.Parallel && e.cfg.NumWorkers > 1
	for r := range e.asm {
		a := e.asm[r]
		a.reset()
		if parallel {
			a.queue = make(chan extent, e.pipeDepth)
			a.done = make(chan struct{})
			go func(r int, a *inboxAsm) {
				for ext := range a.queue {
					if e.asmStall != nil {
						e.asmStall(r)
					}
					e.assembleGuarded(a, r, ext)
				}
				close(a.done)
			}(r, a)
		}
	}
}

// finishAssembly drains the in-flight extents: queues close and the drain
// goroutines are joined, establishing the happens-before edge the barrier's
// reads of assembler state rely on. A no-op in serial runs (assembly already
// happened inline).
func (e *Engine[V, M]) finishAssembly() {
	for _, a := range e.asm {
		if a.queue != nil {
			close(a.queue)
		}
	}
	for _, a := range e.asm {
		if a.queue != nil {
			<-a.done
			a.queue, a.done = nil, nil
		}
	}
}

// sealChunk seals every receiver's rows appended since the previous seal and
// eagerly flushes the extents to the receivers' assemblers. Sealing is pure
// bookkeeping over the BSP send buffers — row watermarks plus captured
// column views — so the rows themselves (including in-place combiner merges
// into already-sealed rows, which never change a row's dst, kind or length)
// are produced exactly as on the BSP plane.
func (w *worker[V, M]) sealChunk() {
	e := w.engine
	if !e.pipelined {
		return
	}
	cur := e.colCur[w.id]
	for r, b := range cur {
		lo, hi := w.sealedRows[r], len(b.dsts)
		if hi == lo {
			continue
		}
		w.sealedRows[r] = hi
		ext := extent{
			sender: w.id,
			dsts:   b.dsts[lo:hi:hi],
			kinds:  b.kinds[lo:hi:hi],
			lens:   b.lens[lo:hi:hi],
		}
		if a := e.asm[r]; a.queue != nil {
			w.flushExtent(a, r, ext)
		} else {
			e.assembleExtent(r, ext)
		}
	}
}

// flushExtent hands a sealed extent to receiver r's assembler. The fast
// path is a non-blocking queue send; when the assembler is PipelineDepth
// extents behind, the sender blocks — bounded by the watchdog. A watchdog
// trip marks the assembler degraded: this extent and every later one this
// sender seals for it are assembled inline under the assembler's mutex,
// so a stalled (or starved) drain goroutine degrades the pipeline to
// BSP-like inline assembly instead of hanging the run. Inline and drain
// assembly interleave arbitrarily, which cannot affect results: an extent
// is assembled exactly once, and assembleExtent only does commutative
// integer accumulation into per-receiver state.
func (w *worker[V, M]) flushExtent(a *inboxAsm, r int, ext extent) {
	e := w.engine
	if !a.degraded.Load() {
		if e.watchdog <= 0 {
			a.queue <- ext // blocks when the receiver is PipelineDepth extents behind
			return
		}
		select {
		case a.queue <- ext:
			return
		default:
		}
		if w.wdTimer == nil {
			w.wdTimer = time.NewTimer(e.watchdog)
		} else {
			w.wdTimer.Reset(e.watchdog)
		}
		select {
		case a.queue <- ext:
			w.wdTimer.Stop()
			return
		case <-w.wdTimer.C:
			a.degraded.Store(true)
			atomic.AddInt64(&e.watchdogTrips, 1)
		}
	}
	e.assembleGuarded(a, r, ext)
}

// assembleGuarded assembles one extent, taking the assembler's mutex when
// the watchdog is armed (the only case where a degraded sender can be
// assembling concurrently with the drain goroutine). With the watchdog
// disabled the lock is skipped — single-owner assembly, as before.
func (e *Engine[V, M]) assembleGuarded(a *inboxAsm, r int, ext extent) {
	if e.watchdog > 0 {
		a.mu.Lock()
		defer a.mu.Unlock()
	}
	e.assembleExtent(r, ext)
}

// WatchdogTrips reports how many times a pipelined sender timed out on a
// backpressured assembler and degraded it to inline assembly.
func (e *Engine[V, M]) WatchdogTrips() int { return int(atomic.LoadInt64(&e.watchdogTrips)) }

// sealTail flushes the worker's final partial chunk at the end of its
// compute phase; a no-op outside the pipelined plane.
func (w *worker[V, M]) sealTail() { w.sealChunk() }

// assembleExtent is the background inbox assembly for one sealed extent: one
// pass bucketing rows into the counting sort's per-vertex counts, plus wire
// pricing with run-length compression over rows sharing a (kind, length)
// shape. It reads only the extent's captured dst/kind/len views — immutable
// after append — so the sender's concurrent appends and combiner merges
// (which rewrite counts and payload extents only) cannot race with it.
func (e *Engine[V, M]) assembleExtent(r int, ext extent) {
	a := e.asm[r]
	cnt := a.cnt
	mail := 0
	for _, dst := range ext.dsts {
		if dst < 0 {
			mail++
		} else {
			cnt[e.localIdx[dst]+1]++
		}
	}
	a.mailN += mail
	var bytes int64
	n := len(ext.dsts)
	for i := 0; i < n; {
		k, l := ext.kinds[i], ext.lens[i]
		j := i + 1
		for j < n && ext.kinds[j] == k && ext.lens[j] == l {
			j++
		}
		bytes += int64(j-i) * int64(e.colBytes(k, int(l)))
		i = j
	}
	a.sentMsgs[ext.sender] += int64(n)
	a.sentBytes[ext.sender] += bytes
	a.in.msgs += int64(n)
	a.in.bytes += bytes
}

// foldAssemblyMetrics charges each sender's assembled traffic to its current
// StepMetrics entry (splitting the remote share, as accountSent does) and
// stashes each receiver's totals for the next superstep's compute. Runs
// serially at the barrier, after delivery.
func (e *Engine[V, M]) foldAssemblyMetrics() {
	nw := e.cfg.NumWorkers
	for r := 0; r < nw; r++ {
		a := e.asm[r]
		for s := 0; s < nw; s++ {
			m := e.workers[s].m
			m.MessagesSent += a.sentMsgs[s]
			m.BytesSent += a.sentBytes[s]
			if s != r {
				m.RemoteMessagesSent += a.sentMsgs[s]
				m.RemoteBytesSent += a.sentBytes[s]
			}
		}
		e.pendIn[r] = a.in
	}
}

// deliverPipelined builds receiver r's CSR inbox and mailbox from the
// assembled state: prefix-sum the pre-bucketed counts, fill the mailbox in
// sender-major order, then scatter the vertex rows with the ownership-order
// merge — ascending vertex id, each id drained from its owning sender's
// buffer — which yields the exact globally-ascending-source order of the BSP
// merge without its per-row head scan. Payloads stay zero-copy views into
// the sender arenas.
func (e *Engine[V, M]) deliverPipelined(r int) {
	a := e.asm[r]
	in := &e.colIn[r]
	nw := e.cfg.NumWorkers

	off := a.cnt
	for i := 1; i < len(off); i++ {
		off[i] += off[i-1]
	}
	// The prefix-summed buckets become the inbox CSR; the previous offset
	// array becomes next superstep's (re-zeroed) bucket scratch.
	a.cnt, in.off = in.off, off
	total := int(off[len(off)-1])
	in.cols.resize(total)
	copy(in.next, off[:len(in.next)])

	e.fillColMail(r, a.mailN)
	if total == 0 {
		return
	}

	cur, heads := e.mergeCur[r], e.mergeHeads[r]
	live, single := 0, -1
	loSrc := mergeDone
	for s := 0; s < nw; s++ {
		b := e.colCur[s][r]
		cur[s] = skipMail(b.dsts, 0)
		heads[s] = mergeDone
		if cur[s] < len(b.dsts) {
			heads[s] = b.srcs[cur[s]]
			live++
			single = s
			if heads[s] < loSrc {
				loSrc = heads[s]
			}
		}
	}
	if live == 1 {
		// Single live sender: its buffer order already is the global order.
		b := e.colCur[single][r]
		for i := cur[single]; i < len(b.dsts); i++ {
			if dst := b.dsts[i]; dst >= 0 {
				e.scatterColRow(in, b, i, dst)
			}
		}
		return
	}
	n := int32(len(e.workerOf))
	misses := 0
	for v := loSrc; live > 0 && v >= 0 && v < n; {
		s := int(e.workerOf[v])
		if heads[s] != v {
			v++
			misses++
			// Sparse superstep: after a worker-count's worth of consecutive
			// sourceless ids, stop walking and jump straight to the lowest
			// live head. Dense supersteps never trigger this (the next
			// source is nearby), so the hot path stays a single increment;
			// converged frontiers pay O(rows + runs·NumWorkers) instead of
			// rescanning every vertex id. Under the src contract live heads
			// are always at or ahead of the scan point, so a head behind it
			// is a contract violation — fall through to the stall panic.
			if misses >= nw {
				misses = 0
				nv := mergeDone
				for _, h := range heads {
					if h < nv {
						nv = h
					}
				}
				if nv < v {
					break
				}
				v = nv
			}
			continue
		}
		misses = 0
		b := e.colCur[s][r]
		i := cur[s]
		for {
			if i >= len(b.dsts) {
				heads[s] = mergeDone
				live--
				break
			}
			dst := b.dsts[i]
			if dst < 0 {
				i++
				continue
			}
			if src := b.srcs[i]; src != v {
				heads[s] = src
				break
			}
			e.scatterColRow(in, b, i, dst)
			i++
		}
		cur[s] = i
		v++
	}
	if live > 0 {
		panic("pregel: pipelined delivery stalled — a program sent columnar messages " +
			"violating the src contract (src must be the computing vertex's id); " +
			"run it on the BSP plane or fix its sends")
	}
}
