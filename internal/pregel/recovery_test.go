package pregel

import (
	"math"
	"testing"
)

// Fault tolerance: a failure mid-run plus checkpoint recovery must produce
// exactly the results of a failure-free run.

func TestRecoveryReproducesPageRank(t *testing.T) {
	topo := randomTopology(t, 80, 400, 9)
	run := func(failAt, checkpointEvery int) ([]float64, int) {
		prog := &PageRankProgram{NumVertices: 80, Iterations: 12}
		eng := NewEngine[float64, float64](topo, prog, Config[float64]{
			NumWorkers:      4,
			Combiner:        PageRankCombiner,
			CheckpointEvery: checkpointEvery,
			FailAtSuperstep: failAt,
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 80)
		copy(out, eng.Values())
		return out, eng.Recoveries()
	}
	clean, rec0 := run(0, 3)
	if rec0 != 0 {
		t.Fatal("clean run must not recover")
	}
	failed, rec1 := run(7, 3)
	if rec1 != 1 {
		t.Fatalf("recoveries = %d, want 1", rec1)
	}
	for v := range clean {
		if clean[v] != failed[v] {
			t.Fatalf("rank[%d] differs after recovery: %v vs %v", v, clean[v], failed[v])
		}
	}
}

func TestRecoveryAtCheckpointBoundary(t *testing.T) {
	topo := ringTopology(t, 20)
	prog := &PageRankProgram{NumVertices: 20, Iterations: 8}
	eng := NewEngine[float64, float64](topo, prog, Config[float64]{
		NumWorkers:      3,
		CheckpointEvery: 4,
		FailAtSuperstep: 4, // fails exactly on the checkpointed superstep
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if eng.Recoveries() != 1 {
		t.Fatalf("recoveries = %d", eng.Recoveries())
	}
	var sum float64
	for _, r := range eng.Values() {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("rank mass after recovery = %v", sum)
	}
}

func TestFailureWithoutCheckpointErrors(t *testing.T) {
	topo := ringTopology(t, 10)
	prog := &PageRankProgram{NumVertices: 10, Iterations: 5}
	eng := NewEngine[float64, float64](topo, prog, Config[float64]{
		NumWorkers:      2,
		FailAtSuperstep: 2, // no CheckpointEvery configured
	})
	if err := eng.Run(); err == nil {
		t.Fatal("failure without checkpoints must surface an error")
	}
}

func TestRecoveryMetricsDiscardLostWork(t *testing.T) {
	topo := randomTopology(t, 40, 150, 10)
	run := func(failAt int) int64 {
		prog := &PageRankProgram{NumVertices: 40, Iterations: 6}
		eng := NewEngine[float64, float64](topo, prog, Config[float64]{
			NumWorkers: 3, CheckpointEvery: 2, FailAtSuperstep: failAt,
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		var sent int64
		for _, m := range eng.TotalMetrics() {
			sent += m.MessagesSent
		}
		return sent
	}
	clean := run(0)
	recovered := run(5)
	// Lost supersteps are rolled back and replayed; totals must match the
	// clean run (recovery re-executes, it does not double-count).
	if clean != recovered {
		t.Fatalf("message totals differ: clean %d vs recovered %d", clean, recovered)
	}
}

func TestGNNStyleValueSurvivesSnapshot(t *testing.T) {
	// Vertex programs that replace (not mutate) their value contents must
	// round-trip snapshots: exercise with a slice-valued program.
	type vec struct{ h []float64 }
	topo := ringTopology(t, 6)
	prog := progFunc[vec, int](func(ctx *Context[vec, int], msgs []int) {
		if ctx.Superstep >= 3 {
			ctx.VoteToHalt()
			return
		}
		ctx.Value.h = append([]float64(nil), float64(ctx.Superstep))
		dsts, _ := ctx.OutEdges()
		for _, d := range dsts {
			ctx.SendMessage(d, ctx.Superstep)
		}
	})
	eng := NewEngine[vec, int](topo, prog, Config[int]{
		NumWorkers: 2, CheckpointEvery: 1, FailAtSuperstep: 2, MaxSupersteps: 10,
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		if got := eng.VertexValue(int32(v)).h[0]; got != 2 {
			t.Fatalf("vertex %d value = %v, want 2", v, got)
		}
	}
}

// progFunc adapts a function to VertexProgram.
type progFunc[V, M any] func(ctx *Context[V, M], msgs []M)

func (f progFunc[V, M]) Compute(ctx *Context[V, M], msgs []M) { f(ctx, msgs) }
