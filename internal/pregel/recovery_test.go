package pregel

import (
	"math"
	"testing"
)

// Fault tolerance: a failure mid-run plus checkpoint recovery must produce
// exactly the results of a failure-free run.

func TestRecoveryReproducesPageRank(t *testing.T) {
	topo := randomTopology(t, 80, 400, 9)
	run := func(failAt, checkpointEvery int) ([]float64, int) {
		prog := &PageRankProgram{NumVertices: 80, Iterations: 12}
		eng := NewEngine[float64, float64](topo, prog, Config[float64]{
			NumWorkers:      4,
			Combiner:        PageRankCombiner,
			CheckpointEvery: checkpointEvery,
			FailAtSuperstep: failAt,
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 80)
		copy(out, eng.Values())
		return out, eng.Recoveries()
	}
	clean, rec0 := run(0, 3)
	if rec0 != 0 {
		t.Fatal("clean run must not recover")
	}
	failed, rec1 := run(7, 3)
	if rec1 != 1 {
		t.Fatalf("recoveries = %d, want 1", rec1)
	}
	for v := range clean {
		if clean[v] != failed[v] {
			t.Fatalf("rank[%d] differs after recovery: %v vs %v", v, clean[v], failed[v])
		}
	}
}

func TestRecoveryAtCheckpointBoundary(t *testing.T) {
	topo := ringTopology(t, 20)
	prog := &PageRankProgram{NumVertices: 20, Iterations: 8}
	eng := NewEngine[float64, float64](topo, prog, Config[float64]{
		NumWorkers:      3,
		CheckpointEvery: 4,
		FailAtSuperstep: 4, // fails exactly on the checkpointed superstep
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if eng.Recoveries() != 1 {
		t.Fatalf("recoveries = %d", eng.Recoveries())
	}
	var sum float64
	for _, r := range eng.Values() {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("rank mass after recovery = %v", sum)
	}
}

func TestFailureWithoutCheckpointErrors(t *testing.T) {
	topo := ringTopology(t, 10)
	prog := &PageRankProgram{NumVertices: 10, Iterations: 5}
	eng := NewEngine[float64, float64](topo, prog, Config[float64]{
		NumWorkers:      2,
		FailAtSuperstep: 2, // no CheckpointEvery configured
	})
	if err := eng.Run(); err == nil {
		t.Fatal("failure without checkpoints must surface an error")
	}
}

func TestRecoveryMetricsDiscardLostWork(t *testing.T) {
	topo := randomTopology(t, 40, 150, 10)
	run := func(failAt int) int64 {
		prog := &PageRankProgram{NumVertices: 40, Iterations: 6}
		eng := NewEngine[float64, float64](topo, prog, Config[float64]{
			NumWorkers: 3, CheckpointEvery: 2, FailAtSuperstep: failAt,
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		var sent int64
		for _, m := range eng.TotalMetrics() {
			sent += m.MessagesSent
		}
		return sent
	}
	clean := run(0)
	recovered := run(5)
	// Lost supersteps are rolled back and replayed; totals must match the
	// clean run (recovery re-executes, it does not double-count).
	if clean != recovered {
		t.Fatalf("message totals differ: clean %d vs recovered %d", clean, recovered)
	}
}

func TestGNNStyleValueSurvivesSnapshot(t *testing.T) {
	// Vertex programs that replace (not mutate) their value contents must
	// round-trip snapshots: exercise with a slice-valued program.
	type vec struct{ h []float64 }
	topo := ringTopology(t, 6)
	prog := progFunc[vec, int](func(ctx *Context[vec, int], msgs []int) {
		if ctx.Superstep >= 3 {
			ctx.VoteToHalt()
			return
		}
		ctx.Value.h = append([]float64(nil), float64(ctx.Superstep))
		dsts, _ := ctx.OutEdges()
		for _, d := range dsts {
			ctx.SendMessage(d, ctx.Superstep)
		}
	})
	eng := NewEngine[vec, int](topo, prog, Config[int]{
		NumWorkers: 2, CheckpointEvery: 1, FailAtSuperstep: 2, MaxSupersteps: 10,
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		if got := eng.VertexValue(int32(v)).h[0]; got != 2 {
			t.Fatalf("vertex %d value = %v, want 2", v, got)
		}
	}
}

// progFunc adapts a function to VertexProgram.
type progFunc[V, M any] func(ctx *Context[V, M], msgs []M)

func (f progFunc[V, M]) Compute(ctx *Context[V, M], msgs []M) { f(ctx, msgs) }

// scratchSumProg is colSumProg sending every payload from one per-worker
// scratch buffer it mutates between (and after) sends: sound only because
// SendColumnar copies into the arena at send time. Combined with failure
// injection it exercises the checkpoint deep-copy rule end to end.
type scratchSumProg struct {
	rounds  int
	scratch [][3]float32 // one slot per worker
}

func newScratchSumProg(rounds, workers int) *scratchSumProg {
	return &scratchSumProg{rounds: rounds, scratch: make([][3]float32, workers)}
}

func (p *scratchSumProg) Compute(ctx *Context[float32, [3]float32], _ [][3]float32) {
	if ctx.Superstep == 0 {
		*ctx.Value = float32(int(ctx.ID)%5 + 1)
	} else {
		in := ctx.ColumnarInbox()
		var s float32
		for i := 0; i < in.Len(); i++ {
			s += in.Payloads[i][0] + in.Payloads[i][2]
		}
		*ctx.Value = float32(int(s) % sumMod)
	}
	if ctx.Superstep >= p.rounds {
		ctx.VoteToHalt()
		return
	}
	scratch := &p.scratch[ctx.WorkerID()]
	dsts, _ := ctx.OutEdges()
	for _, d := range dsts {
		*scratch = [3]float32{*ctx.Value, float32(ctx.ID), 1}
		ctx.SendColumnar(d, 0, ctx.ID, 1, scratch[:])
		*scratch = [3]float32{-1, -1, -1} // must not reach any receiver
	}
}

// TestColumnarRecoveryByteIdentical: a columnar run that checkpoints, loses
// a superstep to an injected failure, and replays must be bit-identical to
// the failure-free run — the in-flight arena payloads restored from the
// snapshot are the ones that were live at the checkpoint, not whatever the
// recycled arenas hold by the time the failure hits.
func TestColumnarRecoveryByteIdentical(t *testing.T) {
	topo := randomTopology(t, 70, 300, 21)
	run := func(failAt int) ([]float32, int) {
		eng := NewEngine[float32, [3]float32](topo, newScratchSumProg(6, 4), Config[[3]float32]{
			NumWorkers:      4,
			Parallel:        true,
			MaxSupersteps:   10,
			CheckpointEvery: 2,
			FailAtSuperstep: failAt,
			Columnar:        &ColumnarOps{Combine: colSumCombiner},
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return append([]float32(nil), eng.Values()...), eng.Recoveries()
	}
	clean, rec0 := run(0)
	if rec0 != 0 {
		t.Fatal("clean run must not recover")
	}
	failed, rec1 := run(5) // fails one superstep past the step-4 checkpoint
	if rec1 != 1 {
		t.Fatalf("recoveries = %d, want 1", rec1)
	}
	for v := range clean {
		if clean[v] != failed[v] {
			t.Fatalf("value[%d] differs after recovery: %v vs %v", v, clean[v], failed[v])
		}
	}
}

// TestPipelinedRecoveryByteIdentical: FailAtSuperstep mid-pipeline must
// replay byte-identically on the pipelined plane. Checkpoints are taken
// between supersteps, when every sealed extent has been drained into the
// inbox the snapshot deep-copies — so in-flight extents are excluded from
// snapshots by construction, deterministically — and the pending receive
// totals (pendIn) ride in the snapshot so replayed supersteps charge the
// same per-superstep metrics.
func TestPipelinedRecoveryByteIdentical(t *testing.T) {
	topo := randomTopology(t, 70, 300, 21)
	run := func(failAt int) ([]float32, int) {
		eng := NewEngine[float32, [3]float32](topo, newScratchSumProg(6, 4), Config[[3]float32]{
			NumWorkers:      4,
			Parallel:        true,
			MaxSupersteps:   10,
			CheckpointEvery: 2,
			FailAtSuperstep: failAt,
			Columnar:        &ColumnarOps{Combine: colSumCombiner},
			Pipelined:       true,
			ChunkSize:       5,
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return append([]float32(nil), eng.Values()...), eng.Recoveries()
	}
	clean, rec0 := run(0)
	if rec0 != 0 {
		t.Fatal("clean run must not recover")
	}
	failed, rec1 := run(5) // fails one superstep past the step-4 checkpoint
	if rec1 != 1 {
		t.Fatalf("recoveries = %d, want 1", rec1)
	}
	for v := range clean {
		if clean[v] != failed[v] {
			t.Fatalf("value[%d] differs after recovery: %v vs %v", v, clean[v], failed[v])
		}
	}
	// The clean pipelined run must also match the clean BSP run bit for bit.
	bspEng := NewEngine[float32, [3]float32](topo, newScratchSumProg(6, 4), Config[[3]float32]{
		NumWorkers: 4, MaxSupersteps: 10, Columnar: &ColumnarOps{Combine: colSumCombiner},
	})
	if err := bspEng.Run(); err != nil {
		t.Fatal(err)
	}
	for v, want := range bspEng.Values() {
		if clean[v] != want {
			t.Fatalf("value[%d]: pipelined %v vs bsp %v", v, clean[v], want)
		}
	}
}

// TestPipelinedBatchedRecovery: the batched pipelined plane (program-driven
// FlushChunk cadence plus ProgramStater slabs) must also replay to the
// failure-free result.
func TestPipelinedBatchedRecovery(t *testing.T) {
	topo := randomTopology(t, 70, 300, 21)
	run := func(failAt int) ([]float32, int) {
		eng := NewEngine[float32, [3]float32](topo, newBatchSumProg(6, 4), Config[[3]float32]{
			NumWorkers:      4,
			Parallel:        true,
			MaxSupersteps:   10,
			CheckpointEvery: 2,
			FailAtSuperstep: failAt,
			Columnar:        &ColumnarOps{Combine: colSumCombiner},
			Batched:         true,
			Pipelined:       true,
			ChunkSize:       4,
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return append([]float32(nil), eng.Values()...), eng.Recoveries()
	}
	clean, rec0 := run(0)
	if rec0 != 0 {
		t.Fatal("clean run must not recover")
	}
	failed, rec1 := run(5)
	if rec1 != 1 {
		t.Fatalf("recoveries = %d, want 1", rec1)
	}
	for v := range clean {
		if clean[v] != failed[v] {
			t.Fatalf("value[%d] differs after recovery: %v vs %v", v, clean[v], failed[v])
		}
	}
}

// TestCheckpointDeepCopiesArenas is the direct aliasing regression test:
// take a checkpoint, scribble over every live in-flight payload arena (as
// superstep recycling will), and verify a restore reproduces the original
// inbox payloads byte for byte from the snapshot's own storage.
func TestCheckpointDeepCopiesArenas(t *testing.T) {
	topo := randomTopology(t, 40, 200, 22)
	eng := NewEngine[float32, [3]float32](topo, newScratchSumProg(6, 3), Config[[3]float32]{
		NumWorkers: 3, MaxSupersteps: 10, Columnar: &ColumnarOps{},
	})
	eng.runSuperstep(0) // fills the inbox consumed by superstep 1
	eng.takeCheckpoint(1)

	// Record the payloads the inbox views currently resolve to.
	var want [][]float32
	for r := range eng.colIn {
		for _, p := range eng.colIn[r].cols.pays {
			want = append(want, append([]float32(nil), p...))
		}
	}
	if len(want) == 0 {
		t.Fatal("no in-flight payloads to checkpoint")
	}

	// Mutate every live arena — in production this is the recycling that
	// happens on the supersteps after the checkpoint.
	for s := range eng.colLive {
		for r := range eng.colLive[s] {
			if b := eng.colLive[s][r]; b != nil {
				for i := range b.arena {
					b.arena[i] = -9999
				}
			}
		}
	}

	eng.restoreCheckpoint()
	i := 0
	for r := range eng.colIn {
		for _, p := range eng.colIn[r].cols.pays {
			for j := range p {
				if p[j] != want[i][j] {
					t.Fatalf("restored payload %d[%d] = %v, want %v (checkpoint aliased a live arena)",
						i, j, p[j], want[i][j])
				}
			}
			i++
		}
	}
}
