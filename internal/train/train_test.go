package train

import (
	"bytes"
	"strings"
	"testing"

	"inferturbo/internal/datagen"
	"inferturbo/internal/gas"
	"inferturbo/internal/tensor"
)

func learnableDataset(t *testing.T, nodes int) *datagen.Dataset {
	t.Helper()
	return datagen.Generate(datagen.Config{
		Name: "learn", Nodes: nodes, AvgDegree: 8, Skew: datagen.SkewNone,
		FeatureDim: 12, NumClasses: 3, Homophily: 0.85, Noise: 0.6,
		TrainFrac: 0.5, ValFrac: 0.25, Seed: 101,
	})
}

func TestSAGETrainingLearns(t *testing.T) {
	ds := learnableDataset(t, 600)
	m := gas.NewSAGEModel("s", gas.TaskSingleLabel, 12, 16, 3, 2, 0, tensor.NewRNG(1))
	before := Evaluate(m, ds.Graph, ds.Graph.TestMask)
	hist, err := Train(m, ds.Graph, Config{Epochs: 15, BatchSize: 64, LR: 0.01, Fanouts: []int{10, 10}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	after := Evaluate(m, ds.Graph, ds.Graph.TestMask)
	if after < 0.8 {
		t.Fatalf("test accuracy = %v, want >= 0.8 (before training: %v)", after, before)
	}
	if after <= before {
		t.Fatalf("training did not improve: %v -> %v", before, after)
	}
	if len(hist.Epochs) != 15 {
		t.Fatalf("history has %d epochs", len(hist.Epochs))
	}
	// Loss should fall substantially from the first epoch.
	if hist.Epochs[len(hist.Epochs)-1].Loss >= hist.Epochs[0].Loss {
		t.Fatalf("loss did not decrease: %v -> %v", hist.Epochs[0].Loss, hist.Epochs[len(hist.Epochs)-1].Loss)
	}
}

func TestGATTrainingLearns(t *testing.T) {
	ds := learnableDataset(t, 500)
	m := gas.NewGATModel("g", gas.TaskSingleLabel, 12, 8, 2, 3, 2, tensor.NewRNG(3))
	_, err := Train(m, ds.Graph, Config{Epochs: 12, BatchSize: 64, LR: 0.01, Fanouts: []int{10, 10}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Evaluate(m, ds.Graph, ds.Graph.TestMask); acc < 0.7 {
		t.Fatalf("GAT test accuracy = %v, want >= 0.7", acc)
	}
}

func TestMultiLabelTraining(t *testing.T) {
	ds := datagen.Generate(datagen.Config{
		Name: "ml", Nodes: 400, AvgDegree: 8, Skew: datagen.SkewNone,
		FeatureDim: 12, NumClasses: 6, MultiLabel: true, Homophily: 0.85,
		TrainFrac: 0.5, ValFrac: 0.25, Seed: 7,
	})
	m := gas.NewSAGEModel("ml", gas.TaskMultiLabel, 12, 16, 6, 2, 0, tensor.NewRNG(5))
	before := Evaluate(m, ds.Graph, ds.Graph.TestMask)
	_, err := Train(m, ds.Graph, Config{Epochs: 10, BatchSize: 64, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	after := Evaluate(m, ds.Graph, ds.Graph.TestMask)
	if after <= before || after < 0.4 {
		t.Fatalf("multi-label micro-F1 = %v (before %v)", after, before)
	}
}

func TestTrainingDeterministicPerSeed(t *testing.T) {
	ds := learnableDataset(t, 300)
	run := func() *gas.Model {
		m := gas.NewSAGEModel("d", gas.TaskSingleLabel, 12, 8, 3, 2, 0, tensor.NewRNG(9))
		if _, err := Train(m, ds.Graph, Config{Epochs: 3, BatchSize: 32, Fanouts: []int{5, 5}, Seed: 10}); err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	for i, p := range a.Params() {
		if !p.Value.Equal(b.Params()[i].Value) {
			t.Fatalf("parameter %s differs across identical runs", p.Name)
		}
	}
}

func TestTrainedModelSurvivesSignatureRoundTrip(t *testing.T) {
	ds := learnableDataset(t, 300)
	m := gas.NewSAGEModel("rt", gas.TaskSingleLabel, 12, 8, 3, 2, 0, tensor.NewRNG(11))
	if _, err := Train(m, ds.Graph, Config{Epochs: 3, BatchSize: 32, Seed: 12}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gas.Save(m, &buf); err != nil {
		t.Fatal(err)
	}
	m2, err := gas.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if Evaluate(m, ds.Graph, ds.Graph.TestMask) != Evaluate(m2, ds.Graph, ds.Graph.TestMask) {
		t.Fatal("loaded model must score identically")
	}
}

func TestTrainLogOutput(t *testing.T) {
	ds := learnableDataset(t, 200)
	m := gas.NewSAGEModel("log", gas.TaskSingleLabel, 12, 8, 3, 1, 0, tensor.NewRNG(13))
	var buf bytes.Buffer
	if _, err := Train(m, ds.Graph, Config{Epochs: 2, BatchSize: 32, Seed: 14, Log: &buf}); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "epoch"); n != 2 {
		t.Fatalf("expected 2 log lines, got %d:\n%s", n, buf.String())
	}
}

func TestTrainRejectsMismatches(t *testing.T) {
	ds := learnableDataset(t, 100)
	badDim := gas.NewSAGEModel("bad", gas.TaskSingleLabel, 99, 8, 3, 1, 0, tensor.NewRNG(15))
	if _, err := Train(badDim, ds.Graph, Config{Epochs: 1}); err == nil {
		t.Fatal("dim mismatch must error")
	}
	badTask := gas.NewSAGEModel("bad", gas.TaskMultiLabel, 12, 8, 3, 1, 0, tensor.NewRNG(16))
	if _, err := Train(badTask, ds.Graph, Config{Epochs: 1}); err == nil {
		t.Fatal("task mismatch must error")
	}
	noTrain := learnableDataset(t, 100)
	for i := range noTrain.Graph.TrainMask {
		noTrain.Graph.TrainMask[i] = false
	}
	ok := gas.NewSAGEModel("ok", gas.TaskSingleLabel, 12, 8, 3, 1, 0, tensor.NewRNG(17))
	if _, err := Train(ok, noTrain.Graph, Config{Epochs: 1}); err == nil {
		t.Fatal("empty train mask must error")
	}
}

func TestHistoryBest(t *testing.T) {
	h := &History{Epochs: []EpochStats{{ValScore: 0.3}, {ValScore: 0.9}, {ValScore: 0.5}}}
	if h.Best() != 0.9 {
		t.Fatalf("Best = %v", h.Best())
	}
}
