// Package train implements the paper's training half of the pipeline:
// mini-batch training over sampled k-hop neighborhoods (the efficient,
// data-parallel mode) of a gas.Model that will later run full-batch
// inference unchanged. The hand-off artifact is the signature file written
// by gas.Save.
package train

import (
	"fmt"
	"io"

	"inferturbo/internal/gas"
	"inferturbo/internal/graph"
	"inferturbo/internal/nn"
	"inferturbo/internal/tensor"
)

// Config tunes a training run.
type Config struct {
	Epochs      int
	BatchSize   int
	LR          float32
	WeightDecay float32
	// Fanouts bounds sampled in-neighbors per hop during neighborhood
	// extraction; nil = information-complete neighborhoods.
	Fanouts []int
	// PosWeight scales the positive class in multi-label BCE (0 ⇒ 1);
	// counteracts sparse positives on many-class tasks.
	PosWeight float32
	Seed      int64
	// Log, when non-nil, receives one line per epoch.
	Log io.Writer
}

func (c Config) withDefaults() Config {
	if c.Epochs <= 0 {
		c.Epochs = 20
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.LR == 0 {
		c.LR = 0.01
	}
	return c
}

// EpochStats records one epoch's loss and validation score.
type EpochStats struct {
	Epoch    int
	Loss     float64
	ValScore float64
}

// History is the training trajectory.
type History struct {
	Epochs []EpochStats
}

// Best returns the highest validation score seen.
func (h *History) Best() float64 {
	best := 0.0
	for _, e := range h.Epochs {
		if e.ValScore > best {
			best = e.ValScore
		}
	}
	return best
}

// Train optimizes m on g's train-masked nodes with Adam over sampled k-hop
// mini-batches. The graph must carry labels matching the model's task.
func Train(m *gas.Model, g *graph.Graph, cfg Config) (*History, error) {
	cfg = cfg.withDefaults()
	if g.FeatureDim() != m.InDim() {
		return nil, fmt.Errorf("train: feature dim %d, model expects %d", g.FeatureDim(), m.InDim())
	}
	switch m.Task {
	case gas.TaskSingleLabel:
		if g.Labels == nil {
			return nil, fmt.Errorf("train: single-label model but graph has no labels")
		}
	case gas.TaskMultiLabel:
		if g.MultiLabels == nil {
			return nil, fmt.Errorf("train: multi-label model but graph has no label matrix")
		}
	default:
		return nil, fmt.Errorf("train: unknown task %q", m.Task)
	}

	trainNodes := graph.MaskedNodes(g.TrainMask)
	if len(trainNodes) == 0 {
		return nil, fmt.Errorf("train: no nodes in the train mask")
	}
	rng := tensor.NewRNG(cfg.Seed)
	opt := nn.NewAdam(cfg.LR)
	opt.WeightDecay = cfg.WeightDecay
	hops := m.NumLayers()

	hist := &History{}
	order := append([]int32(nil), trainNodes...)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		batches := 0
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			sub := graph.KHop(g, batch, graph.KHopOptions{Hops: hops, Fanouts: cfg.Fanouts, RNG: rng})
			ctx := &gas.Context{
				NodeState: sub.GatherFeatures(g),
				SrcIndex:  sub.Src,
				DstIndex:  sub.Dst,
				EdgeState: sub.GatherEdgeFeatures(g),
				NumNodes:  sub.NumNodes(),
			}
			logits := m.Forward(ctx)

			// Loss only on the batch roots (local ids 0..len(batch)).
			rootLogits := tensor.New(len(batch), logits.Cols)
			for i := range batch {
				copy(rootLogits.Row(i), logits.Row(i))
			}
			var loss float64
			var dRoot *tensor.Matrix
			if m.Task == gas.TaskSingleLabel {
				labels := make([]int32, len(batch))
				for i, v := range batch {
					labels[i] = g.Labels[v]
				}
				loss, dRoot = nn.SoftmaxCrossEntropy(rootLogits, labels)
			} else {
				targets := tensor.New(len(batch), g.MultiLabels.Cols)
				for i, v := range batch {
					copy(targets.Row(i), g.MultiLabels.Row(int(v)))
				}
				loss, dRoot = nn.BCEWithLogitsWeighted(rootLogits, targets, cfg.PosWeight)
			}
			dLogits := tensor.New(logits.Rows, logits.Cols)
			for i := range batch {
				copy(dLogits.Row(i), dRoot.Row(i))
			}
			m.Backward(dLogits)
			opt.Step(m.Params())
			epochLoss += loss
			batches++
		}
		val := Evaluate(m, g, g.ValMask)
		st := EpochStats{Epoch: epoch, Loss: epochLoss / float64(batches), ValScore: val}
		hist.Epochs = append(hist.Epochs, st)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %3d  loss %.4f  val %.4f\n", epoch, st.Loss, st.ValScore)
		}
	}
	return hist, nil
}

// Evaluate scores m on the masked nodes with a full-graph forward:
// accuracy for single-label tasks, micro-F1 for multi-label.
func Evaluate(m *gas.Model, g *graph.Graph, mask []bool) float64 {
	src, dst := g.EdgeList()
	ctx := &gas.Context{
		NodeState: g.Features,
		SrcIndex:  src,
		DstIndex:  dst,
		EdgeState: g.EdgeFeatures,
		NumNodes:  g.NumNodes,
	}
	logits := m.Infer(ctx)
	nodes := graph.MaskedNodes(mask)
	if len(nodes) == 0 {
		return 0
	}
	sel := tensor.GatherRows(logits, nodes)
	if m.Task == gas.TaskMultiLabel {
		targets := tensor.GatherRows(g.MultiLabels, nodes)
		return nn.MicroF1(sel, targets)
	}
	labels := make([]int32, len(nodes))
	for i, v := range nodes {
		labels[i] = g.Labels[v]
	}
	return nn.Accuracy(sel, labels)
}
