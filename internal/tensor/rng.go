package tensor

import (
	"math"
	"math/rand"
)

// RNG wraps a seeded source so every stochastic choice in the system —
// weight init, dataset synthesis, neighbor sampling — is reproducible from a
// single seed. Each consumer owns its own RNG; nothing shares global state.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float32 returns a uniform value in [0, 1).
func (g *RNG) Float32() float32 { return g.r.Float32() }

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle permutes n elements via the provided swap function.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Zipf draws values in [1, max] with P(k) ∝ 1/k^s, the degree law used by the
// power-law dataset generator. Implemented by inverse-CDF over a precomputed
// table would cost memory at large max, so we use rejection-free inversion on
// the continuous approximation, which matches the paper's "synthesized
// following the power-law" without requiring an exact discrete Zipf.
func (g *RNG) Zipf(s float64, max int) int {
	if max <= 1 {
		return 1
	}
	// Inverse CDF of the Pareto density p(x) ∝ x^-s on [1, max].
	u := g.r.Float64()
	if s == 1 {
		return clampInt(int(math.Exp(u*math.Log(float64(max)))), 1, max)
	}
	oneMinusS := 1 - s
	hi := math.Pow(float64(max), oneMinusS)
	x := math.Pow(u*(hi-1)+1, 1/oneMinusS)
	return clampInt(int(x), 1, max)
}

// Xavier fills m with Glorot-uniform values scaled by fan-in and fan-out,
// the init used by the reference GNN implementations.
func (g *RNG) Xavier(m *Matrix) {
	limit := float32(math.Sqrt(6 / float64(m.Rows+m.Cols)))
	for i := range m.Data {
		m.Data[i] = (g.r.Float32()*2 - 1) * limit
	}
}

// Normal fills m with N(0, std²) samples.
func (g *RNG) Normal(m *Matrix, std float32) {
	for i := range m.Data {
		m.Data[i] = float32(g.r.NormFloat64()) * std
	}
}

// Uniform fills m with uniform values in [lo, hi).
func (g *RNG) Uniform(m *Matrix, lo, hi float32) {
	for i := range m.Data {
		m.Data[i] = lo + g.r.Float32()*(hi-lo)
	}
}

// SampleWithoutReplacement picks k distinct values from [0, n). If k >= n it
// returns all of [0, n) in order. The partial Fisher–Yates keeps cost O(k).
func (g *RNG) SampleWithoutReplacement(n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + g.r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
