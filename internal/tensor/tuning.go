package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Tuning configures the deterministic parallel kernel layer: how many
// goroutines the dense and segment kernels may use, the cache-blocking
// factor of the MatMul family, and the work threshold below which every
// kernel falls back to its serial loop.
//
// Any worker count produces bit-identical results: parallelism is only ever
// over *owned row blocks* (each output row is written by exactly one
// goroutine) and every per-element reduction runs serially, in the same
// order as the serial kernel, inside its owner. See the package comment.
//
// The zero value means "defaults": Workers = GOMAXPROCS, BlockSize = 64,
// ParallelThreshold = 32768 scalar ops.
type Tuning struct {
	// Workers is the maximum number of goroutines a single kernel call may
	// fan out to. <= 0 selects runtime.GOMAXPROCS(0). Workers == 1 forces
	// the serial path.
	Workers int
	// BlockSize is the k-dimension cache tile of the MatMul kernels, in
	// rows of the right-hand operand. <= 0 selects 64 (a 64x64 float32
	// tile is 16 KiB — comfortably inside L1/L2).
	BlockSize int
	// ParallelThreshold is the minimum estimated scalar-op count of a
	// kernel call before it parallelizes; smaller calls run serially to
	// avoid goroutine overhead on tiny operands (e.g. the per-vertex 1xD
	// states inside the Pregel driver). <= 0 selects 32768.
	ParallelThreshold int
}

const (
	defaultBlockSize         = 64
	defaultParallelThreshold = 1 << 15
)

func (t Tuning) withDefaults() Tuning {
	if t.Workers <= 0 {
		t.Workers = runtime.GOMAXPROCS(0)
	}
	if t.BlockSize <= 0 {
		t.BlockSize = defaultBlockSize
	}
	if t.ParallelThreshold <= 0 {
		t.ParallelThreshold = defaultParallelThreshold
	}
	return t
}

var tuning atomic.Pointer[Tuning]

func init() {
	t := Tuning{}.withDefaults()
	tuning.Store(&t)
}

// SetTuning installs t (normalized with defaults) as the process-wide kernel
// tuning and returns the previous value, so callers can scope an override:
//
//	prev := tensor.SetTuning(tensor.Tuning{Workers: 1})
//	defer tensor.SetTuning(prev)
//
// Changing the tuning never changes results, only how they are computed.
func SetTuning(t Tuning) Tuning {
	nt := t.withDefaults()
	old := tuning.Swap(&nt)
	return *old
}

// CurrentTuning returns the active kernel tuning.
func CurrentTuning() Tuning { return *tuning.Load() }

// serialKernel reports whether a kernel call over n rows with the given
// estimated scalar-op work takes the serial path under the current tuning —
// the same predicate parallelRowBlocks applies. Hot per-vertex kernels
// branch on it before constructing their block closure, which would
// otherwise heap-allocate on every call (the closure escapes into the
// goroutine fan-out).
func serialKernel(n, work int) bool {
	t := tuning.Load()
	return n <= 1 || t.Workers <= 1 || work < t.ParallelThreshold
}

// parallelRowBlocks splits [0, n) into at most Workers contiguous blocks and
// runs fn once per block, concurrently. Each index is covered by exactly one
// block, so fn owns its rows exclusively. work is the estimated scalar-op
// count of the whole call; below the tuning threshold (or with one worker)
// fn runs once, inline, over the full range.
func parallelRowBlocks(n, work int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	t := tuning.Load()
	w := t.Workers
	if w > n {
		w = n
	}
	if w <= 1 || work < t.ParallelThreshold {
		fn(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		if hi == n {
			// Last block runs inline on the caller instead of parking it in
			// Wait — one fewer spawn and handoff per kernel call.
			fn(lo, hi)
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// parallelWeightedBlocks splits [0, n) into contiguous blocks whose summed
// weights are approximately balanced (weight(i) = starts[i+1]-starts[i], a
// CSR offset array) and runs fn once per block, concurrently. Used by the
// segment kernels so a handful of heavy segments — power-law graphs make
// them the norm — do not serialize behind one worker. The same serial
// fallback rules as parallelRowBlocks apply.
func parallelWeightedBlocks(n, work int, starts []int32, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	t := tuning.Load()
	w := t.Workers
	if w > n {
		w = n
	}
	if w <= 1 || work < t.ParallelThreshold {
		fn(0, n)
		return
	}
	total := int(starts[n])
	var wg sync.WaitGroup
	lo := 0
	for b := 0; b < w && lo < n; b++ {
		// Everything with cumulative weight below the block's share belongs
		// to it; the last block takes the remainder.
		target := int32((total * (b + 1)) / w)
		hi := lo
		for hi < n && (starts[hi+1] <= target || b == w-1) {
			hi++
		}
		if hi == lo {
			hi++ // a single over-heavy segment still advances
		}
		if hi == n {
			fn(lo, hi) // final block runs inline on the caller
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}
