// Package tensor provides the dense float32 matrix and segment primitives
// that every other layer of the system builds on: the GAS convolutions, the
// mini-batch trainer, and the vectorization step of both inference backends.
//
// Everything here is deterministic, including the goroutine-parallel
// kernels. The determinism model is "parallel over owned row blocks, serial
// within a reduction": a kernel may fan out over contiguous blocks of
// *output* rows, but each output row (and therefore each per-element
// floating-point summation) is owned by exactly one goroutine and reduced
// serially, in the same operand order as the serial loop. Consequently the
// parallel kernels are bit-identical to their serial counterparts at every
// Tuning — worker count, block size, and threshold change wall-clock, never
// results. No map iteration order is ever observable. That property is
// load-bearing: InferTurbo's headline guarantee is consistent predictions
// across runs, worker counts and backends, and it is enforced by tests all
// the way up the stack (see TestMatMulParallelBitIdentical and the Fig 7
// consistency experiment).
//
// Tuning configures the kernels process-wide via SetTuning; Pool provides
// buffer reuse for the ...Into variants so hot loops stop allocating.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float32 matrix.
//
// Rows*Cols == len(Data) always holds for a valid Matrix. The zero value is
// an empty 0x0 matrix ready to use.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New allocates a zeroed rows x cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows x cols matrix.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice %dx%d needs %d values, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix by copying the given equal-length rows.
func FromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("tensor: FromRows ragged input, row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v []float32) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: SetRow length %d != cols %d", len(v), m.Cols))
	}
	copy(m.Row(i), v)
}

// Shape returns (rows, cols).
func (m *Matrix) Shape() (int, int) { return m.Rows, m.Cols }

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
}

// Zero resets all elements in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Equal reports whether m and o have the same shape and identical elements.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether m and o have the same shape and elementwise
// |a-b| <= tol.
func (m *Matrix) AllClose(o *Matrix, tol float32) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		d := v - o.Data[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest elementwise absolute difference between two
// same-shaped matrices.
func (m *Matrix) MaxAbsDiff(o *Matrix) float32 {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	var max float32
	for i, v := range m.Data {
		d := v - o.Data[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// MatMul returns a @ b. The kernel is cache-blocked over the shared (k)
// dimension and parallel over blocks of output rows; every output row is
// accumulated by a single goroutine in ascending-k order, so the result is
// bit-identical to the serial triple loop at any Tuning.
func MatMul(a, b *Matrix) *Matrix {
	return matMulInto(New(a.Rows, b.Cols), a, b) // New is already zeroed
}

// MatMulInto computes a @ b into dst (which must be a.Rows x b.Cols),
// overwriting it, and returns dst. This is the allocation-free form of
// MatMul for use with a Pool.
func MatMulInto(dst, a, b *Matrix) *Matrix {
	dst.Zero()
	return matMulInto(dst, a, b)
}

// matMulInto accumulates a @ b into dst, which must be zeroed.
func matMulInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	kb := CurrentTuning().BlockSize
	work := 2 * a.Rows * a.Cols * b.Cols
	if serialKernel(a.Rows, work) {
		// Tiny operands (the per-vertex 1×D states inside the inference
		// drivers) skip parallelRowBlocks entirely: constructing the block
		// closure would heap-allocate once per call because it escapes into
		// the goroutine fan-out.
		matMulRange(dst, a, b, kb, 0, a.Rows)
		return dst
	}
	parallelRowBlocks(a.Rows, work, func(lo, hi int) {
		matMulRange(dst, a, b, kb, lo, hi)
	})
	return dst
}

// matMulRange accumulates rows [lo, hi) of a @ b into dst. k-tiles keep a
// kb-row band of b hot in cache across the block's rows. For a fixed output
// element the adds still arrive in ascending k order — tiles are visited in
// order, serially, and the 4-wide register blocking below performs its four
// adds sequentially (never as a reassociated dot product) — so neither
// blocking nor unrolling ever reorders a summation: results are
// bit-identical to the naive triple loop at any BlockSize.
func matMulRange(dst, a, b *Matrix, kb, lo, hi int) {
	for k0 := 0; k0 < a.Cols; k0 += kb {
		k1 := min(k0+kb, a.Cols)
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := dst.Row(i)
			k := k0
			// Register-blocked path: four b rows per pass quarter the
			// orow load/store traffic. Any zero lane falls back to the
			// scalar loop, keeping the sparsity skip (ReLU-heavy inputs)
			// exactly as the naive loop applies it.
			for ; k+3 < k1; k += 4 {
				av0, av1, av2, av3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
				if av0 != 0 && av1 != 0 && av2 != 0 && av3 != 0 {
					b0, b1, b2, b3 := b.Row(k), b.Row(k+1), b.Row(k+2), b.Row(k+3)
					_, _, _ = b1[len(b0)-1], b2[len(b0)-1], b3[len(b0)-1]
					for j, bv := range b0 {
						v := orow[j]
						v += av0 * bv
						v += av1 * b1[j]
						v += av2 * b2[j]
						v += av3 * b3[j]
						orow[j] = v
					}
					continue
				}
				if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
					continue
				}
				matMulScalarK(orow, arow, b, k, k+4)
			}
			matMulScalarK(orow, arow, b, k, k1)
		}
	}
}

// matMulScalarK is the scalar k-loop of matMulRange: one b row at a time,
// zero lanes skipped, adds in ascending k order.
func matMulScalarK(orow, arow []float32, b *Matrix, k0, k1 int) {
	for k := k0; k < k1; k++ {
		av := arow[k]
		if av == 0 {
			continue
		}
		brow := b.Row(k)
		for j, bv := range brow {
			orow[j] += av * bv
		}
	}
}

// MatMulAT returns aᵀ @ b, used by backprop for weight gradients. Parallel
// over blocks of output rows (a's columns); for each output element the
// accumulation runs in ascending input-row order, matching the serial loop
// bit-for-bit.
func MatMulAT(a, b *Matrix) *Matrix {
	return matMulATInto(New(a.Cols, b.Cols), a, b) // New is already zeroed
}

// MatMulATInto computes aᵀ @ b into dst (a.Cols x b.Cols), overwriting it.
func MatMulATInto(dst, a, b *Matrix) *Matrix {
	dst.Zero()
	return matMulATInto(dst, a, b)
}

// matMulATInto accumulates aᵀ @ b into dst, which must be zeroed.
func matMulATInto(dst, a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulAT %dx%d / %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulATInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	work := 2 * a.Rows * a.Cols * b.Cols
	parallelRowBlocks(a.Cols, work, func(lo, hi int) {
		for r := 0; r < a.Rows; r++ {
			arow := a.Row(r)
			brow := b.Row(r)
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				orow := dst.Row(i)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return dst
}

// MatMulBT returns a @ bᵀ, used by backprop for input gradients. Parallel
// over blocks of output rows; each dot product is computed serially by its
// row's owner.
func MatMulBT(a, b *Matrix) *Matrix {
	return MatMulBTInto(New(a.Rows, b.Rows), a, b)
}

// MatMulBTInto computes a @ bᵀ into dst (a.Rows x b.Rows), overwriting it.
func MatMulBTInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulBT %dx%d / %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulBTInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	work := 2 * a.Rows * a.Cols * b.Rows
	parallelRowBlocks(a.Rows, work, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := dst.Row(i)
			for j := 0; j < b.Rows; j++ {
				brow := b.Row(j)
				var s float32
				for k, av := range arow {
					s += av * brow[k]
				}
				orow[j] = s
			}
		}
	})
	return dst
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Add returns a + b elementwise.
func Add(a, b *Matrix) *Matrix {
	checkSameShape("Add", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Matrix) {
	checkSameShape("AddInPlace", a, b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// Sub returns a - b elementwise.
func Sub(a, b *Matrix) *Matrix {
	checkSameShape("Sub", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Hadamard returns the elementwise product a * b.
func Hadamard(a, b *Matrix) *Matrix {
	checkSameShape("Hadamard", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Scale returns m * s.
func (m *Matrix) Scale(s float32) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = v * s
	}
	return out
}

// ScaleInPlace multiplies every element by s.
func (m *Matrix) ScaleInPlace(s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddBias adds the bias row vector b to every row of m, returning a new
// matrix.
func AddBias(m *Matrix, b []float32) *Matrix {
	if len(b) != m.Cols {
		panic(fmt.Sprintf("tensor: AddBias bias length %d != cols %d", len(b), m.Cols))
	}
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		orow := out.Row(i)
		for j, v := range row {
			orow[j] = v + b[j]
		}
	}
	return out
}

// AddBiasInPlace adds the bias row vector b to every row of m in place —
// the buffer-reuse form of AddBias.
func AddBiasInPlace(m *Matrix, b []float32) {
	if len(b) != m.Cols {
		panic(fmt.Sprintf("tensor: AddBias bias length %d != cols %d", len(b), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += b[j]
		}
	}
}

// Apply returns f applied elementwise.
func (m *Matrix) Apply(f func(float32) float32) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = f(v)
	}
	return out
}

// ConcatCols returns [a | b] with the same row count.
func ConcatCols(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: ConcatCols rows %d != %d", a.Rows, b.Rows))
	}
	out := New(a.Rows, a.Cols+b.Cols)
	for i := 0; i < a.Rows; i++ {
		copy(out.Row(i)[:a.Cols], a.Row(i))
		copy(out.Row(i)[a.Cols:], b.Row(i))
	}
	return out
}

// SplitCols undoes ConcatCols, returning copies of the first aCols columns
// and the remainder.
func SplitCols(m *Matrix, aCols int) (*Matrix, *Matrix) {
	if aCols < 0 || aCols > m.Cols {
		panic(fmt.Sprintf("tensor: SplitCols at %d of %d", aCols, m.Cols))
	}
	a := New(m.Rows, aCols)
	b := New(m.Rows, m.Cols-aCols)
	for i := 0; i < m.Rows; i++ {
		copy(a.Row(i), m.Row(i)[:aCols])
		copy(b.Row(i), m.Row(i)[aCols:])
	}
	return a, b
}

// GatherRows returns a matrix whose row r is m.Row(idx[r]).
func GatherRows(m *Matrix, idx []int32) *Matrix {
	return GatherRowsInto(New(len(idx), m.Cols), m, idx)
}

// GatherRowsInto copies m.Row(idx[r]) into dst row r for every r,
// overwriting dst (which must be len(idx) x m.Cols), and returns dst.
// Parallel over blocks of destination rows; pure copies, so trivially
// deterministic.
func GatherRowsInto(dst, m *Matrix, idx []int32) *Matrix {
	if dst.Rows != len(idx) || dst.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: GatherRowsInto dst %dx%d, want %dx%d", dst.Rows, dst.Cols, len(idx), m.Cols))
	}
	// Validate before fanning out so a bad index panics in the caller's
	// goroutine, where it can be recovered, not inside a worker.
	for _, i := range idx {
		if int(i) < 0 || int(i) >= m.Rows {
			panic(fmt.Sprintf("tensor: GatherRows index %d out of %d rows", i, m.Rows))
		}
	}
	parallelRowBlocks(len(idx), len(idx)*m.Cols, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			copy(dst.Row(r), m.Row(int(idx[r])))
		}
	})
	return dst
}

// ScatterAddRows accumulates src.Row(r) into dst.Row(idx[r]). Accumulation
// order is the order of idx, making the result deterministic.
func ScatterAddRows(dst, src *Matrix, idx []int32) {
	if src.Rows != len(idx) {
		panic(fmt.Sprintf("tensor: ScatterAddRows %d rows, %d indices", src.Rows, len(idx)))
	}
	if src.Cols != dst.Cols {
		panic(fmt.Sprintf("tensor: ScatterAddRows cols %d != %d", src.Cols, dst.Cols))
	}
	for r, i := range idx {
		drow := dst.Row(int(i))
		srow := src.Row(r)
		for j, v := range srow {
			drow[j] += v
		}
	}
}

// SumRows returns the column-wise sum of m as a length-Cols vector.
func SumRows(m *Matrix) []float32 {
	out := make([]float32, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// RowNorm returns the L2 norm of each row.
func RowNorm(m *Matrix) []float32 {
	out := make([]float32, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		for _, v := range m.Row(i) {
			s += float64(v) * float64(v)
		}
		out[i] = float32(math.Sqrt(s))
	}
	return out
}

// NormalizeRowsL2 scales each row of m in place to unit L2 norm; zero rows
// are left untouched.
func NormalizeRowsL2(m *Matrix) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for _, v := range row {
			s += float64(v) * float64(v)
		}
		if s == 0 {
			continue
		}
		inv := float32(1 / math.Sqrt(s))
		for j := range row {
			row[j] *= inv
		}
	}
}

func checkSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
