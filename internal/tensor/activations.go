package tensor

import "math"

// Activation functions and their derivatives used by the NN layers. All
// operate elementwise and return new matrices; the *Backward variants take
// the forward *output* where that is cheaper (sigmoid, tanh) or the forward
// *input* where required (relu family).

// ReLU returns max(0, x) elementwise.
func ReLU(m *Matrix) *Matrix {
	return m.Apply(func(v float32) float32 {
		if v > 0 {
			return v
		}
		return 0
	})
}

// ReLUInPlace clamps m to max(0, x) elementwise in place — the buffer-reuse
// form of ReLU for pooled inference paths.
func ReLUInPlace(m *Matrix) *Matrix {
	for i, v := range m.Data {
		if !(v > 0) {
			m.Data[i] = 0
		}
	}
	return m
}

// LeakyReLUInPlace applies leaky relu elementwise in place.
func LeakyReLUInPlace(m *Matrix, slope float32) *Matrix {
	for i, v := range m.Data {
		if !(v > 0) {
			m.Data[i] = slope * v
		}
	}
	return m
}

// ReLUBackward masks dOut where the forward input was <= 0.
func ReLUBackward(dOut, in *Matrix) *Matrix {
	checkSameShape("ReLUBackward", dOut, in)
	out := New(dOut.Rows, dOut.Cols)
	for i, v := range in.Data {
		if v > 0 {
			out.Data[i] = dOut.Data[i]
		}
	}
	return out
}

// LeakyReLU returns x if x>0 else slope*x. GAT uses slope 0.2 on attention
// logits.
func LeakyReLU(m *Matrix, slope float32) *Matrix {
	return m.Apply(func(v float32) float32 {
		if v > 0 {
			return v
		}
		return slope * v
	})
}

// LeakyReLUBackward computes the gradient of LeakyReLU given forward input.
func LeakyReLUBackward(dOut, in *Matrix, slope float32) *Matrix {
	checkSameShape("LeakyReLUBackward", dOut, in)
	out := New(dOut.Rows, dOut.Cols)
	for i, v := range in.Data {
		if v > 0 {
			out.Data[i] = dOut.Data[i]
		} else {
			out.Data[i] = dOut.Data[i] * slope
		}
	}
	return out
}

// LeakyReLUScalar applies leaky relu to a scalar.
func LeakyReLUScalar(v, slope float32) float32 {
	if v > 0 {
		return v
	}
	return slope * v
}

// LeakyReLUGradScalar is the derivative of LeakyReLUScalar at v.
func LeakyReLUGradScalar(v, slope float32) float32 {
	if v > 0 {
		return 1
	}
	return slope
}

// Sigmoid returns 1/(1+e^-x) elementwise.
func Sigmoid(m *Matrix) *Matrix {
	return m.Apply(func(v float32) float32 {
		return float32(1 / (1 + math.Exp(-float64(v))))
	})
}

// SigmoidBackward computes dIn from dOut and the forward output.
func SigmoidBackward(dOut, out *Matrix) *Matrix {
	checkSameShape("SigmoidBackward", dOut, out)
	g := New(dOut.Rows, dOut.Cols)
	for i, y := range out.Data {
		g.Data[i] = dOut.Data[i] * y * (1 - y)
	}
	return g
}

// Tanh returns tanh(x) elementwise.
func Tanh(m *Matrix) *Matrix {
	return m.Apply(func(v float32) float32 {
		return float32(math.Tanh(float64(v)))
	})
}

// TanhBackward computes dIn from dOut and the forward output.
func TanhBackward(dOut, out *Matrix) *Matrix {
	checkSameShape("TanhBackward", dOut, out)
	g := New(dOut.Rows, dOut.Cols)
	for i, y := range out.Data {
		g.Data[i] = dOut.Data[i] * (1 - y*y)
	}
	return g
}

// Softmax applies a numerically stable softmax to each row.
func Softmax(m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		max := float32(math.Inf(-1))
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		var sum float64
		orow := out.Row(i)
		for j, v := range row {
			e := math.Exp(float64(v - max))
			orow[j] = float32(e)
			sum += e
		}
		if sum > 0 {
			inv := float32(1 / sum)
			for j := range orow {
				orow[j] *= inv
			}
		}
	}
	return out
}

// LogSoftmax applies a numerically stable log-softmax to each row.
func LogSoftmax(m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		max := float32(math.Inf(-1))
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - max))
		}
		logSum := float32(math.Log(sum)) + max
		orow := out.Row(i)
		for j, v := range row {
			orow[j] = v - logSum
		}
	}
	return out
}

// ArgmaxRows returns the index of the maximum element in each row. Ties break
// toward the lower index, which keeps predictions deterministic.
func ArgmaxRows(m *Matrix) []int32 {
	out := make([]int32, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		best := 0
		for j := 1; j < len(row); j++ {
			if row[j] > row[best] {
				best = j
			}
		}
		out[i] = int32(best)
	}
	return out
}
