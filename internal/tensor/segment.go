package tensor

import (
	"fmt"
	"math"
)

// Segment operations reduce edge-level rows into node-level rows keyed by a
// destination index. They are the tensor form of the paper's "aggregate"
// stage: every reduction here is commutative and associative (sum, mean, max,
// min), which is exactly the property the partial-gather strategy relies on.
//
// The parallel variants follow the package determinism model: work is split
// over contiguous ranges of *segments* via a precomputed CSR row-range
// partition (segmentIndex), each segment is reduced serially by its owner in
// ascending input-row order — the same order the serial loop visits — so
// every worker count produces bit-identical output.

// segmentIndex is a CSR partition of input rows by segment: rows of segment
// s are order[starts[s]:starts[s+1]], in ascending row order (the counting
// sort is stable), which is exactly the per-segment accumulation order of
// the serial kernels.
type segmentIndex struct {
	starts []int32 // len nSeg+1
	order  []int32 // input row ids grouped by segment
}

func buildSegmentIndex(seg []int32, nSeg int) *segmentIndex {
	counts := SegmentCount(seg, nSeg)
	starts := make([]int32, nSeg+1)
	for s, c := range counts {
		starts[s+1] = starts[s] + c
	}
	next := counts // reuse: rewound to starts as the write cursor
	copy(next, starts[:nSeg])
	order := make([]int32, len(seg))
	for r, s := range seg {
		order[next[s]] = int32(r)
		next[s]++
	}
	return &segmentIndex{starts: starts, order: order}
}

// segmentWorthParallel reports whether a segment reduction over rows x cols
// clears the tuning bar for the indexed parallel path (building the index
// costs O(rows), only worth it when the reduction dominates).
func segmentWorthParallel(rows, cols int) bool {
	t := tuning.Load()
	return t.Workers > 1 && rows*cols >= t.ParallelThreshold
}

// SegmentSum sums rows of data sharing the same segment id. seg[r] is the
// output row that data row r accumulates into; nSeg is the output row count.
func SegmentSum(data *Matrix, seg []int32, nSeg int) *Matrix {
	return segmentSumInto(New(nSeg, data.Cols), data, seg) // New is already zeroed
}

// SegmentSumInto computes SegmentSum into dst (nSeg x data.Cols),
// overwriting it, and returns dst.
func SegmentSumInto(dst, data *Matrix, seg []int32) *Matrix {
	dst.Zero()
	return segmentSumInto(dst, data, seg)
}

// segmentSumInto accumulates the segment sums into dst, which must be
// zeroed.
func segmentSumInto(dst, data *Matrix, seg []int32) *Matrix {
	nSeg := dst.Rows
	checkSegments("SegmentSum", data, seg, nSeg)
	if dst.Cols != data.Cols {
		panic(fmt.Sprintf("tensor: SegmentSumInto cols %d != %d", dst.Cols, data.Cols))
	}
	if !segmentWorthParallel(data.Rows, data.Cols) {
		for r, s := range seg {
			orow := dst.Row(int(s))
			drow := data.Row(r)
			for j, v := range drow {
				orow[j] += v
			}
		}
		return dst
	}
	idx := buildSegmentIndex(seg, nSeg)
	parallelWeightedBlocks(nSeg, data.Rows*data.Cols, idx.starts, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			orow := dst.Row(s)
			for _, r := range idx.order[idx.starts[s]:idx.starts[s+1]] {
				drow := data.Row(int(r))
				for j, v := range drow {
					orow[j] += v
				}
			}
		}
	})
	return dst
}

// SegmentCount returns how many rows map to each segment.
func SegmentCount(seg []int32, nSeg int) []int32 {
	out := make([]int32, nSeg)
	for _, s := range seg {
		if int(s) < 0 || int(s) >= nSeg {
			panic(fmt.Sprintf("tensor: SegmentCount id %d out of %d", s, nSeg))
		}
		out[s]++
	}
	return out
}

// SegmentMean averages rows per segment. Empty segments produce zero rows.
func SegmentMean(data *Matrix, seg []int32, nSeg int) *Matrix {
	out := SegmentSum(data, seg, nSeg)
	counts := SegmentCount(seg, nSeg)
	parallelRowBlocks(nSeg, nSeg*data.Cols, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if counts[i] == 0 {
				continue
			}
			inv := 1 / float32(counts[i])
			row := out.Row(i)
			for j := range row {
				row[j] *= inv
			}
		}
	})
	return out
}

// SegmentMax takes the elementwise max per segment. Empty segments produce
// zero rows (not -inf) so downstream layers see neutral input for isolated
// nodes, matching the behaviour of the reference GNN implementations.
func SegmentMax(data *Matrix, seg []int32, nSeg int) *Matrix {
	return segmentExtreme("SegmentMax", data, seg, nSeg, true)
}

// SegmentMin takes the elementwise min per segment; empty segments are zero.
func SegmentMin(data *Matrix, seg []int32, nSeg int) *Matrix {
	return segmentExtreme("SegmentMin", data, seg, nSeg, false)
}

// segmentExtreme is the shared max/min kernel: the segment's first row (in
// input order) seeds the accumulator, later rows replace elements that
// compare better. The parallel path visits each segment's rows in the same
// input order as the serial loop, so results are bit-identical (relevant
// for NaN propagation, where comparison order is observable).
func segmentExtreme(op string, data *Matrix, seg []int32, nSeg int, isMax bool) *Matrix {
	checkSegments(op, data, seg, nSeg)
	out := New(nSeg, data.Cols)
	fold := func(orow, drow []float32) {
		if isMax {
			for j, v := range drow {
				if v > orow[j] {
					orow[j] = v
				}
			}
		} else {
			for j, v := range drow {
				if v < orow[j] {
					orow[j] = v
				}
			}
		}
	}
	if !segmentWorthParallel(data.Rows, data.Cols) {
		seen := make([]bool, nSeg)
		for r, s := range seg {
			drow := data.Row(r)
			if !seen[s] {
				copy(out.Row(int(s)), drow)
				seen[s] = true
				continue
			}
			fold(out.Row(int(s)), drow)
		}
		return out
	}
	idx := buildSegmentIndex(seg, nSeg)
	parallelWeightedBlocks(nSeg, data.Rows*data.Cols, idx.starts, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			rows := idx.order[idx.starts[s]:idx.starts[s+1]]
			if len(rows) == 0 {
				continue
			}
			orow := out.Row(s)
			copy(orow, data.Row(int(rows[0])))
			for _, r := range rows[1:] {
				fold(orow, data.Row(int(r)))
			}
		}
	})
	return out
}

// GatherSegmentSum is the fused gather→segment-aggregate kernel:
// out.Row(s) = Σ_{e: seg[e]==s} state.Row(src[e]), without materializing the
// E x D gathered message matrix — the sparse A@X product at the heart of the
// broadcast-safe sum/mean layers. Parallel over owned segment ranges; each
// segment accumulates in ascending edge order, bit-identical to
// SegmentSum(GatherRows(state, src), seg, nSeg).
func GatherSegmentSum(state *Matrix, src, seg []int32, nSeg int) *Matrix {
	return gatherSegmentSumInto(New(nSeg, state.Cols), state, src, seg) // New is already zeroed
}

// GatherSegmentSumInto computes GatherSegmentSum into dst (nSeg x
// state.Cols), overwriting it, and returns dst.
func GatherSegmentSumInto(dst, state *Matrix, src, seg []int32) *Matrix {
	dst.Zero()
	return gatherSegmentSumInto(dst, state, src, seg)
}

// gatherSegmentSumInto accumulates into dst, which must be zeroed.
func gatherSegmentSumInto(dst, state *Matrix, src, seg []int32) *Matrix {
	nSeg := dst.Rows
	if len(src) != len(seg) {
		panic(fmt.Sprintf("tensor: GatherSegmentSum %d src vs %d seg ids", len(src), len(seg)))
	}
	if dst.Cols != state.Cols {
		panic(fmt.Sprintf("tensor: GatherSegmentSumInto cols %d != %d", dst.Cols, state.Cols))
	}
	for _, s := range seg {
		if int(s) < 0 || int(s) >= nSeg {
			panic(fmt.Sprintf("tensor: GatherSegmentSum id %d out of %d segments", s, nSeg))
		}
	}
	for _, v := range src {
		if int(v) < 0 || int(v) >= state.Rows {
			panic(fmt.Sprintf("tensor: GatherSegmentSum src %d out of %d rows", v, state.Rows))
		}
	}
	if !segmentWorthParallel(len(seg), state.Cols) {
		for e, s := range seg {
			orow := dst.Row(int(s))
			srow := state.Row(int(src[e]))
			for j, v := range srow {
				orow[j] += v
			}
		}
		return dst
	}
	idx := buildSegmentIndex(seg, nSeg)
	parallelWeightedBlocks(nSeg, len(seg)*state.Cols, idx.starts, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			orow := dst.Row(s)
			for _, e := range idx.order[idx.starts[s]:idx.starts[s+1]] {
				srow := state.Row(int(src[e]))
				for j, v := range srow {
					orow[j] += v
				}
			}
		}
	})
	return dst
}

// checkViews validates a CSR view reduction: off must be a monotone offset
// array with one entry per dst row plus one, covering rows exactly, and
// every row view must span dst.Cols values. The payload views typically come
// from a message inbox, where a length mismatch would mean a corrupted
// message rather than a caller bug — panicking here keeps the failure at the
// kernel boundary instead of a silent partial accumulation.
func checkViews(op string, dst *Matrix, off []int32, rows [][]float32) {
	if len(off) != dst.Rows+1 {
		panic(fmt.Sprintf("tensor: %s %d offsets for %d segments", op, len(off), dst.Rows))
	}
	if int(off[dst.Rows]) != len(rows) {
		panic(fmt.Sprintf("tensor: %s offsets cover %d rows, got %d", op, off[dst.Rows], len(rows)))
	}
	for i, r := range rows {
		if len(r) != dst.Cols {
			panic(fmt.Sprintf("tensor: %s row %d has %d values, want %d", op, i, len(r), dst.Cols))
		}
	}
}

// SegmentSumViewsInto is the CSR form of SegmentSum over row views instead
// of matrix rows: dst.Row(s) = Σ rows[off[s]:off[s+1]], overwriting dst. The
// views need not come from one backing array — this is the fused
// whole-partition gather of the batched inference plane, where each view is
// a zero-copy extent of a message arena. Parallel over segment blocks
// weighted by the CSR offsets (so power-law hub segments don't serialize one
// worker); each segment accumulates serially in ascending view order, the
// same order as the per-destination serial loop, so results are
// bit-identical at any Tuning.
func SegmentSumViewsInto(dst *Matrix, off []int32, rows [][]float32) *Matrix {
	checkViews("SegmentSumViews", dst, off, rows)
	dst.Zero()
	n := dst.Rows
	if n == 0 {
		return dst
	}
	fold := func(lo, hi int) {
		for s := lo; s < hi; s++ {
			orow := dst.Row(s)
			for _, drow := range rows[off[s]:off[s+1]] {
				for j, v := range drow {
					orow[j] += v
				}
			}
		}
	}
	if serialKernel(n, len(rows)*dst.Cols) {
		fold(0, n)
		return dst
	}
	parallelWeightedBlocks(n, len(rows)*dst.Cols, off, fold)
	return dst
}

// SegmentExtremeViewsInto is the CSR-views form of SegmentMax/SegmentMin:
// the segment's first view seeds dst.Row(s), later views fold elementwise;
// empty segments produce zero rows (matching SegmentMax/Min). Every dst
// element is written, so an unzeroed (pooled) dst is safe. Fold order per
// segment is ascending view order — bit-identical to the serial loop,
// NaN propagation included.
func SegmentExtremeViewsInto(dst *Matrix, off []int32, rows [][]float32, isMax bool) *Matrix {
	checkViews("SegmentExtremeViews", dst, off, rows)
	n := dst.Rows
	if n == 0 {
		return dst
	}
	fold := func(lo, hi int) {
		for s := lo; s < hi; s++ {
			orow := dst.Row(s)
			seg := rows[off[s]:off[s+1]]
			if len(seg) == 0 {
				for j := range orow {
					orow[j] = 0
				}
				continue
			}
			copy(orow, seg[0])
			for _, drow := range seg[1:] {
				if isMax {
					for j, v := range drow {
						if v > orow[j] {
							orow[j] = v
						}
					}
				} else {
					for j, v := range drow {
						if v < orow[j] {
							orow[j] = v
						}
					}
				}
			}
		}
	}
	if serialKernel(n, len(rows)*dst.Cols) {
		fold(0, n)
		return dst
	}
	parallelWeightedBlocks(n, len(rows)*dst.Cols, off, fold)
	return dst
}

// SegmentSoftmax normalizes the scalar logits per segment with a numerically
// stable softmax: out[r] = exp(x[r]-max_seg)/sum_seg. This is GAT's
// SparseSoftmax over edges grouped by destination node.
func SegmentSoftmax(logits []float32, seg []int32, nSeg int) []float32 {
	maxes := make([]float32, nSeg)
	for i := range maxes {
		maxes[i] = float32(math.Inf(-1))
	}
	for r, s := range seg {
		if int(s) < 0 || int(s) >= nSeg {
			panic(fmt.Sprintf("tensor: SegmentSoftmax id %d out of %d", s, nSeg))
		}
		if logits[r] > maxes[s] {
			maxes[s] = logits[r]
		}
	}
	out := make([]float32, len(logits))
	sums := make([]float64, nSeg)
	for r, s := range seg {
		e := float32(math.Exp(float64(logits[r] - maxes[s])))
		out[r] = e
		sums[s] += float64(e)
	}
	for r, s := range seg {
		if sums[s] > 0 {
			out[r] = float32(float64(out[r]) / sums[s])
		}
	}
	return out
}

// SegmentSoftmaxBackward computes d logits given d probs for a segment
// softmax: dx = p * (dy - sum_seg(p*dy)).
func SegmentSoftmaxBackward(probs, dProbs []float32, seg []int32, nSeg int) []float32 {
	if len(probs) != len(dProbs) || len(probs) != len(seg) {
		panic("tensor: SegmentSoftmaxBackward length mismatch")
	}
	dots := make([]float64, nSeg)
	for r, s := range seg {
		dots[s] += float64(probs[r]) * float64(dProbs[r])
	}
	out := make([]float32, len(probs))
	for r, s := range seg {
		out[r] = probs[r] * (dProbs[r] - float32(dots[s]))
	}
	return out
}

// SegmentMeanBackward distributes dOut back to data rows for a SegmentMean:
// dData[r] = dOut[seg[r]] / count[seg[r]].
func SegmentMeanBackward(dOut *Matrix, seg []int32, counts []int32) *Matrix {
	out := New(len(seg), dOut.Cols)
	for r, s := range seg {
		c := counts[s]
		if c == 0 {
			continue
		}
		inv := 1 / float32(c)
		orow := out.Row(r)
		drow := dOut.Row(int(s))
		for j, v := range drow {
			orow[j] = v * inv
		}
	}
	return out
}

// SegmentSumBackward distributes dOut back to data rows for a SegmentSum:
// dData[r] = dOut[seg[r]].
func SegmentSumBackward(dOut *Matrix, seg []int32) *Matrix {
	out := New(len(seg), dOut.Cols)
	for r, s := range seg {
		copy(out.Row(r), dOut.Row(int(s)))
	}
	return out
}

func checkSegments(op string, data *Matrix, seg []int32, nSeg int) {
	if data.Rows != len(seg) {
		panic(fmt.Sprintf("tensor: %s %d rows but %d segment ids", op, data.Rows, len(seg)))
	}
	for _, s := range seg {
		if int(s) < 0 || int(s) >= nSeg {
			panic(fmt.Sprintf("tensor: %s id %d out of %d segments", op, s, nSeg))
		}
	}
}
