package tensor

import (
	"fmt"
	"math"
)

// Segment operations reduce edge-level rows into node-level rows keyed by a
// destination index. They are the tensor form of the paper's "aggregate"
// stage: every reduction here is commutative and associative (sum, mean, max,
// min), which is exactly the property the partial-gather strategy relies on.

// SegmentSum sums rows of data sharing the same segment id. seg[r] is the
// output row that data row r accumulates into; nSeg is the output row count.
func SegmentSum(data *Matrix, seg []int32, nSeg int) *Matrix {
	checkSegments("SegmentSum", data, seg, nSeg)
	out := New(nSeg, data.Cols)
	for r, s := range seg {
		orow := out.Row(int(s))
		drow := data.Row(r)
		for j, v := range drow {
			orow[j] += v
		}
	}
	return out
}

// SegmentCount returns how many rows map to each segment.
func SegmentCount(seg []int32, nSeg int) []int32 {
	out := make([]int32, nSeg)
	for _, s := range seg {
		if int(s) < 0 || int(s) >= nSeg {
			panic(fmt.Sprintf("tensor: SegmentCount id %d out of %d", s, nSeg))
		}
		out[s]++
	}
	return out
}

// SegmentMean averages rows per segment. Empty segments produce zero rows.
func SegmentMean(data *Matrix, seg []int32, nSeg int) *Matrix {
	out := SegmentSum(data, seg, nSeg)
	counts := SegmentCount(seg, nSeg)
	for i := 0; i < nSeg; i++ {
		if counts[i] == 0 {
			continue
		}
		inv := 1 / float32(counts[i])
		row := out.Row(i)
		for j := range row {
			row[j] *= inv
		}
	}
	return out
}

// SegmentMax takes the elementwise max per segment. Empty segments produce
// zero rows (not -inf) so downstream layers see neutral input for isolated
// nodes, matching the behaviour of the reference GNN implementations.
func SegmentMax(data *Matrix, seg []int32, nSeg int) *Matrix {
	checkSegments("SegmentMax", data, seg, nSeg)
	out := New(nSeg, data.Cols)
	seen := make([]bool, nSeg)
	for r, s := range seg {
		orow := out.Row(int(s))
		drow := data.Row(r)
		if !seen[s] {
			copy(orow, drow)
			seen[s] = true
			continue
		}
		for j, v := range drow {
			if v > orow[j] {
				orow[j] = v
			}
		}
	}
	return out
}

// SegmentMin takes the elementwise min per segment; empty segments are zero.
func SegmentMin(data *Matrix, seg []int32, nSeg int) *Matrix {
	checkSegments("SegmentMin", data, seg, nSeg)
	out := New(nSeg, data.Cols)
	seen := make([]bool, nSeg)
	for r, s := range seg {
		orow := out.Row(int(s))
		drow := data.Row(r)
		if !seen[s] {
			copy(orow, drow)
			seen[s] = true
			continue
		}
		for j, v := range drow {
			if v < orow[j] {
				orow[j] = v
			}
		}
	}
	return out
}

// SegmentSoftmax normalizes the scalar logits per segment with a numerically
// stable softmax: out[r] = exp(x[r]-max_seg)/sum_seg. This is GAT's
// SparseSoftmax over edges grouped by destination node.
func SegmentSoftmax(logits []float32, seg []int32, nSeg int) []float32 {
	maxes := make([]float32, nSeg)
	for i := range maxes {
		maxes[i] = float32(math.Inf(-1))
	}
	for r, s := range seg {
		if int(s) < 0 || int(s) >= nSeg {
			panic(fmt.Sprintf("tensor: SegmentSoftmax id %d out of %d", s, nSeg))
		}
		if logits[r] > maxes[s] {
			maxes[s] = logits[r]
		}
	}
	out := make([]float32, len(logits))
	sums := make([]float64, nSeg)
	for r, s := range seg {
		e := float32(math.Exp(float64(logits[r] - maxes[s])))
		out[r] = e
		sums[s] += float64(e)
	}
	for r, s := range seg {
		if sums[s] > 0 {
			out[r] = float32(float64(out[r]) / sums[s])
		}
	}
	return out
}

// SegmentSoftmaxBackward computes d logits given d probs for a segment
// softmax: dx = p * (dy - sum_seg(p*dy)).
func SegmentSoftmaxBackward(probs, dProbs []float32, seg []int32, nSeg int) []float32 {
	if len(probs) != len(dProbs) || len(probs) != len(seg) {
		panic("tensor: SegmentSoftmaxBackward length mismatch")
	}
	dots := make([]float64, nSeg)
	for r, s := range seg {
		dots[s] += float64(probs[r]) * float64(dProbs[r])
	}
	out := make([]float32, len(probs))
	for r, s := range seg {
		out[r] = probs[r] * (dProbs[r] - float32(dots[s]))
	}
	return out
}

// SegmentMeanBackward distributes dOut back to data rows for a SegmentMean:
// dData[r] = dOut[seg[r]] / count[seg[r]].
func SegmentMeanBackward(dOut *Matrix, seg []int32, counts []int32) *Matrix {
	out := New(len(seg), dOut.Cols)
	for r, s := range seg {
		c := counts[s]
		if c == 0 {
			continue
		}
		inv := 1 / float32(c)
		orow := out.Row(r)
		drow := dOut.Row(int(s))
		for j, v := range drow {
			orow[j] = v * inv
		}
	}
	return out
}

// SegmentSumBackward distributes dOut back to data rows for a SegmentSum:
// dData[r] = dOut[seg[r]].
func SegmentSumBackward(dOut *Matrix, seg []int32) *Matrix {
	out := New(len(seg), dOut.Cols)
	for r, s := range seg {
		copy(out.Row(r), dOut.Row(int(s)))
	}
	return out
}

func checkSegments(op string, data *Matrix, seg []int32, nSeg int) {
	if data.Rows != len(seg) {
		panic(fmt.Sprintf("tensor: %s %d rows but %d segment ids", op, data.Rows, len(seg)))
	}
	for _, s := range seg {
		if int(s) < 0 || int(s) >= nSeg {
			panic(fmt.Sprintf("tensor: %s id %d out of %d segments", op, s, nSeg))
		}
	}
}
