package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndZero(t *testing.T) {
	m := New(3, 4)
	if r, c := m.Shape(); r != 3 || c != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", r, c)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New must return a zeroed matrix")
		}
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dims")
		}
	}()
	New(-1, 2)
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}})
	if m.At(0, 0) != 1 || m.At(2, 1) != 6 {
		t.Fatalf("At mismatch: %v", m.Data)
	}
	m.Set(1, 0, 9)
	if m.At(1, 0) != 9 {
		t.Fatal("Set did not update value")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float32{{1, 2}, {3}})
}

func TestFromSliceLengthChecked(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong length")
		}
	}()
	FromSlice(2, 2, []float32{1, 2, 3})
}

func TestCloneIsDeep(t *testing.T) {
	m := FromRows([][]float32{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not alias storage")
	}
}

func TestRowAliases(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}})
	m.Row(1)[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row must alias the backing storage")
	}
}

func TestSetRow(t *testing.T) {
	m := New(2, 3)
	m.SetRow(1, []float32{1, 2, 3})
	if m.At(1, 2) != 3 {
		t.Fatal("SetRow failed")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromRows([][]float32{{1, 2}, {3, 4}})
	b := FromRows([][]float32{{5, 6}, {7, 8}})
	got := MatMul(a, b)
	want := FromRows([][]float32{{19, 22}, {43, 50}})
	if !got.Equal(want) {
		t.Fatalf("MatMul = %v, want %v", got.Data, want.Data)
	}
}

func TestMatMulIdentity(t *testing.T) {
	g := NewRNG(1)
	a := New(4, 4)
	g.Uniform(a, -1, 1)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	if !MatMul(a, id).AllClose(a, 1e-6) {
		t.Fatal("A @ I != A")
	}
	if !MatMul(id, a).AllClose(a, 1e-6) {
		t.Fatal("I @ A != A")
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape mismatch")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulATMatchesExplicitTranspose(t *testing.T) {
	g := NewRNG(2)
	a := New(5, 3)
	b := New(5, 4)
	g.Uniform(a, -1, 1)
	g.Uniform(b, -1, 1)
	got := MatMulAT(a, b)
	want := MatMul(a.Transpose(), b)
	if !got.AllClose(want, 1e-5) {
		t.Fatal("MatMulAT != Aᵀ@B")
	}
}

func TestMatMulBTMatchesExplicitTranspose(t *testing.T) {
	g := NewRNG(3)
	a := New(5, 3)
	b := New(4, 3)
	g.Uniform(a, -1, 1)
	g.Uniform(b, -1, 1)
	got := MatMulBT(a, b)
	want := MatMul(a, b.Transpose())
	if !got.AllClose(want, 1e-5) {
		t.Fatal("MatMulBT != A@Bᵀ")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		rows := 1 + g.Intn(8)
		cols := 1 + g.Intn(8)
		m := New(rows, cols)
		g.Uniform(m, -10, 10)
		return m.Transpose().Transpose().Equal(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		m := New(3, 3)
		n := New(3, 3)
		g.Uniform(m, -5, 5)
		g.Uniform(n, -5, 5)
		return Sub(Add(m, n), n).AllClose(m, 1e-5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddInPlace(t *testing.T) {
	a := FromRows([][]float32{{1, 2}})
	AddInPlace(a, FromRows([][]float32{{3, 4}}))
	if a.At(0, 1) != 6 {
		t.Fatal("AddInPlace failed")
	}
}

func TestHadamardCommutes(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		a := New(2, 5)
		b := New(2, 5)
		g.Uniform(a, -3, 3)
		g.Uniform(b, -3, 3)
		return Hadamard(a, b).Equal(Hadamard(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScale(t *testing.T) {
	m := FromRows([][]float32{{1, -2}})
	got := m.Scale(2)
	if got.At(0, 0) != 2 || got.At(0, 1) != -4 {
		t.Fatal("Scale failed")
	}
	m.ScaleInPlace(3)
	if m.At(0, 0) != 3 {
		t.Fatal("ScaleInPlace failed")
	}
}

func TestAddBias(t *testing.T) {
	m := FromRows([][]float32{{1, 1}, {2, 2}})
	got := AddBias(m, []float32{10, 20})
	want := FromRows([][]float32{{11, 21}, {12, 22}})
	if !got.Equal(want) {
		t.Fatal("AddBias failed")
	}
}

func TestConcatSplitRoundTrip(t *testing.T) {
	g := NewRNG(7)
	a := New(4, 3)
	b := New(4, 2)
	g.Uniform(a, -1, 1)
	g.Uniform(b, -1, 1)
	cat := ConcatCols(a, b)
	a2, b2 := SplitCols(cat, 3)
	if !a2.Equal(a) || !b2.Equal(b) {
		t.Fatal("ConcatCols/SplitCols must round-trip")
	}
}

func TestGatherRows(t *testing.T) {
	m := FromRows([][]float32{{1, 1}, {2, 2}, {3, 3}})
	got := GatherRows(m, []int32{2, 0, 2})
	want := FromRows([][]float32{{3, 3}, {1, 1}, {3, 3}})
	if !got.Equal(want) {
		t.Fatal("GatherRows failed")
	}
}

func TestGatherRowsOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GatherRows(New(2, 2), []int32{5})
}

func TestScatterAddRows(t *testing.T) {
	dst := New(3, 2)
	src := FromRows([][]float32{{1, 1}, {2, 2}, {4, 4}})
	ScatterAddRows(dst, src, []int32{0, 0, 2})
	want := FromRows([][]float32{{3, 3}, {0, 0}, {4, 4}})
	if !dst.Equal(want) {
		t.Fatalf("ScatterAddRows = %v", dst.Data)
	}
}

func TestGatherScatterAdjoint(t *testing.T) {
	// <Gather(x), y> == <x, ScatterAdd(y)> — the property backprop relies on.
	f := func(seed int64) bool {
		g := NewRNG(seed)
		n := 3 + g.Intn(5)
		e := 1 + g.Intn(10)
		x := New(n, 2)
		y := New(e, 2)
		g.Uniform(x, -2, 2)
		g.Uniform(y, -2, 2)
		idx := make([]int32, e)
		for i := range idx {
			idx[i] = int32(g.Intn(n))
		}
		gx := GatherRows(x, idx)
		var lhs float64
		for i := range gx.Data {
			lhs += float64(gx.Data[i]) * float64(y.Data[i])
		}
		sy := New(n, 2)
		ScatterAddRows(sy, y, idx)
		var rhs float64
		for i := range x.Data {
			rhs += float64(x.Data[i]) * float64(sy.Data[i])
		}
		return math.Abs(lhs-rhs) < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSumRows(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}})
	got := SumRows(m)
	if got[0] != 4 || got[1] != 6 {
		t.Fatalf("SumRows = %v", got)
	}
}

func TestRowNormAndNormalize(t *testing.T) {
	m := FromRows([][]float32{{3, 4}, {0, 0}})
	norms := RowNorm(m)
	if math.Abs(float64(norms[0]-5)) > 1e-6 || norms[1] != 0 {
		t.Fatalf("RowNorm = %v", norms)
	}
	NormalizeRowsL2(m)
	if math.Abs(float64(m.At(0, 0)-0.6)) > 1e-6 {
		t.Fatal("NormalizeRowsL2 failed")
	}
	if m.At(1, 0) != 0 {
		t.Fatal("zero rows must remain zero")
	}
}

func TestEqualAndAllClose(t *testing.T) {
	a := FromRows([][]float32{{1, 2}})
	b := FromRows([][]float32{{1, 2.0005}})
	if a.Equal(b) {
		t.Fatal("Equal must be exact")
	}
	if !a.AllClose(b, 1e-3) {
		t.Fatal("AllClose tolerance failed")
	}
	if a.AllClose(New(2, 1), 1) {
		t.Fatal("AllClose must reject shape mismatch")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromRows([][]float32{{1, 5}})
	b := FromRows([][]float32{{2, 3}})
	if d := a.MaxAbsDiff(b); d != 2 {
		t.Fatalf("MaxAbsDiff = %v, want 2", d)
	}
}

func TestFillAndZero(t *testing.T) {
	m := New(2, 2)
	m.Fill(3)
	if m.At(1, 1) != 3 {
		t.Fatal("Fill failed")
	}
	m.Zero()
	if m.At(0, 0) != 0 {
		t.Fatal("Zero failed")
	}
}

func TestMatMulAssociativityWithVector(t *testing.T) {
	// (A@B)@C == A@(B@C) within float tolerance.
	g := NewRNG(11)
	a := New(3, 4)
	b := New(4, 2)
	c := New(2, 5)
	g.Uniform(a, -1, 1)
	g.Uniform(b, -1, 1)
	g.Uniform(c, -1, 1)
	lhs := MatMul(MatMul(a, b), c)
	rhs := MatMul(a, MatMul(b, c))
	if !lhs.AllClose(rhs, 1e-4) {
		t.Fatal("MatMul associativity violated beyond tolerance")
	}
}
