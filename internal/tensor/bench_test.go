package tensor

import (
	"fmt"
	"runtime"
	"testing"
)

// benchWorkerCounts compares the serial kernel (workers=1) against the
// parallel kernel at the machine's core count (and a fixed mid point when
// the machine is wide enough). The CI smoke step runs these at -benchtime=1x
// just to prove they execute; real numbers belong on a multicore box.
func benchWorkerCounts() []int {
	n := runtime.GOMAXPROCS(0)
	ws := []int{1}
	if n >= 4 {
		ws = append(ws, 4)
	}
	if n > 1 && n != 4 {
		ws = append(ws, n)
	}
	return ws
}

// BenchmarkMatMul is the headline kernel comparison: a 512x512x512 dense
// product, serial vs. parallel (the two are bit-identical; only wall-clock
// differs).
func BenchmarkMatMul(b *testing.B) {
	g := NewRNG(11)
	x := New(512, 512)
	y := New(512, 512)
	g.Uniform(x, -1, 1)
	g.Uniform(y, -1, 1)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			prev := SetTuning(Tuning{Workers: w})
			defer SetTuning(prev)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatMul(x, y)
			}
		})
	}
}

// BenchmarkMatMulInto measures the pooled, allocation-free form.
func BenchmarkMatMulInto(b *testing.B) {
	g := NewRNG(12)
	x := New(512, 512)
	y := New(512, 512)
	dst := New(512, 512)
	g.Uniform(x, -1, 1)
	g.Uniform(y, -1, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}

// BenchmarkSegmentSumParallel compares the serial segment reduction against
// the CSR-partitioned parallel kernel on a power-law-ish id distribution.
func BenchmarkSegmentSumParallel(b *testing.B) {
	g := NewRNG(13)
	data := New(200000, 64)
	g.Uniform(data, -1, 1)
	seg := make([]int32, data.Rows)
	for i := range seg {
		seg[i] = int32(g.Intn(g.Intn(20000) + 1)) // skewed toward low ids
	}
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			prev := SetTuning(Tuning{Workers: w})
			defer SetTuning(prev)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				SegmentSum(data, seg, 20000)
			}
		})
	}
}

// BenchmarkGatherSegmentSum measures the fused gather→aggregate kernel
// against the two-step gather + segment-sum it replaces.
func BenchmarkGatherSegmentSum(b *testing.B) {
	g := NewRNG(14)
	state := New(20000, 64)
	g.Uniform(state, -1, 1)
	e := 120000
	src := make([]int32, e)
	dst := make([]int32, e)
	for i := range src {
		src[i] = int32(g.Intn(20000))
		dst[i] = int32(g.Intn(20000))
	}
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			GatherSegmentSum(state, src, dst, 20000)
		}
	})
	b.Run("unfused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			SegmentSum(GatherRows(state, src), dst, 20000)
		}
	})
}

func BenchmarkMatMul128(b *testing.B) {
	g := NewRNG(1)
	x := New(128, 128)
	y := New(128, 128)
	g.Uniform(x, -1, 1)
	g.Uniform(y, -1, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMulTall(b *testing.B) {
	g := NewRNG(2)
	x := New(10000, 64)
	w := New(64, 64)
	g.Uniform(x, -1, 1)
	g.Uniform(w, -1, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(x, w)
	}
}

func BenchmarkSegmentSum(b *testing.B) {
	g := NewRNG(3)
	data := New(50000, 64)
	g.Uniform(data, -1, 1)
	seg := make([]int32, 50000)
	for i := range seg {
		seg[i] = int32(g.Intn(5000))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SegmentSum(data, seg, 5000)
	}
}

func BenchmarkSegmentSoftmax(b *testing.B) {
	g := NewRNG(4)
	logits := make([]float32, 50000)
	seg := make([]int32, 50000)
	for i := range seg {
		logits[i] = g.Float32()
		seg[i] = int32(g.Intn(5000))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SegmentSoftmax(logits, seg, 5000)
	}
}

func BenchmarkGatherRows(b *testing.B) {
	g := NewRNG(5)
	m := New(10000, 64)
	g.Uniform(m, -1, 1)
	idx := make([]int32, 50000)
	for i := range idx {
		idx[i] = int32(g.Intn(10000))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GatherRows(m, idx)
	}
}
