package tensor

import "testing"

func BenchmarkMatMul128(b *testing.B) {
	g := NewRNG(1)
	x := New(128, 128)
	y := New(128, 128)
	g.Uniform(x, -1, 1)
	g.Uniform(y, -1, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMulTall(b *testing.B) {
	g := NewRNG(2)
	x := New(10000, 64)
	w := New(64, 64)
	g.Uniform(x, -1, 1)
	g.Uniform(w, -1, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(x, w)
	}
}

func BenchmarkSegmentSum(b *testing.B) {
	g := NewRNG(3)
	data := New(50000, 64)
	g.Uniform(data, -1, 1)
	seg := make([]int32, 50000)
	for i := range seg {
		seg[i] = int32(g.Intn(5000))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SegmentSum(data, seg, 5000)
	}
}

func BenchmarkSegmentSoftmax(b *testing.B) {
	g := NewRNG(4)
	logits := make([]float32, 50000)
	seg := make([]int32, 50000)
	for i := range seg {
		logits[i] = g.Float32()
		seg[i] = int32(g.Intn(5000))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SegmentSoftmax(logits, seg, 5000)
	}
}

func BenchmarkGatherRows(b *testing.B) {
	g := NewRNG(5)
	m := New(10000, 64)
	g.Uniform(m, -1, 1)
	idx := make([]int32, 50000)
	for i := range idx {
		idx[i] = int32(g.Intn(10000))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GatherRows(m, idx)
	}
}
