package tensor

import (
	"math/bits"
	"sync"
)

// Pool is a free-list of Matrix buffers keyed by capacity class (powers of
// two), so hot loops — a superstep's per-vertex apply_node, a reference
// forward's per-layer intermediates — can recycle buffers instead of
// allocating per call and feeding the GC.
//
// Get/Put are safe for concurrent use; the inference drivers additionally
// keep one Pool per worker so the per-vertex path never contends. A Matrix
// obtained from a Pool is an ordinary Matrix: returning it via Put is an
// optimization, never a requirement, and matrices from other sources may be
// Put as well.
type Pool struct {
	mu      sync.Mutex
	buckets map[uint][]*Matrix
}

// NewPool returns an empty buffer pool.
func NewPool() *Pool {
	return &Pool{buckets: make(map[uint][]*Matrix)}
}

// sizeClass returns the smallest c with 1<<c >= n (n > 0).
func sizeClass(n int) uint {
	return uint(bits.Len(uint(n - 1)))
}

// Get returns a zeroed rows x cols matrix, reusing a pooled buffer when one
// of sufficient capacity is available.
func (p *Pool) Get(rows, cols int) *Matrix {
	m := p.GetNoZero(rows, cols)
	m.Zero()
	return m
}

// GetNoZero returns a rows x cols matrix whose element values are
// unspecified — for callers that overwrite every element (MatMulInto,
// GatherRowsInto). Use Get when stale values could leak.
func (p *Pool) GetNoZero(rows, cols int) *Matrix {
	need := rows * cols
	if need <= 0 {
		return New(rows, cols)
	}
	cls := sizeClass(need)
	p.mu.Lock()
	for c := cls; c < cls+2; c++ {
		if list := p.buckets[c]; len(list) > 0 {
			m := list[len(list)-1]
			p.buckets[c] = list[:len(list)-1]
			p.mu.Unlock()
			m.Rows, m.Cols = rows, cols
			m.Data = m.Data[:need]
			return m
		}
	}
	p.mu.Unlock()
	// Exact-size allocation: Put buckets by floor(log2(cap)), and Get only
	// needs cap >= 1<<bucket, which an exact capacity satisfies too —
	// rounding up to the class size would inflate peak memory up to ~2x on
	// the system's largest buffers for no semantic gain.
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, need)}
}

// maxPerBucket bounds how many free buffers a size class retains; extras
// are dropped to the GC so a pathological Put pattern cannot grow the pool
// without bound.
const maxPerBucket = 16

// Put returns m's buffer to the pool. The caller must not use m afterwards.
// nil and empty matrices are ignored.
func (p *Pool) Put(m *Matrix) {
	if m == nil || cap(m.Data) == 0 {
		return
	}
	// Bucket by floor(log2(cap)) so every buffer in bucket c has capacity
	// >= 1<<c, which is exactly what GetNoZero(need <= 1<<c) requires.
	cls := uint(bits.Len(uint(cap(m.Data)))) - 1
	p.mu.Lock()
	if len(p.buckets[cls]) < maxPerBucket {
		p.buckets[cls] = append(p.buckets[cls], m)
	}
	p.mu.Unlock()
}

// Reset drops every free buffer, releasing the pool's retained memory to
// the GC. Buffers currently checked out are unaffected (they simply rejoin
// on their next Put). Long-lived pools call this after a large run so its
// peak working set does not stay resident.
func (p *Pool) Reset() {
	p.mu.Lock()
	clear(p.buckets)
	p.mu.Unlock()
}
