package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSegmentSumKnown(t *testing.T) {
	data := FromRows([][]float32{{1, 1}, {2, 2}, {3, 3}})
	got := SegmentSum(data, []int32{0, 1, 0}, 2)
	want := FromRows([][]float32{{4, 4}, {2, 2}})
	if !got.Equal(want) {
		t.Fatalf("SegmentSum = %v", got.Data)
	}
}

func TestSegmentSumEmptySegmentIsZero(t *testing.T) {
	data := FromRows([][]float32{{5, 5}})
	got := SegmentSum(data, []int32{2}, 3)
	if got.At(0, 0) != 0 || got.At(1, 0) != 0 || got.At(2, 0) != 5 {
		t.Fatalf("empty segments must be zero: %v", got.Data)
	}
}

func TestSegmentMeanKnown(t *testing.T) {
	data := FromRows([][]float32{{2, 4}, {4, 8}, {9, 9}})
	got := SegmentMean(data, []int32{0, 0, 1}, 2)
	want := FromRows([][]float32{{3, 6}, {9, 9}})
	if !got.Equal(want) {
		t.Fatalf("SegmentMean = %v", got.Data)
	}
}

func TestSegmentMaxMin(t *testing.T) {
	data := FromRows([][]float32{{-1, 5}, {3, -2}, {0, 0}})
	seg := []int32{0, 0, 1}
	mx := SegmentMax(data, seg, 2)
	if mx.At(0, 0) != 3 || mx.At(0, 1) != 5 {
		t.Fatalf("SegmentMax = %v", mx.Data)
	}
	mn := SegmentMin(data, seg, 2)
	if mn.At(0, 0) != -1 || mn.At(0, 1) != -2 {
		t.Fatalf("SegmentMin = %v", mn.Data)
	}
}

func TestSegmentMaxNegativeValuesOnly(t *testing.T) {
	// A segment whose rows are all negative must keep the true max, not 0:
	// the first row seeds the accumulator.
	data := FromRows([][]float32{{-5}, {-3}})
	got := SegmentMax(data, []int32{0, 0}, 1)
	if got.At(0, 0) != -3 {
		t.Fatalf("SegmentMax with negatives = %v, want -3", got.At(0, 0))
	}
}

// csrViews builds a deterministic CSR view set: nSeg segments with skewed
// sizes (segment 0 is a hub), cols-wide rows, views aliasing several
// distinct backing arrays as inbox payloads do.
func csrViews(nSeg, cols, seed int) (off []int32, rows [][]float32) {
	rng := NewRNG(int64(seed))
	off = make([]int32, nSeg+1)
	for s := 0; s < nSeg; s++ {
		n := int(rng.Float32() * 4)
		if s == 0 {
			n = 3 * nSeg // hub segment
		}
		off[s+1] = off[s] + int32(n)
	}
	for i := 0; i < int(off[nSeg]); i++ {
		arena := make([]float32, cols)
		for j := range arena {
			arena[j] = rng.Float32()*8 - 4
		}
		rows = append(rows, arena)
	}
	return off, rows
}

// TestSegmentViewsMatchSerialLoop: the CSR-view kernels must reproduce the
// naive per-destination loop bit for bit at every worker count, including a
// threshold forcing the parallel path.
func TestSegmentViewsMatchSerialLoop(t *testing.T) {
	const nSeg, cols = 37, 9
	off, rows := csrViews(nSeg, cols, 5)
	wantSum := New(nSeg, cols)
	wantMax := New(nSeg, cols)
	wantMin := New(nSeg, cols)
	for s := 0; s < nSeg; s++ {
		for i := off[s]; i < off[s+1]; i++ {
			orow := wantSum.Row(s)
			for j, v := range rows[i] {
				orow[j] += v
			}
		}
		seg := rows[off[s]:off[s+1]]
		if len(seg) == 0 {
			continue
		}
		copy(wantMax.Row(s), seg[0])
		copy(wantMin.Row(s), seg[0])
		for _, r := range seg[1:] {
			for j, v := range r {
				if v > wantMax.At(s, j) {
					wantMax.Set(s, j, v)
				}
				if v < wantMin.At(s, j) {
					wantMin.Set(s, j, v)
				}
			}
		}
	}
	for _, workers := range []int{1, 2, 3, 8, 16} {
		prev := SetTuning(Tuning{Workers: workers, ParallelThreshold: 1})
		gotSum := SegmentSumViewsInto(New(nSeg, cols), off, rows)
		gotMax := New(nSeg, cols)
		gotMax.Fill(-77) // every element must be overwritten
		SegmentExtremeViewsInto(gotMax, off, rows, true)
		gotMin := New(nSeg, cols)
		gotMin.Fill(-77)
		SegmentExtremeViewsInto(gotMin, off, rows, false)
		SetTuning(prev)
		if !gotSum.Equal(wantSum) {
			t.Fatalf("workers=%d: SegmentSumViewsInto diverges from serial loop", workers)
		}
		if !gotMax.Equal(wantMax) {
			t.Fatalf("workers=%d: SegmentExtremeViewsInto(max) diverges", workers)
		}
		if !gotMin.Equal(wantMin) {
			t.Fatalf("workers=%d: SegmentExtremeViewsInto(min) diverges", workers)
		}
	}
}

// TestSegmentViewsEdgeCases: empty segment sets, all-empty segments, and a
// single over-heavy segment.
func TestSegmentViewsEdgeCases(t *testing.T) {
	if got := SegmentSumViewsInto(New(0, 4), []int32{0}, nil); got.Rows != 0 {
		t.Fatal("zero-segment sum must be empty")
	}
	// All-empty segments: sum and extreme are zero, even from a dirty dst.
	dst := New(3, 2)
	dst.Fill(9)
	SegmentSumViewsInto(dst, []int32{0, 0, 0, 0}, nil)
	for _, v := range dst.Data {
		if v != 0 {
			t.Fatalf("empty-segment sum = %v", dst.Data)
		}
	}
	dst.Fill(9)
	SegmentExtremeViewsInto(dst, []int32{0, 0, 0, 0}, nil, true)
	for _, v := range dst.Data {
		if v != 0 {
			t.Fatalf("empty-segment max = %v", dst.Data)
		}
	}
	// All-negative single segment keeps its true max (first view seeds).
	got := SegmentExtremeViewsInto(New(1, 1), []int32{0, 2}, [][]float32{{-5}, {-3}}, true)
	if got.At(0, 0) != -3 {
		t.Fatalf("negative-only max = %v, want -3", got.At(0, 0))
	}
}

// TestSegmentViewsMismatchPanics: corrupted offsets or ragged views must
// fail loudly at the kernel boundary.
func TestSegmentViewsMismatchPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("offset length", func() {
		SegmentSumViewsInto(New(2, 1), []int32{0, 1}, [][]float32{{1}})
	})
	expectPanic("offset coverage", func() {
		SegmentSumViewsInto(New(1, 1), []int32{0, 2}, [][]float32{{1}})
	})
	expectPanic("ragged view", func() {
		SegmentSumViewsInto(New(1, 2), []int32{0, 1}, [][]float32{{1}})
	})
}

func TestSegmentCount(t *testing.T) {
	got := SegmentCount([]int32{0, 2, 2, 2}, 3)
	if got[0] != 1 || got[1] != 0 || got[2] != 3 {
		t.Fatalf("SegmentCount = %v", got)
	}
}

func TestSegmentSumPermutationInvariant(t *testing.T) {
	// The paper's rule: aggregate must obey commutative+associative laws, so
	// permuting edge order must not change results beyond float tolerance.
	f := func(seed int64) bool {
		g := NewRNG(seed)
		e := 1 + g.Intn(20)
		n := 1 + g.Intn(5)
		data := New(e, 3)
		g.Uniform(data, -2, 2)
		seg := make([]int32, e)
		for i := range seg {
			seg[i] = int32(g.Intn(n))
		}
		base := SegmentSum(data, seg, n)

		perm := g.Perm(e)
		pd := New(e, 3)
		ps := make([]int32, e)
		for i, p := range perm {
			copy(pd.Row(i), data.Row(p))
			ps[i] = seg[p]
		}
		return SegmentSum(pd, ps, n).AllClose(base, 1e-4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentMaxPermutationInvariantExactly(t *testing.T) {
	// Max is exactly order-independent (no float rounding), so require Equal.
	f := func(seed int64) bool {
		g := NewRNG(seed)
		e := 1 + g.Intn(20)
		n := 1 + g.Intn(5)
		data := New(e, 2)
		g.Uniform(data, -2, 2)
		seg := make([]int32, e)
		for i := range seg {
			seg[i] = int32(g.Intn(n))
		}
		base := SegmentMax(data, seg, n)
		perm := g.Perm(e)
		pd := New(e, 2)
		ps := make([]int32, e)
		for i, p := range perm {
			copy(pd.Row(i), data.Row(p))
			ps[i] = seg[p]
		}
		return SegmentMax(pd, ps, n).Equal(base)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentSumSplitMerge(t *testing.T) {
	// Partial-gather correctness at the tensor level: splitting the edge set
	// arbitrarily, aggregating each part, then aggregating the partials gives
	// the same result as one global aggregate.
	f := func(seed int64) bool {
		g := NewRNG(seed)
		e := 2 + g.Intn(30)
		n := 1 + g.Intn(6)
		data := New(e, 2)
		g.Uniform(data, -2, 2)
		seg := make([]int32, e)
		for i := range seg {
			seg[i] = int32(g.Intn(n))
		}
		full := SegmentSum(data, seg, n)

		cut := 1 + g.Intn(e-1)
		partA := SegmentSum(FromSlice(cut, 2, data.Data[:cut*2]), seg[:cut], n)
		partB := SegmentSum(FromSlice(e-cut, 2, data.Data[cut*2:]), seg[cut:], n)
		merged := Add(partA, partB)
		return merged.AllClose(full, 1e-4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentSoftmaxSumsToOne(t *testing.T) {
	logits := []float32{1, 2, 3, -1, 0}
	seg := []int32{0, 0, 0, 1, 1}
	probs := SegmentSoftmax(logits, seg, 2)
	var s0, s1 float64
	for i, p := range probs {
		if seg[i] == 0 {
			s0 += float64(p)
		} else {
			s1 += float64(p)
		}
	}
	if math.Abs(s0-1) > 1e-5 || math.Abs(s1-1) > 1e-5 {
		t.Fatalf("segment softmax sums = %v, %v", s0, s1)
	}
	if !(probs[2] > probs[1] && probs[1] > probs[0]) {
		t.Fatal("softmax must be monotone in logits")
	}
}

func TestSegmentSoftmaxStableAtLargeLogits(t *testing.T) {
	probs := SegmentSoftmax([]float32{1000, 1001}, []int32{0, 0}, 1)
	for _, p := range probs {
		if math.IsNaN(float64(p)) || math.IsInf(float64(p), 0) {
			t.Fatal("softmax must be numerically stable")
		}
	}
}

func TestSegmentSoftmaxBackwardMatchesNumeric(t *testing.T) {
	logits := []float32{0.5, -0.2, 0.1}
	seg := []int32{0, 0, 0}
	probs := SegmentSoftmax(logits, seg, 1)
	dProbs := []float32{1, 2, 3}
	got := SegmentSoftmaxBackward(probs, dProbs, seg, 1)

	const eps = 1e-3
	for i := range logits {
		plus := append([]float32(nil), logits...)
		minus := append([]float32(nil), logits...)
		plus[i] += eps
		minus[i] -= eps
		pp := SegmentSoftmax(plus, seg, 1)
		pm := SegmentSoftmax(minus, seg, 1)
		var num float64
		for j := range pp {
			num += float64(dProbs[j]) * float64(pp[j]-pm[j]) / (2 * eps)
		}
		if math.Abs(num-float64(got[i])) > 1e-2 {
			t.Fatalf("grad[%d] = %v, numeric %v", i, got[i], num)
		}
	}
}

func TestSegmentSumBackwardShape(t *testing.T) {
	dOut := FromRows([][]float32{{1, 2}, {3, 4}})
	got := SegmentSumBackward(dOut, []int32{1, 1, 0})
	want := FromRows([][]float32{{3, 4}, {3, 4}, {1, 2}})
	if !got.Equal(want) {
		t.Fatalf("SegmentSumBackward = %v", got.Data)
	}
}

func TestSegmentMeanBackwardDividesByCount(t *testing.T) {
	dOut := FromRows([][]float32{{6, 6}})
	counts := []int32{3}
	got := SegmentMeanBackward(dOut, []int32{0, 0, 0}, counts)
	for r := 0; r < 3; r++ {
		if got.At(r, 0) != 2 {
			t.Fatalf("row %d = %v, want 2", r, got.Row(r))
		}
	}
}

func TestSegmentMeanGradientNumeric(t *testing.T) {
	// d/dx of mean-aggregate matches finite differences.
	data := FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}})
	seg := []int32{0, 0, 1}
	counts := SegmentCount(seg, 2)
	dOut := FromRows([][]float32{{1, 1}, {1, 1}})
	grad := SegmentMeanBackward(dOut, seg, counts)

	const eps = 1e-2
	for r := 0; r < data.Rows; r++ {
		for c := 0; c < data.Cols; c++ {
			orig := data.At(r, c)
			data.Set(r, c, orig+eps)
			plus := SegmentMean(data, seg, 2)
			data.Set(r, c, orig-eps)
			minus := SegmentMean(data, seg, 2)
			data.Set(r, c, orig)
			var num float64
			for i := range plus.Data {
				num += float64(plus.Data[i]-minus.Data[i]) / (2 * eps)
			}
			if math.Abs(num-float64(grad.At(r, c))) > 1e-2 {
				t.Fatalf("numeric grad mismatch at (%d,%d): %v vs %v", r, c, num, grad.At(r, c))
			}
		}
	}
}

func TestSegmentOpsPanicOnBadIDs(t *testing.T) {
	for name, f := range map[string]func(){
		"sum":     func() { SegmentSum(New(1, 1), []int32{5}, 2) },
		"mean":    func() { SegmentMean(New(1, 1), []int32{-1}, 2) },
		"max":     func() { SegmentMax(New(1, 1), []int32{2}, 2) },
		"min":     func() { SegmentMin(New(1, 1), []int32{9}, 2) },
		"softmax": func() { SegmentSoftmax([]float32{1}, []int32{3}, 2) },
		"count":   func() { SegmentCount([]int32{4}, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic for out-of-range segment id", name)
				}
			}()
			f()
		}()
	}
}
