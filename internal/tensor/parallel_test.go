package tensor

import (
	"fmt"
	"testing"
)

// Serial reference kernels, written as the naive loops the parallel layer
// must reproduce bit-for-bit (not AllClose — Equal).

func refMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.At(i, k)
			if av == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += av * b.At(k, j)
			}
		}
	}
	return out
}

func refMatMulAT(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	for r := 0; r < a.Rows; r++ {
		for i := 0; i < a.Cols; i++ {
			av := a.At(r, i)
			if av == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += av * b.At(r, j)
			}
		}
	}
	return out
}

func refMatMulBT(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var s float32
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(j, k)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func refSegmentSum(data *Matrix, seg []int32, nSeg int) *Matrix {
	out := New(nSeg, data.Cols)
	for r, s := range seg {
		for j, v := range data.Row(r) {
			out.Data[int(s)*out.Cols+j] += v
		}
	}
	return out
}

func refSegmentMean(data *Matrix, seg []int32, nSeg int) *Matrix {
	out := refSegmentSum(data, seg, nSeg)
	counts := SegmentCount(seg, nSeg)
	for i := 0; i < nSeg; i++ {
		if counts[i] == 0 {
			continue
		}
		inv := 1 / float32(counts[i])
		for j := range out.Row(i) {
			out.Row(i)[j] *= inv
		}
	}
	return out
}

func refSegmentExtreme(data *Matrix, seg []int32, nSeg int, isMax bool) *Matrix {
	out := New(nSeg, data.Cols)
	seen := make([]bool, nSeg)
	for r, s := range seg {
		drow := data.Row(r)
		orow := out.Row(int(s))
		if !seen[s] {
			copy(orow, drow)
			seen[s] = true
			continue
		}
		for j, v := range drow {
			if (isMax && v > orow[j]) || (!isMax && v < orow[j]) {
				orow[j] = v
			}
		}
	}
	return out
}

// forceParallel makes every kernel call eligible for the parallel path
// regardless of size, with w workers; the returned func restores tuning.
func forceParallel(w int) func() {
	prev := SetTuning(Tuning{Workers: w, BlockSize: 7, ParallelThreshold: 1})
	return func() { SetTuning(prev) }
}

var workerCounts = []int{1, 2, 3, 4, 5, 7, 8, 11, 13, 16}

func TestMatMulParallelBitIdentical(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 7, 5}, {17, 33, 9}, {64, 64, 64},
		{129, 65, 33}, {1, 100, 1}, {100, 1, 100}, {0, 5, 3}, {5, 0, 3},
	}
	g := NewRNG(42)
	for _, sh := range shapes {
		a := New(sh.m, sh.k)
		b := New(sh.k, sh.n)
		g.Uniform(a, -2, 2)
		g.Uniform(b, -2, 2)
		// Sprinkle exact zeros so the zero-skip path is exercised.
		for i := 0; i < len(a.Data); i += 3 {
			a.Data[i] = 0
		}
		want := refMatMul(a, b)
		for _, w := range workerCounts {
			restore := forceParallel(w)
			got := MatMul(a, b)
			restore()
			if !want.Equal(got) {
				t.Fatalf("MatMul %dx%dx%d workers=%d not bit-identical to serial", sh.m, sh.k, sh.n, w)
			}
		}
	}
}

func TestMatMulATBTParallelBitIdentical(t *testing.T) {
	g := NewRNG(43)
	a := New(57, 23)
	b := New(57, 31)
	g.Uniform(a, -1, 1)
	g.Uniform(b, -1, 1)
	wantAT := refMatMulAT(a, b)

	c := New(41, 29)
	d := New(19, 29)
	g.Uniform(c, -1, 1)
	g.Uniform(d, -1, 1)
	wantBT := refMatMulBT(c, d)

	for _, w := range workerCounts {
		restore := forceParallel(w)
		gotAT := MatMulAT(a, b)
		gotBT := MatMulBT(c, d)
		restore()
		if !wantAT.Equal(gotAT) {
			t.Fatalf("MatMulAT workers=%d not bit-identical", w)
		}
		if !wantBT.Equal(gotBT) {
			t.Fatalf("MatMulBT workers=%d not bit-identical", w)
		}
	}
}

func TestSegmentOpsParallelBitIdentical(t *testing.T) {
	g := NewRNG(44)
	cases := []struct {
		name string
		rows int
		nSeg int
		seg  func(r int) int32
	}{
		{"skewed", 501, 17, func(r int) int32 { return int32(r * r % 17) }},
		{"empty-segments", 100, 50, func(r int) int32 { return int32((r % 10) * 5) }},
		{"singletons", 37, 37, func(r int) int32 { return int32(r) }},
		{"one-heavy", 400, 9, func(r int) int32 {
			if r%4 != 0 {
				return 3
			}
			return int32(r % 9)
		}},
		{"no-rows", 0, 11, nil},
	}
	for _, tc := range cases {
		data := New(tc.rows, 13)
		g.Uniform(data, -3, 3)
		seg := make([]int32, tc.rows)
		for r := range seg {
			seg[r] = tc.seg(r)
		}
		wantSum := refSegmentSum(data, seg, tc.nSeg)
		wantMean := refSegmentMean(data, seg, tc.nSeg)
		wantMax := refSegmentExtreme(data, seg, tc.nSeg, true)
		wantMin := refSegmentExtreme(data, seg, tc.nSeg, false)
		for _, w := range workerCounts {
			restore := forceParallel(w)
			gotSum := SegmentSum(data, seg, tc.nSeg)
			gotMean := SegmentMean(data, seg, tc.nSeg)
			gotMax := SegmentMax(data, seg, tc.nSeg)
			gotMin := SegmentMin(data, seg, tc.nSeg)
			restore()
			for _, p := range []struct {
				op        string
				want, got *Matrix
			}{
				{"SegmentSum", wantSum, gotSum},
				{"SegmentMean", wantMean, gotMean},
				{"SegmentMax", wantMax, gotMax},
				{"SegmentMin", wantMin, gotMin},
			} {
				if !p.want.Equal(p.got) {
					t.Fatalf("%s/%s workers=%d not bit-identical to serial", p.op, tc.name, w)
				}
			}
		}
	}
}

func TestGatherSegmentSumMatchesUnfused(t *testing.T) {
	g := NewRNG(45)
	state := New(40, 11)
	g.Uniform(state, -1, 1)
	e := 333
	src := make([]int32, e)
	seg := make([]int32, e)
	for i := range src {
		src[i] = int32(g.Intn(40))
		seg[i] = int32(g.Intn(25))
	}
	want := refSegmentSum(refGather(state, src), seg, 25)
	for _, w := range workerCounts {
		restore := forceParallel(w)
		got := GatherSegmentSum(state, src, seg, 25)
		restore()
		if !want.Equal(got) {
			t.Fatalf("GatherSegmentSum workers=%d differs from gather+sum", w)
		}
	}
}

func refGather(m *Matrix, idx []int32) *Matrix {
	out := New(len(idx), m.Cols)
	for r, i := range idx {
		copy(out.Row(r), m.Row(int(i)))
	}
	return out
}

func TestGatherRowsIntoMatchesGatherRows(t *testing.T) {
	g := NewRNG(46)
	m := New(64, 9)
	g.Uniform(m, -1, 1)
	idx := make([]int32, 777)
	for i := range idx {
		idx[i] = int32(g.Intn(64))
	}
	want := refGather(m, idx)
	for _, w := range workerCounts {
		restore := forceParallel(w)
		got := GatherRows(m, idx)
		restore()
		if !want.Equal(got) {
			t.Fatalf("GatherRows workers=%d differs", w)
		}
	}
}

// TestIntoVariantsOverwriteStaleDst pins the contract of every exported
// ...Into kernel: a dst full of stale values is fully overwritten, matching
// the allocating form bit-for-bit.
func TestIntoVariantsOverwriteStaleDst(t *testing.T) {
	g := NewRNG(47)
	a := New(9, 7)
	b := New(7, 11)
	g.Uniform(a, -1, 1)
	g.Uniform(b, -1, 1)

	dst := New(9, 11)
	dst.Fill(99)
	if !MatMulInto(dst, a, b).Equal(refMatMul(a, b)) {
		t.Fatal("MatMulInto did not overwrite dst with a@b")
	}

	c := New(9, 11) // rows match a for AT
	g.Uniform(c, -1, 1)
	dst = New(7, 11)
	dst.Fill(-5)
	if !MatMulATInto(dst, a, c).Equal(refMatMulAT(a, c)) {
		t.Fatal("MatMulATInto did not overwrite dst with aT@b")
	}

	d := New(4, 7) // cols match a for BT
	g.Uniform(d, -1, 1)
	dst = New(9, 4)
	dst.Fill(3)
	if !MatMulBTInto(dst, a, d).Equal(refMatMulBT(a, d)) {
		t.Fatal("MatMulBTInto did not overwrite dst with a@bT")
	}

	data := New(20, 6)
	g.Uniform(data, -1, 1)
	seg := make([]int32, 20)
	for i := range seg {
		seg[i] = int32(i % 5)
	}
	dst = New(5, 6)
	dst.Fill(42)
	if !SegmentSumInto(dst, data, seg).Equal(refSegmentSum(data, seg, 5)) {
		t.Fatal("SegmentSumInto did not overwrite dst")
	}

	state := New(10, 6)
	g.Uniform(state, -1, 1)
	src := make([]int32, 20)
	for i := range src {
		src[i] = int32(i % 10)
	}
	dst = New(5, 6)
	dst.Fill(-7)
	if !GatherSegmentSumInto(dst, state, src, seg).Equal(refSegmentSum(refGather(state, src), seg, 5)) {
		t.Fatal("GatherSegmentSumInto did not overwrite dst")
	}
}

func TestPoolReuseAndZeroing(t *testing.T) {
	p := NewPool()
	m := p.Get(4, 8)
	m.Fill(7)
	backing := &m.Data[0]
	p.Put(m)

	// Same size class comes back with the same backing array, zeroed.
	n := p.Get(2, 16)
	if &n.Data[0] != backing {
		t.Fatal("pool did not reuse the buffer for a same-class request")
	}
	for _, v := range n.Data {
		if v != 0 {
			t.Fatal("pool.Get returned a non-zeroed buffer")
		}
	}
	if n.Rows != 2 || n.Cols != 16 {
		t.Fatalf("pool returned wrong shape %dx%d", n.Rows, n.Cols)
	}
	p.Put(n)

	// A larger request must not receive the too-small buffer.
	big := p.GetNoZero(100, 100)
	if big.Rows*big.Cols != 10000 || len(big.Data) != 10000 {
		t.Fatalf("pool returned bad large buffer %dx%d", big.Rows, big.Cols)
	}

	// Empty shapes round-trip without pooling.
	z := p.Get(0, 5)
	if z.Rows != 0 || z.Cols != 5 {
		t.Fatal("pool mishandled empty shape")
	}
	p.Put(z)
}

func TestTuningDefaultsAndRestore(t *testing.T) {
	prev := SetTuning(Tuning{Workers: 3, BlockSize: 5, ParallelThreshold: 9})
	cur := CurrentTuning()
	if cur.Workers != 3 || cur.BlockSize != 5 || cur.ParallelThreshold != 9 {
		t.Fatalf("SetTuning did not install values: %+v", cur)
	}
	zeroed := SetTuning(Tuning{})
	if zeroed.Workers != 3 {
		t.Fatalf("SetTuning did not return previous tuning: %+v", zeroed)
	}
	def := CurrentTuning()
	if def.Workers <= 0 || def.BlockSize != defaultBlockSize || def.ParallelThreshold != defaultParallelThreshold {
		t.Fatalf("zero Tuning did not normalize to defaults: %+v", def)
	}
	SetTuning(prev)
}

// TestParallelRowBlocksCoverage asserts the partitioner covers [0,n) with
// disjoint blocks for every n/worker combination — the ownership invariant
// the determinism model rests on.
func TestParallelRowBlocksCoverage(t *testing.T) {
	for _, w := range workerCounts {
		for n := 0; n < 40; n++ {
			restore := forceParallel(w)
			owned := make([]int, n)
			var mu = make(chan struct{}, 1)
			mu <- struct{}{}
			parallelRowBlocks(n, 1<<20, func(lo, hi int) {
				<-mu
				for i := lo; i < hi; i++ {
					owned[i]++
				}
				mu <- struct{}{}
			})
			restore()
			for i, c := range owned {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: row %d owned %d times", n, w, i, c)
				}
			}
		}
	}
}

func TestParallelWeightedBlocksCoverage(t *testing.T) {
	g := NewRNG(48)
	for _, w := range workerCounts {
		for trial := 0; trial < 20; trial++ {
			n := g.Intn(30)
			starts := make([]int32, n+1)
			for s := 0; s < n; s++ {
				starts[s+1] = starts[s] + int32(g.Intn(50))
			}
			restore := forceParallel(w)
			owned := make([]int, n)
			mu := make(chan struct{}, 1)
			mu <- struct{}{}
			parallelWeightedBlocks(n, 1<<20, starts, func(lo, hi int) {
				<-mu
				for s := lo; s < hi; s++ {
					owned[s]++
				}
				mu <- struct{}{}
			})
			restore()
			for s, c := range owned {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: segment %d owned %d times (weights %v)", w, n, s, c, starts)
				}
			}
		}
	}
}

func ExampleSetTuning() {
	prev := SetTuning(Tuning{Workers: 1}) // force serial kernels
	defer SetTuning(prev)
	a := FromRows([][]float32{{1, 2}, {3, 4}})
	fmt.Println(MatMul(a, a).Data)
	// Output: [7 10 15 22]
}
