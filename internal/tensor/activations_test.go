package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReLU(t *testing.T) {
	m := FromRows([][]float32{{-1, 0, 2}})
	got := ReLU(m)
	want := FromRows([][]float32{{0, 0, 2}})
	if !got.Equal(want) {
		t.Fatalf("ReLU = %v", got.Data)
	}
}

func TestReLUBackwardMasks(t *testing.T) {
	in := FromRows([][]float32{{-1, 0, 2}})
	dOut := FromRows([][]float32{{5, 5, 5}})
	got := ReLUBackward(dOut, in)
	want := FromRows([][]float32{{0, 0, 5}})
	if !got.Equal(want) {
		t.Fatalf("ReLUBackward = %v", got.Data)
	}
}

func TestLeakyReLU(t *testing.T) {
	m := FromRows([][]float32{{-10, 10}})
	got := LeakyReLU(m, 0.2)
	if got.At(0, 0) != -2 || got.At(0, 1) != 10 {
		t.Fatalf("LeakyReLU = %v", got.Data)
	}
}

func TestLeakyReLUBackward(t *testing.T) {
	in := FromRows([][]float32{{-1, 3}})
	dOut := FromRows([][]float32{{10, 10}})
	got := LeakyReLUBackward(dOut, in, 0.1)
	if got.At(0, 0) != 1 || got.At(0, 1) != 10 {
		t.Fatalf("LeakyReLUBackward = %v", got.Data)
	}
}

func TestLeakyReLUScalarAndGrad(t *testing.T) {
	if LeakyReLUScalar(-2, 0.5) != -1 || LeakyReLUScalar(2, 0.5) != 2 {
		t.Fatal("LeakyReLUScalar wrong")
	}
	if LeakyReLUGradScalar(-2, 0.5) != 0.5 || LeakyReLUGradScalar(2, 0.5) != 1 {
		t.Fatal("LeakyReLUGradScalar wrong")
	}
}

func TestSigmoidRangeAndSymmetry(t *testing.T) {
	m := FromRows([][]float32{{-3, 0, 3}})
	got := Sigmoid(m)
	if got.At(0, 1) != 0.5 {
		t.Fatalf("sigmoid(0) = %v, want 0.5", got.At(0, 1))
	}
	if s := got.At(0, 0) + got.At(0, 2); math.Abs(float64(s-1)) > 1e-5 {
		t.Fatalf("sigmoid(-x)+sigmoid(x) = %v, want 1", s)
	}
}

func TestSigmoidBackwardNumeric(t *testing.T) {
	in := FromRows([][]float32{{0.3, -0.7}})
	out := Sigmoid(in)
	dOut := FromRows([][]float32{{1, 1}})
	grad := SigmoidBackward(dOut, out)
	const eps = 1e-3
	for j := 0; j < 2; j++ {
		plus := in.Clone()
		plus.Set(0, j, in.At(0, j)+eps)
		minus := in.Clone()
		minus.Set(0, j, in.At(0, j)-eps)
		num := (Sigmoid(plus).At(0, j) - Sigmoid(minus).At(0, j)) / (2 * eps)
		if math.Abs(float64(num-grad.At(0, j))) > 1e-3 {
			t.Fatalf("sigmoid grad[%d] = %v, numeric %v", j, grad.At(0, j), num)
		}
	}
}

func TestTanhBackwardNumeric(t *testing.T) {
	in := FromRows([][]float32{{0.5}})
	out := Tanh(in)
	grad := TanhBackward(FromRows([][]float32{{1}}), out)
	const eps = 1e-3
	plus := Tanh(FromRows([][]float32{{0.5 + eps}})).At(0, 0)
	minus := Tanh(FromRows([][]float32{{0.5 - eps}})).At(0, 0)
	num := (plus - minus) / (2 * eps)
	if math.Abs(float64(num-grad.At(0, 0))) > 1e-3 {
		t.Fatalf("tanh grad = %v, numeric %v", grad.At(0, 0), num)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		m := New(3, 5)
		g.Uniform(m, -4, 4)
		sm := Softmax(m)
		for i := 0; i < sm.Rows; i++ {
			var s float64
			for _, v := range sm.Row(i) {
				if v < 0 {
					return false
				}
				s += float64(v)
			}
			if math.Abs(s-1) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxShiftInvariant(t *testing.T) {
	m := FromRows([][]float32{{1, 2, 3}})
	shifted := FromRows([][]float32{{101, 102, 103}})
	if !Softmax(m).AllClose(Softmax(shifted), 1e-5) {
		t.Fatal("softmax must be shift invariant")
	}
}

func TestSoftmaxStableAtExtremes(t *testing.T) {
	m := FromRows([][]float32{{1e4, -1e4}})
	sm := Softmax(m)
	if math.IsNaN(float64(sm.At(0, 0))) || sm.At(0, 0) < 0.999 {
		t.Fatalf("softmax extreme = %v", sm.Data)
	}
}

func TestLogSoftmaxMatchesLogOfSoftmax(t *testing.T) {
	g := NewRNG(5)
	m := New(2, 4)
	g.Uniform(m, -3, 3)
	ls := LogSoftmax(m)
	sm := Softmax(m)
	for i := range ls.Data {
		if math.Abs(float64(ls.Data[i])-math.Log(float64(sm.Data[i]))) > 1e-4 {
			t.Fatal("LogSoftmax != log(Softmax)")
		}
	}
}

func TestArgmaxRows(t *testing.T) {
	m := FromRows([][]float32{{0, 5, 2}, {7, 1, 7}})
	got := ArgmaxRows(m)
	if got[0] != 1 {
		t.Fatalf("argmax row0 = %d", got[0])
	}
	if got[1] != 0 {
		t.Fatalf("argmax must break ties low, got %d", got[1])
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float32() != b.Float32() {
			t.Fatal("same-seed RNGs must agree")
		}
	}
}

func TestZipfBoundsAndSkew(t *testing.T) {
	g := NewRNG(1)
	counts := map[int]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		v := g.Zipf(2.0, 1000)
		if v < 1 || v > 1000 {
			t.Fatalf("Zipf out of bounds: %d", v)
		}
		counts[v]++
	}
	if counts[1] < n/3 {
		t.Fatalf("Zipf(2.0) should be heavily skewed to 1: got %d of %d", counts[1], n)
	}
	if g.Zipf(2.0, 1) != 1 {
		t.Fatal("Zipf with max=1 must return 1")
	}
}

func TestXavierWithinLimit(t *testing.T) {
	g := NewRNG(3)
	m := New(50, 50)
	g.Xavier(m)
	limit := float32(math.Sqrt(6.0 / 100))
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("Xavier value %v outside ±%v", v, limit)
		}
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	g := NewRNG(9)
	got := g.SampleWithoutReplacement(10, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid sample %v", got)
		}
		seen[v] = true
	}
	all := g.SampleWithoutReplacement(3, 10)
	if len(all) != 3 {
		t.Fatal("k>=n must return all indices")
	}
}
