package checkpoint

// Mutation write-ahead log. The epoch Store persists big, rare recovery
// points; the WAL persists small, frequent ones: the serving layer appends
// each staged mutation batch here *before* acknowledging it, so an
// acknowledged batch survives any crash until the refresh that consumed it
// has been made durable through the epoch store — at which point the
// consumed prefix is truncated away.
//
// File layout: an 8-byte magic header followed by framed records. Each
// record is
//
//	u32 payloadLen | u64 seq | u32 crc32c(payload) | payload
//
// Sequence numbers are assigned by the caller, strictly increasing; they are
// the replay cursor (a resumed session knows the highest sequence its
// durable state already contains and skips records at or below it, so a
// crash between slab-persist and WAL-truncate never double-applies a batch).
//
// Crash anatomy, by construction:
//
//   - Append writes one frame with a single Write call and (at SyncAlways)
//     fsyncs before returning, so a record either fully precedes the ack or
//     the ack never happened.
//   - A crash mid-append leaves a torn tail: replay stops at the first frame
//     whose length runs past the file or whose CRC mismatches, and Open
//     truncates the file back to the last intact record — by the append
//     ordering, nothing torn was ever acknowledged.
//   - TruncateThrough rewrites the surviving suffix into wal.tmp and renames
//     it over the log (the Store's rename-atomic discipline), so a crash
//     mid-truncation leaves either the old log or the new one, both valid,
//     both containing every unconsumed record.
//
// A WAL is safe for concurrent use: appends (HTTP handlers) and truncation
// (the session persister goroutine) serialize on an internal mutex.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

const (
	walMagic    = "ITWAL001"
	walFile     = "wal.log"
	walTmp      = "wal.tmp"
	walFrameHdr = 4 + 8 + 4 // payloadLen + seq + crc
)

// WALRecord is one replayed append: the caller's sequence number and payload.
type WALRecord struct {
	Seq     uint64
	Payload []byte
}

// walEntry tracks one live record's position for head truncation.
type walEntry struct {
	seq uint64
	end int64 // file offset just past this record's frame
}

// WAL is an append-only, CRC-framed mutation log in dir. Open with OpenWAL.
type WAL struct {
	mu   sync.Mutex
	dir  string
	f    *os.File
	sync SyncMode

	index   []walEntry
	size    int64 // current file size (== index tail end, or header len)
	scratch []byte

	appended  int64 // records appended this process
	truncated int64 // head-truncation rotations this process
}

// ReplayWAL parses one WAL file's bytes. It returns the decoded records of
// the longest valid prefix and that prefix's length in bytes; a torn or
// corrupt tail (short frame, impossible length, CRC mismatch) simply ends
// the prefix — by the append-before-ack ordering nothing beyond it was ever
// acknowledged. Only a missing or wrong header is an error: that is not a
// torn write but a file this code never produced. Payload lengths are
// bounds-checked against the remaining bytes before any allocation, so
// adversarial input cannot drive oversized allocations; returned payloads
// are copies, independent of b.
func ReplayWAL(b []byte) ([]WALRecord, int64, error) {
	if len(b) == 0 {
		return nil, 0, nil
	}
	if len(b) < len(walMagic) || string(b[:len(walMagic)]) != walMagic {
		return nil, 0, fmt.Errorf("checkpoint: bad WAL magic")
	}
	off := int64(len(walMagic))
	var recs []WALRecord
	for {
		rest := b[off:]
		if len(rest) < walFrameHdr {
			break // torn or clean EOF
		}
		plen := int64(binary.LittleEndian.Uint32(rest[0:4]))
		if plen > int64(len(rest))-walFrameHdr {
			break // torn: frame claims more bytes than the file holds
		}
		seq := binary.LittleEndian.Uint64(rest[4:12])
		sum := binary.LittleEndian.Uint32(rest[12:16])
		payload := rest[walFrameHdr : walFrameHdr+plen]
		if crc32.Checksum(payload, castagnoli) != sum {
			break // torn or bit-rotted: everything from here on is dead
		}
		recs = append(recs, WALRecord{Seq: seq, Payload: append([]byte(nil), payload...)})
		off += walFrameHdr + plen
	}
	return recs, off, nil
}

// OpenWAL opens (creating if needed) the log in dir, replays its intact
// records, truncates any torn tail, and positions the log for appends. The
// returned records are the unconsumed batches a restarted process must
// re-stage.
func OpenWAL(dir string, sync SyncMode) (*WAL, []WALRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("checkpoint: create WAL dir: %w", err)
	}
	w := &WAL{dir: dir, sync: sync}
	path := filepath.Join(dir, walFile)
	b, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("checkpoint: read WAL: %w", err)
	}
	recs, valid, err := ReplayWAL(b)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: open WAL: %w", err)
	}
	if len(b) == 0 {
		// Fresh log: write the header now so a crash before the first append
		// still leaves a well-formed file.
		if _, err := f.Write([]byte(walMagic)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("checkpoint: init WAL: %w", err)
		}
		valid = int64(len(walMagic))
	} else if valid < int64(len(b)) {
		// Drop the torn tail so appends never interleave with dead bytes.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("checkpoint: truncate torn WAL tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	w.f, w.size = f, valid
	off := int64(len(walMagic))
	for _, r := range recs {
		off += walFrameHdr + int64(len(r.Payload))
		w.index = append(w.index, walEntry{seq: r.Seq, end: off})
	}
	return w, recs, nil
}

// Append durably logs one record: a single framed write, fsynced before
// returning when the WAL runs at SyncAlways (SyncNever still survives
// process death — the page cache outlives the process — but not power
// loss, matching the epoch store's durability classes).
func (w *WAL) Append(seq uint64, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("checkpoint: append to closed WAL")
	}
	b := w.scratch[:0]
	b = AppendU32(b, uint32(len(payload)))
	b = AppendU64(b, seq)
	b = AppendU32(b, crc32.Checksum(payload, castagnoli))
	b = append(b, payload...)
	w.scratch = b[:0]
	if _, err := w.f.Write(b); err != nil {
		// A partial frame may be on disk; rewind so the next append
		// overwrites it instead of burying a torn frame mid-file.
		w.f.Seek(w.size, 0)
		w.f.Truncate(w.size)
		return fmt.Errorf("checkpoint: WAL append: %w", err)
	}
	if w.sync == SyncAlways {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("checkpoint: WAL fsync: %w", err)
		}
	}
	w.size += int64(len(b))
	w.index = append(w.index, walEntry{seq: seq, end: w.size})
	w.appended++
	return nil
}

// TruncateThrough drops every record with Seq <= seq — the prefix a durable
// slab epoch has made redundant — via rename-atomic rotation: the surviving
// suffix is rewritten into wal.tmp and renamed over the log. A no-op when
// nothing qualifies.
func (w *WAL) TruncateThrough(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("checkpoint: truncate of closed WAL")
	}
	drop := 0
	for drop < len(w.index) && w.index[drop].seq <= seq {
		drop++
	}
	if drop == 0 {
		return nil
	}
	keepFrom := w.index[drop-1].end
	// Read the surviving suffix out of the live file, then rebuild.
	suffix := make([]byte, w.size-keepFrom)
	if _, err := w.f.ReadAt(suffix, keepFrom); err != nil {
		return fmt.Errorf("checkpoint: WAL rotate read: %w", err)
	}
	tmp := filepath.Join(w.dir, walTmp)
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: WAL rotate: %w", err)
	}
	if _, err := nf.Write(append([]byte(walMagic), suffix...)); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: WAL rotate write: %w", err)
	}
	if err := nf.Truncate(int64(len(walMagic) + len(suffix))); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: WAL rotate truncate: %w", err)
	}
	if w.sync == SyncAlways {
		if err := nf.Sync(); err != nil {
			nf.Close()
			os.Remove(tmp)
			return fmt.Errorf("checkpoint: WAL rotate fsync: %w", err)
		}
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, walFile)); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: WAL rotate rename: %w", err)
	}
	if w.sync == SyncAlways {
		syncDir(w.dir)
	}
	w.f.Close()
	w.f = nf
	newSize := int64(len(walMagic) + len(suffix))
	if _, err := w.f.Seek(newSize, 0); err != nil {
		return err
	}
	shift := keepFrom - int64(len(walMagic))
	w.index = w.index[drop:]
	for i := range w.index {
		w.index[i].end -= shift
	}
	w.size = newSize
	w.truncated++
	return nil
}

// Records reports the live (unconsumed) record count.
func (w *WAL) Records() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.index)
}

// Bytes reports the log's current on-disk size.
func (w *WAL) Bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Appended reports records appended by this process (a monotonic stat).
func (w *WAL) Appended() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended
}

// Truncations reports head-truncation rotations performed by this process.
func (w *WAL) Truncations() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.truncated
}

// Close fsyncs the log — regardless of SyncMode, so a graceful shutdown is
// power-loss durable even at SyncNever — and closes it. Idempotent.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
