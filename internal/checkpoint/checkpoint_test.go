package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testSegs(tag byte) []Segment {
	return []Segment{
		{Name: "meta", Data: []byte{tag, 1, 2, 3}},
		{Name: "values", Data: AppendF32s(nil, []float32{1.5, -2.25, float32(tag)})},
		{Name: "empty", Data: nil},
	}
}

func segsEqual(a, b []Segment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || string(a[i].Data) != string(b[i].Data) {
			return false
		}
	}
	return true
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := testSegs(7)
	if err := s.Save(42, want); err != nil {
		t.Fatal(err)
	}
	step, got, found, err := s.Load()
	if err != nil || !found {
		t.Fatalf("Load: found=%v err=%v", found, err)
	}
	if step != 42 || !segsEqual(want, got) {
		t.Fatalf("round trip mismatch: step=%d", step)
	}
	if s.BytesWritten() == 0 {
		t.Fatal("BytesWritten not recorded")
	}
}

func TestLoadEmptyDir(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, _, found, err := s.Load()
	if err != nil || found {
		t.Fatalf("empty dir: found=%v err=%v", found, err)
	}
}

func TestLatestEpochWins(t *testing.T) {
	s, _ := NewStore(t.TempDir())
	for i := 0; i < 3; i++ {
		if err := s.Save(i*4, testSegs(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	step, segs, found, _ := s.Load()
	if !found || step != 8 || segs[0].Data[0] != 2 {
		t.Fatalf("latest epoch not returned: step=%d", step)
	}
}

// corruptLatest flips a byte in the middle of the newest epoch file.
func corruptLatest(t *testing.T, s *Store) string {
	t.Helper()
	epochs, err := s.listEpochs()
	if err != nil || len(epochs) == 0 {
		t.Fatalf("no epochs to corrupt: %v", err)
	}
	path := epochPath(s.dir, epochs[len(epochs)-1])
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCorruptFallsBackToPreviousEpoch(t *testing.T) {
	s, _ := NewStore(t.TempDir())
	if err := s.Save(4, testSegs(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(8, testSegs(2)); err != nil {
		t.Fatal(err)
	}
	corruptLatest(t, s)
	step, segs, found, err := s.Load()
	if err != nil || !found {
		t.Fatalf("Load after corruption: found=%v err=%v", found, err)
	}
	if step != 4 || segs[0].Data[0] != 1 {
		t.Fatalf("fallback returned wrong epoch: step=%d", step)
	}
}

func TestTornTailFallsBack(t *testing.T) {
	s, _ := NewStore(t.TempDir())
	s.Save(4, testSegs(1))
	s.Save(8, testSegs(2))
	epochs, _ := s.listEpochs()
	path := epochPath(s.dir, epochs[len(epochs)-1])
	b, _ := os.ReadFile(path)
	os.WriteFile(path, b[:len(b)-len(footerMagic)-2], 0o644) // lose the tail
	step, _, found, err := s.Load()
	if err != nil || !found || step != 4 {
		t.Fatalf("torn tail: step=%d found=%v err=%v", step, found, err)
	}
}

func TestAllEpochsCorruptReportsNothing(t *testing.T) {
	s, _ := NewStore(t.TempDir())
	s.Save(4, testSegs(1))
	corruptLatest(t, s)
	_, _, found, err := s.Load()
	if err != nil || found {
		t.Fatalf("all-corrupt: found=%v err=%v", found, err)
	}
}

func TestStaleManifestFallsBackToScan(t *testing.T) {
	s, _ := NewStore(t.TempDir())
	s.Save(4, testSegs(1))
	// Manifest names a file that no longer exists (e.g. crash between epoch
	// write and manifest update on a later process): scan must recover.
	os.WriteFile(filepath.Join(s.dir, manifest), []byte("epoch-99999999.ckpt\n"), 0o644)
	step, _, found, err := s.Load()
	if err != nil || !found || step != 4 {
		t.Fatalf("stale manifest: step=%d found=%v err=%v", step, found, err)
	}
}

func TestTmpFilesIgnored(t *testing.T) {
	s, _ := NewStore(t.TempDir())
	s.Save(4, testSegs(1))
	// A crash mid-write leaves a .tmp the loader must never consider.
	os.WriteFile(epochPath(s.dir, 9)+".tmp", []byte("garbage"), 0o644)
	step, _, found, err := s.Load()
	if err != nil || !found || step != 4 {
		t.Fatalf("tmp file considered: step=%d found=%v err=%v", step, found, err)
	}
}

func TestRetryRecoversFromTransientErrors(t *testing.T) {
	s, _ := NewStore(t.TempDir())
	var slept []time.Duration
	s.sleep = func(d time.Duration) { slept = append(slept, d) }
	fails := 2
	s.writeHook = func(attempt int) error {
		if attempt < fails {
			return errors.New("injected io error")
		}
		return nil
	}
	if err := s.Save(4, testSegs(1)); err != nil {
		t.Fatalf("save with transient errors: %v", err)
	}
	if len(slept) != 2 {
		t.Fatalf("expected 2 backoff sleeps, got %d", len(slept))
	}
	if slept[1] != 2*slept[0] {
		t.Fatalf("backoff not doubling: %v", slept)
	}
	if _, _, found, _ := s.Load(); !found {
		t.Fatal("epoch not recoverable after retried save")
	}
}

func TestRetryExhaustionSurfacesError(t *testing.T) {
	s, _ := NewStore(t.TempDir())
	s.sleep = func(time.Duration) {}
	s.writeHook = func(int) error { return errors.New("disk on fire") }
	if err := s.Save(4, testSegs(1)); err == nil {
		t.Fatal("expected error after exhausting retries")
	}
}

func TestPruneKeepsTwoEpochs(t *testing.T) {
	s, _ := NewStore(t.TempDir())
	for i := 0; i < 5; i++ {
		s.Save(i, testSegs(byte(i)))
	}
	epochs, _ := s.listEpochs()
	if len(epochs) != 2 {
		t.Fatalf("expected 2 retained epochs, got %v", epochs)
	}
}

func TestEpochNumberingContinuesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1, _ := NewStore(dir)
	s1.Save(4, testSegs(1))
	s2, err := NewStore(dir) // a resumed process
	if err != nil {
		t.Fatal(err)
	}
	s2.Save(8, testSegs(2))
	step, _, found, _ := s2.Load()
	if !found || step != 8 {
		t.Fatalf("resumed store did not supersede: step=%d", step)
	}
	epochs, _ := s2.listEpochs()
	if len(epochs) != 2 || epochs[0] != 0 || epochs[1] != 1 {
		t.Fatalf("epoch numbering broken across restart: %v", epochs)
	}
}

func TestWireRoundTrip(t *testing.T) {
	var b []byte
	b = AppendU32(b, 0xdeadbeef)
	b = AppendI64(b, -42)
	b = AppendString(b, "seg")
	b = AppendBools(b, []bool{true, false, true})
	b = AppendI32s(b, []int32{-1, 0, 7})
	b = AppendI64s(b, []int64{1 << 40, -9})
	b = AppendF32s(b, []float32{3.5, -0.125})
	r := NewReader(b)
	if r.U32() != 0xdeadbeef || r.I64() != -42 || r.String() != "seg" {
		t.Fatal("scalar round trip failed")
	}
	bs := r.Bools()
	if len(bs) != 3 || !bs[0] || bs[1] || !bs[2] {
		t.Fatal("bools round trip failed")
	}
	i32 := r.I32s()
	if len(i32) != 3 || i32[0] != -1 || i32[2] != 7 {
		t.Fatal("i32s round trip failed")
	}
	i64 := r.I64s()
	if len(i64) != 2 || i64[0] != 1<<40 || i64[1] != -9 {
		t.Fatal("i64s round trip failed")
	}
	f32 := r.F32s()
	if len(f32) != 2 || f32[0] != 3.5 || f32[1] != -0.125 {
		t.Fatal("f32s round trip failed")
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("reader state: err=%v remaining=%d", r.Err(), r.Remaining())
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1, 2})
	if r.U64() != 0 || r.Err() == nil {
		t.Fatal("short read did not poison reader")
	}
	if r.I32s() != nil || r.U32() != 0 {
		t.Fatal("poisoned reader kept reading")
	}
	// A corrupt length prefix must not drive a huge allocation.
	huge := AppendU64(nil, 1<<60)
	r2 := NewReader(huge)
	if r2.F32s() != nil || r2.Err() == nil {
		t.Fatal("oversized length accepted")
	}
}

// TestSyncNeverRoundTrip: the no-fsync mode keeps the whole protocol —
// atomic rename, CRCs, manifest, pruning — and round-trips identically;
// only the fsync calls are elided.
func TestSyncNeverRoundTrip(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Sync = SyncNever
	for tag := byte(1); tag <= 3; tag++ {
		if err := s.Save(int(tag), testSegs(tag)); err != nil {
			t.Fatal(err)
		}
	}
	step, got, found, err := s.Load()
	if err != nil || !found {
		t.Fatalf("Load: found=%v err=%v", found, err)
	}
	if step != 3 || !segsEqual(testSegs(3), got) {
		t.Fatalf("round trip mismatch: step=%d", step)
	}
	// The only tmp file allowed is the shared recycled scratch (pruned
	// epochs become the next write's page-recycled buffer); any other tmp
	// name means the atomic-write protocol leaked.
	names, _ := filepath.Glob(filepath.Join(s.Dir(), "*.tmp"))
	for _, n := range names {
		if filepath.Base(n) != epochTmp {
			t.Fatalf("unexpected tmp file: %v", n)
		}
	}
}

// TestPruneRecyclesTmp: pruning renames the retired epoch onto the shared
// tmp name (so its pages are overwritten in place by the next epoch) and the
// recycled file is never loadable.
func TestPruneRecyclesTmp(t *testing.T) {
	s, _ := NewStore(t.TempDir())
	for tag := byte(1); tag <= 3; tag++ {
		if err := s.Save(int(tag), testSegs(tag)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), epochTmp)); err != nil {
		t.Fatalf("pruned epoch not recycled as %s: %v", epochTmp, err)
	}
	if names, _ := filepath.Glob(filepath.Join(s.Dir(), "epoch-*.ckpt")); len(names) != defaultKeep {
		t.Fatalf("retained epochs = %v, want %d", names, defaultKeep)
	}
	// A fourth save must overwrite the recycled file and stay readable.
	if err := s.Save(4, testSegs(4)); err != nil {
		t.Fatal(err)
	}
	step, got, found, err := s.Load()
	if err != nil || !found || step != 4 || !segsEqual(testSegs(4), got) {
		t.Fatalf("round trip after recycle: step=%d found=%v err=%v", step, found, err)
	}
}
