package checkpoint

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func walPayload(i int) []byte {
	return []byte(fmt.Sprintf("delta-batch-%03d", i))
}

func openTestWAL(t *testing.T, dir string, sync SyncMode) (*WAL, []WALRecord) {
	t.Helper()
	w, recs, err := OpenWAL(dir, sync)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	return w, recs
}

func TestWALRoundTrip(t *testing.T) {
	for _, sync := range []SyncMode{SyncAlways, SyncNever} {
		t.Run(fmt.Sprint(sync), func(t *testing.T) {
			dir := t.TempDir()
			w, recs := openTestWAL(t, dir, sync)
			if len(recs) != 0 {
				t.Fatalf("fresh WAL replayed %d records", len(recs))
			}
			for i := 1; i <= 5; i++ {
				if err := w.Append(uint64(i), walPayload(i)); err != nil {
					t.Fatalf("append %d: %v", i, err)
				}
			}
			if got := w.Records(); got != 5 {
				t.Fatalf("Records() = %d, want 5", got)
			}
			if got := w.Appended(); got != 5 {
				t.Fatalf("Appended() = %d, want 5", got)
			}
			if err := w.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}

			w2, recs := openTestWAL(t, dir, sync)
			defer w2.Close()
			if len(recs) != 5 {
				t.Fatalf("reopen replayed %d records, want 5", len(recs))
			}
			for i, r := range recs {
				if r.Seq != uint64(i+1) || !bytes.Equal(r.Payload, walPayload(i+1)) {
					t.Fatalf("record %d: seq=%d payload=%q", i, r.Seq, r.Payload)
				}
			}
			// Appends after replay continue the same log.
			if err := w2.Append(6, walPayload(6)); err != nil {
				t.Fatalf("append after reopen: %v", err)
			}
			if got := w2.Records(); got != 6 {
				t.Fatalf("Records() after reopen append = %d, want 6", got)
			}
		})
	}
}

func TestWALEmptyPayload(t *testing.T) {
	dir := t.TempDir()
	w, _ := openTestWAL(t, dir, SyncNever)
	if err := w.Append(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, walPayload(2)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, recs := openTestWAL(t, dir, SyncNever)
	if len(recs) != 2 || len(recs[0].Payload) != 0 || recs[0].Seq != 1 {
		t.Fatalf("replay of empty-payload record: %+v", recs)
	}
}

// TestWALTornTail simulates a crash mid-append: every proper prefix of the
// file that cuts into the final frame must replay the first N-1 records and
// truncate the tail, so the next append lands on a clean boundary.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	w, _ := openTestWAL(t, dir, SyncNever)
	for i := 1; i <= 3; i++ {
		if err := w.Append(uint64(i), walPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	path := filepath.Join(dir, walFile)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lastFrame := walFrameHdr + len(walPayload(3))
	for cut := 1; cut < lastFrame; cut++ {
		torn := full[:len(full)-cut]
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		w, recs := openTestWAL(t, dir, SyncNever)
		if len(recs) != 2 {
			t.Fatalf("cut=%d: replayed %d records, want 2", cut, len(recs))
		}
		// The torn tail must be gone from disk.
		if b, _ := os.ReadFile(path); len(b) >= len(torn) && cut > 0 && len(b) != len(full)-lastFrame {
			t.Fatalf("cut=%d: torn tail not truncated (size %d)", cut, len(b))
		}
		if err := w.Append(9, walPayload(9)); err != nil {
			t.Fatalf("cut=%d: append after torn replay: %v", cut, err)
		}
		w.Close()
		_, recs = openTestWAL(t, dir, SyncNever)
		if len(recs) != 3 || recs[2].Seq != 9 {
			t.Fatalf("cut=%d: post-repair replay %+v", cut, recs)
		}
		// Restore the 3-record file for the next cut.
		if err := os.WriteFile(path, full, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALBitFlip flips each byte of a record's payload region in turn; the
// CRC must fence off that record and everything after it.
func TestWALBitFlip(t *testing.T) {
	dir := t.TempDir()
	w, _ := openTestWAL(t, dir, SyncNever)
	for i := 1; i <= 2; i++ {
		if err := w.Append(uint64(i), walPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	path := filepath.Join(dir, walFile)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside record 1's payload: replay must stop before it.
	rec1Payload := len(walMagic) + walFrameHdr
	mut := append([]byte(nil), full...)
	mut[rec1Payload] ^= 0xff
	recs, valid, err := ReplayWAL(mut)
	if err != nil {
		t.Fatalf("bit-flip should truncate, not error: %v", err)
	}
	if len(recs) != 0 || valid != int64(len(walMagic)) {
		t.Fatalf("bit-flip in record 1: %d records, valid=%d", len(recs), valid)
	}
	// Flip inside record 2: record 1 survives.
	rec2Payload := len(walMagic) + 2*walFrameHdr + len(walPayload(1))
	mut = append([]byte(nil), full...)
	mut[rec2Payload] ^= 0x01
	recs, _, err = ReplayWAL(mut)
	if err != nil || len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("bit-flip in record 2: recs=%+v err=%v", recs, err)
	}
}

func TestWALBadMagic(t *testing.T) {
	if _, _, err := ReplayWAL([]byte("NOTAWAL0xxxx")); err == nil {
		t.Fatal("foreign magic accepted")
	}
	if _, _, err := ReplayWAL([]byte("IT")); err == nil {
		t.Fatal("short header accepted")
	}
	if recs, valid, err := ReplayWAL(nil); err != nil || recs != nil || valid != 0 {
		t.Fatalf("empty input: recs=%v valid=%d err=%v", recs, valid, err)
	}
}

func TestWALTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	w, _ := openTestWAL(t, dir, SyncAlways)
	for i := 1; i <= 6; i++ {
		if err := w.Append(uint64(i), walPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Drop nothing: seq below the head.
	if err := w.TruncateThrough(0); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 6 || w.Truncations() != 0 {
		t.Fatalf("no-op truncate changed state: %d records, %d rotations", w.Records(), w.Truncations())
	}
	// Drop the consumed prefix.
	if err := w.TruncateThrough(4); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 2 || w.Truncations() != 1 {
		t.Fatalf("after truncate: %d records, %d rotations", w.Records(), w.Truncations())
	}
	// Appends continue against the rotated file.
	if err := w.Append(7, walPayload(7)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, recs := openTestWAL(t, dir, SyncAlways)
	want := []uint64{5, 6, 7}
	if len(recs) != len(want) {
		t.Fatalf("replay after rotation: %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Seq != want[i] || !bytes.Equal(r.Payload, walPayload(int(want[i]))) {
			t.Fatalf("record %d after rotation: seq=%d payload=%q", i, r.Seq, r.Payload)
		}
	}
	// Drop everything: the log shrinks to a bare header.
	w2, _ := openTestWAL(t, dir, SyncAlways)
	if err := w2.TruncateThrough(7); err != nil {
		t.Fatal(err)
	}
	if w2.Records() != 0 || w2.Bytes() != int64(len(walMagic)) {
		t.Fatalf("full truncate left %d records, %d bytes", w2.Records(), w2.Bytes())
	}
	if err := w2.Append(8, walPayload(8)); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, recs = openTestWAL(t, dir, SyncAlways)
	if len(recs) != 1 || recs[0].Seq != 8 {
		t.Fatalf("replay after full truncate + append: %+v", recs)
	}
}

func TestWALClosedOps(t *testing.T) {
	dir := t.TempDir()
	w, _ := openTestWAL(t, dir, SyncNever)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := w.Append(1, nil); err == nil {
		t.Fatal("append on closed WAL succeeded")
	}
	if err := w.TruncateThrough(1); err == nil {
		t.Fatal("truncate on closed WAL succeeded")
	}
}
