package checkpoint

// Binary wire helpers shared by everything that serializes into a segment:
// little-endian, length-prefixed, and bit-exact for floats (payload values
// round-trip through math.Float32bits, never through a decimal formatter),
// which is what lets a resumed run reproduce an uninterrupted one bit for
// bit. Append* functions grow a byte slice; Reader walks one back with a
// sticky error, so decode paths check once at the end instead of after every
// field.

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrShortBuffer is the Reader's sticky error once a read runs past the end
// of the buffer — the signature of a truncated or torn segment.
var ErrShortBuffer = errors.New("checkpoint: segment truncated")

// AppendU32 appends v little-endian.
func AppendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

// AppendU64 appends v little-endian.
func AppendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// AppendI64 appends v as its two's-complement u64.
func AppendI64(b []byte, v int64) []byte { return AppendU64(b, uint64(v)) }

// AppendBytes appends a u64 length prefix followed by p.
func AppendBytes(b, p []byte) []byte {
	b = AppendU64(b, uint64(len(p)))
	return append(b, p...)
}

// AppendString appends s length-prefixed.
func AppendString(b []byte, s string) []byte { return AppendBytes(b, []byte(s)) }

// AppendBools appends v length-prefixed, one byte per element.
func AppendBools(b []byte, v []bool) []byte {
	b = AppendU64(b, uint64(len(v)))
	for _, x := range v {
		if x {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

// AppendI32s appends v length-prefixed, little-endian.
func AppendI32s(b []byte, v []int32) []byte {
	b = AppendU64(b, uint64(len(v)))
	for _, x := range v {
		b = AppendU32(b, uint32(x))
	}
	return b
}

// AppendI64s appends v length-prefixed, little-endian.
func AppendI64s(b []byte, v []int64) []byte {
	b = AppendU64(b, uint64(len(v)))
	for _, x := range v {
		b = AppendU64(b, uint64(x))
	}
	return b
}

// AppendF32s appends v length-prefixed as raw IEEE-754 bits — the bit-exact
// round trip the determinism contract requires (NaN payloads included).
func AppendF32s(b []byte, v []float32) []byte {
	b = AppendU64(b, uint64(len(v)))
	for _, x := range v {
		b = AppendU32(b, math.Float32bits(x))
	}
	return b
}

// Reader decodes a segment written with the Append helpers. The first
// out-of-bounds read poisons the Reader; every later read returns zero
// values, and Err reports the failure once.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps b for decoding.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the sticky decode error, nil if every read stayed in bounds.
func (r *Reader) Err() error { return r.err }

// Remaining reports the unread byte count.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.err = ErrShortBuffer
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

// U32 reads one little-endian uint32.
func (r *Reader) U32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// U64 reads one little-endian uint64.
func (r *Reader) U64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// I64 reads one two's-complement int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// length reads a u64 prefix and bounds-checks it against the remaining
// bytes, at elemSize bytes per element, so a corrupt length cannot drive a
// huge allocation.
func (r *Reader) length(elemSize int) int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if elemSize > 0 && n > uint64(len(r.b)-r.off)/uint64(elemSize) {
		r.err = ErrShortBuffer
		return 0
	}
	return int(n)
}

// Bytes reads one length-prefixed byte slice (a copy-free view into the
// buffer; callers that retain it must copy).
func (r *Reader) Bytes() []byte {
	n := r.length(1)
	return r.take(n)
}

// String reads one length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Bools reads one length-prefixed bool slice.
func (r *Reader) Bools() []bool {
	n := r.length(1)
	p := r.take(n)
	if p == nil {
		return nil
	}
	v := make([]bool, n)
	for i, x := range p {
		v[i] = x != 0
	}
	return v
}

// I32s reads one length-prefixed int32 slice.
func (r *Reader) I32s() []int32 {
	n := r.length(4)
	p := r.take(n * 4)
	if p == nil {
		return nil
	}
	v := make([]int32, n)
	for i := range v {
		v[i] = int32(binary.LittleEndian.Uint32(p[i*4:]))
	}
	return v
}

// I64s reads one length-prefixed int64 slice.
func (r *Reader) I64s() []int64 {
	n := r.length(8)
	p := r.take(n * 8)
	if p == nil {
		return nil
	}
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(binary.LittleEndian.Uint64(p[i*8:]))
	}
	return v
}

// F32s reads one length-prefixed float32 slice (raw IEEE-754 bits).
func (r *Reader) F32s() []float32 {
	n := r.length(4)
	p := r.take(n * 4)
	if p == nil {
		return nil
	}
	v := make([]float32, n)
	for i := range v {
		v[i] = math.Float32frombits(binary.LittleEndian.Uint32(p[i*4:]))
	}
	return v
}
