package checkpoint

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzCheckpointReader drives both layers of the durable-epoch parser with
// arbitrary bytes: the epoch-file decode (magic, segment CRCs, footer) and
// the primitive Reader walk beneath it. The contract is the crash-safety
// story's foundation — any byte stream, including a torn or bit-flipped
// epoch, yields a clean error and bounded allocations, never a panic.
// FuzzWALReplay feeds the mutation-log parser arbitrary bytes. Same contract
// as the epoch parser: a torn or hostile log yields a clean truncation point
// or an error, never a panic, and no allocation exceeds the input size (the
// frame-length bound is checked before the payload copy).
func FuzzWALReplay(f *testing.F) {
	// Seed with a real three-record log so the fuzzer mutates valid frames.
	dir := f.TempDir()
	w, _, err := OpenWAL(dir, SyncNever)
	if err != nil {
		f.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		payload := AppendString(AppendU64(nil, uint64(i*7)), "delta")
		if err := w.Append(uint64(i), payload); err != nil {
			f.Fatal(err)
		}
	}
	w.Close()
	seed, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte(walMagic))
	f.Add(seed[:len(seed)-5]) // torn tail
	f.Add(append(append([]byte(nil), seed...), 0xff, 0xff, 0xff, 0xff))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		recs, valid, err := ReplayWAL(data)
		if err != nil {
			if len(recs) != 0 || valid != 0 {
				t.Fatalf("error path leaked results: %d records, valid=%d", len(recs), valid)
			}
			return
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside input of %d bytes", valid, len(data))
		}
		total := 0
		for i, r := range recs {
			total += len(r.Payload)
			if total > len(data) {
				t.Fatalf("record %d pushed materialized payloads to %d bytes from %d input bytes", i, total, len(data))
			}
		}
		// The valid prefix must itself replay identically — replay is a
		// fixed point, which is what makes Open's torn-tail truncation safe.
		recs2, valid2, err2 := ReplayWAL(data[:valid])
		if err2 != nil && len(data) > 0 {
			t.Fatalf("replay of valid prefix errored: %v", err2)
		}
		if valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("replay not idempotent: %d/%d records, %d/%d bytes", len(recs2), len(recs), valid2, valid)
		}
	})
}

func FuzzCheckpointReader(f *testing.F) {
	// Seed with a real epoch file so the fuzzer mutates from valid input.
	dir := f.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		f.Fatal(err)
	}
	st.Sync = SyncNever
	segs := []Segment{
		{Name: "meta", Data: AppendI64s(nil, []int64{4, 70, 900, 900})},
		{Name: "values", Data: AppendF32s(nil, []float32{1.5, -2.25, 0, 3e7})},
		{Name: "active", Data: AppendBools(nil, []bool{true, false, true})},
		{Name: "empty", Data: nil},
	}
	if err := st.Save(3, segs); err != nil {
		f.Fatal(err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "epoch-*.ckpt"))
	if err != nil || len(names) == 0 {
		f.Fatalf("no seed epoch written: %v", err)
	}
	seed, err := os.ReadFile(names[0])
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(seed[:len(seed)-3]) // torn tail
	f.Add(AppendI32s(AppendU64(AppendString(nil, "segment"), 42), []int32{1, 2, 3}))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		// Layer 1: the epoch-file parser. Success means every segment's CRC
		// held, so segment data must round-trip through the Reader cleanly.
		if _, segs, err := decode(data); err == nil {
			for _, sg := range segs {
				r := NewReader(sg.Data)
				_ = r.I64s()
				_ = r.F32s()
				_ = r.Err()
			}
		}

		// Layer 2: a deterministic Reader walk over the raw bytes. Errors
		// must be sticky and every returned slice bounded by the input —
		// the length-prefix cap is what keeps a hostile 4GB claim from
		// becoming a 4GB allocation.
		r := NewReader(data)
		_ = r.U32()
		_ = r.U64()
		_ = r.I64()
		checkLen := func(n int) {
			if n > len(data) {
				t.Fatalf("reader materialized %d elements from %d input bytes", n, len(data))
			}
		}
		checkLen(len(r.Bytes()))
		checkLen(len(r.String()))
		checkLen(len(r.Bools()))
		checkLen(len(r.I32s()))
		checkLen(len(r.I64s()))
		checkLen(len(r.F32s()))
		if r.Err() != nil {
			// Sticky error: every subsequent read must be a zero-value
			// no-op, not a fresh attempt at the buffer.
			if got := r.U32(); got != 0 {
				t.Fatalf("read after error returned %d, want 0", got)
			}
			if b := r.Bytes(); b != nil {
				t.Fatalf("read after error returned %d bytes, want nil", len(b))
			}
		}
	})
}
