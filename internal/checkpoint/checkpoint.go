// Package checkpoint implements the durable epoch store behind the Pregel
// engine's crash recovery: versioned, CRC-checksummed segment files written
// atomically, with a manifest naming the latest valid epoch and load-time
// fallback past torn or corrupt files.
//
// One epoch file holds one recovery point as a list of named segments
// (vertex-state slab, program state, inbox arenas, step metadata — the store
// never interprets them). The write protocol makes a crash at any instant
// recoverable:
//
//  1. the whole epoch is serialized into epoch.tmp (a recycled scratch file
//     whose pages are overwritten in place), fsynced, and closed — a crash
//     here leaves only the tmp file, which loads ignore;
//  2. the tmp file is renamed to epoch-N.ckpt and the directory fsynced —
//     rename is atomic on POSIX, so the visible file is always complete;
//  3. MANIFEST is updated through the same tmp+rename dance (never fsynced —
//     it is only a load-time hint) to name the new epoch — a crash between
//     2 and 3 leaves a valid epoch the directory scan still finds.
//
// Every segment carries a CRC-32C, and the file ends in a footer magic, so
// torn writes that survive the rename protocol anyway (lost tail on power
// failure, bit rot) are detected at load; Load then falls back to the next
// newest epoch that validates. Transient IO errors during Save are retried
// with bounded exponential backoff before the error surfaces. SyncMode
// trades durability class for fsync latency: SyncAlways (default) survives
// power loss, SyncNever survives process crashes only.
package checkpoint

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Segment is one named blob inside an epoch file. The store checksums and
// stores it verbatim; naming and content layout belong to the writer.
type Segment struct {
	Name string
	Data []byte
}

// Sink is the engine-facing persistence interface: Save durably records the
// recovery point for superstep step, Load returns the newest valid one
// (found=false on a cold start with nothing recoverable).
type Sink interface {
	Save(step int, segs []Segment) error
	Load() (step int, segs []Segment, found bool, err error)
}

const (
	fileMagic   = "ITCKPT01" // header magic + format version in one token
	footerMagic = "ITCKEND1" // present iff the file was written to its end
	manifest    = "MANIFEST"
	epochPrefix = "epoch-"
	epochSuffix = ".ckpt"
	epochTmp    = "epoch.tmp" // shared scratch file; loads never consider it

	defaultRetries = 3
	defaultBackoff = 10 * time.Millisecond
	defaultKeep    = 2
)

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncMode selects how hard the store pushes an epoch toward stable storage
// before reporting it saved.
type SyncMode int

const (
	// SyncAlways fsyncs every epoch file and its directory entry: epochs
	// survive OS crashes and power loss. This is the default.
	SyncAlways SyncMode = iota
	// SyncNever skips fsync entirely. Epochs are still written to a temp
	// name and atomically renamed, so every visible file is complete, and a
	// SIGKILLed process finds its checkpoints on restart (the page cache
	// survives process death) — but an OS crash or power failure may lose
	// the newest epochs. Load's descending scan then recovers from whatever
	// survived. The mode exists because fsync latency on commodity disks
	// (5–30ms per journal commit) can exceed a whole superstep.
	SyncNever
)

// Store is the on-disk Sink: one directory of epoch files plus a manifest.
// A Store is not safe for concurrent use by multiple goroutines; the
// engine's single persister goroutine is the intended caller.
type Store struct {
	dir   string
	epoch int // next epoch number to write

	// Retries bounds Save's attempts per epoch (total tries = Retries+1);
	// Backoff is the first retry's delay, doubling per attempt. Zero values
	// select the defaults (3 retries, 10ms).
	Retries int
	Backoff time.Duration

	// Sync selects the durability level (default SyncAlways: power-loss
	// durable; SyncNever: process-crash durable only, no fsync).
	Sync SyncMode

	// sleep and writeHook are test seams: sleep replaces time.Sleep so
	// backoff tests run instantly, and a non-nil writeHook runs before each
	// write attempt and may return an injected error.
	sleep     func(time.Duration)
	writeHook func(attempt int) error

	bytesWritten int64
	scratch      []byte // reused header-encode scratch (Store is single-goroutine)
}

// NewStore opens (creating if needed) the epoch directory. Epoch numbering
// continues past the highest existing file, so a resumed process never
// overwrites the checkpoints it is resuming from.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create dir: %w", err)
	}
	s := &Store{dir: dir, sleep: time.Sleep}
	epochs, err := s.listEpochs()
	if err != nil {
		return nil, err
	}
	if len(epochs) > 0 {
		s.epoch = epochs[len(epochs)-1] + 1
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// BytesWritten reports the total epoch-file bytes successfully persisted —
// the checkpoint-volume figure surfaced in run stats.
func (s *Store) BytesWritten() int64 { return s.bytesWritten }

func epochPath(dir string, epoch int) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", epochPrefix, epoch, epochSuffix))
}

// listEpochs returns the epoch numbers present in the directory, ascending.
func (s *Store) listEpochs() ([]int, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: scan dir: %w", err)
	}
	var epochs []int
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, epochPrefix) || !strings.HasSuffix(name, epochSuffix) {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, epochPrefix), epochSuffix), "%d", &n); err == nil {
			epochs = append(epochs, n)
		}
	}
	sort.Ints(epochs)
	return epochs, nil
}

// epochSize is the exact on-disk size of an epoch holding segs.
func epochSize(segs []Segment) int {
	size := len(fileMagic) + 12 + len(footerMagic)
	for _, sg := range segs {
		size += 8 + len(sg.Name) + 12 + len(sg.Data)
	}
	return size
}

// decode parses and validates one epoch file's bytes: magic, per-segment
// CRCs, footer. Any mismatch returns an error — the caller treats the file
// as torn and falls back.
func decode(b []byte) (step int, segs []Segment, err error) {
	if len(b) < len(fileMagic)+len(footerMagic) || string(b[:len(fileMagic)]) != fileMagic {
		return 0, nil, fmt.Errorf("checkpoint: bad file magic")
	}
	if string(b[len(b)-len(footerMagic):]) != footerMagic {
		return 0, nil, fmt.Errorf("checkpoint: missing footer (torn write)")
	}
	r := NewReader(b[len(fileMagic) : len(b)-len(footerMagic)])
	step = int(r.U64())
	n := int(r.U32())
	for i := 0; i < n; i++ {
		name := r.String()
		dataLen := r.length(1)
		sum := r.U32()
		data := r.take(dataLen)
		if r.Err() != nil {
			return 0, nil, fmt.Errorf("checkpoint: segment %d truncated", i)
		}
		if crc32.Checksum(data, castagnoli) != sum {
			return 0, nil, fmt.Errorf("checkpoint: segment %q checksum mismatch", name)
		}
		segs = append(segs, Segment{Name: name, Data: append([]byte(nil), data...)})
	}
	if r.Err() != nil || r.Remaining() != 0 {
		return 0, nil, fmt.Errorf("checkpoint: malformed epoch file")
	}
	return step, segs, nil
}

// Save writes one epoch durably, retrying transient IO errors with bounded
// exponential backoff, then points the manifest at it and prunes epochs
// beyond the retained window.
func (s *Store) Save(step int, segs []Segment) error {
	retries, backoff := s.Retries, s.Backoff
	if retries <= 0 {
		retries = defaultRetries
	}
	if backoff <= 0 {
		backoff = defaultBackoff
	}
	epoch := s.epoch
	var err error
	for attempt := 0; ; attempt++ {
		err = s.writeEpoch(epoch, step, segs, attempt)
		if err == nil {
			break
		}
		if attempt >= retries {
			return fmt.Errorf("checkpoint: save epoch %d: %w", epoch, err)
		}
		s.sleep(backoff << attempt)
	}
	s.epoch = epoch + 1
	s.bytesWritten += int64(epochSize(segs))
	if err := s.writeManifest(epoch); err != nil {
		// The epoch file itself is durable and the directory scan finds it;
		// a stale manifest only costs the next Load a validation pass.
		return nil
	}
	s.prune(epoch)
	return nil
}

// writeEpoch is one attempt at the tmp+fsync+rename protocol.
func (s *Store) writeEpoch(epoch, step int, segs []Segment, attempt int) error {
	if s.writeHook != nil {
		if err := s.writeHook(attempt); err != nil {
			return err
		}
	}
	final := epochPath(s.dir, epoch)
	tmp := filepath.Join(s.dir, epochTmp)
	if err := s.streamEpoch(tmp, step, segs); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if s.Sync != SyncAlways {
		return nil
	}
	return syncDir(s.dir)
}

// streamEpoch writes header, checksummed segments and footer through one
// buffered writer — segment payloads go straight from the caller's memory
// to the file, never assembled into an epoch-sized blob first.
func (s *Store) streamEpoch(path string, step int, segs []Segment) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	hdr := s.scratch[:0]
	hdr = append(hdr, fileMagic...)
	hdr = AppendU64(hdr, uint64(step))
	hdr = AppendU32(hdr, uint32(len(segs)))
	w.Write(hdr)
	for _, sg := range segs {
		hdr = hdr[:0]
		hdr = AppendString(hdr, sg.Name)
		hdr = AppendU64(hdr, uint64(len(sg.Data)))
		hdr = AppendU32(hdr, crc32.Checksum(sg.Data, castagnoli))
		w.Write(hdr)
		w.Write(sg.Data) // large payloads bypass the buffer copy
	}
	w.WriteString(footerMagic)
	s.scratch = hdr[:0]
	if err := w.Flush(); err != nil { // bufio errors are sticky; one check covers all writes
		f.Close()
		return err
	}
	if err := f.Truncate(int64(epochSize(segs))); err != nil {
		f.Close()
		return err
	}
	if s.Sync == SyncAlways {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// writeManifest never fsyncs regardless of mode: the manifest is only a
// load-time hint, and a stale or lost one costs the next Load a directory
// scan, not data — while each fsync costs a journal commit.
func (s *Store) writeManifest(epoch int) error {
	tmp := filepath.Join(s.dir, manifest+".tmp")
	if err := writeFile(tmp, []byte(filepath.Base(epochPath(s.dir, epoch))+"\n")); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifest)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// prune retires epochs older than the retained window (the newest
// defaultKeep files stay: the latest epoch plus its fallback). The newest
// retired file is renamed onto the shared tmp name instead of unlinked, so
// the next epoch overwrites its already-allocated pages in place — kernel
// page allocation for a fresh multi-megabyte file can cost an order of
// magnitude more than the data copy on virtualized hosts, and epochs are
// all about the same size.
func (s *Store) prune(latest int) {
	epochs, err := s.listEpochs()
	if err != nil {
		return
	}
	cutoff := latest - (defaultKeep - 1)
	recycled := false
	for i := len(epochs) - 1; i >= 0; i-- {
		n := epochs[i]
		if n >= cutoff {
			continue
		}
		if !recycled && os.Rename(epochPath(s.dir, n), filepath.Join(s.dir, epochTmp)) == nil {
			recycled = true
			continue
		}
		os.Remove(epochPath(s.dir, n))
	}
}

// Load returns the newest valid epoch: the manifest's candidate first, then
// a descending directory scan past any torn or corrupt files. found=false
// means nothing recoverable exists (not an error — a cold start).
func (s *Store) Load() (int, []Segment, bool, error) {
	tried := map[string]bool{}
	if name := s.manifestTarget(); name != "" {
		tried[name] = true
		if step, segs, err := loadFile(filepath.Join(s.dir, name)); err == nil {
			return step, segs, true, nil
		}
	}
	epochs, err := s.listEpochs()
	if err != nil {
		return 0, nil, false, err
	}
	for i := len(epochs) - 1; i >= 0; i-- {
		path := epochPath(s.dir, epochs[i])
		if tried[filepath.Base(path)] {
			continue
		}
		if step, segs, err := loadFile(path); err == nil {
			return step, segs, true, nil
		}
	}
	return 0, nil, false, nil
}

func (s *Store) manifestTarget() string {
	b, err := os.ReadFile(filepath.Join(s.dir, manifest))
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(b))
}

func loadFile(path string) (int, []Segment, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	return decode(b)
}

// writeFile writes b over path's existing pages (no O_TRUNC — truncating up
// front would free them) and truncates to the final size afterwards, so a
// recycled tmp file's page allocations are reused epoch after epoch.
func writeFile(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Truncate(int64(len(b))); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a rename within it is durable; filesystems
// that refuse fsync on directories are quietly tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}
