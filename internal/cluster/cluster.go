// Package cluster converts the work and traffic counters emitted by the
// engines and the baseline into simulated wall-clock time, cpu·minutes and
// out-of-memory verdicts, standing in for the paper's production clusters.
//
// The model is deliberately simple and deterministic: per worker and phase,
// compute time is flops / (cores × flop rate), network time is
// max(in, out) bytes / bandwidth plus a per-message overhead, and a BSP
// barrier makes each phase as slow as its slowest worker. Every comparison
// the paper draws (linear-vs-exponential in hops, straggler variance,
// 30–50× speedups) is a ratio of counted work, which this model preserves;
// only the absolute seconds are synthetic.
package cluster

import (
	"fmt"
	"math"
)

// Spec describes a homogeneous worker pool.
type Spec struct {
	Name               string
	Workers            int
	CoresPerWorker     int
	MemPerWorkerBytes  int64
	FlopsPerCoreSec    float64
	NetBytesPerSec     float64
	PerMessageOverhead float64 // seconds of fixed cost per message received
}

// The paper's three deployments, scaled only in absolute rates (shape-
// preserving): the Pregel backend cluster (1000 × 2 CPU, 10 GB), the
// MapReduce cluster (1000 of the 5000 × 2 CPU, 2 GB instances are used for
// fair comparisons), and the traditional pipeline's inference workers
// (200 × 10 CPU, 10 GB, plus a 20-worker distributed graph store).

// PregelCluster mirrors the paper's graph-processing deployment.
func PregelCluster() Spec {
	return Spec{
		Name: "on-pregel", Workers: 1000, CoresPerWorker: 2,
		MemPerWorkerBytes: 10 << 30, FlopsPerCoreSec: 2e9,
		NetBytesPerSec: 2.5e9, PerMessageOverhead: 2e-7,
	}
}

// MapReduceCluster mirrors the paper's batch-processing deployment. The
// external-storage data flow costs extra IO, modelled as lower effective
// bandwidth; memory per worker is small but spilling means the memory gate
// applies per loaded partition slice, not the whole partition.
func MapReduceCluster() Spec {
	return Spec{
		Name: "on-mr", Workers: 1000, CoresPerWorker: 2,
		MemPerWorkerBytes: 2 << 30, FlopsPerCoreSec: 2e9,
		NetBytesPerSec: 1.2e9, PerMessageOverhead: 3e-7,
	}
}

// BaselineCluster mirrors the traditional pipeline: 200 ten-core inference
// workers; the graph-store round trips are charged via per-message overhead.
func BaselineCluster() Spec {
	return Spec{
		Name: "traditional", Workers: 200, CoresPerWorker: 10,
		MemPerWorkerBytes: 10 << 30, FlopsPerCoreSec: 2e9,
		NetBytesPerSec: 2.5e9, PerMessageOverhead: 5e-6,
	}
}

// WorkerLoad is one worker's activity during one phase.
type WorkerLoad struct {
	Flops    int64
	BytesIn  int64
	BytesOut int64
	MsgsIn   int64
	MsgsOut  int64
	PeakMem  int64
}

// Add accumulates another load into w.
func (w *WorkerLoad) Add(o WorkerLoad) {
	w.Flops += o.Flops
	w.BytesIn += o.BytesIn
	w.BytesOut += o.BytesOut
	w.MsgsIn += o.MsgsIn
	w.MsgsOut += o.MsgsOut
	if o.PeakMem > w.PeakMem {
		w.PeakMem = o.PeakMem
	}
}

// Phase is one BSP phase (superstep / MapReduce round) of per-worker loads.
type Phase struct {
	Name    string
	Workers []WorkerLoad
}

// OOMError reports a worker whose peak memory exceeded the spec.
type OOMError struct {
	Phase  string
	Worker int
	Need   int64
	Have   int64
}

func (e *OOMError) Error() string {
	return fmt.Sprintf("cluster: OOM in phase %q worker %d: need %d bytes, have %d",
		e.Phase, e.Worker, e.Need, e.Have)
}

// Report is the simulation outcome.
type Report struct {
	Spec          Spec
	WallSeconds   float64
	CPUMinutes    float64 // reserved cores × wall time, the paper's measure
	PhaseSeconds  []float64
	WorkerSeconds []float64   // per-worker total busy time (straggler view)
	PhaseWorker   [][]float64 // [phase][worker] latency
}

// WorkerTime prices one worker-phase load under the spec.
func (s Spec) WorkerTime(l WorkerLoad) float64 {
	compute := float64(l.Flops) / (float64(s.CoresPerWorker) * s.FlopsPerCoreSec)
	net := math.Max(float64(l.BytesIn), float64(l.BytesOut))/s.NetBytesPerSec +
		float64(l.MsgsIn)*s.PerMessageOverhead
	return compute + net
}

// Simulate prices a sequence of phases on the spec. It returns an OOMError
// when any worker's peak memory exceeds the budget — the failure mode the
// paper's Table IV reports for nbr10000 at 3 hops.
func Simulate(spec Spec, phases []Phase) (*Report, error) {
	r := &Report{Spec: spec, WorkerSeconds: make([]float64, spec.Workers)}
	for _, ph := range phases {
		if len(ph.Workers) != spec.Workers {
			return nil, fmt.Errorf("cluster: phase %q has %d workers, spec has %d",
				ph.Name, len(ph.Workers), spec.Workers)
		}
		var slowest float64
		times := make([]float64, spec.Workers)
		for w, l := range ph.Workers {
			if l.PeakMem > spec.MemPerWorkerBytes {
				return nil, &OOMError{Phase: ph.Name, Worker: w, Need: l.PeakMem, Have: spec.MemPerWorkerBytes}
			}
			t := spec.WorkerTime(l)
			times[w] = t
			r.WorkerSeconds[w] += t
			if t > slowest {
				slowest = t
			}
		}
		r.PhaseSeconds = append(r.PhaseSeconds, slowest)
		r.PhaseWorker = append(r.PhaseWorker, times)
		r.WallSeconds += slowest
	}
	r.CPUMinutes = r.WallSeconds / 60 * float64(spec.Workers) * float64(spec.CoresPerWorker)
	return r, nil
}

// Variance returns the population variance of xs — the paper's Fig 10
// metric over per-worker times.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var v float64
	for _, x := range xs {
		d := x - mean
		v += d * d
	}
	return v / float64(len(xs))
}

// TailMean returns the mean of the top fraction (e.g. 0.1 for the slowest
// 10% of workers) of xs — the paper's tail-worker IO metric.
func TailMean(xs []float64, fraction float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	// Insertion sort is fine at worker-count scale and keeps this
	// dependency-free.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	k := int(float64(len(sorted)) * fraction)
	if k < 1 {
		k = 1
	}
	tail := sorted[len(sorted)-k:]
	var sum float64
	for _, x := range tail {
		sum += x
	}
	return sum / float64(len(tail))
}
