package cluster

import (
	"errors"
	"math"
	"testing"
)

func tinySpec() Spec {
	return Spec{
		Name: "tiny", Workers: 2, CoresPerWorker: 2,
		MemPerWorkerBytes: 1000, FlopsPerCoreSec: 100,
		NetBytesPerSec: 10, PerMessageOverhead: 0.5,
	}
}

func TestWorkerTimeComponents(t *testing.T) {
	s := tinySpec()
	// 400 flops on 2 cores @100 flops/s = 2s; 20 bytes in / 10 Bps = 2s;
	// 2 msgs × 0.5s = 1s. Total 5s.
	got := s.WorkerTime(WorkerLoad{Flops: 400, BytesIn: 20, MsgsIn: 2})
	if math.Abs(got-5) > 1e-9 {
		t.Fatalf("WorkerTime = %v, want 5", got)
	}
}

func TestWorkerTimeUsesMaxOfInOut(t *testing.T) {
	s := tinySpec()
	in := s.WorkerTime(WorkerLoad{BytesIn: 100})
	out := s.WorkerTime(WorkerLoad{BytesOut: 100})
	both := s.WorkerTime(WorkerLoad{BytesIn: 100, BytesOut: 100})
	if in != out || both != in {
		t.Fatalf("duplex accounting wrong: in=%v out=%v both=%v", in, out, both)
	}
}

func TestSimulateBarrierTakesSlowestWorker(t *testing.T) {
	s := tinySpec()
	rep, err := Simulate(s, []Phase{{
		Name: "p0",
		Workers: []WorkerLoad{
			{Flops: 200}, // 1s
			{Flops: 800}, // 4s
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.WallSeconds-4) > 1e-9 {
		t.Fatalf("wall = %v, want 4 (barrier)", rep.WallSeconds)
	}
	if math.Abs(rep.WorkerSeconds[0]-1) > 1e-9 {
		t.Fatalf("worker 0 busy = %v", rep.WorkerSeconds[0])
	}
}

func TestSimulatePhasesAccumulate(t *testing.T) {
	s := tinySpec()
	ph := Phase{Name: "p", Workers: []WorkerLoad{{Flops: 200}, {Flops: 200}}}
	rep, err := Simulate(s, []Phase{ph, ph, ph})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.WallSeconds-3) > 1e-9 {
		t.Fatalf("wall = %v, want 3", rep.WallSeconds)
	}
	if len(rep.PhaseSeconds) != 3 || len(rep.PhaseWorker) != 3 {
		t.Fatal("per-phase records missing")
	}
}

func TestCPUMinutesIsReservedTime(t *testing.T) {
	s := tinySpec()
	rep, err := Simulate(s, []Phase{{Name: "p", Workers: []WorkerLoad{{Flops: 200}, {}}}})
	if err != nil {
		t.Fatal(err)
	}
	// 1s wall × 2 workers × 2 cores / 60.
	want := 1.0 / 60 * 4
	if math.Abs(rep.CPUMinutes-want) > 1e-9 {
		t.Fatalf("cpu·min = %v, want %v", rep.CPUMinutes, want)
	}
}

func TestSimulateOOM(t *testing.T) {
	s := tinySpec()
	_, err := Simulate(s, []Phase{{
		Name:    "big",
		Workers: []WorkerLoad{{PeakMem: 2000}, {}},
	}})
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("expected OOMError, got %v", err)
	}
	if oom.Worker != 0 || oom.Phase != "big" {
		t.Fatalf("oom details = %+v", oom)
	}
}

func TestSimulateRejectsWorkerMismatch(t *testing.T) {
	s := tinySpec()
	if _, err := Simulate(s, []Phase{{Name: "p", Workers: []WorkerLoad{{}}}}); err == nil {
		t.Fatal("expected worker count error")
	}
}

func TestWorkerLoadAdd(t *testing.T) {
	a := WorkerLoad{Flops: 1, BytesIn: 2, BytesOut: 3, MsgsIn: 4, MsgsOut: 5, PeakMem: 10}
	a.Add(WorkerLoad{Flops: 10, BytesIn: 20, BytesOut: 30, MsgsIn: 40, MsgsOut: 50, PeakMem: 5})
	if a.Flops != 11 || a.BytesIn != 22 || a.BytesOut != 33 || a.MsgsIn != 44 || a.MsgsOut != 55 {
		t.Fatalf("Add = %+v", a)
	}
	if a.PeakMem != 10 {
		t.Fatal("PeakMem must take the max")
	}
}

func TestVariance(t *testing.T) {
	if Variance(nil) != 0 {
		t.Fatal("empty variance must be 0")
	}
	if v := Variance([]float64{2, 2, 2}); v != 0 {
		t.Fatalf("constant variance = %v", v)
	}
	if v := Variance([]float64{1, 3}); math.Abs(v-1) > 1e-9 {
		t.Fatalf("variance = %v, want 1", v)
	}
}

func TestTailMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if m := TailMean(xs, 0.1); m != 10 {
		t.Fatalf("tail 10%% = %v, want 10", m)
	}
	if m := TailMean(xs, 0.2); m != 9.5 {
		t.Fatalf("tail 20%% = %v, want 9.5", m)
	}
	if m := TailMean([]float64{5}, 0.1); m != 5 {
		t.Fatalf("singleton tail = %v", m)
	}
	if TailMean(nil, 0.5) != 0 {
		t.Fatal("empty tail must be 0")
	}
}

func TestPaperClusterSpecsSane(t *testing.T) {
	for _, s := range []Spec{PregelCluster(), MapReduceCluster(), BaselineCluster()} {
		if s.Workers <= 0 || s.CoresPerWorker <= 0 || s.FlopsPerCoreSec <= 0 || s.NetBytesPerSec <= 0 {
			t.Fatalf("spec %q invalid: %+v", s.Name, s)
		}
	}
	// Fairness property the paper states: equal total cores between ours and
	// the traditional pipeline's inference workers.
	ours := PregelCluster()
	base := BaselineCluster()
	if ours.Workers*ours.CoresPerWorker != base.Workers*base.CoresPerWorker {
		t.Fatalf("total cores differ: %d vs %d",
			ours.Workers*ours.CoresPerWorker, base.Workers*base.CoresPerWorker)
	}
}
