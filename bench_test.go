package inferturbo

// One benchmark per table and figure of the paper's evaluation section,
// each regenerating the corresponding experiment at the quick preset. Run
// cmd/bench for the full-scale harness with formatted output; EXPERIMENTS.md
// records the paper-vs-measured comparison.

import (
	"fmt"
	"runtime"
	"testing"

	"inferturbo/internal/experiments"
	"inferturbo/internal/tensor"
)

func BenchmarkTable1Datasets(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		experiments.Table1(s)
	}
}

func BenchmarkTable2Effectiveness(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Table2(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Efficiency runs the end-to-end efficiency experiment with
// serial kernels (kernelWorkers=1) and with the parallel kernel layer at the
// machine's core count — results are bit-identical, so the delta is pure
// kernel-layer wall-clock and allocation savings.
func BenchmarkTable3Efficiency(b *testing.B) {
	s := experiments.Quick()
	workers := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workers = append(workers, n)
	}
	for _, w := range workers {
		b.Run(fmt.Sprintf("kernelWorkers=%d", w), func(b *testing.B) {
			prev := tensor.SetTuning(tensor.Tuning{Workers: w})
			defer tensor.SetTuning(prev)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := experiments.Table3(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable4Hops(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Table4(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Consistency(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig7(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Scalability(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig8(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9PartialGather(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig9(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10OutDegree(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig10(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11PartialGatherIO(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig11(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12BroadcastIO(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig12(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13ShadowNodesIO(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig13(s); err != nil {
			b.Fatal(err)
		}
	}
}
