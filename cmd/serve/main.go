// Command serve runs the InferTurbo online inference service: it loads a
// dataset and trained signature once, computes a resident full-graph
// prediction store, and serves per-node lookups plus fresh k-hop queries
// (what-if feature overrides, cold-start virtual nodes) over HTTP/JSON.
//
// Usage:
//
//	serve -data graph.bin -model model.json -addr :8080 \
//	      -workers 16 -max-latency 250ms -queue-depth 64
//
// The service degrades gracefully under pressure: a full admission queue
// sheds with 429 + Retry-After, a fresh query that misses its deadline
// falls back to the resident store (marked stale), and background refreshes
// — optionally durable via -checkpoint-dir — never block reads. With
// -checkpoint-dir and -resume, a process killed mid-refresh restarts and
// completes the interrupted pass from its latest durable epoch,
// bit-identical to an uninterrupted run.
//
// Without -checkpoint-dir the server runs in incremental mode: POST
// /v1/mutate stages graph deltas (feature updates, new nodes, edge changes)
// and the next refresh recomputes only their L-hop flood against resident
// state — bit-identical to a full pass, proportional to the change set.
// -no-incremental restores full passes everywhere.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"inferturbo"
	"inferturbo/internal/checkpoint"
	"inferturbo/internal/inference"
	"inferturbo/internal/serve"
)

func main() {
	var (
		data  = flag.String("data", "graph.bin", "dataset path")
		model = flag.String("model", "model.json", "signature file")
		addr  = flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")

		workers  = flag.Int("workers", 16, "partition count for full-graph refresh passes")
		parallel = flag.Bool("parallel", true, "run refresh workers on goroutines (results identical either way)")
		part     = flag.String("partitioner", "hash", "vertex placement for refresh passes: hash | degree | ldg | fennel")

		queryWorkers  = flag.Int("query-workers", 2, "partition count for k-hop query batches")
		queryParallel = flag.Bool("query-parallel", false, "run query workers on goroutines")
		hops          = flag.Int("hops", 0, "k-hop query depth (0 = the model's layer count)")
		maxBatch      = flag.Int("max-batch", 16, "max roots coalesced into one query micro-batch")
		batchWindow   = flag.Duration("batch-window", 2*time.Millisecond, "how long the batcher waits to fill a batch")
		queueDepth    = flag.Int("queue-depth", 64, "admission queue bound; beyond it requests shed with 429")
		maxLatency    = flag.Duration("max-latency", 250*time.Millisecond, "default per-request deadline (the serving SLO window)")
		refreshEvery  = flag.Duration("refresh-every", 0, "periodic refresh interval (0 = on demand via POST /v1/refresh)")
		noIncremental = flag.Bool("no-incremental", false, "disable the incremental delta-refresh session; every refresh is a full pass and /v1/mutate answers 409")

		ckptDir   = flag.String("checkpoint-dir", "", "durable checkpoint directory for refresh passes")
		ckptEvery = flag.Int("checkpoint-every", 0, "checkpoint every n supersteps (0 = 2 when -checkpoint-dir is set, else off)")
		ckptSync  = flag.String("checkpoint-sync", "always", "epoch durability: always | never")
		resume    = flag.Bool("resume", false, "resume an interrupted refresh from the latest valid epoch in -checkpoint-dir")

		dieAt        = flag.Int("die-at", -1, "kill -9 this process at the start of the given superstep of the -die-on-refresh'th pass (crash-resume testing)")
		dieOnRefresh = flag.Int("die-on-refresh", 1, "which full-graph pass -die-at targets (1 = the initial store build)")
	)
	flag.Parse()

	g, err := inferturbo.LoadGraphFile(*data)
	if err != nil {
		fatalf("loading %s: %v", *data, err)
	}
	m, err := inferturbo.LoadModelFile(*model)
	if err != nil {
		fatalf("loading %s: %v", *model, err)
	}
	strat, err := inferturbo.PartitionStrategyByName(*part)
	if err != nil {
		fatalf("%v", err)
	}

	refresh := inference.Options{
		NumWorkers: *workers, Parallel: *parallel, Partitioner: strat,
		CheckpointDir: *ckptDir, CheckpointEvery: *ckptEvery, Resume: *resume,
	}
	switch *ckptSync {
	case "always":
		refresh.CheckpointSync = checkpoint.SyncAlways
	case "never":
		refresh.CheckpointSync = checkpoint.SyncNever
	default:
		fatalf("unknown -checkpoint-sync %q (want always | never)", *ckptSync)
	}
	if *dieAt >= 0 {
		// Passes are counted by watching the superstep sequence restart: a
		// hook step that does not extend the previous pass begins the next
		// one. The hook runs on the engine goroutine after queued durable
		// epochs have drained, so everything the run reported as
		// checkpointed is on disk when the process dies.
		pass, last := 0, -1
		target, targetPass := *dieAt, *dieOnRefresh
		refresh.SuperstepHook = func(step int) {
			if last == -1 || step <= last {
				pass++
			}
			last = step
			if pass == targetPass && step == target {
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
	}

	s, err := serve.New(serve.Config{
		Model: m, Graph: g, Refresh: refresh,
		Hops:         *hops,
		QueryWorkers: *queryWorkers, QueryParallel: *queryParallel,
		MaxBatchSize: *maxBatch, BatchWindow: *batchWindow,
		QueueDepth: *queueDepth, MaxLatency: *maxLatency,
		RefreshEvery:       *refreshEvery,
		DisableIncremental: *noIncremental,
	})
	if err != nil {
		fatalf("%v", err)
	}
	// The initial pass runs before the socket opens: once the address is
	// printed, the store is resident and /readyz is green.
	if err := s.Start(); err != nil {
		if *resume {
			fatalf("initial full-graph pass: %v\nhint: -resume found unusable state in %q; a torn final epoch is skipped automatically, so this is a malformed (CRC-valid but inconsistent) epoch — clear the directory or drop -resume to rebuild from scratch", err, *ckptDir)
		}
		fatalf("initial full-graph pass: %v", err)
	}
	snap := s.Store()
	fmt.Printf("serve: store epoch %d resident (%d nodes, %d supersteps, resumed=%v)\n",
		snap.Epoch, g.NumNodes, snap.Stats.Supersteps, snap.Stats.Resumed)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen %s: %v", *addr, err)
	}
	fmt.Printf("serve: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		fmt.Printf("serve: %v, shutting down\n", got)
	case err := <-errCh:
		fatalf("http: %v", err)
	}
	if err := hs.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "serve: closing http: %v\n", err)
	}
	s.Close()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "serve: "+format+"\n", args...)
	os.Exit(1)
}
